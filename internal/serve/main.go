package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Main runs the experiment service until SIGTERM/SIGINT, then drains
// gracefully: the listener stops accepting, queued and in-flight runs
// finish (up to -draintimeout), and the process exits 0. Shared by
// cmd/mlbenchd and `mlbench serve`.
func Main(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "experiment worker pool size (0 = default); ignored when -maxworkers enables autoscaling")
	queue := fs.Int("queue", 0, "queue depth before 429 backpressure (0 = default)")
	cache := fs.Int("cache", 0, "completed results retained for cache hits (0 = default)")
	minWorkers := fs.Int("minworkers", 1, "autoscaler pool floor (with -maxworkers)")
	maxWorkers := fs.Int("maxworkers", 0, "autoscaler pool ceiling; > 0 enables the elastic worker pool")
	scaleInterval := fs.Duration("scaleinterval", time.Second, "autoscaler evaluation interval")
	scaleCooldown := fs.Duration("scalecooldown", 0, "minimum gap between scaling actions (0 = 2x the interval)")
	drainTimeout := fs.Duration("draintimeout", 2*time.Minute, "max wait for in-flight runs on shutdown")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	cfg := Config{Workers: *workers, QueueDepth: *queue, CacheSize: *cache}
	if *maxWorkers > 0 {
		cfg.Autoscale = &AutoscaleConfig{
			Min: *minWorkers, Max: *maxWorkers,
			Interval: *scaleInterval, Cooldown: *scaleCooldown,
		}
	}
	if !*quiet {
		cfg.Log = logf
	}
	srv := New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("mlbenchd: listening on http://%s (POST /v1/runs)", *addr)

	select {
	case err := <-errCh:
		logf("mlbenchd: listen: %v", err)
		return 1
	case <-ctx.Done():
	}

	logf("mlbenchd: shutting down, draining in-flight runs (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting first so a drain can't race new submissions, then
	// let the pool finish; SSE clients of in-flight runs keep their
	// connections until their run reaches a terminal state.
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := srv.Drain(drainCtx)
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		logf("mlbenchd: shutdown: %v", shutdownErr)
	}
	if drainErr != nil {
		logf("mlbenchd: %v", drainErr)
		return 1
	}
	logf("mlbenchd: drained cleanly")
	return 0
}
