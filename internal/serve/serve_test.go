package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlbench/internal/core"
)

// stubRunner is an injectable Runner for handler tests: it counts
// invocations, optionally blocks until released, and honors ctx.
type stubRunner struct {
	calls   atomic.Int64
	block   chan struct{} // nil: return immediately; else wait for close/ctx
	started chan string   // receives the figure id when a run begins
	table   string
	err     error
}

func (r *stubRunner) run(ctx context.Context, spec core.RunSpec, progress func(core.ProgressEvent)) (*RunOutput, error) {
	r.calls.Add(1)
	if r.started != nil {
		r.started <- spec.Figure
	}
	if progress != nil {
		progress(core.ProgressEvent{Cell: "stub", Phase: "iter", ClockSec: 1})
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", ctx.Err())
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	table := r.table
	if table == "" {
		table = "table for " + spec.Figure + "\n"
	}
	return &RunOutput{Table: table, Markdown: table, Matched: 1, Total: 1}, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func waitState(t *testing.T, s *Server, id, want string) {
	t.Helper()
	j := s.Job(id)
	if j == nil {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", id, s.status(j).State)
	}
	if st := s.status(j); st.State != want {
		t.Fatalf("job %s state = %s, want %s", id, st.State, want)
	}
}

func TestSubmitRunFetchTable(t *testing.T) {
	stub := &stubRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	resp, m := postSpec(t, ts, `{"figure":"fig1a"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	id := m["id"].(string)
	if m["cached"].(bool) || m["coalesced"].(bool) {
		t.Fatalf("fresh submit reported cached/coalesced: %v", m)
	}
	waitState(t, s, id, StateDone)

	code, body := getBody(t, ts.URL+"/v1/runs/"+id+"/table")
	if code != http.StatusOK || body != "table for fig1a\n" {
		t.Fatalf("table endpoint = %d %q", code, body)
	}
	code, status := getBody(t, ts.URL+"/v1/runs/"+id)
	if code != http.StatusOK || !strings.Contains(status, `"state": "done"`) {
		t.Fatalf("status endpoint = %d %q", code, status)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("runner calls = %d, want 1", got)
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	stub := &stubRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	resp, m := postSpec(t, ts, `{"figure":"fig99"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if msg := m["error"].(string); !strings.Contains(msg, "fig1a") {
		t.Fatalf("validation error should list valid figures, got %q", msg)
	}
	resp, m = postSpec(t, ts, `{"figure":"fig1a","bogus":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status = %d, want 400: %v", resp.StatusCode, m)
	}
	if got := stub.calls.Load(); got != 0 {
		t.Fatalf("invalid specs reached the runner %d times", got)
	}
}

func TestCoalesceAndCache(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	id := m1["id"].(string)
	<-stub.started // job is running and blocked

	// Identical spec (modulo worker count and export paths) coalesces.
	_, m2 := postSpec(t, ts, `{"figure":"fig1a","workers":7}`)
	if m2["id"].(string) != id || !m2["coalesced"].(bool) || m2["cached"].(bool) {
		t.Fatalf("expected coalesce onto %s, got %v", id, m2)
	}
	// A different spec queues separately.
	_, m3 := postSpec(t, ts, `{"figure":"fig1b"}`)
	if m3["id"].(string) == id {
		t.Fatalf("distinct spec coalesced: %v", m3)
	}

	close(stub.block)
	waitState(t, s, id, StateDone)

	// Now the same spec is a cache hit: 200, no new computation.
	resp, m4 := postSpec(t, ts, `{"figure":"fig1a"}`)
	if resp.StatusCode != http.StatusOK || !m4["cached"].(bool) {
		t.Fatalf("expected cache hit, got %d %v", resp.StatusCode, m4)
	}
	waitState(t, s, m3["id"].(string), StateDone)
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("runner calls = %d, want 2 (fig1a once, fig1b once)", got)
	}
	met := s.Metrics()
	if met.Coalesced != 1 || met.CacheHits != 1 {
		t.Fatalf("metrics coalesced=%d cache_hits=%d, want 1/1", met.Coalesced, met.CacheHits)
	}
}

// TestConcurrentIdenticalRequests is the race-mode single-flight proof:
// many concurrent identical POSTs produce exactly one computation and
// byte-identical table bodies.
func TestConcurrentIdenticalRequests(t *testing.T) {
	stub := &stubRunner{table: "the one table\n"}
	s, ts := newTestServer(t, Config{Workers: 2, Runner: stub.run})

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
				strings.NewReader(`{"figure":"fig6","row":"Spark (Java)","col":"5m"}`))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			ids[i] = m["id"].(string)
		}(i)
	}
	wg.Wait()

	first := ids[0]
	for _, id := range ids {
		if id != first {
			t.Fatalf("requests landed on different jobs: %v", ids)
		}
	}
	waitState(t, s, first, StateDone)
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("runner calls = %d, want 1", got)
	}

	bodies := make([]string, n)
	for i := range bodies {
		code, body := getBody(t, ts.URL+"/v1/runs/"+first+"/table")
		if code != http.StatusOK {
			t.Fatalf("table fetch %d: status %d", i, code)
		}
		bodies[i] = body
	}
	for i, b := range bodies {
		if b != bodies[0] {
			t.Fatalf("table body %d differs from body 0", i)
		}
	}
}

func TestBackpressure(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: stub.run})
	defer close(stub.block)

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`) // occupies the worker
	<-stub.started
	postSpec(t, ts, `{"figure":"fig1b"}`) // fills the queue

	resp, m := postSpec(t, ts, `{"figure":"fig2"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %v", resp.StatusCode, m)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without usable Retry-After (%q)", ra)
	}
	if met := s.Metrics(); met.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", met.Rejected)
	}
	// A duplicate of a queued spec still coalesces even at capacity.
	resp, m = postSpec(t, ts, `{"figure":"fig1b"}`)
	if resp.StatusCode != http.StatusAccepted || !m["coalesced"].(bool) {
		t.Fatalf("duplicate at capacity should coalesce, got %d %v", resp.StatusCode, m)
	}
	_ = m1
}

// TestCancelFreesWorkerSlot is the acceptance check: cancelling an
// in-flight run releases its worker (visible in /v1/metrics) and the
// next queued job runs.
func TestCancelFreesWorkerSlot(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 2)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})
	defer close(stub.block)

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	id1 := m1["id"].(string)
	<-stub.started
	_, m2 := postSpec(t, ts, `{"figure":"fig1b"}`) // waits behind the blocked run
	id2 := m2["id"].(string)

	if met := s.Metrics(); met.Running != 1 {
		t.Fatalf("running = %d, want 1", met.Running)
	}
	resp, err := http.Post(ts.URL+"/v1/runs/"+id1+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	waitState(t, s, id1, StateCanceled)

	<-stub.started // the queued job got the freed slot
	if met := s.Metrics(); met.Running != 1 || met.Canceled != 1 {
		t.Fatalf("metrics after cancel: running=%d canceled=%d, want 1/1", met.Running, met.Canceled)
	}
	// A canceled job caches nothing: resubmitting computes again.
	_, m3 := postSpec(t, ts, `{"figure":"fig1a"}`)
	if m3["id"].(string) == id1 || m3["cached"].(bool) {
		t.Fatalf("canceled job served from cache: %v", m3)
	}
	// Cancel the queued duplicate landscape to let cleanup drain fast.
	for _, id := range []string{id2, m3["id"].(string)} {
		if r, err := http.Post(ts.URL+"/v1/runs/"+id+"/cancel", "", nil); err == nil {
			r.Body.Close()
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	<-stub.started
	_, m2 := postSpec(t, ts, `{"figure":"fig1b"}`)
	id2 := m2["id"].(string)

	if st, ok := s.Cancel(id2); !ok || st != StateCanceled {
		t.Fatalf("Cancel(queued) = %q, %v", st, ok)
	}
	close(stub.block)
	waitState(t, s, m1["id"].(string), StateDone)
	waitState(t, s, id2, StateCanceled)
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("runner calls = %d, want 1 (canceled queued job must not run)", got)
	}
}

func TestFailedRunNotCached(t *testing.T) {
	stub := &stubRunner{err: fmt.Errorf("boom")}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	waitState(t, s, m1["id"].(string), StateFailed)

	stub.err = nil
	_, m2 := postSpec(t, ts, `{"figure":"fig1a"}`)
	if m2["id"] == m1["id"] || m2["cached"].(bool) {
		t.Fatalf("failure was cached: %v", m2)
	}
	waitState(t, s, m2["id"].(string), StateDone)
}

func TestDrain(t *testing.T) {
	stub := &stubRunner{}
	s := New(Config{Workers: 1, Runner: stub.run})
	j, _, err := s.Submit(core.RunSpec{Figure: "fig1a"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := s.status(j); st.State != StateDone {
		t.Fatalf("queued job after drain = %s, want done (drain completes work)", st.State)
	}
	if _, _, err := s.Submit(core.RunSpec{Figure: "fig1b"}); err != ErrDraining {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
	if !s.Metrics().Draining {
		t.Fatalf("metrics should report draining")
	}
}

func TestDrainTimeoutCancelsInflight(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s := New(Config{Workers: 1, Runner: stub.run})
	j, _, err := s.Submit(core.RunSpec{Figure: "fig1a"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatalf("Drain with stuck job should report the timeout")
	}
	if st := s.status(j); st.State != StateCanceled {
		t.Fatalf("stuck job after timed-out drain = %s, want canceled", st.State)
	}
}

func TestEventsSSE(t *testing.T) {
	stub := &stubRunner{table: "sse table\n"}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m := postSpec(t, ts, `{"figure":"fig1a"}`)
	id := m["id"].(string)
	waitState(t, s, id, StateDone)

	// After completion, the stream replays history and ends with done.
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lastData string
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, ev)
		}
		if d, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = d
		}
	}
	if len(events) < 3 || events[0] != "queued" || events[len(events)-1] != "done" {
		t.Fatalf("event sequence = %v, want queued ... done", events)
	}
	var donePayload struct {
		Table string `json:"table"`
	}
	if err := json.Unmarshal([]byte(lastData), &donePayload); err != nil || donePayload.Table != "sse table\n" {
		t.Fatalf("done payload = %q (err %v), want table bytes", lastData, err)
	}
}

func TestEventsSSELive(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m := postSpec(t, ts, `{"figure":"fig1a"}`)
	id := m["id"].(string)
	<-stub.started

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stub.block)
	}()
	var events []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, ev)
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("live stream events = %v, want trailing done", events)
	}
	waitState(t, s, id, StateDone)
}

func TestMetricsAndListEndpoints(t *testing.T) {
	stub := &stubRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})
	_, m := postSpec(t, ts, `{"figure":"fig1a"}`)
	waitState(t, s, m["id"].(string), StateDone)

	code, body := getBody(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK || !strings.Contains(body, `"submitted": 1`) {
		t.Fatalf("metrics = %d %q", code, body)
	}
	code, body = getBody(t, ts.URL+"/v1/runs")
	if code != http.StatusOK || !strings.Contains(body, m["id"].(string)) {
		t.Fatalf("list = %d %q", code, body)
	}
	code, body = getBody(t, ts.URL+"/v1/figures")
	if code != http.StatusOK || !strings.Contains(body, "fig7c") {
		t.Fatalf("figures = %d %q", code, body)
	}
	code, _ = getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	code, _ = getBody(t, ts.URL+"/v1/runs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown run = %d, want 404", code)
	}
}

func TestCacheEviction(t *testing.T) {
	stub := &stubRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	waitState(t, s, m1["id"].(string), StateDone)
	_, m2 := postSpec(t, ts, `{"figure":"fig1b"}`)
	waitState(t, s, m2["id"].(string), StateDone)

	if s.Job(m1["id"].(string)) != nil {
		t.Fatalf("oldest done job should be evicted at CacheSize=1")
	}
	// Evicted spec recomputes.
	_, m3 := postSpec(t, ts, `{"figure":"fig1a"}`)
	if m3["cached"].(bool) {
		t.Fatalf("evicted result still served from cache: %v", m3)
	}
	waitState(t, s, m3["id"].(string), StateDone)
	if got := stub.calls.Load(); got != 3 {
		t.Fatalf("runner calls = %d, want 3", got)
	}
}
