// Package serve is the mlbench experiment service: a long-running
// HTTP/JSON front end over the benchmark (see cmd/mlbenchd and `mlbench
// serve`). The paper's contribution is a comparison harness whose value
// is asking "run this cell on this platform at this scale" cheaply and
// repeatedly — which a one-shot batch CLI cannot do: every consumer pays
// full recomputation. This package makes runs cheap to repeat:
//
//   - Requests are core.RunSpec JSON bodies, validated up front with
//     actionable errors; accepted runs execute on a bounded worker pool
//     fed by a FIFO queue, with backpressure (429 + Retry-After) when the
//     queue is full and 503 while draining.
//
//   - Identical requests coalesce: a spec's canonical CacheKey addresses
//     at most one computation at a time (single-flight), and completed
//     results are cached by the same key, so a repeated request returns
//     in microseconds. Coalescing and caching are sound because a run's
//     rendered table is a pure function of its CacheKey fields — byte-
//     identical at any worker count, fresh or replayed.
//
//   - Clients can stream per-iteration progress and the final
//     virtual-clock table over SSE, download the run's Chrome trace-event
//     JSON or CSV (reusing internal/trace's exporters), cancel an
//     in-flight run (context cancellation stops the simulation mid-phase
//     and frees the worker slot), and watch the queue through the metrics
//     endpoint.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/trace"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// RunOutput is what a completed run serves: the rendered virtual-clock
// table (the exact bytes `mlbench run` would print), the paper-agreement
// counts, and the captured trace for the download endpoints.
type RunOutput struct {
	Table    string
	Markdown string
	Matched  int
	Total    int
	Recorder *trace.Recorder
}

// Runner executes one validated, normalized spec. Injectable so handler
// tests can run without simulating anything.
type Runner func(ctx context.Context, spec core.RunSpec, progress func(core.ProgressEvent)) (*RunOutput, error)

// DefaultRunner executes the spec through core.Execute with a fresh
// trace recorder and the service's progress sink attached. File exports
// named by the spec are skipped — the service exposes download endpoints
// instead of writing to its own filesystem.
func DefaultRunner(ctx context.Context, spec core.RunSpec, progress func(core.ProgressEvent)) (*RunOutput, error) {
	rec := trace.NewRecorder()
	res, err := core.Execute(ctx, spec, core.ExecOptions{Recorder: rec, Progress: progress, SkipExports: true})
	if err != nil {
		return nil, err
	}
	m, n := res.Table.Agreement(3)
	return &RunOutput{
		Table:    res.Table.Render(),
		Markdown: res.Table.RenderMarkdown(),
		Matched:  m,
		Total:    n,
		Recorder: rec,
	}, nil
}

// Config tunes a Server.
type Config struct {
	// Workers is the bounded pool of concurrent experiment runs
	// (default 2). Each run may itself use up to its spec's Workers host
	// goroutines.
	Workers int
	// QueueDepth bounds the FIFO of accepted-but-not-started jobs;
	// submissions beyond it are rejected with 429 (default 16).
	QueueDepth int
	// CacheSize bounds how many completed jobs are retained for cache
	// hits and artifact downloads; the oldest are evicted (default 64).
	CacheSize int
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (default 2s).
	RetryAfter time.Duration
	// ProgressInterval throttles per-run SSE progress events (default
	// 100ms; progress is a stream hint, not a record).
	ProgressInterval time.Duration
	// Autoscale, when non-nil, replaces the fixed Workers pool with an
	// elastic one: the pool starts at Autoscale.Min and a controller
	// grows it toward Autoscale.Max on queue pressure and shrinks it back
	// when idle (see AutoscaleConfig). Workers is ignored.
	Autoscale *AutoscaleConfig
	// Runner executes specs (default DefaultRunner).
	Runner Runner
	// Log, when non-nil, receives one line per lifecycle transition.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
		if n := runtime.GOMAXPROCS(0); n < 2 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner
	}
	return c
}

// Event is one SSE frame of a job's lifecycle.
type Event struct {
	// Type is the SSE event name: queued, started, progress, done,
	// failed, canceled.
	Type string
	// Data is the JSON-marshaled payload.
	Data any
}

// Job is one submitted run and its lifecycle. All mutable fields are
// guarded by the owning Server's mutex.
type Job struct {
	ID   string
	Key  string
	Spec core.RunSpec

	state    string
	output   *RunOutput
	errMsg   string
	hits     int // coalesced + cached requests served by this job
	created  time.Time
	finished time.Time

	cancel   context.CancelFunc
	canceled bool // cancellation requested (queued jobs skip execution)
	done     chan struct{}

	history []Event
	subs    map[chan Event]struct{}
}

// Metrics is the service counter snapshot (GET /v1/metrics). The JSON
// names are a stable scrape contract: the load driver (internal/loadgen)
// and the autoscaler read queue_depth, workers, workers_busy, cache_hits,
// and cache_misses by these exact names, and TestMetricsSchemaStable pins
// the full set — extend it, never rename.
type Metrics struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Coalesced   int64 `json:"coalesced"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Rejected    int64 `json:"rejected"`
	Running     int   `json:"running"`
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Workers     int   `json:"workers"`
	WorkersBusy int   `json:"workers_busy"`
	WorkersMin  int   `json:"workers_min"`
	WorkersMax  int   `json:"workers_max"`
	ScaleUps    int64 `json:"scale_ups"`
	ScaleDowns  int64 `json:"scale_downs"`
	Jobs        int   `json:"jobs"`
	Draining    bool  `json:"draining"`
}

// Server is the experiment service core: the job table, the single-flight
// index, the FIFO queue, and the worker pool. Wrap it in Handler() for
// HTTP.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job ids, submission order
	byKey    map[string]*Job // single-flight + cache index
	lru      []string        // done job ids, completion order (eviction)
	queue    chan *Job
	draining bool
	nextID   int
	running  int
	metrics  Metrics

	// Elastic pool state (Config.Autoscale): pool counts started workers,
	// retiring counts outstanding retire tokens not yet consumed, scaler
	// is the policy, scaleEvents the applied-decision log.
	pool        int
	retiring    int
	retire      chan struct{}
	scaler      *Autoscaler
	scaleEvents []ScaleEvent
	ctlStop     chan struct{}

	wg sync.WaitGroup
}

// New starts a Server and its worker pool (fixed at cfg.Workers, or
// elastic between cfg.Autoscale.Min and .Max when autoscaling is on).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		jobs:  map[string]*Job{},
		byKey: map[string]*Job{},
		queue: make(chan *Job, cfg.QueueDepth),
	}
	start := cfg.Workers
	if cfg.Autoscale != nil {
		s.scaler = NewAutoscaler(*cfg.Autoscale)
		start = s.scaler.Config().Min
		s.retire = make(chan struct{}, s.scaler.Config().Max)
		s.ctlStop = make(chan struct{})
		go s.controller()
	}
	s.mu.Lock()
	s.spawnLocked(start)
	s.mu.Unlock()
	return s
}

// spawnLocked starts n workers. Caller holds s.mu.
func (s *Server) spawnLocked(n int) {
	for i := 0; i < n; i++ {
		s.pool++
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// SubmitDisposition says how a submission was satisfied.
type SubmitDisposition struct {
	// Coalesced is true when the spec matched a queued or running job.
	Coalesced bool
	// Cached is true when the spec matched a completed job's result.
	Cached bool
}

// ErrQueueFull rejects a submission when the FIFO is at capacity; the
// HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = fmt.Errorf("serve: queue full")

// ErrDraining rejects submissions during graceful shutdown (503).
var ErrDraining = fmt.Errorf("serve: draining")

// Submit validates and enqueues a spec, or coalesces it onto an existing
// job with the same cache key. The returned job is queued, running, or
// already done (cache hit).
func (s *Server) Submit(spec core.RunSpec) (*Job, SubmitDisposition, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, SubmitDisposition{}, err
	}
	key := spec.CacheKey()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, SubmitDisposition{}, ErrDraining
	}
	if j := s.byKey[key]; j != nil {
		j.hits++
		disp := SubmitDisposition{Coalesced: !terminal(j.state), Cached: j.state == StateDone}
		if disp.Cached {
			s.metrics.CacheHits++
		} else {
			s.metrics.Coalesced++
		}
		return j, disp, nil
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.metrics.Rejected++
		return nil, SubmitDisposition{}, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("r%d", s.nextID),
		Key:     key,
		Spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
		subs:    map[chan Event]struct{}{},
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.byKey[key] = j
	s.metrics.Submitted++
	s.metrics.CacheMisses++ // fresh computation: neither coalesced nor cached
	s.emitLocked(j, Event{Type: StateQueued, Data: map[string]any{"id": j.ID, "key": j.Key}})
	s.queue <- j // cannot block: len(queue) checked under mu
	s.logf("serve: %s queued %s (%s)", j.ID, j.Spec.Figure, j.Key[:12])
	return j, SubmitDisposition{}, nil
}

// Job returns the job by id, or nil.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel cancels a queued or running job. It reports the job's state
// after the call; ok is false when the id is unknown.
func (s *Server) Cancel(id string) (state string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return "", false
	}
	switch j.state {
	case StateQueued:
		j.canceled = true
		s.finishLocked(j, StateCanceled, nil, "canceled while queued")
	case StateRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel() // the runner observes ctx and returns; runJob finishes the job
		}
	}
	return j.state, true
}

// worker consumes the FIFO until the queue closes on drain or a retire
// token arrives from a scale-down. Retire tokens are only consumed
// between jobs, never mid-run: an in-flight run always survives a
// scale-down.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j, ok := <-s.queue:
			if !ok {
				s.mu.Lock()
				s.pool--
				s.mu.Unlock()
				return
			}
			s.runJob(j)
		case <-s.retire: // nil channel when autoscaling is off: never ready
			s.mu.Lock()
			s.pool--
			s.retiring--
			s.mu.Unlock()
			return
		}
	}
}

// controller re-evaluates the elastic pool every Autoscale.Interval until
// drain.
func (s *Server) controller() {
	t := time.NewTicker(s.scaler.Config().Interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctlStop:
			return
		case now := <-t.C:
			s.evaluateScale(now)
		}
	}
}

// evaluateScale feeds one load sample to the policy and applies its
// decision. Exposed on the Server (rather than inlined in controller) so
// tests can step the pool without waiting out real intervals.
func (s *Server) evaluateScale(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.scaler == nil {
		return
	}
	sample := LoadSample{Queue: len(s.queue), Busy: s.running, Workers: s.pool - s.retiring}
	target, reason := s.scaler.Decide(now, sample)
	if target == sample.Workers {
		return
	}
	s.applyScaleLocked(sample.Workers, target, now, reason)
}

// applyScaleLocked resizes the effective pool from 'from' to 'target':
// scale-ups first cancel pending retirements, then spawn; scale-downs
// enqueue retire tokens that idle workers consume. Caller holds s.mu.
func (s *Server) applyScaleLocked(from, target int, now time.Time, reason string) {
	delta := target - from
cancel:
	for delta > 0 && s.retiring > 0 {
		select {
		case <-s.retire:
			s.retiring--
			delta--
		default:
			// A token already raced to a worker (it will exit and account
			// for itself); spawn the remainder instead.
			break cancel
		}
	}
	if delta > 0 {
		s.spawnLocked(delta)
	}
	for i := 0; i < -delta; i++ {
		select {
		case s.retire <- struct{}{}:
			s.retiring++
		default: // channel full (cap Max): every worker already has a token
		}
	}
	if target > from {
		s.metrics.ScaleUps++
	} else {
		s.metrics.ScaleDowns++
	}
	s.scaleEvents = append(s.scaleEvents, ScaleEvent{At: now, From: from, To: target, Reason: reason})
	s.logf("serve: scale %d -> %d workers (%s)", from, target, reason)
}

// ScaleEvents returns a copy of the applied scaling decisions, oldest
// first.
func (s *Server) ScaleEvents() []ScaleEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ScaleEvent(nil), s.scaleEvents...)
}

// runJob executes one dequeued job unless it was cancelled while queued.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	s.running++
	s.metrics.Running = s.running
	s.emitLocked(j, Event{Type: "started", Data: map[string]any{"id": j.ID}})
	s.mu.Unlock()
	s.logf("serve: %s running", j.ID)

	progress := s.progressSink(j)
	out, err := s.cfg.Runner(ctx, j.Spec, progress)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.metrics.Running = s.running
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, out, "")
	case j.canceled || ctx.Err() != nil:
		s.finishLocked(j, StateCanceled, nil, err.Error())
	default:
		s.finishLocked(j, StateFailed, nil, err.Error())
	}
}

// progressSink wraps the job's SSE fan-out with wall-clock throttling:
// phase barriers arrive far faster than clients care, and progress is a
// hint, not a record — the terminal event carries the full result.
func (s *Server) progressSink(j *Job) func(core.ProgressEvent) {
	var last time.Time
	return func(e core.ProgressEvent) {
		now := time.Now()
		if now.Sub(last) < s.cfg.ProgressInterval {
			return
		}
		last = now
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.state != StateRunning {
			return
		}
		s.emitLocked(j, Event{Type: "progress", Data: e})
	}
}

// finishLocked moves a job to a terminal state, updates the single-flight
// index (results stay cached, errors never do), notifies subscribers, and
// evicts the oldest cached results beyond CacheSize. Caller holds s.mu.
func (s *Server) finishLocked(j *Job, state string, out *RunOutput, errMsg string) {
	if terminal(j.state) {
		return
	}
	j.state = state
	j.output = out
	j.errMsg = errMsg
	j.finished = time.Now()
	switch state {
	case StateDone:
		s.metrics.Completed++
		s.lru = append(s.lru, j.ID)
		data := map[string]any{"id": j.ID, "matched": out.Matched, "total": out.Total, "table": out.Table}
		s.emitLocked(j, Event{Type: StateDone, Data: data})
	case StateFailed:
		s.metrics.Failed++
		delete(s.byKey, j.Key)
		s.emitLocked(j, Event{Type: StateFailed, Data: map[string]any{"id": j.ID, "error": errMsg}})
	case StateCanceled:
		s.metrics.Canceled++
		delete(s.byKey, j.Key)
		s.emitLocked(j, Event{Type: StateCanceled, Data: map[string]any{"id": j.ID}})
	}
	close(j.done)
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan Event]struct{}{}
	s.logf("serve: %s %s", j.ID, state)
	s.evictLocked()
}

// evictLocked drops the oldest completed jobs beyond CacheSize — their
// cached tables, traces, and status records go together.
func (s *Server) evictLocked() {
	for len(s.lru) > s.cfg.CacheSize {
		id := s.lru[0]
		s.lru = s.lru[1:]
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if s.byKey[j.Key] == j {
			delete(s.byKey, j.Key)
		}
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.logf("serve: %s evicted", id)
	}
}

// emitLocked appends an event to the job's history and fans it out to
// subscribers. Sends never block: a slow client loses intermediate
// progress frames, not correctness — terminal results are read from the
// job record after the channel closes. Caller holds s.mu.
func (s *Server) emitLocked(j *Job, ev Event) {
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a live event channel and returns the history so
// far. The channel is closed when the job reaches a terminal state.
func (s *Server) subscribe(j *Job) (history []Event, ch chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history = append([]Event(nil), j.history...)
	if terminal(j.state) {
		return history, nil
	}
	ch = make(chan Event, 64)
	j.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe removes a live channel (no-op after terminal close).
func (s *Server) unsubscribe(j *Job, ch chan Event) {
	if ch == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(j.subs, ch)
}

// Metrics returns a counter snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.Running = s.running
	m.QueueDepth = len(s.queue)
	m.QueueCap = s.cfg.QueueDepth
	m.Workers = s.pool - s.retiring
	m.WorkersBusy = s.running
	if s.scaler != nil {
		m.WorkersMin = s.scaler.Config().Min
		m.WorkersMax = s.scaler.Config().Max
	} else {
		m.WorkersMin = s.cfg.Workers
		m.WorkersMax = s.cfg.Workers
	}
	m.Jobs = len(s.jobs)
	m.Draining = s.draining
	return m
}

// FlushCache drops every cached result (the jobs in done state, with
// their traces and status records) so subsequent identical specs
// recompute. Queued and running jobs are untouched. It returns the number
// of results flushed. Wired to POST /v1/cache/flush; the load driver's
// cache-flush scheduled event uses it to model cold-cache storms.
func (s *Server) FlushCache() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.lru)
	for _, id := range s.lru {
		j := s.jobs[id]
		if j == nil {
			n--
			continue
		}
		if s.byKey[j.Key] == j {
			delete(s.byKey, j.Key)
		}
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.lru = nil
	if n > 0 {
		s.logf("serve: cache flushed (%d results)", n)
	}
	return n
}

// Drain gracefully shuts the pool down: new submissions are rejected
// with ErrDraining, queued and in-flight jobs run to completion, and
// Drain returns when the pool is idle or ctx expires (the remaining jobs
// are then cancelled so workers exit).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		if s.ctlStop != nil {
			close(s.ctlStop)
		}
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.canceled = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-idle
		return fmt.Errorf("serve: drain timed out; in-flight jobs were cancelled: %w", ctx.Err())
	}
}
