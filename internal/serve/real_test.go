package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/trace"
)

// TestServedTableMatchesDirectRun drives the real DefaultRunner end to
// end on one reduced-scale cell and asserts the acceptance criterion:
// the bytes served by /v1/runs/{id}/table are identical to what a
// direct core.Execute (the `mlbench run` path) renders — fresh,
// coalesced, and cached, regardless of the submitted worker count.
func TestServedTableMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation run")
	}
	spec := core.RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m", Iterations: 1, ScaleDiv: 0.02}
	res, err := core.Execute(context.Background(), spec, core.ExecOptions{SkipExports: true})
	if err != nil {
		t.Fatalf("direct Execute: %v", err)
	}
	want := res.Table.Render()

	s, ts := newTestServer(t, Config{Workers: 2})

	body := `{"figure":"fig6","row":"Spark (Java)","col":"5m","iters":1,"scalediv":0.02}`
	_, m1 := postSpec(t, ts, body)
	id := m1["id"].(string)
	waitState(t, s, id, StateDone)

	code, got := getBody(t, ts.URL+"/v1/runs/"+id+"/table")
	if code != http.StatusOK {
		t.Fatalf("table fetch: %d", code)
	}
	if got != want {
		t.Fatalf("served table differs from direct run:\n--- served ---\n%s--- direct ---\n%s", got, want)
	}

	// Same spec at a different worker count: cache hit, same bytes.
	_, m2 := postSpec(t, ts, `{"figure":"fig6","row":"Spark (Java)","col":"5m","iters":1,"scalediv":0.02,"workers":3}`)
	if m2["id"].(string) != id || !m2["cached"].(bool) {
		t.Fatalf("worker-count variant should be a cache hit on %s, got %v", id, m2)
	}
	_, got2 := getBody(t, ts.URL+"/v1/runs/"+id+"/table")
	if got2 != want {
		t.Fatalf("cached table differs from direct run")
	}

	// The run captured a trace; both download endpoints serve it.
	code, chrome := getBody(t, ts.URL+"/v1/runs/"+id+"/trace")
	if code != http.StatusOK || !strings.Contains(chrome, `"traceEvents"`) {
		t.Fatalf("trace endpoint = %d (traceEvents present: %v)", code, strings.Contains(chrome, `"traceEvents"`))
	}
	code, csv := getBody(t, ts.URL+"/v1/runs/"+id+"/trace.csv")
	if code != http.StatusOK || !strings.HasPrefix(csv, "type,cell,cat,name,machine") {
		t.Fatalf("trace.csv endpoint = %d %q...", code, csv[:min(len(csv), 60)])
	}
}

// TestRealRunCancellation cancels an in-flight simulation and asserts
// the worker comes back (the sim observes ctx mid-phase).
func TestRealRunCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation run")
	}
	started := make(chan struct{}, 1)
	runner := func(ctx context.Context, spec core.RunSpec, progress func(core.ProgressEvent)) (*RunOutput, error) {
		started <- struct{}{}
		rec := trace.NewRecorder()
		_, err := core.Execute(ctx, spec, core.ExecOptions{Recorder: rec, Progress: progress, SkipExports: true})
		if err != nil {
			return nil, err
		}
		return &RunOutput{Table: "unreachable"}, nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	// A full fig1a run takes long enough that cancellation lands mid-run.
	j, _, err := s.Submit(core.RunSpec{Figure: "fig1a", Iterations: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	time.Sleep(20 * time.Millisecond)
	if st, ok := s.Cancel(j.ID); !ok {
		t.Fatalf("Cancel: unknown job (state %q)", st)
	}
	select {
	case <-j.done:
	case <-time.After(15 * time.Second):
		t.Fatalf("cancelled simulation did not stop")
	}
	if st := s.status(j); st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if met := s.Metrics(); met.Running != 0 {
		t.Fatalf("running = %d after cancel, want 0", met.Running)
	}
}
