package serve

import (
	"fmt"
	"time"
)

// AutoscaleConfig tunes the elastic worker pool. When Config.Autoscale is
// non-nil, the Server starts with Min workers and a controller goroutine
// re-evaluates the pool every Interval against the queue depth and worker
// utilization; the pool grows under bursts and drains back when idle.
// Scale-downs only retire idle workers — a worker mid-run always finishes
// its job first.
type AutoscaleConfig struct {
	// Min and Max bound the pool (defaults 1 and 8).
	Min int `json:"min"`
	Max int `json:"max"`
	// Interval is the evaluation cadence (default 1s). A burst that fills
	// the queue triggers a scale-up on the very next evaluation: scale-up
	// hysteresis is intentionally 1 interval, because under-provisioning
	// costs latency while over-provisioning only costs idle goroutines.
	Interval time.Duration `json:"interval_ns"`
	// UpQueue is the queue depth that triggers a scale-up (default 2).
	// The step is proportional: queue/UpQueue extra workers, clamped to
	// Max, so a deep backlog jumps the pool instead of creeping up.
	UpQueue int `json:"up_queue"`
	// DownStreak is the number of consecutive low-load evaluations (empty
	// queue, utilization below DownUtil) required before removing one
	// worker (default 3). This is the flap damper: a queue oscillating
	// around the threshold resets the streak and never scales down.
	DownStreak int `json:"down_streak"`
	// DownUtil is the busy/workers ratio under which an evaluation counts
	// toward DownStreak (default 0.5).
	DownUtil float64 `json:"down_util"`
	// Cooldown is the minimum gap between any two scaling actions
	// (default 2*Interval). Within it the controller holds the pool even
	// when thresholds are crossed.
	Cooldown time.Duration `json:"cooldown_ns"`
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.UpQueue <= 0 {
		c.UpQueue = 2
	}
	if c.DownStreak <= 0 {
		c.DownStreak = 3
	}
	if c.DownUtil <= 0 || c.DownUtil >= 1 {
		c.DownUtil = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	return c
}

// LoadSample is one controller observation of the pool.
type LoadSample struct {
	// Queue is the number of accepted-but-not-started jobs.
	Queue int
	// Busy is the number of workers currently executing a job.
	Busy int
	// Workers is the effective pool size (started workers minus pending
	// retirements).
	Workers int
}

// ScaleEvent records one applied scaling decision (GET /v1/autoscaler).
type ScaleEvent struct {
	At     time.Time `json:"at"`
	From   int       `json:"from"`
	To     int       `json:"to"`
	Reason string    `json:"reason"`
}

// Autoscaler is the pure scaling policy: feed it one LoadSample per
// evaluation interval and it answers the target pool size. It is
// deliberately free of goroutines and clocks so step-response tests can
// drive it sample by sample; the Server wraps it in a ticker.
type Autoscaler struct {
	cfg        AutoscaleConfig
	lowStreak  int
	lastAction time.Time
	acted      bool
}

// NewAutoscaler builds a policy with the config's defaults applied.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return &Autoscaler{cfg: cfg.withDefaults()}
}

// Config returns the defaulted configuration the policy runs with.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Decide consumes one evaluation sample and returns the target pool size
// plus a human-readable reason. target == s.Workers means hold. The
// policy:
//
//   - scale UP when the queue reaches UpQueue (or every worker is busy
//     with work waiting), by queue/UpQueue workers, immediately — one
//     high sample is enough;
//   - scale DOWN one worker only after DownStreak consecutive samples
//     with an empty queue and utilization below DownUtil — the
//     hysteresis that stops an oscillating queue from flapping the pool;
//   - never act twice within Cooldown, and always stay inside [Min, Max].
func (a *Autoscaler) Decide(now time.Time, s LoadSample) (target int, reason string) {
	cfg := a.cfg
	workers := s.Workers
	if workers < cfg.Min {
		// Below the floor (e.g. first evaluation of a fresh pool): restore
		// it regardless of streaks or cooldown.
		a.lowStreak = 0
		return cfg.Min, fmt.Sprintf("pool %d below min %d", workers, cfg.Min)
	}
	high := s.Queue >= cfg.UpQueue || (s.Queue > 0 && s.Busy >= workers)
	low := s.Queue == 0 && float64(s.Busy) < cfg.DownUtil*float64(workers)
	if low {
		a.lowStreak++
	} else {
		a.lowStreak = 0
	}
	cooled := !a.acted || !now.Before(a.lastAction.Add(cfg.Cooldown))
	if high && cooled {
		step := s.Queue / cfg.UpQueue
		if step < 1 {
			step = 1
		}
		target = workers + step
		if target > cfg.Max {
			target = cfg.Max
		}
		if target > workers {
			a.act(now)
			return target, fmt.Sprintf("queue %d, busy %d/%d", s.Queue, s.Busy, workers)
		}
		return workers, ""
	}
	if low && a.lowStreak >= cfg.DownStreak && cooled && workers > cfg.Min {
		a.act(now)
		return workers - 1, fmt.Sprintf("idle for %d intervals (busy %d/%d)", a.lowStreak, s.Busy, workers)
	}
	return workers, ""
}

func (a *Autoscaler) act(now time.Time) {
	a.lastAction = now
	a.acted = true
	a.lowStreak = 0
}
