package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/trace"
)

// maxBodyBytes bounds a submitted RunSpec body; specs are a few hundred
// bytes, so anything near the limit is not a spec.
const maxBodyBytes = 1 << 20

// JobStatus is the JSON view of a job (GET /v1/runs/{id}).
type JobStatus struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	State    string       `json:"state"`
	Spec     core.RunSpec `json:"spec"`
	Created  time.Time    `json:"created"`
	Finished *time.Time   `json:"finished,omitempty"`
	Hits     int          `json:"hits"`
	Error    string       `json:"error,omitempty"`
	Matched  int          `json:"matched,omitempty"`
	Total    int          `json:"total,omitempty"`
	Table    string       `json:"table,omitempty"`
}

// status snapshots a job under the server lock.
func (s *Server) status(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Key: j.Key, State: j.state, Spec: j.Spec,
		Created: j.created, Hits: j.hits, Error: j.errMsg,
	}
	if terminal(j.state) {
		f := j.finished
		st.Finished = &f
	}
	if j.output != nil {
		st.Matched, st.Total, st.Table = j.output.Matched, j.output.Total, j.output.Table
	}
	return st
}

// Handler returns the service's HTTP API:
//
//	GET    /healthz             liveness
//	GET    /v1/figures          runnable figure ids
//	POST   /v1/runs             submit a RunSpec (JSON body)
//	GET    /v1/runs             list jobs
//	GET    /v1/runs/{id}        job status (+ result when done)
//	GET    /v1/runs/{id}/table  rendered table, text/plain (exact CLI bytes)
//	GET    /v1/runs/{id}/events SSE lifecycle + progress stream
//	GET    /v1/runs/{id}/trace  Chrome trace-event JSON download
//	GET    /v1/runs/{id}/trace.csv  CSV trace download
//	POST   /v1/runs/{id}/cancel cancel (DELETE /v1/runs/{id} is equivalent)
//	GET    /v1/metrics          queue/cache/worker counters (stable names)
//	GET    /v1/autoscaler       elastic-pool config + applied scale events
//	POST   /v1/cache/flush      drop every cached result
//	POST   /v1/drain            graceful drain (the HTTP twin of SIGTERM)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/figures", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"figures": core.FigureIDs()})
	})
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.withJob(s.handleGet))
	mux.HandleFunc("GET /v1/runs/{id}/table", s.withJob(s.handleTable))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.withJob(s.handleTraceChrome))
	mux.HandleFunc("GET /v1/runs/{id}/trace.csv", s.withJob(s.handleTraceCSV))
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.withJob(s.handleCancel))
	mux.HandleFunc("DELETE /v1/runs/{id}", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /v1/autoscaler", s.handleAutoscaler)
	mux.HandleFunc("POST /v1/cache/flush", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"flushed": s.FlushCache()})
	})
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return mux
}

// handleAutoscaler reports the elastic-pool configuration and the applied
// scaling decisions; the load driver folds the events into its summary.
func (s *Server) handleAutoscaler(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"enabled": false, "events": []ScaleEvent{}}
	s.mu.Lock()
	scaler := s.scaler
	s.mu.Unlock()
	if scaler != nil {
		resp["enabled"] = true
		resp["config"] = scaler.Config()
		resp["events"] = s.ScaleEvents()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDrain triggers the same graceful drain SIGTERM does, over HTTP:
// new submissions start returning 503 immediately, queued and in-flight
// runs finish in the background. The load driver's drain scheduled event
// uses it to measure the 503 tail of a shutdown under traffic. Idempotent.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	go s.Drain(context.Background())
	writeJSON(w, http.StatusOK, map[string]any{"draining": true})
}

// withJob resolves the {id} path segment or 404s.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.Job(r.PathValue("id"))
		if j == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no run %q", r.PathValue("id")))
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := core.ParseRunSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, disp, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil: // validation
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := s.status(j)
	code := http.StatusAccepted
	if disp.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, map[string]any{
		"id": j.ID, "key": j.Key, "state": st.State,
		"coalesced": disp.Coalesced, "cached": disp.Cached,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	runs := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.Job(id); j != nil {
			st := s.status(j)
			st.Table = "" // list stays light; fetch tables per run
			runs = append(runs, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleTable serves the rendered table verbatim — these bytes are the
// service's determinism contract (identical to the CLI's output for the
// same spec), so the handler writes the stored string untouched.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request, j *Job) {
	st := s.status(j)
	if st.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Sprintf("run %s is %s", j.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, st.Table)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *Job) {
	state, _ := s.Cancel(j.ID)
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "state": state})
}

// traceRecorder returns the completed job's recorder, or an error the
// handler already wrote.
func (s *Server) traceRecorder(w http.ResponseWriter, j *Job) *trace.Recorder {
	st := s.status(j)
	if st.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Sprintf("run %s is %s", j.ID, st.State))
		return nil
	}
	s.mu.Lock()
	out := j.output
	s.mu.Unlock()
	if out == nil || out.Recorder == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("run %s captured no trace", j.ID))
		return nil
	}
	return out.Recorder
}

func (s *Server) handleTraceChrome(w http.ResponseWriter, r *http.Request, j *Job) {
	rec := s.traceRecorder(w, j)
	if rec == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-trace.json", j.ID))
	if err := trace.WriteChrome(w, rec); err != nil {
		s.logf("serve: %s trace export: %v", j.ID, err)
	}
}

func (s *Server) handleTraceCSV(w http.ResponseWriter, r *http.Request, j *Job) {
	rec := s.traceRecorder(w, j)
	if rec == nil {
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-trace.csv", j.ID))
	if err := trace.WriteCSV(w, rec); err != nil {
		s.logf("serve: %s trace CSV export: %v", j.ID, err)
	}
}

// handleEvents streams the job lifecycle over SSE: the history so far
// (every subscriber sees queued/started), then live progress frames,
// ending with the terminal event. Progress frames may be dropped for a
// slow client; the terminal frame is always delivered because it is
// rebuilt from the job record after the fan-out channel closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, ch := s.subscribe(j)
	defer s.unsubscribe(j, ch)
	sawTerminal := false
	for _, ev := range history {
		writeSSE(w, ev)
		sawTerminal = sawTerminal || terminal(ev.Type)
	}
	fl.Flush()
	if sawTerminal || ch == nil {
		s.writeTerminalIfMissing(w, j, sawTerminal)
		fl.Flush()
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				s.writeTerminalIfMissing(w, j, sawTerminal)
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			sawTerminal = sawTerminal || terminal(ev.Type)
			fl.Flush()
			if terminal(ev.Type) {
				return
			}
		}
	}
}

// writeTerminalIfMissing emits the terminal event from the job record
// when the live channel closed before delivering it (e.g. the buffered
// frame was dropped or the subscriber raced the finish).
func (s *Server) writeTerminalIfMissing(w io.Writer, j *Job, sawTerminal bool) {
	if sawTerminal {
		return
	}
	st := s.status(j)
	if !terminal(st.State) {
		return
	}
	switch st.State {
	case StateDone:
		writeSSE(w, Event{Type: StateDone, Data: map[string]any{
			"id": st.ID, "matched": st.Matched, "total": st.Total, "table": st.Table}})
	case StateFailed:
		writeSSE(w, Event{Type: StateFailed, Data: map[string]any{"id": st.ID, "error": st.Error}})
	case StateCanceled:
		writeSSE(w, Event{Type: StateCanceled, Data: map[string]any{"id": st.ID}})
	}
}

// writeSSE renders one event frame. The payload is JSON on a single data
// line (json.Marshal never emits raw newlines).
func writeSSE(w io.Writer, ev Event) {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(`{"error":"marshal failed"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
