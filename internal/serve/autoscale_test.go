package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mlbench/internal/core"
)

// step is one Decide invocation of a step-response scenario: the sample
// fed at a given offset and the target the policy must answer.
type step struct {
	atSec  float64
	sample LoadSample
	want   int
}

// runSteps drives a fresh policy through the scenario.
func runSteps(t *testing.T, cfg AutoscaleConfig, steps []step) {
	t.Helper()
	a := NewAutoscaler(cfg)
	t0 := time.Unix(1000, 0)
	for i, st := range steps {
		now := t0.Add(time.Duration(st.atSec * float64(time.Second)))
		got, reason := a.Decide(now, st.sample)
		if got != st.want {
			t.Fatalf("step %d (t=%.1fs, sample %+v): target = %d (%s), want %d",
				i, st.atSec, st.sample, got, reason, st.want)
		}
	}
}

// TestAutoscalerStepResponses is the table-driven satellite battery:
// burst scale-up within one evaluation, flap-proof hysteresis, cooldown,
// and the min/max clamps.
func TestAutoscalerStepResponses(t *testing.T) {
	cfg := AutoscaleConfig{
		Min: 1, Max: 4,
		Interval:   time.Second,
		UpQueue:    2,
		DownStreak: 3,
		DownUtil:   0.5,
		Cooldown:   2 * time.Second,
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			// A burst filling the queue scales up on the very next
			// evaluation — no warmup streak required.
			name: "burst scales up within one interval",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 1}, 1},
				{1, LoadSample{Queue: 4, Busy: 1, Workers: 1}, 3}, // +queue/UpQueue = +2
			},
		},
		{
			// All workers busy with anything queued counts as pressure
			// even below the UpQueue threshold.
			name: "saturated pool with backlog scales up",
			steps: []step{
				{0, LoadSample{Queue: 1, Busy: 2, Workers: 2}, 3},
			},
		},
		{
			// A queue oscillating between empty and almost-threshold
			// resets the low streak every time: the pool never moves.
			name: "oscillating queue does not flap",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 2},
				{1, LoadSample{Queue: 1, Busy: 1, Workers: 2}, 2}, // work resets the streak
				{2, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 2},
				{3, LoadSample{Queue: 1, Busy: 1, Workers: 2}, 2},
				{4, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 2},
				{5, LoadSample{Queue: 1, Busy: 1, Workers: 2}, 2},
			},
		},
		{
			// Three consecutive idle evaluations retire one worker.
			name: "sustained idle scales down by one",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 3},
				{1, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 3},
				{2, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 2},
			},
		},
		{
			// After a scale-up, the cooldown holds the pool even under
			// continued pressure; it may act again once the window ends.
			name: "cooldown respected after scale-up",
			steps: []step{
				{0, LoadSample{Queue: 4, Busy: 1, Workers: 1}, 3},
				{1, LoadSample{Queue: 4, Busy: 3, Workers: 3}, 3}, // inside cooldown
				{2, LoadSample{Queue: 4, Busy: 3, Workers: 3}, 4}, // cooldown over
			},
		},
		{
			// The Max clamp: a huge backlog cannot push past the ceiling.
			name: "max clamp",
			steps: []step{
				{0, LoadSample{Queue: 40, Busy: 1, Workers: 1}, 4},
			},
		},
		{
			// The Min clamp: idling forever never drops below the floor.
			name: "min clamp",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 1}, 1},
				{1, LoadSample{Queue: 0, Busy: 0, Workers: 1}, 1},
				{2, LoadSample{Queue: 0, Busy: 0, Workers: 1}, 1},
				{3, LoadSample{Queue: 0, Busy: 0, Workers: 1}, 1},
			},
		},
		{
			// A pool reported below Min (fresh start) is restored
			// immediately.
			name: "below-min pool restored",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 0}, 1},
			},
		},
		{
			// After the cooldown, sustained idle keeps stepping down one
			// worker per window until Min.
			name: "drain back to min across cooldowns",
			steps: []step{
				{0, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 3},
				{1, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 3},
				{2, LoadSample{Queue: 0, Busy: 0, Workers: 3}, 2},
				{3, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 2}, // streak restarts + cooldown
				{4, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 2},
				{5, LoadSample{Queue: 0, Busy: 0, Workers: 2}, 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runSteps(t, cfg, tc.steps) })
	}
}

func TestAutoscaleConfigDefaults(t *testing.T) {
	cfg := AutoscaleConfig{}.withDefaults()
	if cfg.Min != 1 || cfg.Max != 8 || cfg.Interval != time.Second ||
		cfg.UpQueue != 2 || cfg.DownStreak != 3 || cfg.DownUtil != 0.5 ||
		cfg.Cooldown != 2*time.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if got := (AutoscaleConfig{Min: 3}).withDefaults(); got.Max != 8 {
		t.Fatalf("Max should default above Min, got %+v", got)
	}
	if got := (AutoscaleConfig{Min: 3, Max: 2}).withDefaults(); got.Max != 3 {
		t.Fatalf("Max below Min should clamp to Min, got %+v", got)
	}
}

// TestScaleDownKeepsInflightRun proves the satellite claim: a worker
// mid-run never consumes a retire token, so scaling the pool down under
// an in-flight job lets the job finish normally.
func TestScaleDownKeepsInflightRun(t *testing.T) {
	hold := make(chan struct{}) // fig2 blocks on this; other figures finish at once
	started := make(chan string, 8)
	runner := func(ctx context.Context, spec core.RunSpec, _ func(core.ProgressEvent)) (*RunOutput, error) {
		started <- spec.Figure
		if spec.Figure == "fig2" {
			select {
			case <-hold:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &RunOutput{Table: "t\n", Markdown: "t\n", Matched: 1, Total: 1}, nil
	}
	cfg := Config{
		Runner: runner,
		// Interval is huge: the test drives evaluateScale directly.
		Autoscale: &AutoscaleConfig{Min: 1, Max: 3, Interval: time.Hour, UpQueue: 1, DownStreak: 1, Cooldown: time.Nanosecond},
	}
	s, ts := newTestServer(t, cfg)

	// Occupy the single starting worker, then queue two more runs.
	_, mHeld := postSpec(t, ts, `{"figure":"fig2"}`)
	heldID := mHeld["id"].(string)
	<-started
	_, mA := postSpec(t, ts, `{"figure":"fig1a"}`)
	_, mB := postSpec(t, ts, `{"figure":"fig1b"}`)
	now := time.Unix(2000, 0)
	s.evaluateScale(now) // queue=2, UpQueue=1: proportional step to 3 workers
	<-started
	<-started
	if got := s.Metrics().Workers; got != 3 {
		t.Fatalf("workers after scale-up = %d, want 3", got)
	}
	if ups := s.Metrics().ScaleUps; ups != 1 {
		t.Fatalf("scale_ups = %d, want 1", ups)
	}

	// The two quick runs finish; fig2 stays in flight on worker 1.
	waitState(t, s, mA["id"].(string), StateDone)
	waitState(t, s, mB["id"].(string), StateDone)

	// Idle evaluation: queue empty, 1/3 busy — retire one worker. The next
	// evaluation sees 1/2 busy, which is not below DownUtil 0.5, so the
	// pool holds at 2: a scale-down never drains below the load.
	now = now.Add(time.Minute)
	s.evaluateScale(now)
	now = now.Add(time.Minute)
	s.evaluateScale(now)
	if got := s.Metrics().Workers; got != 2 {
		t.Fatalf("workers after idle scale-down = %d, want 2", got)
	}
	if downs := s.Metrics().ScaleDowns; downs != 1 {
		t.Fatalf("scale_downs = %d, want 1", downs)
	}

	// The in-flight run survived the scale-down and completes normally.
	if st := s.status(s.Job(heldID)); st.State != StateRunning {
		t.Fatalf("in-flight run state during scale-down = %s, want running", st.State)
	}
	close(hold)
	waitState(t, s, heldID, StateDone)

	ev := s.ScaleEvents()
	if len(ev) != 2 || ev[0].From != 1 || ev[0].To != 3 || ev[1].From != 3 || ev[1].To != 2 {
		t.Fatalf("scale events = %+v, want 1->3 then 3->2", ev)
	}
}

// TestMetricsSchemaStable pins the /v1/metrics JSON field names: the load
// driver and the autoscaler scrape queue_depth, workers, workers_busy,
// cache_hits, and cache_misses by name, so a rename is a breaking change
// that must fail here first.
func TestMetricsSchemaStable(t *testing.T) {
	want := []string{
		"cache_hits", "cache_misses", "canceled", "coalesced", "completed",
		"draining", "failed", "jobs", "queue_cap", "queue_depth", "rejected",
		"running", "scale_downs", "scale_ups", "submitted", "workers",
		"workers_busy", "workers_max", "workers_min",
	}
	data, err := json.Marshal(Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	var got []string
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("metrics JSON schema changed:\n got %v\nwant %v", got, want)
	}
}

// TestCacheFlushEndpoint: flushed results recompute; queued/running jobs
// survive a flush.
func TestCacheFlushEndpoint(t *testing.T) {
	stub := &stubRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	waitState(t, s, m1["id"].(string), StateDone)

	resp, err := http.Post(ts.URL+"/v1/cache/flush", "", nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	var fr struct {
		Flushed int `json:"flushed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatalf("decode flush: %v", err)
	}
	resp.Body.Close()
	if fr.Flushed != 1 {
		t.Fatalf("flushed = %d, want 1", fr.Flushed)
	}

	_, m2 := postSpec(t, ts, `{"figure":"fig1a"}`)
	if m2["cached"].(bool) || m2["id"] == m1["id"] {
		t.Fatalf("flushed spec still served from cache: %v", m2)
	}
	waitState(t, s, m2["id"].(string), StateDone)
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("runner calls = %d, want 2 (flush forces recompute)", got)
	}
}

// TestDrainEndpoint: POST /v1/drain flips the server into the 503 tail
// while in-flight work completes.
func TestDrainEndpoint(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub.run})

	_, m1 := postSpec(t, ts, `{"figure":"fig1a"}`)
	<-stub.started
	resp, err := http.Post(ts.URL+"/v1/drain", "", nil)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp.Body.Close()

	// New submissions now get 503; the in-flight run still finishes.
	deadline := time.After(5 * time.Second)
	for {
		r2, m2 := postSpec(t, ts, `{"figure":"fig1b"}`)
		if r2.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(m2["error"].(string), "draining") {
				t.Fatalf("503 body = %v", m2)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("drain endpoint never rejected new work (last %d %v)", r2.StatusCode, m2)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stub.block)
	waitState(t, s, m1["id"].(string), StateDone)
}
