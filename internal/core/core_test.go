package core

import "testing"

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 17 {
		t.Fatalf("got %d figure ids: %v", len(ids), ids)
	}
	if ids[0] != "fig1a" || ids[len(ids)-1] != "fig-scale" {
		t.Errorf("unexpected ordering: %v", ids)
	}
}

func TestExperimentRun(t *testing.T) {
	tbl, err := Experiment{
		Figure:  "fig6",
		Options: Options{Iterations: 1},
		Faults:  FaultConfig{Failures: 1},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	cell := tbl.Cells["Spark (Java)"]["5m"]
	if cell.Failed || cell.IterSec <= 0 {
		t.Fatalf("5m cell should succeed under one crash: %+v", cell)
	}
	var noted bool
	for _, n := range cell.Notes {
		if len(n) > 6 && n[:6] == "fault:" {
			noted = true
		}
	}
	if !noted {
		t.Errorf("experiment with faults recorded no fault note: %v", cell.Notes)
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("bogus", Options{}); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunFigureAndSummarize(t *testing.T) {
	tbl, err := RunFigure("fig6", Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize([]*Table{tbl}, 3)
	if len(sums) != 1 || sums[0].Figure != "fig6" {
		t.Fatalf("summary = %+v", sums)
	}
	if sums[0].Total == 0 {
		t.Error("no comparable cells")
	}
}
