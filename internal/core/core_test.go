package core

import "testing"

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 10 {
		t.Fatalf("got %d figure ids: %v", len(ids), ids)
	}
	if ids[0] != "fig1a" || ids[len(ids)-1] != "fig6" {
		t.Errorf("unexpected ordering: %v", ids)
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("bogus", Options{}); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunFigureAndSummarize(t *testing.T) {
	tbl, err := RunFigure("fig6", Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize([]*Table{tbl}, 3)
	if len(sums) != 1 || sums[0].Figure != "fig6" {
		t.Fatalf("summary = %+v", sums)
	}
	if sums[0].Total == 0 {
		t.Error("no comparable cells")
	}
}
