package core

import (
	"math"
	"strings"
	"testing"
)

const validProfileJSON = `{
  "name": "t",
  "templates": [
    {"name": "hot", "spec": {"figure": "fig1a"}},
    {"name": "cold", "weight": 3, "unique_seed": true, "spec": {"figure": "fig1b"}}
  ],
  "phases": [
    {"name": "ramp", "duration_sec": 60, "pattern": "ramp", "rps": 1, "to_rps": 5},
    {"name": "steady", "duration_sec": 30, "rps": 5}
  ],
  "events": [{"at_sec": 70, "action": "cache-flush"}],
  "slo": {"max_p99_ms": 500, "max_429_rate": 0.1}
}`

func TestParseProfileAndNormalize(t *testing.T) {
	p, err := ParseProfile([]byte(validProfileJSON))
	if err != nil {
		t.Fatal(err)
	}
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Compression != 1 || p.BucketSec != 10 || p.Seed != 1 || p.GraceSec != 30 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if p.Templates[0].Weight != 1 || p.Templates[1].Weight != 3 {
		t.Fatalf("template weights: %+v", p.Templates)
	}
	if p.Templates[0].Spec.Iterations != 2 {
		t.Fatalf("template spec not normalized: %+v", p.Templates[0].Spec)
	}
	if p.Phases[1].Pattern != PatternConstant {
		t.Fatalf("default pattern: %+v", p.Phases[1])
	}
	if p.Events[0].Label != EventCacheFlush {
		t.Fatalf("event label default: %+v", p.Events[0])
	}
	if got := p.TotalDurationSec(); got != 90 {
		t.Fatalf("total duration = %g, want 90", got)
	}
}

func TestParseProfileRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"name": "t", "rsp": 1}`,
		`{"name": "t", "templates": [{"name": "a", "spec": {"figgure": "fig1a"}}]}`,
		`{"name": "t", "phases": [{"name": "p", "durationsec": 5}]}`,
	}
	for _, c := range cases {
		if _, err := ParseProfile([]byte(c)); err == nil {
			t.Errorf("unknown field accepted: %s", c)
		}
	}
}

func TestProfileValidateErrors(t *testing.T) {
	base := func() Profile {
		p, err := ParseProfile([]byte(validProfileJSON))
		if err != nil {
			t.Fatal(err)
		}
		return p.Normalize()
	}
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"missing name", func(p *Profile) { p.Name = "" }, "name is required"},
		{"no templates", func(p *Profile) { p.Templates = nil }, "at least one template"},
		{"dup template", func(p *Profile) { p.Templates[1].Name = "hot" }, "duplicate template name"},
		{"bad weight", func(p *Profile) { p.Templates[0].Weight = -1 }, "weight must be > 0"},
		{"bad spec", func(p *Profile) { p.Templates[0].Spec.Figure = "nope" }, "template hot"},
		{"no phases", func(p *Profile) { p.Phases = nil }, "at least one phase"},
		{"bad duration", func(p *Profile) { p.Phases[0].DurationSec = 0 }, "duration_sec must be > 0"},
		{"bad pattern", func(p *Profile) { p.Phases[0].Pattern = "sawtooth" }, "unknown pattern"},
		{"bad burst", func(p *Profile) {
			p.Phases[0] = Phase{Name: "b", DurationSec: 10, Pattern: PatternBurst, RPS: 1}
		}, "burst_rps must be > 0"},
		{"burst len", func(p *Profile) {
			p.Phases[0] = Phase{Name: "b", DurationSec: 10, Pattern: PatternBurst, RPS: 1,
				BurstRPS: 5, BurstEverySec: 4, BurstLenSec: 5}
		}, "burst_len_sec"},
		{"diurnal period", func(p *Profile) {
			p.Phases[0] = Phase{Name: "d", DurationSec: 10, Pattern: PatternDiurnal, RPS: 1, PeakRPS: 5}
		}, "period_sec must be > 0"},
		{"bad event action", func(p *Profile) { p.Events[0].Action = "explode" }, "unknown action"},
		{"event out of range", func(p *Profile) { p.Events[0].AtSec = 1000 }, "outside the profile"},
		{"bad slo rate", func(p *Profile) { v := 1.5; p.SLO.Max429Rate = &v }, "[0, 1]"},
		{"bad slo latency", func(p *Profile) { v := -1.0; p.SLO.MaxP99Ms = &v }, "must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mut(&p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("validate accepted a bad profile")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPhaseRate(t *testing.T) {
	eps := 1e-9
	ramp := Phase{DurationSec: 10, Pattern: PatternRamp, RPS: 2, ToRPS: 12}
	if got := ramp.Rate(0); math.Abs(got-2) > eps {
		t.Fatalf("ramp(0) = %g", got)
	}
	if got := ramp.Rate(5); math.Abs(got-7) > eps {
		t.Fatalf("ramp(5) = %g", got)
	}
	if got := ramp.Rate(10); math.Abs(got-12) > eps {
		t.Fatalf("ramp(10) = %g", got)
	}

	diurnal := Phase{DurationSec: 100, Pattern: PatternDiurnal, RPS: 1, PeakRPS: 9, PeriodSec: 20}
	if got := diurnal.Rate(0); math.Abs(got-1) > eps {
		t.Fatalf("diurnal trough = %g, want 1", got)
	}
	if got := diurnal.Rate(10); math.Abs(got-9) > eps {
		t.Fatalf("diurnal peak = %g, want 9", got)
	}
	if got := diurnal.Rate(20); math.Abs(got-1) > eps {
		t.Fatalf("diurnal full period = %g, want 1", got)
	}

	burst := Phase{DurationSec: 30, Pattern: PatternBurst, RPS: 1, BurstRPS: 8, BurstEverySec: 10, BurstLenSec: 2}
	if got := burst.Rate(0.5); got != 8 {
		t.Fatalf("burst in-window = %g, want 8", got)
	}
	if got := burst.Rate(5); got != 1 {
		t.Fatalf("burst between = %g, want 1", got)
	}
	if got := burst.Rate(10.5); got != 8 {
		t.Fatalf("burst second window = %g, want 8", got)
	}

	constant := Phase{DurationSec: 5, Pattern: PatternConstant, RPS: 3}
	if got := constant.Rate(4); got != 3 {
		t.Fatalf("constant = %g, want 3", got)
	}
}
