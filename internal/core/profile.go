package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Profile is a serializable traffic profile for the load generator
// (internal/loadgen, `mlbench load`): a sequence of arrival-rate phases
// over a mix of RunSpec templates, plus scheduled events (cache flush,
// drain) and the serving SLOs the replay is judged against. Rates are
// expressed in profile time (seconds at compression 1); the driver replays
// the profile at Compression× wall speed, so a 500-second profile at
// compression 100 takes five wall seconds.
type Profile struct {
	// Name identifies the profile in reports.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Compression is the default time-compression factor: profile seconds
	// per wall second (default 1; `mlbench load -compress` overrides).
	Compression float64 `json:"compression,omitempty"`
	// BucketSec is the timeline aggregation bucket, in profile seconds
	// (default 10).
	BucketSec float64 `json:"bucket_sec,omitempty"`
	// Seed drives template selection and per-request seeds (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// GraceSec is how long (profile seconds) the driver keeps polling for
	// in-flight completions after the last phase ends (default 30).
	GraceSec float64 `json:"grace_sec,omitempty"`
	// Templates is the weighted RunSpec mix requests are drawn from.
	Templates []Template `json:"templates"`
	// Phases run back to back; each generates arrivals per its pattern.
	Phases []Phase `json:"phases"`
	// Events fire at absolute profile offsets while phases run.
	Events []ScheduledEvent `json:"events,omitempty"`
	// SLO, when set, turns the replay summary into pass/fail verdicts.
	SLO *SLO `json:"slo,omitempty"`
}

// Template is one entry of the request mix.
type Template struct {
	// Name labels the template in the timeline.
	Name string `json:"name"`
	// Weight is the relative draw probability (default 1).
	Weight float64 `json:"weight,omitempty"`
	// UniqueSeed substitutes a fresh seed into every request drawn from
	// this template, defeating the server's result cache — the knob that
	// separates cache-hit traffic from cache-miss traffic in a mix.
	UniqueSeed bool `json:"unique_seed,omitempty"`
	// Spec is the run submitted for each arrival (validated up front).
	Spec RunSpec `json:"spec"`
}

// Arrival patterns.
const (
	PatternConstant = "constant"
	PatternRamp     = "ramp"
	PatternDiurnal  = "diurnal"
	PatternBurst    = "burst"
)

// Phase is one segment of the traffic timeline.
type Phase struct {
	// Name labels the phase in the timeline and events column.
	Name string `json:"name"`
	// DurationSec is the phase length in profile seconds.
	DurationSec float64 `json:"duration_sec"`
	// Pattern shapes the arrival rate: constant (default), ramp, diurnal,
	// or burst.
	Pattern string `json:"pattern,omitempty"`
	// RPS is the base arrival rate (requests per profile second). Zero is
	// allowed: a constant-0 phase is a drain window.
	RPS float64 `json:"rps"`
	// ToRPS is the ramp's final rate (pattern ramp: rate moves linearly
	// from RPS to ToRPS across the phase).
	ToRPS float64 `json:"to_rps,omitempty"`
	// PeakRPS and PeriodSec shape the diurnal pattern: the rate swings
	// sinusoidally between RPS (trough) and PeakRPS with the given period.
	PeakRPS   float64 `json:"peak_rps,omitempty"`
	PeriodSec float64 `json:"period_sec,omitempty"`
	// BurstRPS/BurstEverySec/BurstLenSec shape the burst pattern: every
	// BurstEverySec the rate jumps from RPS to BurstRPS for BurstLenSec.
	BurstRPS      float64 `json:"burst_rps,omitempty"`
	BurstEverySec float64 `json:"burst_every_sec,omitempty"`
	BurstLenSec   float64 `json:"burst_len_sec,omitempty"`
}

// Rate evaluates the phase's arrival rate λ(t) at offset t (profile
// seconds from the phase start). The schedule generator integrates this
// function; having it on the spec type keeps the pattern semantics next
// to the fields that define them.
func (p Phase) Rate(t float64) float64 {
	switch p.Pattern {
	case PatternRamp:
		if p.DurationSec <= 0 {
			return p.RPS
		}
		return p.RPS + (p.ToRPS-p.RPS)*t/p.DurationSec
	case PatternDiurnal:
		return p.RPS + (p.PeakRPS-p.RPS)*(1-math.Cos(2*math.Pi*t/p.PeriodSec))/2
	case PatternBurst:
		if math.Mod(t, p.BurstEverySec) < p.BurstLenSec {
			return p.BurstRPS
		}
		return p.RPS
	default: // constant
		return p.RPS
	}
}

// Scheduled event actions.
const (
	EventCacheFlush = "cache-flush"
	EventDrain      = "drain"
	EventMark       = "mark"
)

// ScheduledEvent fires a side effect at an absolute profile offset:
// cache-flush (POST /v1/cache/flush — a cold-cache storm), drain (POST
// /v1/drain — graceful shutdown under traffic), or mark (an annotation in
// the timeline, no server effect).
type ScheduledEvent struct {
	AtSec  float64 `json:"at_sec"`
	Action string  `json:"action"`
	// Label annotates the timeline row (defaults to the action).
	Label string `json:"label,omitempty"`
}

// SLO is the serving objective the replay is judged against. Pointer
// fields distinguish "not asserted" from zero. Rates are fractions of
// issued requests in [0, 1]; latencies are wall milliseconds as measured
// at the replayed (compressed) speed.
type SLO struct {
	MaxP50Ms        *float64 `json:"max_p50_ms,omitempty"`
	MaxP99Ms        *float64 `json:"max_p99_ms,omitempty"`
	Max429Rate      *float64 `json:"max_429_rate,omitempty"`
	Max503Rate      *float64 `json:"max_503_rate,omitempty"`
	MaxErrorRate    *float64 `json:"max_error_rate,omitempty"`
	MinCacheHitRate *float64 `json:"min_cache_hit_rate,omitempty"`
	MinCompleted    *int     `json:"min_completed,omitempty"`
}

// ParseProfile decodes a JSON profile strictly: unknown fields anywhere
// (including inside template specs) are rejected so a typo'd knob fails
// loudly instead of silently shaping different traffic.
func ParseProfile(data []byte) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("core: parse profile: %w", err)
	}
	return p, nil
}

// Normalize fills defaulted fields so that a zero-knob profile and one
// with the defaults spelled out replay identically.
func (p Profile) Normalize() Profile {
	if p.Compression == 0 {
		p.Compression = 1
	}
	if p.BucketSec == 0 {
		p.BucketSec = 10
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.GraceSec == 0 {
		p.GraceSec = 30
	}
	ts := make([]Template, len(p.Templates))
	for i, t := range p.Templates {
		if t.Weight == 0 {
			t.Weight = 1
		}
		t.Spec = t.Spec.Normalize()
		ts[i] = t
	}
	p.Templates = ts
	ph := make([]Phase, len(p.Phases))
	for i, x := range p.Phases {
		if x.Pattern == "" {
			x.Pattern = PatternConstant
		}
		ph[i] = x
	}
	p.Phases = ph
	ev := make([]ScheduledEvent, len(p.Events))
	for i, e := range p.Events {
		if e.Label == "" {
			e.Label = e.Action
		}
		ev[i] = e
	}
	p.Events = ev
	return p
}

// TotalDurationSec is the summed phase length in profile seconds.
func (p Profile) TotalDurationSec() float64 {
	var d float64
	for _, ph := range p.Phases {
		d += ph.DurationSec
	}
	return d
}

// Validate checks a normalized profile and returns an actionable error.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: profile: name is required")
	}
	if p.Compression <= 0 {
		return fmt.Errorf("core: profile %s: compression must be > 0, got %g", p.Name, p.Compression)
	}
	if p.BucketSec <= 0 {
		return fmt.Errorf("core: profile %s: bucket_sec must be > 0, got %g", p.Name, p.BucketSec)
	}
	if p.GraceSec < 0 {
		return fmt.Errorf("core: profile %s: grace_sec must be >= 0, got %g", p.Name, p.GraceSec)
	}
	if len(p.Templates) == 0 {
		return fmt.Errorf("core: profile %s: at least one template is required", p.Name)
	}
	seen := map[string]bool{}
	for i, t := range p.Templates {
		if t.Name == "" {
			return fmt.Errorf("core: profile %s: templates[%d]: name is required", p.Name, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("core: profile %s: duplicate template name %q", p.Name, t.Name)
		}
		seen[t.Name] = true
		if t.Weight <= 0 {
			return fmt.Errorf("core: profile %s: template %s: weight must be > 0, got %g", p.Name, t.Name, t.Weight)
		}
		if err := t.Spec.Validate(); err != nil {
			return fmt.Errorf("core: profile %s: template %s: %w", p.Name, t.Name, err)
		}
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("core: profile %s: at least one phase is required", p.Name)
	}
	for i, ph := range p.Phases {
		if err := ph.validate(); err != nil {
			return fmt.Errorf("core: profile %s: phases[%d] (%s): %w", p.Name, i, ph.Name, err)
		}
	}
	total := p.TotalDurationSec()
	for i, e := range p.Events {
		switch e.Action {
		case EventCacheFlush, EventDrain, EventMark:
		default:
			return fmt.Errorf("core: profile %s: events[%d]: unknown action %q (have %s, %s, %s)",
				p.Name, i, e.Action, EventCacheFlush, EventDrain, EventMark)
		}
		if e.AtSec < 0 || e.AtSec > total {
			return fmt.Errorf("core: profile %s: events[%d]: at_sec %g outside the profile (0..%g)",
				p.Name, i, e.AtSec, total)
		}
	}
	if s := p.SLO; s != nil {
		for _, r := range []struct {
			name string
			v    *float64
		}{
			{"max_p50_ms", s.MaxP50Ms}, {"max_p99_ms", s.MaxP99Ms},
		} {
			if r.v != nil && *r.v <= 0 {
				return fmt.Errorf("core: profile %s: slo: %s must be > 0, got %g", p.Name, r.name, *r.v)
			}
		}
		for _, r := range []struct {
			name string
			v    *float64
		}{
			{"max_429_rate", s.Max429Rate}, {"max_503_rate", s.Max503Rate},
			{"max_error_rate", s.MaxErrorRate}, {"min_cache_hit_rate", s.MinCacheHitRate},
		} {
			if r.v != nil && (*r.v < 0 || *r.v > 1) {
				return fmt.Errorf("core: profile %s: slo: %s must be in [0, 1], got %g", p.Name, r.name, *r.v)
			}
		}
		if s.MinCompleted != nil && *s.MinCompleted < 0 {
			return fmt.Errorf("core: profile %s: slo: min_completed must be >= 0, got %d", p.Name, *s.MinCompleted)
		}
	}
	return nil
}

func (p Phase) validate() error {
	if p.Name == "" {
		return fmt.Errorf("name is required")
	}
	if p.DurationSec <= 0 {
		return fmt.Errorf("duration_sec must be > 0, got %g", p.DurationSec)
	}
	if p.RPS < 0 {
		return fmt.Errorf("rps must be >= 0, got %g", p.RPS)
	}
	switch p.Pattern {
	case PatternConstant:
	case PatternRamp:
		if p.ToRPS < 0 {
			return fmt.Errorf("ramp: to_rps must be >= 0, got %g", p.ToRPS)
		}
	case PatternDiurnal:
		if p.PeakRPS < p.RPS {
			return fmt.Errorf("diurnal: peak_rps %g must be >= rps %g", p.PeakRPS, p.RPS)
		}
		if p.PeriodSec <= 0 {
			return fmt.Errorf("diurnal: period_sec must be > 0, got %g", p.PeriodSec)
		}
	case PatternBurst:
		if p.BurstRPS <= 0 {
			return fmt.Errorf("burst: burst_rps must be > 0, got %g", p.BurstRPS)
		}
		if p.BurstEverySec <= 0 {
			return fmt.Errorf("burst: burst_every_sec must be > 0, got %g", p.BurstEverySec)
		}
		if p.BurstLenSec <= 0 || p.BurstLenSec > p.BurstEverySec {
			return fmt.Errorf("burst: burst_len_sec must be in (0, burst_every_sec], got %g", p.BurstLenSec)
		}
	default:
		return fmt.Errorf("unknown pattern %q (have %s, %s, %s, %s)",
			p.Pattern, PatternConstant, PatternRamp, PatternDiurnal, PatternBurst)
	}
	return nil
}
