// Package core is the public face of the benchmark — the paper's primary
// contribution is the benchmark itself ("we hope that our efforts will
// grow into a widely used, standard benchmark for this sort of
// platform"), and this package exposes it as a programmatic API: the five
// ML implementation tasks, the four platform engines they run on, and the
// runner that regenerates every table of the paper's evaluation.
//
// Quick use:
//
//	opts := core.Options{Iterations: 2}
//	table, err := core.RunFigure("fig1a", opts)
//	fmt.Println(table.Render())
//
// Observability: set Options.TraceOut (Chrome trace-event JSON for
// chrome://tracing / Perfetto), Options.TraceCSV, or Options.Metrics to
// capture a structured span/event/metric view of a run, or supply your
// own Options.Recorder (see internal/trace) to aggregate several figures
// into one export. Traces are deterministic: the same options produce
// byte-identical files at any Options.HostWorkers value.
//
// Individual experiments are available through the task packages
// (internal/tasks/...); the simulated platform substrates live in
// internal/dataflow (Spark), internal/relational (SimSQL), internal/gas
// (GraphLab) and internal/bsp (Giraph), all on top of the virtual
// cluster in internal/sim.
package core

import (
	"context"
	"fmt"
	"sort"

	"mlbench/internal/bench"
)

// Options tunes a benchmark run; see bench.Options.
type Options = bench.Options

// Table is a rendered figure with measured and paper values.
type Table = bench.Table

// Cell is one measured table cell.
type Cell = bench.Cell

// FaultConfig configures deterministic fault injection — machine crashes,
// stragglers, and the engines' checkpointing policies; see
// bench.FaultConfig. Set it on Options.Faults (or Experiment.Faults).
type FaultConfig = bench.FaultConfig

// RunSpec is the serializable description of one run — figure or single
// cell, scale, seed, fault schedule, trace capture — with JSON round-trip
// (ParseRunSpec), validation, and a canonical CacheKey. It is the single
// way runs are configured: the `mlbench run` CLI, the experiment
// service's HTTP body, and the perf gate all construct one. See
// bench.RunSpec.
type RunSpec = bench.RunSpec

// TraceSpec is the RunSpec trace section; see bench.TraceSpec.
type TraceSpec = bench.TraceSpec

// ExecOptions is the runtime wiring (recorder, progress sink) attached to
// an Execute call; see bench.ExecOptions.
type ExecOptions = bench.ExecOptions

// SpecResult is the outcome of one executed spec; see bench.SpecResult.
type SpecResult = bench.SpecResult

// ProgressEvent is one phase-barrier progress sample; see
// bench.ProgressEvent.
type ProgressEvent = bench.ProgressEvent

// ParseRunSpec decodes a JSON RunSpec strictly (unknown fields are
// rejected with an actionable error).
func ParseRunSpec(data []byte) (RunSpec, error) { return bench.ParseRunSpec(data) }

// Execute validates, normalizes, and runs a spec; ctx cancels it
// mid-phase. The rendered table depends only on the spec's CacheKey
// fields — never on ctx, Workers, or the attached sinks — which is what
// lets the serving layer coalesce and cache runs byte-identically.
func Execute(ctx context.Context, spec RunSpec, ex ExecOptions) (*SpecResult, error) {
	return bench.ExecuteSpec(ctx, spec, ex)
}

// Experiment is one reproducible benchmark run: a figure plus the options
// and fault schedule to run it with. The zero Faults value reproduces the
// paper's failure-free runs; identical fields always produce
// byte-identical tables.
type Experiment struct {
	// Figure is the figure ID to run (see FigureIDs; the fig7 family
	// measures recovery under injected failures).
	Figure string
	// Options tunes the run; its Faults field is overridden by the
	// Experiment's own Faults when that is active.
	Options Options
	// Faults injects machine crashes and stragglers into every cell.
	Faults FaultConfig
}

// Spec translates the experiment into the equivalent serializable
// RunSpec (the Options' runtime wiring — recorder, progress, context —
// is not part of a spec).
func (e Experiment) Spec() RunSpec {
	opts := e.Options
	if e.Faults.Active() {
		opts.Faults = e.Faults
	}
	return RunSpec{
		Figure:     e.Figure,
		Iterations: opts.Iterations,
		ScaleDiv:   opts.ScaleDiv,
		Seed:       opts.Seed,
		Workers:    opts.HostWorkers,
		Shards:     opts.PSShards,
		Staleness:  opts.PSStaleness,
		Sampler:    opts.Sampler.String(),
		Dataset:    opts.Dataset,
		Faults:     opts.Faults,
		Trace:      TraceSpec{Phases: opts.Trace, Out: opts.TraceOut, CSV: opts.TraceCSV, Metrics: opts.Metrics},
	}
}

// Run executes the experiment and returns its table.
func (e Experiment) Run() (*Table, error) {
	return e.RunContext(context.Background())
}

// RunContext executes the experiment under ctx: cancellation stops the
// simulation mid-phase and returns an error wrapping context.Canceled.
func (e Experiment) RunContext(ctx context.Context) (*Table, error) {
	opts := e.Options
	if e.Faults.Active() {
		opts.Faults = e.Faults
	}
	f := bench.FigureByID(e.Figure, opts)
	if f == nil {
		return nil, fmt.Errorf("core: unknown figure %q (have %v)", e.Figure, FigureIDs())
	}
	return f.RunContext(ctx, opts)
}

// FigureIDs lists every runnable figure of the paper's evaluation, in
// paper order.
func FigureIDs() []string {
	var ids []string
	for _, f := range bench.Figures(Options{}) {
		ids = append(ids, f.ID)
	}
	return ids
}

// RunFigure executes one figure of the evaluation and returns its table.
func RunFigure(id string, opts Options) (*Table, error) {
	f := bench.FigureByID(id, opts)
	if f == nil {
		return nil, fmt.Errorf("core: unknown figure %q (have %v)", id, FigureIDs())
	}
	return f.Run(opts), nil
}

// RunAll executes every figure and returns the tables in paper order.
func RunAll(opts Options) []*Table {
	var out []*Table
	for _, f := range bench.Figures(opts) {
		out = append(out, f.Run(opts))
	}
	return out
}

// Summary condenses a set of tables into per-figure agreement counts.
type Summary struct {
	Figure  string
	Matched int
	Total   int
}

// Summarize computes the per-figure agreement against the paper within
// the given multiplicative factor.
func Summarize(tables []*Table, factor float64) []Summary {
	var out []Summary
	for _, t := range tables {
		m, n := t.Agreement(factor)
		out = append(out, Summary{Figure: t.ID, Matched: m, Total: n})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Figure < out[j].Figure })
	return out
}
