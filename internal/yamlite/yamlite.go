// Package yamlite converts a deliberately small hand-rolled YAML subset
// to JSON (the repo takes no dependencies): indentation-nested mappings,
// `- ` sequences, scalars, quotes, and # comments — which covers every
// profile and dataset spec this repo ships. Anchors, flow collections,
// and multi-line strings are not supported. Callers funnel the JSON into
// their own strict parsers (internal/loadgen profiles, internal/datagen
// dataset specs), so unknown-field and type errors surface there with
// the caller's context.
package yamlite

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ToJSON converts the YAML subset to JSON bytes.
func ToJSON(data []byte) ([]byte, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return []byte("{}"), nil
	}
	v, next, err := parseYAMLBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", lines[next].num)
	}
	return json.Marshal(v)
}

// yamlLine is one significant (non-blank, non-comment) line.
type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content after the indent, comment stripped
}

func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		text := stripYAMLComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if trimmed == "---" { // document marker: ignore a single leading one
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		out = append(out, yamlLine{num: i + 1, indent: indent, text: strings.TrimRight(text[indent:], " ")})
	}
	return out, nil
}

// stripYAMLComment cuts an unquoted trailing comment: a # at line start
// or preceded by whitespace, outside single or double quotes.
func stripYAMLComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseYAMLBlock parses the run of lines at exactly `indent` starting at
// i — a mapping or a sequence — and returns the value and the index of
// the first line it did not consume.
func parseYAMLBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseYAMLSeq(lines, i, indent)
	}
	return parseYAMLMap(lines, i, indent)
}

func parseYAMLMap(lines []yamlLine, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
		}
		key, rest, err := splitYAMLKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		i++
		if rest != "" {
			m[key] = yamlScalar(rest)
			continue
		}
		// Block value: the nested lines (deeper indent), a sequence at the
		// same indent (YAML allows `key:` with `- ` items not indented
		// further), or nothing (null).
		if i < len(lines) && lines[i].indent > indent {
			v, next, err := parseYAMLBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			m[key], i = v, next
		} else if i < len(lines) && lines[i].indent == indent &&
			(strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-") {
			v, next, err := parseYAMLSeq(lines, i, indent)
			if err != nil {
				return nil, 0, err
			}
			m[key], i = v, next
		} else {
			m[key] = nil
		}
	}
	return m, i, nil
}

func parseYAMLSeq(lines []yamlLine, i, indent int) (any, int, error) {
	seq := []any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent != indent || (ln.text != "-" && !strings.HasPrefix(ln.text, "- ")) {
			if ln.indent > indent {
				return nil, 0, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
			}
			break
		}
		if ln.text == "-" {
			// Item body on the following deeper-indented lines.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, next, err := parseYAMLBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			seq, i = append(seq, v), next
			continue
		}
		body := strings.TrimPrefix(ln.text, "- ")
		// An inline `- key: value` opens a map whose remaining keys sit at
		// the item's body indent on the following lines.
		if k, rest, err := splitYAMLKey(yamlLine{num: ln.num, text: body}); err == nil {
			bodyIndent := indent + 2
			item := map[string]any{}
			i++
			if rest != "" {
				item[k] = yamlScalar(rest)
			} else if i < len(lines) && lines[i].indent > bodyIndent {
				v, next, perr := parseYAMLBlock(lines, i, lines[i].indent)
				if perr != nil {
					return nil, 0, perr
				}
				item[k], i = v, next
			} else {
				item[k] = nil
			}
			if i < len(lines) && lines[i].indent == bodyIndent {
				rem, next, perr := parseYAMLMap(lines, i, bodyIndent)
				if perr != nil {
					return nil, 0, perr
				}
				for rk, rv := range rem.(map[string]any) {
					if _, dup := item[rk]; dup {
						return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, rk)
					}
					item[rk] = rv
				}
				i = next
			}
			seq = append(seq, item)
			continue
		}
		seq = append(seq, yamlScalar(body))
		i++
	}
	return seq, i, nil
}

// splitYAMLKey splits `key: value` / `key:`; the key may be quoted.
func splitYAMLKey(ln yamlLine) (key, rest string, err error) {
	s := ln.text
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		q := s[0]
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("yaml line %d: unterminated quoted key", ln.num)
		}
		key = s[1 : 1+end]
		s = s[2+end:]
		if !strings.HasPrefix(s, ":") {
			return "", "", fmt.Errorf("yaml line %d: expected ':' after key", ln.num)
		}
		return key, strings.TrimSpace(s[1:]), nil
	}
	idx := strings.Index(s, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected 'key: value', got %q", ln.num, s)
	}
	after := s[idx+1:]
	if after != "" && !strings.HasPrefix(after, " ") {
		return "", "", fmt.Errorf("yaml line %d: expected a space after ':' in %q", ln.num, s)
	}
	return strings.TrimSpace(s[:idx]), strings.TrimSpace(after), nil
}

// yamlScalar interprets a scalar token: quotes, null, booleans, numbers,
// bare strings.
func yamlScalar(s string) any {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		if s[0] == '"' {
			if u, err := strconv.Unquote(s); err == nil {
				return u
			}
		}
		return strings.ReplaceAll(s[1:len(s)-1], string(s[0])+string(s[0]), string(s[0]))
	}
	switch s {
	case "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
