package yamlite

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestToJSONSubset(t *testing.T) {
	in := `
# header comment
name: demo
compression: 100
seed: 42
nested:
  a: 1
  b: "quoted # not a comment"
  c: 'single'
  flag: true
  nothing: null
list:
  - 1
  - two
  - key: v
    other: 2.5
blocks:
  - name: x
    spec:
      figure: fig1a
`
	got, err := ToJSON([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(got, &v); err != nil {
		t.Fatalf("invalid JSON %s: %v", got, err)
	}
	want := map[string]any{
		"name":        "demo",
		"compression": 100.0,
		"seed":        42.0,
		"nested": map[string]any{
			"a": 1.0, "b": "quoted # not a comment", "c": "single",
			"flag": true, "nothing": nil,
		},
		"list": []any{1.0, "two", map[string]any{"key": "v", "other": 2.5}},
		"blocks": []any{
			map[string]any{"name": "x", "spec": map[string]any{"figure": "fig1a"}},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", v, want)
	}
}

func TestToJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"tabs", "a:\n\tb: 1", "tabs are not allowed"},
		{"no colon", "just a bare line", "expected 'key: value'"},
		{"no space after colon", "a:1", "expected a space after ':'"},
		{"bad indent", "a: 1\n   b: 2", "unexpected indentation"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ToJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestToJSONEmpty(t *testing.T) {
	got, err := ToJSON([]byte("\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{}" {
		t.Fatalf("empty document = %s, want {}", got)
	}
}
