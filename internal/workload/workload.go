// Package workload generates the synthetic data sets of the paper's
// evaluation: mixture-of-Gaussians point clouds (Sections 5 and 9),
// sparse linear regression data (Section 6), and a synthetic text corpus
// standing in for the paper's "two concatenated 20-newsgroups posts"
// documents (Sections 7 and 8) — the real 20-newsgroups corpus is not
// available offline, so the corpus generator preserves the properties the
// benchmark's cost behaviour depends on: a 10,000-word dictionary, ~210
// words per document, and a skewed (Zipf-like) word-frequency profile.
package workload

import (
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// GMMConfig parameterizes the clustering data generator.
type GMMConfig struct {
	N          int     // points
	D          int     // dimensions
	K          int     // planted clusters
	Separation float64 // distance scale between cluster centers
}

// GMMData holds a generated point cloud with its planted structure.
type GMMData struct {
	Points []linalg.Vec
	Labels []int
	Mu     []linalg.Vec
}

// GenGMM plants K unit-covariance Gaussians with well-separated means and
// samples N points from the uniform mixture.
func GenGMM(rng *randgen.RNG, cfg GMMConfig) *GMMData {
	if cfg.Separation == 0 {
		cfg.Separation = 8
	}
	return GenGMMAt(rng, PlantedMeans(rng, cfg.K, cfg.D, cfg.Separation), cfg.N)
}

// PlantedMeans draws K cluster means with the given separation scale.
// Distributed generators call this once with a shared seed so every
// machine's data comes from the same mixture.
func PlantedMeans(rng *randgen.RNG, k, d int, separation float64) []linalg.Vec {
	if separation == 0 {
		separation = 8
	}
	out := make([]linalg.Vec, k)
	for i := range out {
		mu := make(linalg.Vec, d)
		for j := range mu {
			mu[j] = rng.Normal(0, separation)
		}
		out[i] = mu
	}
	return out
}

// GenGMMAt samples n points from the uniform unit-covariance mixture with
// the given means.
func GenGMMAt(rng *randgen.RNG, mu []linalg.Vec, n int) *GMMData {
	out := &GMMData{Mu: mu}
	d := len(mu[0])
	for i := 0; i < n; i++ {
		k := rng.Intn(len(mu))
		x := make(linalg.Vec, d)
		for j := 0; j < d; j++ {
			x[j] = rng.Normal(mu[k][j], 1)
		}
		out.Points = append(out.Points, x)
		out.Labels = append(out.Labels, k)
	}
	return out
}

// RegressionConfig parameterizes the linear regression generator.
type RegressionConfig struct {
	N        int     // observations
	P        int     // regressors
	Sparsity int     // number of non-zero true coefficients
	Noise    float64 // residual standard deviation
}

// RegressionData holds a generated regression problem and its truth.
type RegressionData struct {
	X        []linalg.Vec
	Y        linalg.Vec
	TrueBeta linalg.Vec
}

// GenRegression draws standard-normal regressors and a sparse coefficient
// vector; responses are X beta + noise.
func GenRegression(rng *randgen.RNG, cfg RegressionConfig) *RegressionData {
	if cfg.Noise == 0 {
		cfg.Noise = 1
	}
	beta := linalg.NewVec(cfg.P)
	for s := 0; s < cfg.Sparsity && s < cfg.P; s++ {
		j := rng.Intn(cfg.P)
		for beta[j] != 0 {
			j = rng.Intn(cfg.P)
		}
		mag := 2 + 3*rng.Float64()
		if rng.Float64() < 0.5 {
			mag = -mag
		}
		beta[j] = mag
	}
	out := &RegressionData{TrueBeta: beta, Y: make(linalg.Vec, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		x := make(linalg.Vec, cfg.P)
		for j := range x {
			x[j] = rng.Norm()
		}
		out.X = append(out.X, x)
		out.Y[i] = x.Dot(beta) + rng.Normal(0, cfg.Noise)
	}
	return out
}

// GenRegressionWithBeta draws n observations from a fixed coefficient
// vector (so machines of a distributed run share one planted truth). It
// materializes OpenRegressionWithBeta's stream.
func GenRegressionWithBeta(rng *randgen.RNG, beta linalg.Vec, n int, noise float64) *RegressionData {
	next := OpenRegressionWithBeta(rng, beta, noise)
	out := &RegressionData{TrueBeta: beta, Y: make(linalg.Vec, n)}
	for i := 0; i < n; i++ {
		o := next()
		out.X = append(out.X, o.X)
		out.Y[i] = o.Y
	}
	return out
}

// SparseBeta draws a sparse coefficient vector with the given number of
// non-zero entries of magnitude 2-5.
func SparseBeta(rng *randgen.RNG, p, sparsity int) linalg.Vec {
	beta := linalg.NewVec(p)
	for s := 0; s < sparsity && s < p; s++ {
		j := rng.Intn(p)
		for beta[j] != 0 {
			j = rng.Intn(p)
		}
		mag := 2 + 3*rng.Float64()
		if rng.Float64() < 0.5 {
			mag = -mag
		}
		beta[j] = mag
	}
	return beta
}

// CorpusConfig parameterizes the synthetic text corpus.
type CorpusConfig struct {
	Docs   int // number of documents
	Vocab  int // dictionary size (paper: 10,000)
	AvgLen int // average document length (paper: ~210)
	Topics int // planted latent structure groups (0 = pure Zipf)
	// Sampler is the task's sampler tier — the one sampler knob. The
	// dense default draws words through the historical CDF binary search
	// (O(log V), byte-identical to the paper tables); any non-dense tier
	// draws through a Walker alias table (O(1) per word): a run that
	// opted out of the O(T) token scan should not pay the O(log V)
	// corpus draw either. The distributions are identical but the draws
	// consume randomness differently, so the word streams differ.
	Sampler randgen.SamplerTier
}

// GenCorpus generates documents. With Topics > 0, each document draws
// from a planted per-topic Zipf-permuted word distribution so that topic
// and HMM learners have real structure to recover; lengths vary ±50%
// around AvgLen. It materializes OpenCorpus's stream.
func GenCorpus(rng *randgen.RNG, cfg CorpusConfig) [][]int {
	next := OpenCorpus(rng, cfg)
	docs := make([][]int, cfg.Docs)
	for d := range docs {
		docs[d] = next()
	}
	return docs
}

// Censor hides values as the paper's Section 9 does: each point draws
// p ~ Beta(1, 1) and censors every coordinate independently with
// probability p (about 50% of all values overall). It returns the
// censored copies and the missingness masks; points keep at least the
// original values in censored positions replaced by 0 placeholders.
func Censor(rng *randgen.RNG, points []linalg.Vec) (censored []linalg.Vec, missing [][]bool) {
	for _, x := range points {
		p := rng.Beta(1, 1)
		cx := x.Clone()
		mask := make([]bool, len(x))
		for d := range x {
			if rng.Float64() < p {
				mask[d] = true
				cx[d] = 0
			}
		}
		censored = append(censored, cx)
		missing = append(missing, mask)
	}
	return
}

// Moments returns the mean and per-dimension variance of a point set —
// the empirical hyperparameters every platform's GMM initialization
// computes first.
func Moments(points []linalg.Vec) (mean, variance linalg.Vec) {
	if len(points) == 0 {
		return nil, nil
	}
	d := len(points[0])
	mean = linalg.NewVec(d)
	variance = linalg.NewVec(d)
	for _, x := range points {
		x.AddTo(mean)
	}
	mean.ScaleInPlace(1 / float64(len(points)))
	for _, x := range points {
		for i := range x {
			diff := x[i] - mean[i]
			variance[i] += diff * diff
		}
	}
	variance.ScaleInPlace(1 / float64(len(points)))
	return
}
