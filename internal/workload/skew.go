package workload

import (
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// This file holds the skew-aware generator family behind
// internal/datagen: the same planted structures as the historical
// generators above, but with the shape knobs the paper's fixed corpora
// never exposed — word-frequency and topic-prior Zipf exponents,
// doc-length distributions, GMM covariance conditioning and mixture
// imbalance, and AR(1)-correlated regression designs. The historical
// functions are untouched: every default run stays byte-identical.

// ZipfWeights returns the unnormalized Zipf rank profile w_r = (r+1)^-s
// over v ranks — the word-frequency law both corpus generators sample
// from (GenCorpus hardcodes s = 1.05).
func ZipfWeights(v int, s float64) []float64 {
	weights := make([]float64, v)
	for r := 0; r < v; r++ {
		weights[r] = 1 / math.Pow(float64(r+1), s)
	}
	return weights
}

// Doc-length distribution names for SkewedCorpusConfig.LenDist.
const (
	LenUniform   = "uniform" // the historical ±50% around the mean
	LenFixed     = "fixed"
	LenPoisson   = "poisson"
	LenLognormal = "lognormal"
)

// SampleDocLen draws one document length (minimum 2 words) from the named
// distribution. For lognormal, sigma is the log-scale shape and the
// underlying location is chosen so the distribution's mean is `mean`
// (mu = ln(mean) - sigma^2/2).
func SampleDocLen(rng *randgen.RNG, dist string, mean, sigma float64) int {
	var length int
	switch dist {
	case LenFixed:
		length = int(math.Round(mean))
	case LenPoisson:
		length = rng.Poisson(mean)
	case LenLognormal:
		mu := math.Log(mean) - sigma*sigma/2
		length = int(math.Exp(rng.Normal(mu, sigma)))
	default: // LenUniform
		m := int(math.Round(mean))
		length = m/2 + rng.Intn(m+1)
	}
	if length < 2 {
		length = 2
	}
	return length
}

// SkewedCorpusConfig parameterizes GenCorpusSkewed. Zero values mean the
// historical shape: ZipfS 1.05, uniform topic priors, uniform ±50%
// lengths, 10% background words.
type SkewedCorpusConfig struct {
	Docs   int
	Vocab  int
	AvgLen int
	Topics int
	// ZipfS is the word-frequency Zipf exponent (historical: 1.05).
	ZipfS float64
	// TopicSkew is a Zipf exponent over the planted topic priors: 0 keeps
	// the historical uniform topic draw; larger values concentrate
	// documents onto the first few topics (the heavy-tailed regime where
	// GAS ghost replication and mhalias acceptance behavior diverge).
	TopicSkew float64
	// Background is the shared-vocabulary word fraction (historical: 0.1).
	Background float64
	// LenDist / LenSigma select the doc-length law (see SampleDocLen).
	LenDist  string
	LenSigma float64
}

func (c SkewedCorpusConfig) withDefaults() SkewedCorpusConfig {
	if c.AvgLen == 0 {
		c.AvgLen = 210
	}
	if c.Topics <= 0 {
		c.Topics = 1
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.05
	}
	if c.Background == 0 {
		c.Background = 0.1
	}
	if c.LenDist == "" {
		c.LenDist = LenUniform
	}
	if c.LenSigma == 0 {
		c.LenSigma = 0.5
	}
	return c
}

// GenCorpusSkewed generates documents like GenCorpus — per-topic
// Zipf-permuted word distributions with shared background words — but
// with the shape knobs above. Word draws always go through the Walker
// alias table (this is a new stream; there is no historical CDF path to
// preserve), so generation is O(1) per word. It materializes
// OpenCorpusSkewed's stream.
func GenCorpusSkewed(rng *randgen.RNG, cfg SkewedCorpusConfig) [][]int {
	next := OpenCorpusSkewed(rng, cfg)
	docs := make([][]int, cfg.Docs)
	for d := range docs {
		docs[d] = next()
	}
	return docs
}

// SkewedGMMConfig parameterizes GenGMMSkewed. Zero values mean the
// historical shape: separation 8, spherical unit covariance, uniform
// mixture weights.
type SkewedGMMConfig struct {
	N int
	D int
	K int
	// Separation is the distance scale between planted means (default 8).
	Separation float64
	// CovCondition is the per-cluster covariance condition number: the
	// ratio of the largest to the smallest axis variance (1 = spherical).
	// Axis standard deviations are log-spaced between cond^-1/4 and
	// cond^+1/4, rotated by one dimension per cluster so no single axis is
	// stretched for every cluster.
	CovCondition float64
	// Imbalance is a Zipf exponent over the mixture weights: 0 keeps the
	// uniform mixture; larger values starve the tail clusters.
	Imbalance float64
}

// PlantedMixture holds the shared planted structure of a skewed mixture;
// distributed generators build it once from a shared seed so every
// machine samples the same mixture.
type PlantedMixture struct {
	Mu     []linalg.Vec
	Sigma  []linalg.Vec // per-cluster per-axis standard deviations
	Weight []float64    // normalized mixture weights
}

// NewPlantedMixture draws the planted means and derives the axis scales
// and mixture weights from the config.
func NewPlantedMixture(rng *randgen.RNG, cfg SkewedGMMConfig) *PlantedMixture {
	if cfg.Separation == 0 {
		cfg.Separation = 8
	}
	if cfg.CovCondition == 0 {
		cfg.CovCondition = 1
	}
	m := &PlantedMixture{Mu: PlantedMeans(rng, cfg.K, cfg.D, cfg.Separation)}
	// Axis scales: sigma ranges over [cond^-1/4, cond^+1/4] so the
	// variance ratio is exactly CovCondition; each cluster rotates the
	// assignment by one dimension.
	m.Sigma = make([]linalg.Vec, cfg.K)
	logSpan := math.Log(cfg.CovCondition) / 4
	for k := range m.Sigma {
		s := make(linalg.Vec, cfg.D)
		for j := range s {
			frac := 0.5
			if cfg.D > 1 {
				frac = float64((j+k)%cfg.D) / float64(cfg.D-1)
			}
			s[j] = math.Exp(logSpan * (2*frac - 1))
		}
		m.Sigma[k] = s
	}
	m.Weight = ZipfWeights(cfg.K, cfg.Imbalance)
	var total float64
	for _, w := range m.Weight {
		total += w
	}
	for k := range m.Weight {
		m.Weight[k] /= total
	}
	return m
}

// GenGMMSkewedAt samples n points from the planted mixture.
func GenGMMSkewedAt(rng *randgen.RNG, m *PlantedMixture, n int) *GMMData {
	out := &GMMData{Mu: m.Mu}
	comp := randgen.NewAlias(m.Weight)
	d := len(m.Mu[0])
	for i := 0; i < n; i++ {
		k := comp.Draw(rng)
		x := make(linalg.Vec, d)
		for j := 0; j < d; j++ {
			x[j] = rng.Normal(m.Mu[k][j], m.Sigma[k][j])
		}
		out.Points = append(out.Points, x)
		out.Labels = append(out.Labels, k)
	}
	return out
}

// GenGMMSkewed plants a skewed mixture and samples N points from it.
func GenGMMSkewed(rng *randgen.RNG, cfg SkewedGMMConfig) *GMMData {
	return GenGMMSkewedAt(rng, NewPlantedMixture(rng, cfg), cfg.N)
}

// GenRegressionCorrelated draws n observations from a fixed coefficient
// vector with AR(1)-correlated regressors: corr(x_i, x_j) = rho^|i-j|
// with unit marginal variance, so rho 0 reproduces the independent
// design's distribution (though not its byte stream — the historical
// GenRegressionWithBeta stays the default path).
func GenRegressionCorrelated(rng *randgen.RNG, beta linalg.Vec, n int, noise, rho float64) *RegressionData {
	if noise == 0 {
		noise = 1
	}
	out := &RegressionData{TrueBeta: beta, Y: make(linalg.Vec, n)}
	p := len(beta)
	innov := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		x := make(linalg.Vec, p)
		for j := range x {
			if j == 0 {
				x[j] = rng.Norm()
			} else {
				x[j] = rho*x[j-1] + innov*rng.Norm()
			}
		}
		out.X = append(out.X, x)
		out.Y[i] = x.Dot(beta) + rng.Normal(0, noise)
	}
	return out
}
