package workload

import (
	"math"
	"testing"

	"mlbench/internal/randgen"
)

func TestGenCorpusSkewedShapes(t *testing.T) {
	rng := randgen.New(5)
	docs := GenCorpusSkewed(rng, SkewedCorpusConfig{
		Docs: 300, Vocab: 500, AvgLen: 80, Topics: 6,
		ZipfS: 1.5, TopicSkew: 1.2, LenDist: LenLognormal, LenSigma: 0.7,
	})
	if len(docs) != 300 {
		t.Fatalf("docs = %d", len(docs))
	}
	var total int
	for _, d := range docs {
		if len(d) < 2 {
			t.Fatalf("degenerate doc length %d", len(d))
		}
		for _, w := range d {
			if w < 0 || w >= 500 {
				t.Fatalf("word %d out of vocabulary", w)
			}
		}
		total += len(d)
	}
	if mean := float64(total) / 300; mean < 60 || mean > 100 {
		t.Errorf("mean doc length = %.1f, want ~80", mean)
	}
	// Reproducible.
	again := GenCorpusSkewed(randgen.New(5), SkewedCorpusConfig{
		Docs: 300, Vocab: 500, AvgLen: 80, Topics: 6,
		ZipfS: 1.5, TopicSkew: 1.2, LenDist: LenLognormal, LenSigma: 0.7,
	})
	for i := range docs {
		if len(docs[i]) != len(again[i]) {
			t.Fatalf("doc %d not reproducible", i)
		}
	}
}

// TestGenGMMSkewedStructure checks the two GMM shape knobs: mixture
// imbalance concentrates labels on the first components, and covariance
// conditioning stretches per-cluster axis variances by the declared
// ratio.
func TestGenGMMSkewedStructure(t *testing.T) {
	rng := randgen.New(6)
	cfg := SkewedGMMConfig{N: 20_000, D: 6, K: 5, Separation: 50, CovCondition: 16, Imbalance: 1.5}
	data := GenGMMSkewed(rng, cfg)
	counts := make([]int, cfg.K)
	for _, l := range data.Labels {
		counts[l]++
	}
	if counts[0] <= 2*counts[cfg.K-1] {
		t.Errorf("mixture not imbalanced: %v", counts)
	}
	// Cluster 0's axis variances: means are far apart (separation 50), so
	// assignment by label is clean; compare the largest and smallest
	// per-axis sample variance against the declared condition number.
	var pts [][]float64
	for i, x := range data.Points {
		if data.Labels[i] == 0 {
			pts = append(pts, x)
		}
	}
	minV, maxV := math.Inf(1), 0.0
	for j := 0; j < cfg.D; j++ {
		var sum, sumSq float64
		for _, x := range pts {
			sum += x[j]
			sumSq += x[j] * x[j]
		}
		n := float64(len(pts))
		v := sumSq/n - (sum/n)*(sum/n)
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if ratio := maxV / minV; ratio < 8 || ratio > 32 {
		t.Errorf("axis variance ratio = %.1f, want ~16", ratio)
	}
	// The uniform spherical config reduces to the historical moments.
	sph := GenGMMSkewed(randgen.New(7), SkewedGMMConfig{N: 5000, D: 4, K: 3, Separation: 50})
	counts = make([]int, 3)
	for _, l := range sph.Labels {
		counts[l]++
	}
	for _, c := range counts {
		if c < 1200 || c > 2200 {
			t.Errorf("uniform mixture counts: %v", counts)
		}
	}
}

// TestGenRegressionCorrelatedAR1 checks the design's lag-1 correlation
// and unit marginal variance.
func TestGenRegressionCorrelatedAR1(t *testing.T) {
	const n, p, rho = 4000, 20, 0.7
	rng := randgen.New(8)
	beta := SparseBeta(rng, p, 3)
	data := GenRegressionCorrelated(rng, beta, n, 1, rho)
	if len(data.X) != n || len(data.Y) != n {
		t.Fatalf("sizes: %d, %d", len(data.X), len(data.Y))
	}
	var dot, vj, vk float64
	for _, x := range data.X {
		dot += x[10] * x[11]
		vj += x[10] * x[10]
		vk += x[11] * x[11]
	}
	if r := dot / math.Sqrt(vj*vk); math.Abs(r-rho) > 0.05 {
		t.Errorf("lag-1 correlation = %.3f, want ~%v", r, rho)
	}
	if v := vj / n; v < 0.9 || v > 1.1 {
		t.Errorf("marginal variance = %.3f, want ~1", v)
	}
	// Responses follow the planted truth.
	var resid float64
	for i, x := range data.X {
		var fit float64
		for j := range x {
			fit += x[j] * beta[j]
		}
		d := data.Y[i] - fit
		resid += d * d
	}
	if rv := resid / n; rv < 0.8 || rv > 1.2 {
		t.Errorf("residual variance = %.3f, want ~1", rv)
	}
}
