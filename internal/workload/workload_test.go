package workload

import (
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/randgen"
)

func TestGenGMMShapesAndLabels(t *testing.T) {
	rng := randgen.New(1)
	d := GenGMM(rng, GMMConfig{N: 500, D: 3, K: 4})
	if len(d.Points) != 500 || len(d.Labels) != 500 || len(d.Mu) != 4 {
		t.Fatalf("shapes wrong")
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 4 {
			t.Errorf("label %d out of range", l)
		}
	}
	// Points should be near their planted centers (unit covariance).
	for i, x := range d.Points {
		if dist := x.Sub(d.Mu[d.Labels[i]]).Norm2(); dist > 6*math.Sqrt(3) {
			t.Errorf("point %d is %v from its center", i, dist)
		}
	}
}

func TestGenGMMDeterministic(t *testing.T) {
	a := GenGMM(randgen.New(5), GMMConfig{N: 10, D: 2, K: 2})
	b := GenGMM(randgen.New(5), GMMConfig{N: 10, D: 2, K: 2})
	for i := range a.Points {
		if a.Points[i][0] != b.Points[i][0] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestGenRegressionTruth(t *testing.T) {
	rng := randgen.New(2)
	d := GenRegression(rng, RegressionConfig{N: 2000, P: 8, Sparsity: 3, Noise: 0.1})
	nz := 0
	for _, b := range d.TrueBeta {
		if b != 0 {
			nz++
			if math.Abs(b) < 2 {
				t.Errorf("nonzero coefficient %v too small", b)
			}
		}
	}
	if nz != 3 {
		t.Errorf("sparsity = %d, want 3", nz)
	}
	// Residuals should be near the configured noise level.
	var sse float64
	for i, x := range d.X {
		r := d.Y[i] - x.Dot(d.TrueBeta)
		sse += r * r
	}
	if rmse := math.Sqrt(sse / 2000); math.Abs(rmse-0.1) > 0.02 {
		t.Errorf("rmse = %v, want ~0.1", rmse)
	}
}

func TestGenCorpusShape(t *testing.T) {
	rng := randgen.New(3)
	docs := GenCorpus(rng, CorpusConfig{Docs: 200, Vocab: 1000, AvgLen: 100, Topics: 4})
	if len(docs) != 200 {
		t.Fatalf("docs = %d", len(docs))
	}
	var totalLen int
	for _, doc := range docs {
		totalLen += len(doc)
		for _, w := range doc {
			if w < 0 || w >= 1000 {
				t.Fatalf("word %d out of vocabulary", w)
			}
		}
	}
	avg := float64(totalLen) / 200
	if avg < 70 || avg > 130 {
		t.Errorf("average length = %v, want ~100", avg)
	}
}

func TestGenCorpusSkewedFrequencies(t *testing.T) {
	rng := randgen.New(4)
	docs := GenCorpus(rng, CorpusConfig{Docs: 300, Vocab: 500, AvgLen: 100, Topics: 1})
	counts := make([]int, 500)
	total := 0
	for _, doc := range docs {
		for _, w := range doc {
			counts[w]++
			total++
		}
	}
	// Zipf: the most frequent word should hold a large share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if share := float64(max) / float64(total); share < 0.02 {
		t.Errorf("top word share = %v, expected a skewed profile", share)
	}
}

func TestGenCorpusTopicsDiffer(t *testing.T) {
	rng := randgen.New(5)
	docs := GenCorpus(rng, CorpusConfig{Docs: 2, Vocab: 10000, AvgLen: 5000, Topics: 2})
	// With two different planted topics, the dominant words of documents
	// from different topics should differ most of the time. Compare top
	// words of the two docs.
	top := func(doc []int) int {
		counts := map[int]int{}
		best, bestC := -1, -1
		for _, w := range doc {
			counts[w]++
			if counts[w] > bestC {
				best, bestC = w, counts[w]
			}
		}
		return best
	}
	if len(docs) == 2 && top(docs[0]) == top(docs[1]) {
		t.Log("two docs share a top word; acceptable if they drew the same topic")
	}
}

func TestCensorRate(t *testing.T) {
	rng := randgen.New(6)
	d := GenGMM(rng, GMMConfig{N: 2000, D: 10, K: 2})
	censored, missing := Censor(rng, d.Points)
	if len(censored) != 2000 || len(missing) != 2000 {
		t.Fatalf("shapes wrong")
	}
	hidden, total := 0, 0
	for i := range missing {
		for dim, m := range missing[i] {
			total++
			if m {
				hidden++
				if censored[i][dim] != 0 {
					t.Fatal("censored value not zeroed")
				}
			} else if censored[i][dim] != d.Points[i][dim] {
				t.Fatal("observed value changed")
			}
		}
	}
	if rate := float64(hidden) / float64(total); rate < 0.4 || rate > 0.6 {
		t.Errorf("censor rate = %v, want ~0.5", rate)
	}
}

func TestMoments(t *testing.T) {
	mean, variance := Moments(nil)
	if mean != nil || variance != nil {
		t.Error("empty moments should be nil")
	}
	pts := GenGMM(randgen.New(7), GMMConfig{N: 50000, D: 2, K: 1, Separation: 0.001}).Points
	mean, variance = Moments(pts)
	// Single cluster near origin with unit covariance.
	if math.Abs(mean[0]) > 0.05 || math.Abs(variance[0]-1) > 0.05 {
		t.Errorf("moments = %v, %v", mean, variance)
	}
}

// Property: censoring never invents values — every entry is either the
// original or zero-with-mask.
func TestQuickCensorConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randgen.New(seed)
		d := GenGMM(rng, GMMConfig{N: 20, D: 3, K: 2})
		censored, missing := Censor(rng, d.Points)
		for i := range censored {
			for dim := range censored[i] {
				if missing[i][dim] {
					if censored[i][dim] != 0 {
						return false
					}
				} else if censored[i][dim] != d.Points[i][dim] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenRegressionWithBetaSharedTruth(t *testing.T) {
	beta := SparseBeta(randgen.New(1), 6, 2)
	a := GenRegressionWithBeta(randgen.New(2), beta, 50, 0.1)
	b := GenRegressionWithBeta(randgen.New(3), beta, 50, 0.1)
	for j := range beta {
		if a.TrueBeta[j] != b.TrueBeta[j] {
			t.Fatal("machines must share the planted coefficients")
		}
	}
	// Different rngs produce different observations.
	if a.X[0][0] == b.X[0][0] {
		t.Error("independent machines produced identical regressors")
	}
}

func TestSparseBetaCount(t *testing.T) {
	beta := SparseBeta(randgen.New(4), 20, 5)
	nz := 0
	for _, b := range beta {
		if b != 0 {
			nz++
		}
	}
	if nz != 5 {
		t.Errorf("sparsity = %d, want 5", nz)
	}
}

func TestGenCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{Docs: 5, Vocab: 50, AvgLen: 20, Topics: 2}
	a := GenCorpus(randgen.New(9), cfg)
	b := GenCorpus(randgen.New(9), cfg)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("document lengths differ across identical seeds")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("words differ across identical seeds")
			}
		}
	}
}

func TestGenCorpusAliasSameDistribution(t *testing.T) {
	// The alias path draws from the same Zipf profile as the CDF path: the
	// aggregate word-frequency ranks must agree even though the word
	// streams differ (the samplers consume randomness differently).
	count := func(tier randgen.SamplerTier) []int {
		cfg := CorpusConfig{Docs: 400, Vocab: 200, AvgLen: 100, Topics: 1, Sampler: tier}
		counts := make([]int, cfg.Vocab)
		for _, doc := range GenCorpus(randgen.New(17), cfg) {
			for _, w := range doc {
				counts[w]++
			}
		}
		return counts
	}
	cdf, alias := count(randgen.TierDense), count(randgen.TierAlias)
	// Compare the head of the distribution: each of the top ranks should
	// carry a similar share under both samplers.
	var cdfTotal, aliasTotal int
	for i := range cdf {
		cdfTotal += cdf[i]
		aliasTotal += alias[i]
	}
	// Topic 0's permutation is the same for both calls (same seed, and the
	// perm is drawn before any word), so ranks map to the same word ids.
	for w := 0; w < 200; w++ {
		p, q := float64(cdf[w])/float64(cdfTotal), float64(alias[w])/float64(aliasTotal)
		if p > 0.01 && (q < p/2 || q > p*2) {
			t.Errorf("word %d share: cdf %v vs alias %v", w, p, q)
		}
	}
}

func TestGenCorpusSamplerTierImpliesAlias(t *testing.T) {
	// Every non-dense sampler tier routes corpus generation through the
	// alias word draw: the mhalias stream must match the alias tier's
	// exactly, and differ from the dense CDF stream.
	base := CorpusConfig{Docs: 10, Vocab: 100, AvgLen: 30, Topics: 2}
	gen := func(cfg CorpusConfig) [][]int { return GenCorpus(randgen.New(41), cfg) }
	aliasCfg, tierCfg := base, base
	aliasCfg.Sampler = randgen.TierAlias
	tierCfg.Sampler = randgen.TierMHAlias
	dense, alias, tier := gen(base), gen(aliasCfg), gen(tierCfg)
	same := func(a, b [][]int) bool {
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	if !same(alias, tier) {
		t.Error("Sampler: mhalias corpus differs from the alias-tier corpus")
	}
	if same(dense, tier) {
		t.Error("Sampler: mhalias corpus unexpectedly matches the dense CDF stream")
	}
}

func TestPlantedMeansSeparation(t *testing.T) {
	mu := PlantedMeans(randgen.New(5), 4, 3, 8)
	if len(mu) != 4 || len(mu[0]) != 3 {
		t.Fatalf("shape wrong")
	}
	// With separation 8 the means should be well spread.
	var maxNorm float64
	for _, m := range mu {
		if n := m.Norm2(); n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm < 4 {
		t.Errorf("means suspiciously close to origin: max norm %v", maxNorm)
	}
}
