package workload

import (
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// This file holds the streaming entry points behind sim.Source: each
// Open* function returns a sequential generator that replays the exact
// random-draw pattern of the corresponding materialized generator, so a
// chunked consumer sees byte-for-byte the element stream the historical
// slice held. The corpus and regression materialized generators
// delegate to these; the GMM ones stay inline because they also carry
// the planted labels, but consume randomness identically.

// OpenGMMAt returns a sequential point generator over the uniform
// unit-covariance mixture with the given means: per point, one
// component draw then D Normal draws, exactly as GenGMMAt consumes
// randomness.
func OpenGMMAt(rng *randgen.RNG, mu []linalg.Vec) func() linalg.Vec {
	d := len(mu[0])
	return func() linalg.Vec {
		k := rng.Intn(len(mu))
		x := make(linalg.Vec, d)
		for j := 0; j < d; j++ {
			x[j] = rng.Normal(mu[k][j], 1)
		}
		return x
	}
}

// OpenGMMSkewedAt returns a sequential point generator over a planted
// skewed mixture, replaying GenGMMSkewedAt's draw pattern (alias
// component draw, then D Normal draws).
func OpenGMMSkewedAt(rng *randgen.RNG, m *PlantedMixture) func() linalg.Vec {
	comp := randgen.NewAlias(m.Weight)
	d := len(m.Mu[0])
	return func() linalg.Vec {
		k := comp.Draw(rng)
		x := make(linalg.Vec, d)
		for j := 0; j < d; j++ {
			x[j] = rng.Normal(m.Mu[k][j], m.Sigma[k][j])
		}
		return x
	}
}

// Obs is one streamed regression observation.
type Obs struct {
	X linalg.Vec
	Y float64
}

// OpenRegressionWithBeta returns a sequential observation generator
// from a fixed coefficient vector, replaying GenRegressionWithBeta's
// draw pattern (P standard normals, then the noise draw).
func OpenRegressionWithBeta(rng *randgen.RNG, beta linalg.Vec, noise float64) func() Obs {
	if noise == 0 {
		noise = 1
	}
	p := len(beta)
	return func() Obs {
		x := make(linalg.Vec, p)
		for j := range x {
			x[j] = rng.Norm()
		}
		return Obs{X: x, Y: x.Dot(beta) + rng.Normal(0, noise)}
	}
}

// OpenCorpus returns a sequential document generator with GenCorpus's
// planted structure and draw pattern. Building the generator consumes
// the per-topic permutations from rng exactly as GenCorpus does;
// cfg.Docs is ignored — the caller bounds the stream.
func OpenCorpus(rng *randgen.RNG, cfg CorpusConfig) func() []int {
	if cfg.AvgLen == 0 {
		cfg.AvgLen = 210
	}
	topics := cfg.Topics
	if topics <= 0 {
		topics = 1
	}
	// Per-topic word distributions: a Zipf profile over a topic-specific
	// permutation of the dictionary, so topics prefer disjoint-ish words.
	// All topics share one Zipf rank profile; only the permutation differs.
	weights := ZipfWeights(cfg.Vocab, 1.05)
	var total float64
	for _, w := range weights {
		total += w
	}
	perms := make([][]int, topics)
	for t := 0; t < topics; t++ {
		perms[t] = rng.Perm(cfg.Vocab)
	}
	var sample func(t int) int
	if cfg.Sampler != randgen.TierDense {
		at := randgen.NewAlias(weights)
		sample = func(t int) int {
			return perms[t][at.Draw(rng)]
		}
	} else {
		cdf := make([]float64, cfg.Vocab)
		var acc float64
		for r := range weights {
			acc += weights[r] / total
			cdf[r] = acc
		}
		sample = func(t int) int {
			u := rng.Float64()
			// Binary search the cdf.
			lo, hi := 0, cfg.Vocab-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return perms[t][lo]
		}
	}
	return func() []int {
		length := cfg.AvgLen/2 + rng.Intn(cfg.AvgLen+1)
		if length < 2 {
			length = 2
		}
		t := rng.Intn(topics)
		words := make([]int, length)
		for i := range words {
			if topics > 1 && rng.Float64() < 0.1 {
				// Background words shared across topics.
				words[i] = sample(0)
			} else {
				words[i] = sample(t)
			}
		}
		return words
	}
}

// OpenCorpusSkewed returns a sequential document generator with
// GenCorpusSkewed's shape knobs and draw pattern.
func OpenCorpusSkewed(rng *randgen.RNG, cfg SkewedCorpusConfig) func() []int {
	cfg = cfg.withDefaults()
	words := randgen.NewAlias(ZipfWeights(cfg.Vocab, cfg.ZipfS))
	perms := make([][]int, cfg.Topics)
	for t := range perms {
		perms[t] = rng.Perm(cfg.Vocab)
	}
	var topicPick func() int
	if cfg.TopicSkew > 0 && cfg.Topics > 1 {
		topics := randgen.NewAlias(ZipfWeights(cfg.Topics, cfg.TopicSkew))
		topicPick = func() int { return topics.Draw(rng) }
	} else {
		topicPick = func() int { return rng.Intn(cfg.Topics) }
	}
	return func() []int {
		length := SampleDocLen(rng, cfg.LenDist, float64(cfg.AvgLen), cfg.LenSigma)
		t := topicPick()
		ws := make([]int, length)
		for i := range ws {
			if cfg.Topics > 1 && rng.Float64() < cfg.Background {
				ws[i] = perms[0][words.Draw(rng)]
			} else {
				ws[i] = perms[t][words.Draw(rng)]
			}
		}
		return ws
	}
}
