package gas

import (
	"testing"

	"mlbench/internal/faults"
	"mlbench/internal/sim"
)

func faultStarGraph(machines, leaves int, sched *faults.Schedule, snapEvery int) *Graph {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Faults = sched
	cfg.Recovery.GASSnapshotEvery = snapEvery
	return buildStarGraph(sim.New(cfg), leaves)
}

// spinRounds loads the graph and runs n gather-apply rounds.
func spinRounds(t *testing.T, g *Graph, n int) {
	t.Helper()
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := g.RunRound(sumProg{viewBytes: 1 << 16}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// crashRecoverySec injects one crash mid-run and returns the recovery time
// charged for it.
func crashRecoverySec(t *testing.T, snapEvery int) float64 {
	t.Helper()
	probe := faultStarGraph(3, 30, nil, snapEvery)
	spinRounds(t, probe, 12)
	roundSec := probe.c.Now() / 12

	g := faultStarGraph(3, 30, faults.NewSchedule(faults.CrashAt(1, 10.5*roundSec)), snapEvery)
	spinRounds(t, g, 12)
	log := g.c.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	return log[0].RecoverySec
}

func TestSnapshotRestoreCheaperThanRestart(t *testing.T) {
	restart := crashRecoverySec(t, 0)
	snap := crashRecoverySec(t, 3)
	if snap >= restart {
		t.Errorf("snapshot restore not cheaper than restart: snapshot = %v, restart = %v", snap, restart)
	}
}

func TestNoGlobalRollback(t *testing.T) {
	// With snapshots every 3 rounds and a crash in round 10, at most 2
	// rounds are replayed — and only at the replay fraction, because the
	// survivors keep their live state. Recovery must come in well under a
	// full 2-round global rollback (plus detection and state restore).
	probe := faultStarGraph(3, 30, nil, 3)
	spinRounds(t, probe, 12)
	roundSec := probe.c.Now() / 12

	rec := crashRecoverySec(t, 3)
	cost := probe.c.Config().Cost
	budget := cost.FaultDetectSec + 2*roundSec*cost.GASReplayFrac + 1
	if rec > budget {
		t.Errorf("recovery %v exceeds partial-replay budget %v (global 2-round rollback would be %v)",
			rec, budget, cost.FaultDetectSec+2*roundSec)
	}
}

func TestSnapshotsCostSteadyStateTime(t *testing.T) {
	plain := faultStarGraph(3, 30, nil, 0)
	spinRounds(t, plain, 12)
	snap := faultStarGraph(3, 30, nil, 2)
	spinRounds(t, snap, 12)
	if snap.c.Now() <= plain.c.Now() {
		t.Errorf("snapshots are free: with = %v, without = %v", snap.c.Now(), plain.c.Now())
	}
}

func TestClampedSpareCrashIsCheap(t *testing.T) {
	// On a cluster larger than the boot clamp, a crash of a machine beyond
	// the clamp loses no graph state: recovery is detection only.
	cfg := sim.DefaultConfig(100)
	cfg.Scale = 10
	cfg.Cost.GASBootMaxMachines = 8
	cfg.Faults = faults.NewSchedule(faults.CrashAt(50, 1))
	g := buildStarGraph(sim.New(cfg), 200)
	spinRounds(t, g, 4)
	log := g.c.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	if rec := log[0].RecoverySec; rec != cfg.Cost.FaultDetectSec {
		t.Errorf("spare-machine recovery = %v, want detection only (%v)", rec, cfg.Cost.FaultDetectSec)
	}
}
