package gas

import (
	"testing"

	"mlbench/internal/sim"
)

func testCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	return sim.New(cfg)
}

// sumProg: every vertex holds a float64; gather sums neighbor values and
// apply stores the sum back.
type sumProg struct{ viewBytes int64 }

func (p sumProg) ViewBytes(v *Vertex) int64 { return p.viewBytes }
func (p sumProg) Gather(m *sim.Meter, v, nbr *Vertex) any {
	return nbr.Data.(float64)
}
func (p sumProg) Sum(m *sim.Meter, a, b any) any { return a.(float64) + b.(float64) }
func (p sumProg) Apply(m *sim.Meter, v *Vertex, acc any) {
	if acc != nil {
		v.Data = acc.(float64)
	}
}

func buildStarGraph(c *sim.Cluster, leaves int) *Graph {
	star := &Star{Center: 0}
	for i := 1; i <= leaves; i++ {
		star.Leaves = append(star.Leaves, VertexID(i))
	}
	g := NewGraph(c, star)
	g.AddVertex(0, 0.0, 64, false, -1)
	for i := 1; i <= leaves; i++ {
		g.AddVertex(VertexID(i), float64(i), 64, true, -1)
	}
	return g
}

func TestGatherApplyStar(t *testing.T) {
	c := testCluster(3)
	g := buildStarGraph(c, 5)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunRound(sumProg{viewBytes: 8}, nil); err != nil {
		t.Fatal(err)
	}
	// Center gathers 1+2+3+4+5 = 15; each leaf gathers the old center 0.
	if got := g.Vertex(0).Data.(float64); got != 15 {
		t.Errorf("center = %v, want 15", got)
	}
	for i := 1; i <= 5; i++ {
		if got := g.Vertex(VertexID(i)).Data.(float64); got != 0 {
			t.Errorf("leaf %d = %v, want 0 (old center value)", i, got)
		}
	}
}

func TestActiveSubsetOnly(t *testing.T) {
	c := testCluster(2)
	g := buildStarGraph(c, 4)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	// Only leaf 1 is active; the center must not update.
	if err := g.RunRound(sumProg{viewBytes: 8}, []VertexID{1}); err != nil {
		t.Fatal(err)
	}
	if got := g.Vertex(0).Data.(float64); got != 0 {
		t.Errorf("inactive center changed to %v", got)
	}
	if got := g.Vertex(1).Data.(float64); got != 0 {
		t.Errorf("leaf 1 = %v, want center's 0", got)
	}
}

func TestBipartiteNeighbors(t *testing.T) {
	b := &Bipartite{Left: []VertexID{1, 2}, Right: []VertexID{10, 11, 12}}
	if n := b.Neighbors(1); len(n) != 3 || n[0] != 10 {
		t.Errorf("left neighbors = %v", n)
	}
	if n := b.Neighbors(11); len(n) != 2 || n[1] != 2 {
		t.Errorf("right neighbors = %v", n)
	}
	if n := b.Neighbors(99); n != nil {
		t.Errorf("stranger neighbors = %v", n)
	}
}

func TestExplicitEdges(t *testing.T) {
	e := NewExplicitEdges()
	e.Add(1, 2)
	e.Add(1, 3)
	if n := e.Neighbors(1); len(n) != 2 {
		t.Errorf("neighbors(1) = %v", n)
	}
	if n := e.Neighbors(2); len(n) != 1 || n[0] != 1 {
		t.Errorf("neighbors(2) = %v", n)
	}
	if e.NumEdges() != 4 {
		t.Errorf("NumEdges = %d", e.NumEdges())
	}
}

func TestUnionEdges(t *testing.T) {
	u := Union{
		&Star{Center: 0, Leaves: []VertexID{1, 2}},
		&Bipartite{Left: []VertexID{1}, Right: []VertexID{5}},
	}
	n := u.Neighbors(1)
	if len(n) != 2 || n[0] != 0 || n[1] != 5 {
		t.Errorf("union neighbors = %v", n)
	}
}

func TestGatherMaterializationOOM(t *testing.T) {
	// The paper's GMM failure mode: a big view gathered by many scaled
	// data vertices exhausts memory.
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1000
	cfg.MemBytes = 8 << 20 // 8 MB budget: vertex state fits, gathers do not
	c := sim.New(cfg)
	g := buildStarGraph(c, 100) // 100 data vertices x 50KB view x 1000 scale
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	loaded := c.TotalMemUsed()
	err := g.RunRound(sumProg{viewBytes: 50 << 10}, nil)
	if !sim.IsOOM(err) {
		t.Fatalf("expected gather OOM, got %v", err)
	}
	// All gather allocations must be released after the failed round.
	if used := c.TotalMemUsed(); used != loaded {
		t.Errorf("gather memory leaked: %d bytes vs %d after load", used, loaded)
	}
}

func TestSuperVertexAvoidsOOM(t *testing.T) {
	// Same budget as above, but 2 super vertices instead of 100 per-point
	// vertices: the gather fits.
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1000
	cfg.MemBytes = 1 << 20
	c := sim.New(cfg)
	star := &Star{Center: 0, Leaves: []VertexID{1, 2}}
	g := NewGraph(c, star)
	g.AddVertex(0, 0.0, 64, false, -1)
	g.AddVertex(1, 1.0, 64, false, -1) // super vertices are model-cardinality
	g.AddVertex(2, 2.0, 64, false, -1)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunRound(sumProg{viewBytes: 50 << 10}, nil); err != nil {
		t.Fatalf("super-vertex round failed: %v", err)
	}
	if got := g.Vertex(0).Data.(float64); got != 3 {
		t.Errorf("center = %v, want 3", got)
	}
}

func TestLoadChargesVertexMemory(t *testing.T) {
	c := testCluster(2)
	g := buildStarGraph(c, 4)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	// 4 scaled leaves x 64 bytes x scale 10 + 1 model center x 64.
	want := int64(4*64*10 + 64)
	if got := c.TotalMemUsed(); got != want {
		t.Errorf("loaded memory = %d, want %d", got, want)
	}
}

func TestLoadOOM(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1000
	cfg.MemBytes = 1000
	c := sim.New(cfg)
	g := buildStarGraph(c, 10)
	if err := g.Load(); !sim.IsOOM(err) {
		t.Fatalf("expected load OOM, got %v", err)
	}
}

func TestBootClamp(t *testing.T) {
	cfg := sim.DefaultConfig(100)
	cfg.Cost.GASBootMaxMachines = 96
	c := sim.New(cfg)
	g := NewGraph(c, &Star{})
	if !g.Clamped() || g.EffectiveMachines() != 96 {
		t.Errorf("clamp: clamped=%v effective=%d", g.Clamped(), g.EffectiveMachines())
	}
	small := NewGraph(testCluster(5), &Star{})
	if small.Clamped() {
		t.Error("5-machine graph should not clamp")
	}
}

func TestRunRoundBeforeLoadFails(t *testing.T) {
	g := NewGraph(testCluster(1), &Star{})
	if err := g.RunRound(sumProg{}, nil); err == nil {
		t.Fatal("expected error before Load")
	}
}

func TestTransformVertices(t *testing.T) {
	c := testCluster(2)
	g := buildStarGraph(c, 3)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.TransformVertices(func(m *sim.Meter, v *Vertex) {
		v.Data = v.Data.(float64) + 100
	}); err != nil {
		t.Fatal(err)
	}
	if got := g.Vertex(2).Data.(float64); got != 102 {
		t.Errorf("vertex 2 = %v, want 102", got)
	}
}

func TestMapReduceVertices(t *testing.T) {
	c := testCluster(3)
	g := buildStarGraph(c, 10)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	out, err := g.MapReduceVertices(8,
		func(m *sim.Meter, v *Vertex) any { return v.Data.(float64) },
		func(m *sim.Meter, a, b any) any { return a.(float64) + b.(float64) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(float64); got != 55 {
		t.Errorf("MapReduceVertices = %v, want 55", got)
	}
}

func TestRoundAdvancesClock(t *testing.T) {
	c := testCluster(2)
	g := buildStarGraph(c, 3)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	if err := g.RunRound(sumProg{viewBytes: 8}, nil); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= before {
		t.Error("round did not advance the clock")
	}
}

func TestGhostTrafficOnlyForRemoteNeighbors(t *testing.T) {
	// All vertices on one machine: a round should move zero bytes.
	cfg := sim.DefaultConfig(2)
	cfg.Scale = 1
	cfg.Net = sim.Network{LatencySec: 100, BytesPerSec: 1} // make comm visible
	cfg.Cost.GASRound = 0
	cfg.Cost.PhaseBase = 0
	cfg.Cost.BarrierPerMachine = 0
	cfg.Cost.StragglerLogFactor = 0
	c := sim.New(cfg)
	star := &Star{Center: 0, Leaves: []VertexID{1, 2}}
	g := NewGraph(c, star)
	g.AddVertex(0, 0.0, 8, false, 0)
	g.AddVertex(1, 1.0, 8, false, 0)
	g.AddVertex(2, 2.0, 8, false, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	if err := g.RunRound(sumProg{viewBytes: 8}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Now() - before; got >= 100 {
		t.Errorf("single-machine round paid network latency: %v", got)
	}
}

func TestVertexPlacementExplicit(t *testing.T) {
	c := testCluster(3)
	g := NewGraph(c, &Star{})
	v := g.AddVertex(7, nil, 8, false, 2)
	if v.Machine() != 2 {
		t.Errorf("explicit placement ignored: machine %d", v.Machine())
	}
}

func TestGatherSerializationCharged(t *testing.T) {
	// A big view must cost gather-deserialization time proportional to
	// its bytes at the configured rate.
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1
	cfg.Cost.GASGatherBytesPerSec = 1000
	cfg.Cost.GASRound = 0
	cfg.Cost.PhaseBase = 0
	cfg.Cost.BarrierPerMachine = 0
	cfg.Cost.StragglerLogFactor = 0
	cfg.Cost.GASAsyncDepthDiv = 0
	c := sim.New(cfg)
	g := NewGraph(c, &Star{Center: 0, Leaves: []VertexID{1}})
	g.AddVertex(0, 0.0, 8, false, 0)
	g.AddVertex(1, 1.0, 8, false, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	if err := g.RunRound(sumProg{viewBytes: 4000}, nil); err != nil {
		t.Fatal(err)
	}
	// Center gathers 4000 bytes, leaf gathers 4000 bytes: 8 seconds of
	// serialization at 1000 B/s.
	if got := c.Now() - before; got < 8 {
		t.Errorf("gather serialization charged %v, want >= 8", got)
	}
}
