package gas

import (
	"fmt"

	"mlbench/internal/sim"
)

// Fault recovery, the GraphLab way: a Chandy-Lamport-style snapshot runs
// asynchronously alongside computation every k rounds (only
// CostModel.GASSnapshotAsyncFrac of the write surfaces as wall time), and
// a machine crash restores ONLY the victim's subgraph from the snapshot —
// its peers keep their live state, so unlike BSP there is no global
// rollback: the victim replays its share of the rounds since the snapshot
// at CostModel.GASReplayFrac of their cost (warm ghost caches at the
// survivors). With snapshots off — how the paper's GraphLab deployment
// ran — a crash means restarting the job: reload plus full replay.

// SetSnapshotInterval sets the number of engine rounds between
// asynchronous snapshots (0 disables them). The cluster's
// Recovery.GASSnapshotEvery is the initial value.
func (g *Graph) SetSnapshotInterval(k int) { g.snapEvery = k }

// recoveredSec sums the recovery time charged for faults observed so far,
// so round timings can exclude it.
func recoveredSec(c *sim.Cluster) float64 {
	var s float64
	for _, f := range c.Faults() {
		s += f.RecoverySec
	}
	return s
}

// machineStateBytes is the simulated resident graph state on one machine:
// vertex state plus explicit adjacency storage.
func (g *Graph) machineStateBytes(machine int) float64 {
	var bytes float64
	for _, v := range g.byMach[machine] {
		b := float64(v.Bytes)
		if v.Scaled {
			b *= g.c.Scale()
		}
		bytes += b
	}
	if ee, ok := g.edges.(*ExplicitEdges); ok {
		var entries float64
		for _, v := range g.byMach[machine] {
			entries += float64(len(ee.Neighbors(v.ID)))
		}
		bytes += entries * 16 * g.c.Scale()
	}
	return bytes
}

// snapshot writes every machine's subgraph to disk asynchronously: the
// engine keeps computing while the snapshot drains, so only a fraction of
// the write cost surfaces.
func (g *Graph) snapshot() error {
	cost := g.c.Config().Cost
	err := g.c.RunPhaseF(fmt.Sprintf("gas-snapshot-%d", g.rounds), func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		bytes := g.machineStateBytes(machine)
		m.ChargeSec(cost.GASSnapshotAsyncFrac * bytes / cost.DiskBytesPerSec)
		return nil
	})
	if err != nil {
		return err
	}
	g.haveSnap = true
	g.roundSecs = g.roundSecs[:0]
	return nil
}

// handleFault is the engine's sim.FaultHandler: restore the victim's
// subgraph from the last snapshot and replay only its rounds since — or,
// with no snapshot, restart the whole computation.
func (g *Graph) handleFault(f sim.FaultInfo) error {
	victim := f.Event.Machine
	if victim >= g.machines {
		return nil // boot-clamped spare: hosted no graph state
	}
	c := g.c
	cost := c.Config().Cost
	var replay float64
	for _, s := range g.roundSecs {
		replay += s
	}
	if !g.haveSnap {
		c.AdvanceNamed("gas-restart", g.loadSec+replay)
		return nil
	}
	state := g.machineStateBytes(victim)
	restore := state/cost.DiskBytesPerSec + state/c.Config().Net.BytesPerSec
	c.AdvanceNamed("gas-snapshot-restore", restore)
	c.AdvanceNamed("gas-replay-rounds", cost.GASReplayFrac*replay)
	return nil
}
