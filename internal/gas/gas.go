// Package gas implements a GraphLab-like gather-apply-scatter engine on
// the simulated cluster.
//
// The engine is pull-based, like GraphLab 2.2: in the gather phase every
// active vertex materializes a copy of each neighbor's exported view,
// combines them with a user Sum, and in the apply phase updates its own
// state. The per-vertex view materialization is charged against simulated
// machine memory — this is precisely the behaviour the paper blames for
// GraphLab's failures ("GraphLab seems to simultaneously materialize one
// 50KB copy of the model for each data point, which quickly exhausts the
// available memory"), and why every working GraphLab code in the paper is
// a super-vertex code. Network traffic, by contrast, is charged once per
// (machine, remote neighbor) pair, modelling GraphLab's ghost-vertex
// replication.
//
// The engine also reproduces GraphLab's boot problem: the paper could not
// start GraphLab on more than 96 machines, so a Graph created on a larger
// cluster only spreads vertices over the first 96 and reports the clamp.
package gas

import (
	"fmt"

	"mlbench/internal/ordmap"
	"mlbench/internal/sim"
)

// VertexID identifies a vertex.
type VertexID int64

// Vertex is one graph vertex: user data plus placement and accounting
// metadata.
type Vertex struct {
	ID   VertexID
	Data any
	// Bytes is the simulated size of the vertex state.
	Bytes int64
	// Scaled marks data-proportional vertices (each in-memory vertex
	// stands for Scale vertices at paper scale).
	Scaled  bool
	machine int
}

// Machine returns the machine hosting the vertex.
func (v *Vertex) Machine() int { return v.machine }

// EdgeSet enumerates neighborhoods. Implementations may be implicit
// (complete bipartite, star) to avoid storing enormous edge lists, exactly
// as the paper's Giraph code avoided recording edges explicitly.
type EdgeSet interface {
	// Neighbors returns the neighbor ids of v in deterministic order.
	Neighbors(v VertexID) []VertexID
}

// ExplicitEdges is an adjacency-list edge set; its storage is charged
// against machine memory at Load.
type ExplicitEdges struct {
	adj *ordmap.Map[VertexID, []VertexID]
}

// NewExplicitEdges returns an empty adjacency list.
func NewExplicitEdges() *ExplicitEdges {
	return &ExplicitEdges{adj: ordmap.New[VertexID, []VertexID]()}
}

// Add inserts an undirected edge.
func (e *ExplicitEdges) Add(a, b VertexID) {
	av, _ := e.adj.Get(a)
	e.adj.Set(a, append(av, b))
	bv, _ := e.adj.Get(b)
	e.adj.Set(b, append(bv, a))
}

// Neighbors implements EdgeSet.
func (e *ExplicitEdges) Neighbors(v VertexID) []VertexID {
	n, _ := e.adj.Get(v)
	return n
}

// NumEdges returns the number of directed adjacency entries.
func (e *ExplicitEdges) NumEdges() int {
	total := 0
	e.adj.Each(func(_ VertexID, ns []VertexID) { total += len(ns) })
	return total
}

// Bipartite connects every Left vertex to every Right vertex implicitly.
type Bipartite struct {
	Left, Right []VertexID
}

// Neighbors implements EdgeSet.
func (b *Bipartite) Neighbors(v VertexID) []VertexID {
	for _, l := range b.Left {
		if l == v {
			return b.Right
		}
	}
	for _, r := range b.Right {
		if r == v {
			return b.Left
		}
	}
	return nil
}

// Star connects Center to every Leaf implicitly.
type Star struct {
	Center VertexID
	Leaves []VertexID
}

// Neighbors implements EdgeSet.
func (s *Star) Neighbors(v VertexID) []VertexID {
	if v == s.Center {
		return s.Leaves
	}
	for _, l := range s.Leaves {
		if l == v {
			return []VertexID{s.Center}
		}
	}
	return nil
}

// Union overlays several edge sets.
type Union []EdgeSet

// Neighbors implements EdgeSet.
func (u Union) Neighbors(v VertexID) []VertexID {
	var out []VertexID
	for _, e := range u {
		out = append(out, e.Neighbors(v)...)
	}
	return out
}

// Program is a gather-apply-scatter vertex program. All hooks receive the
// task meter so implementations charge their own numeric work (GraphLab
// user code is C++; use sim.ProfileCPP costs via the meter helpers).
type Program interface {
	// ViewBytes is the simulated size of the view vertex v exports to its
	// gathering neighbors.
	ViewBytes(v *Vertex) int64
	// Gather produces v's accumulator contribution from one neighbor.
	Gather(m *sim.Meter, v, nbr *Vertex) any
	// Sum combines two accumulator values.
	Sum(m *sim.Meter, a, b any) any
	// Apply updates v's state from the combined accumulator (nil if v has
	// no neighbors).
	Apply(m *sim.Meter, v *Vertex, acc any)
}

// Graph is a distributed graph bound to a cluster.
type Graph struct {
	c        *sim.Cluster
	verts    *ordmap.Map[VertexID, *Vertex]
	byMach   [][]*Vertex
	edges    EdgeSet
	machines int // effective machines after the boot clamp
	clamped  bool
	loaded   bool

	// Fault-recovery state (see recover.go): asynchronous snapshots every
	// snapEvery rounds; a crash restores only the victim's subgraph.
	snapEvery int
	rounds    int
	loadSec   float64   // measured graph-load time (restart basis)
	roundSecs []float64 // round durations since the last snapshot
	haveSnap  bool
}

// NewGraph creates a graph. If the cluster exceeds the cost model's
// GASBootMaxMachines, vertices are spread over only that many machines
// and Clamped reports true (the paper's footnote: GraphLab would not boot
// past 96 machines).
func NewGraph(c *sim.Cluster, edges EdgeSet) *Graph {
	machines := c.NumMachines()
	clamped := false
	if max := c.Config().Cost.GASBootMaxMachines; max > 0 && machines > max {
		machines = max
		clamped = true
	}
	g := &Graph{
		c:         c,
		verts:     ordmap.New[VertexID, *Vertex](),
		byMach:    make([][]*Vertex, machines),
		edges:     edges,
		machines:  machines,
		clamped:   clamped,
		snapEvery: c.Config().Recovery.GASSnapshotEvery,
	}
	c.SetFaultHandler(g.handleFault)
	c.SetEngineLabel("graphlab")
	return g
}

// Clamped reports whether the boot clamp reduced the effective machine
// count.
func (g *Graph) Clamped() bool { return g.clamped }

// SetEdges installs the edge set. It must run before Load; graphs whose
// vertex sets are built incrementally construct their implicit edge sets
// afterwards.
func (g *Graph) SetEdges(e EdgeSet) {
	if g.loaded {
		panic("gas: SetEdges after Load")
	}
	g.edges = e
}

// EffectiveMachines returns the number of machines actually hosting
// vertices.
func (g *Graph) EffectiveMachines() int { return g.machines }

// AddVertex inserts a vertex, placed by id hash unless machine >= 0.
func (g *Graph) AddVertex(id VertexID, data any, bytes int64, scaled bool, machine int) *Vertex {
	if g.loaded {
		panic("gas: AddVertex after Load")
	}
	if machine < 0 {
		machine = int(uint64(id*2654435761) % uint64(g.machines))
	}
	v := &Vertex{ID: id, Data: data, Bytes: bytes, Scaled: scaled, machine: machine}
	g.verts.Set(id, v)
	g.byMach[machine] = append(g.byMach[machine], v)
	return v
}

// Vertex returns the vertex with the given id, or nil.
func (g *Graph) Vertex(id VertexID) *Vertex {
	v, _ := g.verts.Get(id)
	return v
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.verts.Len() }

// Load finalizes the graph: vertex state (and explicit edge storage) is
// charged against machine memory, and loading time is charged per vertex.
func (g *Graph) Load() error {
	if g.loaded {
		return nil
	}
	t0, rec0 := g.c.Now(), recoveredSec(g.c)
	err := g.c.RunPhaseF("gas-load", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		m.SetProfile(sim.ProfileCPP)
		for _, v := range g.byMach[machine] {
			if v.Scaled {
				m.ChargeTuples(1)
				if err := m.AllocData(v.Bytes, "gas vertex"); err != nil {
					return err
				}
			} else {
				m.ChargeTuplesAbs(1)
				if err := m.AllocModel(v.Bytes, "gas vertex"); err != nil {
					return err
				}
			}
		}
		if ee, ok := g.edges.(*ExplicitEdges); ok {
			// Adjacency entries for vertices on this machine.
			var entries int64
			for _, v := range g.byMach[machine] {
				entries += int64(len(ee.Neighbors(v.ID)))
			}
			if err := m.AllocData(entries*16, "gas edges"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	g.loaded = true
	g.loadSec = (g.c.Now() - t0) - (recoveredSec(g.c) - rec0)
	return nil
}

// RunRound executes one synchronous gather-apply round over the given
// active vertices (all vertices if active is nil). It returns the first
// error, typically a simulated OOM from gather materialization.
func (g *Graph) RunRound(prog Program, active []VertexID) error {
	if !g.loaded {
		return fmt.Errorf("gas: RunRound before Load")
	}
	if g.snapEvery > 0 && g.rounds > 0 && g.rounds%g.snapEvery == 0 {
		if err := g.snapshot(); err != nil {
			return err
		}
	}
	t0, rec0 := g.c.Now(), recoveredSec(g.c)
	g.c.AdvanceNamed("gas-round-launch", g.c.Config().Cost.GASRound)

	actByMach := make([][]*Vertex, g.machines)
	if active == nil {
		for mi := range g.byMach {
			actByMach[mi] = g.byMach[mi]
		}
	} else {
		for _, id := range active {
			v := g.Vertex(id)
			if v == nil {
				return fmt.Errorf("gas: unknown active vertex %d", id)
			}
			actByMach[v.machine] = append(actByMach[v.machine], v)
		}
	}

	// Gather phase: per active vertex, materialize neighbor views, charge
	// memory and network, compute accumulators. Accumulators live in
	// per-machine maps: each task only writes its own machine's map, so
	// machines can gather on concurrent host goroutines.
	accsBy := make([]map[*Vertex]any, g.machines)
	gatherAlloc := make([]int64, g.machines)
	err := g.c.RunPhaseF("gas-gather", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		accs := make(map[*Vertex]any, len(actByMach[machine]))
		accsBy[machine] = accs
		m.SetProfile(sim.ProfileCPP)
		for _, v := range actByMach[machine] {
			var acc any
			first := true
			var viewBytes int64
			for _, nid := range g.edges.Neighbors(v.ID) {
				nbr := g.Vertex(nid)
				if nbr == nil {
					return fmt.Errorf("gas: vertex %d has unknown neighbor %d", v.ID, nid)
				}
				viewBytes += prog.ViewBytes(nbr)
				// Per-edge gather dispatch, at the gatherer's cardinality.
				if v.Scaled {
					m.ChargeTuples(1)
				} else {
					m.ChargeTuplesAbs(1)
				}
				contrib := prog.Gather(m, v, nbr)
				if first {
					acc, first = contrib, false
				} else {
					acc = prog.Sum(m, acc, contrib)
				}
			}
			// The engine materializes all gathered views for this vertex
			// simultaneously — and keeps them until the apply phase
			// completes, across all active vertices. The asynchronous
			// scheduler additionally holds ~(1 + M/GASAsyncDepthDiv)
			// rounds of gathers in flight.
			if v.Scaled {
				viewBytes = int64(float64(viewBytes) * g.c.Scale())
			}
			rawViewBytes := float64(viewBytes)
			if div := g.c.Config().Cost.GASAsyncDepthDiv; div > 0 {
				viewBytes = int64(float64(viewBytes) * (1 + float64(g.machines)/div))
			}
			if err := m.Machine().Alloc(viewBytes, "gas gather views"); err != nil {
				return err
			}
			gatherAlloc[machine] += viewBytes
			// Deserializing and materializing the gathered views is
			// single-threaded engine work.
			if rate := g.c.Config().Cost.GASGatherBytesPerSec; rate > 0 {
				m.ChargeSerialSec(rawViewBytes / rate)
			}
			accs[v] = acc
		}
		return nil
	})
	if err != nil {
		g.freeGather(gatherAlloc)
		return err
	}

	// Ghost traffic: charged in a dedicated phase from source machines.
	err = g.chargeGhostTraffic(prog, actByMach)
	if err != nil {
		g.freeGather(gatherAlloc)
		return err
	}

	// Apply phase.
	err = g.c.RunPhaseF("gas-apply", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		m.SetProfile(sim.ProfileCPP)
		for _, v := range actByMach[machine] {
			if v.Scaled {
				m.ChargeTuples(1)
			} else {
				m.ChargeTuplesAbs(1)
			}
			prog.Apply(m, v, accsBy[machine][v])
		}
		return nil
	})
	g.freeGather(gatherAlloc)
	if err == nil {
		// Record the round's duration (minus any recovery settled within
		// it) as replay basis for snapshot restore.
		g.roundSecs = append(g.roundSecs, (g.c.Now()-t0)-(recoveredSec(g.c)-rec0))
		g.rounds++
	}
	return err
}

func (g *Graph) freeGather(alloc []int64) {
	for mi, b := range alloc {
		if b > 0 {
			g.c.Machine(mi).Free(b)
		}
	}
}

// chargeGhostTraffic ships each (destination machine, remote neighbor)
// view once, from the neighbor's host machine.
func (g *Graph) chargeGhostTraffic(prog Program, actByMach [][]*Vertex) error {
	// For each destination machine, the set of remote sources it needs.
	type flow struct {
		src, dst int
		bytes    float64
	}
	var flows []flow
	for dst := 0; dst < g.machines; dst++ {
		needed := ordmap.New[VertexID, bool]()
		for _, v := range actByMach[dst] {
			for _, nid := range g.edges.Neighbors(v.ID) {
				nbr := g.Vertex(nid)
				if nbr != nil && nbr.machine != dst {
					if _, seen := needed.Get(nid); !seen {
						needed.Set(nid, true)
						flows = append(flows, flow{src: nbr.machine, dst: dst, bytes: float64(prog.ViewBytes(nbr))})
					}
				}
			}
		}
	}
	if len(flows) == 0 {
		return nil
	}
	bySrc := make([][]flow, g.machines)
	for _, f := range flows {
		bySrc[f.src] = append(bySrc[f.src], f)
	}
	return g.c.RunPhaseF("gas-ghosts", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		var ghostBytes float64
		for _, f := range bySrc[machine] {
			m.SendModel(f.dst, f.bytes)
			ghostBytes += f.bytes
		}
		if ghostBytes > 0 {
			m.Count("ghost_bytes", ghostBytes)
		}
		return nil
	})
}

// TransformVertices runs fn over every vertex in one phase (GraphLab's
// transform_vertices).
func (g *Graph) TransformVertices(fn func(m *sim.Meter, v *Vertex)) error {
	if !g.loaded {
		return fmt.Errorf("gas: TransformVertices before Load")
	}
	return g.c.RunPhaseF("gas-transform", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		m.SetProfile(sim.ProfileCPP)
		for _, v := range g.byMach[machine] {
			if v.Scaled {
				m.ChargeTuples(1)
			} else {
				m.ChargeTuplesAbs(1)
			}
			fn(m, v)
		}
		return nil
	})
}

// MapReduceVertices maps every vertex and reduces the results to one value
// (GraphLab's map_reduce_vertices), with tree-style aggregation to machine
// 0. resultBytes sizes the partial results for network charging.
func (g *Graph) MapReduceVertices(resultBytes int64, mapFn func(m *sim.Meter, v *Vertex) any, reduceFn func(m *sim.Meter, a, b any) any) (any, error) {
	if !g.loaded {
		return nil, fmt.Errorf("gas: MapReduceVertices before Load")
	}
	partials := make([]any, g.machines)
	has := make([]bool, g.machines)
	err := g.c.RunPhaseF("gas-mapreduce", func(machine int, m *sim.Meter) error {
		if machine >= g.machines {
			return nil
		}
		m.SetProfile(sim.ProfileCPP)
		for _, v := range g.byMach[machine] {
			if v.Scaled {
				m.ChargeTuples(1)
			} else {
				m.ChargeTuplesAbs(1)
			}
			r := mapFn(m, v)
			if !has[machine] {
				partials[machine], has[machine] = r, true
			} else {
				partials[machine] = reduceFn(m, partials[machine], r)
			}
		}
		if machine != 0 && has[machine] {
			m.SendModel(0, float64(resultBytes))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out any
	first := true
	err = g.c.RunDriver("gas-mapreduce-merge", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		for mi := 0; mi < g.machines; mi++ {
			if !has[mi] {
				continue
			}
			if first {
				out, first = partials[mi], false
			} else {
				out = reduceFn(m, out, partials[mi])
			}
		}
		return nil
	})
	return out, err
}
