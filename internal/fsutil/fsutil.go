// Package fsutil holds the file-output helpers shared by every code
// path that writes an artifact to a user-supplied path (trace exports,
// perf-gate baselines, generated datasets): parent directories are
// created as needed so a path into a fresh results directory succeeds
// instead of failing with a bare "open: no such file or directory".
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// EnsureParent creates path's parent directories as needed. A path in
// the current directory (no separator, or an explicit ".") needs no
// work and always succeeds.
func EnsureParent(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output directory %s: %w", dir, err)
	}
	return nil
}

// Create is os.Create preceded by EnsureParent.
func Create(path string) (*os.File, error) {
	if err := EnsureParent(path); err != nil {
		return nil, err
	}
	return os.Create(path)
}

// WriteFile is os.WriteFile preceded by EnsureParent.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	if err := EnsureParent(path); err != nil {
		return err
	}
	return os.WriteFile(path, data, perm)
}
