package fsutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "out.json")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "x" {
		t.Fatalf("read back: %q, %v", data, err)
	}
}

func TestCreateCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "dir", "f.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureParentBareName(t *testing.T) {
	if err := EnsureParent("plain.json"); err != nil {
		t.Fatalf("bare file name must need no directory work: %v", err)
	}
}
