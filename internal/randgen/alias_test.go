package randgen

import (
	"math"
	"testing"
)

func TestAliasPmfMatchesWeightsExactly(t *testing.T) {
	// The alias table is not an approximation: the mass it assigns to each
	// outcome must equal the normalized weights to float round-off.
	rng := New(7)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(200)
		weights := make([]float64, k)
		var total float64
		for i := range weights {
			if rng.Float64() < 0.3 {
				weights[i] = 0 // zero-weight outcomes must get zero mass
			} else {
				weights[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(6))-3)
			}
			total += weights[i]
		}
		if total == 0 {
			weights[0], total = 1, 1
		}
		pmf := NewAlias(weights).Pmf()
		for i, w := range weights {
			if math.Abs(pmf[i]-w/total) > 1e-12 {
				t.Fatalf("trial %d: pmf[%d] = %v, want %v", trial, i, pmf[i], w/total)
			}
		}
	}
}

// chiSquared returns the chi-squared statistic of observed counts against
// expected probabilities over n draws, pooling tiny-expectation cells.
func chiSquared(counts []int, probs []float64, n int) (stat float64, dof int) {
	var pooledObs, pooledExp float64
	for i, p := range probs {
		exp := p * float64(n)
		if exp < 5 {
			pooledObs += float64(counts[i])
			pooledExp += exp
			continue
		}
		d := float64(counts[i]) - exp
		stat += d * d / exp
		dof++
	}
	if pooledExp > 0 {
		d := pooledObs - pooledExp
		stat += d * d / pooledExp
		dof++
	}
	return stat, dof - 1
}

func TestAliasAgreesWithLinearScanFrequencies(t *testing.T) {
	// Draw from both samplers and chi-squared-test each against the true
	// distribution: alias draws must look like Categorical draws.
	weights := make([]float64, 100)
	wrng := New(3)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.05) * (0.5 + wrng.Float64())
		total += weights[i]
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / total
	}
	const n = 200_000
	a := NewAlias(weights)
	arng, crng := New(11), New(12)
	aliasCounts := make([]int, len(weights))
	linearCounts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		aliasCounts[a.Draw(arng)]++
		linearCounts[crng.Categorical(weights)]++
	}
	for name, counts := range map[string][]int{"alias": aliasCounts, "linear": linearCounts} {
		stat, dof := chiSquared(counts, probs, n)
		// Very loose 99.9%-ish bound: chi2_{0.999} ~ dof + 4*sqrt(2*dof).
		limit := float64(dof) + 4*math.Sqrt(2*float64(dof))
		if stat > limit {
			t.Errorf("%s sampler chi-squared = %.1f with %d dof, limit %.1f", name, stat, dof, limit)
		}
	}
}

func TestAliasDeterministic(t *testing.T) {
	weights := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a, b := NewAlias(weights), NewAlias(weights)
	ra, rb := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Draw(ra), b.Draw(rb); x != y {
			t.Fatalf("draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestAliasPanicsLikeCategorical(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0, 0},
		"negative": {1, -1, 2},
		"nan":      {1, math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights: expected panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{42})
	rng := New(1)
	for i := 0; i < 10; i++ {
		if got := a.Draw(rng); got != 0 {
			t.Fatalf("draw = %d", got)
		}
	}
}

// benchWeights is a Zipf-ish K=100 distribution, the LDA topic-count shape.
func benchWeights() []float64 {
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), 1.05)
	}
	return w
}

func BenchmarkCategoricalLinear(b *testing.B) {
	weights := benchWeights()
	rng := New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rng.Categorical(weights)
	}
}

func BenchmarkCategoricalAlias(b *testing.B) {
	a := NewAlias(benchWeights())
	rng := New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Draw(rng)
	}
}
