package randgen

import (
	"fmt"
	"math"
)

// Alias is a Walker/Vose alias table: an O(K) preprocessing of a discrete
// distribution that turns each subsequent draw into O(1) work — one uniform
// index plus one coin flip — instead of Categorical's O(K) linear scan.
// This is the standard fix for topic-model sampling throughput (LightLDA
// et al.): LDA and HMM resample every word against the same per-topic
// distribution, so the table build amortizes over millions of draws.
//
// The sampled distribution is exactly proportional to the weights (the
// alias method is not an approximation), but the draw consumes randomness
// differently than Categorical, so switching a sampler changes the stream
// of variates. Callers opt in where the math permits; default paths keep
// using Categorical and stay byte-identical.
type Alias struct {
	prob  []float64 // acceptance threshold per column
	alias []int     // fallback index per column
}

// NewAlias builds an alias table for the (unnormalized, non-negative)
// weights with Vose's O(K) construction. It panics on invalid weights,
// mirroring Categorical.
func NewAlias(weights []float64) *Alias {
	k := len(weights)
	if k == 0 {
		panic("randgen: NewAlias with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("randgen: NewAlias with invalid weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("randgen: NewAlias with zero total weight")
	}
	a := &Alias{prob: make([]float64, k), alias: make([]int, k)}
	// Scale weights so the average column is exactly 1; split columns into
	// under- and over-full and pair them off.
	scaled := make([]float64, k)
	small := make([]int, 0, k)
	large := make([]int, 0, k)
	for i, w := range weights {
		scaled[i] = w * float64(k) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Round-off leftovers are exactly-full columns.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// K returns the number of outcomes.
func (a *Alias) K() int { return len(a.prob) }

// Draw samples an index in O(1): pick a uniform column, then accept it or
// take its alias.
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Pmf returns the exact probability mass the table assigns to each
// outcome (for tests): column i is chosen with probability 1/K and kept
// with probability prob[i]; otherwise its alias receives the mass.
func (a *Alias) Pmf() []float64 {
	k := len(a.prob)
	out := make([]float64, k)
	for i := range a.prob {
		out[i] += a.prob[i] / float64(k)
		out[a.alias[i]] += (1 - a.prob[i]) / float64(k)
	}
	return out
}
