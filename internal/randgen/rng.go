// Package randgen provides the deterministic random number generation used
// throughout the benchmark: a splittable 64-bit generator plus samplers for
// every distribution the five MCMC models require (Gaussian, multivariate
// normal, Gamma, inverse Gamma, Beta, Dirichlet, Wishart, inverse Wishart,
// inverse Gaussian, Categorical and Multinomial).
//
// Determinism matters here: the paper stresses that "each platform is
// running exactly the same MCMC simulation", and our cross-engine agreement
// tests rely on reproducible substreams. Split derives an independent
// stream for each machine, partition, or vertex.
package randgen

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is not safe for concurrent use;
// derive one per goroutine with Split.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r and the given stream id.
// Calling Split with distinct ids yields streams that do not overlap in
// practice; it does not advance r.
func (r *RNG) Split(id uint64) *RNG {
	st := r.s[0] ^ (id+1)*0xD1B54A32D192ED03
	out := &RNG{}
	for i := range out.s {
		out.s[i] = splitMix64(&st)
	}
	if out.s[0]|out.s[1]|out.s[2]|out.s[3] == 0 {
		out.s[0] = 1
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit output.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform sample in (0, 1), never exactly 0.
func (r *RNG) Float64Open() float64 {
	for {
		if u := r.Float64(); u > 0 {
			return u
		}
	}
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randgen: Intn with non-positive n")
	}
	// Lemire-style bounded rejection.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Norm returns a standard normal sample (polar Box-Muller, one value per
// call with the spare cached implicitly discarded for simplicity).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a sample from Normal(mu, sigma^2) with standard deviation
// sigma. It panics if sigma < 0.
func (r *RNG) Normal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("randgen: negative standard deviation")
	}
	return mu + sigma*r.Norm()
}

// Exp returns a standard exponential sample.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}
