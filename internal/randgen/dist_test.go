package randgen

import (
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/linalg"
)

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, rate float64 }{
		{0.5, 1}, {1, 2}, {2, 0.5}, {9, 3}, {30, 1},
	}
	r := New(21)
	for _, c := range cases {
		mean, v := moments(150000, func() float64 { return r.Gamma(c.shape, c.rate) })
		wantMean := c.shape / c.rate
		wantVar := c.shape / (c.rate * c.rate)
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.rate, mean, wantMean)
		}
		if math.Abs(v-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) var = %v, want %v", c.shape, c.rate, v, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestInvGammaMean(t *testing.T) {
	r := New(22)
	// InvGamma(shape=5, scale=8) has mean 8/4 = 2.
	mean, _ := moments(150000, func() float64 { return r.InvGamma(5, 8) })
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("InvGamma mean = %v, want 2", mean)
	}
}

func TestChiSquaredMoments(t *testing.T) {
	r := New(23)
	mean, v := moments(100000, func() float64 { return r.ChiSquared(7) })
	if math.Abs(mean-7) > 0.1 {
		t.Errorf("ChiSquared mean = %v, want 7", mean)
	}
	if math.Abs(v-14) > 0.5 {
		t.Errorf("ChiSquared var = %v, want 14", v)
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(24)
	a, b := 2.0, 5.0
	mean, v := moments(150000, func() float64 { return r.Beta(a, b) })
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(mean-wantMean) > 0.005 {
		t.Errorf("Beta mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(v-wantVar) > 0.002 {
		t.Errorf("Beta var = %v, want %v", v, wantVar)
	}
}

func TestDirichletSimplexAndMean(t *testing.T) {
	r := New(25)
	alpha := []float64{1, 2, 7}
	sums := make([]float64, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		d := r.Dirichlet(alpha)
		var total float64
		for k, x := range d {
			if x < 0 {
				t.Fatalf("negative Dirichlet component %v", x)
			}
			sums[k] += x
			total += x
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("Dirichlet draw sums to %v", total)
		}
	}
	for k, want := range []float64{0.1, 0.2, 0.7} {
		if got := sums[k] / n; math.Abs(got-want) > 0.01 {
			t.Errorf("Dirichlet mean[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestDirichletPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Dirichlet(nil)
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(26)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("category 0 freq = %v, want 0.25", got)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {1, -1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestMultinomialTotals(t *testing.T) {
	r := New(27)
	counts := r.Multinomial(1000, []float64{1, 1, 2})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Errorf("Multinomial counts sum to %d, want 1000", total)
	}
	if counts[2] < 350 || counts[2] > 650 {
		t.Errorf("Multinomial heavy category count %d implausible", counts[2])
	}
}

func TestInvGaussianMoments(t *testing.T) {
	r := New(28)
	mu, lambda := 2.0, 6.0
	mean, v := moments(200000, func() float64 { return r.InvGaussian(mu, lambda) })
	wantVar := mu * mu * mu / lambda
	if math.Abs(mean-mu) > 0.03 {
		t.Errorf("InvGaussian mean = %v, want %v", mean, mu)
	}
	if math.Abs(v-wantVar) > 0.1*wantVar {
		t.Errorf("InvGaussian var = %v, want %v", v, wantVar)
	}
}

func TestInvGaussianPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).InvGaussian(-1, 1)
}

func TestMVNormalMomentsAndCovariance(t *testing.T) {
	r := New(29)
	mu := linalg.Vec{1, -2}
	cov := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{2, 0.8, 0.8, 1}}
	const n = 100000
	sum := linalg.NewVec(2)
	cross := linalg.NewMat(2, 2)
	for i := 0; i < n; i++ {
		x, err := r.MVNormal(mu, cov)
		if err != nil {
			t.Fatal(err)
		}
		x.AddTo(sum)
		cross.AddOuter(1, x, x)
	}
	mean := sum.Scale(1.0 / n)
	for i := range mu {
		if math.Abs(mean[i]-mu[i]) > 0.02 {
			t.Errorf("MVN mean[%d] = %v, want %v", i, mean[i], mu[i])
		}
	}
	cross.ScaleInPlace(1.0 / n)
	cross.AddOuter(-1, mean, mean)
	if d := cross.MaxAbsDiff(cov); d > 0.05 {
		t.Errorf("MVN sample covariance off by %v", d)
	}
}

func TestMVNormalRejectsBadCovariance(t *testing.T) {
	bad := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 1}}
	if _, err := New(1).MVNormal(linalg.Vec{0, 0}, bad); err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}

func TestWishartMean(t *testing.T) {
	r := New(30)
	scale := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{1, 0.3, 0.3, 2}}
	df := 8.0
	acc := linalg.NewMat(2, 2)
	const n = 20000
	for i := 0; i < n; i++ {
		w, err := r.Wishart(df, scale)
		if err != nil {
			t.Fatal(err)
		}
		acc.AddInPlace(w)
	}
	acc.ScaleInPlace(1.0 / n)
	want := scale.Clone().ScaleInPlace(df)
	if d := acc.MaxAbsDiff(want); d > 0.15 {
		t.Errorf("Wishart mean off by %v (got %v want %v)", d, acc.Data, want.Data)
	}
}

func TestWishartRejectsLowDF(t *testing.T) {
	if _, err := New(1).Wishart(1, linalg.Eye(3)); err == nil {
		t.Fatal("expected error for df < dim")
	}
}

func TestInvWishartMean(t *testing.T) {
	r := New(31)
	psi := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{2, 0.5, 0.5, 1}}
	df := 10.0 // mean = psi / (df - p - 1) = psi / 7
	acc := linalg.NewMat(2, 2)
	const n = 20000
	for i := 0; i < n; i++ {
		w, err := r.InvWishart(df, psi)
		if err != nil {
			t.Fatal(err)
		}
		acc.AddInPlace(w)
	}
	acc.ScaleInPlace(1.0 / n)
	want := psi.Clone().ScaleInPlace(1.0 / 7.0)
	if d := acc.MaxAbsDiff(want); d > 0.02 {
		t.Errorf("InvWishart mean off by %v (got %v want %v)", d, acc.Data, want.Data)
	}
}

// Property: Dirichlet draws always lie on the probability simplex for any
// positive alpha.
func TestQuickDirichletSimplex(t *testing.T) {
	r := New(99)
	f := func(a0, a1, a2 float64) bool {
		alpha := []float64{qpos(a0), qpos(a1), qpos(a2)}
		d := r.Dirichlet(alpha)
		var s float64
		for _, x := range d {
			if x < 0 || x > 1 {
				return false
			}
			s += x
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Gamma draws are non-negative and finite for any valid
// parameters (tiny shapes may underflow to exactly zero), and strictly
// positive once the shape is not extreme.
func TestQuickGammaPositive(t *testing.T) {
	r := New(98)
	f := func(shape, rate float64) bool {
		s, ra := qpos(shape), qpos(rate)
		g := r.Gamma(s, ra)
		if math.IsNaN(g) || math.IsInf(g, 0) || g < 0 {
			return false
		}
		if s >= 0.5 && g == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Categorical only returns indices with positive weight.
func TestQuickCategoricalSupport(t *testing.T) {
	r := New(97)
	f := func(w0, w1, w2, w3 float64) bool {
		w := []float64{qpos(w0), 0, qpos(w2), 0}
		i := r.Categorical(w)
		return w[i] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: InvGaussian draws are strictly positive.
func TestQuickInvGaussianPositive(t *testing.T) {
	r := New(96)
	f := func(mu, lambda float64) bool {
		return r.InvGaussian(qpos(mu), qpos(lambda)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// qpos maps an arbitrary float into a positive, moderate range.
func qpos(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	v := math.Abs(math.Mod(x, 50))
	if v < 1e-3 {
		return 1e-3
	}
	return v
}

func TestPoissonMoments(t *testing.T) {
	r := New(32)
	for _, lambda := range []float64{0.5, 4, 25, 80} {
		mean, v := moments(60000, func() float64 { return float64(r.Poisson(lambda)) })
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(v-lambda) > 0.1*lambda+0.05 {
			t.Errorf("Poisson(%v) var = %v", lambda, v)
		}
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Poisson(0)
}
