package randgen

import (
	"fmt"
	"math"

	"mlbench/internal/linalg"
)

// Gamma returns a sample from Gamma(shape, rate) — mean shape/rate — using
// the Marsaglia–Tsang method, boosted for shape < 1. It panics if shape or
// rate is not positive.
func (r *RNG) Gamma(shape, rate float64) float64 {
	if shape <= 0 || rate <= 0 {
		panic(fmt.Sprintf("randgen: Gamma(%v, %v) requires positive parameters", shape, rate))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64Open()
		return r.Gamma(shape+1, rate) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v / rate
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / rate
		}
	}
}

// InvGamma returns a sample from InverseGamma(shape, scale): the reciprocal
// of a Gamma(shape, rate=scale) draw. Its mean is scale/(shape-1) for
// shape > 1.
func (r *RNG) InvGamma(shape, scale float64) float64 {
	return 1 / r.Gamma(shape, scale)
}

// ChiSquared returns a sample from ChiSquared(df).
func (r *RNG) ChiSquared(df float64) float64 {
	return r.Gamma(df/2, 0.5)
}

// Beta returns a sample from Beta(a, b).
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Dirichlet returns a sample from Dirichlet(alpha). The result sums to 1.
// It panics if alpha is empty or has a non-positive entry.
func (r *RNG) Dirichlet(alpha []float64) linalg.Vec {
	if len(alpha) == 0 {
		panic("randgen: Dirichlet with empty alpha")
	}
	out := make(linalg.Vec, len(alpha))
	var sum float64
	for i, a := range alpha {
		g := r.Gamma(a, 1)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Extremely small alphas can underflow all gammas to zero;
		// fall back to a uniform point on the simplex corner set.
		out[r.Intn(len(out))] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Categorical returns an index sampled proportionally to the (unnormalized,
// non-negative) weights. It panics if all weights are zero or any is
// negative.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("randgen: Categorical with invalid weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("randgen: Categorical with zero total weight")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // round-off fall-through
}

// Multinomial returns counts of n draws from Categorical(weights).
func (r *RNG) Multinomial(n int, weights []float64) []int {
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	return counts
}

// InvGaussian returns a sample from the inverse Gaussian (Wald)
// distribution with mean mu and shape lambda, via the
// Michael–Schucany–Haas transformation.
func (r *RNG) InvGaussian(mu, lambda float64) float64 {
	if mu <= 0 || lambda <= 0 {
		panic(fmt.Sprintf("randgen: InvGaussian(%v, %v) requires positive parameters", mu, lambda))
	}
	nu := r.Norm()
	y := nu * nu
	x := mu + mu*mu*y/(2*lambda) - mu/(2*lambda)*math.Sqrt(4*mu*lambda*y+mu*mu*y*y)
	if x <= 0 {
		// Guard against catastrophic cancellation for extreme draws.
		x = math.SmallestNonzeroFloat64
	}
	if r.Float64() <= mu/(mu+x) {
		return x
	}
	return mu * mu / x
}

// MVNormalChol returns a sample from the multivariate normal with mean mu
// and covariance L*L^T, given the lower Cholesky factor L.
func (r *RNG) MVNormalChol(mu linalg.Vec, l *linalg.Mat) linalg.Vec {
	n := len(mu)
	z := make(linalg.Vec, n)
	for i := range z {
		z[i] = r.Norm()
	}
	out := make(linalg.Vec, n)
	for i := 0; i < n; i++ {
		s := mu[i]
		row := l.Data[i*n : i*n+i+1]
		for k, v := range row {
			s += v * z[k]
		}
		out[i] = s
	}
	return out
}

// MVNormal returns a sample from Normal(mu, cov). The covariance matrix
// must be symmetric positive definite.
func (r *RNG) MVNormal(mu linalg.Vec, cov *linalg.Mat) (linalg.Vec, error) {
	l, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("randgen: MVNormal covariance: %w", err)
	}
	return r.MVNormalChol(mu, l), nil
}

// Wishart returns a sample from Wishart(df, scale) via the Bartlett
// decomposition: if A is lower triangular with chi and normal entries and
// L is the Cholesky factor of scale, the draw is L*A*A^T*L^T. df must be
// at least the dimension.
func (r *RNG) Wishart(df float64, scale *linalg.Mat) (*linalg.Mat, error) {
	p := scale.Rows
	if df < float64(p) {
		return nil, fmt.Errorf("randgen: Wishart df %v < dimension %d", df, p)
	}
	l, err := linalg.Cholesky(scale)
	if err != nil {
		return nil, fmt.Errorf("randgen: Wishart scale: %w", err)
	}
	a := linalg.NewMat(p, p)
	for i := 0; i < p; i++ {
		a.Set(i, i, math.Sqrt(r.ChiSquared(df-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, r.Norm())
		}
	}
	la := l.MulMat(a)
	return la.MulMat(la.T()).Symmetrize(), nil
}

// InvWishart returns a sample from the inverse Wishart distribution with
// df degrees of freedom and scale matrix psi: the inverse of a
// Wishart(df, psi^{-1}) draw. Its mean is psi/(df - p - 1) for df > p+1.
func (r *RNG) InvWishart(df float64, psi *linalg.Mat) (*linalg.Mat, error) {
	psiL, err := linalg.Cholesky(psi)
	if err != nil {
		return nil, fmt.Errorf("randgen: InvWishart scale: %w", err)
	}
	psiInv := linalg.CholInverse(psiL)
	w, err := r.Wishart(df, psiInv)
	if err != nil {
		return nil, err
	}
	wl, err := linalg.Cholesky(w)
	if err != nil {
		return nil, fmt.Errorf("randgen: InvWishart draw not invertible: %w", err)
	}
	return linalg.CholInverse(wl).Symmetrize(), nil
}

// Poisson returns a sample from Poisson(lambda): Knuth inversion for
// small rates, and recursive rate-splitting (Poisson(a+b) is the sum of
// independent Poisson(a) and Poisson(b)) for large ones.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		panic(fmt.Sprintf("randgen: Poisson(%v) requires a positive rate", lambda))
	}
	if lambda < 30 {
		// Knuth inversion.
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Split the rate: Poisson(a+b) = Poisson(a) + Poisson(b).
	half := lambda / 2
	return r.Poisson(half) + r.Poisson(lambda-half)
}
