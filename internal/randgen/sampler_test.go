package randgen

import "testing"

func TestParseSamplerTier(t *testing.T) {
	cases := []struct {
		in   string
		want SamplerTier
	}{
		{"", TierDense},
		{"dense", TierDense},
		{"alias", TierAlias},
		{"mhalias", TierMHAlias},
	}
	for _, c := range cases {
		got, err := ParseSamplerTier(c.in)
		if err != nil {
			t.Fatalf("ParseSamplerTier(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSamplerTier(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseSamplerTier("turbo"); err == nil {
		t.Error("ParseSamplerTier(turbo) should fail")
	}
	for _, name := range SamplerTiers() {
		tier, err := ParseSamplerTier(name)
		if err != nil {
			t.Fatalf("SamplerTiers lists unparseable %q: %v", name, err)
		}
		if tier.String() != name {
			t.Errorf("round trip %q -> %v -> %q", name, tier, tier.String())
		}
	}
}

// TestCategoricalSafeMatchesCategorical: with a valid weight vector the
// safe helper consumes and returns exactly what Categorical would.
func TestCategoricalSafeMatchesCategorical(t *testing.T) {
	w := []float64{0.2, 0, 3, 1.5}
	a, b := New(77), New(77)
	for i := 0; i < 1000; i++ {
		if got, want := a.CategoricalSafe(w), b.Categorical(w); got != want {
			t.Fatalf("draw %d: CategoricalSafe = %d, Categorical = %d", i, got, want)
		}
	}
}

// TestCategoricalSafeUnderflow: an all-zero vector falls back to the
// uniform Intn draw on the same stream position.
func TestCategoricalSafeUnderflow(t *testing.T) {
	w := make([]float64, 7)
	a, b := New(5), New(5)
	seen := make(map[int]bool)
	for i := 0; i < 500; i++ {
		got, want := a.CategoricalSafe(w), b.Intn(len(w))
		if got != want {
			t.Fatalf("draw %d: CategoricalSafe = %d, Intn = %d", i, got, want)
		}
		seen[got] = true
	}
	if len(seen) != len(w) {
		t.Errorf("uniform fallback visited %d of %d outcomes", len(seen), len(w))
	}
}
