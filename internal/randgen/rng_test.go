package randgen

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := true
	a42 := New(42)
	for i := 0; i < 10; i++ {
		if a42.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	s1b := New(7).Split(1)
	for i := 0; i < 50; i++ {
		if s1.Uint64() != s1b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// Streams from different ids should differ.
	s1 = New(7).Split(1)
	diff := false
	for i := 0; i < 20; i++ {
		if s1.Uint64() != s2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split(1) and Split(2) produced identical streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	a.Split(9)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) did not hit all values in 1000 draws: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// moments estimates the sample mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var s, s2 float64
	for i := 0; i < n; i++ {
		x := draw()
		s += x
		s2 += x * x
	}
	mean = s / float64(n)
	variance = s2/float64(n) - mean*mean
	return
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	mean, v := moments(200000, r.Norm)
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(v-1) > 0.02 {
		t.Errorf("Norm variance = %v", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	mean, v := moments(100000, func() float64 { return r.Normal(3, 2) })
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("Normal mean = %v, want 3", mean)
	}
	if math.Abs(v-4) > 0.1 {
		t.Errorf("Normal variance = %v, want 4", v)
	}
}

func TestNormalPanicsOnNegativeSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	mean, v := moments(100000, r.Exp)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v", mean)
	}
	if math.Abs(v-1) > 0.05 {
		t.Errorf("Exp variance = %v", v)
	}
}
