package randgen

import "fmt"

// SamplerTier selects how the LDA/HMM token hot path draws from its
// per-token categorical conditional. The tiers trade setup cost for
// per-draw cost, LightLDA-style:
//
//   - TierDense is the paper-faithful O(K) linear scan over exact
//     weights. It is the default and stays byte-identical to the
//     historical behaviour — same weights, same RNG consumption.
//   - TierAlias draws the same exact per-token distribution through a
//     freshly built Walker/Vose alias table. The distribution is
//     identical to dense (the alias method is exact) but the draw
//     consumes randomness differently, so chains diverge bit-wise. It
//     exists as the correctness midpoint between dense and mhalias:
//     only the draw mechanics change, not the target.
//   - TierMHAlias is the O(1)-amortized Metropolis-Hastings sampler:
//     cycled doc-proposal/word-proposal moves against per-iteration
//     cached alias tables (deliberately stale within the iteration),
//     with the exact accept ratio correcting for the staleness, over
//     sparse count structures.
type SamplerTier int

const (
	// TierDense: exact O(K) scan, byte-identical default.
	TierDense SamplerTier = iota
	// TierAlias: exact per-draw alias table over the dense weights.
	TierAlias
	// TierMHAlias: cached-stale-alias Metropolis-Hastings proposals.
	TierMHAlias
)

// String names the tier as the -sampler flag spells it.
func (t SamplerTier) String() string {
	switch t {
	case TierAlias:
		return "alias"
	case TierMHAlias:
		return "mhalias"
	default:
		return "dense"
	}
}

// SamplerTiers lists the valid tier names in order.
func SamplerTiers() []string { return []string{"dense", "alias", "mhalias"} }

// ParseSamplerTier parses a tier name; the empty string means the dense
// default. Unknown names are rejected together with the valid set.
func ParseSamplerTier(s string) (SamplerTier, error) {
	switch s {
	case "", "dense":
		return TierDense, nil
	case "alias":
		return TierAlias, nil
	case "mhalias":
		return TierMHAlias, nil
	default:
		return TierDense, fmt.Errorf("randgen: unknown sampler tier %q (valid tiers: dense, alias, mhalias)", s)
	}
}

// CategoricalSafe samples an index proportionally to the weights, falling
// back to a uniform draw when every weight underflows to zero — the
// degenerate-conditional guard the LDA and HMM samplers share. The
// randomness consumption is exactly the historical per-model fallback:
// one Intn on underflow, one Float64 (inside Categorical) otherwise.
func (r *RNG) CategoricalSafe(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	return r.Categorical(weights)
}
