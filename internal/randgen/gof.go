package randgen

import (
	"math"
	"sort"
)

// Goodness-of-fit statistics shared by the sampler test batteries (this
// package's gof_test.go and the internal/datagen generator battery).
// They are plain math, deliberately free of *testing.T, so non-test
// packages' tests can reuse them against closed-form CDFs.

// KSStat returns the Kolmogorov-Smirnov statistic sup |F_n(x) - F(x)| of
// the empirical distribution of xs against the CDF.
func KSStat(xs []float64, cdf func(float64) float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if hi := (float64(i)+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// KSCritical returns the alpha ~ 0.001 Kolmogorov-Smirnov critical value
// 1.95/sqrt(n): a fixed-seed draw whose statistic exceeds it indicates a
// sampler bug, not sampling noise.
func KSCritical(n int) float64 {
	return 1.95 / math.Sqrt(float64(n))
}

// ChiSquaredStat returns sum (obs - exp)^2 / exp over the buckets.
// Buckets with non-positive expectation are skipped; callers should merge
// tail buckets until every expectation is comfortably above ~5.
func ChiSquaredStat(obs, exp []float64) float64 {
	var chi2 float64
	for i := range obs {
		if exp[i] <= 0 {
			continue
		}
		d := obs[i] - exp[i]
		chi2 += d * d / exp[i]
	}
	return chi2
}

// ChiSquaredCritical returns the approximate alpha ~ 0.001 critical value
// of the chi-squared distribution with df degrees of freedom, via the
// Wilson-Hilferty cube approximation (z = 3.09 is the standard-normal
// 0.999 quantile). Accurate to a few percent for df >= 3, which is all a
// pass/fail gate at this alpha needs.
func ChiSquaredCritical(df float64) float64 {
	const z = 3.09
	t := 1 - 2/(9*df) + z*math.Sqrt(2/(9*df))
	return df * t * t * t
}
