package randgen

import (
	"math"
	"testing"

	"mlbench/internal/linalg"
)

// This file is a goodness-of-fit battery for the samplers the Gibbs
// chains lean on. Each test draws from a distribution with a closed-form
// CDF (or a closed-form reduction to one) and applies a Kolmogorov-
// Smirnov or chi-squared test. Seeds are fixed, so a pass is
// deterministic; thresholds sit at the alpha ~ 0.001 critical values so
// a genuine sampler bug — not sampling noise — is what trips them. The
// statistics themselves (KSStat, ChiSquaredStat, the critical values)
// live in gof.go so other packages' batteries can reuse them.

// checkKS fails when the KS statistic exceeds the alpha = 0.001 critical
// value 1.95/sqrt(n).
func checkKS(t *testing.T, name string, xs []float64, cdf func(float64) float64) {
	t.Helper()
	d := KSStat(xs, cdf)
	crit := KSCritical(len(xs))
	if d > crit {
		t.Errorf("%s: KS statistic %.5f exceeds critical value %.5f (n=%d)", name, d, crit, len(xs))
	}
}

func stdNormCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// TestDirichletMarginalGoF checks the Dirichlet against its marginal law:
// for alpha = (1, ..., 1) over K components, each coordinate is
// Beta(1, K-1) with CDF 1 - (1-x)^(K-1).
func TestDirichletMarginalGoF(t *testing.T) {
	const k, n = 5, 6000
	rng := New(11)
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = 1
	}
	xs := make([]float64, n)
	for i := range xs {
		v := rng.Dirichlet(alpha)
		var sum float64
		for _, p := range v {
			if p < 0 {
				t.Fatalf("negative Dirichlet coordinate %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Dirichlet draw sums to %v", sum)
		}
		xs[i] = v[0]
	}
	checkKS(t, "Dirichlet(1,...,1) marginal", xs, func(x float64) float64 {
		switch {
		case x <= 0:
			return 0
		case x >= 1:
			return 1
		}
		return 1 - math.Pow(1-x, k-1)
	})
}

// TestDirichletArgmaxUniform is the chi-squared half of the Dirichlet
// check: under a symmetric alpha the largest coordinate is uniform over
// the K positions.
func TestDirichletArgmaxUniform(t *testing.T) {
	const k, n = 4, 8000
	rng := New(12)
	alpha := []float64{0.7, 0.7, 0.7, 0.7}
	counts := make([]float64, k)
	for i := 0; i < n; i++ {
		v := rng.Dirichlet(alpha)
		best := 0
		for j := 1; j < k; j++ {
			if v[j] > v[best] {
				best = j
			}
		}
		counts[best]++
	}
	exp := make([]float64, k)
	for i := range exp {
		exp[i] = float64(n) / k
	}
	chi2 := ChiSquaredStat(counts, exp)
	// Chi-squared with k-1 = 3 degrees of freedom (~16.27 at alpha = 0.001).
	if crit := ChiSquaredCritical(k - 1); chi2 > crit {
		t.Errorf("Dirichlet argmax not uniform: chi2 = %.2f > %.2f, counts = %v", chi2, crit, counts)
	}
}

// TestInvGammaGoF checks InvGamma(3, b) against its closed-form CDF: with
// integer shape k the underlying Gamma is Erlang, so
// P(X <= x) = P(G >= 1/x) = e^(-b/x) * sum_{i<k} (b/x)^i / i!.
func TestInvGammaGoF(t *testing.T) {
	const n = 6000
	const b = 2.5
	rng := New(13)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.InvGamma(3, b)
		if xs[i] <= 0 {
			t.Fatalf("non-positive InvGamma draw %v", xs[i])
		}
	}
	checkKS(t, "InvGamma(3, 2.5)", xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		g := b / x
		return math.Exp(-g) * (1 + g + g*g/2)
	})
}

// TestInvGaussianGoF checks the Wald sampler against the closed-form
// inverse Gaussian CDF
// F(x) = Phi(sqrt(l/x)(x/mu - 1)) + e^(2l/mu) Phi(-sqrt(l/x)(x/mu + 1)).
func TestInvGaussianGoF(t *testing.T) {
	const n = 6000
	const mu, lambda = 1.5, 2.0
	rng := New(14)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.InvGaussian(mu, lambda)
		if xs[i] <= 0 {
			t.Fatalf("non-positive InvGaussian draw %v", xs[i])
		}
	}
	checkKS(t, "InvGaussian(1.5, 2)", xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		s := math.Sqrt(lambda / x)
		return stdNormCDF(s*(x/mu-1)) + math.Exp(2*lambda/mu)*stdNormCDF(-s*(x/mu+1))
	})
}

// TestMVNormalWhitenedGoF checks the multivariate normal by whitening:
// solving L z = x - mu against the Cholesky factor of the covariance must
// recover iid standard normals with vanishing cross-correlation.
func TestMVNormalWhitenedGoF(t *testing.T) {
	const n = 4000
	rng := New(15)
	mu := linalg.Vec{1, -2}
	cov := linalg.NewMat(2, 2)
	cov.Set(0, 0, 2)
	cov.Set(0, 1, 0.6)
	cov.Set(1, 0, 0.6)
	cov.Set(1, 1, 1)
	l, err := linalg.Cholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	z0 := make([]float64, n)
	z1 := make([]float64, n)
	for i := 0; i < n; i++ {
		x, err := rng.MVNormal(mu, cov)
		if err != nil {
			t.Fatal(err)
		}
		// Forward substitution: L z = x - mu.
		z0[i] = (x[0] - mu[0]) / l.At(0, 0)
		z1[i] = (x[1] - mu[1] - l.At(1, 0)*z0[i]) / l.At(1, 1)
	}
	checkKS(t, "whitened MVN component 0", z0, stdNormCDF)
	checkKS(t, "whitened MVN component 1", z1, stdNormCDF)
	var dot float64
	for i := range z0 {
		dot += z0[i] * z1[i]
	}
	if r := dot / float64(n); math.Abs(r) > 0.06 {
		t.Errorf("whitened components correlated: r = %.4f", r)
	}
}
