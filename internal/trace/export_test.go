package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// chromeDoc mirrors the trace-event JSON container for validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidAndComplete(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var x, i, m int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("span %q has negative time: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
		case "i":
			i++
		case "M":
			m++
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
		pids[ev.Pid] = true
	}
	if x != 5 || i != 1 {
		t.Errorf("spans=%d events=%d, want 5 and 1", x, i)
	}
	if len(pids) != 2 {
		t.Errorf("distinct pids = %d, want 2 (one per cell)", len(pids))
	}
	if m == 0 {
		t.Error("no metadata records (process/thread names)")
	}
	// Microsecond conversion: the 2.5 s load phase must appear as 2.5e6.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "load" && ev.Cat == CatPhase {
			found = true
			if ev.Dur != 2.5e6 {
				t.Errorf("load dur = %v µs, want 2.5e6", ev.Dur)
			}
			if ev.Tid != 0 {
				t.Errorf("cluster-wide span on tid %d, want 0", ev.Tid)
			}
			if ev.Args["comm_sec"] != 0.5 {
				t.Errorf("load args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Error("load phase span missing from export")
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical recordings exported differently")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 5 spans + 1 event
	if len(lines) != 7 {
		t.Fatalf("lines = %d, want 7:\n%s", len(lines), buf.String())
	}
	if lines[0] != "type,cell,cat,name,machine,start_sec,dur_sec,args" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "span,figX/RowA/colA,phase,load,-1,0,2.5,") {
		t.Errorf("first span row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[6], "event,figX/RowA/colA,fault,crash,1,1,0") {
		t.Errorf("event row = %q", lines[6])
	}
}

func TestTopPhasesMergesAndSorts(t *testing.T) {
	r := NewRecorder()
	r.BeginCell("c")
	r.AddSpan("big", CatPhase, -1, 0, 5, A("comm_sec", 1), A("tasks", 2))
	r.AddSpan("big", CatPhase, -1, 5, 5, A("comm_sec", 1), A("tasks", 2))
	r.AddSpan("small", CatPhase, -1, 10, 1)
	r.AddSpan("launch", CatOverhead, -1, 11, 3)
	r.AddSpan("ignored-task", CatTask, 0, 0, 99)
	format := func(sec float64) string { return fmt.Sprintf("%.0fs", sec) }
	lines := TopPhases(r, "c", 2, format)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "big") || !strings.Contains(lines[0], "10s") ||
		!strings.Contains(lines[0], "comm 2s") || !strings.Contains(lines[0], "tasks 4") {
		t.Errorf("merged line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "launch") {
		t.Errorf("second line should be the 3s overhead, got %q", lines[1])
	}
}
