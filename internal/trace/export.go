package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mlbench/internal/fsutil"
)

// This file renders a Recorder in three forms: Chrome trace-event JSON
// (the chrome://tracing / Perfetto interchange format), CSV, and the
// per-cell text summary behind the mlbench -trace flag. All three are
// deterministic functions of the recorded data: cells map to pids in
// first-appearance order, spans and events export in recording order, and
// floats render with strconv's minimal form — so byte-identity of two
// exports is exactly byte-identity of two recordings.

// chromeEvent is one entry of the Chrome trace-event array. Field order
// is fixed by the struct; Args marshals with sorted keys (encoding/json
// sorts map keys), keeping the output deterministic.
type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat,omitempty"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  *float64           `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	S    string             `json:"s,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
}

// chromeMeta is a metadata record (process/thread naming).
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTid maps a simulated machine index to a Chrome thread id:
// cluster-wide records (machine -1) land on tid 0, machine i on tid i+1.
func chromeTid(machine int) int { return machine + 1 }

// argMap converts an Arg list to the exporter's map form.
func argMap(args []Arg) map[string]float64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]float64, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteChrome renders the recorder as Chrome trace-event JSON. Virtual
// seconds become trace microseconds, each benchmark cell becomes one
// process (named via process_name metadata), and each simulated machine
// becomes one thread of that process. Load the file in chrome://tracing
// or https://ui.perfetto.dev to walk the spans.
func WriteChrome(w io.Writer, r *Recorder) error {
	pids := map[string]int{}
	pidOf := func(cell string) int {
		if id, ok := pids[cell]; ok {
			return id
		}
		id := len(pids)
		pids[cell] = id
		return id
	}

	var records []any
	// Metadata first: name each cell's process and its machine threads.
	maxTid := map[string]int{}
	for _, s := range r.spans {
		if t := chromeTid(s.Machine); t > maxTid[s.Cell] {
			maxTid[s.Cell] = t
		}
	}
	for _, e := range r.events {
		if t := chromeTid(e.Machine); t > maxTid[e.Cell] {
			maxTid[e.Cell] = t
		}
	}
	for _, cell := range r.Cells() {
		pid := pidOf(cell)
		records = append(records, chromeMeta{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": cell},
		})
		records = append(records, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": "cluster"},
		})
		for tid := 1; tid <= maxTid[cell]; tid++ {
			records = append(records, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": fmt.Sprintf("machine %d", tid-1)},
			})
		}
	}
	for _, s := range r.spans {
		dur := s.Dur * 1e6
		records = append(records, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.Start * 1e6, Dur: &dur,
			Pid: pidOf(s.Cell), Tid: chromeTid(s.Machine),
			Args: argMap(s.Args),
		})
	}
	for _, e := range r.events {
		records = append(records, chromeEvent{
			Name: e.Name, Cat: e.Kind, Ph: "i",
			Ts:  e.At * 1e6,
			Pid: pidOf(e.Cell), Tid: chromeTid(e.Machine),
			S:    "p",
			Args: argMap(e.Args),
		})
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, rec := range records {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// createOutput creates the export file via fsutil (parent directories
// as needed), so an export to a not-yet-existing directory succeeds
// instead of failing with a bare "open: no such file or directory".
func createOutput(path string) (*os.File, error) {
	f, err := fsutil.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create output file: %w", err)
	}
	return f, nil
}

// WriteChromeFile writes WriteChrome output to path, creating parent
// directories as needed.
func WriteChromeFile(path string, r *Recorder) error {
	f, err := createOutput(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCSV renders every span and event as CSV rows with a fixed header.
// Args flatten to a "key=value|key=value" column.
func WriteCSV(w io.Writer, r *Recorder) error {
	if _, err := io.WriteString(w, "type,cell,cat,name,machine,start_sec,dur_sec,args\n"); err != nil {
		return err
	}
	for _, s := range r.spans {
		line := strings.Join([]string{
			"span", csvEscape(s.Cell), csvEscape(s.Cat), csvEscape(s.Name),
			fmt.Sprintf("%d", s.Machine), formatFloat(s.Start), formatFloat(s.Dur),
			csvEscape(joinArgs(s.Args)),
		}, ",") + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	for _, e := range r.events {
		line := strings.Join([]string{
			"event", csvEscape(e.Cell), csvEscape(e.Kind), csvEscape(e.Name),
			fmt.Sprintf("%d", e.Machine), formatFloat(e.At), "0",
			csvEscape(joinArgs(e.Args)),
		}, ",") + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVFile writes WriteCSV output to path, creating parent
// directories as needed.
func WriteCSVFile(path string, r *Recorder) error {
	f, err := createOutput(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func joinArgs(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Key + "=" + formatFloat(a.Val)
	}
	return strings.Join(parts, "|")
}

// TopPhases summarizes the n most expensive phase and overhead spans of
// one cell, merging spans with the same name — the text behind each
// cell's -trace notes. Each line carries the total virtual time, the
// communication share (from the phase span's comm_sec annotation), and
// the task count.
func TopPhases(r *Recorder, cell string, n int, format func(sec float64) string) []string {
	type agg struct {
		sec   float64
		comm  float64
		tasks int
	}
	totals := map[string]*agg{}
	for _, s := range r.spans {
		if s.Cell != cell || (s.Cat != CatPhase && s.Cat != CatOverhead) {
			continue
		}
		a := totals[s.Name]
		if a == nil {
			a = &agg{}
			totals[s.Name] = a
		}
		a.sec += s.Dur
		a.comm += s.Arg("comm_sec")
		a.tasks += int(s.Arg("tasks"))
	}
	type kv struct {
		name string
		agg  *agg
	}
	all := make([]kv, 0, len(totals))
	for name, a := range totals {
		all = append(all, kv{name, a})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].agg.sec != all[j].agg.sec {
			return all[i].agg.sec > all[j].agg.sec
		}
		return all[i].name < all[j].name
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, 0, len(all))
	for _, e := range all {
		out = append(out, fmt.Sprintf("phase %-28s %s  comm %s  tasks %d",
			e.name, format(e.agg.sec), format(e.agg.comm), e.agg.tasks))
	}
	return out
}
