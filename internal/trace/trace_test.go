package trace

import (
	"reflect"
	"testing"
)

func sampleRecorder() *Recorder {
	r := NewRecorder()
	r.BeginCell("figX/RowA/colA")
	r.SetEngine("spark")
	r.AddSpan("load", CatPhase, -1, 0, 2.5, A("comm_sec", 0.5), A("tasks", 4))
	r.AddSpan("load", CatTask, 0, 0, 2.0, A("compute_sec", 1.5))
	r.AddSpan("launch", CatOverhead, -1, 2.5, 0.5)
	r.AddSpan("recovery", CatFault, 1, 1.0, 0.75)
	r.AddEvent("crash", KindFault, 1, 1.0)
	r.Count("load", "bytes_sent", 100)
	r.Count("load", "bytes_sent", 50)
	r.Gauge("load", "supersteps", 7)
	r.BeginCell("figX/RowB/colA")
	r.SetEngine("giraph")
	r.AddSpan("superstep-0", CatPhase, -1, 0, 1.25)
	r.Count("superstep-0", "messages", 12)
	return r
}

func TestRecorderScoping(t *testing.T) {
	r := sampleRecorder()
	if got := r.Cells(); !reflect.DeepEqual(got, []string{"figX/RowA/colA", "figX/RowB/colA"}) {
		t.Fatalf("Cells() = %v", got)
	}
	if n := len(r.CellSpans("figX/RowA/colA")); n != 4 {
		t.Errorf("cell A spans = %d, want 4", n)
	}
	if n := len(r.CellSpans("figX/RowB/colA")); n != 1 {
		t.Errorf("cell B spans = %d, want 1", n)
	}
	if n := len(r.CellEvents("figX/RowA/colA")); n != 1 {
		t.Errorf("cell A events = %d, want 1", n)
	}
	// BeginCell resets the engine label: cell B's counter is giraph's.
	if v := r.Metrics().Counter(Key{Engine: "giraph", Cell: "figX/RowB/colA", Phase: "superstep-0", Name: "messages"}); v != 12 {
		t.Errorf("giraph messages = %v, want 12", v)
	}
	if v := r.Metrics().Counter(Key{Engine: "spark", Cell: "figX/RowA/colA", Phase: "load", Name: "bytes_sent"}); v != 150 {
		t.Errorf("spark bytes_sent = %v, want 150 (counters accumulate)", v)
	}
}

func TestClockSumExcludesTaskAndFaultSpans(t *testing.T) {
	r := sampleRecorder()
	// phase 2.5 + overhead 0.5; the task and fault spans overlap and are
	// excluded from the clock identity.
	if got := r.ClockSum("figX/RowA/colA"); got != 3.0 {
		t.Errorf("ClockSum = %v, want 3.0", got)
	}
	if got := r.ClockSum("figX/RowB/colA"); got != 1.25 {
		t.Errorf("ClockSum = %v, want 1.25", got)
	}
}

func TestSpanArgLookup(t *testing.T) {
	s := Span{Args: []Arg{A("x", 1.5), A("y", -2)}}
	if s.Arg("x") != 1.5 || s.Arg("y") != -2 || s.Arg("missing") != 0 {
		t.Errorf("Arg lookup wrong: %v %v %v", s.Arg("x"), s.Arg("y"), s.Arg("missing"))
	}
	if (Span{Start: 1, Dur: 2}).End() != 3 {
		t.Error("End() wrong")
	}
}

func TestMetricsSnapshotDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Add(Key{Engine: "b", Cell: "c1", Phase: "p", Name: "n"}, 1)
	m.Add(Key{Engine: "a", Cell: "c1", Phase: "p", Name: "n"}, 2)
	m.Set(Key{Engine: "a", Cell: "c0", Phase: "p", Name: "g"}, 9)
	s1 := m.Snapshot()
	s2 := m.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("Snapshot not deterministic")
	}
	// Counters sort before gauges; within counters, cell then engine.
	if s1[0].Engine != "a" || s1[1].Engine != "b" || !s1[2].Gauge {
		t.Errorf("snapshot order wrong: %+v", s1)
	}
}

func TestMetricsTotals(t *testing.T) {
	m := NewMetrics()
	m.Add(Key{Engine: "a", Cell: "c1", Phase: "p1", Name: "bytes"}, 10)
	m.Add(Key{Engine: "a", Cell: "c1", Phase: "p2", Name: "bytes"}, 5)
	m.Add(Key{Engine: "b", Cell: "c2", Phase: "p1", Name: "bytes"}, 2)
	m.Add(Key{Engine: "b", Cell: "c2", Phase: "p1", Name: "rows"}, 99)
	if v := m.Total("bytes"); v != 17 {
		t.Errorf("Total(bytes) = %v, want 17", v)
	}
	if v := m.CellTotal("c1", "bytes"); v != 15 {
		t.Errorf("CellTotal(c1, bytes) = %v, want 15", v)
	}
	if v := m.CellTotal("c1", "rows"); v != 0 {
		t.Errorf("CellTotal(c1, rows) = %v, want 0", v)
	}
}
