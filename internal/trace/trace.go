// Package trace is the simulator's observability layer: a structured
// span/event subsystem on the virtual clock, plus a metrics registry of
// counters and gauges keyed by engine, benchmark cell, and phase.
//
// The paper explains every headline number — the Table 4-8 cells, the
// "Fail" entries, Hadoop's per-iteration overhead — by appeal to *where
// time goes*: shuffle versus compute versus barrier wait. A Recorder
// captures exactly that attribution for a simulated run: every
// sim.RunPhase emits a phase span and per-machine task spans, every
// framework launch overhead emits an overhead span, and the
// fault-injection path (internal/faults via internal/sim) emits crash
// events plus lost-work and recovery spans. Engines contribute typed
// events and counters (bytes shuffled, messages sent) through the
// sim.Meter, which buffers them per task and replays them in global task
// order at the phase barrier — the same discipline as network sends — so
// a recorded trace is byte-identical at any host worker count.
//
// Exporters render a Recorder as Chrome trace-event JSON (loadable in
// chrome://tracing or Perfetto), as CSV, and as the per-cell text summary
// behind the mlbench -trace flag.
//
// # Span categories
//
// Spans carry a category that fixes their accounting role:
//
//   - "phase":    one sim.RunPhase barrier; cluster-wide (Machine == -1).
//   - "overhead": one named Cluster.AdvanceNamed charge (job launches,
//     superstep launch latency, fault detection).
//   - "task":     one machine's busy interval inside a phase.
//   - "fault":    lost-work and recovery intervals around an observed
//     crash. These OVERLAP phase/overhead spans and are excluded from
//     the clock identity below.
//
// The clock identity: for any cell, the durations of its "phase" and
// "overhead" spans sum to the cluster's final virtual clock. "task" and
// "fault" spans are attribution detail inside that envelope.
package trace

// Arg is one numeric annotation on a span or event.
type Arg struct {
	Key string
	Val float64
}

// A is shorthand for constructing an Arg.
func A(key string, val float64) Arg { return Arg{Key: key, Val: val} }

// Span is one closed interval of virtual time.
type Span struct {
	Cell    string  // benchmark cell scope, e.g. "fig1a/SimSQL/10d-5m"
	Name    string  // phase or overhead name
	Cat     string  // "phase", "overhead", "task", "fault"
	Machine int     // simulated machine index; -1 = cluster-wide
	Start   float64 // virtual seconds
	Dur     float64 // virtual seconds
	Args    []Arg
}

// End returns the span's closing virtual time.
func (s Span) End() float64 { return s.Start + s.Dur }

// Arg returns the named annotation (0 when absent).
func (s Span) Arg(key string) float64 {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return 0
}

// Event is one instant on the virtual clock.
type Event struct {
	Cell    string
	Name    string // e.g. "crash", "straggle", "broadcast"
	Kind    string // event type: "fault", "comm", ...
	Machine int    // -1 = cluster-wide
	At      float64
	Args    []Arg
}

// Recorder accumulates the spans, events, and metrics of one or more
// benchmark cells. All recording happens on the host goroutine that owns
// the cluster — at phase barriers, in deterministic order — so a Recorder
// needs no locking and two runs with equal inputs produce byte-identical
// exports regardless of host parallelism. Tasks running concurrently on
// worker goroutines must never touch the Recorder directly; they emit
// through the sim.Meter, which buffers until the barrier.
type Recorder struct {
	cell    string
	engine  string
	spans   []Span
	events  []Event
	metrics *Metrics
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{metrics: NewMetrics()}
}

// BeginCell opens a new cell scope: subsequent spans, events, and metric
// samples are attributed to it. The engine label resets with the cell
// (each benchmark cell runs one engine).
func (r *Recorder) BeginCell(cell string) {
	r.cell = cell
	r.engine = ""
}

// Cell returns the current cell scope.
func (r *Recorder) Cell() string { return r.cell }

// SetEngine tags subsequent metric samples with the running platform
// engine ("spark", "simsql", "graphlab", "giraph"). Engines call this at
// construction through sim.Cluster.SetEngineLabel.
func (r *Recorder) SetEngine(name string) { r.engine = name }

// Engine returns the current engine label.
func (r *Recorder) Engine() string { return r.engine }

// AddSpan records one closed interval in the current cell scope.
func (r *Recorder) AddSpan(name, cat string, machine int, start, dur float64, args ...Arg) {
	r.spans = append(r.spans, Span{
		Cell: r.cell, Name: name, Cat: cat, Machine: machine,
		Start: start, Dur: dur, Args: args,
	})
}

// AddEvent records one instant in the current cell scope.
func (r *Recorder) AddEvent(name, kind string, machine int, at float64, args ...Arg) {
	r.events = append(r.events, Event{
		Cell: r.cell, Name: name, Kind: kind, Machine: machine,
		At: at, Args: args,
	})
}

// Count adds v to the counter keyed by the current engine and cell, the
// given phase, and name.
func (r *Recorder) Count(phase, name string, v float64) {
	r.metrics.Add(Key{Engine: r.engine, Cell: r.cell, Phase: phase, Name: name}, v)
}

// Gauge sets the gauge keyed by the current engine and cell, the given
// phase, and name.
func (r *Recorder) Gauge(phase, name string, v float64) {
	r.metrics.Set(Key{Engine: r.engine, Cell: r.cell, Phase: phase, Name: name}, v)
}

// Metrics returns the recorder's registry.
func (r *Recorder) Metrics() *Metrics { return r.metrics }

// Spans returns every recorded span, in recording order.
func (r *Recorder) Spans() []Span { return r.spans }

// Events returns every recorded event, in recording order.
func (r *Recorder) Events() []Event { return r.events }

// CellSpans returns the spans of one cell, in recording order.
func (r *Recorder) CellSpans(cell string) []Span {
	var out []Span
	for _, s := range r.spans {
		if s.Cell == cell {
			out = append(out, s)
		}
	}
	return out
}

// CellEvents returns the events of one cell, in recording order.
func (r *Recorder) CellEvents(cell string) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Cell == cell {
			out = append(out, e)
		}
	}
	return out
}

// Cells returns the distinct cell scopes in first-appearance order.
func (r *Recorder) Cells() []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, s := range r.spans {
		add(s.Cell)
	}
	for _, e := range r.events {
		add(e.Cell)
	}
	return out
}

// ClockSum returns the sum of a cell's "phase" and "overhead" span
// durations — by the package's clock identity, the cell's final virtual
// clock. Tests use it to pin the trace to the benchmark tables.
func (r *Recorder) ClockSum(cell string) float64 {
	var total float64
	for _, s := range r.spans {
		if s.Cell != cell {
			continue
		}
		if s.Cat == CatPhase || s.Cat == CatOverhead {
			total += s.Dur
		}
	}
	return total
}

// Span categories (see the package comment for the accounting roles).
const (
	CatPhase    = "phase"
	CatOverhead = "overhead"
	CatTask     = "task"
	CatFault    = "fault"
)

// Event kinds.
const (
	KindFault = "fault"
	KindComm  = "comm"
)
