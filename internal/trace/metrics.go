package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Key identifies one metric series: the platform engine, the benchmark
// cell, the phase that charged it, and the metric name.
type Key struct {
	Engine string
	Cell   string
	Phase  string
	Name   string
}

// Sample is one exported metric value.
type Sample struct {
	Key
	Val   float64
	Gauge bool
}

// Metrics is a registry of counters (accumulated) and gauges (last value
// wins). Like the Recorder it is only ever touched from the host
// goroutine at phase barriers, so it needs no locking and iteration order
// is made deterministic by sorting on export.
type Metrics struct {
	counters map[Key]float64
	gauges   map[Key]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[Key]float64{}, gauges: map[Key]float64{}}
}

// Add accumulates v into the counter at k.
func (m *Metrics) Add(k Key, v float64) { m.counters[k] += v }

// Set records v as the gauge at k.
func (m *Metrics) Set(k Key, v float64) { m.gauges[k] = v }

// Counter returns the counter at k (0 when absent).
func (m *Metrics) Counter(k Key) float64 { return m.counters[k] }

// Total sums every counter with the given metric name across engines,
// cells, and phases.
func (m *Metrics) Total(name string) float64 {
	var s float64
	for k, v := range m.counters {
		if k.Name == name {
			s += v
		}
	}
	return s
}

// CellTotal sums every counter with the given metric name within one cell.
func (m *Metrics) CellTotal(cell, name string) float64 {
	var s float64
	for k, v := range m.counters {
		if k.Cell == cell && k.Name == name {
			s += v
		}
	}
	return s
}

// Snapshot returns every sample — counters first, then gauges — sorted by
// (cell, engine, phase, name) so exports are deterministic.
func (m *Metrics) Snapshot() []Sample {
	out := make([]Sample, 0, len(m.counters)+len(m.gauges))
	for k, v := range m.counters {
		out = append(out, Sample{Key: k, Val: v})
	}
	for k, v := range m.gauges {
		out = append(out, Sample{Key: k, Val: v, Gauge: true})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Gauge != b.Gauge {
			return !a.Gauge
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Name < b.Name
	})
	return out
}

// Render prints the registry as an aligned text table, one sample per
// line, for the mlbench -metrics flag.
func (m *Metrics) Render() string {
	samples := m.Snapshot()
	var b strings.Builder
	for _, s := range samples {
		kind := "counter"
		if s.Gauge {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "%-7s %-44s %-10s %-28s %s\n",
			kind, s.Cell, s.Engine, s.Phase+"/"+s.Name, formatFloat(s.Val))
	}
	return b.String()
}

// WriteCSV writes the registry as CSV with a fixed header.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "kind,cell,engine,phase,name,value\n"); err != nil {
		return err
	}
	for _, s := range m.Snapshot() {
		kind := "counter"
		if s.Gauge {
			kind = "gauge"
		}
		line := strings.Join([]string{
			kind, csvEscape(s.Cell), csvEscape(s.Engine), csvEscape(s.Phase),
			csvEscape(s.Name), formatFloat(s.Val),
		}, ",") + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float minimally and deterministically.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// csvEscape quotes a field when it contains a delimiter or quote.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
