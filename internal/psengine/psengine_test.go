package psengine

import (
	"math"
	"strconv"
	"testing"

	"mlbench/internal/faults"
	"mlbench/internal/sim"
	"mlbench/internal/trace"
)

func testCluster(machines, hostWorkers int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.HostWorkers = hostWorkers
	return sim.New(cfg)
}

// spinCycles runs n sum cycles of a tiny dense-model workload: every
// worker contributes a delta that mixes its RNG stream and the model
// version it computed against, the barrier folds the deltas in machine
// order, and the driver applies the fold. Returns the final model.
func spinCycles(t *testing.T, cl *sim.Cluster, e *Engine, dim, n int) []float64 {
	t.Helper()
	model := make([]float64, dim)
	snaps := [][]float64{append([]float64(nil), model...)}
	machines := cl.NumMachines()
	if err := e.AllocModel(int64(8 * dim)); err != nil {
		t.Fatal(err)
	}
	locals := make([][]float64, machines)
	for c := 0; c < n; c++ {
		gathered := make([]float64, dim)
		err := e.RunCycle(Cycle{
			Name:      "test-cycle",
			PullBytes: float64(8 * dim),
			PushBytes: float64(8 * dim),
			Compute: func(w, version int, m *sim.Meter) error {
				base := snaps[version]
				local := make([]float64, dim)
				for i := range local {
					local[i] = base[i]/float64(machines) + m.RNG().Float64() + float64(w)
				}
				m.ChargeBulk(float64(dim))
				locals[w] = local
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				FoldDense(gathered, locals[w])
				return nil
			},
			Apply: func(m *sim.Meter) error {
				FoldDense(model, gathered)
				snaps = append(snaps, append([]float64(nil), model...))
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return model
}

func TestLagSchedule(t *testing.T) {
	for _, s := range []int{0, 1, 3} {
		cl := testCluster(4, 1)
		e := New(cl, Config{Staleness: s})
		for cycle := 0; cycle < 8; cycle++ {
			for w := 0; w < 4; w++ {
				lag := e.lag(w)
				if lag < 0 || lag > s || lag > cycle {
					t.Fatalf("s=%d cycle=%d worker=%d: lag %d out of [0, min(s, cycle)]", s, cycle, w, lag)
				}
				if s == 0 && lag != 0 {
					t.Fatalf("s=0 produced lag %d", lag)
				}
				if v := e.Version(w); v != cycle-lag {
					t.Fatalf("Version = %d, want %d", v, cycle-lag)
				}
			}
			e.cycle++
		}
	}
}

func TestLagSweepsAllValues(t *testing.T) {
	// Past burn-in, every worker must visit every admissible lag — the
	// round-robin is the adversarial SSP schedule, not a fixed offset.
	const s = 3
	cl := testCluster(2, 1)
	e := New(cl, Config{Staleness: s})
	seen := make(map[int]bool)
	e.cycle = s // past burn-in: clamp inactive
	for c := 0; c < s+1; c++ {
		seen[e.lag(0)] = true
		e.cycle++
	}
	for l := 0; l <= s; l++ {
		if !seen[l] {
			t.Errorf("worker 0 never saw lag %d (saw %v)", l, seen)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cl := testCluster(5, 1)
	e := New(cl, Config{})
	if e.Shards() != 5 || e.Staleness() != 0 {
		t.Errorf("defaults: shards=%d staleness=%d, want 5, 0", e.Shards(), e.Staleness())
	}
	if e2 := New(cl, Config{Shards: 99, Staleness: -1}); e2.Shards() != 5 || e2.Staleness() != 0 {
		t.Errorf("clamps: shards=%d staleness=%d, want 5, 0", e2.Shards(), e2.Staleness())
	}
}

func TestHostWorkerIdentity(t *testing.T) {
	// The acceptance bar: virtual clock and model bytes identical at 1 vs
	// 8 host workers, at both synchronous and stale settings.
	for _, s := range []int{0, 2} {
		run := func(workers int) (float64, []float64) {
			cl := testCluster(5, workers)
			e := New(cl, Config{Staleness: s})
			model := spinCycles(t, cl, e, 32, 6)
			return cl.Now(), model
		}
		now1, m1 := run(1)
		now8, m8 := run(8)
		if now1 != now8 {
			t.Errorf("s=%d: clock differs across host workers: %v vs %v", s, now1, now8)
		}
		for i := range m1 {
			if math.Float64bits(m1[i]) != math.Float64bits(m8[i]) {
				t.Fatalf("s=%d: model[%d] differs across host workers: %v vs %v", s, i, m1[i], m8[i])
			}
		}
	}
}

func TestAllocModelAccounting(t *testing.T) {
	// With one shard per machine, every machine holds the full cache plus
	// one shard primary plus one standby: M*bytes + 2*bytes total.
	const machines, bytes = 4, 8000
	cl := testCluster(machines, 1)
	e := New(cl, Config{})
	if err := e.AllocModel(bytes); err != nil {
		t.Fatal(err)
	}
	want := int64(machines*bytes + 2*bytes)
	if got := cl.TotalMemUsed(); got != want {
		t.Errorf("model memory = %d, want %d", got, want)
	}
}

func TestCommCounters(t *testing.T) {
	const machines, cycles, dim = 3, 4, 16
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Tracer = trace.NewRecorder()
	cfg.Tracer.BeginCell("test")
	cl := sim.New(cfg)
	e := New(cl, Config{Staleness: 1})
	spinCycles(t, cl, e, dim, cycles)

	met := cfg.Tracer.Metrics()
	wire := float64(8 * dim)
	if got, want := met.Total("push_bytes"), wire*machines*cycles; got != want {
		t.Errorf("push_bytes = %v, want %v", got, want)
	}
	// Staleness 1 amortizes the pull to half the model per cycle.
	if got, want := met.Total("pull_bytes"), wire/2*machines*cycles; got != want {
		t.Errorf("pull_bytes = %v, want %v", got, want)
	}
	var lags float64
	for l := 0; l <= 1; l++ {
		lags += met.Total("stale_lag_" + strconv.Itoa(l))
	}
	if lags != machines*cycles {
		t.Errorf("staleness histogram covers %v observations, want %v", lags, machines*cycles)
	}
	if met.Total("stale_lag_0") == 0 || met.Total("stale_lag_1") == 0 {
		t.Error("round-robin schedule should populate both lag buckets")
	}
}

func TestStaleCyclesCheaperThanSync(t *testing.T) {
	// The headline claim of the architecture: relaxing the staleness bound
	// removes the per-cycle synchronization round trip.
	run := func(s int) float64 {
		cl := testCluster(4, 1)
		e := New(cl, Config{Staleness: s})
		spinCycles(t, cl, e, 32, 8)
		return cl.Now()
	}
	sync, async := run(0), run(2)
	if async >= sync {
		t.Errorf("stale cycles not cheaper: s=2 took %v, s=0 took %v", async, sync)
	}
}

func TestCrashRecoveryCharges(t *testing.T) {
	// A mid-run crash must charge more than bare detection: shard
	// re-replication from the standby, the replacement worker's cache
	// re-pull, and the lost in-flight work.
	probe := testCluster(3, 1)
	spinCycles(t, probe, New(probe, Config{}), 64, 6)
	cycleSec := probe.Now() / 6

	cfg := sim.DefaultConfig(3)
	cfg.Scale = 10
	cfg.Faults = faults.NewSchedule(faults.CrashAt(1, 4.5*cycleSec))
	cl := sim.New(cfg)
	spinCycles(t, cl, New(cl, Config{}), 64, 6)
	log := cl.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	if rec := log[0].RecoverySec; rec <= cfg.Cost.FaultDetectSec {
		t.Errorf("recovery = %v, want more than detection (%v)", rec, cfg.Cost.FaultDetectSec)
	}
	if log[0].LostSec <= 0 {
		t.Error("mid-phase crash lost no in-flight work")
	}
}

func TestRecoveryNoGlobalRollback(t *testing.T) {
	// Parameter-server recovery is bounded by re-replication + re-pull +
	// the victim's own lost work — it must never approach a BSP-style
	// full-cycle global rollback across all machines.
	probe := testCluster(3, 1)
	spinCycles(t, probe, New(probe, Config{}), 64, 6)
	cycleSec := probe.Now() / 6

	cfg := sim.DefaultConfig(3)
	cfg.Scale = 10
	cfg.Faults = faults.NewSchedule(faults.CrashAt(1, 4.5*cycleSec))
	cl := sim.New(cfg)
	spinCycles(t, cl, New(cl, Config{}), 64, 6)
	log := cl.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	budget := cfg.Cost.FaultDetectSec + log[0].LostSec + 1 // +1s wire slack
	if rec := log[0].RecoverySec; rec > budget {
		t.Errorf("recovery %v exceeds hot-standby budget %v", rec, budget)
	}
}

func TestRunCycleRequiresCompute(t *testing.T) {
	cl := testCluster(2, 1)
	e := New(cl, Config{})
	if err := e.RunCycle(Cycle{Name: "empty"}); err == nil {
		t.Fatal("expected error for cycle without Compute")
	}
}

func TestFoldDense(t *testing.T) {
	dst := []float64{1, 2, 3}
	FoldDense(dst, []float64{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Errorf("FoldDense = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	FoldDense(dst, []float64{1})
}
