// Package psengine simulates the asynchronous parameter-server paradigm —
// the architecture the field converged on one platform generation after
// the paper's four systems. The model lives range-partitioned across N
// server shards; every machine is also a worker that runs
// pull -> compute -> push cycles against a locally cached copy of the
// model that may be up to s cycles stale (the stale-synchronous-parallel
// bound of LightLDA-style systems, see PAPERS.md: "LightLDA: Big Topic
// Models on Modest Compute Clusters"). With s=0 every cycle waits for
// the freshest model and the engine degenerates to BSP, which is what
// lets the cross-engine equivalence battery certify its chains against
// Giraph's; with s>0 the chains drift in a bounded, certifiable way
// (PAPERS.md: DG-LMC's analysis of distributed MCMC under bounded
// asynchrony).
//
// Everything runs under sim.RunPhase: worker compute is real Go work on
// machine-local state, server-side folds happen in the barrier's
// deterministic machine-order merge, and the staleness schedule is a
// pure function of (worker, cycle) that consumes no RNG — so host-parallel
// execution stays byte-identical at any -workers setting.
package psengine

import (
	"fmt"
	"strconv"

	"mlbench/internal/sim"
)

// Config parameterizes the engine.
type Config struct {
	// Shards is the number of server shards the model is range-partitioned
	// across. Each shard has a primary host (machine shard mod M) and a hot
	// standby ((shard+1) mod M) that receives every aggregated delta, so a
	// crashed server machine can be re-replicated without a global rollback.
	// 0 means one shard per machine (fully sharded).
	Shards int
	// Staleness is the stale-synchronous-parallel bound s: a worker may
	// compute against a cached model up to s cycles old. 0 means every
	// worker sees the freshest model every cycle (BSP-equivalent).
	Staleness int
}

func (c Config) withDefaults(machines int) Config {
	if c.Shards <= 0 || c.Shards > machines {
		c.Shards = machines
	}
	if c.Staleness < 0 {
		c.Staleness = 0
	}
	return c
}

// Engine is one parameter-server deployment on a cluster. Machines are
// symmetric: every machine runs a worker, and server shards are spread
// across the same machines (co-located, as LightLDA deploys).
type Engine struct {
	cl         *sim.Cluster
	cfg        Config
	cycle      int   // completed pull -> compute -> push cycles
	modelBytes int64 // full model size registered via AllocModel
}

// New builds an engine on cl and registers its fault handler and trace
// label. Shards defaults to one per machine.
func New(cl *sim.Cluster, cfg Config) *Engine {
	e := &Engine{cl: cl, cfg: cfg.withDefaults(cl.NumMachines())}
	cl.SetEngineLabel("ps")
	cl.SetFaultHandler(e.recover)
	return e
}

// Shards returns the effective shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Staleness returns the effective staleness bound.
func (e *Engine) Staleness() int { return e.cfg.Staleness }

// Cycles returns the number of completed cycles.
func (e *Engine) Cycles() int { return e.cycle }

// shardHost returns the primary host machine of a shard.
func (e *Engine) shardHost(shard int) int { return shard % e.cl.NumMachines() }

// standbyHost returns the hot-standby machine of a shard.
func (e *Engine) standbyHost(shard int) int { return (shard + 1) % e.cl.NumMachines() }

// shardsOn returns how many shard primaries machine m hosts.
func (e *Engine) shardsOn(m int) int {
	n := 0
	for s := 0; s < e.cfg.Shards; s++ {
		if e.shardHost(s) == m {
			n++
		}
	}
	return n
}

// standbysOn returns how many shard standbys machine m hosts.
func (e *Engine) standbysOn(m int) int {
	n := 0
	for s := 0; s < e.cfg.Shards; s++ {
		if e.standbyHost(s) == m {
			n++
		}
	}
	return n
}

// lag returns worker w's cache staleness for the current cycle: a
// deterministic round-robin over [0, s] so that every worker sweeps every
// admissible lag (the adversarial schedule a real asynchronous system
// could produce under the SSP bound), phase-shifted by worker so the
// cluster is never uniformly stale. It is a pure function of (worker,
// cycle) and consumes no RNG, which keeps machine RNG streams identical
// to the BSP engine's. The clamp means no worker is ever staler than the
// initial model.
func (e *Engine) lag(worker int) int {
	l := (worker + e.cycle) % (e.cfg.Staleness + 1)
	if l > e.cycle {
		l = e.cycle
	}
	return l
}

// Version returns the model version worker w computes against this cycle:
// the state after cycles 0..Version-1 were fully applied (plus the
// current cycle's Setup when Version equals the cycle number).
func (e *Engine) Version(worker int) int { return e.cycle - e.lag(worker) }

// Load runs fn on every machine concurrently — partition scans, data
// allocation, and any other embarrassingly parallel setup.
func (e *Engine) Load(name string, fn func(machine int, m *sim.Meter) error) error {
	return e.cl.RunPhaseF(name, fn)
}

// Reduce runs a machine-parallel phase followed by a deterministic
// machine-order merge at the barrier — the shape of one-shot global
// aggregations like the Lasso Gram fold.
func (e *Engine) Reduce(name string, run, merge func(machine int, m *sim.Meter) error) error {
	return e.cl.RunPhaseFM(name, run, merge)
}

// AllocModel accounts the model's resident memory across the deployment:
// every worker holds a full cached copy, every shard primary holds its
// parameter range, and every hot standby holds a replica of that range.
func (e *Engine) AllocModel(bytes int64) error {
	e.modelBytes = bytes
	per := bytes / int64(e.cfg.Shards)
	return e.cl.RunPhaseF("ps-alloc-model", func(machine int, m *sim.Meter) error {
		total := bytes + per*int64(e.shardsOn(machine)+e.standbysOn(machine))
		return m.AllocModel(total, "ps model cache+shards")
	})
}

// Cycle describes one pull -> compute -> push round.
//
// Setup runs on the driver before workers start (e.g. the Lasso beta
// draw); Compute runs machine-parallel, receiving the model version the
// worker's cache holds; Fold merges worker state at the barrier in
// machine order (the server-side aggregation — deterministic, so the
// virtual clock and the chains are independent of host parallelism);
// Apply runs on the driver after the fold (the global parameter redraw).
type Cycle struct {
	Name string
	// PullBytes is the full model size a worker pulls to refresh its
	// cache. Under staleness s a cache is refreshed every s+1 cycles, so
	// the per-cycle wire cost is PullBytes/(s+1).
	PullBytes float64
	// PushBytes is the size of one worker's delta push per cycle. Each
	// aggregated shard delta is additionally replicated to the shard's hot
	// standby.
	PushBytes float64
	Setup     func(m *sim.Meter) error
	Compute   func(worker, version int, m *sim.Meter) error
	Fold      func(worker int, m *sim.Meter) error
	Apply     func(m *sim.Meter) error
}

// RunCycle executes one cycle and advances the engine's cycle counter.
func (e *Engine) RunCycle(c Cycle) error {
	if c.Compute == nil {
		return fmt.Errorf("psengine: cycle %q has no Compute", c.Name)
	}
	if c.Setup != nil {
		if err := e.cl.RunDriver(c.Name+"-setup", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			return c.Setup(m)
		}); err != nil {
			return err
		}
	}
	cost := e.cl.Config().Cost
	launch := cost.PSCycleAsyncSec
	if e.cfg.Staleness == 0 {
		// s=0 is a synchronous round: every worker blocks on the freshest
		// model, which costs a BSP-like coordination round trip.
		launch = cost.PSCycleSyncSec
	}
	e.cl.AdvanceNamed("ps-cycle-launch", launch)
	err := e.cl.RunPhaseFM(c.Name,
		func(w int, m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			lag := e.lag(w)
			e.chargeComm(c, w, lag, m)
			return c.Compute(w, e.cycle-lag, m)
		},
		func(w int, m *sim.Meter) error {
			if c.Fold == nil {
				return nil
			}
			return c.Fold(w, m)
		})
	if err != nil {
		return err
	}
	if c.Apply != nil {
		if err := e.cl.RunDriver(c.Name+"-apply", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			return c.Apply(m)
		}); err != nil {
			return err
		}
	}
	e.cycle++
	return nil
}

// chargeComm accounts machine w's wire and server-side costs for one
// cycle. Every machine plays two roles: as a worker it pushes its delta
// to every remote shard primary and (amortized) refreshes its cache; as
// a shard host it serves pulls to every other worker, folds the M
// incoming deltas into its range, and replicates the aggregated delta to
// the hot standby. All charges go through the Meter, so they are
// buffered and replayed deterministically at the barrier.
func (e *Engine) chargeComm(c Cycle, w, lag int, m *sim.Meter) {
	machines := e.cl.NumMachines()
	shards := float64(e.cfg.Shards)
	pullEff := c.PullBytes / float64(e.cfg.Staleness+1)

	// Worker role: range-partitioned delta push (local shard portions are
	// free — SendModel to self is a no-op).
	for s := 0; s < e.cfg.Shards; s++ {
		m.SendModel(e.shardHost(s), c.PushBytes/shards)
	}
	m.Count("push_bytes", c.PushBytes)
	m.Count("pull_bytes", pullEff)
	m.Count("stale_lag_"+strconv.Itoa(lag), 1)

	// Server role: serve cache refreshes, fold incoming deltas, replicate
	// to the standby.
	cost := e.cl.Config().Cost
	for s := 0; s < e.cfg.Shards; s++ {
		if e.shardHost(s) != w {
			continue
		}
		for dst := 0; dst < machines; dst++ {
			if dst != w {
				m.SendModel(dst, pullEff/shards)
			}
		}
		m.SendModel(e.standbyHost(s), c.PushBytes/shards)
		// The shard fold is a single-threaded dense accumulation over the
		// M worker deltas for this range.
		aggBytes := c.PushBytes / shards * float64(machines)
		m.ChargeSerialSec(aggBytes / cost.PSServerBytesPerSec)
	}
}

// FoldDense accumulates a dense delta slice into a server shard's
// parameter range: dst[i] += delta[i]. This is the server-side
// aggregation hot path the task implementations call from their Fold
// hooks (and the kernel the perfgate micro benchmarks).
func FoldDense(dst, delta []float64) {
	if len(dst) != len(delta) {
		panic(fmt.Sprintf("psengine: FoldDense length mismatch %d != %d", len(dst), len(delta)))
	}
	for i, v := range delta {
		dst[i] += v
	}
}
