package psengine

import (
	"mlbench/internal/sim"
)

// Fault recovery, the parameter-server way: the model survives a machine
// crash because every shard's aggregated state is continuously replicated
// to a hot standby, so there is no global rollback and no replay of past
// cycles. Recovery is three local repairs:
//
//  1. every shard whose primary died is re-replicated — the standby
//     promotes its copy and streams the range to the replacement machine
//     (one read + one write of the shard, so a fresh standby exists again);
//  2. the replacement worker re-pulls the full model into its cold cache;
//  3. the victim's in-flight delta is simply lost — asynchronous pushes
//     are not transactional — so the worker redoes the lost compute.
//
// Contrast with BSP (global checkpoint rollback), GraphLab (snapshot
// restore + replay) and MR/Spark (task retry / lineage recompute):
// recovery cost here is independent of how long the job has run.

// recover is the engine's sim.FaultHandler.
func (e *Engine) recover(f sim.FaultInfo) error {
	victim := f.Event.Machine
	cl := e.cl
	net := cl.Config().Net
	shardBytes := float64(e.modelBytes) / float64(e.cfg.Shards)

	if n := e.shardsOn(victim); n > 0 && e.modelBytes > 0 {
		// Promote the standby and stream each lost range twice: once onto
		// the replacement primary, once to establish a fresh standby.
		cl.AdvanceNamed("ps-shard-rereplicate",
			net.LatencySec+2*float64(n)*shardBytes/net.BytesPerSec)
	}
	if e.modelBytes > 0 {
		// The replacement worker's cache starts cold: one full pull.
		cl.AdvanceNamed("ps-worker-repull",
			net.LatencySec+float64(e.modelBytes)/net.BytesPerSec)
	}
	if f.LostSec > 0 {
		// In-flight deltas died with the worker; redo the lost compute.
		cl.AdvanceNamed("ps-redo-lost-work", f.LostSec)
	}
	return nil
}
