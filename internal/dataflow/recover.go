package dataflow

import (
	"mlbench/internal/sim"
)

// Fault recovery, the Spark way: an RDD partition lost with a machine is
// rebuilt from lineage. The context registers every RDD as it materializes
// (registration order == materialization order, so parents always recover
// before children) and installs a cluster fault handler that walks the
// registry when a crash is observed. Three cases per RDD:
//
//   - checkpointed: the partitions survive in replicated storage; the
//     replacement executor re-reads them (network + disk), no recompute.
//   - lineage-backed (cached or disk-persisted): the lost partitions
//     re-execute their compute function for real, which recurses through
//     every unmaterialized ancestor — recovery cost grows with lineage
//     depth since the last cache/checkpoint, exactly Spark's trade-off.
//   - shuffle output: the lost reduce tasks re-run at the recorded shuffle
//     cost, scaled by the lost partition fraction.

// recoverable is the type-erased registry view of a materialized RDD.
type recoverable interface {
	recoverLost(machine int) error
}

func (ctx *Context) register(r recoverable) {
	ctx.recov = append(ctx.recov, r)
}

// handleFault is the engine's sim.FaultHandler: the driver resubmits the
// failed stage, re-ships live broadcast variables to the replacement
// executor, and rebuilds lost partitions in materialization order.
func (ctx *Context) handleFault(f sim.FaultInfo) error {
	c := ctx.cluster
	c.AdvanceNamed("spark-resubmit", c.Config().Cost.SparkJobLaunch)
	if ctx.bcastBytes > 0 {
		c.AdvanceNamed("spark-reship-broadcast", float64(ctx.bcastBytes)/c.Config().Net.BytesPerSec)
	}
	for _, r := range ctx.recov {
		if err := r.recoverLost(f.Event.Machine); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint persists the RDD to replicated storage, Spark's
// RDD.checkpoint(): materialization pays a replicated disk write, and the
// RDD's lineage is truncated for recovery — a crash re-reads the surviving
// replica instead of recomputing ancestors.
func (r *RDD[T]) Checkpoint() *RDD[T] {
	r.storage = StorageDisk
	r.ckpt = true
	return r
}

// noteMaterialized records how long materialization took (the recovery
// cost basis for shuffle outputs) and registers the RDD for fault
// recovery, once.
func (r *RDD[T]) noteMaterialized(buildSec float64) {
	r.buildSec = buildSec
	if !r.registered {
		r.registered = true
		r.ctx.register(r)
	}
}

// recoverLost rebuilds this RDD's partitions that lived on the crashed
// machine. Simulated memory is retained across the crash (it stands for
// the state the replacement holds after recovery — see internal/sim's
// fault model), so only time is charged here, not allocations.
func (r *RDD[T]) recoverLost(machine int) error {
	if !r.haveMat {
		return nil
	}
	var lost []int
	for p := 0; p < r.parts; p++ {
		if r.ctx.machineFor(p) == machine {
			lost = append(lost, p)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	c := r.ctx.cluster
	cost := c.Config().Cost
	switch {
	case r.ckpt:
		return c.RunPhase("recover-read "+r.name, r.lostTasks(lost, func(p int, m *sim.Meter) error {
			b := float64(r.matBytes[p])
			m.ChargeSec(b/cost.DiskBytesPerSec + b/c.Config().Net.BytesPerSec)
			return nil
		}))
	case r.compute != nil:
		return c.RunPhase("recover-compute "+r.name, r.lostTasks(lost, func(p int, m *sim.Meter) error {
			data, err := r.compute(p, m)
			if err != nil {
				return err
			}
			r.mat[p] = data
			if r.storage == StorageDisk && r.matBytes != nil {
				m.ChargeSec(float64(r.matBytes[p]) / cost.DiskBytesPerSec)
			}
			return nil
		}))
	default:
		// Shuffle output with no compute function: charge the recorded
		// shuffle time for the lost reduce tasks.
		frac := float64(len(lost)) / float64(r.parts)
		sec := r.buildSec * frac
		return c.RunPhase("recover-shuffle "+r.name, r.lostTasks(lost[:1], func(p int, m *sim.Meter) error {
			m.ChargeSec(sec)
			return nil
		}))
	}
}

// lostTasks builds recovery tasks pinned to the (replaced) machines of the
// given partitions.
func (r *RDD[T]) lostTasks(ps []int, fn func(p int, m *sim.Meter) error) []sim.Task {
	tasks := make([]sim.Task, len(ps))
	for i, p := range ps {
		p := p
		tasks[i] = sim.Task{Machine: r.ctx.machineFor(p), Run: func(m *sim.Meter) error {
			m.SetProfile(r.ctx.profile)
			return fn(p, m)
		}}
	}
	return tasks
}
