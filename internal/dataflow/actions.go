package dataflow

import (
	"mlbench/internal/sim"
)

// prepare materializes upstream shuffles and, if the RDD is persisted,
// pins its partitions per the storage level.
func (r *RDD[T]) prepare() error {
	if err := r.ensureUpstream(); err != nil {
		return err
	}
	if r.storage != StorageNone && !r.haveMat {
		return r.materializeAll()
	}
	return nil
}

// runAction executes one job: a phase computing every partition and
// passing it to fn on its machine. Partition computation runs task-local
// (possibly host-parallel); fn runs in the Merge hook, sequentially in
// partition order, because actions fold results into driver-side state.
func (r *RDD[T]) runAction(name string, fn func(p int, m *sim.Meter, data []T) error) error {
	if err := r.prepare(); err != nil {
		return err
	}
	c := r.ctx.cluster
	c.AdvanceNamed("spark-job-launch", c.Config().Cost.SparkJobLaunch)
	datas := make([][]T, r.parts)
	tasks := r.partTasks(func(p int, m *sim.Meter) error {
		data, err := r.partition(p, m)
		if err != nil {
			return err
		}
		datas[p] = data
		return nil
	})
	for i := range tasks {
		p := i
		tasks[p].Merge = func(m *sim.Meter) error { return fn(p, m, datas[p]) }
	}
	return c.RunPhase(name+" "+r.name, tasks)
}

// Collect gathers every element to the driver. The driver transiently
// holds the full simulated payload, so collecting a data-proportional RDD
// can OOM the driver exactly as it would in Spark.
func Collect[T any](r *RDD[T]) ([]T, error) {
	var out []T
	var shipped int64
	err := r.runAction("collect", func(p int, m *sim.Meter, data []T) error {
		var bytes int64
		for _, t := range data {
			bytes += r.sizer(t)
		}
		shipBytes(m, r.scaled, 0, bytes)
		if r.scaled {
			bytes = int64(float64(bytes) * r.ctx.cluster.Scale())
		}
		shipped += bytes
		out = append(out, data...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Transient driver-side residence of the collected result.
	if err := r.ctx.cluster.Machine(0).Alloc(shipped, "collect result "+r.name); err != nil {
		return nil, err
	}
	r.ctx.cluster.Machine(0).Free(shipped)
	return out, nil
}

// Count returns the number of (real, in-memory) elements. Multiply by the
// cluster scale for the simulated cardinality.
func Count[T any](r *RDD[T]) (int, error) {
	total := 0
	err := r.runAction("count", func(p int, m *sim.Meter, data []T) error {
		total += len(data)
		return nil
	})
	return total, err
}

// Reduce folds all elements with f. Each partition reduces locally; the
// driver combines the per-partition results. The RDD must be non-empty.
func Reduce[T any](r *RDD[T], f func(m *sim.Meter, a, b T) T) (T, error) {
	var partials []T
	err := r.runAction("reduce", func(p int, m *sim.Meter, data []T) error {
		if len(data) == 0 {
			return nil
		}
		r.chargeTuples(m, len(data))
		acc := data[0]
		for _, t := range data[1:] {
			acc = f(m, acc, t)
		}
		shipBytes(m, false, 0, r.sizer(acc))
		partials = append(partials, acc)
		return nil
	})
	var zero T
	if err != nil {
		return zero, err
	}
	if len(partials) == 0 {
		panic("dataflow: Reduce of empty RDD")
	}
	var res T
	err = r.ctx.cluster.RunDriver("reduce-merge "+r.name, func(m *sim.Meter) error {
		m.SetProfile(r.ctx.profile)
		m.ChargeTuplesAbs(float64(len(partials)))
		res = partials[0]
		for _, t := range partials[1:] {
			res = f(m, res, t)
		}
		return nil
	})
	return res, err
}

// Aggregate folds all elements into a zero-initialized accumulator with
// seqOp per partition and merges the per-partition accumulators with
// combOp on the driver. zero is called once per partition so accumulators
// are not shared.
func Aggregate[T, U any](r *RDD[T], zero func() U, seqOp func(m *sim.Meter, acc U, t T) U, combOp func(m *sim.Meter, a, b U) U) (U, error) {
	var partials []U
	err := r.runAction("aggregate", func(p int, m *sim.Meter, data []T) error {
		r.chargeTuples(m, len(data))
		acc := zero()
		for _, t := range data {
			acc = seqOp(m, acc, t)
		}
		partials = append(partials, acc)
		return nil
	})
	var zeroU U
	if err != nil {
		return zeroU, err
	}
	res := zero()
	err = r.ctx.cluster.RunDriver("aggregate-merge "+r.name, func(m *sim.Meter) error {
		m.SetProfile(r.ctx.profile)
		for _, u := range partials {
			res = combOp(m, res, u)
		}
		return nil
	})
	return res, err
}

// Sum adds up a float64 RDD.
func Sum(r *RDD[float64]) (float64, error) {
	return Aggregate(r,
		func() float64 { return 0 },
		func(m *sim.Meter, acc, t float64) float64 { return acc + t },
		func(m *sim.Meter, a, b float64) float64 { return a + b },
	)
}

// CollectPairs gathers a pair RDD to the driver in deterministic
// (partition, insertion) order.
func CollectPairs[K comparable, V any](r *RDD[Pair[K, V]]) ([]Pair[K, V], error) {
	return Collect(r)
}

// CollectAsMap gathers a pair RDD into a driver-local map, as the paper's
// Spark codes do for the model (collectAsMap()). Later keys overwrite
// earlier ones, matching Spark.
func CollectAsMap[K comparable, V any](r *RDD[Pair[K, V]]) (map[K]V, error) {
	pairs, err := Collect(r)
	if err != nil {
		return nil, err
	}
	out := make(map[K]V, len(pairs))
	for _, p := range pairs {
		out[p.K] = p.V
	}
	return out, nil
}
