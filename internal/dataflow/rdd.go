// Package dataflow implements a Spark-like lazy dataflow engine on top of
// the simulated cluster: resilient distributed datasets (RDDs) with
// lineage, narrow transformations fused into single phases, hash-shuffled
// wide transformations, caching/persistence, and driver-side actions.
//
// The engine reproduces the Spark behaviours the paper's evaluation turns
// on: recomputation of uncached lineage on every action (the Gaussian
// imputation slowdown), per-record user-code overhead under a language
// Profile (Python vs Java), shuffle and driver-collect memory accounting
// (the word-based HMM self-join failure and the 100-machine LDA failures),
// and per-job scheduler launch latency.
package dataflow

import (
	"fmt"
	"hash/fnv"

	"mlbench/internal/randgen"
	"mlbench/internal/sim"
)

// Context owns RDDs for one driver program.
type Context struct {
	cluster *sim.Cluster
	profile sim.Profile
	// driverHeld tracks simulated bytes resident on the driver (machine 0)
	// from collects and broadcast variables.
	driverHeld int64
	// recov lists materialized RDDs in materialization order, for
	// lineage-based fault recovery (see recover.go).
	recov []recoverable
	// bcastBytes is the per-machine footprint of live broadcast variables,
	// re-shipped to a replacement executor after a crash.
	bcastBytes int64
}

// NewContext returns a driver context running user code under the given
// language profile (ProfilePython for PySpark, ProfileJava for Spark-Java).
// The context owns crash recovery for its cluster: lost partitions are
// rebuilt from lineage (recover.go).
func NewContext(c *sim.Cluster, profile sim.Profile) *Context {
	ctx := &Context{cluster: c, profile: profile}
	c.SetFaultHandler(ctx.handleFault)
	c.SetEngineLabel("spark")
	return ctx
}

// Cluster returns the underlying simulated cluster.
func (ctx *Context) Cluster() *sim.Cluster { return ctx.cluster }

// Profile returns the context's language profile.
func (ctx *Context) Profile() sim.Profile { return ctx.profile }

// HoldDriver charges a persistent driver-side allocation (a collected
// model, a broadcast variable's master copy). It fails with OOM when the
// driver machine's budget is exhausted.
func (ctx *Context) HoldDriver(bytes int64, what string) error {
	if err := ctx.cluster.Machine(0).Alloc(bytes, "driver: "+what); err != nil {
		return err
	}
	ctx.driverHeld += bytes
	return nil
}

// ReleaseDriver frees a previous HoldDriver allocation.
func (ctx *Context) ReleaseDriver(bytes int64) {
	ctx.cluster.Machine(0).Free(bytes)
	ctx.driverHeld -= bytes
}

// DriverHeld returns the driver-resident simulated bytes.
func (ctx *Context) DriverHeld() int64 { return ctx.driverHeld }

// Broadcast ships a read-only value of the given simulated size to every
// machine (task closures in Spark serialize captured state to each
// executor). Distribution is pipelined machine-to-machine (like Spark's
// torrent broadcast), so the transfer time is roughly one copy of the
// value per machine rather than fan-out from the driver. The per-machine
// copies are charged and stay resident until ReleaseBroadcast.
func (ctx *Context) Broadcast(bytes int64, what string) error {
	n := ctx.cluster.NumMachines()
	err := ctx.cluster.RunPhaseF("broadcast "+what, func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes)) // relay ring
			m.Count("broadcast_bytes", float64(bytes))
		}
		return m.AllocModel(bytes, "broadcast: "+what)
	})
	if err == nil {
		ctx.bcastBytes += bytes
	}
	return err
}

// ReleaseBroadcast frees the per-machine copies of a broadcast value.
func (ctx *Context) ReleaseBroadcast(bytes int64) {
	for i := 0; i < ctx.cluster.NumMachines(); i++ {
		ctx.cluster.Machine(i).Free(bytes)
	}
	ctx.bcastBytes -= bytes
}

// StorageLevel selects where a persisted RDD lives, mirroring Spark's
// MEMORY_ONLY vs DISK_ONLY levels (the paper reports "forcing RDDs to
// disk" as a tuning tactic).
type StorageLevel int

const (
	// StorageNone recomputes the RDD from lineage on every action.
	StorageNone StorageLevel = iota
	// StorageMemory pins computed partitions in executor memory.
	StorageMemory
	// StorageDisk spills computed partitions to local disk; re-reads pay
	// disk bandwidth instead of recomputation.
	StorageDisk
)

// RDD is a typed, partitioned, lazily evaluated dataset.
type RDD[T any] struct {
	ctx   *Context
	parts int
	// scaled marks data-proportional cardinality: costs for scaled RDDs
	// are multiplied by the cluster's scale factor. Model-sized RDDs
	// (e.g. one element per mixture component) are unscaled.
	scaled bool
	sizer  func(T) int64
	name   string

	// compute produces partition p by pulling parents within one task.
	// It is nil for materialized sources.
	compute func(p int, m *sim.Meter) ([]T, error)
	// parents are upstream RDDs whose shuffles must be materialized first.
	parents []rddBase

	// wide is non-nil for shuffle outputs: it runs the shuffle phases and
	// fills mat.
	wide func() error

	storage   StorageLevel
	mat       [][]T   // materialized (cached or shuffled) partitions
	matBytes  []int64 // simulated bytes charged per partition (memory level)
	haveMat   bool
	isSource  bool
	sourceGen func(p int, r *randgen.RNG, m *sim.Meter) []T

	// Fault-recovery state (see recover.go): ckpt marks a replicated
	// checkpoint that survives crashes; buildSec is what materialization
	// cost (the recovery basis for shuffle outputs); registered guards
	// one-time entry into the context's recovery registry.
	ckpt       bool
	buildSec   float64
	registered bool
}

// rddBase is the type-erased view used for lineage walks.
type rddBase interface {
	ensureUpstream() error
	base() *rddMeta
}

type rddMeta struct {
	parents []rddBase
	wide    func() error
	haveMat *bool
}

func (r *RDD[T]) base() *rddMeta {
	return &rddMeta{parents: r.parents, wide: r.wide, haveMat: &r.haveMat}
}

// ensureUpstream materializes, in dependency order, every unmaterialized
// wide or persisted RDD at or above r — the first action that computes a
// persisted ancestor pins it, as in Spark.
func (r *RDD[T]) ensureUpstream() error {
	for _, p := range r.parents {
		if err := p.ensureUpstream(); err != nil {
			return err
		}
	}
	if r.haveMat {
		return nil
	}
	if r.wide != nil {
		return r.wide()
	}
	if r.storage != StorageNone {
		return r.materializeAll()
	}
	return nil
}

// machineFor maps partition index to machine.
func (ctx *Context) machineFor(p int) int { return p % ctx.cluster.NumMachines() }

// NumPartitions returns the RDD's partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// SetName gives the RDD a debugging name used in phase traces.
func (r *RDD[T]) SetName(n string) *RDD[T] { r.name = n; return r }

// AsModel marks the RDD's cardinality as model-proportional: its tuple,
// byte and memory costs are not multiplied by the scale factor. Use it on
// shuffle outputs keyed by model components (cluster ids, states, topics).
func (r *RDD[T]) AsModel() *RDD[T] { r.scaled = false; return r }

// Persist sets the storage level. The first action that computes the RDD
// materializes it; later actions reuse the materialized partitions
// (memory) or re-read them from disk (disk).
func (r *RDD[T]) Persist(level StorageLevel) *RDD[T] { r.storage = level; return r }

// Cache is Persist(StorageMemory), as in Spark.
func (r *RDD[T]) Cache() *RDD[T] { return r.Persist(StorageMemory) }

// Unpersist drops materialized partitions and frees their simulated
// memory. The RDD recomputes from lineage afterwards (unless it is a
// shuffle output, which re-runs its shuffle).
func (r *RDD[T]) Unpersist() {
	if !r.haveMat {
		return
	}
	for p := range r.mat {
		if r.matBytes != nil && r.matBytes[p] > 0 {
			r.ctx.cluster.Machine(r.ctx.machineFor(p)).Free(r.matBytes[p])
		}
	}
	r.mat, r.matBytes, r.haveMat = nil, nil, false
}

// partBytes estimates the simulated bytes of a partition.
func (r *RDD[T]) partBytes(data []T) int64 {
	var b int64
	for _, t := range data {
		b += r.sizer(t)
	}
	if r.scaled {
		b = int64(float64(b) * r.ctx.cluster.Scale())
	}
	return b
}

// chargeTuples charges per-record handling for n records of this RDD.
func (r *RDD[T]) chargeTuples(m *sim.Meter, n int) {
	if r.scaled {
		m.ChargeTuples(n)
	} else {
		m.ChargeTuplesAbs(float64(n))
	}
}

// partition returns partition p, computing (and possibly persisting) it.
// Must be called inside a task running on the partition's machine, after
// ensureUpstream has materialized upstream shuffles.
func (r *RDD[T]) partition(p int, m *sim.Meter) ([]T, error) {
	if r.haveMat {
		if r.storage == StorageDisk && r.matBytes != nil {
			// Re-reading a disk-persisted partition pays disk bandwidth.
			m.ChargeSec(float64(r.matBytes[p]) / r.ctx.cluster.Config().Cost.DiskBytesPerSec)
		}
		return r.mat[p], nil
	}
	if r.compute == nil {
		return nil, fmt.Errorf("dataflow: rdd %q partition %d has no compute and no materialization", r.name, p)
	}
	data, err := r.compute(p, m)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// materializeAll runs one phase computing every partition of r and pinning
// it per its storage level. Used for Persist and by shuffles.
func (r *RDD[T]) materializeAll() error {
	if r.haveMat {
		return nil
	}
	for _, p := range r.parents {
		if err := p.ensureUpstream(); err != nil {
			return err
		}
	}
	mat := make([][]T, r.parts)
	bytes := make([]int64, r.parts)
	c := r.ctx.cluster
	t0 := c.Now()
	c.AdvanceNamed("spark-job-launch", c.Config().Cost.SparkJobLaunch)
	err := c.RunPhase("materialize "+r.name, r.partTasks(func(p int, m *sim.Meter) error {
		data, err := r.partition(p, m)
		if err != nil {
			return err
		}
		mat[p] = data
		b := r.partBytes(data)
		bytes[p] = b
		switch r.storage {
		case StorageMemory:
			if err := m.Machine().Alloc(b, "rdd cache "+r.name); err != nil {
				return err
			}
		case StorageDisk:
			m.ChargeSec(float64(b) / c.Config().Cost.DiskBytesPerSec)
			if r.ckpt {
				// Checkpoints replicate: one more local write plus a copy
				// shipped to a peer, as HDFS-backed checkpoint files do.
				m.ChargeSec(float64(b) / c.Config().Cost.DiskBytesPerSec)
				m.SendModel((r.ctx.machineFor(p)+1)%c.NumMachines(), float64(b))
			}
		}
		return nil
	}))
	if err != nil {
		return err
	}
	r.mat, r.matBytes, r.haveMat = mat, bytes, true
	r.noteMaterialized(c.Now() - t0)
	if r.storage == StorageNone {
		// Materialized only as a shuffle output: memory is transient
		// shuffle space, already charged by the shuffle itself.
		r.matBytes = nil
	}
	return nil
}

// partTasks builds one task per partition, pinned to its machine.
func (r *RDD[T]) partTasks(fn func(p int, m *sim.Meter) error) []sim.Task {
	tasks := make([]sim.Task, r.parts)
	for p := 0; p < r.parts; p++ {
		p := p
		tasks[p] = sim.Task{Machine: r.ctx.machineFor(p), Run: func(m *sim.Meter) error {
			m.SetProfile(r.ctx.profile)
			return fn(p, m)
		}}
	}
	return tasks
}

// Generate creates a scaled source RDD (the analogue of reading a big file
// from HDFS): partition p's contents come from gen with a deterministic
// per-partition RNG substream. The generation itself is free (the data
// "already exists"); reading it charges one pass of tuple costs.
func Generate[T any](ctx *Context, parts int, sizer func(T) int64, gen func(p int, r *randgen.RNG) []T) *RDD[T] {
	if parts <= 0 {
		panic("dataflow: Generate needs at least one partition")
	}
	r := &RDD[T]{ctx: ctx, parts: parts, scaled: true, sizer: sizer, name: "source", isSource: true}
	r.compute = func(p int, m *sim.Meter) ([]T, error) {
		data := gen(p, m.RNG().Split(uint64(p)))
		r.chargeTuples(m, len(data)) // scan/parse cost
		return data, nil
	}
	return r
}

// FromSlice creates an unscaled RDD from driver-local data (Spark's
// parallelize): model-sized collections like range(0, K).
func FromSlice[T any](ctx *Context, data []T, parts int, sizer func(T) int64) *RDD[T] {
	if parts <= 0 {
		parts = 1
	}
	if parts > len(data) && len(data) > 0 {
		parts = len(data)
	}
	r := &RDD[T]{ctx: ctx, parts: parts, scaled: false, sizer: sizer, name: "parallelize"}
	r.compute = func(p int, m *sim.Meter) ([]T, error) {
		lo, hi := sliceRange(len(data), r.parts, p)
		out := data[lo:hi]
		r.chargeTuples(m, len(out))
		return out, nil
	}
	return r
}

func sliceRange(n, parts, p int) (int, int) {
	per := (n + parts - 1) / parts
	lo := p * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Map applies f to every element. f receives the task meter so user code
// can charge its own linear-algebra costs.
func Map[T, U any](r *RDD[T], sizer func(U) int64, f func(m *sim.Meter, t T) U) *RDD[U] {
	out := &RDD[U]{ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: sizer, name: r.name + ".map", parents: []rddBase{r}}
	out.compute = func(p int, m *sim.Meter) ([]U, error) {
		in, err := r.partition(p, m)
		if err != nil {
			return nil, err
		}
		out.chargeTuples(m, len(in))
		res := make([]U, len(in))
		for i, t := range in {
			res[i] = f(m, t)
		}
		return res, nil
	}
	return out
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], sizer func(U) int64, f func(m *sim.Meter, t T) []U) *RDD[U] {
	out := &RDD[U]{ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: sizer, name: r.name + ".flatMap", parents: []rddBase{r}}
	out.compute = func(p int, m *sim.Meter) ([]U, error) {
		in, err := r.partition(p, m)
		if err != nil {
			return nil, err
		}
		var res []U
		for _, t := range in {
			res = append(res, f(m, t)...)
		}
		out.chargeTuples(m, len(in)+len(res))
		return res, nil
	}
	return out
}

// Filter keeps the elements for which pred is true.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	out := &RDD[T]{ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: r.sizer, name: r.name + ".filter", parents: []rddBase{r}}
	out.compute = func(p int, m *sim.Meter) ([]T, error) {
		in, err := r.partition(p, m)
		if err != nil {
			return nil, err
		}
		out.chargeTuples(m, len(in))
		var res []T
		for _, t := range in {
			if pred(t) {
				res = append(res, t)
			}
		}
		return res, nil
	}
	return out
}

// MapPartitions applies f to each whole partition, the escape hatch "super
// vertex style" Spark codes use to batch work.
func MapPartitions[T, U any](r *RDD[T], sizer func(U) int64, f func(m *sim.Meter, part []T) []U) *RDD[U] {
	out := &RDD[U]{ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: sizer, name: r.name + ".mapPartitions", parents: []rddBase{r}}
	out.compute = func(p int, m *sim.Meter) ([]U, error) {
		in, err := r.partition(p, m)
		if err != nil {
			return nil, err
		}
		return f(m, in), nil
	}
	return out
}

// Pair is a key-value record for shuffle operations.
type Pair[K comparable, V any] struct {
	K K
	V V
}

// MapValues transforms the values of a pair RDD, preserving keys and
// partitioning.
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], sizer func(Pair[K, W]) int64, f func(m *sim.Meter, k K, v V) W) *RDD[Pair[K, W]] {
	return Map(r, sizer, func(m *sim.Meter, p Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{K: p.K, V: f(m, p.K, p.V)}
	})
}

// hashKey deterministically hashes a comparable key.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case string:
		h := fnv.New64a()
		h.Write([]byte(v))
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", v)
		return h.Sum64()
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
