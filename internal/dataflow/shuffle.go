package dataflow

import (
	"sort"

	"mlbench/internal/ordmap"
	"mlbench/internal/sim"
)

// ReduceByKey hash-shuffles the pair RDD and combines values per key with
// f. Map-side combining runs before the shuffle, as in Spark. The output
// has the same partition count and scaling as the input; call AsModel on
// the result when the key space is model-sized.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(m *sim.Meter, a, b V) V) *RDD[Pair[K, V]] {
	out := &RDD[Pair[K, V]]{
		ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: r.sizer,
		name: r.name + ".reduceByKey", parents: []rddBase{r},
	}
	out.wide = func() error {
		return runShuffle(r, out,
			func(m *sim.Meter, dst *omap[K, V], kv Pair[K, V]) {
				dst.merge(kv.K, kv.V, func(old, new V) V { return f(m, old, new) })
			},
			func(m *sim.Meter, a, b V) V { return f(m, a, b) },
			func(k K, a V) int64 { return r.sizer(Pair[K, V]{K: k, V: a}) },
			func(o *omap[K, V]) []Pair[K, V] { return o.pairs() },
		)
	}
	return out
}

// GroupByKey hash-shuffles the pair RDD and gathers all values per key.
// Unlike ReduceByKey there is no map-side reduction, so the full value
// lists travel and sit in reducer memory — the expensive Spark pattern.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[Pair[K, []V]] {
	elems := func(k K, vs []V) int64 {
		var b int64 = 16
		for _, v := range vs {
			b += r.sizer(Pair[K, V]{K: k, V: v})
		}
		return b
	}
	sizer := func(p Pair[K, []V]) int64 { return elems(p.K, p.V) }
	out := &RDD[Pair[K, []V]]{
		ctx: r.ctx, parts: r.parts, scaled: r.scaled, sizer: sizer,
		name: r.name + ".groupByKey", parents: []rddBase{r},
	}
	out.wide = func() error {
		return runShuffle(r, out,
			func(m *sim.Meter, dst *omap[K, []V], kv Pair[K, V]) {
				old, _ := dst.get(kv.K)
				dst.set(kv.K, append(old, kv.V))
			},
			func(m *sim.Meter, a, b []V) []V { return append(a, b...) },
			elems,
			func(o *omap[K, []V]) []Pair[K, []V] { return o.pairs() },
		)
	}
	return out
}

// Two is an unkeyed tuple, used as the value type of Join results.
type Two[V, W any] struct {
	A V
	B W
}

// Join inner-joins two pair RDDs on their keys, producing every (v, w)
// combination per key. Implemented as GroupByKey-style shuffles of both
// sides with reducer-side buffering of both value lists — the pattern
// whose memory footprint defeated the paper's word-based HMM on Spark.
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]]) *RDD[Pair[K, Two[V, W]]] {
	sizer := func(p Pair[K, Two[V, W]]) int64 {
		return a.sizer(Pair[K, V]{K: p.K, V: p.V.A}) + b.sizer(Pair[K, W]{K: p.K, V: p.V.B})
	}
	out := &RDD[Pair[K, Two[V, W]]]{
		ctx: a.ctx, parts: a.parts, scaled: a.scaled || b.scaled, sizer: sizer,
		name: a.name + ".join", parents: []rddBase{a, b},
	}
	out.wide = func() error {
		c := a.ctx.cluster
		t0 := c.Now()
		c.AdvanceNamed("spark-job-launch", c.Config().Cost.SparkJobLaunch)

		type sides struct {
			left  []V
			right []W
		}
		reducers := make([]*omap[K, *sides], out.parts)
		bufBytes := make([]int64, out.parts)
		for i := range reducers {
			reducers[i] = newOmap[K, *sides]()
		}
		getSides := func(o *omap[K, *sides], k K) *sides {
			s, ok := o.get(k)
			if !ok {
				s = &sides{}
				o.set(k, s)
			}
			return s
		}
		scaleIf := func(bytes int64, scaled bool) int64 {
			if scaled {
				return int64(float64(bytes) * c.Scale())
			}
			return bytes
		}
		// Map side: both inputs shuffle to the same reducers. Partition
		// contents are computed (and shipping charged) task-locally; the
		// shared reducer buffers are filled in the Merge hooks, in
		// partition order, keeping them deterministic under host
		// parallelism.
		leftParts := make([][]Pair[K, V], a.parts)
		leftTasks := a.partTasks(func(p int, m *sim.Meter) error {
			in, err := a.partition(p, m)
			if err != nil {
				return err
			}
			a.chargeTuples(m, len(in))
			for _, kv := range in {
				t := int(hashKey(kv.K) % uint64(out.parts))
				shipBytes(m, a.scaled, a.ctx.machineFor(t), a.sizer(kv))
			}
			leftParts[p] = in
			return nil
		})
		for i := range leftTasks {
			p := i
			leftTasks[p].Merge = func(m *sim.Meter) error {
				for _, kv := range leftParts[p] {
					t := int(hashKey(kv.K) % uint64(out.parts))
					bufBytes[t] += scaleIf(a.sizer(kv), a.scaled)
					getSides(reducers[t], kv.K).left = append(getSides(reducers[t], kv.K).left, kv.V)
				}
				return nil
			}
		}
		err := c.RunPhase("join-map-left "+out.name, leftTasks)
		if err != nil {
			return err
		}
		rightParts := make([][]Pair[K, W], b.parts)
		rightTasks := b.partTasks(func(p int, m *sim.Meter) error {
			in, err := b.partition(p, m)
			if err != nil {
				return err
			}
			b.chargeTuples(m, len(in))
			for _, kv := range in {
				t := int(hashKey(kv.K) % uint64(out.parts))
				shipBytes(m, b.scaled, b.ctx.machineFor(t), b.sizer(kv))
			}
			rightParts[p] = in
			return nil
		})
		for i := range rightTasks {
			p := i
			rightTasks[p].Merge = func(m *sim.Meter) error {
				for _, kv := range rightParts[p] {
					t := int(hashKey(kv.K) % uint64(out.parts))
					bufBytes[t] += scaleIf(b.sizer(kv), b.scaled)
					getSides(reducers[t], kv.K).right = append(getSides(reducers[t], kv.K).right, kv.V)
				}
				return nil
			}
		}
		err = c.RunPhase("join-map-right "+out.name, rightTasks)
		if err != nil {
			return err
		}
		// Reduce side: buffer both sides in memory, emit the cross product.
		mat := make([][]Pair[K, Two[V, W]], out.parts)
		err = c.RunPhase("join-reduce "+out.name, tasksFor(out.ctx, out.parts, func(p int, m *sim.Meter) error {
			m.SetProfile(out.ctx.profile)
			if err := m.Machine().Alloc(bufBytes[p], "join buffer "+out.name); err != nil {
				return err
			}
			defer m.Machine().Free(bufBytes[p])
			var res []Pair[K, Two[V, W]]
			reducers[p].each(func(k K, s *sides) {
				for _, v := range s.left {
					for _, w := range s.right {
						res = append(res, Pair[K, Two[V, W]]{K: k, V: Two[V, W]{A: v, B: w}})
					}
				}
			})
			out.chargeTuples(m, len(res))
			mat[p] = res
			return nil
		}))
		if err != nil {
			return err
		}
		out.mat, out.haveMat = mat, true
		out.noteMaterialized(c.Now() - t0)
		return nil
	}
	return out
}

// runShuffle is the common two-phase shuffle: map-side fold into per-target
// ordered accumulator maps with network and shuffle-file charging, then a
// reduce-side merge with transient memory accounting.
func runShuffle[K comparable, V, A, O any](
	in *RDD[Pair[K, V]],
	out *RDD[O],
	fold func(m *sim.Meter, dst *omap[K, A], kv Pair[K, V]),
	mergeAcc func(m *sim.Meter, a, b A) A,
	accBytes func(K, A) int64,
	finish func(*omap[K, A]) []O,
) error {
	c := in.ctx.cluster
	cost := c.Config().Cost
	t0 := c.Now()
	c.AdvanceNamed("spark-job-launch", cost.SparkJobLaunch)

	reducers := make([]*omap[K, A], out.parts)
	partialBytes := make([]int64, out.parts) // pre-merge resident partials per reducer
	for i := range reducers {
		reducers[i] = newOmap[K, A]()
	}
	// Map side: compute input partitions, combine locally per target, ship.
	// The per-target combiner maps stay task-local; folding them into the
	// shared reducer maps happens in the Merge hook, sequentially in
	// partition order, so the reducers' key order (and any cost charged by
	// mergeAcc collisions) is identical at every host worker count.
	//
	// The task-local buckets are sparse: a map-side combine touches at
	// most min(|partition|, |key space|) targets, while a dense
	// per-target array per task would cost O(parts^2) host memory across
	// the phase — ruinous at the 80,000 partitions of a 10,000-machine
	// sweep. Targets are visited in ascending order (sorted keys) so the
	// ship/merge sequence is bit-identical to the dense layout's.
	locals := make([]*ordmap.Map[int, *omap[K, A]], in.parts)
	mapTasks := in.partTasks(func(p int, m *sim.Meter) error {
		data, err := in.partition(p, m)
		if err != nil {
			return err
		}
		in.chargeTuples(m, len(data))
		local := ordmap.New[int, *omap[K, A]]()
		for _, kv := range data {
			t := int(hashKey(kv.K) % uint64(out.parts))
			fold(m, local.GetOrInsert(t, func() *omap[K, A] { return newOmap[K, A]() }), kv)
		}
		var wrote int64
		for _, t := range sortedTargets(local) {
			l, _ := local.Get(t)
			dstMachine := in.ctx.machineFor(t)
			l.each(func(k K, a A) {
				b := accBytes(k, a)
				wrote += b
				// Post-combine partials have the output's cardinality:
				// model-sized aggregations ship unscaled partials even
				// when the input was data-proportional.
				shipBytes(m, out.scaled, dstMachine, b)
			})
		}
		// Shuffle files are written to local disk before shipping.
		diskBytes := float64(wrote)
		if out.scaled {
			diskBytes *= c.Scale()
		}
		m.ChargeSec(diskBytes / cost.DiskBytesPerSec)
		locals[p] = local
		return nil
	})
	for i := range mapTasks {
		p := i
		mapTasks[p].Merge = func(m *sim.Meter) error {
			for _, t := range sortedTargets(locals[p]) {
				l, _ := locals[p].Get(t)
				l.each(func(k K, a A) {
					partialBytes[t] += accBytes(k, a)
					reducers[t].merge(k, a, func(old, new A) A { return mergeAcc(m, old, new) })
				})
			}
			locals[p] = nil
			return nil
		}
	}
	err := c.RunPhase("shuffle-map "+out.name, mapTasks)
	if err != nil {
		return err
	}
	// Reduce side: transient buffer + finish.
	mat := make([][]O, out.parts)
	err = c.RunPhase("shuffle-reduce "+out.name, tasksFor(out.ctx, out.parts, func(p int, m *sim.Meter) error {
		m.SetProfile(out.ctx.profile)
		red := reducers[p]
		// The reducer buffers every received partial before merging, so
		// its footprint is the pre-merge volume (one partial per sending
		// partition per key), not the merged result.
		bufBytes := partialBytes[p]
		if out.scaled {
			bufBytes = int64(float64(bufBytes) * c.Scale())
		}
		if err := m.Machine().Alloc(bufBytes, "shuffle buffer "+out.name); err != nil {
			return err
		}
		defer m.Machine().Free(bufBytes)
		if out.scaled {
			m.ChargeTuples(red.size())
		} else {
			m.ChargeTuplesAbs(float64(red.size()))
		}
		mat[p] = finish(red)
		return nil
	}))
	if err != nil {
		return err
	}
	out.mat, out.haveMat = mat, true
	out.noteMaterialized(c.Now() - t0)
	return nil
}

// sortedTargets returns a bucket map's target partitions in ascending
// order, so sparse-bucket iteration charges in the same sequence a dense
// per-target array would.
func sortedTargets[V any](m *ordmap.Map[int, V]) []int {
	ts := append([]int(nil), m.Keys()...)
	sort.Ints(ts)
	return ts
}

// shipBytes records a shuffle transfer, scaled if the RDD is
// data-proportional.
func shipBytes(m *sim.Meter, scaled bool, dstMachine int, bytes int64) {
	b := float64(bytes)
	if scaled {
		m.SendData(dstMachine, b)
		b *= m.Scale()
	} else {
		m.SendModel(dstMachine, b)
	}
	m.Count("shuffle_bytes", b)
}

// tasksFor builds one task per partition for an RDD-shaped phase without
// needing the typed RDD (used for reduce-side phases of shuffles).
func tasksFor(ctx *Context, parts int, fn func(p int, m *sim.Meter) error) []sim.Task {
	tasks := make([]sim.Task, parts)
	for p := 0; p < parts; p++ {
		p := p
		tasks[p] = sim.Task{Machine: ctx.machineFor(p), Run: func(m *sim.Meter) error {
			return fn(p, m)
		}}
	}
	return tasks
}
