package dataflow

import (
	"testing"

	"mlbench/internal/faults"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
)

// faultCluster builds a cluster with the given crash schedule and costly
// per-tuple work so recovery times are visible in the clock.
func faultCluster(machines int, sched *faults.Schedule) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Faults = sched
	return sim.New(cfg)
}

// chain builds a cached RDD at the end of `depth` map stages over n
// records, optionally checkpointing the RDD after ckptAfter stages
// (ckptAfter < 0 means no checkpoint).
func chain(ctx *Context, n, parts, depth, ckptAfter int) *RDD[int] {
	r := rangeRDD(ctx, n, parts)
	for i := 0; i < depth; i++ {
		r = Map(r, intSizer, func(m *sim.Meter, x int) int {
			m.ChargeLinalg(5, 100, 10) // make each stage's work non-trivial
			return x + 1
		})
		if i+1 == ckptAfter {
			r.Checkpoint()
		}
	}
	return r.Cache()
}

// crashedRecoverySec runs count actions over a cached chain of the given
// depth with one crash injected after materialization, and returns the
// recovery time charged for the crash.
func crashedRecoverySec(t *testing.T, depth, ckptAfter int) float64 {
	t.Helper()
	// Probe: find when the cached chain is materialized so the crash can be
	// scheduled after it.
	probe := NewContext(testCluster(4), sim.ProfilePython)
	if _, err := Count(chain(probe, 400, 8, depth, ckptAfter)); err != nil {
		t.Fatal(err)
	}
	at := probe.Cluster().Now() * 1.5 // inside the post-materialization action

	c := faultCluster(4, faults.NewSchedule(faults.CrashAt(2, at)))
	ctx := NewContext(c, sim.ProfilePython)
	cached := chain(ctx, 400, 8, depth, ckptAfter)
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	// Keep running actions until the crash has been observed.
	for len(c.Faults()) == 0 {
		if _, err := Count(cached); err != nil {
			t.Fatal(err)
		}
		if c.Now() > 100*at {
			t.Fatalf("crash at %v never observed (clock %v)", at, c.Now())
		}
	}
	return c.Faults()[0].RecoverySec
}

func TestRecoveryCostGrowsWithLineageDepth(t *testing.T) {
	shallow := crashedRecoverySec(t, 2, -1)
	deep := crashedRecoverySec(t, 8, -1)
	if deep <= shallow {
		t.Errorf("recovery did not grow with lineage depth: depth 2 = %v, depth 8 = %v", shallow, deep)
	}
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	plain := crashedRecoverySec(t, 8, -1)
	ckpt := crashedRecoverySec(t, 8, 6)
	if ckpt >= plain {
		t.Errorf("checkpoint did not cut recovery cost: plain = %v, checkpointed = %v", plain, ckpt)
	}
}

func TestShuffleOutputRecoversAtRecordedCost(t *testing.T) {
	c := faultCluster(4, faults.NewSchedule(faults.CrashAt(1, 1)))
	ctx := NewContext(c, sim.ProfilePython)
	src := Generate(ctx, 8, pairSizer, func(p int, r *randgen.RNG) []Pair[int, float64] {
		out := make([]Pair[int, float64], 200)
		for i := range out {
			out[i] = Pair[int, float64]{K: i % 16, V: 1}
		}
		return out
	})
	red := ReduceByKey(src, func(m *sim.Meter, a, b float64) float64 { return a + b })
	if _, err := Count(red); err != nil {
		t.Fatal(err)
	}
	if red.buildSec <= 0 {
		t.Fatal("shuffle build time not recorded")
	}
	for len(c.Faults()) == 0 {
		if _, err := Count(red); err != nil {
			t.Fatal(err)
		}
	}
	f := c.Faults()[0]
	// 2 of 8 partitions lived on the crashed machine; recovery should be
	// charged around a quarter of the recorded shuffle cost (plus stage
	// resubmission and phase overheads), well under a full re-shuffle.
	if f.RecoverySec <= c.Config().Cost.FaultDetectSec {
		t.Errorf("no shuffle recovery cost charged: %v", f.RecoverySec)
	}
	budget := c.Config().Cost.FaultDetectSec + c.Config().Cost.SparkJobLaunch + red.buildSec*0.5 + 5
	if f.RecoverySec > budget {
		t.Errorf("shuffle recovery cost %v exceeds partial-recovery budget %v (full shuffle %v)",
			f.RecoverySec, budget, red.buildSec)
	}
}

func TestRecoveryKeepsResultsCorrect(t *testing.T) {
	c := faultCluster(3, faults.NewSchedule(faults.CrashAt(1, 0.5), faults.CrashAt(2, 2)))
	ctx := NewContext(c, sim.ProfilePython)
	r := chain(ctx, 120, 6, 3, -1)
	for i := 0; i < 4; i++ {
		n, err := Count(r)
		if err != nil {
			t.Fatal(err)
		}
		if n != 120 {
			t.Fatalf("iteration %d: Count = %d, want 120 after recovery", i, n)
		}
	}
	if len(c.Faults()) != 2 {
		t.Errorf("observed %d faults, want 2", len(c.Faults()))
	}
}
