package dataflow

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mlbench/internal/randgen"
	"mlbench/internal/sim"
)

func testCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	return sim.New(cfg)
}

func intSizer(int) int64                 { return 8 }
func pairSizer(Pair[int, float64]) int64 { return 16 }
func pairIntSizer(Pair[int, int]) int64  { return 16 }
func f64Sizer(float64) int64             { return 8 }
func rangeRDD(ctx *Context, n, parts int) *RDD[int] {
	return Generate(ctx, parts, intSizer, func(p int, r *randgen.RNG) []int {
		lo, hi := sliceRange(n, parts, p)
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
}

func TestGenerateAndCollect(t *testing.T) {
	ctx := NewContext(testCluster(3), sim.ProfileCPP)
	r := rangeRDD(ctx, 100, 6)
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d elements, want 100", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

func TestCount(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	n, err := Count(rangeRDD(ctx, 57, 4))
	if err != nil {
		t.Fatal(err)
	}
	if n != 57 {
		t.Errorf("Count = %d, want 57", n)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	r := rangeRDD(ctx, 10, 3)
	doubled := Map(r, intSizer, func(m *sim.Meter, x int) int { return 2 * x })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, intSizer, func(m *sim.Meter, x int) []int { return []int{x, x + 1} })
	got, err := Collect(expanded)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{0, 1, 4, 5, 8, 9, 12, 13, 16, 17}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	r := rangeRDD(ctx, 20, 4)
	sums := MapPartitions(r, intSizer, func(m *sim.Meter, part []int) []int {
		s := 0
		for _, x := range part {
			s += x
		}
		return []int{s}
	})
	got, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("one output per partition expected, got %d", len(got))
	}
	total := 0
	for _, s := range got {
		total += s
	}
	if total != 190 {
		t.Errorf("partition sums total %d, want 190", total)
	}
}

func TestFromSliceUnscaled(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	r := FromSlice(ctx, []int{5, 6, 7}, 2, intSizer)
	if r.scaled {
		t.Error("FromSlice should be model-cardinality (unscaled)")
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Collect = %v", got)
	}
}

func TestReduceAndSum(t *testing.T) {
	ctx := NewContext(testCluster(3), sim.ProfileCPP)
	r := rangeRDD(ctx, 101, 5)
	total, err := Reduce(r, func(m *sim.Meter, a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if total != 5050 {
		t.Errorf("Reduce = %d, want 5050", total)
	}
	fl := Map(r, f64Sizer, func(m *sim.Meter, x int) float64 { return float64(x) })
	s, err := Sum(fl)
	if err != nil {
		t.Fatal(err)
	}
	if s != 5050 {
		t.Errorf("Sum = %v, want 5050", s)
	}
}

func TestAggregate(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	r := rangeRDD(ctx, 10, 4)
	// Aggregate into (count, sum).
	type cs struct {
		n int
		s int
	}
	got, err := Aggregate(r,
		func() cs { return cs{} },
		func(m *sim.Meter, acc cs, x int) cs { return cs{acc.n + 1, acc.s + x} },
		func(m *sim.Meter, a, b cs) cs { return cs{a.n + b.n, a.s + b.s} },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != 10 || got.s != 45 {
		t.Errorf("Aggregate = %+v", got)
	}
}

func TestReduceByKeyMatchesReference(t *testing.T) {
	ctx := NewContext(testCluster(3), sim.ProfileCPP)
	r := rangeRDD(ctx, 200, 6)
	pairs := Map(r, pairSizer, func(m *sim.Meter, x int) Pair[int, float64] {
		return Pair[int, float64]{K: x % 7, V: float64(x)}
	})
	red := ReduceByKey(pairs, func(m *sim.Meter, a, b float64) float64 { return a + b })
	got, err := CollectAsMap(red)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{}
	for x := 0; x < 200; x++ {
		want[x%7] += float64(x)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Errorf("key %d: got %v want %v", k, got[k], v)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	r := rangeRDD(ctx, 30, 4)
	pairs := Map(r, pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
		return Pair[int, int]{K: x % 3, V: x}
	})
	grouped, err := Collect(GroupByKey(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != 3 {
		t.Fatalf("groups = %d, want 3", len(grouped))
	}
	total := 0
	for _, g := range grouped {
		if len(g.V) != 10 {
			t.Errorf("group %d has %d values, want 10", g.K, len(g.V))
		}
		for _, v := range g.V {
			if v%3 != g.K {
				t.Errorf("value %d in wrong group %d", v, g.K)
			}
			total += v
		}
	}
	if total != 435 {
		t.Errorf("grouped values total %d, want 435", total)
	}
}

func TestJoin(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	a := Map(rangeRDD(ctx, 6, 2), pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
		return Pair[int, int]{K: x % 3, V: x}
	})
	b := Map(rangeRDD(ctx, 3, 2), pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
		return Pair[int, int]{K: x, V: 100 + x}
	})
	joined, err := Collect(Join(a, b))
	if err != nil {
		t.Fatal(err)
	}
	// Keys 0,1,2 each have 2 left values x 1 right value = 6 results.
	if len(joined) != 6 {
		t.Fatalf("join produced %d rows, want 6", len(joined))
	}
	for _, row := range joined {
		if row.V.A%3 != row.K || row.V.B != 100+row.K {
			t.Errorf("bad join row %+v", row)
		}
	}
}

func TestMapValues(t *testing.T) {
	ctx := NewContext(testCluster(1), sim.ProfileCPP)
	pairs := Map(rangeRDD(ctx, 4, 2), pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
		return Pair[int, int]{K: x, V: x}
	})
	sq := MapValues(pairs, pairIntSizer, func(m *sim.Meter, k, v int) int { return v * v })
	got, err := CollectAsMap(sq)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		if v != k*k {
			t.Errorf("MapValues[%d] = %d", k, v)
		}
	}
}

func TestCacheAvoidsRecomputation(t *testing.T) {
	ctx := NewContext(testCluster(1), sim.ProfileCPP)
	computes := 0
	r := Generate(ctx, 2, intSizer, func(p int, rng *randgen.RNG) []int {
		computes++
		return []int{p}
	})
	cached := Map(r, intSizer, func(m *sim.Meter, x int) int { return x }).Cache()
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	first := computes
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	if computes != first {
		t.Errorf("cached RDD recomputed source: %d -> %d", first, computes)
	}
	if ctx.Cluster().TotalMemUsed() == 0 {
		t.Error("cache charged no simulated memory")
	}
	cached.Unpersist()
	if ctx.Cluster().TotalMemUsed() != 0 {
		t.Errorf("Unpersist left %d bytes", ctx.Cluster().TotalMemUsed())
	}
}

func TestUncachedRecomputesLineage(t *testing.T) {
	ctx := NewContext(testCluster(1), sim.ProfileCPP)
	computes := 0
	r := Generate(ctx, 2, intSizer, func(p int, rng *randgen.RNG) []int {
		computes++
		return []int{p}
	})
	mapped := Map(r, intSizer, func(m *sim.Meter, x int) int { return x })
	_, _ = Count(mapped)
	_, _ = Count(mapped)
	if computes != 4 { // 2 partitions x 2 actions
		t.Errorf("computes = %d, want 4 (recompute per action)", computes)
	}
}

func TestCacheOOM(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1
	cfg.MemBytes = 100 // tiny machine
	ctx := NewContext(sim.New(cfg), sim.ProfileCPP)
	r := rangeRDD(ctx, 1000, 1).Cache() // 8000 bytes > 100
	_, err := Count(r)
	if !sim.IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestDiskPersistChargesIOCost(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1
	cfg.Cores = 1
	cfg.Cost.SparkJobLaunch = 0
	cfg.Cost.PhaseBase = 0
	cfg.Cost.BarrierPerMachine = 0
	cfg.Cost.StragglerLogFactor = 0
	cfg.Cost.DiskBytesPerSec = 1000
	ctx := NewContext(sim.New(cfg), sim.Profile{}) // zero-cost profile isolates disk I/O
	r := rangeRDD(ctx, 1000, 1).Persist(StorageDisk)
	if _, err := Count(r); err != nil { // materializes: writes 8000 bytes
		t.Fatal(err)
	}
	afterWrite := ctx.Cluster().Now()
	if afterWrite < 8 { // 8000 bytes / 1000 Bps
		t.Errorf("disk write charged %v s, want >= 8", afterWrite)
	}
	if used := ctx.Cluster().TotalMemUsed(); used != 0 {
		t.Errorf("disk persist should not hold memory, got %d", used)
	}
	if _, err := Count(r); err != nil { // re-read pays again
		t.Fatal(err)
	}
	if reread := ctx.Cluster().Now() - afterWrite; reread < 8 {
		t.Errorf("disk re-read charged %v s, want >= 8", reread)
	}
}

func TestScaledCostsLargerThanModelCosts(t *testing.T) {
	run := func(model bool) float64 {
		cfg := sim.DefaultConfig(2)
		cfg.Scale = 100
		c := sim.New(cfg)
		ctx := NewContext(c, sim.ProfilePython)
		pairs := Map(rangeRDD(ctx, 100, 2), pairSizer, func(m *sim.Meter, x int) Pair[int, float64] {
			return Pair[int, float64]{K: x % 5, V: 1}
		})
		red := ReduceByKey(pairs, func(m *sim.Meter, a, b float64) float64 { return a + b })
		if model {
			red = red.AsModel()
		}
		start := c.Now()
		if _, err := Collect(red); err != nil {
			t.Fatal(err)
		}
		return c.Now() - start
	}
	if ds, ms := run(false), run(true); ds <= ms {
		t.Errorf("scaled collect (%v) should cost more than model collect (%v)", ds, ms)
	}
}

func TestBroadcastChargesEveryMachine(t *testing.T) {
	c := testCluster(3)
	ctx := NewContext(c, sim.ProfilePython)
	if err := ctx.Broadcast(1000, "model"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if c.Machine(i).MemUsed() != 1000 {
			t.Errorf("machine %d holds %d, want 1000", i, c.Machine(i).MemUsed())
		}
	}
	ctx.ReleaseBroadcast(1000)
	if c.TotalMemUsed() != 0 {
		t.Errorf("ReleaseBroadcast left %d", c.TotalMemUsed())
	}
}

func TestHoldDriver(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.MemBytes = 500
	ctx := NewContext(sim.New(cfg), sim.ProfilePython)
	if err := ctx.HoldDriver(400, "model"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.HoldDriver(400, "model2"); !sim.IsOOM(err) {
		t.Fatalf("expected driver OOM, got %v", err)
	}
	ctx.ReleaseDriver(400)
	if ctx.DriverHeld() != 0 {
		t.Errorf("DriverHeld = %d", ctx.DriverHeld())
	}
}

func TestActionsAdvanceClock(t *testing.T) {
	c := testCluster(2)
	ctx := NewContext(c, sim.ProfilePython)
	before := c.Now()
	if _, err := Count(rangeRDD(ctx, 1000, 4)); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= before {
		t.Error("action did not advance virtual clock")
	}
}

func TestShuffleReusedAcrossActions(t *testing.T) {
	ctx := NewContext(testCluster(2), sim.ProfileCPP)
	sourceComputes := 0
	r := Generate(ctx, 2, intSizer, func(p int, rng *randgen.RNG) []int {
		sourceComputes++
		return []int{p, p + 2}
	})
	pairs := Map(r, pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
		return Pair[int, int]{K: x % 2, V: x}
	})
	red := ReduceByKey(pairs, func(m *sim.Meter, a, b int) int { return a + b })
	if _, err := Count(red); err != nil {
		t.Fatal(err)
	}
	after := sourceComputes
	if _, err := Count(red); err != nil { // shuffle files persist, like Spark
		t.Fatal(err)
	}
	if sourceComputes != after {
		t.Errorf("second action re-ran the shuffle: %d -> %d", after, sourceComputes)
	}
}

// Property: ReduceByKey over random data matches a reference fold for any
// key range and data.
func TestQuickReduceByKeyReference(t *testing.T) {
	f := func(data []uint8, keyMod uint8) bool {
		if keyMod == 0 {
			keyMod = 1
		}
		ctx := NewContext(testCluster(2), sim.ProfileCPP)
		vals := make([]int, len(data))
		for i, d := range data {
			vals[i] = int(d)
		}
		r := FromSlice(ctx, vals, 3, intSizer)
		pairs := Map(r, pairIntSizer, func(m *sim.Meter, x int) Pair[int, int] {
			return Pair[int, int]{K: x % int(keyMod), V: x}
		})
		got, err := CollectAsMap(ReduceByKey(pairs, func(m *sim.Meter, a, b int) int { return a + b }))
		if err != nil {
			return false
		}
		want := map[int]int{}
		for _, x := range vals {
			want[x%int(keyMod)] += x
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Count == len after any chain of Filter/Map.
func TestQuickCountInvariant(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		p := int(parts%8) + 1
		ctx := NewContext(testCluster(2), sim.ProfileCPP)
		r := rangeRDD(ctx, int(n), p)
		evens := Filter(r, func(x int) bool { return x%2 == 0 })
		c, err := Count(evens)
		if err != nil {
			return false
		}
		return c == (int(n)+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
