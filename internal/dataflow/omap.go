package dataflow

// omap is an insertion-ordered map. The engine uses it instead of raw Go
// maps wherever iteration order would otherwise leak nondeterminism into
// combine order, shuffle layout, or downstream RNG consumption — the
// reproduction's cross-engine agreement tests depend on bit-identical
// trajectories.
type omap[K comparable, V any] struct {
	idx  map[K]int
	keys []K
	vals []V
}

func newOmap[K comparable, V any]() *omap[K, V] {
	return &omap[K, V]{idx: make(map[K]int)}
}

// get returns the value for k and whether it is present.
func (o *omap[K, V]) get(k K) (V, bool) {
	if i, ok := o.idx[k]; ok {
		return o.vals[i], true
	}
	var zero V
	return zero, false
}

// set inserts or replaces the value for k, preserving first-insertion order.
func (o *omap[K, V]) set(k K, v V) {
	if i, ok := o.idx[k]; ok {
		o.vals[i] = v
		return
	}
	o.idx[k] = len(o.keys)
	o.keys = append(o.keys, k)
	o.vals = append(o.vals, v)
}

// merge folds v into the existing value for k with f, or inserts v.
func (o *omap[K, V]) merge(k K, v V, f func(old, new V) V) {
	if i, ok := o.idx[k]; ok {
		o.vals[i] = f(o.vals[i], v)
		return
	}
	o.set(k, v)
}

// len returns the entry count.
func (o *omap[K, V]) size() int { return len(o.keys) }

// each visits entries in insertion order.
func (o *omap[K, V]) each(f func(k K, v V)) {
	for i, k := range o.keys {
		f(k, o.vals[i])
	}
}

// pairs returns the entries in insertion order.
func (o *omap[K, V]) pairs() []Pair[K, V] {
	out := make([]Pair[K, V], len(o.keys))
	for i, k := range o.keys {
		out[i] = Pair[K, V]{K: k, V: o.vals[i]}
	}
	return out
}
