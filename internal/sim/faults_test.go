package sim

import (
	"errors"
	"testing"

	"mlbench/internal/faults"
)

// faultTestConfig zeroes the framework overheads so phase durations are
// exactly the charged compute seconds.
func faultTestConfig(machines int) Config {
	cfg := testConfig(machines)
	cfg.Scale = 1
	cfg.Cores = 1
	cfg.Net = Network{LatencySec: 0, BytesPerSec: 1e12}
	return cfg
}

// chargeAll runs one phase charging sec serial seconds on every machine.
func chargeAll(c *Cluster, name string, sec float64) error {
	return c.RunPhaseF(name, func(machine int, m *Meter) error {
		m.ChargeSerialSec(sec)
		return nil
	})
}

func TestCrashObservedAtCoveringPhaseEnd(t *testing.T) {
	cfg := faultTestConfig(4)
	cfg.Cost.FaultDetectSec = 7
	cfg.Faults = faults.NewSchedule(faults.CrashAt(2, 15))
	c := New(cfg)
	if err := chargeAll(c, "p1", 10); err != nil { // clock 0 -> 10: no fault
		t.Fatal(err)
	}
	if len(c.Faults()) != 0 {
		t.Fatalf("fault observed too early: %+v", c.Faults())
	}
	if err := chargeAll(c, "p2", 10); err != nil { // clock 10 -> 20: crash at 15 observed
		t.Fatal(err)
	}
	log := c.Faults()
	if len(log) != 1 {
		t.Fatalf("faults observed = %d, want 1", len(log))
	}
	f := log[0]
	if f.Phase != "p2" || f.Event.Machine != 2 {
		t.Errorf("fault attribution: %+v", f)
	}
	if f.ObservedAt != 20 {
		t.Errorf("ObservedAt = %v, want 20", f.ObservedAt)
	}
	// The crash at t=15 lost half of the victim's 10s phase work.
	if f.LostSec < 4.9 || f.LostSec > 5.1 {
		t.Errorf("LostSec = %v, want ~5", f.LostSec)
	}
	// Detection latency was charged even with no handler installed.
	if c.Now() != 27 {
		t.Errorf("clock = %v, want 20 + 7 detection", c.Now())
	}
	if f.RecoverySec != 7 {
		t.Errorf("RecoverySec = %v, want 7 (detection only)", f.RecoverySec)
	}
}

func TestFaultHandlerChargesRecovery(t *testing.T) {
	cfg := faultTestConfig(2)
	cfg.Cost.FaultDetectSec = 1
	cfg.Faults = faults.NewSchedule(faults.CrashAt(1, 5))
	c := New(cfg)
	var got FaultInfo
	c.SetFaultHandler(func(f FaultInfo) error {
		got = f
		c.Advance(100) // modelled recovery cost
		return nil
	})
	if err := chargeAll(c, "work", 10); err != nil {
		t.Fatal(err)
	}
	if got.Event.Machine != 1 {
		t.Fatalf("handler not invoked: %+v", got)
	}
	if c.Now() != 111 { // 10 phase + 1 detect + 100 recovery
		t.Errorf("clock = %v, want 111", c.Now())
	}
	if rec := c.Faults()[0].RecoverySec; rec != 101 {
		t.Errorf("RecoverySec = %v, want 101", rec)
	}
}

func TestFaultHandlerErrorAbortsPhase(t *testing.T) {
	cfg := faultTestConfig(2)
	cfg.Faults = faults.NewSchedule(faults.CrashAt(1, 5))
	c := New(cfg)
	boom := errors.New("recovery exhausted memory")
	c.SetFaultHandler(func(FaultInfo) error { return boom })
	if err := chargeAll(c, "work", 10); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want recovery error", err)
	}
}

func TestRecoveryPhasesDoNotRefireFaults(t *testing.T) {
	cfg := faultTestConfig(2)
	// Two crashes; the second is crossed while the first one's recovery
	// phases run. It must be observed by the settling loop, exactly once.
	cfg.Faults = faults.NewSchedule(faults.CrashAt(1, 5), faults.CrashAt(1, 12))
	c := New(cfg)
	calls := 0
	c.SetFaultHandler(func(FaultInfo) error {
		calls++
		return chargeAll(c, "recover", 50) // nested phase crosses t=12
	})
	if err := chargeAll(c, "work", 10); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("handler calls = %d, want 2", calls)
	}
	if len(c.Faults()) != 2 {
		t.Errorf("observed = %d, want 2", len(c.Faults()))
	}
}

func TestStragglerInflatesVictimCompute(t *testing.T) {
	run := func(sched *faults.Schedule, cap float64) float64 {
		cfg := faultTestConfig(3)
		cfg.Faults = sched
		c := New(cfg)
		c.SetStragglerCap(cap)
		if err := chargeAll(c, "work", 10); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	if base := run(nil, 0); base != 10 {
		t.Fatalf("baseline = %v, want 10", base)
	}
	// A 3x straggler from t=0 makes the slowest machine 30s.
	if got := run(faults.NewSchedule(faults.StraggleAt(1, 0, 0, 3)), 0); got != 30 {
		t.Errorf("straggled = %v, want 30", got)
	}
	// Speculative execution caps the slowdown at 2x.
	if got := run(faults.NewSchedule(faults.StraggleAt(1, 0, 0, 3)), 2); got != 20 {
		t.Errorf("capped = %v, want 20", got)
	}
	// A window that ended before the phase has no effect.
	sched := faults.NewSchedule(faults.StraggleAt(1, 0, 1, 3))
	cfg := faultTestConfig(3)
	cfg.Faults = sched
	c := New(cfg)
	c.Advance(5)
	if err := chargeAll(c, "late", 10); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 15 {
		t.Errorf("expired straggle window still applied: clock = %v, want 15", c.Now())
	}
}

func TestStraggleWindowOpenedByInflation(t *testing.T) {
	// A first window inflates the victim's compute, stretching the phase
	// past the start of a second, stronger window. The phase-end estimate
	// is iterated to a fixed point, so the second window applies too —
	// previously it was silently missed because the window was evaluated
	// against the pre-inflation estimate only.
	cfg := faultTestConfig(2)
	cfg.Faults = faults.NewSchedule(
		faults.StraggleAt(0, 0, 1.5, 2), // base 1s -> inflated 2s
		faults.StraggleAt(0, 1.5, 10, 4),
	)
	c := New(cfg)
	if err := chargeAll(c, "work", 1); err != nil {
		t.Fatal(err)
	}
	// Fixed point: factor(window [0,1.5)) = 2 stretches the end to 2s,
	// which overlaps window [1.5,11.5) with factor 4 (factors take the max
	// of overlapping windows, they do not compound).
	if got := c.Now(); got != 4 {
		t.Errorf("clock = %v, want 4 (second window opened by inflation)", got)
	}
}

func TestStraggleWindowBeyondInflatedEndIgnored(t *testing.T) {
	// A window starting after even the inflated phase end must not apply:
	// the machine has already finished by then.
	cfg := faultTestConfig(2)
	cfg.Faults = faults.NewSchedule(
		faults.StraggleAt(0, 0, 1.5, 2),
		faults.StraggleAt(0, 2.5, 10, 4), // starts after the 2s inflated end
	)
	c := New(cfg)
	if err := chargeAll(c, "work", 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); got != 2 {
		t.Errorf("clock = %v, want 2 (late window must not apply)", got)
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := faultTestConfig(5)
		cfg.Faults = faults.NewSchedule(
			faults.CrashAt(2, 7),
			faults.StraggleAt(3, 12, 20, 2.5),
			faults.CrashAt(4, 33),
		)
		c := New(cfg)
		c.SetFaultHandler(func(f FaultInfo) error {
			c.Advance(2 * f.LostSec)
			return nil
		})
		var marks []float64
		for i := 0; i < 6; i++ {
			if err := chargeAll(c, "iter", 8); err != nil {
				t.Fatal(err)
			}
			marks = append(marks, c.Now())
		}
		return marks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic clock at phase %d: %v vs %v", i, a[i], b[i])
		}
	}
}
