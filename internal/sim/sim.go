// Package sim provides the simulated compute-cluster substrate on which the
// five platform engines (dataflow, relational, gas, bsp, psengine) execute.
//
// The paper's experiments ran on Amazon EC2 m2.4xlarge clusters (8 virtual
// cores, 68 GB RAM per machine) of 5, 20 and 100 machines — hardware we do
// not have. Per the reproduction's substitution rule, this package models
// that hardware: a Cluster has N Machines, each with a core count, a
// byte-accounted memory budget, and a shared network with latency and
// bandwidth. Engines run *real* Go computation (the actual Gibbs sampling
// math on scale-reduced data) while charging *modelled* costs — per-tuple
// overheads, linear-algebra flops under a language Profile, shuffle bytes,
// and framework job-launch latencies — to a deterministic virtual clock.
//
// # Scale
//
// A Config.Scale of S means each simulated machine holds 1/S of the paper's
// per-machine data volume in real memory, and every data-proportional
// charge (tuples, flops, bytes shipped, bytes allocated) is multiplied by S
// before hitting the virtual clock and the memory accountant.
// Model-proportional state (the K Gaussians, the regression vector, the
// topic-word matrix) is charged unscaled — it is small in the paper and
// small here. Virtual times are therefore directly comparable to the
// paper's HH:MM:SS tables while real wall time stays laptop-sized.
//
// # Failure
//
// Machine.Alloc returns an *OOMError when a simulated allocation exceeds
// the per-machine budget; engines abort the current phase and surface the
// error, which the benchmark harness records as the paper's "Fail" cells.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mlbench/internal/faults"
	"mlbench/internal/randgen"
	"mlbench/internal/trace"
)

// logf is ln(n) for a positive machine count.
func logf(n int) float64 { return math.Log(float64(n)) }

// Network describes the simulated interconnect.
type Network struct {
	LatencySec  float64 // per communication round
	BytesPerSec float64 // point-to-point bandwidth per machine
}

// Config parameterizes a simulated cluster.
type Config struct {
	Machines int     // number of machines
	Cores    int     // cores per machine (EC2 m2.4xlarge: 8)
	MemBytes int64   // simulated RAM per machine (m2.4xlarge: 68 GB)
	Scale    float64 // data scale-down factor S (>= 1)
	Net      Network
	Cost     CostModel
	Seed     uint64
	// Tracer, when non-nil, receives a structured span/event stream of the
	// run (phase spans, per-machine task spans, overhead spans, fault
	// spans) plus the metrics engines emit through the Meter; see
	// internal/trace. All recording happens at phase barriers in
	// deterministic order, so traces are byte-identical at any HostWorkers
	// count.
	Tracer *trace.Recorder
	// Faults is the deterministic fault-injection schedule (nil = none);
	// see internal/faults and this package's faults.go.
	Faults *faults.Schedule
	// Recovery carries the engines' checkpoint/snapshot policies.
	Recovery RecoveryConfig
	// HostWorkers bounds how many host goroutines RunPhase uses to execute
	// simulated machines concurrently (0 = GOMAXPROCS, 1 = sequential).
	// Every virtual-clock number is byte-identical across worker counts;
	// see the "Host execution model" section of DESIGN.md.
	HostWorkers int
	// ChunkElems is the streamed-partition chunk size (see Source); 0
	// selects DefaultChunkElems. Like HostWorkers it is a host-side
	// execution knob: every table and trace is byte-identical at any
	// value, only peak resident memory and hand-off granularity change.
	ChunkElems int
	// Ctx, when non-nil, cancels the run: RunPhase checks it at phase
	// entry and between tasks, so an abandoned request stops burning host
	// workers mid-phase rather than at the next figure boundary. A
	// cancelled phase returns an error wrapping the context error;
	// virtual-clock state after a cancellation is undefined and must be
	// discarded. A cluster is request-scoped, which is why the context
	// lives in its Config rather than in every RunPhase signature.
	Ctx context.Context
	// Progress, when non-nil, is called on the host goroutine at every
	// phase barrier with the phase name and the virtual clock after the
	// barrier (including any fault settling). It runs host-sequentially in
	// deterministic order and must not mutate cluster state; the serving
	// layer uses it to stream per-iteration progress.
	Progress func(phase string, clockSec float64)
}

// DefaultConfig returns the paper's experimental platform: m2.4xlarge
// machines (8 cores, 68 GB) with the default cost model and a 1000x data
// scale-down.
func DefaultConfig(machines int) Config {
	return Config{
		Machines: machines,
		Cores:    8,
		MemBytes: 68 << 30,
		Scale:    1000,
		Net:      Network{LatencySec: 0.5e-3, BytesPerSec: 100e6},
		Cost:     DefaultCostModel(),
		Seed:     1,
	}
}

// OOMError reports a simulated out-of-memory condition on one machine.
type OOMError struct {
	Machine   int
	Requested int64
	Used      int64
	Cap       int64
	Context   string
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("sim: machine %d out of memory: requested %d bytes with %d/%d used (%s)",
		e.Machine, e.Requested, e.Used, e.Cap, e.Context)
}

// IsOOM reports whether err is (or wraps) a simulated out-of-memory error.
func IsOOM(err error) bool {
	var oom *OOMError
	return errors.As(err, &oom)
}

// Machine is one simulated node: a memory accountant plus a deterministic
// RNG substream.
type Machine struct {
	id      int
	cluster *Cluster
	memUsed int64
	rng     *randgen.RNG
	// Per-phase communication accumulators (simulated bytes).
	phaseSent float64
	phaseRecv float64
}

// ID returns the machine's index in [0, Machines).
func (m *Machine) ID() int { return m.id }

// RNG returns this machine's deterministic random stream.
func (m *Machine) RNG() *randgen.RNG { return m.rng }

// MemUsed returns the current simulated allocation in bytes.
func (m *Machine) MemUsed() int64 { return m.memUsed }

// MemCap returns the machine's simulated memory capacity in bytes.
func (m *Machine) MemCap() int64 { return m.cluster.cfg.MemBytes }

// Alloc charges bytes of simulated memory, returning an *OOMError if the
// budget would be exceeded. ctx names the allocation for diagnostics.
func (m *Machine) Alloc(bytes int64, ctx string) error {
	if bytes < 0 {
		panic("sim: negative allocation")
	}
	if m.memUsed+bytes > m.cluster.cfg.MemBytes {
		return &OOMError{Machine: m.id, Requested: bytes, Used: m.memUsed, Cap: m.cluster.cfg.MemBytes, Context: ctx}
	}
	m.memUsed += bytes
	return nil
}

// Free releases a previous simulated allocation.
func (m *Machine) Free(bytes int64) {
	if bytes < 0 {
		panic("sim: negative free")
	}
	m.memUsed -= bytes
	if m.memUsed < 0 {
		m.memUsed = 0
	}
}

// Cluster is a simulated cluster with a virtual clock.
type Cluster struct {
	cfg      Config
	machines []*Machine
	clock    float64

	// Fault-injection state (see faults.go).
	crashes      []faults.Event
	stragglers   []faults.Event
	nextCrash    int
	onFault      FaultHandler
	faultLog     []FaultInfo
	inRecovery   bool
	stragglerCap float64

	// scratch is a free stack of per-phase working sets (see
	// phaseScratch). Phases on one cluster are host-sequential, but they
	// nest — RunDriver is a phase, and fault recovery runs phases from
	// inside RunPhase's fault settling — so reuse is a stack, not a
	// single slot: a nested phase pops its own scratch while the outer
	// one is still live.
	scratch []*phaseScratch
}

// phaseScratch holds RunPhase's per-phase allocations, recycled across
// phases so a 10,000-machine sweep does not reallocate ~10 slices plus
// one Meter per task every barrier.
type phaseScratch struct {
	perMachinePar []float64
	perMachineSer []float64
	computeSec    []float64
	commSec       []float64
	machineSec    []float64
	taskCount     []int
	groups        [][]int
	nonEmpty      []int
	states        []taskState
	meters        []Meter
}

// getScratch pops (or allocates) a scratch set sized for this cluster
// and task count. Machine-indexed slices are zeroed; groups are reset
// to empty per machine.
func (c *Cluster) getScratch(tasks int) *phaseScratch {
	var sc *phaseScratch
	if n := len(c.scratch); n > 0 {
		sc, c.scratch = c.scratch[n-1], c.scratch[:n-1]
	} else {
		sc = &phaseScratch{}
	}
	m := c.cfg.Machines
	sc.perMachinePar = resetFloats(sc.perMachinePar, m)
	sc.perMachineSer = resetFloats(sc.perMachineSer, m)
	sc.computeSec = resetFloats(sc.computeSec, m)
	sc.commSec = resetFloats(sc.commSec, m)
	sc.machineSec = resetFloats(sc.machineSec, m)
	if cap(sc.taskCount) < m {
		sc.taskCount = make([]int, m)
	}
	sc.taskCount = sc.taskCount[:m]
	for i := range sc.taskCount {
		sc.taskCount[i] = 0
	}
	if cap(sc.groups) < m {
		sc.groups = make([][]int, m)
	}
	sc.groups = sc.groups[:m]
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
	}
	sc.nonEmpty = sc.nonEmpty[:0]
	if cap(sc.states) < tasks {
		sc.states = make([]taskState, tasks)
		sc.meters = make([]Meter, tasks)
	}
	sc.states = sc.states[:tasks]
	sc.meters = sc.meters[:tasks]
	for i := range sc.states {
		sc.states[i] = taskState{}
	}
	return sc
}

// putScratch returns a scratch set to the free stack.
func (c *Cluster) putScratch(sc *phaseScratch) {
	c.scratch = append(c.scratch, sc)
}

// resetFloats returns a zeroed float slice of length n, reusing cap.
func resetFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// New constructs a cluster. Zero-valued fields of cfg get sensible
// defaults (8 cores, 68 GB, scale 1, default cost model and network).
func New(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		panic("sim: cluster needs at least one machine")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 68 << 30
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Net.BytesPerSec <= 0 {
		cfg.Net = Network{LatencySec: 0.5e-3, BytesPerSec: 100e6}
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	c := &Cluster{cfg: cfg}
	c.initFaults(cfg.Faults)
	root := randgen.New(cfg.Seed)
	c.machines = make([]*Machine, cfg.Machines)
	for i := range c.machines {
		c.machines[i] = &Machine{id: i, cluster: c, rng: root.Split(uint64(i))}
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return c.cfg.Machines }

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }

// Scale returns the data scale-down factor S.
func (c *Cluster) Scale() float64 { return c.cfg.Scale }

// Now returns the virtual clock in seconds.
func (c *Cluster) Now() float64 { return c.clock }

// Tracer returns the attached trace recorder (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Recorder { return c.cfg.Tracer }

// SetEngineLabel tags subsequently recorded metric samples with the
// running platform engine's name. Engines call it at construction; it is
// a no-op when tracing is off.
func (c *Cluster) SetEngineLabel(name string) {
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.SetEngine(name)
	}
}

// Advance moves the virtual clock forward, e.g. for a framework job-launch
// overhead that is not tied to any one machine.
func (c *Cluster) Advance(sec float64) { c.AdvanceNamed("advance", sec) }

// AdvanceNamed moves the virtual clock forward like Advance and, when
// tracing, records the interval as a named overhead span — this is how
// job launches, superstep latencies, and detection timeouts become
// attributable in a trace rather than anonymous clock jumps.
func (c *Cluster) AdvanceNamed(name string, sec float64) {
	if sec < 0 {
		panic("sim: negative clock advance")
	}
	if c.cfg.Tracer != nil && sec > 0 {
		c.cfg.Tracer.AddSpan(name, trace.CatOverhead, -1, c.clock, sec)
	}
	c.clock += sec
}

// Task is one unit of work in a phase, pinned to a machine.
//
// Run executes on a host worker goroutine, possibly concurrently with other
// machines' tasks; it must only touch its own machine's state (the Meter,
// the machine's RNG and memory accountant, and data partitioned to that
// machine). Merge, when set, runs on the host goroutine at the phase
// barrier, sequentially in global task order, receiving the same Meter the
// task ran with — it is the deterministic point at which a task may fold
// its results into state shared across machines. Charges made inside Merge
// are accounted exactly like charges made inside Run.
type Task struct {
	Machine int
	Run     func(*Meter) error
	Merge   func(*Meter) error
}

// taskState carries one task's buffered outcome from the worker pool to the
// barrier merge.
type taskState struct {
	meter    *Meter
	err      error
	panicked bool
	panicVal any
	ran      bool
}

// hostWorkers resolves the configured host-parallelism degree.
func (c *Cluster) hostWorkers() int {
	if c.cfg.HostWorkers > 0 {
		return c.cfg.HostWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// canceled returns the phase-abort error when the cluster's context is
// done, nil otherwise. Safe to call concurrently from worker goroutines.
func (c *Cluster) canceled(phase string) error {
	if c.cfg.Ctx == nil {
		return nil
	}
	if err := c.cfg.Ctx.Err(); err != nil {
		return fmt.Errorf("sim: phase %q canceled: %w", phase, err)
	}
	return nil
}

// IsCanceled reports whether err stems from a cancelled run context.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// progress invokes the configured Progress hook with the current clock.
func (c *Cluster) progress(phase string) {
	if c.cfg.Progress != nil {
		c.cfg.Progress(phase, c.clock)
	}
}

// RunPhase executes a barrier-synchronized phase: all tasks run (grouped by
// machine, deterministically in submission order), their charged costs are
// converted to per-machine times, and the virtual clock advances by the
// slowest machine plus coordination overhead. Per-tuple and flop charges
// are treated as data-parallel across the machine's cores; serial charges
// are not divided.
//
// Execution is host-parallel: each simulated machine's task group runs on
// its own goroutine from a pool of Config.HostWorkers workers. Tasks buffer
// their charges in their Meter; at the barrier the host replays them in
// global task order, so every virtual-clock number is byte-identical across
// worker counts.
//
// A task error aborts the phase and is returned. Error selection is
// deterministic: the error of the lowest-indexed failing task wins, and the
// clock advances by the work of tasks up to and including that one —
// mimicking a failed job that dies mid-flight, independent of host timing.
// A failing machine's later tasks do not run; other machines' in-flight
// groups run to completion (keeping their RNG and memory state
// worker-count-independent) but any charges past the failure point are
// discarded.
//
// When a fault schedule is configured, straggle windows overlapping the
// phase inflate the victim's compute time, and crashes crossed by the
// clock during the phase are observed at its end: detection latency is
// charged and the engine's recovery handler runs (see faults.go). A
// recovery error — e.g. a simulated OOM while recomputing lost state —
// is returned exactly like a task error.
func (c *Cluster) RunPhase(name string, tasks []Task) error {
	if err := c.canceled(name); err != nil {
		return err
	}
	start := c.clock
	sc := c.getScratch(len(tasks))
	defer c.putScratch(sc)
	perMachinePar := sc.perMachinePar
	perMachineSer := sc.perMachineSer
	taskCount := sc.taskCount
	for _, m := range c.machines {
		m.phaseSent, m.phaseRecv = 0, 0
	}

	// Group task indices by machine, preserving submission order. A
	// machine's tasks run sequentially on one goroutine (they share the
	// machine's RNG and memory accountant); distinct machines run
	// concurrently.
	groups := sc.groups
	for i, t := range tasks {
		if t.Machine < 0 || t.Machine >= c.cfg.Machines {
			panic(fmt.Sprintf("sim: task assigned to machine %d of %d", t.Machine, c.cfg.Machines))
		}
		if len(groups[t.Machine]) == 0 {
			sc.nonEmpty = append(sc.nonEmpty, t.Machine)
		}
		groups[t.Machine] = append(groups[t.Machine], i)
	}

	states := sc.states
	runGroup := func(idxs []int) {
		for _, i := range idxs {
			st := &states[i]
			st.meter = &sc.meters[i]
			st.meter.reset(c.machines[tasks[i].Machine], c)
			if err := c.canceled(name); err != nil {
				st.err = err
				st.ran = true
				break
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						st.panicked = true
						st.panicVal = p
					}
				}()
				st.err = tasks[i].Run(st.meter)
			}()
			st.ran = true
			if st.err != nil || st.panicked {
				break // this machine stops at its first failure
			}
		}
	}
	// Shard the machine groups over a bounded worker pool: workers
	// goroutines pull group indices from a shared counter. One goroutine
	// per non-empty machine (the previous scheme) meant 10,000 goroutines
	// per phase on a 10,000-machine sweep; the pool keeps host cost
	// proportional to HostWorkers while the atomic counter preserves the
	// per-group sequential execution that byte-identity rests on.
	workers := c.hostWorkers()
	if workers > len(sc.nonEmpty) {
		workers = len(sc.nonEmpty)
	}
	if workers <= 1 {
		for _, mi := range sc.nonEmpty {
			runGroup(groups[mi])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sc.nonEmpty) {
						return
					}
					runGroup(groups[sc.nonEmpty[i]])
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic selection: re-raise the lowest-indexed panic, exactly
	// as sequential execution would have surfaced it first.
	for i := range states {
		if states[i].panicked {
			panic(states[i].panicVal)
		}
	}

	// Barrier merge, in global task order: run Merge hooks and replay each
	// task's buffered charges. The lowest-indexed task error wins; work
	// past it is discarded. lastApplied marks the cut so buffered trace
	// events of discarded tasks are dropped with their charges.
	var firstErr error
	lastApplied := -1
	for i := range tasks {
		st := &states[i]
		if !st.ran {
			continue // skipped after its own machine's earlier failure
		}
		if st.err != nil {
			st.meter.apply(perMachinePar, perMachineSer)
			taskCount[tasks[i].Machine]++
			lastApplied = i
			firstErr = st.err
			break
		}
		if tasks[i].Merge != nil {
			if err := tasks[i].Merge(st.meter); err != nil {
				st.meter.apply(perMachinePar, perMachineSer)
				taskCount[tasks[i].Machine]++
				lastApplied = i
				firstErr = err
				break
			}
		}
		st.meter.apply(perMachinePar, perMachineSer)
		taskCount[tasks[i].Machine]++
		lastApplied = i
	}

	// Baseline per-machine times, before straggler inflation.
	computeSec := sc.computeSec
	commSec := sc.commSec
	machineSec := sc.machineSec
	var baseWorst float64
	active := 0
	for i, m := range c.machines {
		if taskCount[i] == 0 && m.phaseSent == 0 && m.phaseRecv == 0 {
			continue
		}
		active++
		computeSec[i] = perMachinePar[i]/float64(c.cfg.Cores) + perMachineSer[i]
		if m.phaseSent > 0 || m.phaseRecv > 0 {
			bytes := m.phaseSent
			if m.phaseRecv > bytes {
				bytes = m.phaseRecv
			}
			commSec[i] = c.cfg.Net.LatencySec + bytes/c.cfg.Net.BytesPerSec
		}
		if total := computeSec[i] + commSec[i]; total > baseWorst {
			baseWorst = total
		}
	}
	// Injected stragglers slow their victim's compute over the phase's
	// execution window; the barrier then waits for the slowest machine.
	// Inflation can push the phase's end past the start of a later straggle
	// window, which then overlaps the phase too, so the window end is
	// iterated to a fixed point (factors only grow as the window widens, so
	// the iteration is monotone; the pass cap is a safety net).
	var worst, worstCompute, worstComm float64
	evalEnd := start + baseWorst
	for pass := 0; pass < 8; pass++ {
		worst, worstCompute, worstComm = 0, 0, 0
		for i := range c.machines {
			if taskCount[i] == 0 && commSec[i] == 0 {
				continue
			}
			cs := computeSec[i]
			if len(c.stragglers) > 0 {
				cs *= c.straggleFactor(i, start, evalEnd)
			}
			machineSec[i] = cs + commSec[i]
			if machineSec[i] > worst {
				worst, worstCompute, worstComm = machineSec[i], cs, commSec[i]
			}
		}
		if len(c.stragglers) == 0 || start+worst <= evalEnd {
			break
		}
		evalEnd = start + worst
	}
	straggle := 1.0
	if active > 1 && c.cfg.Cost.StragglerLogFactor > 0 {
		straggle += c.cfg.Cost.StragglerLogFactor * logf(active)
	}
	dur := worst*straggle + c.cfg.Cost.PhaseBase + c.cfg.Cost.BarrierPerMachine*float64(active)
	c.clock += dur
	if rec := c.cfg.Tracer; rec != nil {
		c.emitPhaseTrace(rec, name, start, dur, worstCompute, worstComm,
			len(tasks), active, machineSec, computeSec, commSec, taskCount, evalEnd)
		// Replay buffered engine events and metric samples at the barrier in
		// global task order, honouring the failure cut exactly like charges.
		for i := 0; i <= lastApplied; i++ {
			if states[i].ran {
				states[i].meter.flushTrace(rec, name, start, dur)
			}
		}
	}
	if firstErr == nil && len(c.crashes) > 0 {
		if err := c.settleFaults(name, start, machineSec); err != nil {
			c.progress(name)
			return err
		}
	}
	c.progress(name)
	return firstErr
}

// emitPhaseTrace records the structured view of one finished phase: a
// cluster-wide "phase" span covering the whole barrier-to-barrier
// interval, plus one "task" span per participating machine covering its
// busy interval (compute + comm), annotated with the barrier wait and any
// straggler inflation. Only phase and overhead spans count toward the
// clock identity (trace.Recorder.ClockSum); task spans overlap them.
// Built-in per-phase counters (phase_sec, tasks, bytes, compute/comm/wait
// time) land in the metrics registry under the current engine label.
func (c *Cluster) emitPhaseTrace(rec *trace.Recorder, name string, start, dur, worstCompute, worstComm float64,
	tasks, active int, machineSec, computeSec, commSec []float64, taskCount []int, evalEnd float64) {
	var sentTotal, recvTotal, computeTotal, commTotal, waitTotal float64
	for i, m := range c.machines {
		if taskCount[i] == 0 && commSec[i] == 0 {
			continue
		}
		cs := machineSec[i] - commSec[i] // compute after straggler inflation
		args := []trace.Arg{
			trace.A("compute_sec", cs),
			trace.A("comm_sec", commSec[i]),
			trace.A("wait_sec", dur-machineSec[i]),
		}
		if len(c.stragglers) > 0 {
			if f := c.straggleFactor(i, start, evalEnd); f > 1 {
				args = append(args, trace.A("straggle_factor", f))
				rec.AddEvent("straggle", trace.KindFault, i, start,
					trace.A("factor", f), trace.A("inflation_sec", cs-computeSec[i]))
			}
		}
		rec.AddSpan(name, trace.CatTask, i, start, machineSec[i], args...)
		sentTotal += m.phaseSent
		recvTotal += m.phaseRecv
		computeTotal += cs
		commTotal += commSec[i]
		waitTotal += dur - machineSec[i]
	}
	rec.AddSpan(name, trace.CatPhase, -1, start, dur,
		trace.A("compute_sec", worstCompute),
		trace.A("comm_sec", worstComm),
		trace.A("tasks", float64(tasks)),
		trace.A("machines", float64(active)))
	rec.Count(name, "phase_sec", dur)
	rec.Count(name, "tasks", float64(tasks))
	rec.Count(name, "compute_sec", computeTotal)
	rec.Count(name, "barrier_wait_sec", waitTotal)
	if sentTotal > 0 {
		rec.Count(name, "bytes_sent", sentTotal)
	}
	if recvTotal > 0 {
		rec.Count(name, "bytes_recv", recvTotal)
	}
	if commTotal > 0 {
		rec.Count(name, "comm_sec", commTotal)
	}
}

// RunPhaseF runs a phase with exactly one task per machine, built by fn.
func (c *Cluster) RunPhaseF(name string, fn func(machine int, m *Meter) error) error {
	tasks := make([]Task, c.cfg.Machines)
	for i := range tasks {
		i := i
		tasks[i] = Task{Machine: i, Run: func(m *Meter) error { return fn(i, m) }}
	}
	return c.RunPhase(name, tasks)
}

// RunPhaseFM runs a phase with one task per machine plus a per-machine
// Merge hook: run executes concurrently (machine-local state only), merge
// executes at the barrier, sequentially in machine order, and may touch
// cross-machine state (see Task.Merge).
func (c *Cluster) RunPhaseFM(name string, run, merge func(machine int, m *Meter) error) error {
	tasks := make([]Task, c.cfg.Machines)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Machine: i,
			Run:     func(m *Meter) error { return run(i, m) },
			Merge:   func(m *Meter) error { return merge(i, m) },
		}
	}
	return c.RunPhase(name, tasks)
}

// RunDriver runs driver-side (single-machine, serial) work on machine 0,
// advancing the clock by the serial time plus any communication.
func (c *Cluster) RunDriver(name string, fn func(*Meter) error) error {
	return c.RunPhase(name, []Task{{Machine: 0, Run: func(m *Meter) error {
		m.Serial()
		return fn(m)
	}}})
}

// TotalMemUsed sums simulated allocations across all machines (for tests).
func (c *Cluster) TotalMemUsed() int64 {
	var s int64
	for _, m := range c.machines {
		s += m.memUsed
	}
	return s
}
