package sim

import (
	"fmt"
	"sync"
)

// DefaultChunkElems is the streamed-partition chunk size used when
// Config.ChunkElems is zero: how many elements a Cursor hands out per
// Next call. The value only controls hand-off granularity — every
// consumer sees the same element stream in the same order at any chunk
// size, so tables and traces are byte-identical across values.
const DefaultChunkElems = 4096

// ChunkElems resolves the cluster's streamed-partition chunk size.
func (c *Cluster) ChunkElems() int {
	if c.cfg.ChunkElems > 0 {
		return c.cfg.ChunkElems
	}
	return DefaultChunkElems
}

// A Source streams one deterministically regenerable partition — one
// simulated machine's data shard — in pooled fixed-size chunks, so a
// 10,000-machine sweep holds chunk-sized buffers for the machines
// currently on host workers instead of 10,000 resident partitions.
//
// The open hook returns a fresh sequential generator positioned at
// element 0; it is invoked once per cursor, so it must rebuild any
// internal state (typically a seeded RNG replaying the exact draw
// pattern of the historical materialized generator) from scratch.
// Because regeneration is pure, a Source can be iterated any number of
// times — the two-pass moment computations the engines rely on for
// byte-identity simply open two cursors.
type Source[T any] struct {
	n     int
	chunk int
	open  func() func() T
	pool  sync.Pool // *[]T chunk buffers, reused across cursors
}

// NewSource builds a source of n elements streamed in chunks of the
// given size (<= 0 selects DefaultChunkElems). open returns a fresh
// element generator; successive calls to the returned function yield
// elements 0, 1, 2, ... of the partition.
func NewSource[T any](n, chunk int, open func() func() T) *Source[T] {
	if n < 0 {
		panic("sim: negative source length")
	}
	if chunk <= 0 {
		chunk = DefaultChunkElems
	}
	// A chunk can never exceed the partition, so cap the pooled buffer
	// capacity at n: a huge -chunk over many small scaled-down partitions
	// must not allocate a huge buffer per source.
	if chunk > n && n > 0 {
		chunk = n
	}
	s := &Source[T]{n: n, chunk: chunk, open: open}
	s.pool.New = func() any {
		b := make([]T, 0, chunk)
		return &b
	}
	return s
}

// Len returns the element count of the partition.
func (s *Source[T]) Len() int { return s.n }

// ChunkSize returns the source's hand-off granularity.
func (s *Source[T]) ChunkSize() int { return s.chunk }

// Cursor opens a cursor over the full partition.
func (s *Source[T]) Cursor() *Cursor[T] { return s.Range(0, s.n) }

// Range opens a cursor over elements [lo, hi). The generator draws a
// variable number of random values per element, so there is no random
// access: the prefix [0, lo) is regenerated and discarded. Block
// consumers (super-vertex shards) are few per machine and small, so the
// skip cost is dwarfed by the work done on the block itself.
func (s *Source[T]) Range(lo, hi int) *Cursor[T] {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("sim: source range [%d, %d) outside [0, %d)", lo, hi, s.n))
	}
	next := s.open()
	for i := 0; i < lo; i++ {
		next()
	}
	return &Cursor[T]{src: s, next: next, pos: lo, end: hi}
}

// Cursor walks one partition (or block) chunk by chunk. It is owned by
// a single host goroutine; Close returns its buffer to the source's
// pool for the next cursor.
type Cursor[T any] struct {
	src  *Source[T]
	next func() T
	pos  int
	end  int
	buf  *[]T
}

// Next returns the next chunk, or (nil, false) at the end. The returned
// slice is only valid until the following Next or Close call — it is
// the cursor's pooled buffer, refilled in place.
func (c *Cursor[T]) Next() ([]T, bool) {
	if c.pos >= c.end {
		return nil, false
	}
	if c.buf == nil {
		c.buf = c.src.pool.Get().(*[]T)
	}
	n := c.src.chunk
	if rem := c.end - c.pos; rem < n {
		n = rem
	}
	b := (*c.buf)[:0]
	for i := 0; i < n; i++ {
		b = append(b, c.next())
	}
	*c.buf = b
	c.pos += n
	return b, true
}

// Close releases the cursor's buffer back to the pool. The buffer is
// cleared first so pooled spines do not pin element storage (vectors,
// documents) across reuses.
func (c *Cursor[T]) Close() {
	if c.buf != nil {
		b := (*c.buf)[:cap(*c.buf)]
		var zero T
		for i := range b {
			b[i] = zero
		}
		*c.buf = b[:0]
		c.src.pool.Put(c.buf)
		c.buf = nil
	}
	c.next = nil
	c.pos = c.end
}

// Each streams the whole partition through fn, chunk by chunk.
func (s *Source[T]) Each(fn func(T)) { s.EachRange(0, s.n, fn) }

// EachRange streams elements [lo, hi) through fn.
func (s *Source[T]) EachRange(lo, hi int, fn func(T)) {
	cur := s.Range(lo, hi)
	defer cur.Close()
	for {
		chunk, ok := cur.Next()
		if !ok {
			return
		}
		for i := range chunk {
			fn(chunk[i])
		}
	}
}

// Materialize regenerates the partition as one resident slice. It is
// the compatibility bridge for paradigm-faithful formulations that hold
// their partition in (simulated) memory — the per-point vertex layouts
// that the paper shows running out of RAM — and for small blocks whose
// per-element state must persist across iterations.
func (s *Source[T]) Materialize() []T {
	out := make([]T, 0, s.n)
	s.Each(func(v T) { out = append(out, v) })
	return out
}

// MaterializeRange regenerates block [lo, hi) as a resident slice.
func (s *Source[T]) MaterializeRange(lo, hi int) []T {
	out := make([]T, 0, hi-lo)
	s.EachRange(lo, hi, func(v T) { out = append(out, v) })
	return out
}
