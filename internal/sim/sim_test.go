package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/trace"
)

func testConfig(machines int) Config {
	cfg := DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Cost.StragglerLogFactor = 0 // simpler arithmetic in unit tests
	cfg.Cost.PhaseBase = 0
	cfg.Cost.BarrierPerMachine = 0
	return cfg
}

func TestNewDefaults(t *testing.T) {
	c := New(Config{Machines: 3})
	if c.Config().Cores != 8 {
		t.Errorf("Cores default = %d, want 8", c.Config().Cores)
	}
	if c.Config().MemBytes != 68<<30 {
		t.Errorf("MemBytes default = %d", c.Config().MemBytes)
	}
	if c.Config().Scale != 1 {
		t.Errorf("Scale default = %v", c.Config().Scale)
	}
	if c.NumMachines() != 3 {
		t.Errorf("NumMachines = %d", c.NumMachines())
	}
}

func TestNewPanicsWithoutMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestClockAdvance(t *testing.T) {
	c := New(testConfig(1))
	c.Advance(2.5)
	if c.Now() != 2.5 {
		t.Errorf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	c.Advance(-1)
}

func TestMemoryAccounting(t *testing.T) {
	cfg := testConfig(1)
	cfg.MemBytes = 1000
	c := New(cfg)
	m := c.Machine(0)
	if err := m.Alloc(600, "a"); err != nil {
		t.Fatal(err)
	}
	err := m.Alloc(500, "b")
	if err == nil {
		t.Fatal("expected OOM")
	}
	if !IsOOM(err) {
		t.Fatalf("IsOOM(%v) = false", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) || oom.Machine != 0 || oom.Requested != 500 || oom.Used != 600 {
		t.Fatalf("OOM fields wrong: %+v", oom)
	}
	m.Free(600)
	if m.MemUsed() != 0 {
		t.Errorf("MemUsed after free = %d", m.MemUsed())
	}
	if err := m.Alloc(1000, "c"); err != nil {
		t.Errorf("alloc after free failed: %v", err)
	}
	m.Free(5000) // over-free clamps to zero
	if m.MemUsed() != 0 {
		t.Errorf("MemUsed after over-free = %d", m.MemUsed())
	}
}

func TestIsOOMWrapped(t *testing.T) {
	err := fmt.Errorf("outer: %w", &OOMError{Machine: 1})
	if !IsOOM(err) {
		t.Error("IsOOM should see through wrapping")
	}
	if IsOOM(errors.New("plain")) {
		t.Error("IsOOM false positive")
	}
}

func TestRunPhaseParallelComputeDividedByCores(t *testing.T) {
	cfg := testConfig(2)
	cfg.Cores = 4
	c := New(cfg)
	err := c.RunPhaseF("work", func(machine int, m *Meter) error {
		m.ChargeSec(8) // parallel by default
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-2) > 1e-12 { // 8s over 4 cores
		t.Errorf("phase time = %v, want 2", got)
	}
}

func TestRunPhaseSerialNotDivided(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cores = 8
	c := New(cfg)
	err := c.RunDriver("drv", func(m *Meter) error {
		m.ChargeSec(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-3) > 1e-12 {
		t.Errorf("driver time = %v, want 3", got)
	}
}

func TestRunPhaseMaxAcrossMachines(t *testing.T) {
	cfg := testConfig(3)
	cfg.Cores = 1
	c := New(cfg)
	durs := []float64{1, 5, 2}
	err := c.RunPhaseF("skew", func(machine int, m *Meter) error {
		m.ChargeSec(durs[machine])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-5) > 1e-12 {
		t.Errorf("phase time = %v, want max 5", got)
	}
}

func TestRunPhaseCommunicationTime(t *testing.T) {
	cfg := testConfig(2)
	cfg.Scale = 1
	cfg.Net = Network{LatencySec: 0.1, BytesPerSec: 100}
	c := New(cfg)
	err := c.RunPhase("ship", []Task{{Machine: 0, Run: func(m *Meter) error {
		m.SendModel(1, 200) // 2 seconds at 100 B/s
		return nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: latency + 200/100 = 2.1s. Receiver likewise (max of sent/recv).
	if got := c.Now(); math.Abs(got-2.1) > 1e-9 {
		t.Errorf("comm phase time = %v, want 2.1", got)
	}
}

func TestSendDataScaled(t *testing.T) {
	cfg := testConfig(2) // scale 10
	cfg.Net = Network{LatencySec: 0, BytesPerSec: 100}
	c := New(cfg)
	if err := c.RunPhase("ship", []Task{{Machine: 0, Run: func(m *Meter) error {
		m.SendData(1, 50) // 50 real bytes * scale 10 = 500 simulated
		return nil
	}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-5) > 1e-9 {
		t.Errorf("scaled comm time = %v, want 5", got)
	}
}

func TestLocalSendIsFree(t *testing.T) {
	c := New(testConfig(2))
	if err := c.RunPhase("local", []Task{{Machine: 0, Run: func(m *Meter) error {
		m.SendModel(0, 1e12)
		return nil
	}}}); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Errorf("local send cost = %v, want 0", c.Now())
	}
}

func TestRunPhaseErrorAborts(t *testing.T) {
	// A failing task aborts the phase: the error surfaces, later tasks on
	// the SAME machine never run, and the clock reflects only work up to
	// and including the failing task (other machines' groups may execute —
	// they run on independent goroutines — but their charges past the
	// failure index are discarded).
	cfg := testConfig(2)
	cfg.Cores = 1
	c := New(cfg)
	boom := errors.New("boom")
	sameMachineRan := false
	err := c.RunPhase("fail", []Task{
		{Machine: 0, Run: func(m *Meter) error { m.ChargeSerialSec(2); return boom }},
		{Machine: 1, Run: func(m *Meter) error { m.ChargeSerialSec(50); return nil }},
		{Machine: 0, Run: func(m *Meter) error { sameMachineRan = true; return nil }},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if sameMachineRan {
		t.Error("task after same-machine failure still ran")
	}
	if got := c.Now(); got != 2 {
		t.Errorf("clock = %v, want 2 (charges past the failing task discarded)", got)
	}
}

func TestRunPhaseErrorLowestIndexWins(t *testing.T) {
	// With host parallelism any of the failing tasks could finish first in
	// real time; the reported error and clock must come from the
	// lowest-indexed one regardless.
	for _, workers := range []int{1, 8} {
		cfg := testConfig(3)
		cfg.Cores = 1
		cfg.HostWorkers = workers
		c := New(cfg)
		errA := errors.New("task 1 failed")
		errB := errors.New("task 2 failed")
		err := c.RunPhase("fail", []Task{
			{Machine: 0, Run: func(m *Meter) error { m.ChargeSerialSec(1); return nil }},
			{Machine: 1, Run: func(m *Meter) error { m.ChargeSerialSec(3); return errA }},
			{Machine: 2, Run: func(m *Meter) error { return errB }},
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
		if got := c.Now(); got != 3 {
			t.Errorf("workers=%d: clock = %v, want 3", workers, got)
		}
	}
}

func TestRunPhaseMergeHook(t *testing.T) {
	// Merge hooks run at the barrier in global task order, share the Run
	// meter (profile and charges carry over), and their charges count.
	cfg := testConfig(3)
	cfg.Cores = 1
	cfg.HostWorkers = 8
	c := New(cfg)
	var order []int
	tasks := make([]Task, 3)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Machine: i,
			Run: func(m *Meter) error {
				m.SetProfile(Profile{TupleSec: 1})
				return nil
			},
			Merge: func(m *Meter) error {
				order = append(order, i)
				m.ChargeTuplesAbs(float64(i + 1)) // profile survives Run->Merge
				return nil
			},
		}
	}
	if err := c.RunPhase("merge", tasks); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("merge order = %v, want [0 1 2]", order)
	}
	if got := c.Now(); math.Abs(got-3) > 1e-12 { // slowest machine charged 3 tuple-seconds
		t.Errorf("clock = %v, want 3", got)
	}
}

func TestRunPhaseMergeErrorAborts(t *testing.T) {
	cfg := testConfig(2)
	cfg.Cores = 1
	c := New(cfg)
	boom := errors.New("merge failed")
	merged := 0
	err := c.RunPhase("merge-fail", []Task{
		{Machine: 0, Run: func(m *Meter) error { m.ChargeSerialSec(1); return nil },
			Merge: func(m *Meter) error { return boom }},
		{Machine: 1, Run: func(m *Meter) error { m.ChargeSerialSec(50); return nil },
			Merge: func(m *Meter) error { merged++; return nil }},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if merged != 0 {
		t.Error("merge hook past the failing one still ran")
	}
	if got := c.Now(); got != 1 {
		t.Errorf("clock = %v, want 1", got)
	}
}

func TestRunPhasePanicPropagates(t *testing.T) {
	cfg := testConfig(2)
	cfg.HostWorkers = 8
	c := New(cfg)
	defer func() {
		if p := recover(); p != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", p)
		}
	}()
	_ = c.RunPhase("panic", []Task{
		{Machine: 0, Run: func(m *Meter) error { panic("kaboom") }},
		{Machine: 1, Run: func(m *Meter) error { return nil }},
	})
	t.Fatal("phase returned normally")
}

// TestRunPhaseWorkerCountInvariance pins the tentpole guarantee: the
// virtual clock and communication accounting are byte-identical at any
// HostWorkers setting.
func TestRunPhaseWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := testConfig(5)
		cfg.HostWorkers = workers
		cfg.Net = Network{LatencySec: 0.25e-3, BytesPerSec: 31e6}
		c := New(cfg)
		var marks []float64
		for iter := 0; iter < 4; iter++ {
			var tasks []Task
			for mc := 0; mc < 5; mc++ {
				mc := mc
				for k := 0; k < 3; k++ {
					tasks = append(tasks, Task{Machine: mc, Run: func(m *Meter) error {
						m.SetProfile(ProfileJava)
						// Charges derived from the machine RNG: any
						// divergence in execution order across worker
						// counts would change these values.
						m.ChargeSec(m.RNG().Float64())
						m.ChargeTuples(int(m.RNG().Intn(1000)))
						m.SendModel(int(m.RNG().Intn(5)), m.RNG().Float64()*1e6)
						m.ChargeSerialSec(m.RNG().Float64() / 7)
						return nil
					}})
				}
			}
			if err := c.RunPhase("mix", tasks); err != nil {
				t.Fatal(err)
			}
			marks = append(marks, c.Now())
		}
		return marks
	}
	base := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("HostWorkers=%d diverges at phase %d: %v vs %v", w, i, got[i], base[i])
			}
		}
	}
}

func TestChargeTuplesUsesProfileAndScale(t *testing.T) {
	cfg := testConfig(1) // scale 10
	cfg.Cores = 1
	c := New(cfg)
	if err := c.RunPhase("tuples", []Task{{Machine: 0, Run: func(m *Meter) error {
		m.SetProfile(Profile{TupleSec: 0.5})
		m.ChargeTuples(4) // 4 * 10 * 0.5 = 20s
		return nil
	}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-20) > 1e-9 {
		t.Errorf("tuple charge = %v, want 20", got)
	}
}

func TestChargeTuplesAbsIgnoresScale(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cores = 1
	c := New(cfg)
	if err := c.RunPhase("tuples", []Task{{Machine: 0, Run: func(m *Meter) error {
		m.SetProfile(Profile{TupleSec: 0.5})
		m.ChargeTuplesAbs(4) // 2s regardless of scale
		return nil
	}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-2) > 1e-9 {
		t.Errorf("abs tuple charge = %v, want 2", got)
	}
}

func TestLinalgHighDimSwitch(t *testing.T) {
	p := Profile{CallSec: 1, FlopSec: 0.001, FlopSecHighDim: 0.1, HighDim: 32}
	low := p.linalgCallSec(100, 10)
	high := p.linalgCallSec(100, 100)
	if math.Abs(low-1.1) > 1e-12 {
		t.Errorf("low-dim call = %v, want 1.1", low)
	}
	if math.Abs(high-11) > 1e-12 {
		t.Errorf("high-dim call = %v, want 11", high)
	}
}

func TestAllocDataScaled(t *testing.T) {
	cfg := testConfig(1) // scale 10
	cfg.MemBytes = 99
	c := New(cfg)
	err := c.RunPhase("alloc", []Task{{Machine: 0, Run: func(m *Meter) error {
		return m.AllocData(10, "x") // 100 simulated bytes > 99 cap
	}}})
	if !IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestStragglerFactor(t *testing.T) {
	cfg := testConfig(4)
	cfg.Cores = 1
	cfg.Cost.StragglerLogFactor = 0.5
	c := New(cfg)
	if err := c.RunPhaseF("s", func(machine int, m *Meter) error {
		m.ChargeSec(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := 1 * (1 + 0.5*math.Log(4))
	if got := c.Now(); math.Abs(got-want) > 1e-9 {
		t.Errorf("straggler time = %v, want %v", got, want)
	}
}

func TestTracePhases(t *testing.T) {
	cfg := testConfig(2)
	rec := trace.NewRecorder()
	rec.BeginCell("cell")
	cfg.Tracer = rec
	c := New(cfg)
	c.SetEngineLabel("testengine")
	_ = c.RunDriver("one", func(m *Meter) error { m.ChargeSec(1); return nil })
	_ = c.RunPhaseF("two", func(machine int, m *Meter) error {
		m.ChargeSec(2)
		m.SendModel(1-machine, 1e6)
		m.Count("widgets", 3)
		m.Emit(trace.KindComm, "handoff")
		return nil
	})
	c.AdvanceNamed("job-launch", 0.25)

	var phases []trace.Span
	for _, s := range rec.CellSpans("cell") {
		if s.Cat == trace.CatPhase {
			phases = append(phases, s)
		}
	}
	if len(phases) != 2 || phases[0].Name != "one" || phases[1].Name != "two" {
		t.Fatalf("phase spans = %+v", phases)
	}
	if phases[0].Dur <= 0 || phases[1].Dur <= 0 {
		t.Errorf("phase durations not positive: %+v", phases)
	}
	if phases[1].Start != phases[0].End() {
		t.Errorf("phases not contiguous: %+v", phases)
	}
	if phases[0].Arg("tasks") != 1 || phases[1].Arg("tasks") != 2 {
		t.Errorf("task counts wrong: %+v", phases)
	}
	// Clock identity: phase + overhead spans tile the virtual clock.
	if got, want := rec.ClockSum("cell"), c.Now(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ClockSum = %v, clock = %v", got, want)
	}
	// Engine-emitted counters and events survive the barrier flush.
	k := trace.Key{Engine: "testengine", Cell: "cell", Phase: "two", Name: "widgets"}
	if v := rec.Metrics().Counter(k); v != 6 {
		t.Errorf("widgets counter = %v, want 6 (3 from each machine)", v)
	}
	if n := len(rec.CellEvents("cell")); n != 2 {
		t.Errorf("events = %d, want 2 handoffs", n)
	}
}

func TestMachineRNGDeterministicAndDistinct(t *testing.T) {
	a := New(testConfig(2))
	b := New(testConfig(2))
	if a.Machine(0).RNG().Uint64() != b.Machine(0).RNG().Uint64() {
		t.Error("same seed, same machine should match")
	}
	if a.Machine(0).RNG().Uint64() == a.Machine(1).RNG().Uint64() {
		// One collision is astronomically unlikely but not impossible;
		// compare a few draws.
		same := true
		for i := 0; i < 5; i++ {
			if a.Machine(0).RNG().Uint64() != a.Machine(1).RNG().Uint64() {
				same = false
			}
		}
		if same {
			t.Error("machine streams identical")
		}
	}
}

// Property: phase durations are non-negative and additive in sequence.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(charges []float64) bool {
		c := New(testConfig(1))
		prev := 0.0
		for _, raw := range charges {
			v := math.Mod(math.Abs(raw), 100)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			_ = c.RunDriver("q", func(m *Meter) error {
				m.ChargeSec(v)
				return nil
			})
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: memory accounting never goes negative and Alloc/Free round
// trips restore the previous usage.
func TestQuickAllocFreeRoundTrip(t *testing.T) {
	f := func(sizes []uint16) bool {
		cfg := testConfig(1)
		cfg.MemBytes = 1 << 40
		c := New(cfg)
		m := c.Machine(0)
		for _, s := range sizes {
			before := m.MemUsed()
			if err := m.Alloc(int64(s), "q"); err != nil {
				return false
			}
			m.Free(int64(s))
			if m.MemUsed() != before {
				return false
			}
		}
		return m.MemUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultProfilesSanity(t *testing.T) {
	// The paper's qualitative ordering: C++ cheapest per tuple, then Java,
	// then the SQL engine, then Python.
	if !(ProfileCPP.TupleSec < ProfileJava.TupleSec &&
		ProfileJava.TupleSec < ProfileSQLEngine.TupleSec &&
		ProfileSQLEngine.TupleSec < ProfilePython.TupleSec) {
		t.Error("profile tuple costs out of order")
	}
	// Mallet (Java) must degrade at high dimension; NumPy must not.
	if ProfileJava.FlopSecHighDim <= ProfileJava.FlopSec {
		t.Error("Java profile lacks high-dim penalty")
	}
	if ProfilePython.FlopSecHighDim != ProfilePython.FlopSec {
		t.Error("Python profile should be dimension-uniform")
	}
}

func TestChargeBulkSerialNotDivided(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cores = 8
	c := New(cfg)
	if err := c.RunPhaseF("bulk", func(machine int, m *Meter) error {
		m.SetProfile(Profile{CallSec: 1, BulkFlopSec: 0.001})
		m.ChargeBulkSerialAbs(1000) // 1 + 1 = 2s, serial
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); math.Abs(got-2) > 1e-9 {
		t.Errorf("serial bulk charge = %v, want 2 (not divided by cores)", got)
	}
}

func TestChargeSerialSec(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cores = 8
	c := New(cfg)
	_ = c.RunPhaseF("ser", func(machine int, m *Meter) error {
		m.ChargeSerialSec(3)
		return nil
	})
	if got := c.Now(); math.Abs(got-3) > 1e-9 {
		t.Errorf("serial charge = %v, want 3", got)
	}
}

func TestChargeBulkScaled(t *testing.T) {
	cfg := testConfig(1) // scale 10
	cfg.Cores = 1
	c := New(cfg)
	_ = c.RunPhaseF("bulk", func(machine int, m *Meter) error {
		m.SetProfile(Profile{BulkFlopSec: 0.01})
		m.ChargeBulk(10) // 10 flops x 10 scale x 0.01 = 1s
		return nil
	})
	if got := c.Now(); math.Abs(got-1) > 1e-9 {
		t.Errorf("scaled bulk = %v, want 1", got)
	}
}

func TestDefaultConfigMatchesPaperPlatform(t *testing.T) {
	// The paper's EC2 m2.4xlarge: 8 virtual cores and 68 GB of RAM.
	cfg := DefaultConfig(5)
	if cfg.Cores != 8 {
		t.Errorf("cores = %d, want 8", cfg.Cores)
	}
	if cfg.MemBytes != 68<<30 {
		t.Errorf("memory = %d, want 68 GiB", cfg.MemBytes)
	}
	if cfg.Machines != 5 {
		t.Errorf("machines = %d", cfg.Machines)
	}
}
