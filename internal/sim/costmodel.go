package sim

// CostModel collects the framework-level cost constants of the simulation.
// They are the calibration surface of the whole reproduction: every number
// here was tuned once against the paper's published tables (see
// EXPERIMENTS.md) and is used by all engines.
type CostModel struct {
	// SparkJobLaunch is charged per dataflow action/stage (Spark's
	// scheduler and task-serialization latency).
	SparkJobLaunch float64
	// MRJobLaunch is charged per relational operator job (SimSQL compiles
	// SQL into Hadoop MapReduce jobs; Hadoop job startup is tens of
	// seconds).
	MRJobLaunch float64
	// BSPSuperstep is charged per Giraph superstep barrier.
	BSPSuperstep float64
	// GASRound is charged per GraphLab engine round.
	GASRound float64
	// PhaseBase is a fixed per-phase coordination cost.
	PhaseBase float64
	// BarrierPerMachine adds per-machine coordination cost to each phase
	// (master bookkeeping, heartbeats).
	BarrierPerMachine float64
	// StragglerLogFactor inflates each phase by (1 + f*ln(activeMachines)),
	// modelling the growing straggler tail the paper observed from 5 to
	// 100 machines.
	StragglerLogFactor float64
	// GASBootMaxMachines models GraphLab's boot problem: the paper could
	// not start GraphLab on clusters larger than 96 machines (footnote to
	// Figure 1). The gas engine clamps to this many machines and reports
	// the clamp.
	GASBootMaxMachines int
	// DiskBytesPerSec is the per-machine disk bandwidth, paid when an RDD
	// is persisted to disk instead of memory ("forcing RDDs to disk", as
	// the paper's Spark tuning did) and when relational tables spill
	// between MapReduce jobs.
	DiskBytesPerSec float64
	// GASGatherBytesPerSec is the (single-threaded) rate at which the
	// GraphLab engine deserializes and materializes gathered views. The
	// big-view super-vertex codes (HMM, LDA) spend most of their round
	// here, which is why the paper's GraphLab is nearly an order of
	// magnitude slower than Giraph on the same aggregation volume.
	GASGatherBytesPerSec float64
	// GASAsyncDepthDiv controls GraphLab's asynchronous gather
	// duplication: the engine holds roughly (1 + M/GASAsyncDepthDiv)
	// rounds of gathered views in flight on an M-machine cluster, because
	// the pull-based asynchronous scheduler prefetches more aggressively
	// as peers multiply. This is the mechanism behind the paper's
	// GraphLab super-vertex failures that appear only at 20+ machines
	// (HMM and LDA) while the same code ran at 5.
	GASAsyncDepthDiv float64
	// SQLCombineSec is the per-row cost of the relational engine's
	// map-side combining loop (GROUP BY input absorption and pipelined
	// expansions) — much tighter than the general tuple-at-a-time
	// operator rate.
	SQLCombineSec float64
	// BSPHeapFactor is the JVM object-overhead multiplier applied to
	// Giraph vertex state and buffered messages (boxed values, headers,
	// references). Calibrated against the paper's Giraph failures.
	BSPHeapFactor float64
	// FaultDetectSec is the failure-detection latency charged per observed
	// machine crash (heartbeat timeout before the master declares the
	// worker dead). It is paid before any engine recovery cost.
	FaultDetectSec float64
	// MRTaskRetrySec is the scheduling latency of re-launching one failed
	// Hadoop task attempt. Task-level re-execution is the MR fault-
	// tolerance story: only the dead worker's in-flight task re-runs, at
	// task (not job) launch cost.
	MRTaskRetrySec float64
	// MRSpecExecCap bounds the effective straggler slowdown under
	// Hadoop's speculative execution: a backup attempt starts elsewhere,
	// so a phase pays at most this multiple of the straggler's normal
	// time. Applied by the relational engine via SetStragglerCap.
	MRSpecExecCap float64
	// GASSnapshotAsyncFrac is the fraction of a snapshot's serialization
	// time that surfaces as wall time: GraphLab's Chandy-Lamport snapshot
	// runs asynchronously alongside computation, so most of the write
	// overlaps useful work.
	GASSnapshotAsyncFrac float64
	// GASReplayFrac scales the re-execution of rounds since the last
	// snapshot when a GraphLab machine is restored: only the failed
	// machine's subgraph replays (no global rollback) while its peers'
	// state stays live, and replayed gathers find warm ghost caches.
	GASReplayFrac float64
	// PSCycleSyncSec is the coordination cost of one parameter-server
	// cycle when the staleness bound is 0: every worker blocks until the
	// servers publish the freshest model, a BSP-like round trip.
	PSCycleSyncSec float64
	// PSCycleAsyncSec is the per-cycle coordination cost with a positive
	// staleness bound: workers proceed against cached state and only the
	// push pipeline needs scheduling, so the barrier is much cheaper than
	// a BSP superstep. The gap between these two constants is the
	// headline argument for the parameter-server architecture.
	PSCycleAsyncSec float64
	// PSServerBytesPerSec is the single-threaded rate at which one server
	// shard folds incoming worker deltas into its parameter range (dense
	// accumulation plus request dispatch), charged serially per shard.
	PSServerBytesPerSec float64
	// BSPInflightHalfM controls how much of a superstep's per-vertex
	// message traffic is resident in receiver heaps simultaneously:
	// fraction = M / (M + BSPInflightHalfM) for an M-machine cluster.
	// With few peers, flow control drains buffers quickly; as the
	// cluster grows, flushes synchronize across more peers and more of
	// the superstep's traffic is resident at once. This is the mechanism
	// behind the paper's cluster-size-dependent Giraph failures (GMM,
	// LDA and imputation died at 100 machines with the same per-machine
	// data that ran fine at 5 and 20).
	BSPInflightHalfM float64
}

// DefaultCostModel returns the constants calibrated against the paper.
func DefaultCostModel() CostModel {
	return CostModel{
		SparkJobLaunch:       1.5,
		MRJobLaunch:          25,
		BSPSuperstep:         1.0,
		GASRound:             0.5,
		PhaseBase:            0.05,
		BarrierPerMachine:    0.02,
		StragglerLogFactor:   0.06,
		GASBootMaxMachines:   96,
		GASGatherBytesPerSec: 8e6,
		GASAsyncDepthDiv:     2,
		DiskBytesPerSec:      200e6,
		SQLCombineSec:        0.8e-6,
		BSPHeapFactor:        4,
		BSPInflightHalfM:     120,
		FaultDetectSec:       10,
		MRTaskRetrySec:       3,
		MRSpecExecCap:        2,
		GASSnapshotAsyncFrac: 0.25,
		GASReplayFrac:        0.6,
		PSCycleSyncSec:       1.0,
		PSCycleAsyncSec:      0.12,
		PSServerBytesPerSec:  40e6,
	}
}

// Profile models the language/runtime in which user code runs on a
// platform: CPython + NumPy for Spark-Python, the JVM + Mallet for
// Spark-Java and Giraph, C++ + GSL for GraphLab and SimSQL VG functions,
// and the relational engine's own tuple-at-a-time interpreter for SimSQL
// query plans.
//
// The constants encode the pathologies the paper reports: Python pays a
// large fixed overhead per record and per small linear-algebra call but
// its vectorized kernels are fast; Mallet's per-flop cost degrades badly
// at high dimension (the paper's Spark-Java GMM was 8x slower than Python
// at 100 dimensions); the SQL engine pays per tuple moved.
type Profile struct {
	Name string
	// TupleSec is the fixed cost of handling one record in user code
	// (lambda dispatch, boxing, Py4J socket hop, ...).
	TupleSec float64
	// CallSec is the fixed overhead of one linear-algebra library call.
	CallSec float64
	// FlopSec is the marginal cost per floating-point operation inside
	// linear-algebra calls at low dimension.
	FlopSec float64
	// FlopSecHighDim is the marginal per-flop cost once the operand
	// dimension reaches HighDim.
	FlopSecHighDim float64
	// HighDim is the dimension threshold at which FlopSecHighDim applies.
	HighDim int
	// BulkFlopSec is the per-flop cost of large dense operations that hit
	// an optimized kernel (a 1000-dimensional Cholesky in LAPACK/NumPy),
	// as opposed to the per-record small-operand regime above.
	BulkFlopSec float64
}

func (p Profile) linalgCallSec(flops float64, dim int) float64 {
	per := p.FlopSec
	if p.HighDim > 0 && dim >= p.HighDim {
		per = p.FlopSecHighDim
	}
	return p.CallSec + flops*per
}

// The calibrated language profiles.
var (
	// ProfilePython models PySpark user code: NumPy/PyGSL kernels behind
	// expensive per-record and per-call overheads (Py4J serialization).
	ProfilePython = Profile{
		Name:           "python",
		TupleSec:       120e-6,
		CallSec:        95e-6,
		FlopSec:        95e-9,
		FlopSecHighDim: 95e-9,
		HighDim:        0,
		BulkFlopSec:    4e-9,
	}
	// ProfileJava models JVM user code with the Mallet linear-algebra
	// library: cheap per record, but per-flop cost collapses at high
	// dimension (no cache blocking, boxed matrix types).
	ProfileJava = Profile{
		Name:           "java",
		TupleSec:       4e-6,
		CallSec:        60e-6,
		FlopSec:        60e-9,
		FlopSecHighDim: 800e-9,
		HighDim:        32,
		BulkFlopSec:    10e-9,
	}
	// ProfileCPP models hand-written C++ with GSL (GraphLab vertex
	// programs, SimSQL VG functions, super-vertex inner loops). The
	// per-call overhead covers a GSL sampler invocation with its RNG
	// state, allocation churn and (for GraphLab) the engine's per-datum
	// locking protocol — calibrated against the paper's GraphLab
	// super-vertex GMM. GSL's unblocked kernels degrade at high operand
	// dimension much like Mallet's, just less severely.
	ProfileCPP = Profile{
		Name:           "cpp",
		TupleSec:       0.6e-6,
		CallSec:        26e-6,
		FlopSec:        2.5e-9,
		FlopSecHighDim: 25e-9,
		HighDim:        32,
		BulkFlopSec:    2.5e-9,
	}
	// ProfileSQLEngine models SimSQL's tuple-at-a-time relational engine:
	// every value that moves through an operator is one tuple.
	ProfileSQLEngine = Profile{
		Name:           "sql",
		TupleSec:       5e-6,
		CallSec:        5e-6,
		FlopSec:        5e-6, // the engine has no vector ops: a flop is a tuple
		FlopSecHighDim: 5e-6,
		HighDim:        0,
		BulkFlopSec:    5e-6,
	}
)
