package sim

import (
	"mlbench/internal/faults"
	"mlbench/internal/trace"
)

// This file is the cluster side of the fault-injection subsystem
// (internal/faults): the virtual clock drives a deterministic Schedule of
// machine crashes and stragglers, and the running engine supplies the
// paradigm-specific recovery semantics through a handler.
//
// Timing model. A crash occurs at its scheduled virtual time, but — as on
// a real cluster — it is only *observed* when the framework notices: at
// the end of the phase whose execution interval covers the event. The
// cluster then charges the failure-detection latency (heartbeat timeout,
// CostModel.FaultDetectSec), computes how much of the victim's in-flight
// phase work was lost, and invokes the engine's fault handler, which
// charges its recovery cost against the same virtual clock (task
// re-execution, lineage recomputation, checkpoint rollback, snapshot
// restore). The crashed machine is replaced immediately — cloud semantics,
// as on the paper's EC2 clusters — so cluster capacity is unchanged and
// the recovery charge is entirely the engine's. Simulated memory contents
// are retained by the accountant: they stand for the state the replacement
// machine holds after recovery, which the handler has already paid for.
//
// Stragglers are not observed events: a Straggle window simply inflates
// the victim's compute time in every overlapping phase. An engine with
// speculative execution (Hadoop) caps the effective slowdown via
// SetStragglerCap.

// RecoveryConfig carries the engine checkpointing policies that trade
// steady-state overhead against recovery cost. The zero value disables
// periodic state saving, which leaves rollback-based engines recovering
// from the start of the computation — exactly how the paper's deployments
// ran (Giraph checkpointing off, no GraphLab snapshots).
type RecoveryConfig struct {
	// BSPCheckpointEvery is the number of supersteps between Giraph
	// checkpoint writes (0 = never checkpoint).
	BSPCheckpointEvery int
	// GASSnapshotEvery is the number of engine rounds between GraphLab
	// asynchronous snapshots (0 = never snapshot).
	GASSnapshotEvery int
}

// FaultInfo reports one observed fault: the scheduled event plus how and
// when the cluster noticed it and what recovering from it cost.
type FaultInfo struct {
	Event faults.Event
	// Phase is the phase during which the fault was observed.
	Phase string
	// ObservedAt is the virtual time at which the fault was detected
	// (the end of the covering phase).
	ObservedAt float64
	// LostSec is the victim machine's in-flight work lost with the crash:
	// the portion of its phase time after the event.
	LostSec float64
	// RecoverySec is the total virtual time charged for this fault:
	// detection latency plus whatever the engine's handler charged.
	RecoverySec float64
}

// FaultHandler is an engine's recovery hook, invoked once per observed
// crash. Implementations charge their recovery cost by advancing the
// cluster clock (running recovery phases is fine — fault settling is
// suppressed while a handler runs). A returned error aborts the phase that
// observed the fault, e.g. when recovery itself exhausts memory.
type FaultHandler func(FaultInfo) error

// SetFaultHandler installs the recovery handler for observed crashes.
// Engines register themselves at construction; the most recently
// constructed engine owns recovery (each benchmark cell runs one engine).
func (c *Cluster) SetFaultHandler(h FaultHandler) { c.onFault = h }

// SetStragglerCap bounds the effective straggle slowdown factor,
// modelling speculative task execution: when a machine falls behind, the
// framework re-runs its tasks elsewhere, so the phase pays at most the
// cap. 0 removes the cap.
func (c *Cluster) SetStragglerCap(cap float64) { c.stragglerCap = cap }

// Faults returns every fault observed so far, in observation order.
func (c *Cluster) Faults() []FaultInfo { return c.faultLog }

// initFaults splits the configured schedule into the crash queue and the
// straggle windows.
func (c *Cluster) initFaults(s *faults.Schedule) {
	c.crashes = s.Crashes()
	c.stragglers = s.Stragglers()
}

// straggleFactor returns the compute-time inflation for a machine over a
// phase interval, from straggle windows overlapping [start, end), capped
// by speculative execution when the engine enabled it.
func (c *Cluster) straggleFactor(machine int, start, end float64) float64 {
	f := 1.0
	for _, ev := range c.stragglers {
		if ev.Machine != machine || ev.At >= end {
			continue
		}
		if ev.Duration > 0 && ev.At+ev.Duration <= start {
			continue
		}
		if ev.Factor > f {
			f = ev.Factor
		}
	}
	if c.stragglerCap > 0 && f > c.stragglerCap {
		f = c.stragglerCap
	}
	return f
}

// settleFaults observes crashes crossed by the clock during the phase that
// just ended: for each, it charges detection latency, attributes lost
// in-flight work, and invokes the engine's recovery handler. Crashes
// crossed while a handler runs (recovery phases advance the clock too) are
// observed by the same settling loop, not recursively.
func (c *Cluster) settleFaults(phase string, start float64, machineSec []float64) error {
	if c.inRecovery {
		return nil
	}
	c.inRecovery = true
	defer func() { c.inRecovery = false }()
	var firstErr error
	for c.nextCrash < len(c.crashes) {
		ev := c.crashes[c.nextCrash]
		if ev.At > c.clock {
			break
		}
		c.nextCrash++
		end := c.clock
		lost := 0.0
		if ev.Machine < len(machineSec) && end > start {
			frac := (end - ev.At) / (end - start)
			if frac < 0 {
				frac = 0 // crashed before this phase started (between phases)
			}
			if frac > 1 {
				frac = 1
			}
			lost = frac * machineSec[ev.Machine]
		}
		info := FaultInfo{Event: ev, Phase: phase, ObservedAt: end, LostSec: lost}
		rec := c.cfg.Tracer
		if rec != nil {
			rec.AddEvent("crash", trace.KindFault, ev.Machine, ev.At,
				trace.A("observed_at", end), trace.A("lost_sec", lost))
			if lost > 0 {
				rec.AddSpan("lost-work", trace.CatFault, ev.Machine, ev.At, lost,
					trace.A("phase_frac", lost/machineSec[ev.Machine]))
			}
		}
		// Detection latency is an overhead span ("fault-detect"); the
		// handler's own charges — recovery phases and advances — emit their
		// usual spans, and the "recovery" fault span brackets them without
		// adding clock time, so the clock identity still holds. Its duration
		// plus FaultDetectSec equals the FaultInfo.RecoverySec reported in
		// the fig7 tables.
		c.AdvanceNamed("fault-detect", c.cfg.Cost.FaultDetectSec)
		before := c.clock
		if c.onFault != nil && firstErr == nil {
			if err := c.onFault(info); err != nil {
				firstErr = err
			}
		}
		info.RecoverySec = c.cfg.Cost.FaultDetectSec + (c.clock - before)
		if rec != nil {
			rec.AddSpan("recovery", trace.CatFault, ev.Machine, before, c.clock-before,
				trace.A("lost_sec", lost), trace.A("detect_sec", c.cfg.Cost.FaultDetectSec))
		}
		c.faultLog = append(c.faultLog, info)
	}
	return firstErr
}
