package sim

import (
	"mlbench/internal/randgen"
	"mlbench/internal/trace"
)

// Meter accumulates the virtual cost of one task: compute seconds
// (parallel and serial), simulated bytes sent/received, and simulated
// memory allocations. Engines charge through a Meter using the language
// Profile of the user code they are running.
//
// All "data-proportional" helpers (the ...Data and plain Charge variants)
// multiply by the cluster's Scale factor, so iterating over the
// scale-reduced in-memory data charges paper-scale costs. The ...Abs and
// ...Model variants charge exactly what they are given, for
// model-proportional work that is not scaled down.
type Meter struct {
	machine *Machine
	cluster *Cluster
	prof    Profile
	parSec  float64
	serSec  float64
	serial  bool
	sends   []sendRec
	events  []evRec
	counts  []ctRec
}

// sendRec is one buffered network transfer. Sends are not applied to the
// shared per-machine accumulators while the task runs — tasks may execute
// concurrently on host goroutines — but replayed in deterministic task
// order at the phase barrier.
type sendRec struct {
	dst   int
	bytes float64
}

// evRec is one buffered trace event. Like sends, events are held on the
// meter while the task runs and replayed into the shared Recorder at the
// phase barrier in global task order, so the exported trace is
// byte-identical for every host worker count. The offset is the task's
// accumulated compute time when the event was emitted, placing it at an
// approximate position inside the phase span.
type evRec struct {
	name   string
	kind   string
	offset float64
	args   []trace.Arg
}

// ctRec is one buffered metric sample (counter increment or gauge set).
type ctRec struct {
	name  string
	val   float64
	gauge bool
}

// reset rebinds a pooled meter to a task's machine, clearing buffered
// state while keeping the send/event/count buffer capacity from the
// meter's previous phase (see Cluster.getScratch).
func (t *Meter) reset(machine *Machine, cluster *Cluster) {
	t.machine = machine
	t.cluster = cluster
	t.prof = Profile{}
	t.parSec, t.serSec = 0, 0
	t.serial = false
	t.sends = t.sends[:0]
	t.events = t.events[:0]
	t.counts = t.counts[:0]
}

// Machine returns the machine this task runs on.
func (t *Meter) Machine() *Machine { return t.machine }

// RNG returns the machine's deterministic random stream.
func (t *Meter) RNG() *randgen.RNG { return t.machine.rng }

// Scale returns the data scale-down factor S.
func (t *Meter) Scale() float64 { return t.cluster.cfg.Scale }

// SetProfile selects the language profile (Python, Java, C++, SQL engine)
// whose constants subsequent charges use.
func (t *Meter) SetProfile(p Profile) { t.prof = p }

// Profile returns the active language profile.
func (t *Meter) Profile() Profile { return t.prof }

// Serial marks the task as serial: subsequent compute charges are not
// divided across the machine's cores (driver-side or master-side work).
func (t *Meter) Serial() { t.serial = true }

func (t *Meter) addCompute(sec float64) {
	if t.serial {
		t.serSec += sec
	} else {
		t.parSec += sec
	}
}

// ChargeSec charges raw virtual compute seconds, unscaled.
func (t *Meter) ChargeSec(sec float64) { t.addCompute(sec) }

// ChargeTuples charges per-record handling cost for n real records
// (scaled by S to paper scale) under the active profile.
func (t *Meter) ChargeTuples(n int) {
	t.addCompute(float64(n) * t.cluster.cfg.Scale * t.prof.TupleSec)
}

// ChargeTuplesAbs charges per-record handling cost for n paper-scale
// records (no scaling applied).
func (t *Meter) ChargeTuplesAbs(n float64) {
	t.addCompute(n * t.prof.TupleSec)
}

// ChargeLinalg charges calls linear-algebra operations of flopsPerCall
// flops each at the given dimension, for work proportional to the data
// (scaled by S). Each call pays the profile's fixed call overhead plus a
// marginal per-flop cost that depends on whether dim exceeds the
// high-dimension threshold (modelling, e.g., Mallet's poor 100-d behaviour
// versus NumPy's vectorized kernels).
func (t *Meter) ChargeLinalg(calls int, flopsPerCall float64, dim int) {
	t.addCompute(float64(calls) * t.cluster.cfg.Scale * t.prof.linalgCallSec(flopsPerCall, dim))
}

// ChargeLinalgAbs charges calls linear-algebra operations without data
// scaling (model-proportional work such as sampling K cluster parameters).
func (t *Meter) ChargeLinalgAbs(calls int, flopsPerCall float64, dim int) {
	t.addCompute(float64(calls) * t.prof.linalgCallSec(flopsPerCall, dim))
}

// ChargeBulkAbs charges one large dense operation of the given flop count
// at the profile's optimized-kernel rate (unscaled; bulk operations are
// model-sized, e.g. a P x P Cholesky on the driver).
func (t *Meter) ChargeBulkAbs(flops float64) {
	t.addCompute(t.prof.CallSec + flops*t.prof.BulkFlopSec)
}

// ChargeBulk charges data-proportional optimized-kernel work (scaled by
// S), e.g. a per-block Gram accumulation that touches every data point.
func (t *Meter) ChargeBulk(flops float64) {
	t.addCompute(flops * t.cluster.cfg.Scale * t.prof.BulkFlopSec)
}

// ChargeBulkSerialAbs charges one large dense operation that cannot use
// the machine's cores (a single Cholesky on one vertex/driver thread).
func (t *Meter) ChargeBulkSerialAbs(flops float64) {
	t.serSec += t.prof.CallSec + flops*t.prof.BulkFlopSec
}

// ChargeSerialSec charges raw single-threaded seconds.
func (t *Meter) ChargeSerialSec(sec float64) { t.serSec += sec }

// SendData records data-proportional network transfer of realBytes real
// bytes (scaled by S) from this machine to machine dst. Local transfers
// are free.
func (t *Meter) SendData(dst int, realBytes float64) {
	t.send(dst, realBytes*t.cluster.cfg.Scale)
}

// SendModel records model-proportional (unscaled) network transfer.
func (t *Meter) SendModel(dst int, bytes float64) {
	t.send(dst, bytes)
}

func (t *Meter) send(dst int, bytes float64) {
	if bytes < 0 {
		panic("sim: negative send")
	}
	if dst == t.machine.id {
		return
	}
	t.sends = append(t.sends, sendRec{dst: dst, bytes: bytes})
}

// apply folds the meter's buffered charges into the phase accumulators.
// Called on the host goroutine, in global task order, so the floating-point
// summation order is identical for every host worker count.
func (t *Meter) apply(perMachinePar, perMachineSer []float64) {
	perMachinePar[t.machine.id] += t.parSec
	perMachineSer[t.machine.id] += t.serSec
	for _, s := range t.sends {
		t.machine.phaseSent += s.bytes
		t.cluster.machines[s.dst].phaseRecv += s.bytes
	}
}

// Emit records a typed trace event (e.g. a checkpoint write or a shuffle
// round) against this task. No-op unless the cluster has a Tracer. The
// event is buffered and replayed at the phase barrier — see evRec.
func (t *Meter) Emit(kind, name string, args ...trace.Arg) {
	if t.cluster.cfg.Tracer == nil {
		return
	}
	t.events = append(t.events, evRec{name: name, kind: kind, offset: t.parSec + t.serSec, args: args})
}

// Count adds v to the named per-phase metric counter (keyed by the
// cluster's engine label and the active benchmark cell). No-op unless the
// cluster has a Tracer; buffered and applied at the phase barrier.
func (t *Meter) Count(name string, v float64) {
	if t.cluster.cfg.Tracer == nil {
		return
	}
	t.counts = append(t.counts, ctRec{name: name, val: v})
}

// Gauge sets the named per-phase metric gauge (last write in global task
// order wins). No-op unless the cluster has a Tracer.
func (t *Meter) Gauge(name string, v float64) {
	if t.cluster.cfg.Tracer == nil {
		return
	}
	t.counts = append(t.counts, ctRec{name: name, val: v, gauge: true})
}

// flushTrace replays this task's buffered events and metric samples into
// the recorder at the phase barrier. Called on the host goroutine in
// global task order, only for tasks up to the failure cut, mirroring
// apply. Event offsets are clamped to the phase duration so instants
// never land outside their phase span.
func (t *Meter) flushTrace(rec *trace.Recorder, phase string, start, dur float64) {
	for _, e := range t.events {
		off := e.offset
		if off > dur {
			off = dur
		}
		rec.AddEvent(e.name, e.kind, t.machine.id, start+off, e.args...)
	}
	for _, s := range t.counts {
		if s.gauge {
			rec.Gauge(phase, s.name, s.val)
		} else {
			rec.Count(phase, s.name, s.val)
		}
	}
}

// AllocData charges a data-proportional simulated allocation of realBytes
// real bytes (scaled by S) against this machine's budget.
func (t *Meter) AllocData(realBytes int64, ctx string) error {
	return t.machine.Alloc(int64(float64(realBytes)*t.cluster.cfg.Scale), ctx)
}

// FreeData releases a data-proportional allocation made with AllocData.
func (t *Meter) FreeData(realBytes int64) {
	t.machine.Free(int64(float64(realBytes) * t.cluster.cfg.Scale))
}

// AllocModel charges a model-proportional (unscaled) simulated allocation.
func (t *Meter) AllocModel(bytes int64, ctx string) error {
	return t.machine.Alloc(bytes, ctx)
}

// FreeModel releases a model-proportional allocation.
func (t *Meter) FreeModel(bytes int64) { t.machine.Free(bytes) }
