package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// seqSource builds an n-element source whose generator is a stateful
// counter — the same shape as the seeded-RNG generators the tasks use,
// where element i depends on having drawn elements 0..i-1.
func seqSource(n, chunk int) *Source[int] {
	return NewSource(n, chunk, func() func() int {
		i := 0
		return func() int {
			v := i * i
			i++
			return v
		}
	})
}

// Chunked iteration must visit exactly the elements of the materialized
// partition, in order, at any chunk size — including chunk sizes that do
// not divide the length, chunk 1, and chunks larger than the partition.
func TestSourceChunkedMatchesMaterialized(t *testing.T) {
	const n = 1000
	want := seqSource(n, 0).Materialize()
	if len(want) != n {
		t.Fatalf("Materialize len = %d, want %d", len(want), n)
	}
	for _, chunk := range []int{1, 2, 3, 7, 64, 999, 1000, 1001, 100000, 0, -5} {
		s := seqSource(n, chunk)
		var got []int
		s.Each(func(v int) { got = append(got, v) })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("chunk %d: streamed elements differ from materialized", chunk)
		}
		// Defaulted and oversized chunks clamp to the partition length so
		// pooled buffers never outgrow the data.
		if chunk <= 0 && s.ChunkSize() != n {
			t.Errorf("chunk %d: ChunkSize = %d, want clamp to n=%d", chunk, s.ChunkSize(), n)
		}
		if chunk > n && s.ChunkSize() != n {
			t.Errorf("chunk %d: ChunkSize = %d, want clamp to n=%d", chunk, s.ChunkSize(), n)
		}
	}
}

// A cursor must never hand out more than one chunk's worth of elements
// at a time, and the final chunk carries the remainder.
func TestCursorChunkBounds(t *testing.T) {
	s := seqSource(10, 4)
	cur := s.Cursor()
	defer cur.Close()
	var sizes []int
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		sizes = append(sizes, len(chunk))
	}
	if !reflect.DeepEqual(sizes, []int{4, 4, 2}) {
		t.Errorf("chunk sizes = %v, want [4 4 2]", sizes)
	}
}

// Range must regenerate-and-skip the prefix: block [lo, hi) of a
// stateful generator equals the same slice of the materialized stream.
func TestSourceRangeBlocks(t *testing.T) {
	const n = 100
	s := seqSource(n, 8)
	want := s.Materialize()
	for _, r := range [][2]int{{0, 0}, {0, 1}, {13, 29}, {50, 100}, {99, 100}, {0, 100}} {
		got := s.MaterializeRange(r[0], r[1])
		if !reflect.DeepEqual(got, want[r[0]:r[1]]) {
			t.Errorf("range [%d,%d) differs from materialized slice", r[0], r[1])
		}
	}
	// Two concurrent-in-time cursors over one source are independent:
	// interleaving two passes sees the same stream twice.
	a, b := s.Cursor(), s.Cursor()
	defer a.Close()
	defer b.Close()
	ca, _ := a.Next()
	cb, _ := b.Next()
	if !reflect.DeepEqual(append([]int{}, ca...), append([]int{}, cb...)) {
		t.Error("two cursors over one source diverged")
	}
}

func TestSourceRangePanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range block")
		}
	}()
	seqSource(5, 2).Range(2, 6)
}

// The pooled chunk buffer must be cleared on Close so it cannot pin
// element storage across reuses.
func TestCursorCloseClearsBuffer(t *testing.T) {
	s := NewSource(3, 4, func() func() []int {
		return func() []int { return make([]int, 1000) }
	})
	cur := s.Cursor()
	if _, ok := cur.Next(); !ok {
		t.Fatal("empty first chunk")
	}
	cur.Close()
	buf := s.pool.Get().(*[][]int)
	for i, v := range (*buf)[:cap(*buf)] {
		if v != nil {
			t.Fatalf("pooled buffer slot %d still pins element storage", i)
		}
	}
}

// ChunkElems resolves the cluster-level knob with the documented default.
func TestClusterChunkElems(t *testing.T) {
	if got := New(testConfig(1)).ChunkElems(); got != DefaultChunkElems {
		t.Errorf("default ChunkElems = %d, want %d", got, DefaultChunkElems)
	}
	cfg := testConfig(1)
	cfg.ChunkElems = 7
	if got := New(cfg).ChunkElems(); got != 7 {
		t.Errorf("ChunkElems = %d, want 7", got)
	}
}

// phaseTotals runs one phase of per-machine tasks on a cluster with the
// given machine and worker counts and returns the final clock plus a
// per-machine result vector computed inside the tasks.
func phaseTotals(t *testing.T, machines, workers int) (float64, []float64) {
	t.Helper()
	cfg := testConfig(machines)
	cfg.HostWorkers = workers
	c := New(cfg)
	out := make([]float64, machines)
	err := c.RunPhaseF("sweep", func(machine int, m *Meter) error {
		src := seqSource(50+machine%17, 1+machine%5)
		sum := 0.0
		src.Each(func(v int) { sum += float64(v) })
		out[machine] = sum
		m.ChargeBulk(sum)
		m.SendData(machine%3, float64(machine%3*100))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Now(), out
}

// RunPhase must shard machines over the bounded worker pool correctly at
// the boundary shapes the 10,000-machine sweep hits: far more machines
// than workers, fewer machines than workers, and worker counts that do
// not divide the machine count. The virtual clock and every per-machine
// result must be byte-identical across all of them.
func TestRunPhasePoolBoundaries(t *testing.T) {
	for _, machines := range []int{1, 3, 97, 1000} {
		wantClock, wantOut := phaseTotals(t, machines, 1)
		for _, workers := range []int{2, 3, 7, 8, machines, machines + 13, 4 * machines} {
			clock, out := phaseTotals(t, machines, workers)
			if clock != wantClock {
				t.Errorf("machines=%d workers=%d: clock %v != sequential %v", machines, workers, clock, wantClock)
			}
			if !reflect.DeepEqual(out, wantOut) {
				t.Errorf("machines=%d workers=%d: per-machine results differ from sequential", machines, workers)
			}
		}
	}
}

// A 10,000-machine phase over a handful of workers must complete with
// every task run exactly once — the pool's shared counter cannot skip or
// double-run a group.
func TestRunPhaseManyMachinesFewWorkers(t *testing.T) {
	const machines = 10_000
	cfg := testConfig(machines)
	cfg.HostWorkers = 4
	c := New(cfg)
	ran := make([]int, machines)
	err := c.RunPhaseF("wide", func(machine int, m *Meter) error {
		ran[machine]++
		m.ChargeBulk(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("machine %d ran %d times", i, n)
		}
	}
}

// The cluster chunk knob must not leak into the virtual clock: the same
// phase streaming the same source yields the same time at any
// Config.ChunkElems.
func TestRunPhaseChunkSizeIdentity(t *testing.T) {
	run := func(chunkElems int) float64 {
		cfg := testConfig(64)
		cfg.ChunkElems = chunkElems
		c := New(cfg)
		err := c.RunPhaseF("stream", func(machine int, m *Meter) error {
			src := seqSource(500+machine, c.ChunkElems())
			src.Each(func(v int) { m.ChargeBulk(float64(v % 7)) })
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	want := run(0)
	for _, chunk := range []int{1, 3, 100, 100000} {
		if got := run(chunk); got != want {
			t.Errorf("ChunkElems=%d: clock %v, want %v", chunk, got, want)
		}
	}
}

// Merge hooks observe machine order even when the run hooks execute on
// an arbitrary worker interleaving.
func TestRunPhaseMergeOrderUnderPool(t *testing.T) {
	const machines = 257
	cfg := testConfig(machines)
	cfg.HostWorkers = 8
	c := New(cfg)
	var order []int
	err := c.RunPhaseFM("merge-order",
		func(machine int, m *Meter) error { m.ChargeBulk(float64(machine % 11)); return nil },
		func(machine int, m *Meter) error { order = append(order, machine); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, machineID := range order {
		if machineID != i {
			t.Fatalf("merge order[%d] = %d; merges must run in machine order", i, machineID)
		}
	}
	if len(order) != machines {
		t.Fatalf("ran %d merges, want %d", len(order), machines)
	}
}

func BenchmarkSourceStream(b *testing.B) {
	for _, chunk := range []int{64, DefaultChunkElems} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			s := seqSource(100_000, chunk)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := 0
				s.Each(func(v int) { sum += v })
			}
		})
	}
}
