package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// A pre-cancelled context must abort a phase before any task runs or the
// clock moves.
func TestRunPhaseCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(4)
	cfg.Ctx = ctx
	cl := New(cfg)
	var ran atomic.Int32
	err := cl.RunPhaseF("work", func(machine int, m *Meter) error {
		ran.Add(1)
		m.ChargeSec(1)
		return nil
	})
	if err == nil {
		t.Fatal("RunPhase on a cancelled context: want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !IsCanceled(err) {
		t.Errorf("IsCanceled(%v) = false", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran after cancellation", ran.Load())
	}
	if cl.Now() != 0 {
		t.Errorf("clock moved to %v on a cancelled phase", cl.Now())
	}
}

// Cancelling from inside a task stops the remaining tasks mid-phase: with
// sequential host execution, machine 0's task cancels and no later
// machine's task starts.
func TestRunPhaseCancelMidPhase(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultConfig(8)
	cfg.Ctx = ctx
	cfg.HostWorkers = 1
	cl := New(cfg)
	var ran atomic.Int32
	err := cl.RunPhaseF("work", func(machine int, m *Meter) error {
		ran.Add(1)
		if machine == 0 {
			cancel()
		}
		m.ChargeSec(1)
		return nil
	})
	if err == nil || !IsCanceled(err) {
		t.Fatalf("mid-phase cancel: got err %v", err)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("%d tasks ran after mid-phase cancel, want 1", got)
	}
}

// The Progress hook fires once per phase barrier, host-sequentially, with
// a non-decreasing clock.
func TestProgressHook(t *testing.T) {
	cfg := DefaultConfig(4)
	var phases []string
	var clocks []float64
	cfg.Progress = func(phase string, clockSec float64) {
		phases = append(phases, phase)
		clocks = append(clocks, clockSec)
	}
	cl := New(cfg)
	for i := 0; i < 3; i++ {
		if err := cl.RunPhaseF("step", func(machine int, m *Meter) error {
			m.ChargeSec(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(phases) != 3 {
		t.Fatalf("progress fired %d times, want 3 (%v)", len(phases), phases)
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i] <= clocks[i-1] {
			t.Errorf("clock not increasing at progress %d: %v", i, clocks)
		}
	}
	if clocks[len(clocks)-1] != cl.Now() {
		t.Errorf("last progress clock %v != cluster clock %v", clocks[len(clocks)-1], cl.Now())
	}
}
