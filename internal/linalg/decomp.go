package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the input matrix is not symmetric
// positive definite (within numerical tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// ErrSingular is returned by LU-based routines when the matrix is singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix m such that L * L^T == m. Only the lower triangle of m is
// read. It returns ErrNotSPD if a non-positive pivot is encountered.
func Cholesky(m *Mat) (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.Data[i*n+i] = math.Sqrt(s)
			} else {
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveLower solves L*x = b for lower-triangular L by forward substitution.
func SolveLower(l *Mat, b Vec) Vec {
	n := l.Rows
	checkLen(n, len(b))
	x := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x
}

// SolveUpperT solves L^T*x = b for lower-triangular L (so L^T is upper
// triangular) by back substitution.
func SolveUpperT(l *Mat, b Vec) Vec {
	n := l.Rows
	checkLen(n, len(b))
	x := make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x
}

// CholSolve solves m*x = b given the Cholesky factor L of m.
func CholSolve(l *Mat, b Vec) Vec {
	return SolveUpperT(l, SolveLower(l, b))
}

// CholInverse returns the inverse of the SPD matrix whose Cholesky factor
// is l, by solving against the identity columns.
func CholInverse(l *Mat) *Mat {
	n := l.Rows
	inv := NewMat(n, n)
	e := make(Vec, n)
	for c := 0; c < n; c++ {
		e.Zero()
		e[c] = 1
		x := CholSolve(l, e)
		for r := 0; r < n; r++ {
			inv.Data[r*n+c] = x[r]
		}
	}
	return inv.Symmetrize()
}

// CholLogDet returns log(det(m)) for the SPD matrix whose Cholesky factor
// is l: 2 * sum(log(diag(L))).
func CholLogDet(l *Mat) float64 {
	var s float64
	n := l.Rows
	for i := 0; i < n; i++ {
		s += math.Log(l.Data[i*n+i])
	}
	return 2 * s
}

// LU holds an LU decomposition with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, packed into LU.
type LU struct {
	lu   *Mat
	piv  []int
	sign float64 // determinant sign from row swaps
}

// NewLU factors a square matrix a. It returns ErrSingular if a pivot is
// exactly zero.
func NewLU(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		max := math.Abs(lu.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.Data[r*n+col]); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rowP := lu.Data[p*n : (p+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for k := 0; k < n; k++ {
				rowP[k], rowC[k] = rowC[k], rowP[k]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		pivot := lu.Data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.Data[r*n+col] / pivot
			lu.Data[r*n+col] = f
			if f == 0 {
				continue
			}
			for k := col + 1; k < n; k++ {
				lu.Data[r*n+k] -= f * lu.Data[col*n+k]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b using the factorization.
func (f *LU) Solve(b Vec) Vec {
	n := f.lu.Rows
	checkLen(n, len(b))
	x := make(Vec, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward: L*y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.Data[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Back: U*x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.Data[i*n+k] * x[k]
		}
		x[i] = s / f.lu.Data[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Inverse returns the inverse of a general square matrix, or ErrSingular.
func Inverse(a *Mat) (*Mat, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMat(n, n)
	e := make(Vec, n)
	for c := 0; c < n; c++ {
		e.Zero()
		e[c] = 1
		x := f.Solve(e)
		for r := 0; r < n; r++ {
			inv.Data[r*n+c] = x[r]
		}
	}
	return inv, nil
}

// Solve solves A*x = b for general square A, or returns ErrSingular.
func Solve(a *Mat, b Vec) (Vec, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
