// Package linalg provides the dense linear algebra kernels used by the MCMC
// samplers in this repository: vectors, row-major matrices, Cholesky and LU
// decompositions, triangular solves, inverses and determinants.
//
// The package is deliberately small and allocation-conscious rather than
// general: every routine exists because one of the five benchmark models
// (GMM, Bayesian Lasso, HMM, LDA, Gaussian imputation) needs it.
package linalg

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64s.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// AddTo sets dst = dst + v and returns dst. Panics if lengths differ.
func (v Vec) AddTo(dst Vec) Vec {
	checkLen(len(dst), len(v))
	for i, x := range v {
		dst[i] += x
	}
	return dst
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	checkLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	checkLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Scale returns a*v as a new vector.
func (v Vec) Scale(a float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// ScaleInPlace multiplies every entry of v by a.
func (v Vec) ScaleInPlace(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Sum returns the sum of the entries of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// MaxIdx returns the index of the largest entry of v (first on ties).
// It panics on an empty vector.
func (v Vec) MaxIdx() int {
	if len(v) == 0 {
		panic("linalg: MaxIdx of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Zero sets every entry of v to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMat returns a zero Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d Vec) *Mat {
	m := NewMat(len(d), len(d))
	for i, x := range d {
		m.Data[i*len(d)+i] = x
	}
	return m
}

// At returns the (r, c) entry.
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the (r, c) entry.
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// AddInPlace sets m = m + b and returns m.
func (m *Mat) AddInPlace(b *Mat) *Mat {
	checkDims(m, b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return m
}

// Sub returns m - b as a new matrix.
func (m *Mat) Sub(b *Mat) *Mat {
	checkDims(m, b)
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Mat) Add(b *Mat) *Mat {
	checkDims(m, b)
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every entry of m by a and returns m.
func (m *Mat) ScaleInPlace(a float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// MulVec returns m * v.
func (m *Mat) MulVec(v Vec) Vec {
	checkLen(m.Cols, len(v))
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, x := range row {
			s += x * v[c]
		}
		out[r] = s
	}
	return out
}

// MulMat returns m * b.
func (m *Mat) MulMat(b *Mat) *Mat {
	checkLen(m.Cols, b.Rows)
	out := NewMat(m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[r*b.Cols : (r+1)*b.Cols]
			for c, x := range brow {
				orow[c] += a * x
			}
		}
	}
	return out
}

// Outer returns v * w^T as a new len(v) x len(w) matrix.
func Outer(v, w Vec) *Mat {
	out := NewMat(len(v), len(w))
	for r, a := range v {
		if a == 0 {
			continue
		}
		row := out.Data[r*len(w) : (r+1)*len(w)]
		for c, b := range w {
			row[c] = a * b
		}
	}
	return out
}

// AddOuter sets m = m + scale * v * w^T and returns m.
func (m *Mat) AddOuter(scale float64, v, w Vec) *Mat {
	checkLen(m.Rows, len(v))
	checkLen(m.Cols, len(w))
	for r, a := range v {
		f := scale * a
		if f == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, b := range w {
			row[c] += f * b
		}
	}
	return m
}

// Row returns row r of m as a Vec sharing m's storage.
func (m *Mat) Row(r int) Vec { return Vec(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Trace returns the trace of a square matrix.
func (m *Mat) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// Symmetrize sets m to (m + m^T)/2 in place, removing round-off asymmetry,
// and returns m. Panics if m is not square.
func (m *Mat) Symmetrize() *Mat {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			avg := (m.Data[r*n+c] + m.Data[c*n+r]) / 2
			m.Data[r*n+c] = avg
			m.Data[c*n+r] = avg
		}
	}
	return m
}

// MaxAbsDiff returns the largest absolute entry-wise difference between m
// and b. Useful in tests.
func (m *Mat) MaxAbsDiff(b *Mat) float64 {
	checkDims(m, b)
	var worst float64
	for i := range m.Data {
		if d := math.Abs(m.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d != %d", a, b))
	}
}

func checkDims(a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d != %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
