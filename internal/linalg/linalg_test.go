package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := v.Norm2(); !almostEq(got, math.Sqrt(14), 1e-12) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := w.MaxIdx(); got != 2 {
		t.Errorf("MaxIdx = %v, want 2", got)
	}
}

func TestVecCloneIndependence(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestVecAddTo(t *testing.T) {
	dst := Vec{1, 1}
	Vec{2, 3}.AddTo(dst)
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("AddTo = %v", dst)
	}
}

func TestVecZeroAndScaleInPlace(t *testing.T) {
	v := Vec{1, 2, 3}
	v.ScaleInPlace(3)
	if v[1] != 6 {
		t.Errorf("ScaleInPlace = %v", v)
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Errorf("Zero left %v", v)
	}
}

func TestVecMaxIdxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vec{}.MaxIdx()
}

func TestMatAtSetEye(t *testing.T) {
	m := Eye(3)
	if m.At(1, 1) != 1 || m.At(0, 1) != 0 {
		t.Errorf("Eye wrong: %v", m.Data)
	}
	m.Set(0, 2, 7)
	if m.At(0, 2) != 7 {
		t.Errorf("Set/At broken")
	}
}

func TestMatDiagTrace(t *testing.T) {
	m := Diag(Vec{1, 2, 3})
	if m.Trace() != 6 {
		t.Errorf("Trace = %v", m.Trace())
	}
	if m.At(0, 1) != 0 || m.At(2, 2) != 3 {
		t.Errorf("Diag wrong")
	}
}

func TestMatMulVec(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	got := m.MulVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatMulMat(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Mat{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	got := a.MulMat(b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MulMat = %v, want %v", got.Data, want)
		}
	}
}

func TestMatTranspose(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("T values wrong: %v", tr.Data)
	}
}

func TestOuterAndAddOuter(t *testing.T) {
	m := Outer(Vec{1, 2}, Vec{3, 4})
	if m.At(1, 1) != 8 || m.At(0, 0) != 3 {
		t.Errorf("Outer = %v", m.Data)
	}
	m.AddOuter(2, Vec{1, 0}, Vec{1, 1})
	if m.At(0, 0) != 5 || m.At(0, 1) != 6 {
		t.Errorf("AddOuter = %v", m.Data)
	}
}

func TestSymmetrize(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 4, 1}}
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", m.Data)
	}
}

func TestMatAddSubScale(t *testing.T) {
	a := &Mat{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	b := &Mat{Rows: 1, Cols: 2, Data: []float64{3, 4}}
	if got := a.Add(b); got.Data[1] != 6 {
		t.Errorf("Add = %v", got.Data)
	}
	if got := b.Sub(a); got.Data[0] != 2 {
		t.Errorf("Sub = %v", got.Data)
	}
	a.Clone().ScaleInPlace(5)
	if a.Data[0] != 1 {
		t.Errorf("ScaleInPlace mutated source of clone")
	}
	c := a.Clone()
	c.AddInPlace(b)
	if c.Data[0] != 4 || a.Data[0] != 1 {
		t.Errorf("AddInPlace wrong or aliased")
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Errorf("Row does not alias storage")
	}
}

func TestDimensionPanics(t *testing.T) {
	cases := []func(){
		func() { Vec{1}.Dot(Vec{1, 2}) },
		func() { Vec{1}.Add(Vec{1, 2}) },
		func() { NewMat(2, 2).MulVec(Vec{1}) },
		func() { NewMat(2, 3).MulMat(NewMat(2, 3)) },
		func() { NewMat(2, 3).Trace() },
		func() { NewMat(2, 3).Symmetrize() },
		func() { NewMat(2, 2).AddInPlace(NewMat(3, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// randomSPD builds an SPD matrix A = B*B^T + n*I from a seeded source.
func randomSPD(n int, seed int64) *Mat {
	r := rand.New(rand.NewSource(seed))
	b := NewMat(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	a := b.MulMat(b.T())
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

func TestCholeskyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randomSPD(n, int64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := l.MulMat(l.T())
		if d := back.MaxAbsDiff(a); d > 1e-9*float64(n) {
			t.Errorf("n=%d: round trip err %g", n, d)
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 1}} // eigenvalues 3, -1
	if _, err := Cholesky(m); err != ErrNotSPD {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
	if _, err := Cholesky(NewMat(2, 3)); err == nil {
		t.Errorf("expected error for non-square input")
	}
}

func TestCholSolve(t *testing.T) {
	a := randomSPD(6, 7)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{1, -2, 3, -4, 5, -6}
	b := a.MulVec(want)
	got := CholSolve(l, b)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-8) {
			t.Fatalf("CholSolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholInverse(t *testing.T) {
	a := randomSPD(5, 11)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := CholInverse(l)
	prod := a.MulMat(inv)
	if d := prod.MaxAbsDiff(Eye(5)); d > 1e-8 {
		t.Errorf("A*inv(A) deviates from I by %g", d)
	}
}

func TestCholLogDet(t *testing.T) {
	a := Diag(Vec{2, 3, 4})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CholLogDet(l), math.Log(24); !almostEq(got, want, 1e-12) {
		t.Errorf("CholLogDet = %v, want %v", got, want)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := &Mat{Rows: 3, Cols: 3, Data: []float64{
		0, 2, 1, // zero pivot forces a row swap
		1, 1, 1,
		2, 0, 3,
	}}
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{1, 2, 3}
	got := f.Solve(a.MulVec(want))
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10) {
			t.Fatalf("Solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// det by cofactor expansion: 0*(3-0) - 2*(3-2) + 1*(0-2) = -4
	if d := f.Det(); !almostEq(d, -4, 1e-10) {
		t.Errorf("Det = %v, want -4", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 4}}
	if _, err := NewLU(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if _, err := Inverse(a); err != ErrSingular {
		t.Errorf("Inverse err = %v, want ErrSingular", err)
	}
	if _, err := Solve(a, Vec{1, 1}); err != ErrSingular {
		t.Errorf("Solve err = %v, want ErrSingular", err)
	}
	if _, err := NewLU(NewMat(2, 3)); err == nil {
		t.Errorf("expected error for non-square input")
	}
}

func TestGeneralInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := NewMat(7, 7)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.MulMat(inv).MaxAbsDiff(Eye(7)); d > 1e-8 {
		t.Errorf("A*inv(A) deviates from I by %g", d)
	}
}

// Property: for random SPD matrices, Cholesky exists and solving recovers
// arbitrary right-hand sides.
func TestQuickCholeskySolveProperty(t *testing.T) {
	f := func(seed int64, raw [4]float64) bool {
		a := randomSPD(4, seed)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := Vec{clampQ(raw[0]), clampQ(raw[1]), clampQ(raw[2]), clampQ(raw[3])}
		got := CholSolve(l, a.MulVec(x))
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: (A^T)^T == A and (A*B)^T == B^T * A^T.
func TestQuickTransposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewMat(3, 4)
		b := NewMat(4, 2)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		if a.T().T().MaxAbsDiff(a) != 0 {
			return false
		}
		lhs := a.MulMat(b).T()
		rhs := b.T().MulMat(a.T())
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Outer(v, w) applied to e_k selects w-scaled columns:
// Outer(v,w)*x == v * (w . x).
func TestQuickOuterProperty(t *testing.T) {
	f := func(v0, v1, w0, w1, x0, x1 float64) bool {
		v := Vec{clampQ(v0), clampQ(v1)}
		w := Vec{clampQ(w0), clampQ(w1)}
		x := Vec{clampQ(x0), clampQ(x1)}
		got := Outer(v, w).MulVec(x)
		want := v.Scale(w.Dot(x))
		for i := range got {
			if !almostEq(got[i], want[i], 1e-9*(1+math.Abs(want[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// clampQ maps arbitrary quick-generated floats into a sane range, squashing
// NaN/Inf and extreme magnitudes that would only test float overflow.
func clampQ(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 100)
}
