package perfgate

import (
	"testing"

	"mlbench/internal/randgen"
)

// The point of the mhalias tier is that a token draw stops paying for
// the topic axis: the dense scan does a 3T-flop pass per token while
// the cached MH kernel does a constant handful of alias draws and one
// accept test. The gate pins that separation at the paper's T=100 and
// at the wide T=1000 axis — if the MH kernel regresses to within the
// pinned factor of the dense scan, the tier has lost its reason to
// exist.
func TestLDAMHDrawSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time measurement")
	}
	opts := HarnessOptions{Reps: 5}
	for _, c := range []struct {
		topics int
		floor  float64
	}{{100, 2}, {1000, 5}} {
		dense, err := Measure(ldaResampleSpec("dense", randgen.TierDense, c.topics, 2_000), opts)
		if err != nil {
			t.Fatal(err)
		}
		mh, err := Measure(ldaResampleSpec("mhalias", randgen.TierMHAlias, c.topics, 2_000), opts)
		if err != nil {
			t.Fatal(err)
		}
		speedup := dense.MedianNS / mh.MedianNS
		t.Logf("lda T=%d: dense %.0f ns/op, mhalias %.0f ns/op, speedup %.1fx", c.topics, dense.MedianNS, mh.MedianNS, speedup)
		if speedup < c.floor {
			t.Errorf("mhalias speedup over the dense T=%d scan = %.1fx, want >= %.0fx", c.topics, speedup, c.floor)
		}
	}
}

// The HMM kernel's dense sweep is O(K) per position; the MH kernel is
// constant. K=100 is a softer axis than LDA's T=1000, so the pinned
// floor is lower.
func TestHMMMHDrawSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time measurement")
	}
	opts := HarnessOptions{Reps: 5}
	dense, err := Measure(hmmResampleSpec("dense", randgen.TierDense, 2_000), opts)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Measure(hmmResampleSpec("mhalias", randgen.TierMHAlias, 2_000), opts)
	if err != nil {
		t.Fatal(err)
	}
	speedup := dense.MedianNS / mh.MedianNS
	t.Logf("hmm K=100: dense %.0f ns/op, mhalias %.0f ns/op, speedup %.1fx", dense.MedianNS, mh.MedianNS, speedup)
	if speedup < 2 {
		t.Errorf("mhalias speedup over the dense K=100 sweep = %.1fx, want >= 2x", speedup)
	}
}
