package perfgate

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Env is the environment fingerprint stored next to every benchmark
// document. Wall times from different hardware are not comparable, so
// the comparator surfaces any mismatch as a warning (never a failure —
// CI runners rotate CPU models routinely). Fields are declared in
// json-key order; see SchemaVersion.
type Env struct {
	CPUModel   string `json:"cpu_model,omitempty"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv fingerprints the current host and toolchain.
func CaptureEnv() Env {
	return Env{
		CPUModel:   cpuModel(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
	}
}

// cpuModel best-effort reads the CPU model name (linux /proc/cpuinfo);
// empty elsewhere, which json omits.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// Mismatch describes every field where the two fingerprints differ, one
// human-readable line per field; empty when the environments match.
func (e Env) Mismatch(other Env) []string {
	var out []string
	diff := func(field, a, b string) {
		if a != b {
			out = append(out, fmt.Sprintf("%s: baseline %q vs current %q", field, a, b))
		}
	}
	diff("cpu_model", e.CPUModel, other.CPUModel)
	diff("goarch", e.GOARCH, other.GOARCH)
	diff("gomaxprocs", fmt.Sprint(e.GOMAXPROCS), fmt.Sprint(other.GOMAXPROCS))
	diff("goos", e.GOOS, other.GOOS)
	diff("go_version", e.GoVersion, other.GoVersion)
	diff("num_cpu", fmt.Sprint(e.NumCPU), fmt.Sprint(other.NumCPU))
	return out
}
