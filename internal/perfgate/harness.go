package perfgate

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// DefaultReps is the default timed repetitions per spec. Five reps keep
// min-of-N and the median meaningful on noisy shared runners (VM steal
// windows routinely inflate one or two reps by 1.5x; the min survives
// if any single rep is clean, the median if three are).
const DefaultReps = 5

// Spec is one gate benchmark: Run must execute exactly n operations of
// the measured code path. Fixture construction belongs in the closure
// that builds the Spec, not in Run, so only the hot path is timed.
type Spec struct {
	Name   string
	N      int // operations per repetition
	Warmup int // untimed repetitions before measuring
	Run    func(n int) error
}

// Result is one measured benchmark in the BENCH_host.json benchmarks
// section. MinNS is the noise-robust statistic (the fastest repetition
// is the least-perturbed one); MedianNS guards against a lucky single
// repetition. Fields are declared in json-key order; see SchemaVersion.
type Result struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	MedianNS    float64 `json:"median_ns"`
	MinNS       float64 `json:"min_ns"`
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
}

// HarnessOptions tunes the measurement loop.
type HarnessOptions struct {
	// Reps is the number of timed repetitions per spec (default
	// DefaultReps).
	Reps int
	// Slowdown multiplies every measured wall time (default 1). Values
	// above 1 are the seeded regression canary: a gate whose baseline was
	// recorded at 1 must trip when the same code is measured at 2.
	Slowdown float64
	// Log, when non-nil, receives one progress line per spec.
	Log func(format string, args ...any)
}

func (o HarnessOptions) withDefaults() HarnessOptions {
	if o.Reps <= 0 {
		o.Reps = DefaultReps
	}
	if o.Slowdown == 0 {
		o.Slowdown = 1
	}
	return o
}

// acc accumulates one spec's repetitions.
type acc struct {
	perOp  []float64
	allocs float64
	bytes  float64
}

// timeRep runs one timed repetition of spec. The forced GC collects the
// previous repetitions' (and, under MeasureAll, the other specs')
// garbage outside the timed window, so collector pacing cannot land on
// random reps.
func timeRep(spec Spec, o HarnessOptions, rep int, a *acc) error {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := spec.Run(spec.N)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return fmt.Errorf("perfgate: %s rep %d: %w", spec.Name, rep, err)
	}
	a.perOp = append(a.perOp, o.Slowdown*float64(wall.Nanoseconds())/float64(spec.N))
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(spec.N)
	bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(spec.N)
	if rep == 0 || allocs < a.allocs {
		a.allocs = allocs
	}
	if rep == 0 || bytes < a.bytes {
		a.bytes = bytes
	}
	return nil
}

func (a *acc) result(name string, o HarnessOptions) Result {
	sort.Float64s(a.perOp)
	return Result{
		Name:        name,
		Reps:        len(a.perOp),
		MinNS:       a.perOp[0],
		MedianNS:    a.perOp[len(a.perOp)/2],
		AllocsPerOp: a.allocs,
		BytesPerOp:  a.bytes,
	}
}

func warmup(spec Spec) error {
	if spec.N <= 0 {
		return fmt.Errorf("perfgate: spec %s has N=%d", spec.Name, spec.N)
	}
	for i := 0; i < spec.Warmup; i++ {
		if err := spec.Run(spec.N); err != nil {
			return fmt.Errorf("perfgate: %s warmup: %w", spec.Name, err)
		}
	}
	return nil
}

// Measure runs one spec through the warmup-then-N-repetitions loop and
// aggregates wall ns/op and allocs/op. Allocation counts come from the
// global runtime counters, so the harness assumes it is the only load on
// the process (true for the mlbench gate CLI); the minimum across
// repetitions discards stray background allocations.
func Measure(spec Spec, o HarnessOptions) (Result, error) {
	o = o.withDefaults()
	if err := warmup(spec); err != nil {
		return Result{}, err
	}
	a := acc{perOp: make([]float64, 0, o.Reps)}
	for i := 0; i < o.Reps; i++ {
		if err := timeRep(spec, o, i, &a); err != nil {
			return Result{}, err
		}
	}
	res := a.result(spec.Name, o)
	if o.Log != nil {
		o.Log("%-40s %12.0f ns/op (min of %d)  %8.1f allocs/op", spec.Name, res.MinNS, o.Reps, res.AllocsPerOp)
	}
	return res, nil
}

// MeasureAll runs every spec and returns results in spec order. Unlike
// calling Measure per spec, repetitions are interleaved round-robin
// across all specs: every spec's rep 0 runs before any spec's rep 1.
// A sustained interference window (VM steal, thermal throttling, a
// backup job) then inflates at most one or two repetitions of EVERY
// benchmark — which min-of-N and the median absorb — instead of every
// repetition of the few benchmarks unlucky enough to run inside it.
func MeasureAll(specs []Spec, o HarnessOptions) ([]Result, error) {
	o = o.withDefaults()
	for _, s := range specs {
		if err := warmup(s); err != nil {
			return nil, err
		}
	}
	accs := make([]acc, len(specs))
	for i := range accs {
		accs[i].perOp = make([]float64, 0, o.Reps)
	}
	for rep := 0; rep < o.Reps; rep++ {
		if o.Log != nil {
			o.Log("— round %d/%d —", rep+1, o.Reps)
		}
		for i, s := range specs {
			if err := timeRep(s, o, rep, &accs[i]); err != nil {
				return nil, err
			}
		}
	}
	results := make([]Result, len(specs))
	for i, s := range specs {
		results[i] = accs[i].result(s.Name, o)
		if o.Log != nil {
			o.Log("%-40s %12.0f ns/op (min of %d)  %8.1f allocs/op", s.Name, results[i].MinNS, o.Reps, results[i].AllocsPerOp)
		}
	}
	return results, nil
}
