package perfgate

import (
	"path/filepath"
	"strings"
	"testing"

	"mlbench/internal/bench"
)

func res(name string, min, median, allocs float64) Result {
	return Result{Name: name, MinNS: min, MedianNS: median, AllocsPerOp: allocs, BytesPerOp: allocs * 64, Reps: 3}
}

func fileWith(results ...Result) *File {
	f := NewFile()
	f.Benchmarks = results
	return f
}

func kinds(r *Report) map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Kind]++
	}
	return out
}

// TestCompareSelfBaseline: a document compared against itself has no
// fatal findings — the gate's basic sanity invariant.
func TestCompareSelfBaseline(t *testing.T) {
	f := fileWith(res("a", 100, 110, 5), res("b", 2000, 2100, 0))
	rep := Compare(f, f, GateOptions{})
	if rep.Failed() {
		t.Fatalf("self-comparison failed:\n%s", rep.Render())
	}
	if len(rep.Findings) != 0 {
		t.Errorf("self-comparison findings: %v", rep.Findings)
	}
}

// TestCompareNoisyWithinTolerance: wall-time drift inside the tolerance
// band — in either direction — passes.
func TestCompareNoisyWithinTolerance(t *testing.T) {
	base := fileWith(res("a", 100, 110, 5))
	for _, cur := range []*File{
		fileWith(res("a", 135, 148, 5)), // +35% < 40% default tolerance
		fileWith(res("a", 82, 90, 5)),   // faster, but not enough to flag
	} {
		rep := Compare(base, cur, GateOptions{})
		if rep.Failed() {
			t.Errorf("within-tolerance drift failed the gate:\n%s", rep.Render())
		}
		if len(rep.Findings) != 0 {
			t.Errorf("within-tolerance drift produced findings: %v", rep.Findings)
		}
	}
}

// TestCompareMinAndMedianConjunction: only min OR only median exceeding
// the tolerance is noise, not a regression; both together is fatal.
func TestCompareMinAndMedianConjunction(t *testing.T) {
	base := fileWith(res("a", 100, 100, 5))
	if rep := Compare(base, fileWith(res("a", 150, 120, 5)), GateOptions{}); rep.Failed() {
		t.Errorf("min-only excursion (median within tolerance) failed the gate:\n%s", rep.Render())
	}
	if rep := Compare(base, fileWith(res("a", 120, 150, 5)), GateOptions{}); rep.Failed() {
		t.Errorf("median-only excursion (min within tolerance) failed the gate:\n%s", rep.Render())
	}
	rep := Compare(base, fileWith(res("a", 150, 150, 5)), GateOptions{})
	if !rep.Failed() || kinds(rep)["regression"] != 1 {
		t.Errorf("min+median regression did not trip the gate:\n%s", rep.Render())
	}
}

// TestCompareMissingAndExtraCells: a benchmark that disappears from the
// current run is fatal (coverage silently lost); a new benchmark with no
// baseline is a warning only.
func TestCompareMissingAndExtraCells(t *testing.T) {
	base := fileWith(res("a", 100, 110, 5), res("gone", 50, 55, 1))
	cur := fileWith(res("a", 100, 110, 5), res("fresh", 70, 75, 2))
	rep := Compare(base, cur, GateOptions{})
	if !rep.Failed() {
		t.Fatalf("missing benchmark did not fail the gate:\n%s", rep.Render())
	}
	k := kinds(rep)
	if k["missing"] != 1 || k["new"] != 1 {
		t.Errorf("findings = %v, want one missing + one new", k)
	}
	for _, f := range rep.Findings {
		if f.Kind == "new" && f.Fatal {
			t.Errorf("new benchmark marked fatal: %+v", f)
		}
	}
	if !strings.Contains(rep.Render(), "benchgate: FAIL") {
		t.Errorf("render verdict:\n%s", rep.Render())
	}
}

// TestCompareEnvMismatchWarnsOnly: a baseline from different hardware
// warns but never fails on the fingerprint alone.
func TestCompareEnvMismatchWarnsOnly(t *testing.T) {
	base := fileWith(res("a", 100, 110, 5))
	base.Env = Env{CPUModel: "Paper EC2 fleet", GOARCH: "arm64", GOMAXPROCS: 64, GOOS: "plan9", GoVersion: "go1.0", NumCPU: 64}
	cur := fileWith(res("a", 100, 110, 5))
	rep := Compare(base, cur, GateOptions{})
	if rep.Failed() {
		t.Fatalf("env mismatch alone failed the gate:\n%s", rep.Render())
	}
	if kinds(rep)["env"] < 5 {
		t.Errorf("expected one env warning per differing field, got:\n%s", rep.Render())
	}
}

// TestCompareAllocGrowthIsHardFail: allocation growth fails even when
// wall time is flat; shrinkage and sub-slack jitter pass.
func TestCompareAllocGrowthIsHardFail(t *testing.T) {
	base := fileWith(res("a", 100, 110, 100))
	rep := Compare(base, fileWith(res("a", 100, 110, 120)), GateOptions{})
	if !rep.Failed() || kinds(rep)["alloc-regression"] != 1 {
		t.Fatalf("20%% alloc growth did not trip the gate:\n%s", rep.Render())
	}
	if rep := Compare(base, fileWith(res("a", 100, 110, 104)), GateOptions{}); rep.Failed() {
		t.Errorf("4%% alloc jitter (within the 5%% slack) failed the gate:\n%s", rep.Render())
	}
	if rep := Compare(base, fileWith(res("a", 100, 110, 50)), GateOptions{}); rep.Failed() {
		t.Errorf("alloc shrinkage failed the gate:\n%s", rep.Render())
	}
	// Half-an-alloc absolute slack: 0 -> 0.3 allocs/op is measurement
	// dust, not a regression.
	zero := fileWith(res("z", 100, 110, 0))
	if rep := Compare(zero, fileWith(res("z", 100, 110, 0.3)), GateOptions{}); rep.Failed() {
		t.Errorf("sub-alloc dust failed the gate:\n%s", rep.Render())
	}
}

// TestCompareImprovementIsAdvisory: a big speedup is surfaced (so the
// baseline gets refreshed) but does not fail.
func TestCompareImprovementIsAdvisory(t *testing.T) {
	base := fileWith(res("a", 1000, 1100, 5))
	rep := Compare(base, fileWith(res("a", 400, 450, 5)), GateOptions{})
	if rep.Failed() {
		t.Fatalf("improvement failed the gate:\n%s", rep.Render())
	}
	if kinds(rep)["improvement"] != 1 {
		t.Errorf("2.5x speedup not surfaced:\n%s", rep.Render())
	}
}

// TestCompareSlowdownCanary is the end-to-end canary at the package
// level: measure a real spec twice, the second time through a seeded 2x
// slowdown, and require the comparator to trip. The same invariant is
// exercised through the CLI by the CI benchgate job
// (`mlbench -benchgate -baseline ... -canary 2`).
func TestCompareSlowdownCanary(t *testing.T) {
	spec := Spec{
		Name: "canary:spin",
		N:    200,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				for j := 0; j < 2000; j++ {
					Sink += float64(j)
				}
			}
			return nil
		},
	}
	baseRes, err := Measure(spec, HarnessOptions{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := Measure(spec, HarnessOptions{Reps: 3, Slowdown: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(fileWith(baseRes), fileWith(slowRes), GateOptions{})
	if !rep.Failed() {
		t.Fatalf("seeded 2x slowdown did not trip the gate: base min %.0f, slow min %.0f\n%s",
			baseRes.MinNS, slowRes.MinNS, rep.Render())
	}
	// And the unseeded remeasurement passes against itself.
	again, err := Measure(spec, HarnessOptions{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep := Compare(fileWith(baseRes), fileWith(again), GateOptions{}); rep.Failed() {
		t.Errorf("self-remeasurement failed the gate:\n%s", rep.Render())
	}
}

// TestFileRoundTripAndSortedKeys locks the versioned schema: write,
// re-read, and require every json key to appear in sorted order so CI
// diffs of BENCH_host.json stay readable.
func TestFileRoundTripAndSortedKeys(t *testing.T) {
	f := NewFile()
	f.Benchmarks = []Result{res("a", 100, 110, 5)}
	f.Figures = []bench.HostBenchRecord{{Figure: "fig6", HostCPUs: 1, Machines: 100, VirtualSec: 10, WallSec: 2, Workers: 1}}
	path := filepath.Join(t.TempDir(), "BENCH_host.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SchemaVersion || len(got.Benchmarks) != 1 || len(got.Figures) != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, keys := range [][]string{
		{`"benchmarks"`, `"env"`, `"figures"`, `"version"`},
		{`"allocs_per_op"`, `"bytes_per_op"`, `"median_ns"`, `"min_ns"`, `"name"`, `"reps"`},
		{`"figure"`, `"host_cpus"`, `"machines"`, `"virtual_sec"`, `"wall_sec"`, `"workers"`},
	} {
		last := -1
		for _, k := range keys {
			i := strings.Index(string(data), k)
			if i < 0 {
				t.Fatalf("key %s missing from marshaled document:\n%s", k, data)
			}
			if i < last {
				t.Errorf("key %s out of sorted order in marshaled document", k)
			}
			last = i
		}
	}
}

// TestReadFileRejectsV1 gives the old bare-array BENCH_host.json a
// regeneration hint instead of a JSON type error.
func TestReadFileRejectsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_host.json")
	v1 := `[{"figure": "fig4b", "machines": 100, "workers": 1, "host_cpus": 1, "wall_sec": 42.5, "virtual_sec": 23950.5}]`
	if err := writeString(path, v1); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !strings.Contains(err.Error(), "schema v1") {
		t.Errorf("ReadFile on v1 array: %v, want schema v1 hint", err)
	}
	if err := writeString(path, `{"version": 99, "env": {}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("ReadFile on future version: %v, want version error", err)
	}
}
