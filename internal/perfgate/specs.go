package perfgate

import (
	"context"
	"fmt"
	"io"

	"mlbench/internal/bench"
	"mlbench/internal/datagen"
	"mlbench/internal/linalg"
	"mlbench/internal/models/hmm"
	"mlbench/internal/models/lda"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/trace"
	"mlbench/internal/workload"
)

// GateScaleDiv is the default scale divisor for the figure-cell specs:
// 50x less real data than the paper tables, because the gate measures
// host wall time of the simulation machinery, which scale barely moves.
const GateScaleDiv = 0.02

// Sink defeats dead-code elimination in the micro specs.
var Sink float64

// MicroSpecs benchmarks the host-side hot paths the simulation's
// wall time is made of: the Walker/Vose alias sampler that LDA/HMM
// resampling leans on, the Metropolis-Hastings token kernels behind the
// mhalias sampler tier, the Lasso Gram-matrix fold, the RunPhase barrier
// merge that every engine phase pays, the parameter-server shard
// aggregation fold, and the trace export.
func MicroSpecs() []Spec {
	return []Spec{
		aliasDrawSpec(),
		ldaMHDrawSpec(),
		hmmMHDrawSpec(),
		gramFoldSpec(),
		psShardFoldSpec(),
		runPhaseMergeSpec(),
		runPhaseWideSpec(),
		sourceStreamSpec(),
		traceExportSpec(),
		datagenCorpusSpec(),
	}
}

// MHDocLen is the document length shared by the MH micro specs and the
// speedup gate test: one op resamples this many tokens.
const MHDocLen = 64

// ldaResampleSpec builds an LDA resampling benchmark for the given tier
// and topic count: one op = redrawing every z of one MHDocLen-word
// document. The topic axis is where the tiers separate — the dense scan
// pays O(T) per token, the cached MH kernel O(1).
func ldaResampleSpec(name string, tier randgen.SamplerTier, topics, n int) Spec {
	h := lda.Hyper{T: topics, V: 2000, Alpha: 0.1, Beta: 0.1}
	rng := randgen.New(17)
	model := lda.Init(rng, h)
	model.RefreshProposals(h)
	words := make([]int, MHDocLen)
	for i := range words {
		words[i] = rng.Intn(h.V)
	}
	doc := lda.InitDoc(rng, words, h)
	return Spec{
		Name:   name,
		N:      n,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				model.ResampleZTier(rng, doc, tier)
			}
			Sink += doc.Theta[0]
			return nil
		},
	}
}

// ldaMHDrawSpec: the mhalias LDA token kernel (cycled doc/word proposals
// against the cached alias tables).
func ldaMHDrawSpec() Spec {
	return ldaResampleSpec("micro:lda-mh-draw", randgen.TierMHAlias, 1000, 10_000)
}

// hmmResampleSpec builds a K=100 HMM resampling benchmark for the given
// tier: one op = one parity sweep over an MHDocLen-word chain.
func hmmResampleSpec(name string, tier randgen.SamplerTier, n int) Spec {
	h := hmm.Hyper{K: 100, V: 2000, Alpha: 0.1, Beta: 0.1}
	rng := randgen.New(19)
	model := hmm.Init(rng, h)
	model.RefreshProposals()
	words := make([]int, MHDocLen)
	for i := range words {
		words[i] = rng.Intn(h.V)
	}
	states := hmm.InitStates(rng, words, h.K)
	var sc hmm.Scratch
	return Spec{
		Name:   name,
		N:      n,
		Warmup: 1,
		Run: func(n int) error {
			var acc int
			for i := 0; i < n; i++ {
				model.ResampleStatesTier(rng, words, states, i, tier, &sc)
				acc += states[0]
			}
			Sink += float64(acc)
			return nil
		},
	}
}

// hmmMHDrawSpec: the mhalias HMM state kernel (emission + transition
// proposals against the cached alias tables).
func hmmMHDrawSpec() Spec {
	return hmmResampleSpec("micro:hmm-mh-draw", randgen.TierMHAlias, 10_000)
}

// aliasDrawSpec: one op = one O(1) categorical draw from a K=100 alias
// table (the LDA/HMM per-word topic draw).
func aliasDrawSpec() Spec {
	rng := randgen.New(7)
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}
	table := randgen.NewAlias(weights)
	return Spec{
		Name:   "micro:alias-draw-k100",
		N:      500_000,
		Warmup: 1,
		Run: func(n int) error {
			var acc int
			for i := 0; i < n; i++ {
				acc += table.Draw(rng)
			}
			Sink += float64(acc)
			return nil
		},
	}
}

// gramFoldSpec: one op = folding one observation into the Lasso
// initialization statistics (X^T X outer product plus X^T y), p=64.
func gramFoldSpec() Spec {
	const p = 64
	rng := randgen.New(11)
	data := workload.GenRegressionWithBeta(rng, workload.SparseBeta(rng, p, 4), 32, 1)
	xtx := linalg.NewMat(p, p)
	xty := linalg.NewVec(p)
	return Spec{
		Name:   "micro:gram-fold-p64",
		N:      20_000,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				x := data.X[i%len(data.X)]
				xtx.AddOuter(1, x, x)
				for j := range x {
					xty[j] += x[j] * data.Y[i%len(data.Y)]
				}
			}
			Sink += xty[0]
			return nil
		},
	}
}

// psShardFoldSpec: one op = folding one 4096-element worker delta into a
// server shard's accumulator — the inner loop of every parameter-server
// barrier merge (LDA topic-word counts, HMM transition/emission counts).
func psShardFoldSpec() Spec {
	const dim = 4096
	rng := randgen.New(13)
	dst := make([]float64, dim)
	delta := make([]float64, dim)
	for i := range delta {
		delta[i] = rng.Float64()
	}
	return Spec{
		Name:   "micro:ps-shard-fold",
		N:      50_000,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				psengine.FoldDense(dst, delta)
			}
			Sink += dst[0]
			return nil
		},
	}
}

// runPhaseMergeSpec: one op = one RunPhaseFM over a 16-machine cluster —
// the host-goroutine fan-out, per-task Meter flush, and deterministic
// barrier merge every simulated phase pays.
func runPhaseMergeSpec() Spec {
	cfg := sim.DefaultConfig(16)
	cfg.Scale = 1000
	cl := sim.New(cfg)
	return Spec{
		Name:   "micro:runphase-merge-16m",
		N:      300,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				err := cl.RunPhaseFM("gate",
					func(machine int, m *sim.Meter) error {
						m.ChargeSec(1)
						return nil
					},
					func(machine int, m *sim.Meter) error { return nil })
				if err != nil {
					return err
				}
			}
			Sink += cl.Now()
			return nil
		},
	}
}

// sourceStreamSpec: one op = streaming a 65,536-element partition
// through a pooled chunked cursor at the default chunk size — the
// streamed-partition substrate's hot loop. The pool must hold allocs/op
// to a handful of chunk-buffer reuses; regressions here multiply across
// every machine of a 10,000-machine sweep, so the gate's hard allocs/op
// comparison is the backstop for the substrate (see also the absolute
// ceilings in TestStreamSubstrateAllocCeilings).
func sourceStreamSpec() Spec {
	const n = 65_536
	src := sim.NewSource(n, 0, func() func() float64 {
		rng := randgen.New(23)
		return func() float64 { return rng.Float64() }
	})
	return Spec{
		Name:   "micro:source-stream-64k",
		N:      200,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				sum := 0.0
				src.Each(func(v float64) { sum += v })
				Sink += sum
			}
			return nil
		},
	}
}

// runPhaseWideSpec: one op = one RunPhaseF over a 10,000-machine cluster
// on a bounded worker pool — the fan-out shape every fig-scale phase
// pays. Scratch reuse keeps the per-phase allocations flat; the gate's
// allocs/op hard fail catches a 10,000-machine sweep quietly going
// allocation-quadratic again.
func runPhaseWideSpec() Spec {
	cfg := sim.DefaultConfig(10_000)
	cfg.Scale = 1000
	cfg.HostWorkers = 4
	cl := sim.New(cfg)
	return Spec{
		Name:   "micro:runphase-wide-10km",
		N:      10,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				err := cl.RunPhaseF("gate", func(machine int, m *sim.Meter) error {
					m.ChargeBulk(1)
					return nil
				})
				if err != nil {
					return err
				}
			}
			Sink += cl.Now()
			return nil
		},
	}
}

// traceExportSpec: one op = serializing a ~600-record trace to both the
// Chrome trace-event JSON and CSV exporters.
func traceExportSpec() Spec {
	rec := trace.NewRecorder()
	for cell := 0; cell < 3; cell++ {
		rec.BeginCell(fmt.Sprintf("gate/cell%d", cell))
		for i := 0; i < 150; i++ {
			rec.AddSpan(fmt.Sprintf("phase%d", i%7), "phase", i%16, float64(i), 1.5, trace.A("tasks", 16))
			if i%3 == 0 {
				rec.AddEvent("mark", "task", i%16, float64(i), trace.A("n", float64(i)))
			}
			rec.Count(fmt.Sprintf("phase%d", i%7), "bytes", float64(i)*128)
		}
	}
	return Spec{
		Name:   "micro:trace-export",
		N:      30,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				if err := trace.WriteChrome(io.Discard, rec); err != nil {
					return err
				}
				if err := trace.WriteCSV(io.Discard, rec); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// datagenCorpusSpec: one op = materializing a small heavy-tailed corpus
// through the sharded dataset generator, canonical fingerprint included —
// the setup cost every datagen-backed run and the datagen-smoke CI job
// pay.
func datagenCorpusSpec() Spec {
	spec := datagen.DatasetSpec{
		Name: "gate-corpus", Seed: 29, Shards: 8,
		Corpus: &datagen.CorpusSpec{
			Docs: 64, Vocab: 2000, Topics: 8, ZipfS: 1.4, TopicSkew: 1,
			DocLen: datagen.DocLenSpec{Dist: "lognormal", Mean: 120, Sigma: 0.8},
		},
	}
	return Spec{
		Name:   "micro:datagen-corpus",
		N:      50,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				d, err := datagen.Generate(spec, 1)
				if err != nil {
					return err
				}
				Sink += float64(d.TokenCount())
			}
			return nil
		},
	}
}

// CellSpecs returns one spec per runnable figure cell at the gate's
// reduced scale: one op = the cell's full simulated run. Expected Fail
// cells (the paper's OOM entries) still measure — the wall time of
// reaching the OOM is as gateable as any other. The spec's Figure, cell
// selection, and trace fields are ignored: the gate enumerates every
// runnable cell, untraced.
func CellSpecs(rs bench.RunSpec) []Spec {
	o := rs.Options()
	o.Trace, o.TraceOut, o.TraceCSV, o.Metrics = false, "", "", false
	refs := bench.RunnableCellRefs(o)
	specs := make([]Spec, 0, len(refs))
	for _, ref := range refs {
		ref := ref
		specs = append(specs, Spec{
			Name: "cell:" + ref.String(),
			N:    1,
			Run: func(n int) error {
				for i := 0; i < n; i++ {
					if _, err := bench.RunSingleCell(context.Background(), ref, o); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	return specs
}

// CollectOptions configures one gate measurement pass.
type CollectOptions struct {
	// Spec configures the figure-cell runs (the same core.RunSpec the CLI
	// and the experiment service use); zero fields default to Iterations
	// 1, ScaleDiv GateScaleDiv, Seed 1.
	Spec bench.RunSpec
	// Harness tunes reps, the slowdown canary, and progress logging.
	Harness HarnessOptions
	// SkipMicros / SkipCells drop a section (both run by default).
	SkipMicros bool
	SkipCells  bool
}

func (o CollectOptions) withDefaults() CollectOptions {
	if o.Spec.Iterations == 0 {
		o.Spec.Iterations = 1
	}
	if o.Spec.ScaleDiv == 0 {
		o.Spec.ScaleDiv = GateScaleDiv
	}
	o.Spec = o.Spec.Normalize()
	return o
}

// Collect measures the configured spec sections into a fresh versioned
// document ready to be written as BENCH_host.json or compared against a
// baseline.
func Collect(o CollectOptions) (*File, error) {
	o = o.withDefaults()
	f := NewFile()
	var specs []Spec
	if !o.SkipMicros {
		specs = append(specs, MicroSpecs()...)
		specs = append(specs, ServingSpecs()...)
	}
	if !o.SkipCells {
		specs = append(specs, CellSpecs(o.Spec)...)
	}
	results, err := MeasureAll(specs, o.Harness)
	if err != nil {
		return nil, err
	}
	f.Benchmarks = results
	if !o.SkipMicros {
		slo, err := ServingSLOResults()
		if err != nil {
			return nil, err
		}
		f.Benchmarks = append(f.Benchmarks, slo...)
	}
	return f, nil
}
