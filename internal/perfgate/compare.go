package perfgate

import (
	"fmt"
	"sort"
	"strings"
)

// Default comparator slacks. DefaultTolerance is sized for shared CI
// runners and small VMs, where per-process wall-time drift of 1.3x on
// sub-millisecond cells is routine; the seeded 2x canary still clears it
// with a 1.43x margin. Allocation counts are deterministic, so their
// slack is tight.
const (
	DefaultTolerance      = 0.40
	DefaultAllocTolerance = 0.05
)

// GateOptions tunes the comparator's noise model.
type GateOptions struct {
	// Tolerance is the relative wall-time slack (default
	// DefaultTolerance): a benchmark regresses only when BOTH its
	// min-of-N and its median exceed the baseline by more than this
	// factor. The minimum is the least-perturbed repetition, the median
	// guards against one lucky rep; requiring both keeps scheduler noise
	// from failing the gate.
	Tolerance float64
	// AllocTolerance is the relative allocs/op slack (default
	// DefaultAllocTolerance). Allocation counts are deterministic, so
	// growth beyond this (plus an absolute slack of half an alloc for
	// tiny counts) is a hard failure even when wall time is within
	// Tolerance.
	AllocTolerance float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.Tolerance == 0 {
		o.Tolerance = DefaultTolerance
	}
	if o.AllocTolerance == 0 {
		o.AllocTolerance = DefaultAllocTolerance
	}
	return o
}

// Finding is one comparator observation. Fatal findings fail the gate.
type Finding struct {
	Kind   string // "regression", "alloc-regression", "missing", "new", "improvement", "env"
	Name   string // benchmark name, or "" for document-level findings
	Detail string
	Fatal  bool
}

// Report is the gate verdict: every finding, ordered fatal-first then by
// benchmark name.
type Report struct {
	Findings []Finding
}

// Failed reports whether any finding is fatal.
func (r *Report) Failed() bool {
	for _, f := range r.Findings {
		if f.Fatal {
			return true
		}
	}
	return false
}

// Render formats the report for the CLI: one line per finding plus a
// PASS/FAIL verdict line.
func (r *Report) Render() string {
	var b strings.Builder
	for _, f := range r.Findings {
		tag := "warn"
		if f.Fatal {
			tag = "FAIL"
		}
		name := f.Name
		if name == "" {
			name = "(document)"
		}
		fmt.Fprintf(&b, "%s  %-16s %s: %s\n", tag, f.Kind, name, f.Detail)
	}
	if r.Failed() {
		b.WriteString("benchgate: FAIL\n")
	} else {
		b.WriteString("benchgate: PASS\n")
	}
	return b.String()
}

// Compare judges the current measurement against the baseline. Missing
// benchmarks (coverage silently lost) are fatal; new benchmarks and
// environment mismatches are warnings; regressions follow GateOptions.
func Compare(baseline, current *File, o GateOptions) *Report {
	o = o.withDefaults()
	rep := &Report{}
	for _, d := range baseline.Env.Mismatch(current.Env) {
		rep.Findings = append(rep.Findings, Finding{
			Kind:   "env",
			Detail: d + " (wall times may not be comparable)",
		})
	}
	base := map[string]Result{}
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	cur := map[string]Result{}
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	for _, name := range sortedKeys(base) {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{
				Kind: "missing", Name: name, Fatal: true,
				Detail: "benchmark in baseline but not in current run — gate coverage lost",
			})
			continue
		}
		rep.Findings = append(rep.Findings, judge(b, c, o)...)
	}
	for _, name := range sortedKeys(cur) {
		if _, ok := base[name]; !ok {
			rep.Findings = append(rep.Findings, Finding{
				Kind: "new", Name: name,
				Detail: fmt.Sprintf("no baseline entry; current min %.0f ns/op — regenerate the baseline to gate it", cur[name].MinNS),
			})
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Fatal != rep.Findings[j].Fatal {
			return rep.Findings[i].Fatal
		}
		return false
	})
	return rep
}

// judge compares one benchmark pair under the noise model.
func judge(b, c Result, o GateOptions) []Finding {
	var out []Finding
	slack := 1 + o.Tolerance
	if b.MinNS > 0 && c.MinNS > b.MinNS*slack && c.MedianNS > b.MedianNS*slack {
		out = append(out, Finding{
			Kind: "regression", Name: b.Name, Fatal: true,
			Detail: fmt.Sprintf("min %.0f -> %.0f ns/op (%.2fx), median %.0f -> %.0f ns/op (%.2fx), tolerance %.0f%%",
				b.MinNS, c.MinNS, c.MinNS/b.MinNS, b.MedianNS, c.MedianNS, c.MedianNS/b.MedianNS, o.Tolerance*100),
		})
	}
	if c.AllocsPerOp > b.AllocsPerOp*(1+o.AllocTolerance)+0.5 {
		out = append(out, Finding{
			Kind: "alloc-regression", Name: b.Name, Fatal: true,
			Detail: fmt.Sprintf("allocs/op %.1f -> %.1f (%.0f%% tolerance is hard)", b.AllocsPerOp, c.AllocsPerOp, o.AllocTolerance*100),
		})
	}
	if b.MinNS > 0 && c.MinNS*slack < b.MinNS && c.MedianNS*slack < b.MedianNS {
		out = append(out, Finding{
			Kind: "improvement", Name: b.Name,
			Detail: fmt.Sprintf("min %.0f -> %.0f ns/op (%.2fx) — consider refreshing the baseline", b.MinNS, c.MinNS, c.MinNS/b.MinNS),
		})
	}
	return out
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
