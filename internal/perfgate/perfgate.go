// Package perfgate is the repo's performance-regression gate: the first
// closed feedback loop between the BENCH_host.json trajectory and the
// merge decision. The paper's entire contribution is a table of numbers,
// and three layers of this reproduction (fault recovery, host-parallel
// execution, virtual-clock tracing) can each silently shift those
// numbers or the host wall time they cost to produce. This package gates
// both directions of drift:
//
//   - Golden-figure snapshots (snapshot.go): every figure's virtual-clock
//     table — per-iteration and init times, Fail cells, recovery notes —
//     serialized as CSV under testdata/golden/ and compared byte-for-byte
//     by TestGoldenFigures. Virtual results are fully deterministic, so
//     any diff is a real semantic change; acknowledge one by regenerating
//     with `go test ./internal/perfgate -run TestGoldenFigures -update`.
//
//   - A host-wall benchmark harness (harness.go, specs.go): every figure
//     cell at reduced scale plus microbenchmarks for the hot paths (alias
//     sampler, Lasso Gram fold, RunPhase barrier merge, trace export),
//     run with warmups and N repetitions, recording wall ns/op and
//     allocs/op next to an environment fingerprint.
//
//   - A statistical comparator (compare.go): min-of-N plus median with a
//     configurable noise tolerance, a hard fail on allocs/op growth, and
//     warn-only environment mismatches, exposed as
//     `mlbench gate -baseline <json>` which exits nonzero on
//     regression.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"

	"mlbench/internal/bench"
	"mlbench/internal/fsutil"
)

// SchemaVersion is the BENCH_host.json document version. Version 1 was a
// bare array of hostbench records with unsorted keys; version 2 is the
// File document below, whose struct fields are all declared in json-key
// order so encoding/json emits sorted keys and two CI runs diff cleanly.
const SchemaVersion = 2

// File is the versioned BENCH_host.json document. The figures section
// holds `mlbench bench` wall-vs-virtual speedup records; the benchmarks
// section holds the `mlbench gate` harness results that the comparator
// consumes as a baseline.
type File struct {
	Benchmarks []Result                `json:"benchmarks,omitempty"`
	Env        Env                     `json:"env"`
	Figures    []bench.HostBenchRecord `json:"figures,omitempty"`
	Version    int                     `json:"version"`
}

// NewFile returns an empty document stamped with the current schema
// version and host environment.
func NewFile() *File {
	return &File{Env: CaptureEnv(), Version: SchemaVersion}
}

// Marshal renders the document as indented JSON with a trailing newline.
func (f *File) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the document to path, creating parent directories as
// needed (a -benchout path into a fresh results directory must not fail
// with a bare open error).
func (f *File) WriteFile(path string) error {
	data, err := f.Marshal()
	if err != nil {
		return err
	}
	if err := fsutil.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perfgate: write %s: %w", path, err)
	}
	return nil
}

// ReadFile parses a versioned BENCH_host.json. A version 1 file (the
// pre-gate bare array) is rejected with a regeneration hint rather than
// a JSON type error.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		var v1 []bench.HostBenchRecord
		if json.Unmarshal(data, &v1) == nil {
			return nil, fmt.Errorf("perfgate: %s is a schema v1 array; regenerate it with mlbench bench or mlbench gate", path)
		}
		return nil, fmt.Errorf("perfgate: parse %s: %w", path, err)
	}
	if f.Version != SchemaVersion {
		return nil, fmt.Errorf("perfgate: %s has schema version %d, want %d; regenerate the baseline", path, f.Version, SchemaVersion)
	}
	return &f, nil
}
