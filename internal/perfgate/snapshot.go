package perfgate

import (
	"encoding/csv"
	"strconv"
	"strings"

	"mlbench/internal/bench"
)

// SnapshotCSV serializes a rendered figure table as the golden-snapshot
// CSV: one record per cell in rendering order, full-precision float
// fields, and the cell notes (fault observations, recovery spans, OOM
// text) joined into the last column. Virtual-clock results are fully
// deterministic — independent of host worker count, wall load, and rep
// order — so the serialization is byte-stable and any diff against
// testdata/golden/ is a real semantic change to the reproduction.
func SnapshotCSV(t *bench.Table) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write([]string{"figure", "row", "col", "status", "iter_sec", "init_sec", "notes"})
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			cell := t.Cells[r][c]
			status := "ok"
			iter, init := g(cell.IterSec), g(cell.InitSec)
			switch {
			case cell.Skipped:
				status, iter, init = "skip", "", ""
			case cell.Failed:
				status, iter, init = "fail", "", ""
			}
			w.Write([]string{t.ID, r, c, status, iter, init, strings.Join(cell.Notes, "; ")})
		}
	}
	w.Flush()
	return b.String()
}

// g formats a float with full round-trip precision.
func g(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
