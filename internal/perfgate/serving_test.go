package perfgate

import (
	"strings"
	"testing"
)

// TestServingSLOResultsDeterministic: the serving section's slo: entries
// come from a fake-clock replay, so two independent collections must be
// identical to the bit — that is what lets the gate compare them with
// zero tolerance for drift — and a self-comparison through the real
// comparator must pass.
func TestServingSLOResultsDeterministic(t *testing.T) {
	a, err := ServingSLOResults()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServingSLOResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("entry %d drifted between replays: %+v vs %+v", i, a[i], b[i])
		}
		if !strings.HasPrefix(a[i].Name, "slo:") {
			t.Errorf("entry %d name %q missing slo: prefix", i, a[i].Name)
		}
		if a[i].MinNS <= 0 || a[i].MedianNS != a[i].MinNS {
			t.Errorf("entry %s not pinned: %+v", a[i].Name, a[i])
		}
	}

	base, cur := NewFile(), NewFile()
	base.Benchmarks, cur.Benchmarks = a, b
	if rep := Compare(base, cur, GateOptions{}); rep.Failed() {
		t.Errorf("self-comparison of the serving entries failed:\n%s", rep.Render())
	}
}

// TestServingReplaySpecMeasures runs the timed replay spec through the
// harness once: the driver loop, fake server, and timeline aggregation
// all execute inside a measured op.
func TestServingReplaySpecMeasures(t *testing.T) {
	specs := ServingSpecs()
	if len(specs) != 1 || specs[0].Name != "micro:loadgen-replay" {
		t.Fatalf("unexpected serving specs: %+v", specs)
	}
	r, err := Measure(specs[0], HarnessOptions{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.MinNS <= 0 {
		t.Errorf("replay spec measured %v ns/op", r.MinNS)
	}
}
