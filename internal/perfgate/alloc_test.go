package perfgate

import (
	"testing"

	"mlbench/internal/randgen"
	"mlbench/internal/sim"
)

// Absolute allocs/op ceilings for the streamed-partition substrate.
// The baseline comparison in Compare only catches drift between two gate
// runs; these ceilings pin the substrate's allocation behaviour in
// absolute terms, so a change that reintroduces per-element or
// per-machine-quadratic allocation fails `go test` directly with no
// baseline file needed.

// Streaming a partition through a pooled cursor must not allocate per
// element: one warm pass over 64k elements is a cursor, a pooled buffer
// hand-back, and change.
func TestStreamSubstrateAllocCeilings(t *testing.T) {
	const n = 65_536
	src := sim.NewSource(n, 0, func() func() float64 {
		rng := randgen.New(23)
		return func() float64 { return rng.Float64() }
	})
	src.Each(func(float64) {}) // warm the chunk pool
	perPass := testing.AllocsPerRun(10, func() {
		sum := 0.0
		src.Each(func(v float64) { sum += v })
		Sink += sum
	})
	// 16 chunks/pass; the budget is a cursor + generator + a few pool
	// round trips, far under one alloc per chunk boundary would imply.
	if perPass > 32 {
		t.Errorf("streaming 64k elements cost %.0f allocs, ceiling 32: the chunk pool is not being reused", perPass)
	}

	// A wide phase must stay O(machines) with a small constant: the task
	// list plus its closures, with the per-phase working set recycled via
	// the scratch stack.
	const machines = 10_000
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 1000
	cfg.HostWorkers = 4
	cl := sim.New(cfg)
	phase := func() {
		err := cl.RunPhaseF("gate", func(machine int, m *sim.Meter) error {
			m.ChargeBulk(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	phase() // warm the scratch stack
	perPhase := testing.AllocsPerRun(5, phase)
	if perPhase > 5*machines {
		t.Errorf("10k-machine phase cost %.0f allocs (%.1f/machine), ceiling %d: phase working sets are not being recycled",
			perPhase, perPhase/machines, 5*machines)
	}
}
