package perfgate

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mlbench/internal/bench"
)

var update = flag.Bool("update", false, "rewrite the golden figure snapshots under testdata/golden/")

// goldenOpts are the fixed options every golden snapshot is recorded
// under. Changing any of them invalidates every golden file — regenerate
// with -update and review the diff.
func goldenOpts(workers int) bench.Options {
	return bench.Options{Iterations: 1, Seed: 1, ScaleDiv: GateScaleDiv, HostWorkers: workers}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".csv")
}

// TestGoldenFigures is the figure-drift gate: every figure's
// virtual-clock table (per-iteration and init cells, Fail cells,
// recovery notes) must serialize byte-identically to its golden CSV, at
// 1 host worker and at 8. An intentional change to any simulated number
// is acknowledged by regenerating:
//
//	go test ./internal/perfgate -run TestGoldenFigures -update
//
// and reviewing the golden diff in the PR — EXPERIMENTS.md can no longer
// rot silently.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep; run without -short (the CI test and benchgate jobs do)")
	}
	for _, f := range bench.Figures(goldenOpts(1)) {
		id := f.ID
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			snap := func(workers int) string {
				o := goldenOpts(workers)
				fig := bench.FigureByID(id, o)
				if fig == nil {
					t.Fatalf("figure %s not registered", id)
				}
				return SnapshotCSV(fig.Run(o))
			}
			got := snap(1)
			if par := snap(8); par != got {
				t.Fatalf("figure %s snapshot differs between 1 and 8 host workers:\n%s\n--- vs ---\n%s", id, got, par)
			}
			path := goldenPath(id)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden snapshot for %s (run with -update to record one): %v", id, err)
			}
			if got != string(want) {
				t.Errorf("figure %s drifted from its golden snapshot %s.\nIf intentional, regenerate with:\n  go test ./internal/perfgate -run TestGoldenFigures -update\ngot:\n%s\nwant:\n%s",
					id, path, got, want)
			}
		})
	}
}

// TestSnapshotCSVShape locks the serialization itself: header, one
// record per cell, statuses, and full-precision floats.
func TestSnapshotCSVShape(t *testing.T) {
	tbl := &bench.Table{
		ID:   "figX",
		Cols: []string{"5m", "20m"},
		Rows: []string{"Engine A", "Engine B"},
		Cells: map[string]map[string]bench.Cell{
			"Engine A": {
				"5m":  {IterSec: 1234.5678901234567, InitSec: 1.5},
				"20m": {Failed: true, Notes: []string{"OOM: worker 3", "fault: crash"}},
			},
			"Engine B": {
				"5m":  {Skipped: true},
				"20m": {IterSec: 60, InitSec: 0},
			},
		},
	}
	got := SnapshotCSV(tbl)
	want := "figure,row,col,status,iter_sec,init_sec,notes\n" +
		"figX,Engine A,5m,ok,1234.5678901234567,1.5,\n" +
		"figX,Engine A,20m,fail,,,OOM: worker 3; fault: crash\n" +
		"figX,Engine B,5m,skip,,,\n" +
		"figX,Engine B,20m,ok,60,0,\n"
	if got != want {
		t.Errorf("SnapshotCSV:\n%s\nwant:\n%s", got, want)
	}
}
