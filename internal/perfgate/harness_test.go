package perfgate

import (
	"errors"
	"os"
	"strings"
	"testing"

	"mlbench/internal/bench"
)

func writeString(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}

// sinkBytes forces the harness test's per-op allocation to escape to the
// heap so the Mallocs counter sees it.
var sinkBytes []byte

// TestMeasureBasics: min <= median, allocs accounted per op, warmups
// run, and the slowdown multiplier scales the reported wall times.
func TestMeasureBasics(t *testing.T) {
	runs := 0
	spec := Spec{
		Name:   "t:allocs",
		N:      1000,
		Warmup: 2,
		Run: func(n int) error {
			runs++
			for i := 0; i < n; i++ {
				sinkBytes = make([]byte, 32)
			}
			return nil
		},
	}
	r, err := Measure(spec, HarnessOptions{Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2+5 {
		t.Errorf("runs = %d, want warmup 2 + reps 5", runs)
	}
	if r.Reps != 5 || r.Name != "t:allocs" {
		t.Errorf("result metadata: %+v", r)
	}
	if r.MinNS <= 0 || r.MedianNS < r.MinNS {
		t.Errorf("min %.1f, median %.1f: want 0 < min <= median", r.MinNS, r.MedianNS)
	}
	// One 32-byte make per op: at least one alloc and 32 bytes each.
	if r.AllocsPerOp < 1 || r.AllocsPerOp > 3 {
		t.Errorf("allocs/op = %.2f, want ~1", r.AllocsPerOp)
	}
	if r.BytesPerOp < 32 {
		t.Errorf("bytes/op = %.2f, want >= 32", r.BytesPerOp)
	}
	slow, err := Measure(spec, HarnessOptions{Reps: 5, Slowdown: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same code measured under the 2x canary must report clearly more
	// than the tolerance band above the honest run.
	if slow.MinNS < r.MinNS*1.4 {
		t.Errorf("canary min %.1f not ~2x honest min %.1f", slow.MinNS, r.MinNS)
	}
}

func TestMeasureErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Measure(Spec{Name: "t:err", N: 1, Run: func(int) error { return boom }}, HarnessOptions{Reps: 2})
	if !errors.Is(err, boom) {
		t.Errorf("spec error not propagated: %v", err)
	}
	if _, err := Measure(Spec{Name: "t:zero", N: 0, Run: func(int) error { return nil }}, HarnessOptions{}); err == nil {
		t.Error("N=0 spec accepted")
	}
}

// TestMicroSpecsMeasure runs every hot-path micro spec once through the
// harness: all paths are present and produce positive timings.
func TestMicroSpecsMeasure(t *testing.T) {
	specs := MicroSpecs()
	want := []string{"micro:alias-draw-k100", "micro:lda-mh-draw", "micro:hmm-mh-draw", "micro:gram-fold-p64", "micro:ps-shard-fold", "micro:runphase-merge-16m", "micro:runphase-wide-10km", "micro:source-stream-64k", "micro:trace-export", "micro:datagen-corpus"}
	if len(specs) != len(want) {
		t.Fatalf("MicroSpecs = %d specs, want %d", len(specs), len(want))
	}
	results, err := MeasureAll(specs, HarnessOptions{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Name != want[i] {
			t.Errorf("spec %d = %s, want %s", i, r.Name, want[i])
		}
		if r.MinNS <= 0 {
			t.Errorf("%s: min %.2f ns/op, want > 0", r.Name, r.MinNS)
		}
	}
}

// TestCollectCells runs a real gate collection restricted to the micro
// section plus a spot check that cell specs wire through to bench.
func TestCollectCells(t *testing.T) {
	f, err := Collect(CollectOptions{SkipCells: true, Harness: HarnessOptions{Reps: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// 10 simulation micros + the timed loadgen replay + 5 deterministic
	// slo: serving entries.
	if f.Version != SchemaVersion || len(f.Benchmarks) != 16 {
		t.Fatalf("micro-only collection: version %d, %d benchmarks", f.Version, len(f.Benchmarks))
	}
	if f.Env.GoVersion == "" || f.Env.NumCPU <= 0 {
		t.Errorf("env fingerprint not captured: %+v", f.Env)
	}
	specs := CellSpecs(bench.RunSpec{Figure: "fig6", Iterations: 1, ScaleDiv: GateScaleDiv, Seed: 1})
	if len(specs) < 100 {
		t.Fatalf("CellSpecs = %d, want every runnable figure cell", len(specs))
	}
	var spot *Spec
	for i := range specs {
		if specs[i].Name == "cell:fig6:Spark (Java):5m" {
			spot = &specs[i]
		}
	}
	if spot == nil {
		t.Fatal("fig6 cell spec missing")
	}
	r, err := Measure(*spot, HarnessOptions{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.MinNS <= 0 || !strings.HasPrefix(r.Name, "cell:") {
		t.Errorf("cell measurement: %+v", r)
	}
}
