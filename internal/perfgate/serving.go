package perfgate

import (
	"fmt"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/loadgen"
	"mlbench/internal/serve"
)

// servingProfile is the fixed in-memory traffic profile behind the
// serving section of the gate: a short ramp into a bursty plateau with a
// hot (cacheable) and a cold (unique-seed) template, sized so the bursts
// overflow the fake server's queue and the autoscaler has to act. It
// lives in code rather than under profiles/ so the gate cannot drift
// apart from a checked-in file it does not own.
func servingProfile() core.Profile {
	return core.Profile{
		Name:        "gate-replay",
		Compression: 100,
		BucketSec:   5,
		Seed:        1,
		GraceSec:    10,
		Templates: []core.Template{
			{Name: "hot", Weight: 2, Spec: core.RunSpec{Figure: "fig1a", Iterations: 1}},
			{Name: "cold", Weight: 1, UniqueSeed: true, Spec: core.RunSpec{Figure: "fig1b", Iterations: 1}},
		},
		Phases: []core.Phase{
			{Name: "ramp", DurationSec: 10, Pattern: core.PatternRamp, RPS: 1, ToRPS: 4},
			{Name: "burst", DurationSec: 10, Pattern: core.PatternBurst, RPS: 1,
				BurstRPS: 12, BurstEverySec: 5, BurstLenSec: 2},
		},
	}.Normalize()
}

// servingReplay runs the gate profile once on a fresh fake clock and
// fake autoscaling server. Everything is deterministic: the same binary
// always produces the identical Summary.
func servingReplay() (*loadgen.Result, error) {
	clock := loadgen.NewFakeClock(time.Unix(1_700_000_000, 0))
	fs := loadgen.NewFakeServer(clock, loadgen.FakeServerConfig{
		QueueDepth:    2,
		RetryAfterSec: 1,
		ServiceTime:   10 * time.Millisecond, // 1 profile second at 100x
		Autoscale: &serve.AutoscaleConfig{
			Min: 1, Max: 4,
			Interval: 50 * time.Millisecond,
			Cooldown: 100 * time.Millisecond,
		},
	})
	return loadgen.Run(servingProfile(), loadgen.Options{
		BaseURL: "http://gate",
		Client:  loadgen.HandlerClient(fs.Handler()),
		Clock:   clock,
	})
}

// servingReplaySpec: one op = one full replay of the gate profile
// (schedule expansion, the discrete-event driver loop, every HTTP round
// trip through the in-process transport, timeline aggregation). This is
// the wall-time cost of the serving test battery itself, so a driver
// slowdown shows up in the gate like any other hot path.
func servingReplaySpec() Spec {
	return Spec{
		Name:   "micro:loadgen-replay",
		N:      10,
		Warmup: 1,
		Run: func(n int) error {
			for i := 0; i < n; i++ {
				res, err := servingReplay()
				if err != nil {
					return err
				}
				Sink += res.Summary.P99Ms
			}
			return nil
		},
	}
}

// ServingSpecs returns the timed serving-section benchmarks.
func ServingSpecs() []Spec {
	return []Spec{servingReplaySpec()}
}

// ServingSLOResults replays the gate profile once and pins its key
// serving outcomes as synthetic benchmark entries. Unlike the timed
// micros these are fully deterministic (fake clock, discrete-event
// server), so a baseline comparison passes exactly until a change to
// serve, loadgen, or the autoscaler policy moves one of them — at which
// point the gate diff names precisely which serving behavior shifted.
// The p99 entry is stored in nanoseconds; the count entries carry the
// raw count in both wall-time fields, which the ratio-based comparator
// judges the same way.
func ServingSLOResults() ([]Result, error) {
	res, err := servingReplay()
	if err != nil {
		return nil, fmt.Errorf("perfgate: serving replay: %w", err)
	}
	s := res.Summary
	pin := func(name string, v float64) Result {
		return Result{Name: name, Reps: 1, MinNS: v, MedianNS: v}
	}
	out := []Result{
		pin("slo:replay-p99", s.P99Ms*1e6),
		pin("slo:replay-completed", float64(s.Completed)),
		pin("slo:replay-rejected-429", float64(s.Rejected429)),
		pin("slo:replay-cache-hits", float64(s.CacheHits)),
		pin("slo:replay-max-workers", float64(s.MaxWorkers)),
	}
	for _, r := range out {
		if r.MinNS <= 0 {
			return nil, fmt.Errorf("perfgate: serving gate entry %s is zero — the profile no longer exercises it", r.Name)
		}
	}
	return out, nil
}
