package bench

import (
	"fmt"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/task"
)

// The fig7 family measures what the paper only asserts: each platform's
// fault-tolerance story has a price, and each recovers in a different
// shape. All three figures run the 10-dimensional GMM — the one workload
// every platform completes — with deterministic crashes injected mid-run.
// There are no paper reference times (the paper never injected a
// failure), so the paper column renders as "?".

// fig7RunFn picks the GMM runner for a recovery-figure row. The graph
// engines use their super-vertex implementations — the variants that
// survive at every cluster size in the paper.
func fig7RunFn(o Options, platform string) runFn {
	switch platform {
	case "simsql":
		cfg := gmmCfg(o, 10, false)
		return func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, cfg) }
	case "spark":
		cfg := gmmCfg(o, 10, false)
		return func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, cfg, sim.ProfilePython) }
	case "graphlab":
		cfg := gmmCfg(o, 10, true)
		return func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, cfg) }
	case "giraph":
		cfg := gmmCfg(o, 10, true)
		return func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, cfg) }
	}
	return nil
}

// fig7Rows is the platform lineup shared by the recovery figures.
var fig7Rows = []struct{ label, platform string }{
	{"SimSQL", "simsql"},
	{"Spark (Python)", "spark"},
	{"GraphLab (Super Vertex)", "graphlab"},
	{"Giraph (Super Vertex)", "giraph"},
}

// fig7Faults resolves a recovery figure's fault settings: the user's
// -failures/-failat/-straggle flags win; otherwise the figure's default
// applies. Either way the checkpointing defaults are filled in.
func fig7Faults(o Options, def FaultConfig) FaultConfig {
	fc := o.Faults
	if !fc.Active() {
		fc = def
	}
	return fc.withFaultDefaults()
}

// fig7 is the headline recovery table: per-platform iteration time with
// machine crashes injected mid-run, across cluster sizes.
func fig7(o Options) *Figure {
	fc := fig7Faults(o, FaultConfig{Failures: 1})
	f := &Figure{
		ID: "fig7",
		Title: fmt.Sprintf("GMM 10d under failure: %d machine crash(es) mid-run (avg time per iteration, init in parens)",
			fc.Failures),
	}
	for _, r := range fig7Rows {
		run := fig7RunFn(o, r.platform)
		machines := []int{5, 20, 100}
		cells := make([]cellSpec, len(machines))
		for i, m := range machines {
			cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: gmmScale(10), run: run, faults: &fc}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}

// fig7b sweeps the failure count at a fixed cluster size. The 0-failure
// column still runs with checkpointing enabled, so the delta against the
// failure columns separates steady-state checkpoint cost from recovery
// cost.
func fig7b(o Options) *Figure {
	f := &Figure{
		ID:    "fig7b",
		Title: "GMM 10d, 20 machines: iteration time vs number of failures (checkpointing on in all columns)",
	}
	for _, r := range fig7Rows {
		run := fig7RunFn(o, r.platform)
		counts := []int{0, 1, 2}
		cells := make([]cellSpec, len(counts))
		for i, n := range counts {
			fc := o.Faults.withFaultDefaults()
			fc.Failures = n
			cells[i] = cellSpec{col: fmt.Sprintf("%d failures", n), machines: 20, scale: gmmScale(10), run: run, faults: &fc}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}

// fig7c ablates the checkpoint/snapshot interval for the rollback
// engines under one crash: frequent checkpoints pay every superstep but
// bound the rollback; none at all replays the whole run.
func fig7c(o Options) *Figure {
	f := &Figure{
		ID:    "fig7c",
		Title: "Checkpoint-interval ablation: GMM 10d, 20 machines, 1 crash (interval in supersteps/rounds)",
	}
	rows := []struct{ label, platform string }{
		{"Giraph (Super Vertex)", "giraph"},
		{"GraphLab (Super Vertex)", "graphlab"},
	}
	for _, r := range rows {
		run := fig7RunFn(o, r.platform)
		intervals := []int{-1, 1, 3, 10}
		cells := make([]cellSpec, len(intervals))
		for i, k := range intervals {
			fc := o.Faults.withFaultDefaults()
			if fc.Failures == 0 {
				fc.Failures = 1
			}
			fc.BSPCheckpointEvery = k
			fc.GASSnapshotEvery = k
			col := fmt.Sprintf("every %d", k)
			if k < 0 {
				col = "no ckpt"
			}
			cells[i] = cellSpec{col: col, machines: 20, scale: gmmScale(10), run: run, faults: &fc}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}
