package bench

import (
	"mlbench/internal/psengine"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/tasks/task"
)

// figSkew measures heavy-tailed data skew: the LDA task on all five
// engines (super-vertex variants for the graph engines, as in fig-ps),
// re-run under the datagen skew scenarios. The "paper" column is the
// historical balanced corpus; "skew-light" and "skew-heavy" reshape the
// word frequencies (Zipf exponent), the topic prior, and the document
// lengths (lognormal tail) while keeping the paper's dimensions, so the
// columns isolate how each engine's cost model responds to realistic
// long-tailed text. The paper never ran these corpora, so the paper
// column renders as "?" and the table is judged by the perf gate's
// golden snapshots instead.
func figSkew(o Options) *Figure {
	ps := psengine.Config{Shards: o.PSShards, Staleness: o.PSStaleness}
	py := sim.ProfilePython

	cols := []struct{ name, dataset string }{
		{"paper", ""},
		{"skew-light", "skew-light"},
		{"skew-heavy", "skew-heavy"},
	}
	rows := []struct{ label, platform string }{
		{"SimSQL", "simsql"},
		{"Spark (Python)", "spark"},
		{"GraphLab (Super Vertex)", "graphlab"},
		{"Giraph (Super Vertex)", "giraph"},
		{"Param Server", "ps"},
	}
	f := &Figure{
		ID:    "fig-skew",
		Title: "LDA under heavy-tailed corpus skew (5 machines; datagen scenarios per column)",
	}
	for _, r := range rows {
		platform := r.platform
		cells := make([]cellSpec, len(cols))
		for i, c := range cols {
			cfg := ldaCfg(o)
			cfg.Dataset = c.dataset
			var run runFn
			switch platform {
			case "simsql":
				run = func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSimSQL(cl, cfg, ldatask.VariantSV) }
			case "spark":
				run = func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSpark(cl, cfg, ldatask.VariantSV, py) }
			case "graphlab":
				run = func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGraphLab(cl, cfg) }
			case "giraph":
				run = func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGiraph(cl, cfg, ldatask.VariantSV) }
			case "ps":
				run = func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunPS(cl, cfg, ps) }
			}
			cells[i] = cellSpec{col: c.name, machines: 5, scale: ldaScale, run: run}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}
