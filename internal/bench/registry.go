package bench

import (
	"context"
	"fmt"

	"mlbench/internal/faults"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/hmmtask"
	"mlbench/internal/tasks/imputetask"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/tasks/task"
	"mlbench/internal/trace"
)

// Options tunes a harness run.
type Options struct {
	// Iterations per chain (the paper averages the first five; the
	// default here is 2 to keep real wall time short — virtual times are
	// per-iteration averages either way).
	Iterations int
	// ScaleDiv divides the default scale factors, increasing the real
	// data volume (1 = defaults; 10 = 10x more real elements).
	ScaleDiv float64
	// Seed overrides the cluster seed.
	Seed uint64
	// Trace records each cell's five most expensive simulation phases in
	// its notes (the "-trace" CLI flag).
	Trace bool
	// TraceOut writes the full structured trace of every measured run as
	// Chrome trace-event JSON to the given path (the "-traceout" CLI
	// flag); load it in chrome://tracing or https://ui.perfetto.dev.
	TraceOut string
	// TraceCSV writes the same span/event stream as CSV (the "-tracecsv"
	// CLI flag).
	TraceCSV string
	// Metrics collects the per-engine/cell/phase metrics registry; render
	// it from the Recorder (the "-metrics" CLI flag).
	Metrics bool
	// Recorder, when non-nil, receives every cell's trace instead of a
	// figure-owned recorder — set it to aggregate multiple figures into
	// one export, as cmd/mlbench does. When nil and any of Trace,
	// TraceOut, TraceCSV, or Metrics is set, Figure.Run makes its own
	// recorder and handles the exports itself.
	Recorder *trace.Recorder
	// Faults injects machine crashes and stragglers into every cell (the
	// "-failures"/"-failat"/"-straggle" CLI flags). Individual figures may
	// override it per cell — the recovery figures (fig7 family) do.
	Faults FaultConfig
	// PSShards is the parameter-server shard count for fig-ps (the
	// "-shards" CLI flag); 0 means one shard per machine.
	PSShards int
	// PSStaleness is the parameter-server staleness bound s for fig-ps
	// (the "-staleness" CLI flag); 0 runs synchronous, BSP-equivalent
	// cycles.
	PSStaleness int
	// Sampler is the LDA/HMM token hot-path tier (the "-sampler" CLI
	// flag): the dense scan (default, byte-identical to the historical
	// sampler), the per-element exact alias draw, or the cached
	// Metropolis-Hastings kernel. It changes every sampled stream, so it
	// is part of the run identity (RunSpec cache key).
	Sampler randgen.SamplerTier
	// Dataset is a datagen scenario name (the "-dataset" CLI flag)
	// reshaping every task's synthetic data: word/topic skew and
	// doc-length law for the text tasks, covariance conditioning and
	// mixture imbalance for GMM, regressor correlation for Lasso, and
	// partition imbalance for all of them. Empty runs the historical
	// paper-shape generators, byte-identical to before the knob existed.
	// It changes the sampled data, so it is part of the run identity
	// (RunSpec cache key).
	Dataset string
	// HostWorkers bounds the host goroutines executing simulated machines
	// concurrently (the "-workers" CLI flag): 0 uses GOMAXPROCS, 1 runs
	// sequentially. Virtual-clock results are identical for any value.
	HostWorkers int
	// Machines is the fig-scale sweep's top machine count (the "-machines"
	// CLI flag); 0 means 10,000. The sweep's columns run Machines/100,
	// Machines/10, and Machines simulated machines. It changes the
	// rendered table, so it is part of the run identity (RunSpec cache
	// key).
	Machines int
	// ChunkElems bounds the elements resident per streamed-partition
	// cursor (the "-chunk" CLI flag); 0 uses sim.DefaultChunkElems. Purely
	// a host-memory knob: results are byte-identical at any value, so it
	// is excluded from the cache key.
	ChunkElems int
	// Ctx, when non-nil, cancels the run: probe and measured clusters
	// check it between simulation tasks, so an abandoned run stops
	// mid-phase. Cancellation surfaces as an error from RunContext /
	// RunSingleCell (never as a "Fail" cell). Nil means background.
	Ctx context.Context
	// Progress, when non-nil, receives one event per phase barrier of
	// every measured (not probe) run. Events arrive host-sequentially in
	// deterministic order and carry the virtual clock; the serving layer
	// streams them to clients.
	Progress func(ProgressEvent)
}

// ProgressEvent is one phase-barrier progress sample of a running cell.
type ProgressEvent struct {
	// Cell is the "figure/row/col" label of the running cell.
	Cell string `json:"cell"`
	// Phase is the simulation phase that just completed.
	Phase string `json:"phase"`
	// ClockSec is the cell's virtual clock after the barrier.
	ClockSec float64 `json:"clock_sec"`
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 2
	}
	if o.ScaleDiv == 0 {
		o.ScaleDiv = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// wantTrace reports whether any option requires a trace recorder.
func (o Options) wantTrace() bool {
	return o.Trace || o.TraceOut != "" || o.TraceCSV != "" || o.Metrics || o.Recorder != nil
}

// runFn executes one cell's simulation on a prepared cluster.
type runFn func(cl *sim.Cluster) (*task.Result, error)

// cellSpec is one table cell to run.
type cellSpec struct {
	col       string
	machines  int
	scale     float64
	run       runFn
	paperIter string // "Fail", "NA", or H:MM:SS
	paperInit string
	// faults, when set, overrides Options.Faults for this cell.
	faults *FaultConfig
}

// rowSpec is one table row.
type rowSpec struct {
	label string
	cells []cellSpec
}

// Figure is one runnable paper figure.
type Figure struct {
	ID    string
	Title string
	rows  []rowSpec
}

// newCluster builds the simulated cluster for a cell's clean probe run.
// Probe runs are never traced: only the measured run's spans should land
// in the exported trace.
func newCluster(machines int, scale float64, o Options) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = scale / o.ScaleDiv
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	cfg.Seed = o.Seed
	cfg.HostWorkers = o.HostWorkers
	cfg.ChunkElems = o.ChunkElems
	cfg.Ctx = o.Ctx
	return sim.New(cfg)
}

// newFaultCluster builds a cell's measured cluster with the trace
// recorder attached plus the fault schedule and the engines'
// checkpointing policies. A nil schedule with an inactive config is
// newCluster plus tracing. cellName labels the cell's progress events.
func newFaultCluster(machines int, scale float64, o Options, sched *faults.Schedule, fc FaultConfig, cellName string) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = scale / o.ScaleDiv
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	cfg.Seed = o.Seed
	cfg.Tracer = o.Recorder
	cfg.HostWorkers = o.HostWorkers
	cfg.ChunkElems = o.ChunkElems
	cfg.Faults = sched
	cfg.Ctx = o.Ctx
	if o.Progress != nil {
		progress := o.Progress
		cfg.Progress = func(phase string, clockSec float64) {
			progress(ProgressEvent{Cell: cellName, Phase: phase, ClockSec: clockSec})
		}
	}
	cfg.Recovery.BSPCheckpointEvery = interval(fc.BSPCheckpointEvery)
	cfg.Recovery.GASSnapshotEvery = interval(fc.GASSnapshotEvery)
	return sim.New(cfg)
}

// runCell executes one cell. When faults are configured, the cell runs
// twice: a clean probe run learns the deterministic init and iteration
// times, then the measured run re-executes with crashes scheduled at
// absolute virtual times inside the measured window (and observed
// recoveries recorded in the cell's notes).
//
// The returned error is non-nil only when Options.Ctx was cancelled:
// simulated failures (OOM) become "Fail" cells, but a cancelled host run
// is not a result at all and must propagate.
func runCell(c cellSpec, figID, row string, o Options) (Cell, error) {
	cell := Cell{
		RowLabel:     row,
		ColLabel:     c.col,
		PaperIterSec: ParseDuration(c.paperIter),
		PaperInitSec: ParseDuration(c.paperInit),
		PaperFail:    c.paperIter == "Fail",
		PaperNA:      c.paperIter == "NA",
	}
	if c.run == nil || cell.PaperNA {
		cell.Skipped = true
		return cell, nil
	}
	cellName := figID + "/" + row + "/" + c.col
	fc := o.Faults
	if c.faults != nil {
		fc = *c.faults
	}
	var sched *faults.Schedule
	if fc.Active() {
		fc = fc.withFaultDefaults()
		probe := newCluster(c.machines, c.scale, o)
		res, err := c.run(probe)
		if sim.IsCanceled(err) {
			return cell, fmt.Errorf("bench: cell %s: %w", cellName, err)
		}
		if err == nil {
			sched = fc.schedule(res.InitSec, res.AvgIterSec(), o.Iterations, c.machines, o.Seed)
		}
	}
	if o.Recorder != nil {
		o.Recorder.BeginCell(cellName)
	}
	cl := newFaultCluster(c.machines, c.scale, o, sched, fc, cellName)
	res, err := c.run(cl)
	if err != nil {
		if sim.IsCanceled(err) {
			return cell, fmt.Errorf("bench: cell %s: %w", cellName, err)
		}
		if sim.IsOOM(err) {
			cell.Failed = true
			cell.Notes = append(cell.Notes, err.Error())
		} else {
			cell.Failed = true
			cell.Notes = append(cell.Notes, "error: "+err.Error())
		}
	} else {
		cell.IterSec = res.AvgIterSec()
		cell.InitSec = res.InitSec
		cell.Notes = res.Notes
	}
	for _, f := range cl.Faults() {
		cell.Notes = append(cell.Notes, fmt.Sprintf("fault: %s, observed at %s in %q, recovery %s",
			f.Event, FormatDuration(f.ObservedAt), f.Phase, FormatDuration(f.RecoverySec)))
	}
	if o.Trace && o.Recorder != nil {
		cell.Notes = append(cell.Notes, trace.TopPhases(o.Recorder, cellName, 5, FormatDuration)...)
	}
	return cell, nil
}

// Run executes the figure and returns the rendered table. When a tracing
// option is set and no shared Recorder was supplied, the figure owns one
// for the duration of the run and performs any file exports itself;
// export errors land in the table's notes.
//
// Run cannot be cancelled; use RunContext when Options.Ctx matters.
func (f *Figure) Run(o Options) *Table {
	t, _ := f.RunContext(nil, o)
	return t
}

// RunContext is Run with cancellation: a non-nil ctx (or Options.Ctx)
// aborts the run mid-phase and returns the partially filled table
// together with an error wrapping context.Canceled. An explicit ctx
// argument takes precedence over Options.Ctx.
func (f *Figure) RunContext(ctx context.Context, o Options) (*Table, error) {
	if ctx != nil {
		o.Ctx = ctx
	}
	o = o.withDefaults()
	owned := false
	if o.Recorder == nil && o.wantTrace() {
		o.Recorder = trace.NewRecorder()
		owned = true
	}
	t := &Table{ID: f.ID, Title: f.Title, Cells: map[string]map[string]Cell{}}
	for _, r := range f.rows {
		t.Rows = append(t.Rows, r.label)
		t.Cells[r.label] = map[string]Cell{}
		for _, c := range r.cells {
			if !contains(t.Cols, c.col) {
				t.Cols = append(t.Cols, c.col)
			}
			cell, err := runCell(c, f.ID, r.label, o)
			if err != nil {
				return t, err
			}
			t.Cells[r.label][c.col] = cell
		}
	}
	if owned {
		if o.TraceOut != "" {
			if err := trace.WriteChromeFile(o.TraceOut, o.Recorder); err != nil {
				t.Notes = append(t.Notes, "trace export failed: "+err.Error())
			}
		}
		if o.TraceCSV != "" {
			if err := trace.WriteCSVFile(o.TraceCSV, o.Recorder); err != nil {
				t.Notes = append(t.Notes, "trace CSV export failed: "+err.Error())
			}
		}
		if o.Metrics {
			t.Notes = append(t.Notes, o.Recorder.Metrics().Render())
		}
	}
	return t, nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Figures returns the registry: every table of the paper's evaluation.
func Figures(o Options) []*Figure {
	o = o.withDefaults()
	return []*Figure{
		fig1a(o), fig1b(o), fig1c(o),
		fig2(o),
		fig3a(o), fig3b(o),
		fig4a(o), fig4b(o),
		fig5(o),
		fig6(o),
		fig7(o), fig7b(o), fig7c(o),
		figPS(o),
		figSkew(o), figImbal(o),
		figScale(o),
	}
}

// FigureByID returns the named figure, or nil.
func FigureByID(id string, o Options) *Figure {
	for _, f := range Figures(o) {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// --- GMM (Figure 1) ---

func gmmCfg(o Options, d int, sv bool) gmmtask.Config {
	pts := 10_000_000
	if d == 100 {
		pts = 1_000_000
	}
	return gmmtask.Config{K: 10, D: d, PointsPerMachine: pts, Iterations: o.Iterations, SuperVertex: sv, Dataset: o.Dataset}
}

// gmmScale picks the scale so each machine holds a manageable number of
// real points.
func gmmScale(d int) float64 {
	if d == 100 {
		return 10_000 // 100 real points/machine
	}
	return 10_000 // 1,000 real points/machine
}

func gmmCols(o Options, sv bool, profile *sim.Profile, platform string) []cellSpec {
	mk := func(col string, machines, d int) cellSpec {
		cfg := gmmCfg(o, d, sv)
		var run runFn
		switch platform {
		case "spark":
			run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, cfg, *profile) }
		case "simsql":
			run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, cfg) }
		case "graphlab":
			run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, cfg) }
		case "giraph":
			run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, cfg) }
		}
		return cellSpec{col: col, machines: machines, scale: gmmScale(d), run: run}
	}
	return []cellSpec{
		mk("10d/5m", 5, 10), mk("10d/20m", 20, 10), mk("10d/100m", 100, 10), mk("100d/5m", 5, 100),
	}
}

func withPaper(cells []cellSpec, iters, inits []string) []cellSpec {
	for i := range cells {
		cells[i].paperIter = iters[i]
		if inits != nil {
			cells[i].paperInit = inits[i]
		}
	}
	return cells
}

func fig1a(o Options) *Figure {
	py := sim.ProfilePython
	return &Figure{
		ID:    "fig1a",
		Title: "GMM: initial implementations (avg time per iteration, init in parens)",
		rows: []rowSpec{
			{"SimSQL", withPaper(gmmCols(o, false, nil, "simsql"),
				[]string{"27:55", "28:55", "35:54", "1:51:12"}, []string{"13:55", "14:38", "18:58", "36:08"})},
			{"GraphLab", withPaper(gmmCols(o, false, nil, "graphlab"),
				[]string{"Fail", "Fail", "Fail", "Fail"}, nil)},
			{"Spark (Python)", withPaper(gmmCols(o, false, &py, "spark"),
				[]string{"26:04", "37:34", "38:09", "47:40"}, []string{"4:10", "2:27", "2:00", "0:52"})},
			{"Giraph", withPaper(gmmCols(o, false, nil, "giraph"),
				[]string{"25:21", "30:26", "Fail", "Fail"}, []string{"0:18", "0:15", "", ""})},
		},
	}
}

func fig1b(o Options) *Figure {
	jv := sim.ProfileJava
	return &Figure{
		ID:    "fig1b",
		Title: "GMM: alternative implementations",
		rows: []rowSpec{
			{"Spark (Java)", withPaper(gmmCols(o, false, &jv, "spark"),
				[]string{"12:30", "12:25", "18:11", "6:25:04"}, []string{"2:01", "2:03", "2:26", "36:08"})},
			{"GraphLab (Super Vertex)", withPaper(gmmCols(o, true, nil, "graphlab"),
				[]string{"6:13", "4:36", "6:09", "33:32"}, []string{"1:13", "2:47", "1:21", "0:42"})},
		},
	}
}

func fig1c(o Options) *Figure {
	py := sim.ProfilePython
	mk := func(platform string, sv bool, d int) cellSpec {
		cols := gmmCols(o, sv, &py, platform)
		// Columns 0 (10d/5m) and 3 (100d/5m) of the standard layout.
		idx := 0
		if d == 100 {
			idx = 3
		}
		c := cols[idx]
		label := fmt.Sprintf("%dd", d)
		if sv {
			c.col = label + " with SV"
		} else {
			c.col = label + " w/o SV"
		}
		return c
	}
	row := func(platform string, iters []string, inits []string) rowSpec {
		cells := []cellSpec{mk(platform, false, 10), mk(platform, true, 10), mk(platform, false, 100), mk(platform, true, 100)}
		return rowSpec{label: platform, cells: withPaper(cells, iters, inits)}
	}
	f := &Figure{ID: "fig1c", Title: "GMM: super vertex implementations (5 machines)"}
	f.rows = []rowSpec{
		row("simsql", []string{"27:55", "6:20", "1:51:12", "7:22"}, []string{"13:55", "12:33", "36:08", "14:07"}),
		row("graphlab", []string{"Fail", "6:13", "Fail", "33:32"}, []string{"", "1:13", "", "0:42"}),
		row("spark", []string{"26:04", "29:12", "47:40", "47:03"}, []string{"4:10", "4:01", "0:52", "2:17"}),
		row("giraph", []string{"25:21", "13:48", "Fail", "6:17:32"}, []string{"0:18", "0:03", "", "0:03"}),
	}
	// Human-facing row labels.
	f.rows[0].label = "SimSQL"
	f.rows[1].label = "GraphLab"
	f.rows[2].label = "Spark (Python)"
	f.rows[3].label = "Giraph"
	return f
}

// --- Bayesian Lasso (Figure 2) ---

func lassoCfg(o Options) lassotask.Config {
	return lassotask.Config{P: 1000, PointsPerMachine: 100_000, Iterations: o.Iterations, Dataset: o.Dataset}
}

func fig2(o Options) *Figure {
	cfg := lassoCfg(o)
	svCfg := cfg
	svCfg.SuperVertex = true
	scaleFor := func(machines int) float64 {
		// Keep total real Gram work bounded as machines grow.
		return 500 * float64(machines) / 5
	}
	row := func(label string, run func(cl *sim.Cluster) (*task.Result, error), iters, inits []string) rowSpec {
		machines := []int{5, 20, 100}
		cells := make([]cellSpec, len(machines))
		for i, m := range machines {
			cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: scaleFor(m), run: run}
		}
		return rowSpec{label: label, cells: withPaper(cells, iters, inits)}
	}
	return &Figure{
		ID:    "fig2",
		Title: "Bayesian Lasso (avg time per iteration, init in parens)",
		rows: []rowSpec{
			row("SimSQL", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSimSQL(cl, cfg) },
				[]string{"7:09", "8:04", "12:24"}, []string{"2:40:06", "2:45:28", "2:54:45"}),
			row("GraphLab (Super Vertex)", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGraphLab(cl, cfg) },
				[]string{"0:36", "0:26", "0:31"}, []string{"0:37", "0:35", "0:50"}),
			row("Spark (Python)", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSpark(cl, cfg) },
				[]string{"0:55", "0:59", "1:12"}, []string{"1:26:59", "1:33:13", "2:06:30"}),
			row("Giraph", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGiraph(cl, cfg) },
				[]string{"Fail", "Fail", "Fail"}, nil),
			row("Giraph (Super Vertex)", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGiraph(cl, svCfg) },
				[]string{"0:58", "1:03", "2:08"}, []string{"1:14", "1:14", "6:31"}),
		},
	}
}

// --- HMM (Figure 3) ---

func hmmCfg(o Options) hmmtask.Config {
	return hmmtask.Config{K: 20, V: 10_000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: o.Iterations, Sampler: o.Sampler, Dataset: o.Dataset}
}

const hmmScale = 25_000 // 100 real documents per machine

func fig3a(o Options) *Figure {
	cfg := hmmCfg(o)
	cell := func(col string, v hmmtask.Variant, run func(cl *sim.Cluster, variant hmmtask.Variant) (*task.Result, error)) cellSpec {
		return cellSpec{col: col, machines: 5, scale: hmmScale,
			run: func(cl *sim.Cluster) (*task.Result, error) { return run(cl, v) }}
	}
	sim2 := func(cl *sim.Cluster, v hmmtask.Variant) (*task.Result, error) { return hmmtask.RunSimSQL(cl, cfg, v) }
	spk := func(cl *sim.Cluster, v hmmtask.Variant) (*task.Result, error) { return hmmtask.RunSpark(cl, cfg, v) }
	gir := func(cl *sim.Cluster, v hmmtask.Variant) (*task.Result, error) { return hmmtask.RunGiraph(cl, cfg, v) }
	return &Figure{
		ID:    "fig3a",
		Title: "HMM: word-based and document-based (5 machines)",
		rows: []rowSpec{
			{"SimSQL", withPaper([]cellSpec{
				cell("word-based", hmmtask.VariantWord, sim2),
				cell("document-based", hmmtask.VariantDoc, sim2),
			}, []string{"8:17:07", "3:42:40"}, []string{"10:51:32", "20:44"})},
			{"Spark (Python)", withPaper([]cellSpec{
				cell("word-based", hmmtask.VariantWord, spk),
				cell("document-based", hmmtask.VariantDoc, spk),
			}, []string{"Fail", "4:21:36"}, []string{"", "27:36"})},
			{"Giraph", withPaper([]cellSpec{
				cell("word-based", hmmtask.VariantWord, gir),
				cell("document-based", hmmtask.VariantDoc, gir),
			}, []string{"Fail", "11:02"}, []string{"", "7:03"})},
		},
	}
}

func fig3b(o Options) *Figure {
	cfg := hmmCfg(o)
	row := func(label string, run runVariantFn, iters, inits []string) rowSpec {
		machines := []int{5, 20, 100}
		cells := make([]cellSpec, len(machines))
		for i, m := range machines {
			m := m
			cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: hmmScale,
				run: func(cl *sim.Cluster) (*task.Result, error) { return run(cl) }}
		}
		return rowSpec{label: label, cells: withPaper(cells, iters, inits)}
	}
	return &Figure{
		ID:    "fig3b",
		Title: "HMM: super vertex implementations",
		rows: []rowSpec{
			row("Giraph", func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunGiraph(cl, cfg, hmmtask.VariantSV) },
				[]string{"2:27", "2:44", "3:12"}, []string{"1:12", "1:52", "2:56"}),
			row("GraphLab", func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunGraphLab(cl, cfg) },
				[]string{"20:39", "Fail", "Fail"}, []string{"16:28", "", ""}),
			row("Spark (Python)", func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunSpark(cl, cfg, hmmtask.VariantSV) },
				[]string{"3:45:58", "4:01:02", "Fail"}, []string{"11:02", "13:04", ""}),
			row("SimSQL", func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunSimSQL(cl, cfg, hmmtask.VariantSV) },
				[]string{"2:05:12", "2:05:31", "2:19:10"}, []string{"1:44:45", "1:44:36", "2:04:40"}),
		},
	}
}

type runVariantFn = runFn

// --- LDA (Figure 4) ---

func ldaCfg(o Options) ldatask.Config {
	return ldatask.Config{T: 100, V: 10_000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: o.Iterations, Sampler: o.Sampler, Dataset: o.Dataset}
}

const ldaScale = 25_000

func fig4a(o Options) *Figure {
	cfg := ldaCfg(o)
	py := sim.ProfilePython
	mk := func(col string, run runVariantFn) cellSpec {
		return cellSpec{col: col, machines: 5, scale: ldaScale, run: run}
	}
	return &Figure{
		ID:    "fig4a",
		Title: "LDA: word-based and document-based (5 machines)",
		rows: []rowSpec{
			{"SimSQL", withPaper([]cellSpec{
				mk("word-based", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSimSQL(cl, cfg, ldatask.VariantWord) }),
				mk("document-based", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSimSQL(cl, cfg, ldatask.VariantDoc) }),
			}, []string{"16:34:39", "4:52:06"}, []string{"11:23:22", "4:34:27"})},
			{"Spark (Python)", withPaper([]cellSpec{
				{col: "word-based", paperIter: "NA"},
				mk("document-based", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSpark(cl, cfg, ldatask.VariantDoc, py) }),
			}, []string{"NA", "15:45:00"}, []string{"", "2:30:00"})},
			{"Giraph", withPaper([]cellSpec{
				{col: "word-based", paperIter: "NA"},
				mk("document-based", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGiraph(cl, cfg, ldatask.VariantDoc) }),
			}, []string{"NA", "22:22"}, []string{"", "5:46"})},
		},
	}
}

func fig4b(o Options) *Figure {
	cfg := ldaCfg(o)
	py := sim.ProfilePython
	row := func(label string, run runVariantFn, iters, inits []string) rowSpec {
		machines := []int{5, 20, 100}
		cells := make([]cellSpec, len(machines))
		for i, m := range machines {
			cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: ldaScale, run: run}
		}
		return rowSpec{label: label, cells: withPaper(cells, iters, inits)}
	}
	return &Figure{
		ID:    "fig4b",
		Title: "LDA: super vertex implementations",
		rows: []rowSpec{
			row("Giraph", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGiraph(cl, cfg, ldatask.VariantSV) },
				[]string{"18:49", "20:02", "Fail"}, []string{"2:35", "2:46", ""}),
			row("GraphLab", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGraphLab(cl, cfg) },
				[]string{"39:27", "Fail", "Fail"}, []string{"32:14", "", ""}),
			row("Spark (Python)", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSpark(cl, cfg, ldatask.VariantSV, py) },
				[]string{"3:56:00", "3:57:00", "Fail"}, []string{"2:15:00", "2:15:00", ""}),
			row("SimSQL", func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSimSQL(cl, cfg, ldatask.VariantSV) },
				[]string{"1:00:17", "1:06:59", "1:13:58"}, []string{"3:09", "3:34", "4:28"}),
		},
	}
}

// --- Gaussian imputation (Figure 5) ---

func fig5(o Options) *Figure {
	cfg := imputetask.Config{K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: o.Iterations}
	row := func(label string, run runVariantFn, iters, inits []string) rowSpec {
		machines := []int{5, 20, 100}
		cells := make([]cellSpec, len(machines))
		for i, m := range machines {
			cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: 10_000, run: run}
		}
		return rowSpec{label: label, cells: withPaper(cells, iters, inits)}
	}
	return &Figure{
		ID:    "fig5",
		Title: "Gaussian imputation",
		rows: []rowSpec{
			row("Giraph", func(cl *sim.Cluster) (*task.Result, error) { return imputetask.RunGiraph(cl, cfg) },
				[]string{"28:43", "31:23", "Fail"}, []string{"0:19", "0:18", ""}),
			row("GraphLab (Super Vertex)", func(cl *sim.Cluster) (*task.Result, error) { return imputetask.RunGraphLab(cl, cfg) },
				[]string{"6:59", "6:12", "6:08"}, []string{"3:41", "8:40", "3:03"}),
			row("Spark (Python)", func(cl *sim.Cluster) (*task.Result, error) { return imputetask.RunSpark(cl, cfg) },
				[]string{"1:22:48", "1:27:39", "1:29:27"}, []string{"3:52", "4:03", "4:27"}),
			row("SimSQL", func(cl *sim.Cluster) (*task.Result, error) { return imputetask.RunSimSQL(cl, cfg) },
				[]string{"28:53", "30:41", "39:33"}, []string{"14:29", "15:30", "22:15"}),
		},
	}
}

// --- LDA Spark Java (Figure 6) ---

func fig6(o Options) *Figure {
	cfg := ldaCfg(o)
	jv := sim.ProfileJava
	machines := []int{5, 20, 100}
	cells := make([]cellSpec, len(machines))
	for i, m := range machines {
		cells[i] = cellSpec{col: fmt.Sprintf("%dm", m), machines: m, scale: ldaScale,
			run: func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSpark(cl, cfg, ldatask.VariantSV, jv) }}
	}
	return &Figure{
		ID:    "fig6",
		Title: "LDA: Spark Java implementation",
		rows: []rowSpec{
			{"Spark (Java)", withPaper(cells, []string{"9:47", "19:36", "Fail"}, []string{"0:53", "1:15", ""})},
		},
	}
}
