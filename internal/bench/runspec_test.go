package bench

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// A spec must survive a JSON round trip unchanged, and strict parsing
// must reject unknown fields instead of silently ignoring a typo'd knob.
func TestRunSpecJSONRoundTrip(t *testing.T) {
	in := RunSpec{
		Figure: "fig2", Row: "SimSQL", Col: "20m",
		Iterations: 3, ScaleDiv: 0.5, Seed: 7, Workers: 4,
		Shards: 3, Staleness: 2, Sampler: "mhalias", Dataset: "skew-heavy",
		Faults: FaultConfig{Failures: 2, FailAt: 0.25, Straggle: 4, BSPCheckpointEvery: 2, GASSnapshotEvery: -1},
		Trace:  TraceSpec{Phases: true, Out: "t.json", CSV: "t.csv", Metrics: true},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRunSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the spec:\n in=%+v\nout=%+v", in, out)
	}
	if _, err := ParseRunSpec([]byte(`{"figur": "fig1a"}`)); err == nil {
		t.Error("unknown field accepted; want a strict-parse error")
	}
	if _, err := ParseRunSpec([]byte(`{"figure": `)); err == nil {
		t.Error("truncated JSON accepted")
	}
}

// Golden cache keys: the canonical hash is part of the service's wire
// contract (cached results are addressed by it), so accidental drift must
// show up here. Regenerate deliberately if the keyDoc schema changes —
// and bump keyVersion when you do.
func TestRunSpecCacheKeyGolden(t *testing.T) {
	golden := []struct {
		name string
		spec RunSpec
		key  string
	}{
		{"zero-fig1a", RunSpec{Figure: "fig1a"},
			"3e67fcc226df9cc4430b764235ecef1795214eafa17f70cd25c52ecefa620ac5"},
		{"cell", RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m"},
			"b91219c78abdb8c20839ee551ed545020ecc0f138c9c874a0fc7167490e805b9"},
		{"faulted", RunSpec{Figure: "fig2", Faults: FaultConfig{Failures: 1}},
			"0bca79b043ba7776743ba0725b6c9d36b55f77a4568fb736fd91a04370ec8d24"},
		{"traced", RunSpec{Figure: "fig1a", Trace: TraceSpec{Phases: true}},
			"619544f90751ebf87ce9a92a84d248c849aae1ed583ae070c18a0edd0cc9b500"},
		{"ps", RunSpec{Figure: "fig-ps", Shards: 3, Staleness: 2},
			"1eb37c505e83a49a4f9e2ca8d72b2ebc74976c1901ad606887728c4d80eb035e"},
		{"mhalias-cell", RunSpec{Figure: "fig4b", Row: "Giraph", Col: "5m", Sampler: "mhalias"},
			"0ccd89d8f66d825a6b4dbdbc5877629bced738101f5aa23d00e2adff3e575c4c"},
		{"dataset", RunSpec{Figure: "fig-imbal", Dataset: "imbal-8x"},
			"da78191c847e75a60117b5139478cdfd2501a4395b21622e68ee43c46fec654d"},
		{"scale", RunSpec{Figure: "fig-scale"},
			"c22e5e93ad6ba3897f84e741dbb9fcff0b7c7d931b7f01911eea4e58c3ec0632"},
	}
	for _, g := range golden {
		if got := g.spec.CacheKey(); got != g.key {
			t.Errorf("%s: CacheKey = %s, want %s", g.name, got, g.key)
		}
	}
}

// Two specs describing the same computation must share a key; specs
// differing only in host-side concerns (worker count, export paths) must
// too, while any result-affecting knob must split them.
func TestRunSpecCacheKeyEquivalence(t *testing.T) {
	base := RunSpec{Figure: "fig1a"}
	same := []RunSpec{
		{Figure: "fig1a", Iterations: 2, ScaleDiv: 1, Seed: 1},
		{Figure: "fig1a", Workers: 8},
		{Figure: "fig1a", Trace: TraceSpec{Out: "a.json", CSV: "b.csv"}},
		{Figure: "fig1a", Sampler: "dense"},
		// Chunk is a host-memory knob like Workers: results are
		// byte-identical at any chunk size, so it must not split the key.
		{Figure: "fig1a", Chunk: 64},
		{Figure: "fig1a", Chunk: 100_000},
	}
	for i, s := range same {
		if s.CacheKey() != base.CacheKey() {
			t.Errorf("equivalent spec %d got a different key", i)
		}
	}
	different := []RunSpec{
		{Figure: "fig1b"},
		{Figure: "fig1a", Iterations: 3},
		{Figure: "fig1a", Seed: 2},
		{Figure: "fig1a", ScaleDiv: 2},
		{Figure: "fig1a", Faults: FaultConfig{Failures: 1}},
		{Figure: "fig1a", Trace: TraceSpec{Phases: true}},
		{Figure: "fig1a", Row: "SimSQL", Col: "10d/5m"},
		{Figure: "fig-ps"},
		{Figure: "fig-ps", Shards: 3},
		{Figure: "fig-ps", Staleness: 2},
		{Figure: "fig1a", Sampler: "alias"},
		{Figure: "fig1a", Sampler: "mhalias"},
		{Figure: "fig1a", Dataset: "skew-light"},
		{Figure: "fig1a", Dataset: "skew-heavy"},
		{Figure: "fig-skew"},
		{Figure: "fig-imbal"},
		{Figure: "fig-imbal", Dataset: "imbal-2x"},
		{Figure: "fig-scale"},
		{Figure: "fig-scale", Machines: 1000},
	}
	seen := map[string]int{base.CacheKey(): -1}
	for i, s := range different {
		k := s.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on key %s", i, prev, k)
		}
		seen[k] = i
	}
	// Fault defaults are normalized into the key: {Failures:1} and
	// {Failures:1, FailAt:0.5} are the same schedule.
	a := RunSpec{Figure: "fig2", Faults: FaultConfig{Failures: 1}}
	b := RunSpec{Figure: "fig2", Faults: FaultConfig{Failures: 1, FailAt: 0.5, BSPCheckpointEvery: 3, GASSnapshotEvery: 3}}
	if a.CacheKey() != b.CacheKey() {
		t.Error("fault defaults not normalized into the cache key")
	}
	// The fig-scale machine default is normalized into the key the same
	// way: leaving Machines at 0 and spelling out 10,000 are the same run.
	c := RunSpec{Figure: "fig-scale"}
	d := RunSpec{Figure: "fig-scale", Machines: 10_000}
	if c.CacheKey() != d.CacheKey() {
		t.Error("fig-scale machine default not normalized into the cache key")
	}
}

// Validation errors must be actionable: an unknown id comes back with the
// list of valid ids.
func TestRunSpecValidateActionable(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want []string // substrings of the error
	}{
		{RunSpec{}, []string{"needs a figure", "fig1a", "fig7c"}},
		{RunSpec{Figure: "fig9"}, []string{`unknown figure "fig9"`, "fig1a", "fig2", "fig7c"}},
		{RunSpec{Figure: "fig2", Row: "Sim", Col: "5m"}, []string{`no row "Sim"`, "SimSQL", "Giraph (Super Vertex)"}},
		{RunSpec{Figure: "fig2", Row: "SimSQL", Col: "7m"}, []string{`no column "7m"`, "5m", "20m", "100m"}},
		{RunSpec{Figure: "fig2", Row: "SimSQL"}, []string{"needs both row and col"}},
		{RunSpec{Figure: "fig2", Iterations: -1}, []string{"iterations"}},
		{RunSpec{Figure: "fig2", Faults: FaultConfig{Straggle: 0.5}}, []string{"straggle"}},
		{RunSpec{Figure: "fig-ps", Shards: -1}, []string{"shards"}},
		{RunSpec{Figure: "fig-ps", Staleness: -2}, []string{"staleness"}},
		{RunSpec{Figure: "fig4b", Sampler: "turbo"}, []string{`sampler tier "turbo"`, "dense", "mhalias"}},
		{RunSpec{Figure: "fig2", Machines: 500}, []string{"machines only applies to fig-scale"}},
		{RunSpec{Figure: "fig-scale", Machines: 50}, []string{"machines must be >= 100"}},
		{RunSpec{Figure: "fig-scale", Chunk: -1}, []string{"chunk must be >= 0"}},
		{RunSpec{Figure: "fig-scale", Row: "SimSQL", Col: "GMM 7m"}, []string{`no column "GMM 7m"`, "GMM 100m", "LDA 10000m"}},
		{RunSpec{Figure: "fig-skew", Dataset: "skewy"}, []string{`dataset scenario "skewy"`, "skew-light", "imbal-8x"}},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("spec %+v: want validation error", c.spec)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("spec %+v: error %q missing %q", c.spec, err, w)
			}
		}
	}
	if err := (RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m"}).Validate(); err != nil {
		t.Errorf("valid cell spec rejected: %v", err)
	}
	// Validation must check row/col against the figure the spec will
	// actually run: -machines renames the fig-scale columns.
	if err := (RunSpec{Figure: "fig-scale", Machines: 500, Row: "SimSQL", Col: "GMM 500m"}).Validate(); err != nil {
		t.Errorf("custom-machines cell spec rejected: %v", err)
	}
	if err := (RunSpec{Figure: "fig-scale", Row: "Param Server", Col: "LDA 10000m"}).Validate(); err != nil {
		t.Errorf("default-machines cell spec rejected: %v", err)
	}
}

// ExecuteSpec is the single execution path: a cell spec must reproduce
// exactly the cell Figure.Run computes, and the rendered 1x1 table must
// be byte-stable across repeat executions and worker counts.
func TestExecuteSpecCellMatchesFigureRun(t *testing.T) {
	spec := RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m", Iterations: 1, ScaleDiv: 0.02, Seed: 3}
	res, err := ExecuteSpec(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Iterations: 1, ScaleDiv: 0.02, Seed: 3}
	want := FigureByID("fig6", o).Run(o).Cells["Spark (Java)"]["5m"]
	got := res.Table.Cells["Spark (Java)"]["5m"]
	if got.String() != want.String() {
		t.Errorf("ExecuteSpec cell = %s, Figure.Run = %s", got, want)
	}
	spec2 := spec
	spec2.Workers = 1
	res2, err := ExecuteSpec(context.Background(), spec2, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Render() != res2.Table.Render() {
		t.Error("rendered table differs between worker counts")
	}
}

// An mhalias cell must be byte-identical across worker counts too: the
// cached-proposal tier rebuilds its alias tables only at serial points,
// so the host-side parallelism knob must not perturb the sampled stream.
func TestExecuteSpecMHAliasWorkerIdentity(t *testing.T) {
	spec := RunSpec{Figure: "fig4b", Row: "Giraph", Col: "5m",
		Iterations: 1, ScaleDiv: 0.02, Seed: 3, Sampler: "mhalias", Workers: 8}
	res, err := ExecuteSpec(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Workers = 1
	res2, err := ExecuteSpec(context.Background(), spec2, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Render() != res2.Table.Render() {
		t.Error("mhalias cell differs between 8 and 1 workers")
	}
	// And the tier must actually change the result relative to dense.
	dense := spec
	dense.Sampler = "dense"
	res3, err := ExecuteSpec(context.Background(), dense, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Cells["Giraph"]["5m"].String() == res3.Table.Cells["Giraph"]["5m"].String() {
		t.Error("mhalias cell identical to dense; the tier did not reach the task")
	}
}

// A dataset scenario must be byte-identical across worker counts — the
// scenario generators shard their RNG streams the same way the
// historical ones do — and must actually change the sampled data
// relative to the paper shape.
func TestExecuteSpecDatasetWorkerIdentity(t *testing.T) {
	spec := RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m",
		Iterations: 1, ScaleDiv: 0.02, Seed: 3, Dataset: "skew-heavy", Workers: 8}
	res, err := ExecuteSpec(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Workers = 1
	res2, err := ExecuteSpec(context.Background(), spec2, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Render() != res2.Table.Render() {
		t.Error("skew-heavy cell differs between 8 and 1 workers")
	}
	paper := spec
	paper.Dataset = ""
	res3, err := ExecuteSpec(context.Background(), paper, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Cells["Spark (Java)"]["5m"].String() == res3.Table.Cells["Spark (Java)"]["5m"].String() {
		t.Error("skew-heavy cell identical to paper shape; the scenario did not reach the task")
	}
}

// ExecuteSpec must reject an invalid spec before doing any work, and a
// cancelled context must surface as an error, not as Fail cells.
func TestExecuteSpecValidationAndCancel(t *testing.T) {
	if _, err := ExecuteSpec(context.Background(), RunSpec{Figure: "nope"}, ExecOptions{}); err == nil {
		t.Error("invalid spec executed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteSpec(ctx, RunSpec{Figure: "fig6", Iterations: 1, ScaleDiv: 0.02}, ExecOptions{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: got err %v, want context.Canceled", err)
	}
}

// Progress events stream from measured runs with the cell label attached
// and a non-decreasing per-cell clock.
func TestExecuteSpecProgress(t *testing.T) {
	var events []ProgressEvent
	spec := RunSpec{Figure: "fig6", Row: "Spark (Java)", Col: "5m", Iterations: 1, ScaleDiv: 0.02}
	_, err := ExecuteSpec(context.Background(), spec, ExecOptions{
		Progress: func(e ProgressEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	var last float64
	for _, e := range events {
		if e.Cell != "fig6/Spark (Java)/5m" {
			t.Fatalf("event cell = %q", e.Cell)
		}
		if e.Phase == "" {
			t.Fatal("event without a phase name")
		}
		if e.ClockSec < last {
			t.Fatalf("clock went backwards: %v after %v", e.ClockSec, last)
		}
		last = e.ClockSec
	}
}
