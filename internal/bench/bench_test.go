package bench

import (
	"strings"
	"testing"
)

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0, "0:00"},
		{59.4, "0:59"},
		{61, "1:01"},
		{3599, "59:59"},
		{3600, "1:00:00"},
		{3 * 3600, "3:00:00"},
		{5025, "1:23:45"},
		{-1, "?"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.sec); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"27:55", 27*60 + 55},
		{"1:51:12", 3600 + 51*60 + 12},
		{"0:36", 36},
		{"Fail", -1},
		{"NA", -1},
		{"", -1},
	}
	for _, c := range cases {
		if got := ParseDuration(c.s); got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, s := range []string{"27:55", "1:51:12", "0:36", "6:17:32"} {
		if got := FormatDuration(ParseDuration(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestCellStringAndAgreement(t *testing.T) {
	c := Cell{IterSec: 120, InitSec: 30, PaperIterSec: 100}
	if got := c.String(); got != "2:00 (0:30)" {
		t.Errorf("String = %q", got)
	}
	if !c.Agrees(3) {
		t.Error("120 vs 100 should agree within 3x")
	}
	if c.Agrees(1.1) {
		t.Error("120 vs 100 should not agree within 1.1x")
	}
	fail := Cell{Failed: true, PaperFail: true}
	if !fail.Agrees(1) || fail.String() != "Fail" {
		t.Errorf("fail cell: %q agrees=%v", fail.String(), fail.Agrees(1))
	}
	mismatch := Cell{Failed: true, PaperIterSec: 100}
	if mismatch.Agrees(100) {
		t.Error("measured Fail vs paper success must disagree")
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	figs := Figures(Options{})
	want := []string{"fig1a", "fig1b", "fig1c", "fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig7b", "fig7c", "fig-ps", "fig-skew", "fig-imbal", "fig-scale"}
	if len(figs) != len(want) {
		t.Fatalf("got %d figures, want %d", len(figs), len(want))
	}
	for i, f := range figs {
		if f.ID != want[i] {
			t.Errorf("figure %d = %s, want %s", i, f.ID, want[i])
		}
		if len(f.rows) == 0 {
			t.Errorf("figure %s has no rows", f.ID)
		}
		for _, r := range f.rows {
			if len(r.cells) == 0 {
				t.Errorf("figure %s row %s has no cells", f.ID, r.label)
			}
			for _, c := range r.cells {
				if c.run == nil && c.paperIter != "NA" {
					t.Errorf("figure %s row %s col %s has no runner", f.ID, r.label, c.col)
				}
			}
		}
	}
}

func TestFigureByID(t *testing.T) {
	if FigureByID("fig2", Options{}) == nil {
		t.Error("fig2 not found")
	}
	if FigureByID("nope", Options{}) != nil {
		t.Error("unknown id should be nil")
	}
}

func TestRunSmallFigure(t *testing.T) {
	// Run fig6 (one row) at reduced iterations to exercise the runner
	// end to end, including a Fail cell.
	f := FigureByID("fig6", Options{Iterations: 1})
	tbl := f.Run(Options{Iterations: 1})
	if len(tbl.Rows) != 1 || len(tbl.Cols) != 3 {
		t.Fatalf("table shape %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	c100 := tbl.Cells["Spark (Java)"]["100m"]
	if !c100.Failed {
		t.Errorf("100m cell should fail, got %+v", c100)
	}
	c5 := tbl.Cells["Spark (Java)"]["5m"]
	if c5.Failed || c5.IterSec <= 0 {
		t.Errorf("5m cell should succeed: %+v", c5)
	}
	if !strings.Contains(tbl.Render(), "fig6") {
		t.Error("render missing figure id")
	}
	if m, n := tbl.Agreement(3); n == 0 || m == 0 {
		t.Errorf("agreement %d/%d unexpected", m, n)
	}
}

func TestLinesOfCode(t *testing.T) {
	locs := LinesOfCode()
	if len(locs) < 15 {
		t.Fatalf("LinesOfCode found only %d implementations", len(locs))
	}
	for _, l := range locs {
		if l.Lines < 30 {
			t.Errorf("%s/%s suspiciously short: %d lines", l.Task, l.Platform, l.Lines)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{ID: "figX", Title: "demo", Cols: []string{"a"}, Rows: []string{"r"},
		Cells: map[string]map[string]Cell{"r": {"a": {IterSec: 60, InitSec: 5, PaperIterSec: 90, PaperInitSec: -1}}}}
	md := tbl.RenderMarkdown()
	for _, want := range []string{"### figX", "| r |", "1:00 (0:05)", "*[paper 1:30]*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
