package bench

import (
	"fmt"
	"runtime"
	"time"
)

// HostBenchRecord is one row of the BENCH_host.json "figures" section:
// the real wall-clock time one figure took with a given host worker
// count, next to the virtual cluster time it simulated (which must not
// depend on the worker count). Fields are declared in json-key order so
// encoding/json emits sorted keys and two CI runs diff cleanly.
type HostBenchRecord struct {
	Figure     string  `json:"figure"`
	HostCPUs   int     `json:"host_cpus"` // wall-clock speedup is bounded by this
	Machines   int     `json:"machines"`  // largest simulated cluster in the figure
	VirtualSec float64 `json:"virtual_sec"`
	WallSec    float64 `json:"wall_sec"`
	Workers    int     `json:"workers"`
}

// maxMachines returns the largest cell cluster in the figure.
func (f *Figure) maxMachines() int {
	max := 0
	for _, r := range f.rows {
		for _, c := range r.cells {
			if c.machines > max {
				max = c.machines
			}
		}
	}
	return max
}

// virtualSec totals the simulated seconds across a table's measured cells.
func virtualSec(t *Table, iters int) float64 {
	var total float64
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			cell := t.Cells[r][c]
			if cell.Skipped || cell.Failed {
				continue
			}
			total += cell.InitSec + cell.IterSec*float64(iters)
		}
	}
	return total
}

// RunHostBench measures the host-parallel speedup: it runs each figure
// with HostWorkers=1 and again with the full worker pool, wall-timing
// both, and verifies the rendered virtual-time tables are byte-identical
// (the parallel scheduler must not change any simulated result). The
// caller owns persistence; internal/perfgate wraps the records in the
// versioned BENCH_host.json schema.
func RunHostBench(figureIDs []string, o Options) ([]HostBenchRecord, error) {
	o = o.withDefaults()
	full := o.HostWorkers
	if full <= 0 {
		full = runtime.GOMAXPROCS(0)
	}
	var records []HostBenchRecord
	for _, id := range figureIDs {
		var renders [2]string
		for i, workers := range []int{1, full} {
			fo := o
			fo.HostWorkers = workers
			f := FigureByID(id, fo)
			if f == nil {
				return nil, fmt.Errorf("hostbench: unknown figure %q", id)
			}
			start := time.Now()
			t := f.Run(fo)
			wall := time.Since(start).Seconds()
			renders[i] = t.Render()
			records = append(records, HostBenchRecord{
				Figure:     id,
				Machines:   f.maxMachines(),
				Workers:    workers,
				HostCPUs:   runtime.NumCPU(),
				WallSec:    wall,
				VirtualSec: virtualSec(t, fo.Iterations),
			})
		}
		if renders[0] != renders[1] {
			return nil, fmt.Errorf("hostbench: figure %s table differs between 1 and %d workers", id, full)
		}
	}
	return records, nil
}
