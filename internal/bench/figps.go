package bench

import (
	"fmt"

	"mlbench/internal/psengine"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/hmmtask"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/tasks/task"
)

// figPS is the fifth-engine head-to-head: every task the paper ran on all
// four platforms, plus the parameter-server engine the field converged on
// one platform generation later, on the paper's 5-machine configuration.
// The graph engines run their super-vertex variants (the ones that
// complete everywhere). Like the fig7 family there are no paper reference
// times — the paper predates the architecture — so the paper column
// renders as "?". The -shards and -staleness flags parameterize the
// Param Server row; at staleness 0 its cycles are synchronous and its
// GMM/Lasso chains are bit-identical to Giraph's (the equivalence battery
// certifies this).
func figPS(o Options) *Figure {
	ps := psengine.Config{Shards: o.PSShards, Staleness: o.PSStaleness}
	py := sim.ProfilePython
	gmmPlain := gmmCfg(o, 10, false)
	gmmSV := gmmCfg(o, 10, true)
	lassoC := lassoCfg(o)
	lassoSV := lassoC
	lassoSV.SuperVertex = true
	ldaC := ldaCfg(o)
	hmmC := hmmCfg(o)

	type col struct {
		name  string
		scale float64
		runs  map[string]runFn
	}
	cols := []col{
		{"GMM 10d", gmmScale(10), map[string]runFn{
			"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, gmmPlain) },
			"spark":    func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, gmmPlain, py) },
			"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, gmmSV) },
			"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, gmmSV) },
			"ps":       func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunPS(cl, gmmPlain, ps) },
		}},
		{"Lasso", 500, map[string]runFn{
			"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSimSQL(cl, lassoC) },
			"spark":    func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSpark(cl, lassoC) },
			"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGraphLab(cl, lassoC) },
			"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGiraph(cl, lassoSV) },
			"ps":       func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunPS(cl, lassoC, ps) },
		}},
		{"LDA", ldaScale, map[string]runFn{
			"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSimSQL(cl, ldaC, ldatask.VariantSV) },
			"spark":    func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunSpark(cl, ldaC, ldatask.VariantSV, py) },
			"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGraphLab(cl, ldaC) },
			"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunGiraph(cl, ldaC, ldatask.VariantSV) },
			"ps":       func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunPS(cl, ldaC, ps) },
		}},
		{"HMM", hmmScale, map[string]runFn{
			"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunSimSQL(cl, hmmC, hmmtask.VariantSV) },
			"spark":    func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunSpark(cl, hmmC, hmmtask.VariantSV) },
			"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunGraphLab(cl, hmmC) },
			"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunGiraph(cl, hmmC, hmmtask.VariantSV) },
			"ps":       func(cl *sim.Cluster) (*task.Result, error) { return hmmtask.RunPS(cl, hmmC, ps) },
		}},
	}

	rows := []struct{ label, platform string }{
		{"SimSQL", "simsql"},
		{"Spark (Python)", "spark"},
		{"GraphLab (Super Vertex)", "graphlab"},
		{"Giraph (Super Vertex)", "giraph"},
		{"Param Server", "ps"},
	}
	shards := "per-machine"
	if ps.Shards > 0 {
		shards = fmt.Sprintf("%d", ps.Shards)
	}
	f := &Figure{
		ID: "fig-ps",
		Title: fmt.Sprintf("Parameter server vs the paper's platforms (5 machines; shards=%s staleness=%d on the PS row)",
			shards, ps.Staleness),
	}
	for _, r := range rows {
		cells := make([]cellSpec, len(cols))
		for i, c := range cols {
			cells[i] = cellSpec{col: c.name, machines: 5, scale: c.scale, run: c.runs[r.platform]}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}
