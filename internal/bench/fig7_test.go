package bench

import (
	"reflect"
	"strings"
	"testing"
)

// tinyRecoveryFigure is a one-row cut of fig7 small enough for tests.
func tinyRecoveryFigure(o Options, platform string, machines int, fc FaultConfig) *Figure {
	return &Figure{
		ID:    "figtest",
		Title: "recovery test figure",
		rows: []rowSpec{
			{label: platform, cells: []cellSpec{
				{col: "c", machines: machines, scale: gmmScale(10), run: fig7RunFn(o, platform), faults: &fc},
			}},
		},
	}
}

func TestFaultScheduleIsDeterministic(t *testing.T) {
	fc := FaultConfig{Failures: 3}.withFaultDefaults()
	a := fc.schedule(100, 60, 2, 20, 7)
	b := fc.schedule(100, 60, 2, 20, 7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same inputs gave different schedules:\n%v\n%v", a, b)
	}
	if len(a.Crashes()) != 3 {
		t.Fatalf("crashes = %d, want 3", len(a.Crashes()))
	}
	for _, e := range a.Crashes() {
		if e.Machine == 0 {
			t.Error("machine 0 (driver) must be spared")
		}
		if e.At < 100 {
			t.Errorf("crash at %v precedes the measured window", e.At)
		}
	}
}

func TestFaultInjectionTablesAreByteIdentical(t *testing.T) {
	o := Options{Iterations: 1, Seed: 3, Faults: FaultConfig{Failures: 1}}
	fc := o.Faults.withFaultDefaults()
	run := func() string {
		return tinyRecoveryFigure(o.withDefaults(), "spark", 4, fc).Run(o).Render()
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("identical seed and schedule gave different tables:\n%s\n---\n%s", first, second)
	}
}

func TestFaultInjectionRecordsRecoveryNotes(t *testing.T) {
	o := Options{Iterations: 1, Seed: 3}
	clean := tinyRecoveryFigure(o.withDefaults(), "giraph", 4, FaultConfig{}).Run(o)
	faulty := tinyRecoveryFigure(o.withDefaults(), "giraph", 4, FaultConfig{Failures: 1}).Run(o)
	cc, fc := clean.Cells["giraph"]["c"], faulty.Cells["giraph"]["c"]
	if cc.Failed || fc.Failed {
		t.Fatalf("cells failed: clean %+v faulty %+v", cc, fc)
	}
	var noted bool
	for _, n := range fc.Notes {
		if strings.Contains(n, "fault: crash") && strings.Contains(n, "recovery") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("no fault note recorded: %v", fc.Notes)
	}
	if fc.IterSec <= cc.IterSec {
		t.Errorf("crash did not slow the run: faulty %v <= clean %v", fc.IterSec, cc.IterSec)
	}
	for _, n := range cc.Notes {
		if strings.Contains(n, "fault:") {
			t.Errorf("clean run has a fault note: %q", n)
		}
	}
}

func TestRecoveryFiguresCoverAllPlatforms(t *testing.T) {
	f := FigureByID("fig7", Options{})
	if f == nil {
		t.Fatal("fig7 not registered")
	}
	if len(f.rows) != 4 {
		t.Fatalf("fig7 rows = %d, want 4 platforms", len(f.rows))
	}
	for _, r := range f.rows {
		if len(r.cells) != 3 {
			t.Errorf("row %s has %d cells, want 5/20/100 machines", r.label, len(r.cells))
		}
		for _, c := range r.cells {
			if c.faults == nil || !c.faults.Active() {
				t.Errorf("row %s col %s has no active fault config", r.label, c.col)
			}
			if c.paperIter != "" {
				t.Errorf("row %s col %s has a paper value %q; the paper never injected failures", r.label, c.col, c.paperIter)
			}
		}
	}
}
