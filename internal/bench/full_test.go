package bench

import (
	"os"
	"testing"
)

// TestFullEvaluationAgreement regenerates every paper table and asserts
// the calibrated agreement level. It takes several minutes, so it only
// runs when MLBENCH_FULL=1 (CI nightly / release gate):
//
//	MLBENCH_FULL=1 go test ./internal/bench -run TestFullEvaluationAgreement -timeout 30m
func TestFullEvaluationAgreement(t *testing.T) {
	if os.Getenv("MLBENCH_FULL") != "1" {
		t.Skip("set MLBENCH_FULL=1 to run the full evaluation")
	}
	opts := Options{Iterations: 2}
	matched, total := 0, 0
	for _, f := range Figures(opts) {
		tbl := f.Run(opts)
		m, n := tbl.Agreement(3)
		t.Logf("%s: %d/%d within 3x", f.ID, m, n)
		matched += m
		total += n
		// Every Fail cell must match the paper, except the one known
		// deviation (EXPERIMENTS.md): the paper's Spark HMM at 100
		// machines failed where our byte accounting lands just under
		// the budget.
		for _, r := range tbl.Rows {
			for _, c := range tbl.Cols {
				cell := tbl.Cells[r][c]
				if cell.Skipped || cell.PaperNA {
					continue
				}
				if f.ID == "fig3b" && r == "Spark (Python)" && c == "100m" {
					continue
				}
				if cell.Failed != cell.PaperFail {
					t.Errorf("%s %s/%s: measured fail=%v, paper fail=%v",
						f.ID, r, c, cell.Failed, cell.PaperFail)
				}
			}
		}
	}
	if float64(matched) < 0.9*float64(total) {
		t.Errorf("agreement regressed: %d/%d cells within 3x (want >= 90%%)", matched, total)
	}
}
