package bench

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// ImplLoc reports the lines of Go code of each per-platform task
// implementation — the analogue of the paper's "lines of code" column.
// The numbers are not comparable 1:1 with the paper's (our per-platform
// files program against simulated engines and charge costs explicitly),
// but the relative ordering carries the same signal: the graph-engine
// codes are the longest, the dataflow and SQL codes the shortest.
type ImplLoc struct {
	Task     string
	Platform string
	Lines    int
}

// implFiles maps (task, platform) to the implementation files, relative
// to the repository's internal/tasks directory.
var implFiles = []struct {
	task, platform, file string
}{
	{"GMM", "Spark", "gmmtask/spark.go"},
	{"GMM", "SimSQL", "gmmtask/simsql.go"},
	{"GMM", "GraphLab", "gmmtask/graphlab.go"},
	{"GMM", "Giraph", "gmmtask/giraph.go"},
	{"GMM", "Param Server", "gmmtask/psengine.go"},
	{"Lasso", "Spark", "lassotask/spark.go"},
	{"Lasso", "SimSQL", "lassotask/simsql.go"},
	{"Lasso", "GraphLab", "lassotask/graphlab.go"},
	{"Lasso", "Giraph", "lassotask/giraph.go"},
	{"Lasso", "Param Server", "lassotask/psengine.go"},
	{"HMM", "Spark", "hmmtask/spark.go"},
	{"HMM", "SimSQL", "hmmtask/simsql.go"},
	{"HMM", "GraphLab", "hmmtask/graphlab.go"},
	{"HMM", "Giraph", "hmmtask/giraph.go"},
	{"HMM", "Param Server", "hmmtask/psengine.go"},
	{"LDA", "Spark", "ldatask/spark.go"},
	{"LDA", "SimSQL", "ldatask/simsql.go"},
	{"LDA", "GraphLab", "ldatask/graphlab.go"},
	{"LDA", "Giraph", "ldatask/giraph.go"},
	{"LDA", "Param Server", "ldatask/psengine.go"},
	{"Imputation", "Spark", "imputetask/spark.go"},
	{"Imputation", "SimSQL", "imputetask/simsql.go"},
	{"Imputation", "Graph engines", "imputetask/graphs.go"},
	// The synthetic-dataset generator is engine-independent support code,
	// reported for the same "how much code did this take" signal.
	{"Datagen", "Spec + scenarios", "../datagen/spec.go"},
	{"Datagen", "Sharded generator", "../datagen/generate.go"},
	{"Datagen", "Skewed workloads", "../workload/skew.go"},
}

// LinesOfCode counts the non-blank, non-comment lines of every task
// implementation. It locates the sources relative to this file via
// runtime.Caller; when the sources are unavailable (stripped binary) it
// returns nil.
func LinesOfCode() []ImplLoc {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil
	}
	tasksDir := filepath.Join(filepath.Dir(filepath.Dir(self)), "tasks")
	var out []ImplLoc
	for _, f := range implFiles {
		n, err := countLines(filepath.Join(tasksDir, f.file))
		if err != nil {
			continue
		}
		out = append(out, ImplLoc{Task: f.task, Platform: f.platform, Lines: n})
	}
	return out
}

// countLines counts non-blank, non-comment-only lines.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}
