package bench

import (
	"testing"
)

// TestWorkerCountInvariantTables is the end-to-end determinism gate for
// host-parallel execution: whole figures — including the fault-injected
// fig7 recovery table, whose crash schedule derives from a clean probe
// run — must render byte-identical no matter how many host goroutines
// execute the simulated machines. Run under -race this also sweeps the
// engines for cross-machine data races.
func TestWorkerCountInvariantTables(t *testing.T) {
	for _, id := range []string{"fig1a", "fig2", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				o := Options{Iterations: 1, Seed: 3, HostWorkers: workers}
				if testing.Short() {
					// -short (the CI race run) shrinks the real per-cell
					// arithmetic 10x; worker-count invariance is
					// scale-independent, and full scale is far too slow
					// under the race detector.
					o.ScaleDiv = 0.1
				}
				f := FigureByID(id, o)
				if f == nil {
					t.Fatalf("figure %s not registered", id)
				}
				if testing.Short() {
					// Likewise keep every row — all platforms, and fig7's
					// fault schedule — but only the smallest cluster column.
					for i := range f.rows {
						f.rows[i].cells = f.rows[i].cells[:1]
					}
				}
				return f.Run(o).Render()
			}
			seq, par := render(1), render(8)
			if seq != par {
				t.Errorf("figure %s differs between 1 and 8 host workers:\n%s\n--- vs ---\n%s", id, seq, par)
			}
		})
	}
}

// TestHostBenchWritesRecords exercises the -hostbench path on a small
// figure: two records per figure, matching worker counts, and the same
// virtual time in both (wall time may differ; virtual time must not).
func TestHostBenchWritesRecords(t *testing.T) {
	path := t.TempDir() + "/BENCH_host.json"
	o := Options{Iterations: 1, Seed: 3}
	if testing.Short() {
		o.ScaleDiv = 0.1
	}
	records, err := RunHostBench([]string{"fig6"}, o, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	seq, par := records[0], records[1]
	if seq.Workers != 1 || par.Workers < 1 {
		t.Errorf("worker counts = %d, %d", seq.Workers, par.Workers)
	}
	if seq.VirtualSec != par.VirtualSec {
		t.Errorf("virtual time depends on workers: %v vs %v", seq.VirtualSec, par.VirtualSec)
	}
	if seq.VirtualSec <= 0 {
		t.Errorf("virtual time = %v, want > 0", seq.VirtualSec)
	}
	if seq.Figure != "fig6" || seq.Machines != 100 {
		t.Errorf("record metadata: %+v", seq)
	}
}
