package bench

import (
	"bytes"
	"testing"

	"mlbench/internal/trace"
)

// firstDiff returns the index of the first differing byte of two strings
// (or the shorter length when one is a prefix of the other).
func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestWorkerCountInvariantTables is the end-to-end determinism gate for
// host-parallel execution: whole figures — including the fault-injected
// fig7 recovery table, whose crash schedule derives from a clean probe
// run — must render byte-identical no matter how many host goroutines
// execute the simulated machines, and so must their golden trace
// streams: the Chrome trace-event JSON and the CSV span dump, which
// cover every span, event and metric sample the run recorded. Run under
// -race this also sweeps the engines for cross-machine data races.
func TestWorkerCountInvariantTables(t *testing.T) {
	for _, id := range []string{"fig1a", "fig2", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) (table, chrome, csv string) {
				o := Options{Iterations: 1, Seed: 3, HostWorkers: workers}
				if testing.Short() {
					// -short (the CI race run) shrinks the real per-cell
					// arithmetic 10x; worker-count invariance is
					// scale-independent, and full scale is far too slow
					// under the race detector.
					o.ScaleDiv = 0.1
				}
				rec := trace.NewRecorder()
				o.Recorder = rec
				f := FigureByID(id, o)
				if f == nil {
					t.Fatalf("figure %s not registered", id)
				}
				if testing.Short() {
					// Likewise keep every row — all platforms, and fig7's
					// fault schedule — but only the smallest cluster column.
					for i := range f.rows {
						f.rows[i].cells = f.rows[i].cells[:1]
					}
				}
				table = f.Run(o).Render()
				var cb, vb bytes.Buffer
				if err := trace.WriteChrome(&cb, rec); err != nil {
					t.Fatalf("WriteChrome: %v", err)
				}
				if err := trace.WriteCSV(&vb, rec); err != nil {
					t.Fatalf("WriteCSV: %v", err)
				}
				return table, cb.String(), vb.String()
			}
			seq, seqChrome, seqCSV := render(1)
			par, parChrome, parCSV := render(8)
			if seq != par {
				t.Errorf("figure %s differs between 1 and 8 host workers:\n%s\n--- vs ---\n%s", id, seq, par)
			}
			if len(seqChrome) == 0 || len(seqCSV) == 0 {
				t.Fatalf("empty trace export: chrome %d bytes, csv %d bytes", len(seqChrome), len(seqCSV))
			}
			if seqChrome != parChrome {
				i := firstDiff(seqChrome, parChrome)
				t.Errorf("chrome trace differs between 1 and 8 host workers: %d vs %d bytes, first diff at byte %d (...%q vs ...%q)",
					len(seqChrome), len(parChrome), i, clip(seqChrome, i), clip(parChrome, i))
			}
			if seqCSV != parCSV {
				i := firstDiff(seqCSV, parCSV)
				t.Errorf("trace CSV differs between 1 and 8 host workers: %d vs %d bytes, first diff at byte %d (...%q vs ...%q)",
					len(seqCSV), len(parCSV), i, clip(seqCSV, i), clip(parCSV, i))
			}
		})
	}
}

// clip returns a short window of s around index i for diff reporting.
func clip(s string, i int) string {
	lo, hi := i-40, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestHostBenchWritesRecords exercises the -hostbench path on a small
// figure: two records per figure, matching worker counts, and the same
// virtual time in both (wall time may differ; virtual time must not).
func TestHostBenchWritesRecords(t *testing.T) {
	o := Options{Iterations: 1, Seed: 3}
	if testing.Short() {
		o.ScaleDiv = 0.1
	}
	records, err := RunHostBench([]string{"fig6"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	seq, par := records[0], records[1]
	if seq.Workers != 1 || par.Workers < 1 {
		t.Errorf("worker counts = %d, %d", seq.Workers, par.Workers)
	}
	if seq.VirtualSec != par.VirtualSec {
		t.Errorf("virtual time depends on workers: %v vs %v", seq.VirtualSec, par.VirtualSec)
	}
	if seq.VirtualSec <= 0 {
		t.Errorf("virtual time = %v, want > 0", seq.VirtualSec)
	}
	if seq.Figure != "fig6" || seq.Machines != 100 {
		t.Errorf("record metadata: %+v", seq)
	}
}

// TestRunnableCellRefs checks the perf-gate cell enumeration: every ref
// resolves, NA cells are excluded, and a ref round-trips through
// RunSingleCell to the same cell Figure.Run produces.
func TestRunnableCellRefs(t *testing.T) {
	o := Options{Iterations: 1, Seed: 3, ScaleDiv: 0.02}
	refs := RunnableCellRefs(o)
	if len(refs) < 100 {
		t.Fatalf("RunnableCellRefs = %d cells, want the full evaluation (>= 100)", len(refs))
	}
	for _, r := range refs {
		if r.Figure == "fig4a" && r.Row == "Spark (Python)" && r.Col == "word-based" {
			t.Errorf("NA cell %s enumerated as runnable", r)
		}
	}
	ref := CellRef{Figure: "fig6", Row: "Spark (Java)", Col: "5m"}
	cell, err := RunSingleCell(nil, ref, o)
	if err != nil {
		t.Fatal(err)
	}
	f := FigureByID("fig6", o)
	want := f.Run(o).Cells["Spark (Java)"]["5m"]
	if cell.String() != want.String() {
		t.Errorf("RunSingleCell(%s) = %s, Figure.Run = %s", ref, cell, want)
	}
	if _, err := RunSingleCell(nil, CellRef{Figure: "fig6", Row: "nope", Col: "5m"}, o); err == nil {
		t.Error("RunSingleCell on a bogus row: want error")
	}
	if _, err := RunSingleCell(nil, CellRef{Figure: "nope", Row: "x", Col: "y"}, o); err == nil {
		t.Error("RunSingleCell on a bogus figure: want error")
	}
}
