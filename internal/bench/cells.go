package bench

import (
	"context"
	"fmt"
)

// CellRef addresses one runnable cell of a registered figure by its
// rendered labels. The perf gate (internal/perfgate) enumerates refs to
// wall-time every table cell individually, so a regression report can
// name the exact experiment that slowed down.
type CellRef struct {
	Figure string
	Row    string
	Col    string
}

func (r CellRef) String() string {
	return r.Figure + ":" + r.Row + ":" + r.Col
}

// RunnableCellRefs enumerates every cell of every figure that has a run
// function (paper-NA cells are skipped), in rendering order.
func RunnableCellRefs(o Options) []CellRef {
	var refs []CellRef
	for _, f := range Figures(o) {
		for _, r := range f.rows {
			for _, c := range r.cells {
				if c.run == nil || c.paperIter == "NA" {
					continue
				}
				refs = append(refs, CellRef{Figure: f.ID, Row: r.label, Col: c.col})
			}
		}
	}
	return refs
}

// RunSingleCell executes the referenced cell exactly as Figure.Run would
// (probe run and fault schedule included when faults are active) and
// returns the measured cell. ctx cancels the run mid-phase; the returned
// error then wraps context.Canceled.
func RunSingleCell(ctx context.Context, ref CellRef, o Options) (Cell, error) {
	o = o.withDefaults()
	if ctx != nil {
		o.Ctx = ctx
	}
	f := FigureByID(ref.Figure, o)
	if f == nil {
		return Cell{}, fmt.Errorf("bench: unknown figure %q", ref.Figure)
	}
	return runSingleCellIn(f, ref, o)
}

// runSingleCellIn runs ref's cell within an already-resolved figure whose
// Options match o (ExecuteSpec resolves once for validation and reuses).
func runSingleCellIn(f *Figure, ref CellRef, o Options) (Cell, error) {
	for _, r := range f.rows {
		if r.label != ref.Row {
			continue
		}
		for _, c := range r.cells {
			if c.col == ref.Col {
				return runCell(c, f.ID, r.label, o)
			}
		}
	}
	return Cell{}, fmt.Errorf("bench: no cell %s", ref)
}
