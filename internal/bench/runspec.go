package bench

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"mlbench/internal/datagen"
	"mlbench/internal/randgen"
	"mlbench/internal/trace"
)

// RunSpec is the one serializable description of a benchmark run: which
// figure (or single table cell) to execute, at what scale and seed, under
// which fault schedule, with which trace capture. It is the single way
// runs are configured — the HTTP body accepted by the experiment service,
// the `mlbench run` CLI, and the perf gate all construct a RunSpec
// instead of threading positional parameters.
//
// Identical normalized specs always produce byte-identical rendered
// tables, at any Workers value: Workers and the trace export paths are
// host-side execution concerns and are therefore excluded from CacheKey.
type RunSpec struct {
	// Figure is the figure ID to run (core.FigureIDs / `mlbench list`).
	Figure string `json:"figure"`
	// Row and Col, when both set, narrow the run to a single table cell
	// (the labels RunnableCellRefs reports).
	Row string `json:"row,omitempty"`
	Col string `json:"col,omitempty"`
	// Iterations per chain (default 2).
	Iterations int `json:"iters,omitempty"`
	// ScaleDiv divides the default scale-down factors (default 1).
	ScaleDiv float64 `json:"scalediv,omitempty"`
	// Seed is the simulation seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds host goroutines (0 = GOMAXPROCS). It cannot affect
	// any virtual-clock result and is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// Shards is the parameter-server shard count used by the fig-ps rows
	// (0 = one shard per machine). It changes the rendered table, so it
	// participates in the cache key.
	Shards int `json:"shards,omitempty"`
	// Staleness is the parameter-server staleness bound s used by the
	// fig-ps rows (0 = synchronous, BSP-equivalent cycles). Cache-keyed.
	Staleness int `json:"staleness,omitempty"`
	// Machines is the fig-scale sweep's top machine count; the sweep's
	// columns run Machines/100, Machines/10, and Machines simulated
	// machines. Only meaningful for fig-scale (Normalize defaults it to
	// 10,000 there; Validate rejects it elsewhere). It changes the
	// rendered table, so it participates in the cache key.
	Machines int `json:"machines,omitempty"`
	// Chunk bounds the elements resident per streamed-partition cursor
	// (0 = sim.DefaultChunkElems). Purely a host-memory knob — results
	// are byte-identical at any value — so, like Workers, it is excluded
	// from the cache key.
	Chunk int `json:"chunk,omitempty"`
	// Sampler is the LDA/HMM token hot-path tier: "dense" (default,
	// byte-identical to the historical O(T) scan), "alias" (exact
	// per-element alias draw), or "mhalias" (cached Metropolis-Hastings).
	// It changes every sampled stream, so it is cache-keyed.
	Sampler string `json:"sampler,omitempty"`
	// Dataset is a datagen scenario name (datagen.ScenarioNames) reshaping
	// every task's synthetic data; empty runs the historical paper-shape
	// generators, byte-identical to before the knob existed. It changes
	// the sampled data, so it is cache-keyed.
	Dataset string `json:"dataset,omitempty"`
	// Faults injects machine crashes and stragglers.
	Faults FaultConfig `json:"faults"`
	// Trace selects trace capture and export.
	Trace TraceSpec `json:"trace"`
}

// TraceSpec is the RunSpec trace section.
type TraceSpec struct {
	// Phases appends each cell's most expensive simulation phases to its
	// notes (`mlbench run -trace`). It changes the rendered table, so it
	// participates in the cache key.
	Phases bool `json:"phases,omitempty"`
	// Out / CSV are export destinations for the Chrome trace-event JSON
	// and CSV renderings. Pure output paths: excluded from the cache key,
	// and ignored by the serving layer (which exposes download endpoints
	// instead).
	Out string `json:"out,omitempty"`
	CSV string `json:"csv,omitempty"`
	// Metrics collects the per-engine/cell/phase metrics registry.
	Metrics bool `json:"metrics,omitempty"`
}

// ParseRunSpec decodes a JSON RunSpec strictly: unknown fields are
// rejected so a typo'd knob fails loudly instead of silently running the
// default experiment.
func ParseRunSpec(data []byte) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("bench: parse run spec: %w", err)
	}
	return s, nil
}

// Normalize fills defaulted fields, so that a zero-knob spec and a spec
// with the defaults spelled out are the same run — and hash to the same
// CacheKey.
func (s RunSpec) Normalize() RunSpec {
	if s.Iterations == 0 {
		s.Iterations = 2
	}
	if s.ScaleDiv == 0 {
		s.ScaleDiv = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Sampler == "" {
		s.Sampler = randgen.TierDense.String()
	}
	if s.Figure == "fig-scale" && s.Machines == 0 {
		s.Machines = defaultScaleMachines
	}
	if s.Faults.Active() {
		s.Faults = s.Faults.withFaultDefaults()
	}
	return s
}

// figureIDs lists the registered figure ids in paper order.
func figureIDs() []string {
	var ids []string
	for _, f := range Figures(Options{}) {
		ids = append(ids, f.ID)
	}
	return ids
}

// Validate checks the spec and returns an actionable error: unknown
// figure, row, or column ids are rejected together with the list of valid
// ids rather than silently matching nothing.
func (s RunSpec) Validate() error {
	if s.Figure == "" {
		return fmt.Errorf("bench: run spec needs a figure (valid figures: %s)", strings.Join(figureIDs(), ", "))
	}
	// Build the figure from the spec's own normalized options: knobs like
	// Machines change the column labels, and row/col selection must be
	// checked against the figure ExecuteSpec will actually run.
	f := FigureByID(s.Figure, s.Normalize().Options())
	if f == nil {
		return fmt.Errorf("bench: unknown figure %q (valid figures: %s)", s.Figure, strings.Join(figureIDs(), ", "))
	}
	if (s.Row == "") != (s.Col == "") {
		return fmt.Errorf("bench: cell selection needs both row and col (got row=%q col=%q)", s.Row, s.Col)
	}
	if s.Row != "" {
		var row *rowSpec
		var rows []string
		for i := range f.rows {
			rows = append(rows, f.rows[i].label)
			if f.rows[i].label == s.Row {
				row = &f.rows[i]
			}
		}
		if row == nil {
			return fmt.Errorf("bench: figure %s has no row %q (valid rows: %s)", s.Figure, s.Row, strings.Join(rows, ", "))
		}
		var cols []string
		found := false
		for _, c := range row.cells {
			cols = append(cols, c.col)
			if c.col == s.Col {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("bench: figure %s row %q has no column %q (valid columns: %s)", s.Figure, s.Row, s.Col, strings.Join(cols, ", "))
		}
	}
	if s.Iterations < 0 {
		return fmt.Errorf("bench: iterations must be >= 0, got %d", s.Iterations)
	}
	if s.ScaleDiv < 0 {
		return fmt.Errorf("bench: scalediv must be >= 0, got %v", s.ScaleDiv)
	}
	if s.Workers < 0 {
		return fmt.Errorf("bench: workers must be >= 0, got %d", s.Workers)
	}
	if s.Shards < 0 {
		return fmt.Errorf("bench: shards must be >= 0 (0 = one per machine), got %d", s.Shards)
	}
	if s.Staleness < 0 {
		return fmt.Errorf("bench: staleness must be >= 0 (0 = synchronous), got %d", s.Staleness)
	}
	if s.Machines != 0 && s.Figure != "fig-scale" {
		return fmt.Errorf("bench: machines only applies to fig-scale, got machines=%d for figure %q", s.Machines, s.Figure)
	}
	if s.Machines != 0 && s.Machines < 100 {
		return fmt.Errorf("bench: machines must be >= 100 (the sweep's smallest column is machines/100), got %d", s.Machines)
	}
	if s.Chunk < 0 {
		return fmt.Errorf("bench: chunk must be >= 0 (0 = default chunk size), got %d", s.Chunk)
	}
	if _, err := randgen.ParseSamplerTier(s.Sampler); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := datagen.ParseScenario(s.Dataset); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if s.Faults.Failures < 0 {
		return fmt.Errorf("bench: failures must be >= 0, got %d", s.Faults.Failures)
	}
	if s.Faults.Straggle != 0 && s.Faults.Straggle < 1 {
		return fmt.Errorf("bench: straggle must be 0 (off) or >= 1, got %v", s.Faults.Straggle)
	}
	return nil
}

// keyDoc is the canonical cache-key document: exactly the normalized
// fields that can influence the bytes of the rendered table, in a fixed
// order. Workers and the trace export paths are deliberately absent —
// results are byte-identical at any worker count, and export paths do
// not change what is computed. Bump keyVersion when this set changes.
type keyDoc struct {
	V            int     `json:"v"`
	Figure       string  `json:"figure"`
	Row          string  `json:"row"`
	Col          string  `json:"col"`
	Iters        int     `json:"iters"`
	ScaleDiv     float64 `json:"scalediv"`
	Seed         uint64  `json:"seed"`
	Failures     int     `json:"failures"`
	FailAt       float64 `json:"failat"`
	Straggle     float64 `json:"straggle"`
	Ckpt         int     `json:"ckpt"`
	Snap         int     `json:"snap"`
	Shards       int     `json:"shards"`
	Staleness    int     `json:"staleness"`
	Machines     int     `json:"machines"`
	Sampler      string  `json:"sampler"`
	Dataset      string  `json:"dataset"`
	TracePhases  bool    `json:"trace_phases"`
	TraceMetrics bool    `json:"trace_metrics"`
}

const keyVersion = 5

// CacheKey returns the canonical content hash of the spec: the SHA-256 of
// a fixed-order JSON document over the normalized result-affecting
// fields. Two specs with equal keys always produce byte-identical
// rendered tables, which is what makes request coalescing and result
// caching sound.
func (s RunSpec) CacheKey() string {
	n := s.Normalize()
	doc := keyDoc{
		V:        keyVersion,
		Figure:   n.Figure,
		Row:      n.Row,
		Col:      n.Col,
		Iters:    n.Iterations,
		ScaleDiv: n.ScaleDiv,
		Seed:     n.Seed,
		Failures: n.Faults.Failures, FailAt: n.Faults.FailAt, Straggle: n.Faults.Straggle,
		Ckpt: n.Faults.BSPCheckpointEvery, Snap: n.Faults.GASSnapshotEvery,
		Shards: n.Shards, Staleness: n.Staleness, Machines: n.Machines,
		Sampler: n.Sampler, Dataset: n.Dataset,
		TracePhases: n.Trace.Phases, TraceMetrics: n.Trace.Metrics,
	}
	data, err := json.Marshal(doc)
	if err != nil { // fixed struct of scalars: cannot fail
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Options translates the spec into harness options. Runtime wiring
// (context, recorder, progress sink) is attached by ExecuteSpec — it is
// not part of the serializable spec. The sampler string has passed
// Validate by the time Options runs, so the parse cannot fail; a zero
// tier falls out of the empty string either way.
func (s RunSpec) Options() Options {
	tier, _ := randgen.ParseSamplerTier(s.Sampler)
	return Options{
		Iterations:  s.Iterations,
		ScaleDiv:    s.ScaleDiv,
		Seed:        s.Seed,
		HostWorkers: s.Workers,
		PSShards:    s.Shards,
		PSStaleness: s.Staleness,
		Machines:    s.Machines,
		ChunkElems:  s.Chunk,
		Sampler:     tier,
		Dataset:     s.Dataset,
		Trace:       s.Trace.Phases,
		TraceOut:    s.Trace.Out,
		TraceCSV:    s.Trace.CSV,
		Metrics:     s.Trace.Metrics,
		Faults:      s.Faults,
	}
}

// ExecOptions is the runtime wiring for ExecuteSpec: everything a caller
// may attach to a run that is not part of the run's identity.
type ExecOptions struct {
	// Recorder receives the structured trace. When nil and the spec
	// enables any trace option, ExecuteSpec creates one; the recorder
	// actually used is returned in the SpecResult.
	Recorder *trace.Recorder
	// Progress, when non-nil, receives a phase-barrier event stream of
	// the measured runs (not the clean probe runs).
	Progress func(ProgressEvent)
	// SkipExports suppresses the spec's Trace.Out / Trace.CSV file writes;
	// the serving layer sets it and exposes download endpoints instead.
	SkipExports bool
}

// SpecResult is the outcome of one executed spec.
type SpecResult struct {
	// Spec is the normalized spec that ran.
	Spec RunSpec
	// Table is the run's rendered figure (a 1x1 table for cell runs).
	Table *Table
	// Recorder holds the run's trace when tracing was enabled or a
	// recorder was supplied; nil otherwise.
	Recorder *trace.Recorder
}

// ExecuteSpec validates, normalizes, and runs a spec. It is the single
// execution path shared by the CLI, the experiment service, and the perf
// gate; the returned table's bytes depend only on the spec's CacheKey
// fields, never on ctx, the worker count, or the attached sinks.
func ExecuteSpec(ctx context.Context, spec RunSpec, ex ExecOptions) (*SpecResult, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	o := spec.Options()
	o.Ctx = ctx
	o.Progress = ex.Progress
	o.Recorder = ex.Recorder
	if o.Recorder == nil && o.wantTrace() {
		o.Recorder = trace.NewRecorder()
	}
	res := &SpecResult{Spec: spec, Recorder: o.Recorder}
	f := FigureByID(spec.Figure, o)
	if spec.Row != "" {
		cell, err := runSingleCellIn(f, CellRef{Figure: spec.Figure, Row: spec.Row, Col: spec.Col}, o)
		if err != nil {
			return nil, err
		}
		res.Table = &Table{
			ID:    spec.Figure,
			Title: f.Title,
			Rows:  []string{spec.Row},
			Cols:  []string{spec.Col},
			Cells: map[string]map[string]Cell{spec.Row: {spec.Col: cell}},
		}
	} else {
		t, err := f.RunContext(ctx, o)
		if err != nil {
			return nil, err
		}
		res.Table = t
	}
	if !ex.SkipExports {
		if spec.Trace.Out != "" {
			if err := trace.WriteChromeFile(spec.Trace.Out, o.Recorder); err != nil {
				return nil, fmt.Errorf("bench: trace export: %w", err)
			}
		}
		if spec.Trace.CSV != "" {
			if err := trace.WriteCSVFile(spec.Trace.CSV, o.Recorder); err != nil {
				return nil, fmt.Errorf("bench: trace CSV export: %w", err)
			}
		}
	}
	return res, nil
}
