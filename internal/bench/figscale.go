package bench

import (
	"fmt"

	"mlbench/internal/psengine"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/tasks/task"
)

// defaultScaleMachines is the fig-scale sweep's top machine count when
// Options.Machines is unset.
const defaultScaleMachines = 10_000

// scaleMachines resolves the sweep's top machine count.
func scaleMachines(o Options) int {
	if o.Machines > 0 {
		return o.Machines
	}
	return defaultScaleMachines
}

// defaultScaleShards caps the parameter-server shard count for the
// fig-scale PS row: the engine's default of one shard per machine makes
// server-side delta traffic quadratic in the cluster size, which is
// exactly the deployment mistake real parameter servers avoid with a
// fixed server pool.
const defaultScaleShards = 64

// figScale is the scale-out sweep enabled by the streamed partition
// substrate: GMM and the amnesiac streamed LDA formulation at
// Machines/100, Machines/10, and Machines simulated machines (default
// 100 -> 1,000 -> 10,000), across all five engines. The paper stops at
// 100 machines; this figure extrapolates its models two orders of
// magnitude further, which is only possible because partition state
// streams chunk by chunk instead of being materialized per machine:
// host memory stays bounded by chunk size x workers while the simulated
// cluster grows. There are no paper reference times, so the paper
// column renders "?". GraphLab's rows run under the engine's boot clamp
// (the paper's cluster ceiling) — the cells report what the clamped
// deployment achieves.
func figScale(o Options) *Figure {
	top := scaleMachines(o)
	ps := psengine.Config{Shards: o.PSShards, Staleness: o.PSStaleness}
	if ps.Shards == 0 {
		ps.Shards = defaultScaleShards
	}
	py := sim.ProfilePython

	// Small model dimensions keep the per-machine statistics payloads
	// model-sized while the machine count carries the sweep.
	gmmC := gmmtask.Config{K: 4, D: 4, PointsPerMachine: 1_000_000,
		SuperVertex: true, SVPerMachine: 1, Iterations: o.Iterations, Dataset: o.Dataset}
	ldaC := ldatask.Config{T: 20, V: 1_000, DocsPerMachine: 100_000, AvgDocLen: 20,
		Iterations: o.Iterations, Sampler: o.Sampler, Dataset: o.Dataset}
	const gmmScaleDown = 10_000 // 100 real points per machine
	const ldaScaleDown = 50_000 // 2 real documents per machine

	type col struct {
		name     string
		machines int
		scale    float64
		runs     map[string]runFn
	}
	var cols []col
	for _, div := range []int{100, 10, 1} {
		mc := top / div
		if mc < 1 {
			mc = 1
		}
		cols = append(cols, col{
			name: fmt.Sprintf("GMM %dm", mc), machines: mc, scale: gmmScaleDown,
			runs: map[string]runFn{
				"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, gmmC) },
				"spark":    func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, gmmC, py) },
				"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, gmmC) },
				"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, gmmC) },
				"ps":       func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunPS(cl, gmmC, ps) },
			},
		})
	}
	for _, div := range []int{100, 10, 1} {
		mc := top / div
		if mc < 1 {
			mc = 1
		}
		cols = append(cols, col{
			name: fmt.Sprintf("LDA %dm", mc), machines: mc, scale: ldaScaleDown,
			runs: map[string]runFn{
				"simsql":   func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunScaleSimSQL(cl, ldaC) },
				"spark":    func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunScaleSpark(cl, ldaC, py) },
				"graphlab": func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunScaleGraphLab(cl, ldaC) },
				"giraph":   func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunScaleGiraph(cl, ldaC) },
				"ps":       func(cl *sim.Cluster) (*task.Result, error) { return ldatask.RunScalePS(cl, ldaC, ps) },
			},
		})
	}

	rows := []struct{ label, platform string }{
		{"SimSQL", "simsql"},
		{"Spark (Python)", "spark"},
		{"GraphLab (Super Vertex)", "graphlab"},
		{"Giraph (Super Vertex)", "giraph"},
		{"Param Server", "ps"},
	}
	f := &Figure{
		ID: "fig-scale",
		Title: fmt.Sprintf("Streamed scale-out sweep: GMM and LDA at %d/%d/%d simulated machines (shards=%d staleness=%d on the PS row)",
			cols[0].machines, cols[1].machines, cols[2].machines, ps.Shards, ps.Staleness),
	}
	for _, r := range rows {
		cells := make([]cellSpec, len(cols))
		for i, c := range cols {
			cells[i] = cellSpec{col: c.name, machines: c.machines, scale: c.scale, run: c.runs[r.platform]}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}
