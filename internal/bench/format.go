// Package bench is the benchmark harness — the paper's actual
// contribution. It holds the registry of every experiment in the
// evaluation (one entry per table cell of Figures 1-6), the runner that
// executes them on the simulated cluster, the paper's published numbers
// for side-by-side comparison, and the table formatter that prints
// results in the paper's HH:MM:SS layout.
package bench

import (
	"fmt"
	"strings"
)

// FormatDuration renders virtual seconds the way the paper's tables do:
// H:MM:SS when an hour or more, MM:SS otherwise.
func FormatDuration(sec float64) string {
	if sec < 0 {
		return "?"
	}
	s := int(sec + 0.5)
	h := s / 3600
	m := (s % 3600) / 60
	r := s % 60
	if h > 0 {
		return fmt.Sprintf("%d:%02d:%02d", h, m, r)
	}
	return fmt.Sprintf("%d:%02d", m, r)
}

// ParseDuration parses the paper's H:MM:SS / MM:SS strings to seconds;
// -1 means Fail/NA.
func ParseDuration(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" || s == "Fail" || s == "NA" {
		return -1
	}
	parts := strings.Split(s, ":")
	var total float64
	for _, p := range parts {
		var v float64
		fmt.Sscanf(p, "%f", &v)
		total = total*60 + v
	}
	return total
}

// Cell is one measured table cell.
type Cell struct {
	RowLabel string
	ColLabel string
	// Measured values (negative when failed or not applicable).
	IterSec float64
	InitSec float64
	Failed  bool
	Skipped bool // configuration the paper marked NA
	Notes   []string
	// Paper reference values (negative when Fail/NA).
	PaperIterSec float64
	PaperInitSec float64
	PaperFail    bool
	PaperNA      bool
}

// String renders the cell in the paper's "iter (init)" format.
func (c Cell) String() string {
	switch {
	case c.Skipped:
		return "NA"
	case c.Failed:
		return "Fail"
	default:
		return fmt.Sprintf("%s (%s)", FormatDuration(c.IterSec), FormatDuration(c.InitSec))
	}
}

// PaperString renders the paper's value for the cell.
func (c Cell) PaperString() string {
	switch {
	case c.PaperNA:
		return "NA"
	case c.PaperFail:
		return "Fail"
	case c.PaperIterSec < 0:
		return "?"
	default:
		if c.PaperInitSec >= 0 {
			return fmt.Sprintf("%s (%s)", FormatDuration(c.PaperIterSec), FormatDuration(c.PaperInitSec))
		}
		return FormatDuration(c.PaperIterSec)
	}
}

// Agrees reports whether the measured cell matches the paper
// qualitatively: Fail cells match Fail cells, and timed cells match when
// the per-iteration times are within the given multiplicative factor.
func (c Cell) Agrees(factor float64) bool {
	if c.Skipped || c.PaperNA {
		return true
	}
	if !c.PaperFail && c.PaperIterSec <= 0 {
		// No paper reference at all (the fig7 family, fig-ps): nothing to
		// disagree with, whatever the measured outcome.
		return true
	}
	if c.Failed || c.PaperFail {
		return c.Failed == c.PaperFail
	}
	if c.IterSec <= 0 {
		return true
	}
	r := c.IterSec / c.PaperIterSec
	return r >= 1/factor && r <= factor
}

// Table is one rendered figure.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  []string
	Cells map[string]map[string]Cell // row -> col -> cell
	// Notes carries table-level annotations: the metrics dump when
	// Options.Metrics is set, and any trace export errors.
	Notes []string
}

// Render prints the table with measured and paper values side by side.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	rowWidth := 28
	colWidth := 34
	fmt.Fprintf(&b, "%-*s", rowWidth, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%-*s", colWidth, c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowWidth, r)
		for _, cl := range t.Cols {
			cell := t.Cells[r][cl]
			fmt.Fprintf(&b, "%-*s", colWidth, fmt.Sprintf("%s [paper %s]", cell.String(), cell.PaperString()))
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		if !strings.HasSuffix(n, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderMarkdown prints the table as a GitHub-flavored markdown table
// with measured and paper values per cell.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| |")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Cols {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r)
		for _, cl := range t.Cols {
			cell := t.Cells[r][cl]
			fmt.Fprintf(&b, " %s *[paper %s]* |", cell.String(), cell.PaperString())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Agreement summarizes how many cells match the paper within the factor.
func (t *Table) Agreement(factor float64) (matched, total int) {
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			cell := t.Cells[r][c]
			if cell.Skipped || cell.PaperNA {
				continue
			}
			total++
			if cell.Agrees(factor) {
				matched++
			}
		}
	}
	return
}
