package bench

import (
	"math"
	"testing"

	"mlbench/internal/trace"
)

// TestCellTraceClockIdentity is the tracing subsystem's accounting gate,
// run against every engine: the phase and overhead spans recorded for a
// cell must sum exactly to the cluster's final virtual clock — the same
// number the benchmark tables report. Nothing that advances the clock may
// escape the trace, and no fault/task span may double-count into it.
func TestCellTraceClockIdentity(t *testing.T) {
	for _, platform := range []string{"simsql", "spark", "graphlab", "giraph"} {
		platform := platform
		t.Run(platform, func(t *testing.T) {
			t.Parallel()
			o := Options{Iterations: 2, Seed: 3, ScaleDiv: 0.1}
			rec := trace.NewRecorder()
			o.Recorder = rec
			run := fig7RunFn(o, platform)
			rec.BeginCell(platform)
			cl := newFaultCluster(5, gmmScale(10), o, nil, FaultConfig{}, "test")
			if _, err := run(cl); err != nil {
				t.Fatal(err)
			}
			got, want := rec.ClockSum(platform), cl.Now()
			if want <= 0 {
				t.Fatalf("cluster clock = %v, want > 0", want)
			}
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("phase+overhead span sum = %v, cluster clock = %v", got, want)
			}
			if len(rec.CellSpans(platform)) == 0 {
				t.Error("no spans recorded")
			}
		})
	}
}

// TestFaultTraceAccounting injects a crash the way the fig7 recovery
// family does and checks the fault appears in the trace with honest
// arithmetic: one crash event per observed fault, lost-work spans summing
// to the reported lost seconds, and the fault-detect overhead plus the
// recovery span covering exactly the FaultInfo.RecoverySec overhead the
// cell's notes report.
func TestFaultTraceAccounting(t *testing.T) {
	o := Options{Iterations: 2, Seed: 3, ScaleDiv: 0.1}
	fc := FaultConfig{Failures: 1}.withFaultDefaults()
	run := fig7RunFn(o, "spark")

	// Clean probe run fixes the crash time, exactly as runCell does.
	probe := newCluster(5, gmmScale(10), o)
	res, err := run(probe)
	if err != nil {
		t.Fatal(err)
	}
	sched := fc.schedule(res.InitSec, res.AvgIterSec(), o.Iterations, 5, o.Seed)

	rec := trace.NewRecorder()
	o.Recorder = rec
	rec.BeginCell("faulted")
	cl := newFaultCluster(5, gmmScale(10), o, sched, fc, "test")
	if _, err := run(cl); err != nil {
		t.Fatal(err)
	}
	faults := cl.Faults()
	if len(faults) == 0 {
		t.Fatal("no faults observed; schedule did not fire")
	}
	var lostWant, recoveryWant float64
	for _, f := range faults {
		lostWant += f.LostSec
		recoveryWant += f.RecoverySec
	}

	var lostGot, detectGot, recoverGot float64
	for _, s := range rec.CellSpans("faulted") {
		switch {
		case s.Cat == trace.CatFault && s.Name == "lost-work":
			lostGot += s.Dur
		case s.Cat == trace.CatOverhead && s.Name == "fault-detect":
			detectGot += s.Dur
		case s.Cat == trace.CatFault && s.Name == "recovery":
			recoverGot += s.Dur
		}
	}
	crashes := 0
	for _, e := range rec.CellEvents("faulted") {
		if e.Name == "crash" && e.Kind == trace.KindFault {
			crashes++
		}
	}
	if crashes != len(faults) {
		t.Errorf("crash events = %d, observed faults = %d", crashes, len(faults))
	}
	if math.Abs(lostGot-lostWant) > 1e-9*(1+lostWant) {
		t.Errorf("lost-work spans sum to %v, FaultInfo.LostSec sums to %v", lostGot, lostWant)
	}
	if got := detectGot + recoverGot; math.Abs(got-recoveryWant) > 1e-9*(1+recoveryWant) {
		t.Errorf("fault-detect (%v) + recovery (%v) spans = %v, FaultInfo.RecoverySec sums to %v",
			detectGot, recoverGot, got, recoveryWant)
	}
	// The clock identity must survive fault handling: recovery charges are
	// regular phase/overhead time, and the overlapping fault spans must
	// not be double-counted into it.
	if got, want := rec.ClockSum("faulted"), cl.Now(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("faulted run span sum = %v, cluster clock = %v", got, want)
	}
}
