package bench

import (
	"mlbench/internal/psengine"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/task"
)

// figImbal measures adversarial partition imbalance: the GMM task on all
// five engines (super-vertex variants for the graph engines, as in
// fig-ps), with the datagen imbal scenarios skewing how many points each
// machine holds. The point distribution itself stays the paper's — the
// imbal-* scenarios declare only a partition section — so the columns
// isolate straggling from data placement: BSP engines wait for the most
// loaded machine at every barrier, while the asynchronous parameter
// server keeps its lightly loaded workers busy. The paper never ran
// imbalanced partitions, so the paper column renders as "?" and the
// table is judged by the perf gate's golden snapshots instead.
func figImbal(o Options) *Figure {
	ps := psengine.Config{Shards: o.PSShards, Staleness: o.PSStaleness}
	py := sim.ProfilePython

	cols := []struct{ name, dataset string }{
		{"balanced", ""},
		{"imbal-2x", "imbal-2x"},
		{"imbal-8x", "imbal-8x"},
	}
	rows := []struct {
		label, platform string
		sv              bool
	}{
		{"SimSQL", "simsql", false},
		{"Spark (Python)", "spark", false},
		{"GraphLab (Super Vertex)", "graphlab", true},
		{"Giraph (Super Vertex)", "giraph", true},
		{"Param Server", "ps", false},
	}
	f := &Figure{
		ID:    "fig-imbal",
		Title: "GMM under partition imbalance (5 machines; datagen scenarios per column)",
	}
	for _, r := range rows {
		platform := r.platform
		cells := make([]cellSpec, len(cols))
		for i, c := range cols {
			cfg := gmmCfg(o, 10, r.sv)
			cfg.Dataset = c.dataset
			var run runFn
			switch platform {
			case "simsql":
				run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, cfg) }
			case "spark":
				run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, cfg, py) }
			case "graphlab":
				run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, cfg) }
			case "giraph":
				run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, cfg) }
			case "ps":
				run = func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunPS(cl, cfg, ps) }
			}
			cells[i] = cellSpec{col: c.name, machines: 5, scale: gmmScale(10), run: run}
		}
		f.rows = append(f.rows, rowSpec{label: r.label, cells: cells})
	}
	return f
}
