package bench

import (
	"math"
	"testing"

	"mlbench/internal/models/diag"
	"mlbench/internal/psengine"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/tasks/task"
)

// Cross-engine statistical equivalence: the four platforms are different
// execution strategies for the same Gibbs samplers over the same planted
// data, so after burn-in their per-iteration quality chains must be draws
// from the same distribution. Gelman-Rubin R-hat across the four chains
// is the paper-standard way to check that, and ESS guards against a
// degenerate (stuck) chain passing on variance alone.

// equivCluster builds the cluster every engine runs on. Identical
// machines/scale/seed means identical planted data across engines.
func equivCluster(machines int, scale float64) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = scale
	return sim.New(cfg)
}

type engineRun struct {
	name string
	run  func(cl *sim.Cluster) (*task.Result, error)
}

// collectChains runs every engine, checks chain lengths and per-engine
// ESS, and returns the post-burn-in, thinned chains in engine order.
func collectChains(t *testing.T, machines int, scale float64, iters, burn, thin int, essFloor float64, runs []engineRun) [][]float64 {
	t.Helper()
	chains := make([][]float64, 0, len(runs))
	for _, r := range runs {
		cl := equivCluster(machines, scale)
		res, err := r.run(cl)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(res.Chain) != iters {
			t.Fatalf("%s: chain length = %d, want %d", r.name, len(res.Chain), iters)
		}
		var chain []float64
		for i := burn; i < len(res.Chain); i += thin {
			chain = append(chain, res.Chain[i])
		}
		if ess := diag.ESS(chain); ess < essFloor {
			t.Errorf("%s: ESS = %.2f below floor %v — chain is stuck", r.name, ess, essFloor)
		}
		chains = append(chains, chain)
	}
	return chains
}

func TestCrossEngineGMMEquivalence(t *testing.T) {
	cfg := gmmtask.Config{K: 2, D: 2, PointsPerMachine: 100_000, Iterations: 100, Seed: 99}
	// GraphLab's gather/apply pipeline delivers memberships to the model
	// update one round late, so its chain interleaves two subchains of
	// period 2. Thinning every engine by the pipeline depth leaves one
	// coherent subchain apiece; 31 rounds of burn-in is ample for this
	// small, well-separated mixture.
	const burn, thin = 31, 2
	runs := []engineRun{
		{"spark", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, cfg, sim.ProfilePython) }},
		{"simsql", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, cfg) }},
		{"graphlab", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, cfg) }},
		{"giraph", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, cfg) }},
		{"ps", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunPS(cl, cfg, psengine.Config{}) }},
	}
	chains := collectChains(t, 2, 1000, cfg.Iterations, burn, thin, 3, runs)
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("GMM log-likelihood chains disagree across engines: R-hat = %.4f, want < 1.1", rhat)
	}
}

func TestCrossEngineLassoEquivalence(t *testing.T) {
	cfg := lassotask.Config{P: 30, PointsPerMachine: 50_000, Iterations: 40, Lambda: 1, Seed: 7}
	// The Bayesian Lasso posterior is unimodal and the paper notes it
	// "converges very quickly": no thinning needed.
	const burn, thin = 10, 1
	runs := []engineRun{
		{"spark", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSpark(cl, cfg) }},
		{"simsql", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSimSQL(cl, cfg) }},
		{"graphlab", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGraphLab(cl, cfg) }},
		{"giraph", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGiraph(cl, cfg) }},
		{"ps", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunPS(cl, cfg, psengine.Config{}) }},
	}
	chains := collectChains(t, 2, 100, cfg.Iterations, burn, thin, 3, runs)
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("Lasso recovery-error chains disagree across engines: R-hat = %.4f, want < 1.1", rhat)
	}
}

// TestPSStalenessSweep certifies the parameter-server engine's staleness
// knob end to end: at s=0 the cycles are synchronous and the GMM chain is
// bit-identical to Giraph's (the strongest possible equivalence — same
// RNG stream, same fold order, same floats); at s>=1 workers compute
// against genuinely stale snapshots so the chain must diverge from the
// synchronous one; at s=1 the stale sampler still targets the same
// posterior (R-hat against the synchronous chain under the battery's 1.1
// bar); and as s grows R-hat degrades gracefully — monotonically and
// bounded, not a cliff. The sweep is fully deterministic (fixed seeds,
// deterministic simulation), so the measured ordering is stable.
func TestPSStalenessSweep(t *testing.T) {
	cfg := gmmtask.Config{K: 2, D: 2, PointsPerMachine: 100_000, Iterations: 100, Seed: 99}
	const burn, thin = 31, 2
	runPS := func(s int) []float64 {
		cl := equivCluster(2, 1000)
		res, err := gmmtask.RunPS(cl, cfg, psengine.Config{Staleness: s})
		if err != nil {
			t.Fatalf("ps s=%d: %v", s, err)
		}
		return res.Chain
	}
	cl := equivCluster(2, 1000)
	gres, err := gmmtask.RunGiraph(cl, cfg)
	if err != nil {
		t.Fatalf("giraph: %v", err)
	}
	giraph := gres.Chain

	// s=0: BSP degeneration, bit-identical to the Giraph chain.
	ps0 := runPS(0)
	if len(ps0) != len(giraph) {
		t.Fatalf("s=0 chain length %d, want %d", len(ps0), len(giraph))
	}
	for i := range ps0 {
		if math.Float64bits(ps0[i]) != math.Float64bits(giraph[i]) {
			t.Fatalf("s=0 chain diverges from Giraph at iteration %d: %v vs %v", i, ps0[i], giraph[i])
		}
	}

	thinned := func(chain []float64) []float64 {
		var out []float64
		for i := burn; i < len(chain); i += thin {
			out = append(out, chain[i])
		}
		return out
	}
	sweep := []int{1, 2, 4}
	rhats := make([]float64, len(sweep))
	for i, s := range sweep {
		ps := runPS(s)
		same := true
		for j := range ps {
			if math.Float64bits(ps[j]) != math.Float64bits(giraph[j]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("s=%d chain is identical to the synchronous one — staleness had no effect", s)
		}
		rhat, err := diag.RHat([][]float64{thinned(giraph), thinned(ps)})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("staleness %d: R-hat vs synchronous = %.4f", s, rhat)
		rhats[i] = rhat
	}
	// A small bound keeps the sampler inside the battery's bar...
	if rhats[0] > 1.1 {
		t.Errorf("s=1 chain left the posterior: R-hat = %.4f, want < 1.1", rhats[0])
	}
	// ...larger bounds degrade monotonically (staleness has a measurable,
	// ordered cost)...
	for i := 1; i < len(rhats); i++ {
		if rhats[i] < rhats[i-1] {
			t.Errorf("R-hat not monotone in staleness: s=%d gives %.4f < s=%d's %.4f",
				sweep[i], rhats[i], sweep[i-1], rhats[i-1])
		}
	}
	// ...and even s=4 stays bounded rather than falling off a cliff.
	if rhats[len(rhats)-1] > 2 {
		t.Errorf("s=%d degradation is a cliff: R-hat = %.4f, want < 2", sweep[len(sweep)-1], rhats[len(rhats)-1])
	}
}

// TestPSLassoSyncMatchesGiraph: the s=0 degeneration holds for the Lasso
// sampler too — the parameter-server chain is bit-identical to Giraph's
// per-point formulation.
func TestPSLassoSyncMatchesGiraph(t *testing.T) {
	cfg := lassotask.Config{P: 30, PointsPerMachine: 50_000, Iterations: 40, Lambda: 1, Seed: 7}
	cl := equivCluster(2, 100)
	gres, err := lassotask.RunGiraph(cl, cfg)
	if err != nil {
		t.Fatalf("giraph: %v", err)
	}
	cl = equivCluster(2, 100)
	pres, err := lassotask.RunPS(cl, cfg, psengine.Config{})
	if err != nil {
		t.Fatalf("ps: %v", err)
	}
	if len(pres.Chain) != len(gres.Chain) {
		t.Fatalf("chain length %d, want %d", len(pres.Chain), len(gres.Chain))
	}
	for i := range pres.Chain {
		if math.Float64bits(pres.Chain[i]) != math.Float64bits(gres.Chain[i]) {
			t.Fatalf("s=0 Lasso chain diverges from Giraph at iteration %d: %v vs %v",
				i, pres.Chain[i], gres.Chain[i])
		}
	}
}
