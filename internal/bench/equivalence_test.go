package bench

import (
	"testing"

	"mlbench/internal/models/diag"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/tasks/task"
)

// Cross-engine statistical equivalence: the four platforms are different
// execution strategies for the same Gibbs samplers over the same planted
// data, so after burn-in their per-iteration quality chains must be draws
// from the same distribution. Gelman-Rubin R-hat across the four chains
// is the paper-standard way to check that, and ESS guards against a
// degenerate (stuck) chain passing on variance alone.

// equivCluster builds the cluster every engine runs on. Identical
// machines/scale/seed means identical planted data across engines.
func equivCluster(machines int, scale float64) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = scale
	return sim.New(cfg)
}

type engineRun struct {
	name string
	run  func(cl *sim.Cluster) (*task.Result, error)
}

// collectChains runs every engine, checks chain lengths and per-engine
// ESS, and returns the post-burn-in, thinned chains in engine order.
func collectChains(t *testing.T, machines int, scale float64, iters, burn, thin int, essFloor float64, runs []engineRun) [][]float64 {
	t.Helper()
	chains := make([][]float64, 0, len(runs))
	for _, r := range runs {
		cl := equivCluster(machines, scale)
		res, err := r.run(cl)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(res.Chain) != iters {
			t.Fatalf("%s: chain length = %d, want %d", r.name, len(res.Chain), iters)
		}
		var chain []float64
		for i := burn; i < len(res.Chain); i += thin {
			chain = append(chain, res.Chain[i])
		}
		if ess := diag.ESS(chain); ess < essFloor {
			t.Errorf("%s: ESS = %.2f below floor %v — chain is stuck", r.name, ess, essFloor)
		}
		chains = append(chains, chain)
	}
	return chains
}

func TestCrossEngineGMMEquivalence(t *testing.T) {
	cfg := gmmtask.Config{K: 2, D: 2, PointsPerMachine: 100_000, Iterations: 100, Seed: 99}
	// GraphLab's gather/apply pipeline delivers memberships to the model
	// update one round late, so its chain interleaves two subchains of
	// period 2. Thinning every engine by the pipeline depth leaves one
	// coherent subchain apiece; 31 rounds of burn-in is ample for this
	// small, well-separated mixture.
	const burn, thin = 31, 2
	runs := []engineRun{
		{"spark", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSpark(cl, cfg, sim.ProfilePython) }},
		{"simsql", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunSimSQL(cl, cfg) }},
		{"graphlab", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGraphLab(cl, cfg) }},
		{"giraph", func(cl *sim.Cluster) (*task.Result, error) { return gmmtask.RunGiraph(cl, cfg) }},
	}
	chains := collectChains(t, 2, 1000, cfg.Iterations, burn, thin, 3, runs)
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("GMM log-likelihood chains disagree across engines: R-hat = %.4f, want < 1.1", rhat)
	}
}

func TestCrossEngineLassoEquivalence(t *testing.T) {
	cfg := lassotask.Config{P: 30, PointsPerMachine: 50_000, Iterations: 40, Lambda: 1, Seed: 7}
	// The Bayesian Lasso posterior is unimodal and the paper notes it
	// "converges very quickly": no thinning needed.
	const burn, thin = 10, 1
	runs := []engineRun{
		{"spark", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSpark(cl, cfg) }},
		{"simsql", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunSimSQL(cl, cfg) }},
		{"graphlab", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGraphLab(cl, cfg) }},
		{"giraph", func(cl *sim.Cluster) (*task.Result, error) { return lassotask.RunGiraph(cl, cfg) }},
	}
	chains := collectChains(t, 2, 100, cfg.Iterations, burn, thin, 3, runs)
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("Lasso recovery-error chains disagree across engines: R-hat = %.4f, want < 1.1", rhat)
	}
}
