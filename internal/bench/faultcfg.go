package bench

import (
	"mlbench/internal/faults"
)

// FaultConfig configures deterministic fault injection for a benchmark
// run: how many machine crashes to spread over the measured iterations,
// where the first one lands, an optional straggler, and the engines'
// checkpointing policies. The zero value injects nothing and leaves
// checkpointing off, so the paper's figures are unchanged.
//
// Crash times are placed by a probe run: the cell first runs clean to
// learn its (deterministic) init and per-iteration times, then re-runs
// with crashes scheduled at absolute virtual times inside the measured
// window. Identical seed and config therefore produce byte-identical
// tables.
type FaultConfig struct {
	// Failures is the number of machine crashes injected (victims chosen
	// deterministically from the seed; machine 0 is spared as the
	// driver/master).
	Failures int `json:"failures,omitempty"`
	// FailAt is the iteration offset of the crash window's start: the
	// first crash lands after init + FailAt iterations (default 0.5 —
	// mid-first-iteration).
	FailAt float64 `json:"failat,omitempty"`
	// Straggle, when > 1, slows one machine by this factor for the whole
	// measured run.
	Straggle float64 `json:"straggle,omitempty"`
	// BSPCheckpointEvery is the Giraph checkpoint interval in supersteps:
	// 0 picks the recovery figures' default (3) when faults are active,
	// negative disables checkpointing.
	BSPCheckpointEvery int `json:"ckpt,omitempty"`
	// GASSnapshotEvery is the GraphLab snapshot interval in rounds, same
	// conventions as BSPCheckpointEvery.
	GASSnapshotEvery int `json:"snap,omitempty"`
}

// Active reports whether the config injects any fault.
func (fc FaultConfig) Active() bool { return fc.Failures > 0 || fc.Straggle > 1 }

// withFaultDefaults fills the knobs left unset: crashes land from
// mid-first-iteration, and rollback engines checkpoint every 3 steps so
// each platform shows its recovery shape rather than a full restart.
func (fc FaultConfig) withFaultDefaults() FaultConfig {
	if fc.FailAt <= 0 {
		fc.FailAt = 0.5
	}
	if fc.BSPCheckpointEvery == 0 {
		fc.BSPCheckpointEvery = 3
	}
	if fc.GASSnapshotEvery == 0 {
		fc.GASSnapshotEvery = 3
	}
	return fc
}

// schedule builds the absolute-time event schedule for a cell from its
// probed init and iteration times.
func (fc FaultConfig) schedule(initSec, iterSec float64, iters, machines int, seed uint64) *faults.Schedule {
	var evs []faults.Event
	if fc.Failures > 0 && iterSec > 0 {
		start := initSec + fc.FailAt*iterSec
		span := float64(iters) - fc.FailAt
		if span < 1 {
			span = 1
		}
		s := faults.SpreadCrashes(fc.Failures, machines, start, start+span*iterSec, seed)
		evs = append(evs, s.Events...)
	}
	if fc.Straggle > 1 {
		victim := machines - 1
		if victim < 0 {
			victim = 0
		}
		evs = append(evs, faults.StraggleAt(victim, initSec, 0, fc.Straggle))
	}
	if len(evs) == 0 {
		return nil
	}
	return faults.NewSchedule(evs...)
}

// interval translates the FaultConfig convention (0 = unset, negative =
// off) to the sim.RecoveryConfig convention (0 = off).
func interval(k int) int {
	if k < 0 {
		return 0
	}
	return k
}
