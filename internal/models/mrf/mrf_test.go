package mrf

import (
	"testing"

	"mlbench/internal/randgen"
)

func testCfg() Config {
	return Config{Rows: 64, Cols: 64, Labels: 4, Beta: 1.5, NoiseP: 0.3}
}

func TestGenerateShapes(t *testing.T) {
	g := Generate(randgen.New(1), testCfg())
	n := 64 * 64
	if len(g.Labels) != n || len(g.Obs) != n || len(g.Truth) != n {
		t.Fatalf("sizes wrong")
	}
	for _, l := range g.Truth {
		if l < 0 || l >= 4 {
			t.Fatalf("truth label %d out of range", l)
		}
	}
	// Observations should match truth roughly (1 - 0.3*(3/4)) of the time.
	acc := g.ObsAccuracy()
	if acc < 0.70 || acc > 0.85 {
		t.Errorf("observation accuracy = %v, want ~0.775", acc)
	}
}

func TestNeighborsCornersAndEdges(t *testing.T) {
	g := Generate(randgen.New(2), Config{Rows: 3, Cols: 3, Labels: 2, Beta: 1, NoiseP: 0.1})
	if n := g.Neighbors(0, 0, nil); len(n) != 2 {
		t.Errorf("corner has %d neighbors", len(n))
	}
	if n := g.Neighbors(0, 1, nil); len(n) != 3 {
		t.Errorf("edge has %d neighbors", len(n))
	}
	if n := g.Neighbors(1, 1, nil); len(n) != 4 {
		t.Errorf("center has %d neighbors", len(n))
	}
}

func TestSampleLabelFollowsNeighbors(t *testing.T) {
	rng := randgen.New(3)
	g := Generate(rng, Config{Rows: 4, Cols: 4, Labels: 3, Beta: 10, NoiseP: 0.99})
	// With near-uninformative observations and huge coupling, the drawn
	// label should match unanimous neighbors.
	for i := 0; i < 50; i++ {
		if l := g.SampleLabel(rng, 5, []int{2, 2, 2, 2}); l != 2 {
			t.Fatalf("label = %d, want 2 with unanimous neighbors", l)
		}
	}
}

func TestSweepsImproveAccuracy(t *testing.T) {
	rng := randgen.New(4)
	g := Generate(rng, testCfg())
	before := g.Accuracy()
	for iter := 0; iter < 10; iter++ {
		g.SweepParity(rng, 0)
		g.SweepParity(rng, 1)
	}
	after := g.Accuracy()
	if after <= before+0.05 {
		t.Errorf("denoising barely helped: %v -> %v", before, after)
	}
	if after < 0.9 {
		t.Errorf("final accuracy %v too low", after)
	}
}

func TestLabelFlopsPositive(t *testing.T) {
	if LabelFlops(5) <= 0 {
		t.Error("LabelFlops must be positive")
	}
}
