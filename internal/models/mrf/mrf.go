// Package mrf implements a Potts-model Markov random field Gibbs sampler
// for grid-graph label denoising — the extension workload the paper's
// closing discussion conjectures about: "Had we considered ... those that
// map naturally to a graph (for example, labeling the nodes in a Markov
// random field where the model parameters are already known), the results
// might have been different." Unlike the five benchmark models, the MRF's
// dependency graph is sparse (4-neighbor grid), so per-vertex graph
// processing carries tiny views and no model broadcast.
package mrf

import (
	"math"

	"mlbench/internal/randgen"
)

// Config describes a grid MRF labeling problem with known parameters.
type Config struct {
	Rows, Cols int     // grid dimensions
	Labels     int     // number of labels
	Beta       float64 // coupling strength (smoothness prior)
	NoiseP     float64 // probability a pixel's observation is corrupted
}

// Grid holds the chain state: current labels, the noisy observations and
// the hidden truth (for accuracy diagnostics).
type Grid struct {
	Cfg    Config
	Labels []int // current state, row-major
	Obs    []int // noisy observations
	Truth  []int
}

// Idx returns the row-major index of (r, c).
func (g *Grid) Idx(r, c int) int { return r*g.Cfg.Cols + c }

// Neighbors appends the 4-neighborhood of (r, c) to buf and returns it.
func (g *Grid) Neighbors(r, c int, buf []int) []int {
	if r > 0 {
		buf = append(buf, g.Idx(r-1, c))
	}
	if r < g.Cfg.Rows-1 {
		buf = append(buf, g.Idx(r+1, c))
	}
	if c > 0 {
		buf = append(buf, g.Idx(r, c-1))
	}
	if c < g.Cfg.Cols-1 {
		buf = append(buf, g.Idx(r, c+1))
	}
	return buf
}

// Generate plants a blocky ground-truth labeling (rectangular regions),
// corrupts it with noise, and initializes the chain at the observations.
func Generate(rng *randgen.RNG, cfg Config) *Grid {
	g := &Grid{Cfg: cfg}
	n := cfg.Rows * cfg.Cols
	g.Truth = make([]int, n)
	g.Obs = make([]int, n)
	g.Labels = make([]int, n)
	// Truth: each ~8x8 block gets one label.
	const block = 8
	blockLabels := map[[2]int]int{}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			key := [2]int{r / block, c / block}
			l, ok := blockLabels[key]
			if !ok {
				l = rng.Intn(cfg.Labels)
				blockLabels[key] = l
			}
			g.Truth[g.Idx(r, c)] = l
		}
	}
	for i, t := range g.Truth {
		if rng.Float64() < cfg.NoiseP {
			g.Obs[i] = rng.Intn(cfg.Labels)
		} else {
			g.Obs[i] = t
		}
		g.Labels[i] = g.Obs[i]
	}
	return g
}

// unaryLog returns log psi_i(l): the likelihood of observing g.Obs[i]
// when the true label is l, under the uniform-corruption noise model.
func (g *Grid) unaryLog(i, l int) float64 {
	pCorrect := 1 - g.Cfg.NoiseP + g.Cfg.NoiseP/float64(g.Cfg.Labels)
	pWrong := g.Cfg.NoiseP / float64(g.Cfg.Labels)
	if g.Obs[i] == l {
		return math.Log(pCorrect)
	}
	return math.Log(pWrong)
}

// SampleLabel redraws the label of pixel i from its full conditional
// given the neighbor labels: P(x_i = l) ∝ psi_i(l) exp(beta * agree(l)).
func (g *Grid) SampleLabel(rng *randgen.RNG, i int, neighborLabels []int) int {
	w := make([]float64, g.Cfg.Labels)
	max := math.Inf(-1)
	for l := 0; l < g.Cfg.Labels; l++ {
		agree := 0
		for _, nl := range neighborLabels {
			if nl == l {
				agree++
			}
		}
		w[l] = g.unaryLog(i, l) + g.Cfg.Beta*float64(agree)
		if w[l] > max {
			max = w[l]
		}
	}
	for l := range w {
		w[l] = math.Exp(w[l] - max)
	}
	return rng.Categorical(w)
}

// SweepParity performs one checkerboard half-sweep: pixels whose (r + c)
// parity matches parity are resampled (their neighbors all have the other
// parity, so the parallel update is a valid blocked Gibbs step).
func (g *Grid) SweepParity(rng *randgen.RNG, parity int) {
	buf := make([]int, 0, 4)
	nls := make([]int, 0, 4)
	for r := 0; r < g.Cfg.Rows; r++ {
		for c := 0; c < g.Cfg.Cols; c++ {
			if (r+c)%2 != parity {
				continue
			}
			i := g.Idx(r, c)
			buf = g.Neighbors(r, c, buf[:0])
			nls = nls[:0]
			for _, ni := range buf {
				nls = append(nls, g.Labels[ni])
			}
			g.Labels[i] = g.SampleLabel(rng, i, nls)
		}
	}
}

// Accuracy returns the fraction of pixels whose current label matches the
// hidden truth.
func (g *Grid) Accuracy() float64 {
	if len(g.Labels) == 0 {
		return 0
	}
	hits := 0
	for i, l := range g.Labels {
		if l == g.Truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(g.Labels))
}

// ObsAccuracy returns the accuracy of the raw observations (the baseline
// the sampler must beat).
func (g *Grid) ObsAccuracy() float64 {
	hits := 0
	for i, o := range g.Obs {
		if o == g.Truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(g.Obs))
}

// LabelFlops approximates the per-pixel sampling work.
func LabelFlops(labels int) float64 { return float64(5 * labels) }
