package lda

import (
	"math"
	"testing"

	"mlbench/internal/randgen"
)

func testHyper() Hyper { return Hyper{T: 3, V: 30, Alpha: 0.5, Beta: 0.1} }

func TestInitModel(t *testing.T) {
	rng := randgen.New(1)
	m := Init(rng, testHyper())
	if len(m.Phi) != 3 {
		t.Fatalf("topics = %d", len(m.Phi))
	}
	for _, phi := range m.Phi {
		var s float64
		for _, p := range phi {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("phi sums to %v", s)
		}
	}
	if m.Bytes() != 8*3*30 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
}

func TestInitDoc(t *testing.T) {
	rng := randgen.New(2)
	d := InitDoc(rng, []int{1, 2, 3}, testHyper())
	if len(d.Z) != 3 || len(d.Theta) != 3 {
		t.Fatalf("doc shapes wrong: %+v", d)
	}
	for _, z := range d.Z {
		if z < 0 || z >= 3 {
			t.Errorf("z = %d out of range", z)
		}
	}
}

func TestResampleZFollowsThetaPhi(t *testing.T) {
	rng := randgen.New(3)
	m := &Model{T: 2, V: 2}
	// Topic 0 only emits word 0; topic 1 only word 1.
	m.Phi = append(m.Phi, []float64{1, 0})
	m.Phi = append(m.Phi, []float64{0, 1})
	d := &Doc{Words: []int{0, 1, 0, 1}, Z: make([]int, 4), Theta: []float64{0.5, 0.5}}
	m.ResampleZ(rng, d)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if d.Z[i] != want[i] {
			t.Errorf("z[%d] = %d, want %d", i, d.Z[i], want[i])
		}
	}
}

func TestTopicCountsAndTheta(t *testing.T) {
	rng := randgen.New(4)
	d := &Doc{Words: []int{0, 0, 0, 0}, Z: []int{1, 1, 1, 0}}
	f := d.TopicCounts(3)
	if f[0] != 1 || f[1] != 3 || f[2] != 0 {
		t.Errorf("counts = %v", f)
	}
	h := Hyper{T: 3, V: 5, Alpha: 0.01, Beta: 0.1}
	// With near-zero alpha and heavy counts, theta should track counts.
	d.Z = make([]int, 10000)
	d.Words = make([]int, 10000)
	for i := range d.Z {
		d.Z[i] = 1
	}
	d.ResampleTheta(rng, h)
	if d.Theta[1] < 0.99 {
		t.Errorf("theta = %v, want concentration on topic 1", d.Theta)
	}
}

func TestWordCountsAccumulateMerge(t *testing.T) {
	a := NewWordCounts(2, 4)
	b := NewWordCounts(2, 4)
	a.Accumulate(&Doc{Words: []int{0, 1}, Z: []int{0, 1}}, 1)
	b.Accumulate(&Doc{Words: []int{1}, Z: []int{1}}, 2)
	a.Merge(b)
	if a.G[0][0] != 1 || a.G[1][1] != 3 {
		t.Errorf("counts = %v", a.G)
	}
	if a.Bytes() != 8*2*4 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
}

func TestUpdatePhiConcentrates(t *testing.T) {
	rng := randgen.New(5)
	h := Hyper{T: 2, V: 4, Alpha: 1, Beta: 0.01}
	m := Init(rng, h)
	c := NewWordCounts(2, 4)
	for i := 0; i < 10000; i++ {
		c.G[0][2]++
	}
	m.UpdatePhi(rng, h, c)
	if m.Phi[0][2] < 0.95 {
		t.Errorf("phi[0][2] = %v, want ~1", m.Phi[0][2])
	}
}

func TestGibbsRecoversPlantedTopics(t *testing.T) {
	rng := randgen.New(6)
	// Plant 2 topics over 10 words: topic 0 = words 0-4, topic 1 = 5-9.
	truth := [][]float64{
		{0.2, 0.2, 0.2, 0.2, 0.2, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0.2, 0.2, 0.2, 0.2, 0.2},
	}
	h := Hyper{T: 2, V: 10, Alpha: 0.5, Beta: 0.5}
	var docs []*Doc
	for d := 0; d < 80; d++ {
		topic := d % 2
		words := make([]int, 50)
		for i := range words {
			words[i] = randgen.New(uint64(d*100 + i)).Categorical(truth[topic])
		}
		docs = append(docs, InitDoc(rng, words, h))
	}
	m := Init(rng, h)
	ll := func() float64 {
		var total float64
		for _, d := range docs {
			total += m.LogLikelihood(d)
		}
		return total
	}
	first := ll()
	for iter := 0; iter < 50; iter++ {
		counts := NewWordCounts(2, 10)
		for _, d := range docs {
			m.ResampleZ(rng, d)
			d.ResampleTheta(rng, h)
			counts.Accumulate(d, 1)
		}
		m.UpdatePhi(rng, h, counts)
	}
	last := ll()
	if last <= first+500 {
		t.Fatalf("likelihood barely improved: %v -> %v", first, last)
	}
	// Each learned topic should put >80% of its mass on one planted block.
	for t2 := 0; t2 < 2; t2++ {
		var low, high float64
		for w := 0; w < 5; w++ {
			low += m.Phi[t2][w]
		}
		for w := 5; w < 10; w++ {
			high += m.Phi[t2][w]
		}
		if low < 0.8 && high < 0.8 {
			t.Errorf("topic %d did not specialize: low=%v high=%v", t2, low, high)
		}
	}
}

func TestTopWords(t *testing.T) {
	m2 := &Model{T: 1, V: 5}
	m2.Phi = append(m2.Phi, []float64{0.1, 0.4, 0.05, 0.3, 0.15})
	top := m2.TopWords(0, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 4 {
		t.Errorf("TopWords = %v", top)
	}
}

func TestZFlopsPositive(t *testing.T) {
	if ZFlops(100) <= 0 {
		t.Error("ZFlops must be positive")
	}
}
