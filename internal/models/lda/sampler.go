package lda

import (
	"mlbench/internal/linalg"
	"mlbench/internal/ordmap"
	"mlbench/internal/randgen"
)

// This file implements the sampler tiers of the LDA token hot path. The
// per-token conditional Pr[z = t] ∝ theta_t * phi_{t,w} can be drawn
// three ways (randgen.SamplerTier):
//
//   - dense: the paper-faithful O(T) scan (ResampleZ, byte-identical).
//   - alias: the same exact distribution through a freshly built
//     Walker/Vose table per token — the correctness midpoint isolating
//     "the draw mechanics changed" from "the proposal changed".
//   - mhalias: LightLDA-style O(1) amortized Metropolis-Hastings. Per
//     iteration a serial RefreshProposals snapshots phi and builds one
//     alias table per word over the snapshot column; each token then
//     takes two cycled MH moves — a doc proposal q(t) ∝ n_dt + alpha
//     drawn in O(1) from the document's sparse topic counts, and a word
//     proposal from the cached (deliberately stale) alias table — with
//     the exact accept ratio against the live theta/phi correcting for
//     the staleness.

// proposals is the mhalias tier's cache: the stale phi snapshot (the
// word-proposal q values) and one alias table per word over its column.
// Built only at serial points; read-only during concurrent resampling.
type proposals struct {
	alpha  float64 // doc-proposal Dirichlet smoothing
	alphaT float64 // alpha * T, the doc-proposal smoothing mass
	phiHat []linalg.Vec
	word   []*randgen.Alias
}

// RefreshProposals rebuilds the mhalias proposal cache from the current
// phi. It must be called at a serial point (after Init and after every
// UpdatePhi — driver update sections, parameter-server snapshot clones):
// the tables are shared read-only by every machine's resampling, so a
// concurrent rebuild would race. Letting the cache go stale on purpose
// (e.g. parameter-server workers on old snapshots) is sound — the MH
// accept ratio corrects the proposal back to the live conditional.
func (m *Model) RefreshProposals(h Hyper) {
	p := &proposals{alpha: h.Alpha, alphaT: h.Alpha * float64(m.T)}
	p.phiHat = make([]linalg.Vec, m.T)
	for t := range p.phiHat {
		p.phiHat[t] = m.Phi[t].Clone()
	}
	p.word = make([]*randgen.Alias, m.V)
	col := make([]float64, m.T)
	for w := 0; w < m.V; w++ {
		var total float64
		for t := 0; t < m.T; t++ {
			col[t] = p.phiHat[t][w]
			total += col[t]
		}
		if total <= 0 {
			// The whole column underflowed: propose uniformly, and record
			// matching q values so the accept ratio stays exact.
			for t := 0; t < m.T; t++ {
				col[t] = 1
				p.phiHat[t][w] = 1
			}
		}
		p.word[w] = randgen.NewAlias(col)
	}
	m.props = p
}

// HasProposals reports whether a proposal cache is installed (tests and
// engine assertions).
func (m *Model) HasProposals() bool { return m.props != nil }

// ResampleZTier redraws every topic assignment through the given sampler
// tier. TierDense is exactly ResampleZ.
func (m *Model) ResampleZTier(rng *randgen.RNG, d *Doc, tier randgen.SamplerTier) {
	switch tier {
	case randgen.TierAlias:
		m.resampleZAlias(rng, d)
	case randgen.TierMHAlias:
		m.resampleZMH(rng, d)
	default:
		m.ResampleZ(rng, d)
	}
}

// resampleZAlias draws the exact dense conditional through a per-token
// alias table: identical distribution, different randomness consumption.
func (m *Model) resampleZAlias(rng *randgen.RNG, d *Doc) {
	d.zc = nil
	w := d.weights(m.T)
	for i, word := range d.Words {
		var total float64
		for t := 0; t < m.T; t++ {
			w[t] = d.Theta[t] * m.Phi[t][word]
			total += w[t]
		}
		if total <= 0 {
			d.Z[i] = rng.Intn(m.T)
			continue
		}
		d.Z[i] = randgen.NewAlias(w).Draw(rng)
	}
}

func addInt(old, delta int) int { return old + delta }

// zCounts returns the document's sparse topic counts, building them from
// Z on first use. The Doc is single-owner, so lazy build cannot race.
func (d *Doc) zCounts() *ordmap.Map[int, int] {
	if d.zc == nil {
		d.zc = ordmap.New[int, int]()
		for _, z := range d.Z {
			d.zc.Merge(z, 1, addInt)
		}
	}
	return d.zc
}

// ZTopicCount reports the sparse structure's count for one topic and
// whether the sparse counts are materialized at all (test hook).
func (d *Doc) ZTopicCount(t int) (int, bool) {
	if d.zc == nil {
		return 0, false
	}
	n, _ := d.zc.Get(t)
	return n, true
}

// moveZ retargets token i and keeps the sparse counts in sync.
func (d *Doc) moveZ(i, from, to int) {
	d.zc.Merge(from, -1, addInt)
	d.zc.Merge(to, 1, addInt)
	d.Z[i] = to
}

// resampleZMH takes two cycled Metropolis-Hastings moves per token.
//
// Doc proposal — q(t) = (n_dt + alpha) / (N + alpha*T), drawn in O(1):
// with probability N/(N+alpha*T) adopt the topic of a uniformly random
// token of the document (including the current one), else a uniform
// topic. Because the counts include token i, the proposal depends on the
// current state s; the exact reverse/forward correction is
// (n_ds - 1 + alpha) / (n_dt' + alpha).
//
// Word proposal — q(t) ∝ phiHat_{t,w} from the cached stale alias table;
// state-independent, so the correction is phiHat_{s,w} / phiHat_{t',w}.
//
// Both accept ratios target the live p(t) = theta_t * phi_{t,w}, which is
// what makes the deliberately stale tables exact rather than approximate.
func (m *Model) resampleZMH(rng *randgen.RNG, d *Doc) {
	p := m.props
	if p == nil {
		panic("lda: mhalias resampling without RefreshProposals (must be rebuilt at a serial point after every phi update)")
	}
	if len(d.Z) == 0 {
		return
	}
	zc := d.zCounts()
	n := float64(len(d.Z))
	docMass := n + p.alphaT
	for i, word := range d.Words {
		s := d.Z[i]
		ps := d.Theta[s] * m.Phi[s][word]
		// Cycle 1: doc proposal.
		var t int
		if rng.Float64()*docMass < n {
			t = d.Z[rng.Intn(len(d.Z))]
		} else {
			t = rng.Intn(m.T)
		}
		if t != s {
			cs, _ := zc.Get(s)
			ct, _ := zc.Get(t)
			pt := d.Theta[t] * m.Phi[t][word]
			num := pt * (float64(cs) - 1 + p.alpha)
			den := ps * (float64(ct) + p.alpha)
			if den <= 0 || rng.Float64()*den < num {
				d.moveZ(i, s, t)
				s, ps = t, pt
			}
		}
		// Cycle 2: word proposal from the cached stale table.
		t = p.word[word].Draw(rng)
		if t != s {
			pt := d.Theta[t] * m.Phi[t][word]
			num := pt * p.phiHat[s][word]
			den := ps * p.phiHat[t][word]
			if den <= 0 || rng.Float64()*den < num {
				d.moveZ(i, s, t)
			}
		}
	}
}

// ZFlopsTier approximates the per-word resampling work under a tier:
// the dense scan is the historical 3T, the per-token alias build roughly
// doubles it, and the MH moves are a small constant (two O(1) proposals
// with three-factor accept ratios) independent of T.
func ZFlopsTier(tier randgen.SamplerTier, t int) float64 {
	switch tier {
	case randgen.TierAlias:
		return 6 * float64(t)
	case randgen.TierMHAlias:
		return 24
	default:
		return ZFlops(t)
	}
}

// ProposalFlops is the serial cost of one RefreshProposals: snapshotting
// phi plus building V alias tables over T-entry columns.
func ProposalFlops(t, v int) float64 { return 5 * float64(t) * float64(v) }
