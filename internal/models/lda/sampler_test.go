package lda

import (
	"math"
	"testing"

	"mlbench/internal/linalg"
	"mlbench/internal/models/diag"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

func tierHyper() Hyper { return Hyper{T: 10, V: 40, Alpha: 0.5, Beta: 0.1} }

func testDoc(rng *randgen.RNG, h Hyper, n int) *Doc {
	words := make([]int, n)
	for i := range words {
		words[i] = rng.Intn(h.V)
	}
	return InitDoc(rng, words, h)
}

// referenceResampleZ is the pre-tier dense implementation, kept verbatim
// as the byte-identity oracle for the default path: fresh weight buffer,
// inline total, Intn underflow fallback, Categorical draw.
func referenceResampleZ(m *Model, rng *randgen.RNG, d *Doc) {
	w := make([]float64, m.T)
	for i, word := range d.Words {
		var total float64
		for t := 0; t < m.T; t++ {
			w[t] = d.Theta[t] * m.Phi[t][word]
			total += w[t]
		}
		if total <= 0 {
			d.Z[i] = rng.Intn(m.T)
			continue
		}
		d.Z[i] = rng.Categorical(w)
	}
}

// TestDenseTierByteIdentity: the scratch-hoisted dense path consumes the
// RNG and assigns topics exactly as the historical allocation-per-call
// implementation — the property the golden figure snapshots rest on.
func TestDenseTierByteIdentity(t *testing.T) {
	h := tierHyper()
	rngA, rngB := randgen.New(3), randgen.New(3)
	modelA, modelB := Init(rngA, h), Init(rngB, h)
	docA, docB := testDoc(rngA, h, 200), testDoc(rngB, h, 200)
	for iter := 0; iter < 5; iter++ {
		modelA.ResampleZTier(rngA, docA, randgen.TierDense)
		referenceResampleZ(modelB, rngB, docB)
		for i := range docA.Z {
			if docA.Z[i] != docB.Z[i] {
				t.Fatalf("iter %d token %d: dense tier z=%d, reference z=%d", iter, i, docA.Z[i], docB.Z[i])
			}
		}
		docA.ResampleTheta(rngA, h)
		// Reference theta update: allocate counts, smooth, draw.
		f := docB.TopicCounts(h.T)
		for k := range f {
			f[k] += h.Alpha
		}
		docB.Theta = rngB.Dirichlet(f)
		for k := range docA.Theta {
			if math.Float64bits(docA.Theta[k]) != math.Float64bits(docB.Theta[k]) {
				t.Fatalf("iter %d: theta[%d] diverged: %v vs %v", iter, k, docA.Theta[k], docB.Theta[k])
			}
		}
	}
}

// TestAliasTierOneHotByteIdentity: where the conditional is one-hot the
// chosen topic is forced, so dense and alias tiers must produce the same
// assignments even though they consume randomness differently.
func TestAliasTierOneHotByteIdentity(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(9)
	m := Init(rng, h)
	dA, dB := testDoc(rng, h, 120), testDoc(rng, h, 120)
	copy(dB.Words, dA.Words)
	copy(dB.Z, dA.Z)
	// One-hot theta: only topic 3 has mass, so every token's weight
	// vector is one-hot regardless of phi.
	theta := make(linalg.Vec, h.T)
	theta[3] = 1
	dA.Theta, dB.Theta = theta, theta.Clone()
	m.ResampleZTier(randgen.New(1), dA, randgen.TierDense)
	m.ResampleZTier(randgen.New(2), dB, randgen.TierAlias)
	for i := range dA.Z {
		if dA.Z[i] != 3 || dB.Z[i] != 3 {
			t.Fatalf("token %d: dense z=%d alias z=%d, want 3 (forced)", i, dA.Z[i], dB.Z[i])
		}
	}
}

// TestAliasTierMarginal: on a generic conditional the alias tier draws
// the same distribution as dense (the alias method is exact): compare
// both empirical marginals to the exact conditional.
func TestAliasTierMarginal(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(21)
	m := Init(rng, h)
	d := testDoc(rng, h, 1)
	d.Words[0] = 7
	exact := exactConditional(m, d, 7)
	for _, tier := range []randgen.SamplerTier{randgen.TierDense, randgen.TierAlias} {
		if tv := tierMarginalTV(m, d, tier, exact, 40_000); tv > 0.02 {
			t.Errorf("%v tier marginal TV distance %v vs exact conditional, want < 0.02", tier, tv)
		}
	}
}

func exactConditional(m *Model, d *Doc, word int) []float64 {
	p := make([]float64, m.T)
	var total float64
	for t := 0; t < m.T; t++ {
		p[t] = d.Theta[t] * m.Phi[t][word]
		total += p[t]
	}
	for t := range p {
		p[t] /= total
	}
	return p
}

func tierMarginalTV(m *Model, proto *Doc, tier randgen.SamplerTier, exact []float64, draws int) float64 {
	rng := randgen.New(55)
	d := &Doc{Words: proto.Words, Z: append([]int(nil), proto.Z...), Theta: proto.Theta}
	counts := make([]float64, m.T)
	for i := 0; i < draws; i++ {
		m.ResampleZTier(rng, d, tier)
		counts[d.Z[0]]++
	}
	var tv float64
	for t := range counts {
		tv += math.Abs(counts[t]/float64(draws) - exact[t])
	}
	return tv / 2
}

// TestMHAliasMarginalGoF: the MH kernel's stationary marginal matches the
// exact dense conditional. Theta and phi are held fixed, so each token's
// conditional is independent of the other tokens' assignments; sweeping
// the full document and pooling every token's sample gives the marginal.
// Both a total-variation check and a chi-squared statistic guard it.
func TestMHAliasMarginalGoF(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(17)
	m := Init(rng, h)
	const word, nTok = 11, 60
	words := make([]int, nTok)
	for i := range words {
		words[i] = word
	}
	d := InitDoc(rng, words, h)
	exact := exactConditional(m, d, word)
	m.RefreshProposals(h)

	const sweeps, burn = 800, 50
	counts := make([]float64, h.T)
	var total float64
	for it := 0; it < sweeps; it++ {
		m.ResampleZTier(rng, d, randgen.TierMHAlias)
		if it < burn {
			continue
		}
		for _, z := range d.Z {
			counts[z]++
			total++
		}
	}
	var tv, chi2 float64
	for k := 0; k < h.T; k++ {
		emp := counts[k] / total
		tv += math.Abs(emp - exact[k])
		expected := exact[k] * total
		if expected > 0 {
			diff := counts[k] - expected
			chi2 += diff * diff / expected
		}
	}
	tv /= 2
	if tv > 0.02 {
		t.Errorf("MH marginal TV distance %v vs exact conditional, want < 0.02", tv)
	}
	// The samples are autocorrelated (they come from an MH chain), so the
	// chi-squared statistic is held to a generous multiple of the 99th
	// percentile of chi2(9) ~ 21.7 rather than the i.i.d. bound.
	if chi2 > 5*21.7 {
		t.Errorf("MH marginal chi-squared %v, want < %v", chi2, 5*21.7)
	}
}

// TestMHSparseCountsConsistent: the ordmap-backed topic counts stay in
// sync with Z across many accepted/rejected MH moves.
func TestMHSparseCountsConsistent(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(31)
	m := Init(rng, h)
	d := testDoc(rng, h, 150)
	m.RefreshProposals(h)
	for it := 0; it < 20; it++ {
		m.ResampleZTier(rng, d, randgen.TierMHAlias)
	}
	want := make(map[int]int)
	for _, z := range d.Z {
		want[z]++
	}
	for k := 0; k < h.T; k++ {
		got, ok := d.ZTopicCount(k)
		if !ok {
			t.Fatal("sparse counts not materialized after MH resampling")
		}
		if got != want[k] {
			t.Errorf("topic %d: sparse count %d, recount %d", k, got, want[k])
		}
	}
	// The dense tier invalidates the sparse structure.
	m.ResampleZTier(rng, d, randgen.TierDense)
	if _, ok := d.ZTopicCount(0); ok {
		t.Error("dense resample should invalidate the sparse counts")
	}
}

// TestMHAliasRequiresRefresh: using the MH tier without a proposal cache
// is a programming error and fails loudly.
func TestMHAliasRequiresRefresh(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(2)
	m := Init(rng, h)
	d := testDoc(rng, h, 5)
	defer func() {
		if recover() == nil {
			t.Error("mhalias resample without RefreshProposals should panic")
		}
	}()
	m.ResampleZTier(rng, d, randgen.TierMHAlias)
}

// TestMHAliasChainQuality: full Gibbs chains (z, theta, phi all updated)
// run under the dense and mhalias tiers target the same posterior — the
// pooled Gelman-Rubin R-hat over their per-iteration log-likelihood
// chains stays under the battery's 1.1 bar.
func TestMHAliasChainQuality(t *testing.T) {
	h := Hyper{T: 5, V: 100, Alpha: 0.5, Beta: 0.1}
	runChain := func(seed uint64, tier randgen.SamplerTier) []float64 {
		rng := randgen.New(seed)
		corpus := workload.GenCorpus(rng, workload.CorpusConfig{
			Docs: 30, Vocab: h.V, AvgLen: 50, Topics: 3,
		})
		m := Init(rng, h)
		docs := make([]*Doc, len(corpus))
		for i, words := range corpus {
			docs[i] = InitDoc(rng, words, h)
		}
		if tier == randgen.TierMHAlias {
			m.RefreshProposals(h)
		}
		const iters = 60
		chain := make([]float64, 0, iters)
		for it := 0; it < iters; it++ {
			counts := NewWordCounts(h.T, h.V)
			for _, d := range docs {
				m.ResampleZTier(rng, d, tier)
				d.ResampleTheta(rng, h)
				counts.Accumulate(d, 1)
			}
			m.UpdatePhi(rng, h, counts)
			if tier == randgen.TierMHAlias {
				m.RefreshProposals(h)
			}
			var ll float64
			words := 0
			for _, d := range docs {
				ll += m.LogLikelihood(d)
				words += len(d.Words)
			}
			chain = append(chain, ll/float64(words))
		}
		return chain[20:] // burn-in
	}
	chains := [][]float64{
		runChain(101, randgen.TierDense),
		runChain(202, randgen.TierDense),
		runChain(303, randgen.TierMHAlias),
		runChain(404, randgen.TierMHAlias),
	}
	for i, c := range chains {
		if ess := diag.ESS(c); ess < 3 {
			t.Errorf("chain %d: ESS = %.2f — chain is stuck", i, ess)
		}
	}
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("dense/mhalias chains disagree: R-hat = %.4f, want < 1.1", rhat)
	}
}
