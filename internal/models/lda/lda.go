// Package lda implements the non-collapsed latent Dirichlet allocation
// Gibbs sampler of the paper's Section 8. The paper deliberately
// benchmarks the NON-collapsed sampler: unlike the ubiquitous collapsed
// variant, it keeps the per-document topic distributions theta_j and the
// topic-word distributions phi_t as explicit variables, which makes the
// parallel updates exactly correct (the collapsed sampler's concurrent
// updates ignore the correlations that collapsing induces).
package lda

import (
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/ordmap"
	"mlbench/internal/randgen"
)

// Hyper holds the model's fixed configuration.
type Hyper struct {
	T     int     // topics
	V     int     // vocabulary size
	Alpha float64 // Dirichlet prior on document-topic distributions
	Beta  float64 // Dirichlet prior on topic-word distributions
}

// Model is the global chain state: the topic-word matrix phi.
type Model struct {
	T, V int
	Phi  []linalg.Vec // T x V

	// beta is UpdatePhi's reusable posterior-parameter scratch. UpdatePhi
	// only runs at serial points (driver sections, parameter-server
	// Apply), so Model-level scratch is safe; the concurrent resampling
	// path keeps its scratch on Doc instead.
	beta []float64
	// props is the mhalias tier's cached proposal structure; built at
	// serial points via RefreshProposals, read-only while resampling.
	props *proposals
}

// Bytes returns the simulated size of the topic-word matrix — the model
// payload whose five-fold growth over the HMM "makes the task a bit more
// difficult, especially for Giraph".
func (m *Model) Bytes() int64 { return int64(8 * m.T * m.V) }

// Init draws phi from the prior.
func Init(rng *randgen.RNG, h Hyper) *Model {
	m := &Model{T: h.T, V: h.V}
	beta := make([]float64, h.V)
	for i := range beta {
		beta[i] = h.Beta
	}
	for t := 0; t < h.T; t++ {
		m.Phi = append(m.Phi, rng.Dirichlet(beta))
	}
	return m
}

// Doc is one document's chain state: its words, topic assignments z and
// topic distribution theta.
type Doc struct {
	Words []int
	Z     []int
	Theta linalg.Vec

	// w is the document's reusable weight scratch for the resampling hot
	// path. A Doc is owned by one simulated machine, so per-Doc scratch
	// is safe under host-parallel supersteps where the Model is shared.
	w []float64
	// zc holds the mhalias tier's sparse per-topic assignment counts
	// (topic -> count, insertion-ordered for determinism); nil until the
	// first MH resample and invalidated by the dense/alias tiers.
	zc *ordmap.Map[int, int]
}

// weights returns the document's scratch buffer sized for t topics.
func (d *Doc) weights(t int) []float64 {
	if cap(d.w) < t {
		d.w = make([]float64, t)
	}
	return d.w[:t]
}

// InitDoc assigns uniform random topics and a prior theta draw.
func InitDoc(rng *randgen.RNG, words []int, h Hyper) *Doc {
	d := &Doc{Words: words, Z: make([]int, len(words))}
	for i := range d.Z {
		d.Z[i] = rng.Intn(h.T)
	}
	alpha := make([]float64, h.T)
	for i := range alpha {
		alpha[i] = h.Alpha
	}
	d.Theta = rng.Dirichlet(alpha)
	return d
}

// ResampleZ redraws every topic assignment in the document:
// Pr[z = t] ∝ theta_t * phi_{t, w}.
func (m *Model) ResampleZ(rng *randgen.RNG, d *Doc) {
	d.zc = nil
	w := d.weights(m.T)
	for i, word := range d.Words {
		for t := 0; t < m.T; t++ {
			w[t] = d.Theta[t] * m.Phi[t][word]
		}
		d.Z[i] = rng.CategoricalSafe(w)
	}
}

// ZFlops approximates the work of resampling one word's topic.
func ZFlops(t int) float64 { return 3 * float64(t) }

// TopicCounts returns f(j, .): the document's per-topic assignment counts.
func (d *Doc) TopicCounts(t int) linalg.Vec {
	f := linalg.NewVec(t)
	for _, z := range d.Z {
		f[z]++
	}
	return f
}

// ResampleTheta redraws theta_j ~ Dirichlet(alpha + f(j, .)). The
// posterior parameters are accumulated in the document's scratch buffer
// in the same count-then-smooth order TopicCounts uses, so the dense
// default stays byte-identical while avoiding the per-call allocation.
func (d *Doc) ResampleTheta(rng *randgen.RNG, h Hyper) {
	f := d.weights(h.T)
	for t := range f {
		f[t] = 0
	}
	for _, z := range d.Z {
		f[z]++
	}
	for t := range f {
		f[t] += h.Alpha
	}
	d.Theta = rng.Dirichlet(f)
}

// WordCounts aggregates g(t, w): per-topic word counts across documents.
type WordCounts struct {
	T, V int
	G    []linalg.Vec // T x V
}

// NewWordCounts returns zeroed counts.
func NewWordCounts(t, v int) *WordCounts {
	c := &WordCounts{T: t, V: v}
	for i := 0; i < t; i++ {
		c.G = append(c.G, linalg.NewVec(v))
	}
	return c
}

// Accumulate absorbs one document's assignments with the given weight.
func (c *WordCounts) Accumulate(d *Doc, weight float64) {
	for i, word := range d.Words {
		c.G[d.Z[i]][word] += weight
	}
}

// Merge folds other into c.
func (c *WordCounts) Merge(o *WordCounts) {
	for t := 0; t < c.T; t++ {
		o.G[t].AddTo(c.G[t])
	}
}

// Bytes returns the simulated size of the counts payload.
func (c *WordCounts) Bytes() int64 { return int64(8 * c.T * c.V) }

// UpdatePhi redraws each phi_t ~ Dirichlet(beta + g(t, .)). m is mutated.
// UpdatePhi runs only at serial points, so it may use the Model scratch.
func (m *Model) UpdatePhi(rng *randgen.RNG, h Hyper, c *WordCounts) {
	if cap(m.beta) < m.V {
		m.beta = make([]float64, m.V)
	}
	beta := m.beta[:m.V]
	for t := 0; t < m.T; t++ {
		for w := range beta {
			beta[w] = h.Beta + c.G[t][w]
		}
		m.Phi[t] = rng.Dirichlet(beta)
	}
}

// LogLikelihood returns the document's word log-likelihood under its
// theta and the model (a convergence diagnostic; lower perplexity =
// higher value).
func (m *Model) LogLikelihood(d *Doc) float64 {
	var ll float64
	for _, word := range d.Words {
		var p float64
		for t := 0; t < m.T; t++ {
			p += d.Theta[t] * m.Phi[t][word]
		}
		if p < 1e-300 {
			p = 1e-300
		}
		ll += math.Log(p)
	}
	return ll
}

// TopWords returns the indices of the n highest-probability words of
// topic t (for the topic-model example's output).
func (m *Model) TopWords(t, n int) []int {
	type wp struct {
		w int
		p float64
	}
	best := make([]wp, 0, n+1)
	for w, p := range m.Phi[t] {
		best = append(best, wp{w, p})
		for i := len(best) - 1; i > 0 && best[i].p > best[i-1].p; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > n {
			best = best[:n]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.w
	}
	return out
}
