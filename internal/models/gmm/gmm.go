// Package gmm implements the Gaussian mixture model Gibbs sampler of the
// paper's Section 5: a Normal prior on each cluster mean, an inverse
// Wishart prior on each covariance, a Dirichlet prior on the mixing
// proportions, and multinomial cluster memberships. The package provides
// the shared math kernels (sufficient statistics, conjugate posterior
// updates, membership sampling); the per-platform implementations in
// internal/tasks/gmmtask map them onto the four engines.
package gmm

import (
	"fmt"
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// Hyper holds the model hyperparameters. Following the paper, Mu0 and the
// prior covariance are computed empirically from the data (the observed
// mean and diagonal dimensional variance).
type Hyper struct {
	K       int         // number of clusters
	D       int         // dimensionality
	Mu0     linalg.Vec  // prior mean for cluster means
	Lambda0 *linalg.Mat // prior precision for cluster means
	Psi     *linalg.Mat // inverse Wishart scale
	Nu      float64     // inverse Wishart degrees of freedom
	Alpha   linalg.Vec  // Dirichlet prior on mixing proportions
}

// HyperFromMoments builds the paper's empirical hyperparameters from the
// data mean and per-dimension variance: Mu0 is the mean, the prior
// covariance is diag(variance) (so Lambda0 is its inverse), Psi is
// diag(variance), Nu is d+2 and Alpha is uniform 1s.
func HyperFromMoments(k int, mean, variance linalg.Vec) Hyper {
	d := len(mean)
	lam := linalg.NewMat(d, d)
	psi := linalg.NewMat(d, d)
	for i, v := range variance {
		if v <= 0 {
			v = 1e-6
		}
		lam.Set(i, i, 1/v)
		psi.Set(i, i, v)
	}
	alpha := make(linalg.Vec, k)
	for i := range alpha {
		alpha[i] = 1
	}
	return Hyper{K: k, D: d, Mu0: mean.Clone(), Lambda0: lam, Psi: psi, Nu: float64(d) + 2, Alpha: alpha}
}

// Params is the model state at one Gibbs iteration.
type Params struct {
	K, D  int
	Pi    linalg.Vec
	Mu    []linalg.Vec
	Sigma []*linalg.Mat

	// Cached per-cluster Cholesky factors and log-determinants of Sigma,
	// refreshed by Prepare.
	chol   []*linalg.Mat
	logDet []float64
}

// Bytes returns the simulated size of the model state: the "50KB copy of
// the model" the paper's GraphLab materialized per data point.
func (p *Params) Bytes() int64 {
	perCluster := int64(8 * (p.D + p.D*p.D + 1))
	return int64(p.K)*perCluster + int64(8*p.K)
}

// Init draws initial parameters as the paper's codes do: each mean from
// Normal(Mu0, prior covariance), each covariance from
// InvWishart(Nu, Psi), and uniform mixing proportions.
func Init(rng *randgen.RNG, h Hyper) (*Params, error) {
	p := &Params{K: h.K, D: h.D}
	p.Pi = make(linalg.Vec, h.K)
	for k := range p.Pi {
		p.Pi[k] = 1 / float64(h.K)
	}
	priorCovL, err := linalg.Cholesky(h.Psi)
	if err != nil {
		return nil, fmt.Errorf("gmm: prior covariance: %w", err)
	}
	for k := 0; k < h.K; k++ {
		p.Mu = append(p.Mu, rng.MVNormalChol(h.Mu0, priorCovL))
		sig, err := rng.InvWishart(h.Nu, h.Psi)
		if err != nil {
			return nil, fmt.Errorf("gmm: init covariance %d: %w", k, err)
		}
		p.Sigma = append(p.Sigma, sig)
	}
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	return p, nil
}

// Prepare refreshes the cached Cholesky factors after Mu/Sigma change.
func (p *Params) Prepare() error {
	p.chol = make([]*linalg.Mat, p.K)
	p.logDet = make([]float64, p.K)
	for k := 0; k < p.K; k++ {
		l, err := linalg.Cholesky(p.Sigma[k])
		if err != nil {
			return fmt.Errorf("gmm: covariance %d not positive definite: %w", k, err)
		}
		p.chol[k] = l
		p.logDet[k] = linalg.CholLogDet(l)
	}
	return nil
}

// LogDensity returns log N(x | mu_k, Sigma_k). Prepare must have run.
func (p *Params) LogDensity(k int, x linalg.Vec) float64 {
	diff := x.Sub(p.Mu[k])
	sol := linalg.SolveLower(p.chol[k], diff)
	quad := sol.Dot(sol)
	return -0.5 * (float64(p.D)*math.Log(2*math.Pi) + p.logDet[k] + quad)
}

// SampleMembership draws the cluster assignment for x given the current
// parameters: c_j ~ Multinomial(p_j, 1) with p_jk ∝ pi_k N(x|mu_k,Sigma_k).
func (p *Params) SampleMembership(rng *randgen.RNG, x linalg.Vec) int {
	logs := make([]float64, p.K)
	max := math.Inf(-1)
	for k := 0; k < p.K; k++ {
		logs[k] = math.Log(p.Pi[k]) + p.LogDensity(k, x)
		if logs[k] > max {
			max = logs[k]
		}
	}
	w := make([]float64, p.K)
	for k := range w {
		w[k] = math.Exp(logs[k] - max)
	}
	return rng.Categorical(w)
}

// MembershipFlops approximates the floating-point work of one membership
// draw (K density evaluations, each a triangular solve).
func MembershipFlops(k, d int) float64 { return float64(k) * float64(d*d+3*d) }

// Stats holds the sufficient statistics one Gibbs iteration aggregates:
// per-cluster counts, first moments and raw second moments. Raw moments
// make the statistics mergeable in any order, which every platform's
// aggregation relies on.
type Stats struct {
	K, D  int
	N     []float64
	Sum   []linalg.Vec
	SumSq []*linalg.Mat
}

// NewStats returns zeroed statistics.
func NewStats(k, d int) *Stats {
	s := &Stats{K: k, D: d, N: make([]float64, k)}
	for i := 0; i < k; i++ {
		s.Sum = append(s.Sum, linalg.NewVec(d))
		s.SumSq = append(s.SumSq, linalg.NewMat(d, d))
	}
	return s
}

// Add absorbs one data point assigned to cluster k with the given weight
// (weight > 1 supports scale-up replication).
func (s *Stats) Add(k int, x linalg.Vec, weight float64) {
	s.N[k] += weight
	for i, v := range x {
		s.Sum[k][i] += weight * v
	}
	s.SumSq[k].AddOuter(weight, x, x)
}

// Merge folds another statistics object into s.
func (s *Stats) Merge(o *Stats) {
	for k := 0; k < s.K; k++ {
		s.N[k] += o.N[k]
		o.Sum[k].AddTo(s.Sum[k])
		s.SumSq[k].AddInPlace(o.SumSq[k])
	}
}

// Bytes returns the simulated size of the statistics (the per-point
// aggregation payload is this divided by K when emitted per point).
func (s *Stats) Bytes() int64 {
	return int64(s.K) * int64(8*(1+s.D+s.D*s.D))
}

// scatterAbout returns sum_j (x_j - mu)(x_j - mu)^T for cluster k,
// reconstructed from the raw moments.
func (s *Stats) scatterAbout(k int, mu linalg.Vec) *linalg.Mat {
	sc := s.SumSq[k].Clone()
	sc.AddOuter(-1, mu, s.Sum[k])
	sc.AddOuter(-1, s.Sum[k], mu)
	sc.AddOuter(s.N[k], mu, mu)
	return sc.Symmetrize()
}

// UpdateParams draws the next iteration's parameters from the conjugate
// conditionals given the aggregated statistics, in the paper's order:
// each mu_k (using the previous Sigma_k), then each Sigma_k (using the new
// mu_k), then pi. It mutates p and refreshes the density caches.
func UpdateParams(rng *randgen.RNG, h Hyper, p *Params, s *Stats) error {
	for k := 0; k < h.K; k++ {
		// Posterior precision A = Lambda0 + n_k * Sigma_k^{-1};
		// mean = A^{-1} (Lambda0 mu0 + Sigma_k^{-1} sum_x).
		sigL, err := linalg.Cholesky(p.Sigma[k])
		if err != nil {
			return fmt.Errorf("gmm: Sigma[%d]: %w", k, err)
		}
		sigInv := linalg.CholInverse(sigL)
		a := h.Lambda0.Clone()
		a.AddInPlace(sigInv.Clone().ScaleInPlace(s.N[k]))
		aL, err := linalg.Cholesky(a.Symmetrize())
		if err != nil {
			return fmt.Errorf("gmm: posterior precision %d: %w", k, err)
		}
		rhs := h.Lambda0.MulVec(h.Mu0).Add(sigInv.MulVec(s.Sum[k]))
		mean := linalg.CholSolve(aL, rhs)
		cov := linalg.CholInverse(aL)
		covL, err := linalg.Cholesky(cov)
		if err != nil {
			return fmt.Errorf("gmm: posterior covariance %d: %w", k, err)
		}
		p.Mu[k] = rng.MVNormalChol(mean, covL)

		// Sigma_k ~ InvWishart(n_k + nu, Psi + scatter about the new mean).
		scale := h.Psi.Add(s.scatterAbout(k, p.Mu[k]))
		sig, err := rng.InvWishart(s.N[k]+h.Nu, scale.Symmetrize())
		if err != nil {
			return fmt.Errorf("gmm: Sigma draw %d: %w", k, err)
		}
		p.Sigma[k] = sig
	}
	// pi ~ Dirichlet(alpha + counts).
	alpha := make([]float64, h.K)
	for k := range alpha {
		alpha[k] = h.Alpha[k] + s.N[k]
	}
	p.Pi = rng.Dirichlet(alpha)
	return p.Prepare()
}

// UpdateFlops approximates the floating-point work of UpdateParams
// (per-cluster matrix inversions and Cholesky factorizations).
func UpdateFlops(k, d int) float64 { return float64(k) * 6 * float64(d*d*d) }

// LogLikelihood returns the data log-likelihood under the current
// parameters (for convergence diagnostics in tests and examples).
func (p *Params) LogLikelihood(xs []linalg.Vec) float64 {
	var total float64
	for _, x := range xs {
		max := math.Inf(-1)
		logs := make([]float64, p.K)
		for k := 0; k < p.K; k++ {
			logs[k] = math.Log(p.Pi[k]) + p.LogDensity(k, x)
			if logs[k] > max {
				max = logs[k]
			}
		}
		var sum float64
		for _, l := range logs {
			sum += math.Exp(l - max)
		}
		total += max + math.Log(sum)
	}
	return total
}
