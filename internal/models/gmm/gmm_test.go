package gmm

import (
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

func TestHyperFromMoments(t *testing.T) {
	h := HyperFromMoments(3, linalg.Vec{1, 2}, linalg.Vec{4, 0.25})
	if h.K != 3 || h.D != 2 {
		t.Fatalf("dims wrong: %+v", h)
	}
	if h.Lambda0.At(0, 0) != 0.25 || h.Lambda0.At(1, 1) != 4 {
		t.Errorf("Lambda0 = %v", h.Lambda0.Data)
	}
	if h.Psi.At(0, 0) != 4 {
		t.Errorf("Psi = %v", h.Psi.Data)
	}
	if h.Nu != 4 {
		t.Errorf("Nu = %v", h.Nu)
	}
	if len(h.Alpha) != 3 || h.Alpha[0] != 1 {
		t.Errorf("Alpha = %v", h.Alpha)
	}
}

func TestHyperHandlesZeroVariance(t *testing.T) {
	h := HyperFromMoments(2, linalg.Vec{0}, linalg.Vec{0})
	if math.IsInf(h.Lambda0.At(0, 0), 0) {
		t.Error("zero variance produced infinite precision")
	}
}

func TestInitProducesValidParams(t *testing.T) {
	rng := randgen.New(1)
	h := HyperFromMoments(4, linalg.Vec{0, 0, 0}, linalg.Vec{1, 1, 1})
	p, err := Init(rng, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Mu) != 4 || len(p.Sigma) != 4 {
		t.Fatalf("param shapes wrong")
	}
	var s float64
	for _, v := range p.Pi {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("Pi sums to %v", s)
	}
	if p.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
}

func TestLogDensityMatchesClosedForm(t *testing.T) {
	// Standard normal in 2-d: logN(0) = -log(2*pi).
	p := &Params{K: 1, D: 2, Pi: linalg.Vec{1}, Mu: []linalg.Vec{{0, 0}}, Sigma: []*linalg.Mat{linalg.Eye(2)}}
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	want := -math.Log(2 * math.Pi)
	if got := p.LogDensity(0, linalg.Vec{0, 0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDensity(0) = %v, want %v", got, want)
	}
	// At x=(1,0): subtract 1/2.
	if got := p.LogDensity(0, linalg.Vec{1, 0}); math.Abs(got-(want-0.5)) > 1e-12 {
		t.Errorf("LogDensity(1,0) = %v, want %v", got, want-0.5)
	}
}

func TestSampleMembershipPrefersNearCluster(t *testing.T) {
	rng := randgen.New(2)
	p := &Params{
		K: 2, D: 1,
		Pi:    linalg.Vec{0.5, 0.5},
		Mu:    []linalg.Vec{{-10}, {10}},
		Sigma: []*linalg.Mat{linalg.Eye(1), linalg.Eye(1)},
	}
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if k := p.SampleMembership(rng, linalg.Vec{-9.5}); k != 0 {
			t.Fatalf("point near cluster 0 assigned to %d", k)
		}
	}
}

func TestStatsAddMerge(t *testing.T) {
	a := NewStats(2, 2)
	b := NewStats(2, 2)
	a.Add(0, linalg.Vec{1, 2}, 1)
	b.Add(0, linalg.Vec{3, 4}, 1)
	b.Add(1, linalg.Vec{5, 6}, 2)
	a.Merge(b)
	if a.N[0] != 2 || a.N[1] != 2 {
		t.Errorf("N = %v", a.N)
	}
	if a.Sum[0][0] != 4 || a.Sum[1][1] != 12 {
		t.Errorf("Sum = %v", a.Sum)
	}
	// SumSq[0] = [1,2][1,2]^T + [3,4][3,4]^T: (0,0) entry 1+9=10.
	if a.SumSq[0].At(0, 0) != 10 {
		t.Errorf("SumSq[0] = %v", a.SumSq[0].Data)
	}
	if a.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
}

func TestScatterAboutMatchesDirect(t *testing.T) {
	xs := []linalg.Vec{{1, 2}, {3, -1}, {0, 0.5}}
	mu := linalg.Vec{0.5, 0.25}
	s := NewStats(1, 2)
	for _, x := range xs {
		s.Add(0, x, 1)
	}
	got := s.scatterAbout(0, mu)
	want := linalg.NewMat(2, 2)
	for _, x := range xs {
		d := x.Sub(mu)
		want.AddOuter(1, d, d)
	}
	if diff := got.MaxAbsDiff(want); diff > 1e-10 {
		t.Errorf("scatter differs by %v", diff)
	}
}

func TestGibbsRecoversPlantedClusters(t *testing.T) {
	rng := randgen.New(7)
	data := workload.GenGMM(rng, workload.GMMConfig{N: 600, D: 2, K: 3, Separation: 12})
	mean, variance := workload.Moments(data.Points)
	h := HyperFromMoments(3, mean, variance)
	p, err := Init(rng, h)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 25; iter++ {
		stats := NewStats(3, 2)
		for _, x := range data.Points {
			stats.Add(p.SampleMembership(rng, x), x, 1)
		}
		if err := UpdateParams(rng, h, p, stats); err != nil {
			t.Fatal(err)
		}
	}
	// Every planted mean should be within 1.0 of some learned mean.
	for _, truth := range data.Mu {
		best := math.Inf(1)
		for _, mu := range p.Mu {
			if d := truth.Sub(mu).Norm2(); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("planted mean %v not recovered (nearest %v away)", truth, best)
		}
	}
}

func TestUpdateParamsConcentratesWithData(t *testing.T) {
	// With many points at a single location, the posterior mean must land
	// there regardless of the prior.
	rng := randgen.New(3)
	h := HyperFromMoments(1, linalg.Vec{0, 0}, linalg.Vec{1, 1})
	p, err := Init(rng, h)
	if err != nil {
		t.Fatal(err)
	}
	target := linalg.Vec{5, -3}
	stats := NewStats(1, 2)
	for i := 0; i < 20000; i++ {
		jitter := linalg.Vec{target[0] + rng.Normal(0, 0.1), target[1] + rng.Normal(0, 0.1)}
		stats.Add(0, jitter, 1)
	}
	if err := UpdateParams(rng, h, p, stats); err != nil {
		t.Fatal(err)
	}
	if d := p.Mu[0].Sub(target).Norm2(); d > 0.1 {
		t.Errorf("posterior mean %v too far from %v (%v)", p.Mu[0], target, d)
	}
	if p.Sigma[0].At(0, 0) > 0.05 {
		t.Errorf("posterior covariance too wide: %v", p.Sigma[0].Data)
	}
}

func TestLogLikelihoodImprovesOverIterations(t *testing.T) {
	rng := randgen.New(11)
	data := workload.GenGMM(rng, workload.GMMConfig{N: 300, D: 2, K: 2, Separation: 10})
	mean, variance := workload.Moments(data.Points)
	h := HyperFromMoments(2, mean, variance)
	p, err := Init(rng, h)
	if err != nil {
		t.Fatal(err)
	}
	first := p.LogLikelihood(data.Points)
	for iter := 0; iter < 15; iter++ {
		stats := NewStats(2, 2)
		for _, x := range data.Points {
			stats.Add(p.SampleMembership(rng, x), x, 1)
		}
		if err := UpdateParams(rng, h, p, stats); err != nil {
			t.Fatal(err)
		}
	}
	last := p.LogLikelihood(data.Points)
	if last <= first {
		t.Errorf("log-likelihood did not improve: %v -> %v", first, last)
	}
}

func TestFlopsEstimatesPositive(t *testing.T) {
	if MembershipFlops(10, 10) <= 0 || UpdateFlops(10, 10) <= 0 {
		t.Error("flop estimates must be positive")
	}
	if MembershipFlops(10, 100) <= MembershipFlops(10, 10) {
		t.Error("flops should grow with dimension")
	}
}

// Property: merging statistics in any grouping yields identical totals
// (the distributed-aggregation correctness requirement).
func TestQuickStatsMergeAssociative(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]linalg.Vec, 0, len(raw))
		ks := make([]int, 0, len(raw))
		for i, r := range raw {
			xs = append(xs, linalg.Vec{float64(r), float64(i % 5)})
			ks = append(ks, int(r)%3)
		}
		// All at once.
		all := NewStats(3, 2)
		for i := range xs {
			all.Add(ks[i], xs[i], 1)
		}
		// Split in two and merge.
		a, b := NewStats(3, 2), NewStats(3, 2)
		for i := range xs {
			if i%2 == 0 {
				a.Add(ks[i], xs[i], 1)
			} else {
				b.Add(ks[i], xs[i], 1)
			}
		}
		a.Merge(b)
		for k := 0; k < 3; k++ {
			if math.Abs(all.N[k]-a.N[k]) > 1e-9 {
				return false
			}
			if all.Sum[k].Sub(a.Sum[k]).Norm2() > 1e-9 {
				return false
			}
			if all.SumSq[k].MaxAbsDiff(a.SumSq[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
