// Package hmm implements the hidden Markov model Gibbs sampler of the
// paper's Section 7: a text HMM with per-state word-emission vectors Psi_s
// and state-transition vectors delta_s under Dirichlet priors, learned by
// a sampler that updates every other state assignment per iteration
// (even positions on even iterations, odd positions on odd ones) so the
// conditional updates are valid in parallel.
package hmm

import (
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// Hyper holds the model's fixed configuration.
type Hyper struct {
	K     int     // hidden states
	V     int     // vocabulary size
	Alpha float64 // Dirichlet prior on transitions
	Beta  float64 // Dirichlet prior on emissions
}

// Model is the chain state shared across documents: the start
// distribution delta_0, the transition matrix delta and the emission
// matrix Psi.
type Model struct {
	K, V   int
	Delta0 linalg.Vec   // start-state distribution
	Delta  []linalg.Vec // K x K transitions
	Psi    []linalg.Vec // K x V emissions

	// alpha/beta are UpdateModel's reusable posterior-parameter scratch.
	// UpdateModel only runs at serial points (driver sections,
	// parameter-server Apply), so Model-level scratch is safe; the
	// concurrent resampling path uses caller-owned Scratch instead.
	alpha, beta []float64
	// props is the mhalias tier's cached proposal structure; built at
	// serial points via RefreshProposals, read-only while resampling.
	props *hmmProposals
}

// Scratch is a reusable weight buffer for the state-resampling hot path.
// Each concurrent caller (vertex, machine partition) owns its own
// Scratch, because the Model itself is shared across host goroutines
// during supersteps. The zero value is ready to use.
type Scratch struct {
	w []float64
}

// weights returns the scratch buffer sized for k states.
func (sc *Scratch) weights(k int) []float64 {
	if cap(sc.w) < k {
		sc.w = make([]float64, k)
	}
	return sc.w[:k]
}

// Bytes returns the simulated size of the model state.
func (m *Model) Bytes() int64 {
	return int64(8 * (m.K + m.K*m.K + m.K*m.V))
}

// Init draws a model from the priors.
func Init(rng *randgen.RNG, h Hyper) *Model {
	m := &Model{K: h.K, V: h.V}
	alpha := uniform(h.K, h.Alpha)
	beta := uniform(h.V, h.Beta)
	m.Delta0 = rng.Dirichlet(alpha)
	for s := 0; s < h.K; s++ {
		m.Delta = append(m.Delta, rng.Dirichlet(alpha))
		m.Psi = append(m.Psi, rng.Dirichlet(beta))
	}
	return m
}

func uniform(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// InitStates assigns uniformly random initial states to a document.
func InitStates(rng *randgen.RNG, words []int, k int) []int {
	states := make([]int, len(words))
	for i := range states {
		states[i] = rng.Intn(k)
	}
	return states
}

// ResampleStates updates the state assignments of one document for
// iteration iter, touching position k (1-based) only when k and iter have
// the same parity — the paper's alternating scheme. states is mutated.
func (m *Model) ResampleStates(rng *randgen.RNG, words, states []int, iter int) {
	var sc Scratch
	m.ResampleStatesScratch(rng, words, states, iter, &sc)
}

// ResampleStatesScratch is ResampleStates with a caller-owned weight
// buffer, for hot paths that resample many documents.
func (m *Model) ResampleStatesScratch(rng *randgen.RNG, words, states []int, iter int, sc *Scratch) {
	n := len(words)
	w := sc.weights(m.K)
	for pos := 0; pos < n; pos++ {
		if (pos+1)%2 != iter%2 { // 1-based position parity must match iteration parity
			continue
		}
		for s := 0; s < m.K; s++ {
			p := m.Psi[s][words[pos]]
			if pos == 0 {
				p *= m.Delta0[s]
			} else {
				p *= m.Delta[states[pos-1]][s]
			}
			if pos != n-1 {
				p *= m.Delta[s][states[pos+1]]
			}
			w[s] = p
		}
		states[pos] = rng.CategoricalSafe(w)
	}
}

// StateFlops approximates the floating-point work of resampling one
// position's state (K weights, three factors each).
func StateFlops(k int) float64 { return 4 * float64(k) }

// Counts aggregates the statistics the model updates need: f(w,s) word
// emissions, g(s) start states and h(s,s') transitions.
type Counts struct {
	K, V  int
	Emit  []linalg.Vec // K x V: f(w, s)
	Start linalg.Vec   // K: g(s)
	Trans []linalg.Vec // K x K: h(s, s')
}

// NewCounts returns zeroed counts.
func NewCounts(k, v int) *Counts {
	c := &Counts{K: k, V: v, Start: linalg.NewVec(k)}
	for s := 0; s < k; s++ {
		c.Emit = append(c.Emit, linalg.NewVec(v))
		c.Trans = append(c.Trans, linalg.NewVec(k))
	}
	return c
}

// Accumulate absorbs one document's assignments with the given weight.
func (c *Counts) Accumulate(words, states []int, weight float64) {
	if len(words) == 0 {
		return
	}
	c.Start[states[0]] += weight
	for i, w := range words {
		c.Emit[states[i]][w] += weight
		if i+1 < len(states) {
			c.Trans[states[i]][states[i+1]] += weight
		}
	}
}

// Merge folds other into c.
func (c *Counts) Merge(o *Counts) {
	o.Start.AddTo(c.Start)
	for s := 0; s < c.K; s++ {
		o.Emit[s].AddTo(c.Emit[s])
		o.Trans[s].AddTo(c.Trans[s])
	}
}

// Bytes returns the simulated size of the counts (the aggregation payload
// each worker ships: roughly K*V + K*K + K doubles).
func (c *Counts) Bytes() int64 {
	return int64(8 * (c.K*c.V + c.K*c.K + c.K))
}

// UpdateModel draws the next model from the Dirichlet conditionals given
// the aggregated counts. m is mutated. UpdateModel runs only at serial
// points, so it may use the Model scratch.
func (m *Model) UpdateModel(rng *randgen.RNG, h Hyper, c *Counts) {
	if cap(m.alpha) < m.K {
		m.alpha = make([]float64, m.K)
	}
	if cap(m.beta) < m.V {
		m.beta = make([]float64, m.V)
	}
	alpha, beta := m.alpha[:m.K], m.beta[:m.V]
	for s := range alpha {
		alpha[s] = h.Alpha + c.Start[s]
	}
	m.Delta0 = rng.Dirichlet(alpha)
	for s := 0; s < m.K; s++ {
		for t := 0; t < m.K; t++ {
			alpha[t] = h.Alpha + c.Trans[s][t]
		}
		m.Delta[s] = rng.Dirichlet(alpha)
		for w := range beta {
			beta[w] = h.Beta + c.Emit[s][w]
		}
		m.Psi[s] = rng.Dirichlet(beta)
	}
}

// LogLikelihood returns the joint log-probability of one document's words
// and states under the model (a convergence diagnostic).
func (m *Model) LogLikelihood(words, states []int) float64 {
	if len(words) == 0 {
		return 0
	}
	ll := logf(m.Delta0[states[0]])
	for i, w := range words {
		ll += logf(m.Psi[states[i]][w])
		if i+1 < len(states) {
			ll += logf(m.Delta[states[i]][states[i+1]])
		}
	}
	return ll
}

func logf(x float64) float64 {
	if x < 1e-300 {
		x = 1e-300
	}
	return math.Log(x)
}
