package hmm

import (
	"math"
	"testing"

	"mlbench/internal/models/diag"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

func tierHyper() Hyper { return Hyper{K: 8, V: 40, Alpha: 1, Beta: 0.5} }

// referenceResampleStates is the pre-tier dense implementation, kept
// verbatim as the byte-identity oracle for the default path.
func referenceResampleStates(m *Model, rng *randgen.RNG, words, states []int, iter int) {
	n := len(words)
	w := make([]float64, m.K)
	for pos := 0; pos < n; pos++ {
		if (pos+1)%2 != iter%2 {
			continue
		}
		for s := 0; s < m.K; s++ {
			p := m.Psi[s][words[pos]]
			if pos == 0 {
				p *= m.Delta0[s]
			} else {
				p *= m.Delta[states[pos-1]][s]
			}
			if pos != n-1 {
				p *= m.Delta[s][states[pos+1]]
			}
			w[s] = p
		}
		var total float64
		for _, x := range w {
			total += x
		}
		if total <= 0 {
			states[pos] = rng.Intn(len(w))
		} else {
			states[pos] = rng.Categorical(w)
		}
	}
}

func tierDoc(rng *randgen.RNG, h Hyper, n int) ([]int, []int) {
	words := make([]int, n)
	for i := range words {
		words[i] = rng.Intn(h.V)
	}
	return words, InitStates(rng, words, h.K)
}

// TestDenseTierByteIdentity: the scratch-passing dense path consumes the
// RNG and assigns states exactly as the historical per-call allocation.
func TestDenseTierByteIdentity(t *testing.T) {
	h := tierHyper()
	rngA, rngB := randgen.New(6), randgen.New(6)
	mA, mB := Init(rngA, h), Init(rngB, h)
	wordsA, statesA := tierDoc(rngA, h, 99)
	wordsB, statesB := tierDoc(rngB, h, 99)
	var sc Scratch
	for iter := 0; iter < 6; iter++ {
		mA.ResampleStatesTier(rngA, wordsA, statesA, iter, randgen.TierDense, &sc)
		referenceResampleStates(mB, rngB, wordsB, statesB, iter)
		for i := range statesA {
			if statesA[i] != statesB[i] {
				t.Fatalf("iter %d pos %d: dense tier s=%d, reference s=%d", iter, i, statesA[i], statesB[i])
			}
		}
	}
}

// TestAliasTierOneHotByteIdentity: when the emission column is one-hot
// the chosen state is forced, so dense and alias tiers must agree even
// though they consume randomness differently.
func TestAliasTierOneHotByteIdentity(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(12)
	m := Init(rng, h)
	// Force one-hot emissions: word w is emitted only by state w % K.
	for s := 0; s < h.K; s++ {
		for w := 0; w < h.V; w++ {
			if w%h.K == s {
				m.Psi[s][w] = 1
			} else {
				m.Psi[s][w] = 0
			}
		}
	}
	words, statesA := tierDoc(rng, h, 80)
	statesB := append([]int(nil), statesA...)
	for iter := 0; iter < 2; iter++ {
		m.ResampleStatesTier(randgen.New(1), words, statesA, iter, randgen.TierDense, nil)
		m.ResampleStatesTier(randgen.New(2), words, statesB, iter, randgen.TierAlias, nil)
	}
	for i := range statesA {
		if statesA[i] != words[i]%h.K || statesB[i] != words[i]%h.K {
			t.Fatalf("pos %d: dense s=%d alias s=%d, want %d (forced)", i, statesA[i], statesB[i], words[i]%h.K)
		}
	}
}

// TestMHAliasMarginalGoF: on a single-position document the MH kernel's
// stationary distribution is the exact conditional
// p(s) ∝ Psi_s[w] * Delta0[s]; pool a long chain and compare.
func TestMHAliasMarginalGoF(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(23)
	m := Init(rng, h)
	const word = 9
	words := []int{word}
	states := []int{0}
	exact := make([]float64, h.K)
	var total float64
	for s := 0; s < h.K; s++ {
		exact[s] = m.Psi[s][word] * m.Delta0[s]
		total += exact[s]
	}
	for s := range exact {
		exact[s] /= total
	}
	m.RefreshProposals()

	const sweeps, burn = 30_000, 200
	counts := make([]float64, h.K)
	var n float64
	for it := 0; it < sweeps; it++ {
		// Position 1 (1-based) is touched on odd iterations.
		m.ResampleStatesTier(rng, words, states, 1, randgen.TierMHAlias, nil)
		if it < burn {
			continue
		}
		counts[states[0]]++
		n++
	}
	var tv, chi2 float64
	for s := 0; s < h.K; s++ {
		tv += math.Abs(counts[s]/n - exact[s])
		expected := exact[s] * n
		if expected > 0 {
			diff := counts[s] - expected
			chi2 += diff * diff / expected
		}
	}
	tv /= 2
	if tv > 0.02 {
		t.Errorf("MH marginal TV distance %v vs exact conditional, want < 0.02", tv)
	}
	// Autocorrelated chain: generous multiple of chi2(7)'s 99th
	// percentile (~18.5).
	if chi2 > 5*18.5 {
		t.Errorf("MH marginal chi-squared %v, want < %v", chi2, 5*18.5)
	}
}

// TestMHAliasRequiresRefresh: the MH tier without a proposal cache fails
// loudly.
func TestMHAliasRequiresRefresh(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(4)
	m := Init(rng, h)
	words, states := tierDoc(rng, h, 6)
	defer func() {
		if recover() == nil {
			t.Error("mhalias resample without RefreshProposals should panic")
		}
	}()
	m.ResampleStatesTier(rng, words, states, 1, randgen.TierMHAlias, nil)
}

// TestMHAliasParityRespected: the MH tier only touches parity-selected
// positions, like the dense scheme.
func TestMHAliasParityRespected(t *testing.T) {
	h := tierHyper()
	rng := randgen.New(8)
	m := Init(rng, h)
	m.RefreshProposals()
	words, states := tierDoc(rng, h, 50)
	before := append([]int(nil), states...)
	m.ResampleStatesTier(rng, words, states, 0, randgen.TierMHAlias, nil)
	for pos := range states {
		if (pos+1)%2 != 0 && states[pos] != before[pos] {
			t.Errorf("iteration 0 touched odd 1-based position %d", pos+1)
		}
	}
}

// TestMHAliasChainQuality: full Gibbs chains (states and model updated)
// under the dense and mhalias tiers target the same posterior — pooled
// R-hat over per-iteration log-likelihood chains under the 1.1 bar.
func TestMHAliasChainQuality(t *testing.T) {
	h := Hyper{K: 2, V: 40, Alpha: 1, Beta: 1}
	// One shared corpus: every chain must target the same posterior, so
	// only the chain seed may vary.
	corpus := workload.GenCorpus(randgen.New(7), workload.CorpusConfig{
		Docs: 20, Vocab: h.V, AvgLen: 40, Topics: 0,
	})
	runChain := func(seed uint64, tier randgen.SamplerTier) []float64 {
		rng := randgen.New(seed)
		m := Init(rng, h)
		states := make([][]int, len(corpus))
		for i, words := range corpus {
			states[i] = InitStates(rng, words, h.K)
		}
		if tier == randgen.TierMHAlias {
			m.RefreshProposals()
		}
		// The parity scheme updates half the positions per sweep and the
		// HMM posterior over planted-structure data is sticky, so the
		// battery uses a weak-signal Zipf corpus with long chains: the
		// statistic certifies that the two kernels share a stationary
		// distribution, not fitting power.
		const iters = 800
		var sc Scratch
		chain := make([]float64, 0, iters)
		for it := 0; it < iters; it++ {
			counts := NewCounts(h.K, h.V)
			for i, words := range corpus {
				m.ResampleStatesTier(rng, words, states[i], it, tier, &sc)
				counts.Accumulate(words, states[i], 1)
			}
			m.UpdateModel(rng, h, counts)
			if tier == randgen.TierMHAlias {
				m.RefreshProposals()
			}
			var ll float64
			words := 0
			for i, doc := range corpus {
				ll += m.LogLikelihood(doc, states[i])
				words += len(doc)
			}
			chain = append(chain, ll/float64(words))
		}
		return chain[400:]
	}
	chains := [][]float64{
		runChain(11, randgen.TierDense),
		runChain(22, randgen.TierDense),
		runChain(33, randgen.TierMHAlias),
		runChain(44, randgen.TierMHAlias),
	}
	for i, c := range chains {
		if ess := diag.ESS(c); ess < 3 {
			t.Errorf("chain %d: ESS = %.2f — chain is stuck", i, ess)
		}
	}
	rhat, err := diag.RHat(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat > 1.1 {
		t.Errorf("dense/mhalias chains disagree: R-hat = %.4f, want < 1.1", rhat)
	}
}
