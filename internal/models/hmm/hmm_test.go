package hmm

import (
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

func testHyper() Hyper { return Hyper{K: 3, V: 20, Alpha: 1, Beta: 0.5} }

func TestInitShapesAndSimplex(t *testing.T) {
	rng := randgen.New(1)
	m := Init(rng, testHyper())
	if len(m.Delta) != 3 || len(m.Psi) != 3 || len(m.Delta0) != 3 {
		t.Fatalf("shapes wrong")
	}
	check := func(v linalg.Vec, n int) {
		if len(v) != n {
			t.Fatalf("vector length %d, want %d", len(v), n)
		}
		var s float64
		for _, x := range v {
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("distribution sums to %v", s)
		}
	}
	check(m.Delta0, 3)
	check(m.Delta[1], 3)
	check(m.Psi[2], 20)
	if m.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
}

func TestInitStates(t *testing.T) {
	rng := randgen.New(2)
	words := []int{1, 2, 3, 4, 5}
	states := InitStates(rng, words, 3)
	if len(states) != 5 {
		t.Fatalf("len = %d", len(states))
	}
	for _, s := range states {
		if s < 0 || s >= 3 {
			t.Errorf("state %d out of range", s)
		}
	}
}

func TestResampleAlternatesParity(t *testing.T) {
	rng := randgen.New(3)
	m := Init(rng, testHyper())
	words := []int{0, 1, 2, 3, 4, 5}
	states := []int{0, 0, 0, 0, 0, 0}
	// Even iteration updates even (1-based) positions = indices 1,3,5.
	snapshot := append([]int{}, states...)
	m.ResampleStates(rng, words, states, 0)
	for i := 0; i < len(states); i += 2 {
		if states[i] != snapshot[i] {
			t.Errorf("even iteration modified odd (1-based) position %d", i+1)
		}
	}
	// Odd iteration updates indices 0,2,4.
	snapshot = append([]int{}, states...)
	m.ResampleStates(rng, words, states, 1)
	for i := 1; i < len(states); i += 2 {
		if states[i] != snapshot[i] {
			t.Errorf("odd iteration modified even (1-based) position %d", i+1)
		}
	}
}

func TestResampleStatesValidRange(t *testing.T) {
	rng := randgen.New(4)
	m := Init(rng, testHyper())
	words := make([]int, 50)
	for i := range words {
		words[i] = rng.Intn(20)
	}
	states := InitStates(rng, words, 3)
	for iter := 0; iter < 6; iter++ {
		m.ResampleStates(rng, words, states, iter)
		for _, s := range states {
			if s < 0 || s >= 3 {
				t.Fatalf("state %d out of range", s)
			}
		}
	}
}

func TestCountsAccumulate(t *testing.T) {
	c := NewCounts(2, 5)
	words := []int{0, 3, 3}
	states := []int{1, 0, 1}
	c.Accumulate(words, states, 1)
	if c.Start[1] != 1 || c.Start[0] != 0 {
		t.Errorf("Start = %v", c.Start)
	}
	if c.Emit[1][0] != 1 || c.Emit[0][3] != 1 || c.Emit[1][3] != 1 {
		t.Errorf("Emit = %v", c.Emit)
	}
	if c.Trans[1][0] != 1 || c.Trans[0][1] != 1 {
		t.Errorf("Trans = %v", c.Trans)
	}
	// Weighted accumulation.
	c2 := NewCounts(2, 5)
	c2.Accumulate(words, states, 3)
	if c2.Start[1] != 3 {
		t.Errorf("weighted Start = %v", c2.Start)
	}
	// Empty document is a no-op.
	c.Accumulate(nil, nil, 1)
	if c.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
}

func TestCountsMerge(t *testing.T) {
	a, b := NewCounts(2, 3), NewCounts(2, 3)
	a.Accumulate([]int{0, 1}, []int{0, 1}, 1)
	b.Accumulate([]int{2}, []int{1}, 1)
	a.Merge(b)
	if a.Emit[1][2] != 1 || a.Start[0] != 1 || a.Start[1] != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestUpdateModelUsesCounts(t *testing.T) {
	rng := randgen.New(5)
	h := Hyper{K: 2, V: 4, Alpha: 0.01, Beta: 0.01}
	m := Init(rng, h)
	c := NewCounts(2, 4)
	// State 0 overwhelmingly emits word 3.
	for i := 0; i < 10000; i++ {
		c.Emit[0][3]++
	}
	m.UpdateModel(rng, h, c)
	if m.Psi[0][3] < 0.95 {
		t.Errorf("Psi[0][3] = %v, want ~1", m.Psi[0][3])
	}
}

func TestGibbsLearnsPlantedStructure(t *testing.T) {
	// Plant a 2-state HMM with nearly deterministic emissions and
	// transitions; the sampler should reach a much higher joint
	// likelihood than its random initialization.
	rng := randgen.New(6)
	truth := &Model{
		K:      2,
		V:      4,
		Delta0: linalg.Vec{1, 0},
		Delta:  []linalg.Vec{{0.05, 0.95}, {0.95, 0.05}},
		Psi:    []linalg.Vec{{0.45, 0.45, 0.05, 0.05}, {0.05, 0.05, 0.45, 0.45}},
	}
	var docs [][]int
	var states [][]int
	for d := 0; d < 60; d++ {
		n := 40
		words := make([]int, n)
		s := 0
		for i := 0; i < n; i++ {
			if i > 0 {
				s = rng.Categorical(truth.Delta[s])
			}
			words[i] = rng.Categorical(truth.Psi[s])
		}
		docs = append(docs, words)
		states = append(states, InitStates(rng, words, 2))
	}
	h := Hyper{K: 2, V: 4, Alpha: 1, Beta: 1}
	m := Init(rng, h)
	ll := func() float64 {
		var total float64
		for d := range docs {
			total += m.LogLikelihood(docs[d], states[d])
		}
		return total
	}
	first := ll()
	for iter := 0; iter < 40; iter++ {
		c := NewCounts(2, 4)
		for d := range docs {
			m.ResampleStates(rng, docs[d], states[d], iter)
			c.Accumulate(docs[d], states[d], 1)
		}
		m.UpdateModel(rng, h, c)
	}
	last := ll()
	if last <= first+100 {
		t.Errorf("likelihood barely improved: %v -> %v", first, last)
	}
}

func TestLogLikelihoodEmptyDoc(t *testing.T) {
	rng := randgen.New(7)
	m := Init(rng, testHyper())
	if ll := m.LogLikelihood(nil, nil); ll != 0 {
		t.Errorf("empty doc ll = %v", ll)
	}
}

func TestStateFlopsPositive(t *testing.T) {
	if StateFlops(20) <= 0 {
		t.Error("StateFlops must be positive")
	}
}

// Property: counts accumulated doc-by-doc equal counts accumulated after
// merging arbitrary splits.
func TestQuickCountsMergeEquivalence(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		words := make([]int, len(raw))
		states := make([]int, len(raw))
		for i, r := range raw {
			words[i] = int(r) % 5
			states[i] = int(r) % 2
		}
		whole := NewCounts(2, 5)
		whole.Accumulate(words, states, 1)
		// Two docs accumulated into separate counts then merged differ
		// from the single-doc result only in Start/Trans at the split,
		// so instead check weight linearity: w=2 equals two w=1 passes.
		twice := NewCounts(2, 5)
		twice.Accumulate(words, states, 2)
		double := NewCounts(2, 5)
		double.Accumulate(words, states, 1)
		double.Merge(whole)
		for s := 0; s < 2; s++ {
			if twice.Emit[s].Sub(double.Emit[s]).Norm2() > 1e-9 {
				return false
			}
			if twice.Trans[s].Sub(double.Trans[s]).Norm2() > 1e-9 {
				return false
			}
		}
		return twice.Start.Sub(double.Start).Norm2() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
