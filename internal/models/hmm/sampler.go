package hmm

import (
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// This file implements the sampler tiers of the HMM state hot path (the
// LDA analog lives in models/lda/sampler.go). The per-position
// conditional p(s) ∝ Psi_s[w] * in(s) * out(s) — emission times incoming
// times outgoing transition factor — can be drawn three ways
// (randgen.SamplerTier): the dense O(K) scan, a per-position exact alias
// table, or O(1)-amortized Metropolis-Hastings moves against cached
// stale alias tables with the exact accept ratio.

// hmmProposals is the mhalias tier's cache: snapshots of the emission
// and transition matrices (the q values) plus alias tables — one per
// word over the Psi column (the emission proposal) and one per
// predecessor state over the Delta row (the transition proposal).
type hmmProposals struct {
	psiHat    []linalg.Vec // K x V emission snapshot
	delta0Hat linalg.Vec
	deltaHat  []linalg.Vec     // K x K transition snapshot
	emit      []*randgen.Alias // per word, over the psiHat column
	start     *randgen.Alias
	trans     []*randgen.Alias // per predecessor state, over the deltaHat row
}

// RefreshProposals rebuilds the mhalias proposal cache from the current
// model. It must run at a serial point (after Init and after every
// UpdateModel — driver update sections, parameter-server snapshot
// clones); the tables are then shared read-only by the concurrent
// resampling. Deliberately stale caches are sound: the MH accept ratio
// corrects the proposal back to the live conditional.
func (m *Model) RefreshProposals() {
	p := &hmmProposals{
		delta0Hat: m.Delta0.Clone(),
		psiHat:    make([]linalg.Vec, m.K),
		deltaHat:  make([]linalg.Vec, m.K),
	}
	for s := 0; s < m.K; s++ {
		p.psiHat[s] = m.Psi[s].Clone()
		p.deltaHat[s] = m.Delta[s].Clone()
	}
	p.start = safeAlias(p.delta0Hat)
	p.trans = make([]*randgen.Alias, m.K)
	for s := 0; s < m.K; s++ {
		p.trans[s] = safeAlias(p.deltaHat[s])
	}
	p.emit = make([]*randgen.Alias, m.V)
	col := make([]float64, m.K)
	for w := 0; w < m.V; w++ {
		var total float64
		for s := 0; s < m.K; s++ {
			col[s] = p.psiHat[s][w]
			total += col[s]
		}
		if total <= 0 {
			// Degenerate column: propose uniformly and record matching q
			// values so the accept ratio stays exact.
			for s := 0; s < m.K; s++ {
				col[s] = 1
				p.psiHat[s][w] = 1
			}
		}
		p.emit[w] = randgen.NewAlias(col)
	}
	m.props = p
}

// safeAlias builds an alias table over weights that are a Dirichlet draw
// (total 1 in exact arithmetic), guarding the all-underflow corner by
// flattening the weights in place to the uniform distribution.
func safeAlias(w linalg.Vec) *randgen.Alias {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		for i := range w {
			w[i] = 1
		}
	}
	return randgen.NewAlias(w)
}

// HasProposals reports whether a proposal cache is installed (tests and
// engine assertions).
func (m *Model) HasProposals() bool { return m.props != nil }

// ResampleStatesTier resamples one document's parity-selected positions
// through the given sampler tier. TierDense is exactly ResampleStates.
// sc may be nil (a private buffer is allocated); hot paths pass their
// own.
func (m *Model) ResampleStatesTier(rng *randgen.RNG, words, states []int, iter int, tier randgen.SamplerTier, sc *Scratch) {
	if sc == nil {
		sc = &Scratch{}
	}
	switch tier {
	case randgen.TierAlias:
		m.resampleStatesAlias(rng, words, states, iter, sc)
	case randgen.TierMHAlias:
		m.resampleStatesMH(rng, words, states, iter)
	default:
		m.ResampleStatesScratch(rng, words, states, iter, sc)
	}
}

// resampleStatesAlias draws the exact dense conditional through a
// per-position alias table: identical distribution, different randomness
// consumption.
func (m *Model) resampleStatesAlias(rng *randgen.RNG, words, states []int, iter int, sc *Scratch) {
	n := len(words)
	w := sc.weights(m.K)
	for pos := 0; pos < n; pos++ {
		if (pos+1)%2 != iter%2 {
			continue
		}
		var total float64
		for s := 0; s < m.K; s++ {
			p := m.Psi[s][words[pos]]
			if pos == 0 {
				p *= m.Delta0[s]
			} else {
				p *= m.Delta[states[pos-1]][s]
			}
			if pos != n-1 {
				p *= m.Delta[s][states[pos+1]]
			}
			w[s] = p
			total += p
		}
		if total <= 0 {
			states[pos] = rng.Intn(m.K)
			continue
		}
		states[pos] = randgen.NewAlias(w).Draw(rng)
	}
}

// target is the live three-factor conditional weight of state s at pos.
func (m *Model) target(words, states []int, pos, n, s int) float64 {
	p := m.Psi[s][words[pos]]
	if pos == 0 {
		p *= m.Delta0[s]
	} else {
		p *= m.Delta[states[pos-1]][s]
	}
	if pos != n-1 {
		p *= m.Delta[s][states[pos+1]]
	}
	return p
}

// resampleStatesMH takes two cycled Metropolis-Hastings moves per
// parity-selected position, both against state-independent cached
// proposals, so the correction is q(s)/q(s'):
//
//   - emission proposal: s' ~ alias over the cached Psi column of the
//     position's word, q(x) = psiHat_x[w];
//   - transition proposal: s' ~ alias over the cached Delta row of the
//     predecessor state (the start distribution at position 0),
//     q(x) = deltaHat_prev[x].
//
// The accept ratio targets the live model, correcting for the cache's
// staleness exactly.
func (m *Model) resampleStatesMH(rng *randgen.RNG, words, states []int, iter int) {
	p := m.props
	if p == nil {
		panic("hmm: mhalias resampling without RefreshProposals (must be rebuilt at a serial point after every model update)")
	}
	n := len(words)
	for pos := 0; pos < n; pos++ {
		if (pos+1)%2 != iter%2 {
			continue
		}
		word := words[pos]
		s := states[pos]
		ps := m.target(words, states, pos, n, s)
		// Cycle 1: emission proposal.
		t := p.emit[word].Draw(rng)
		if t != s {
			pt := m.target(words, states, pos, n, t)
			num := pt * p.psiHat[s][word]
			den := ps * p.psiHat[t][word]
			if den <= 0 || rng.Float64()*den < num {
				states[pos] = t
				s, ps = t, pt
			}
		}
		// Cycle 2: transition proposal from the predecessor's cached row.
		var qRow linalg.Vec
		if pos == 0 {
			t = p.start.Draw(rng)
			qRow = p.delta0Hat
		} else {
			prev := states[pos-1]
			t = p.trans[prev].Draw(rng)
			qRow = p.deltaHat[prev]
		}
		if t != s {
			pt := m.target(words, states, pos, n, t)
			num := pt * qRow[s]
			den := ps * qRow[t]
			if den <= 0 || rng.Float64()*den < num {
				states[pos] = t
			}
		}
	}
}

// StateFlopsTier approximates the per-position resampling work under a
// tier: the dense scan is the historical 4K, the per-position alias
// build roughly doubles it, and the MH moves are a small constant.
func StateFlopsTier(tier randgen.SamplerTier, k int) float64 {
	switch tier {
	case randgen.TierAlias:
		return 8 * float64(k)
	case randgen.TierMHAlias:
		return 24
	default:
		return StateFlops(k)
	}
}

// StateProposalFlops is the serial cost of one RefreshProposals:
// snapshotting the model plus building the emission-column, transition-
// row, and start alias tables.
func StateProposalFlops(k, v int) float64 {
	return 5 * float64(k*v+k*k+k)
}
