package lasso

import (
	"math"
	"testing"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

// gram computes X^T X and X^T y directly.
func gram(data *workload.RegressionData) (*linalg.Mat, linalg.Vec) {
	p := len(data.X[0])
	xtx := linalg.NewMat(p, p)
	xty := linalg.NewVec(p)
	for i, x := range data.X {
		xtx.AddOuter(1, x, x)
		for j := range x {
			xty[j] += x[j] * data.Y[i]
		}
	}
	return xtx, xty
}

func sse(data *workload.RegressionData, beta linalg.Vec) float64 {
	var s float64
	for i, x := range data.X {
		r := data.Y[i] - x.Dot(beta)
		s += r * r
	}
	return s
}

func TestInitState(t *testing.T) {
	s := Init(5)
	if len(s.Beta) != 5 || len(s.InvTau2) != 5 {
		t.Fatalf("shapes wrong: %+v", s)
	}
	if s.Sigma2 != 1 || s.InvTau2[3] != 1 {
		t.Errorf("defaults wrong: %+v", s)
	}
}

func TestSampleInvTau2Positive(t *testing.T) {
	rng := randgen.New(1)
	s := Init(4)
	s.Beta = linalg.Vec{0, 1e-8, 1, -5}
	SampleInvTau2(rng, Hyper{Lambda: 1, P: 4}, s)
	for j, v := range s.InvTau2 {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("InvTau2[%d] = %v", j, v)
		}
	}
}

func TestLargerBetaGetsSmallerShrinkage(t *testing.T) {
	// 1/tau^2 has mean sqrt(lambda^2 sigma^2 / beta^2): large |beta| =>
	// small 1/tau^2 (less shrinkage).
	rng := randgen.New(2)
	h := Hyper{Lambda: 2, P: 2}
	var smallSum, largeSum float64
	for i := 0; i < 3000; i++ {
		s := Init(2)
		s.Beta = linalg.Vec{0.1, 10}
		SampleInvTau2(rng, h, s)
		smallSum += s.InvTau2[0]
		largeSum += s.InvTau2[1]
	}
	if largeSum >= smallSum {
		t.Errorf("shrinkage ordering wrong: small-beta mean %v, large-beta mean %v", smallSum/3000, largeSum/3000)
	}
}

func TestSampleBetaPosteriorMean(t *testing.T) {
	// With tiny noise and lots of data, beta should land on the ordinary
	// least squares solution.
	rng := randgen.New(3)
	data := workload.GenRegression(rng, workload.RegressionConfig{N: 5000, P: 4, Sparsity: 2, Noise: 0.01})
	xtx, xty := gram(data)
	s := Init(4)
	s.Sigma2 = 0.0001
	if err := SampleBeta(rng, s, xtx, xty); err != nil {
		t.Fatal(err)
	}
	for j := range s.Beta {
		if math.Abs(s.Beta[j]-data.TrueBeta[j]) > 0.05 {
			t.Errorf("beta[%d] = %v, want %v", j, s.Beta[j], data.TrueBeta[j])
		}
	}
}

func TestSampleSigma2Scale(t *testing.T) {
	rng := randgen.New(4)
	s := Init(2)
	s.Beta = linalg.Vec{0, 0}
	// sse = 100 over n = 100 points: sigma^2 should hover near 1.
	var sum float64
	const iters = 3000
	for i := 0; i < iters; i++ {
		SampleSigma2(rng, s, 100, 100)
		sum += s.Sigma2
	}
	if got := sum / iters; math.Abs(got-1) > 0.1 {
		t.Errorf("mean sigma2 = %v, want ~1", got)
	}
}

func TestFullChainRecoversSparseBeta(t *testing.T) {
	rng := randgen.New(5)
	cfg := workload.RegressionConfig{N: 2000, P: 10, Sparsity: 3, Noise: 0.5}
	data := workload.GenRegression(rng, cfg)
	xtx, xty := gram(data)
	h := Hyper{Lambda: 1, P: cfg.P}
	s := Init(cfg.P)
	for iter := 0; iter < 50; iter++ {
		SampleInvTau2(rng, h, s)
		if err := SampleBeta(rng, s, xtx, xty); err != nil {
			t.Fatal(err)
		}
		SampleSigma2(rng, s, float64(cfg.N), sse(data, s.Beta))
	}
	for j := range s.Beta {
		if math.Abs(s.Beta[j]-data.TrueBeta[j]) > 0.25 {
			t.Errorf("beta[%d] = %v, want %v", j, s.Beta[j], data.TrueBeta[j])
		}
	}
	if s.Sigma2 < 0.1 || s.Sigma2 > 0.6 {
		t.Errorf("sigma2 = %v, want near 0.25", s.Sigma2)
	}
}

func TestShrinkageGrowsWithLambda(t *testing.T) {
	// With an enormous lambda, coefficients of noise-only regressors
	// should be shrunk much harder than with a tiny lambda.
	run := func(lambda float64) float64 {
		rng := randgen.New(6)
		data := workload.GenRegression(rng, workload.RegressionConfig{N: 50, P: 20, Sparsity: 1, Noise: 3})
		xtx, xty := gram(data)
		h := Hyper{Lambda: lambda, P: 20}
		s := Init(20)
		var norm float64
		for iter := 0; iter < 40; iter++ {
			SampleInvTau2(rng, h, s)
			if err := SampleBeta(rng, s, xtx, xty); err != nil {
				t.Fatal(err)
			}
			SampleSigma2(rng, s, 50, sse(data, s.Beta))
			if iter >= 20 {
				norm += s.Beta.Norm2()
			}
		}
		return norm / 20
	}
	small, large := run(0.1), run(50)
	if large >= small {
		t.Errorf("lambda=50 posterior norm (%v) should be below lambda=0.1 (%v)", large, small)
	}
}

func TestFlopsEstimates(t *testing.T) {
	if BetaFlops(10) <= 0 || GramFlops(10) != 100 {
		t.Errorf("flop estimates wrong: %v %v", BetaFlops(10), GramFlops(10))
	}
}

func TestCholeskyJitteredRecoversRankDeficient(t *testing.T) {
	// A rank-1 "covariance" that plain Cholesky rejects must factor after
	// jittering.
	m := linalg.NewMat(3, 3)
	m.AddOuter(1, linalg.Vec{1, 2, 3}, linalg.Vec{1, 2, 3})
	if _, err := linalg.Cholesky(m); err == nil {
		t.Skip("rank-deficient matrix unexpectedly factored directly")
	}
	l, err := choleskyJittered(m)
	if err != nil {
		t.Fatalf("jittered factorization failed: %v", err)
	}
	if l == nil {
		t.Fatal("nil factor")
	}
}

func TestCholeskyJitteredGivesUpOnGarbage(t *testing.T) {
	// A matrix with a hugely negative eigenvalue cannot be rescued by
	// small jitter.
	m := linalg.Diag(linalg.Vec{1, -1e9})
	if _, err := choleskyJittered(m); err == nil {
		t.Fatal("expected failure for strongly indefinite matrix")
	}
}

func TestSampleBetaWithRankDeficientGram(t *testing.T) {
	// Fewer observations than regressors: the auxiliaries regularize the
	// draw and it must still succeed.
	rng := randgen.New(12)
	data := workload.GenRegression(rng, workload.RegressionConfig{N: 3, P: 10, Sparsity: 2, Noise: 1})
	xtx, xty := gram(data)
	xtx.ScaleInPlace(1e9) // extreme conditioning, as high scale factors produce
	xty.ScaleInPlace(1e9)
	s := Init(10)
	if err := SampleBeta(rng, s, xtx, xty); err != nil {
		t.Fatalf("SampleBeta on rank-deficient Gram: %v", err)
	}
}
