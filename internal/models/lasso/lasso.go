// Package lasso implements the Bayesian Lasso Gibbs sampler of Park &
// Casella (2008) as specified in the paper's Section 6: inverse-Gaussian
// auxiliary variables 1/tau_j^2, a multivariate normal draw for the
// regression vector beta, and an inverse-gamma draw for the noise
// variance sigma^2. The platform implementations in
// internal/tasks/lassotask compute the distributed pieces (the Gram
// matrix X^T X, X^T y, and the residual sum of squares) and call these
// kernels for the model updates.
package lasso

import (
	"fmt"
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// Hyper holds the sampler's fixed hyperparameters.
type Hyper struct {
	Lambda float64 // Lasso regularization
	P      int     // number of regressors
}

// State is the Markov chain state.
type State struct {
	Beta    linalg.Vec
	InvTau2 linalg.Vec // 1/tau_j^2 auxiliaries
	Sigma2  float64
}

// Init returns the chain's starting state: beta zero, unit auxiliaries,
// unit noise variance.
func Init(p int) *State {
	s := &State{Beta: linalg.NewVec(p), InvTau2: make(linalg.Vec, p), Sigma2: 1}
	for j := range s.InvTau2 {
		s.InvTau2[j] = 1
	}
	return s
}

// SampleInvTau2 draws 1/tau_j^2 ~ InvGaussian(sqrt(lambda^2 sigma^2 /
// beta_j^2), lambda^2) for each j, as in the paper's update.
func SampleInvTau2(rng *randgen.RNG, h Hyper, s *State) {
	l2 := h.Lambda * h.Lambda
	for j := range s.InvTau2 {
		b2 := s.Beta[j] * s.Beta[j]
		if b2 < 1e-300 {
			b2 = 1e-300 // a zero coefficient gives an (effectively) infinite-mean draw
		}
		mu := math.Sqrt(l2 * s.Sigma2 / b2)
		if mu > 1e12 {
			mu = 1e12
		}
		s.InvTau2[j] = rng.InvGaussian(mu, l2)
	}
}

// SampleBeta draws beta ~ Normal(A^{-1} X^T y, sigma^2 A^{-1}) where
// A = X^T X + D_tau^{-1}, given the precomputed Gram matrix and X^T y.
func SampleBeta(rng *randgen.RNG, s *State, xtx *linalg.Mat, xty linalg.Vec) error {
	p := len(s.Beta)
	a := xtx.Clone()
	for j := 0; j < p; j++ {
		a.Set(j, j, a.At(j, j)+s.InvTau2[j])
	}
	aL, err := choleskyJittered(a.Symmetrize())
	if err != nil {
		return fmt.Errorf("lasso: posterior precision: %w", err)
	}
	mean := linalg.CholSolve(aL, xty)
	cov := linalg.CholInverse(aL).ScaleInPlace(s.Sigma2)
	covL, err := choleskyJittered(cov.Symmetrize())
	if err != nil {
		return fmt.Errorf("lasso: posterior covariance: %w", err)
	}
	s.Beta = rng.MVNormalChol(mean, covL)
	return nil
}

// choleskyJittered factors an SPD matrix, retrying with growing diagonal
// jitter when extreme conditioning (e.g. a rank-deficient Gram matrix
// from few observations) produces round-off indefiniteness.
func choleskyJittered(m *linalg.Mat) (*linalg.Mat, error) {
	l, err := linalg.Cholesky(m)
	if err == nil {
		return l, nil
	}
	base := m.Trace() / float64(m.Rows)
	if base <= 0 {
		base = 1
	}
	for eps := 1e-12; eps <= 1e-3; eps *= 100 {
		j := m.Clone()
		for i := 0; i < j.Rows; i++ {
			j.Set(i, i, j.At(i, i)+eps*base)
		}
		if l, err = linalg.Cholesky(j); err == nil {
			return l, nil
		}
	}
	return nil, err
}

// SampleSigma2 draws sigma^2 ~ InvGamma((1+n+p)/2, (2 + sse +
// sum beta_j^2/tau_j^2)/2) where sse = sum (y - beta.x)^2 is supplied by
// the distributed residual pass.
func SampleSigma2(rng *randgen.RNG, s *State, n float64, sse float64) {
	p := float64(len(s.Beta))
	var penalty float64
	for j := range s.Beta {
		penalty += s.Beta[j] * s.Beta[j] * s.InvTau2[j]
	}
	shape := (1 + n + p) / 2
	scale := (2 + sse + penalty) / 2
	s.Sigma2 = rng.InvGamma(shape, scale)
}

// BetaFlops approximates the floating-point work of SampleBeta
// (Cholesky factorization and solves at dimension p).
func BetaFlops(p int) float64 { return 4 * float64(p) * float64(p) * float64(p) }

// GramFlops approximates the work of accumulating one data point's
// contribution to the Gram matrix.
func GramFlops(p int) float64 { return float64(p) * float64(p) }
