package diag

import (
	"math"
	"testing"

	"mlbench/internal/linalg"
	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

func TestMeanVar(t *testing.T) {
	m, v := MeanVar([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Errorf("mean = %v", m)
	}
	if math.Abs(v-5.0/3.0) > 1e-12 {
		t.Errorf("variance = %v", v)
	}
	if m, v := MeanVar(nil); m != 0 || v != 0 {
		t.Errorf("empty = %v, %v", m, v)
	}
}

func TestAutocorrIID(t *testing.T) {
	rng := randgen.New(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Norm()
	}
	if r := Autocorr(xs, 0); math.Abs(r-1) > 0.01 {
		t.Errorf("lag-0 autocorr = %v, want 1", r)
	}
	if r := Autocorr(xs, 5); math.Abs(r) > 0.05 {
		t.Errorf("iid lag-5 autocorr = %v, want ~0", r)
	}
}

func TestAutocorrAR1(t *testing.T) {
	// x_t = 0.9 x_{t-1} + noise has lag-1 autocorrelation ~0.9.
	rng := randgen.New(2)
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9*xs[i-1] + rng.Norm()
	}
	if r := Autocorr(xs, 1); math.Abs(r-0.9) > 0.03 {
		t.Errorf("AR(1) lag-1 autocorr = %v, want ~0.9", r)
	}
}

func TestESSOrdering(t *testing.T) {
	rng := randgen.New(3)
	iid := make([]float64, 5000)
	sticky := make([]float64, 5000)
	for i := range iid {
		iid[i] = rng.Norm()
		if i > 0 {
			sticky[i] = 0.95*sticky[i-1] + rng.Norm()
		}
	}
	essIID, essSticky := ESS(iid), ESS(sticky)
	if essIID < 3000 {
		t.Errorf("iid ESS = %v, want near n", essIID)
	}
	if essSticky > essIID/5 {
		t.Errorf("sticky chain ESS %v should be far below iid %v", essSticky, essIID)
	}
}

func TestESSBounds(t *testing.T) {
	if got := ESS([]float64{1, 2}); got != 2 {
		t.Errorf("short chain ESS = %v", got)
	}
	if got := ESS(nil); got != 0 {
		t.Errorf("empty chain ESS = %v, want 0", got)
	}
	// A constant chain carries exactly one draw's worth of information.
	constant := make([]float64, 100)
	if got := ESS(constant); got != 1 {
		t.Errorf("constant chain ESS = %v, want 1", got)
	}
	for i := range constant {
		constant[i] = 7.5
	}
	if got := ESS(constant); got != 1 {
		t.Errorf("nonzero constant chain ESS = %v, want 1", got)
	}
}

func TestRHatConstantChains(t *testing.T) {
	// Identical constant chains are trivially mixed.
	same, err := RHat([][]float64{{2, 2, 2}, {2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if same != 1 {
		t.Errorf("identical constant chains R-hat = %v, want 1", same)
	}
	// Constant chains stuck at different values can never mix — this used
	// to report a perfect 1 because within-chain variance is zero.
	apart, err := RHat([][]float64{{1, 1, 1}, {5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(apart, 1) {
		t.Errorf("separated constant chains R-hat = %v, want +Inf", apart)
	}
}

func TestRHatMixedVsUnmixed(t *testing.T) {
	rng := randgen.New(4)
	mk := func(offset float64) []float64 {
		xs := make([]float64, 2000)
		for i := range xs {
			xs[i] = offset + rng.Norm()
		}
		return xs
	}
	mixed, err := RHat([][]float64{mk(0), mk(0), mk(0)})
	if err != nil {
		t.Fatal(err)
	}
	if mixed > 1.05 {
		t.Errorf("mixed chains R-hat = %v, want ~1", mixed)
	}
	unmixed, err := RHat([][]float64{mk(0), mk(5), mk(-5)})
	if err != nil {
		t.Fatal(err)
	}
	if unmixed < 1.5 {
		t.Errorf("unmixed chains R-hat = %v, want >> 1", unmixed)
	}
}

func TestRHatErrors(t *testing.T) {
	if _, err := RHat([][]float64{{1, 2, 3}}); err == nil {
		t.Error("single chain should error")
	}
	if _, err := RHat([][]float64{{1, 2, 3}, {1, 2}}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := RHat([][]float64{{1}, {1}}); err == nil {
		t.Error("too-short chains should error")
	}
}

// TestLassoChainMixes runs the paper's observation end to end: the
// Bayesian Lasso "converges very quickly" — independent chains reach
// R-hat ~1 on sigma^2 within a few dozen iterations.
func TestLassoChainMixes(t *testing.T) {
	runChain := func(seed uint64) []float64 {
		rng := randgen.New(seed)
		const n, p = 500, 8
		data := workload.GenRegressionWithBeta(rng, workload.SparseBeta(randgen.New(9), p, 3), n, 1)
		xtx := linalg.NewMat(p, p)
		xty := linalg.NewVec(p)
		for i, x := range data.X {
			xtx.AddOuter(1, x, x)
			for j := range x {
				xty[j] += x[j] * data.Y[i]
			}
		}
		h := lasso.Hyper{Lambda: 1, P: p}
		st := lasso.Init(p)
		var draws []float64
		for iter := 0; iter < 120; iter++ {
			lasso.SampleInvTau2(rng, h, st)
			if err := lasso.SampleBeta(rng, st, xtx, xty); err != nil {
				t.Fatal(err)
			}
			var sse float64
			for i, x := range data.X {
				r := data.Y[i] - x.Dot(st.Beta)
				sse += r * r
			}
			lasso.SampleSigma2(rng, st, n, sse)
			if iter >= 20 {
				draws = append(draws, st.Sigma2)
			}
		}
		return draws
	}
	// Two chains over the same planted coefficients with independent
	// randomness; the sigma^2 posteriors must agree.
	a, b := runChain(100), runChain(100_000)
	r, err := RHat([][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if r > 1.3 {
		t.Errorf("Lasso sigma^2 chains did not mix: R-hat = %v", r)
	}
	if e := ESS(a); e < 10 {
		t.Errorf("ESS = %v suspiciously low", e)
	}
}
