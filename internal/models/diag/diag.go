// Package diag provides MCMC convergence diagnostics for the benchmark's
// samplers: autocorrelation, effective sample size, and the Gelman-Rubin
// potential scale reduction factor (R-hat). The paper's primer notes that
// "a simulation that traverses only a few dozen to a few thousand
// possible values ... will suffice to 'mix' the chain"; these diagnostics
// make that checkable for the chains this repository runs.
package diag

import (
	"fmt"
	"math"
)

// MeanVar returns the sample mean and (unbiased) variance of xs.
func MeanVar(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= n - 1
	return
}

// Autocorr returns the lag-k autocorrelation of the chain (0 when the
// chain is too short or constant).
func Autocorr(xs []float64, lag int) float64 {
	if lag < 0 || lag >= len(xs) {
		return 0
	}
	mean, variance := MeanVar(xs)
	if variance == 0 {
		return 0
	}
	var s float64
	for i := 0; i+lag < len(xs); i++ {
		s += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	return s / (float64(len(xs)-1) * variance)
}

// ESS estimates the effective sample size with Geyer's initial positive
// sequence: sums of adjacent autocorrelation pairs are accumulated while
// they remain positive. A constant chain carries one independent draw's
// worth of information, so it reports 1, not n.
func ESS(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if _, v := MeanVar(xs); v == 0 {
		return 1
	}
	if n < 4 {
		return float64(n)
	}
	var rhoSum float64
	for k := 1; k+1 < n; k += 2 {
		pair := Autocorr(xs, k) + Autocorr(xs, k+1)
		if pair <= 0 {
			break
		}
		rhoSum += pair
	}
	ess := float64(n) / (1 + 2*rhoSum)
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// RHat computes the Gelman-Rubin potential scale reduction factor over
// two or more chains of equal length. Values near 1 indicate the chains
// have mixed; above ~1.1 they have not. It returns an error for fewer
// than two chains or mismatched lengths.
func RHat(chains [][]float64) (float64, error) {
	m := len(chains)
	if m < 2 {
		return 0, fmt.Errorf("diag: RHat needs at least two chains, got %d", m)
	}
	n := len(chains[0])
	if n < 2 {
		return 0, fmt.Errorf("diag: chains too short (%d draws)", n)
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	for i, c := range chains {
		if len(c) != n {
			return 0, fmt.Errorf("diag: chain %d has %d draws, want %d", i, len(c), n)
		}
		means[i], vars[i] = MeanVar(c)
	}
	grand, betweenVar := MeanVar(means)
	_ = grand
	b := float64(n) * betweenVar // between-chain variance
	var w float64                // within-chain variance
	for _, v := range vars {
		w += v
	}
	w /= float64(m)
	if w == 0 {
		// Zero within-chain variance: every chain is constant. If the
		// constants differ the chains can never mix (infinite scale
		// reduction); if they agree exactly, R-hat is 1 by convention.
		if b > 0 {
			return math.Inf(1), nil
		}
		return 1, nil
	}
	varPlus := (float64(n-1)/float64(n))*w + b/float64(n)
	return math.Sqrt(varPlus / w), nil
}
