package impute

import (
	"math"
	"testing"
	"testing/quick"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

func TestPartition(t *testing.T) {
	c, o := Partition([]bool{true, false, false, true})
	if len(c) != 2 || c[0] != 0 || c[1] != 3 {
		t.Errorf("censored = %v", c)
	}
	if len(o) != 2 || o[0] != 1 || o[1] != 2 {
		t.Errorf("observed = %v", o)
	}
}

func TestConditionalBivariate(t *testing.T) {
	// Classic bivariate normal: x1|x2 ~ N(mu1 + rho*s1/s2*(x2-mu2),
	// s1^2(1-rho^2)). Take mu=(1,2), s1=2, s2=1, rho=0.5.
	mu := linalg.Vec{1, 2}
	sigma := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{4, 1, 1, 1}}
	muC, sigC, err := Conditional(mu, sigma, []int{0}, []int{1}, linalg.Vec{3})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 1 + (1.0/1.0)*(3-2) // mu1 + S12 S22^{-1} (x2-mu2) = 1+1 = 2
	if math.Abs(muC[0]-wantMean) > 1e-12 {
		t.Errorf("conditional mean = %v, want %v", muC[0], wantMean)
	}
	wantVar := 4 - 1*1.0 // S11 - S12 S22^{-1} S21 = 3
	if math.Abs(sigC.At(0, 0)-wantVar) > 1e-9 {
		t.Errorf("conditional var = %v, want %v", sigC.At(0, 0), wantVar)
	}
}

func TestConditionalNothingObserved(t *testing.T) {
	mu := linalg.Vec{1, 2}
	sigma := linalg.Eye(2)
	muC, sigC, err := Conditional(mu, sigma, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if muC[0] != 1 || muC[1] != 2 {
		t.Errorf("marginal mean = %v", muC)
	}
	if sigC.At(0, 0) != 1 || sigC.At(0, 1) != 0 {
		t.Errorf("marginal cov = %v", sigC.Data)
	}
}

func TestSampleMissingFullyObservedNoop(t *testing.T) {
	rng := randgen.New(1)
	x := linalg.Vec{1, 2}
	if err := SampleMissing(rng, x, []bool{false, false}, linalg.Vec{0, 0}, linalg.Eye(2)); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("fully observed point was modified: %v", x)
	}
}

func TestSampleMissingUsesCorrelation(t *testing.T) {
	// Strong positive correlation: when x2 is far above its mean, drawn
	// x1 should also be above its mean on average.
	rng := randgen.New(2)
	mu := linalg.Vec{0, 0}
	sigma := &linalg.Mat{Rows: 2, Cols: 2, Data: []float64{1, 0.9, 0.9, 1}}
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		x := linalg.Vec{0, 3}
		if err := SampleMissing(rng, x, []bool{true, false}, mu, sigma); err != nil {
			t.Fatal(err)
		}
		sum += x[0]
	}
	if got := sum / n; math.Abs(got-2.7) > 0.1 { // 0.9 * 3
		t.Errorf("conditional mean of draws = %v, want ~2.7", got)
	}
}

func TestSampleMissingReducesError(t *testing.T) {
	// Imputing from the true generating Gaussian should beat mean
	// imputation in mean squared error.
	rng := randgen.New(3)
	mu := linalg.Vec{0, 0, 0}
	sigma := &linalg.Mat{Rows: 3, Cols: 3, Data: []float64{
		1, 0.8, 0.8,
		0.8, 1, 0.8,
		0.8, 0.8, 1,
	}}
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	var impErr, meanErr float64
	const n = 3000
	for i := 0; i < n; i++ {
		truth := rng.MVNormalChol(mu, l)
		x := truth.Clone()
		x[0] = 0
		if err := SampleMissing(rng, x, []bool{true, false, false}, mu, sigma); err != nil {
			t.Fatal(err)
		}
		impErr += (x[0] - truth[0]) * (x[0] - truth[0])
		meanErr += truth[0] * truth[0] // mean imputation predicts 0
	}
	if impErr >= meanErr*0.6 {
		t.Errorf("imputation MSE %v not clearly better than mean imputation %v", impErr/n, meanErr/n)
	}
}

// Property: conditional covariance is symmetric and has non-negative
// diagonal for random SPD matrices and random masks.
func TestQuickConditionalValid(t *testing.T) {
	f := func(seed uint64, maskBits uint8) bool {
		rng := randgen.New(seed)
		const d = 4
		// Random SPD sigma.
		b := linalg.NewMat(d, d)
		for i := range b.Data {
			b.Data[i] = rng.Norm()
		}
		sigma := b.MulMat(b.T())
		for i := 0; i < d; i++ {
			sigma.Set(i, i, sigma.At(i, i)+float64(d))
		}
		missing := make([]bool, d)
		any := false
		for i := 0; i < d; i++ {
			missing[i] = maskBits&(1<<i) != 0
			any = any || missing[i]
		}
		if !any {
			return true
		}
		cen, obs := Partition(missing)
		xObs := make(linalg.Vec, len(obs))
		for i := range xObs {
			xObs[i] = rng.Norm()
		}
		mu := linalg.NewVec(d)
		muC, sigC, err := Conditional(mu, sigma, cen, obs, xObs)
		if err != nil {
			return false
		}
		if len(muC) != len(cen) {
			return false
		}
		for i := 0; i < sigC.Rows; i++ {
			if sigC.At(i, i) < 0 {
				return false
			}
			for j := 0; j < sigC.Cols; j++ {
				if math.Abs(sigC.At(i, j)-sigC.At(j, i)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlopsPositive(t *testing.T) {
	if Flops(10) <= 0 {
		t.Error("Flops must be positive")
	}
}

func TestSampleMembershipObservedPrefersMatchingCluster(t *testing.T) {
	rng := randgen.New(9)
	pi := []float64{0.5, 0.5}
	mu := []linalg.Vec{{-10, -10}, {10, 10}}
	sigma := []*linalg.Mat{linalg.Eye(2), linalg.Eye(2)}
	// Only dimension 0 is observed, near cluster 1's mean.
	x := linalg.Vec{9.5, 0}
	missing := []bool{false, true}
	for i := 0; i < 50; i++ {
		c, err := SampleMembershipObserved(rng, pi, mu, sigma, x, missing)
		if err != nil {
			t.Fatal(err)
		}
		if c != 1 {
			t.Fatalf("observed-marginal membership = %d, want 1", c)
		}
	}
}

func TestSampleMembershipObservedFullyCensoredUsesPrior(t *testing.T) {
	rng := randgen.New(10)
	pi := []float64{0.999, 0.001}
	mu := []linalg.Vec{{0}, {100}}
	sigma := []*linalg.Mat{linalg.Eye(1), linalg.Eye(1)}
	counts := [2]int{}
	for i := 0; i < 500; i++ {
		c, err := SampleMembershipObserved(rng, pi, mu, sigma, linalg.Vec{0}, []bool{true})
		if err != nil {
			t.Fatal(err)
		}
		counts[c]++
	}
	if counts[0] < 480 {
		t.Errorf("fully censored point should follow the prior: %v", counts)
	}
}

func TestSampleMembershipObservedRejectsBadCovariance(t *testing.T) {
	rng := randgen.New(11)
	bad := &linalg.Mat{Rows: 1, Cols: 1, Data: []float64{-1}}
	_, err := SampleMembershipObserved(rng, []float64{1}, []linalg.Vec{{0}}, []*linalg.Mat{bad},
		linalg.Vec{0}, []bool{false})
	if err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}
