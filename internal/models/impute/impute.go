// Package impute implements the Gaussian missing-data imputation model of
// the paper's Section 9: a Gaussian mixture model extended with one extra
// Gibbs step that redraws each data point's censored coordinates from the
// conditional multivariate normal of its assigned cluster,
//
//	x1 | x2 ~ Normal(mu1 + S12 S22^{-1} (x2 - mu2), S11 - S12 S22^{-1} S21),
//
// where the dimensions are partitioned into censored (1) and observed (2)
// blocks.
package impute

import (
	"fmt"
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
)

// Partition splits dimension indices into censored and observed lists.
func Partition(missing []bool) (censored, observed []int) {
	for i, m := range missing {
		if m {
			censored = append(censored, i)
		} else {
			observed = append(observed, i)
		}
	}
	return
}

// Conditional computes the conditional mean and covariance of the
// censored block given the observed values under Normal(mu, sigma).
func Conditional(mu linalg.Vec, sigma *linalg.Mat, censored, observed []int, xObs linalg.Vec) (linalg.Vec, *linalg.Mat, error) {
	c, o := len(censored), len(observed)
	if o == 0 {
		// Nothing observed: the conditional is the marginal.
		muC := make(linalg.Vec, c)
		sigC := linalg.NewMat(c, c)
		for i, ci := range censored {
			muC[i] = mu[ci]
			for j, cj := range censored {
				sigC.Set(i, j, sigma.At(ci, cj))
			}
		}
		return muC, sigC, nil
	}
	s11 := linalg.NewMat(c, c)
	s12 := linalg.NewMat(c, o)
	s22 := linalg.NewMat(o, o)
	for i, ci := range censored {
		for j, cj := range censored {
			s11.Set(i, j, sigma.At(ci, cj))
		}
		for j, oj := range observed {
			s12.Set(i, j, sigma.At(ci, oj))
		}
	}
	for i, oi := range observed {
		for j, oj := range observed {
			s22.Set(i, j, sigma.At(oi, oj))
		}
	}
	l22, err := linalg.Cholesky(s22)
	if err != nil {
		return nil, nil, fmt.Errorf("impute: observed block: %w", err)
	}
	// diff = x2 - mu2.
	diff := make(linalg.Vec, o)
	for i, oi := range observed {
		diff[i] = xObs[i] - mu[oi]
	}
	// muC = mu1 + S12 S22^{-1} diff.
	sol := linalg.CholSolve(l22, diff)
	muC := make(linalg.Vec, c)
	for i, ci := range censored {
		muC[i] = mu[ci] + s12.Row(i).Dot(sol)
	}
	// sigC = S11 - S12 S22^{-1} S21.
	s22inv := linalg.CholInverse(l22)
	adj := s12.MulMat(s22inv).MulMat(s12.T())
	sigC := s11.Sub(adj).Symmetrize()
	// Guard tiny negative eigenvalues from round-off.
	for i := 0; i < c; i++ {
		if sigC.At(i, i) < 1e-9 {
			sigC.Set(i, i, sigC.At(i, i)+1e-9)
		}
	}
	return muC, sigC, nil
}

// SampleMissing redraws x's censored coordinates in place from the
// conditional normal of cluster (mu, sigma). missing[i] marks censored
// dimensions.
func SampleMissing(rng *randgen.RNG, x linalg.Vec, missing []bool, mu linalg.Vec, sigma *linalg.Mat) error {
	censored, observed := Partition(missing)
	if len(censored) == 0 {
		return nil
	}
	xObs := make(linalg.Vec, len(observed))
	for i, oi := range observed {
		xObs[i] = x[oi]
	}
	muC, sigC, err := Conditional(mu, sigma, censored, observed, xObs)
	if err != nil {
		return err
	}
	draw, err := rng.MVNormal(muC, sigC)
	if err != nil {
		return fmt.Errorf("impute: conditional draw: %w", err)
	}
	for i, ci := range censored {
		x[ci] = draw[i]
	}
	return nil
}

// Flops approximates the work of one conditional draw at dimension d
// (block extraction, a Cholesky of the observed block, and solves).
func Flops(d int) float64 { return 3 * float64(d) * float64(d) * float64(d) }

// SampleMembershipObserved draws a cluster assignment from the marginal
// posterior over the OBSERVED coordinates only:
//
//	Pr[c = k] ∝ pi_k N(x_obs | mu_k[obs], Sigma_k[obs, obs]).
//
// Together with SampleMissing this forms a blocked Gibbs update of
// (c, x_missing) — sampling c from imputed coordinates instead creates a
// self-reinforcing loop that stalls the chain under heavy censoring.
func SampleMembershipObserved(rng *randgen.RNG, pi []float64, mu []linalg.Vec, sigma []*linalg.Mat, x linalg.Vec, missing []bool) (int, error) {
	_, observed := Partition(missing)
	if len(observed) == 0 {
		return rng.Categorical(pi), nil
	}
	o := len(observed)
	xObs := make(linalg.Vec, o)
	for i, oi := range observed {
		xObs[i] = x[oi]
	}
	k := len(pi)
	logs := make([]float64, k)
	max := math.Inf(-1)
	diff := make(linalg.Vec, o)
	for c := 0; c < k; c++ {
		sub := linalg.NewMat(o, o)
		for i, oi := range observed {
			diff[i] = xObs[i] - mu[c][oi]
			for j, oj := range observed {
				sub.Set(i, j, sigma[c].At(oi, oj))
			}
		}
		l, err := linalg.Cholesky(sub)
		if err != nil {
			return 0, fmt.Errorf("impute: observed block of cluster %d: %w", c, err)
		}
		sol := linalg.SolveLower(l, diff)
		logs[c] = math.Log(pi[c]) - 0.5*(float64(o)*math.Log(2*math.Pi)+linalg.CholLogDet(l)+sol.Dot(sol))
		if logs[c] > max {
			max = logs[c]
		}
	}
	w := make([]float64, k)
	for c := range w {
		w[c] = math.Exp(logs[c] - max)
	}
	return rng.Categorical(w), nil
}
