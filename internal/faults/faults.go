// Package faults defines deterministic fault-injection schedules for the
// simulated cluster: machine crashes and stragglers pinned to virtual-clock
// times. The paper justifies SimSQL/Hadoop's per-iteration launch overhead
// as "the price of fault tolerance" but never injects a failure; a Schedule
// turns that assertion into something the benchmark can measure. Schedules
// carry no randomness of their own — the seeded generators here are pure
// functions of their arguments, so a (seed, schedule) pair always produces
// byte-identical experiment tables.
//
// The package intentionally knows nothing about the simulator: internal/sim
// consumes a Schedule, and each engine implements its own paradigm-faithful
// recovery (MR task re-execution, dataflow lineage recomputation, BSP
// checkpoint rollback, GAS snapshot restore, parameter-server shard
// re-replication from a hot standby).
package faults

import (
	"fmt"
	"sort"

	"mlbench/internal/randgen"
)

// Kind distinguishes fault event types.
type Kind int

const (
	// Crash kills one machine at a point in virtual time. The cluster
	// detects the loss at the end of the phase whose execution covers the
	// event, charges a detection latency, and hands the event to the
	// running engine's recovery handler. The machine is replaced
	// immediately (cloud semantics); the recovery cost is the engine's.
	Crash Kind = iota
	// Straggle slows one machine's compute by Factor for Duration virtual
	// seconds (or for the rest of the run when Duration is 0).
	Straggle
)

// String names the kind for notes and traces.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggle:
		return "straggle"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind    Kind
	Machine int     // victim machine index
	At      float64 // virtual seconds at which the fault occurs
	// Factor is the compute slowdown multiplier of a Straggle event (> 1).
	Factor float64
	// Duration is the straggle window length in virtual seconds; 0 means
	// the machine straggles for the rest of the run.
	Duration float64
}

// String renders the event for notes.
func (e Event) String() string {
	switch e.Kind {
	case Straggle:
		return fmt.Sprintf("straggle machine %d at %.1fs (%.1fx, %.1fs)", e.Machine, e.At, e.Factor, e.Duration)
	default:
		return fmt.Sprintf("crash machine %d at %.1fs", e.Machine, e.At)
	}
}

// CrashAt builds a crash event.
func CrashAt(machine int, at float64) Event {
	return Event{Kind: Crash, Machine: machine, At: at}
}

// StraggleAt builds a straggle event: machine runs factor times slower
// from at for duration seconds (0 = rest of run).
func StraggleAt(machine int, at, duration, factor float64) Event {
	return Event{Kind: Straggle, Machine: machine, At: at, Factor: factor, Duration: duration}
}

// Schedule is an ordered set of fault events.
type Schedule struct {
	Events []Event
}

// NewSchedule builds a schedule, validating and stably ordering the events
// by (At, Machine).
func NewSchedule(events ...Event) *Schedule {
	for _, e := range events {
		if e.Machine < 0 {
			panic(fmt.Sprintf("faults: event on negative machine %d", e.Machine))
		}
		if e.At < 0 {
			panic(fmt.Sprintf("faults: event at negative time %v", e.At))
		}
		if e.Kind == Straggle && e.Factor <= 1 {
			panic(fmt.Sprintf("faults: straggle factor %v must exceed 1", e.Factor))
		}
	}
	s := &Schedule{Events: append([]Event(nil), events...)}
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].At != s.Events[j].At {
			return s.Events[i].At < s.Events[j].At
		}
		return s.Events[i].Machine < s.Events[j].Machine
	})
	return s
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Crashes returns the crash events in order.
func (s *Schedule) Crashes() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Kind == Crash {
			out = append(out, e)
		}
	}
	return out
}

// Stragglers returns the straggle events in order.
func (s *Schedule) Stragglers() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Kind == Straggle {
			out = append(out, e)
		}
	}
	return out
}

// SpreadCrashes builds a schedule of n crashes evenly spread across
// [start, end), with victim machines drawn deterministically from seed.
// Machine 0 is spared when the cluster has more than one machine (it hosts
// the driver/master in every engine, and none of the paper's platforms
// survives master loss — master fail-over is a different experiment).
func SpreadCrashes(n, machines int, start, end float64, seed uint64) *Schedule {
	if n <= 0 || machines <= 0 || end <= start {
		return NewSchedule()
	}
	rng := randgen.New(seed).Split(0xFA01F5)
	events := make([]Event, 0, n)
	step := (end - start) / float64(n)
	for i := 0; i < n; i++ {
		victim := 0
		if machines > 1 {
			victim = 1 + rng.Intn(machines-1)
		}
		// The i-th crash lands mid-way through the i-th sub-window.
		events = append(events, CrashAt(victim, start+(float64(i)+0.5)*step))
	}
	return NewSchedule(events...)
}
