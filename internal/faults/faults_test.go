package faults

import (
	"reflect"
	"testing"
)

func TestNewScheduleOrdersEvents(t *testing.T) {
	s := NewSchedule(
		CrashAt(3, 50),
		CrashAt(1, 10),
		StraggleAt(2, 10, 5, 3),
	)
	if len(s.Events) != 3 {
		t.Fatalf("events = %d", len(s.Events))
	}
	if s.Events[0].Machine != 1 || s.Events[1].Machine != 2 || s.Events[2].Machine != 3 {
		t.Errorf("events not ordered by (At, Machine): %+v", s.Events)
	}
	if len(s.Crashes()) != 2 || len(s.Stragglers()) != 1 {
		t.Errorf("Crashes/Stragglers split wrong: %d/%d", len(s.Crashes()), len(s.Stragglers()))
	}
}

func TestEmpty(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule should be empty")
	}
	if !NewSchedule().Empty() {
		t.Error("zero-event schedule should be empty")
	}
	if NewSchedule(CrashAt(0, 1)).Empty() {
		t.Error("one-event schedule should not be empty")
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative machine": func() { NewSchedule(CrashAt(-1, 0)) },
		"negative time":    func() { NewSchedule(CrashAt(0, -1)) },
		"factor <= 1":      func() { NewSchedule(StraggleAt(0, 0, 1, 1.0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSpreadCrashesDeterministic(t *testing.T) {
	a := SpreadCrashes(3, 20, 100, 400, 7)
	b := SpreadCrashes(3, 20, 100, 400, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	c := SpreadCrashes(3, 20, 100, 400, 8)
	same := true
	for i := range a.Events {
		if a.Events[i].Machine != c.Events[i].Machine {
			same = false
		}
	}
	if same {
		t.Error("different seeds chose identical victims (possible but wildly unlikely)")
	}
}

func TestSpreadCrashesWindowAndVictims(t *testing.T) {
	s := SpreadCrashes(4, 10, 100, 200, 1)
	if len(s.Events) != 4 {
		t.Fatalf("events = %d", len(s.Events))
	}
	for i, e := range s.Events {
		if e.Kind != Crash {
			t.Errorf("event %d kind = %v", i, e.Kind)
		}
		if e.At < 100 || e.At >= 200 {
			t.Errorf("event %d at %v outside [100,200)", i, e.At)
		}
		if e.Machine < 1 || e.Machine >= 10 {
			t.Errorf("event %d victim %d: machine 0 is spared, must be in [1,10)", i, e.Machine)
		}
	}
	// Events are evenly spread: one per quarter of the window.
	for i, e := range s.Events {
		lo := 100 + float64(i)*25.0
		if e.At < lo || e.At >= lo+25 {
			t.Errorf("event %d at %v outside its sub-window [%v,%v)", i, e.At, lo, lo+25)
		}
	}
	// Single-machine cluster: only machine 0 exists, so it is the victim.
	s1 := SpreadCrashes(1, 1, 0, 10, 1)
	if s1.Events[0].Machine != 0 {
		t.Errorf("single-machine victim = %d", s1.Events[0].Machine)
	}
	// Degenerate windows produce empty schedules.
	if !SpreadCrashes(0, 5, 0, 10, 1).Empty() || !SpreadCrashes(2, 5, 10, 10, 1).Empty() {
		t.Error("degenerate SpreadCrashes should be empty")
	}
}
