package datagen

import (
	"path/filepath"
	"reflect"
	"testing"

	"mlbench/internal/randgen"
)

// TestGenerateWorkerIdentity is the acceptance property of the whole
// package: the same DatasetSpec and seed produce a byte-identical corpus
// — equal SHA-256 fingerprint and deeply equal sections — at 1 vs 8
// generator workers, and repeat runs reproduce it. The spec under test is
// the checked-in one the datagen-smoke CI job uses.
func TestGenerateWorkerIdentity(t *testing.T) {
	spec, err := LoadSpec(filepath.Join("..", "..", "datasets", "smoke.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := Generate(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Fingerprint == "" || len(d1.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q is not a SHA-256 hex digest", d1.Fingerprint)
	}
	if d1.Fingerprint != d8.Fingerprint {
		t.Errorf("fingerprint depends on workers: %s vs %s", d1.Fingerprint, d8.Fingerprint)
	}
	if d1.Fingerprint != again.Fingerprint {
		t.Errorf("fingerprint not reproducible: %s vs %s", d1.Fingerprint, again.Fingerprint)
	}
	if !reflect.DeepEqual(d1.Docs, d8.Docs) {
		t.Error("corpus differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(d1.GMM, d8.GMM) {
		t.Error("gmm section differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(d1.Regression, d8.Regression) {
		t.Error("regression section differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(d1.Graph, d8.Graph) {
		t.Error("graph section differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(d1.PartitionCounts, d8.PartitionCounts) {
		t.Error("partition counts differ between 1 and 8 workers")
	}

	// Sections are sized as declared.
	if len(d1.Docs) != 400 || len(d1.GMM.Points) != 500 ||
		len(d1.Regression.X) != 300 || len(d1.Graph.Adj) != 500 {
		t.Errorf("section sizes: docs %d, gmm %d, reg %d, graph %d",
			len(d1.Docs), len(d1.GMM.Points), len(d1.Regression.X), len(d1.Graph.Adj))
	}

	// A different seed is a different dataset.
	spec2 := spec
	spec2.Seed = 43
	other, err := Generate(spec2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint == d1.Fingerprint {
		t.Error("fingerprint ignores the seed")
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	if _, err := Generate(DatasetSpec{Name: ""}, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestShardCounts(t *testing.T) {
	got := shardCounts(10, 4)
	if want := []int{3, 3, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("shardCounts(10, 4) = %v, want %v", got, want)
	}
	got = shardCounts(3, 8)
	if want := []int{1, 1, 1, 0, 0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("shardCounts(3, 8) = %v, want %v", got, want)
	}
}

func TestPartitionCounts(t *testing.T) {
	// Balanced: exact split.
	if got := PartitionCounts(100, 4, 1); !reflect.DeepEqual(got, []int{25, 25, 25, 25}) {
		t.Fatalf("balanced: %v", got)
	}
	// Imbalanced: sums to total, monotone, ~ratio between ends.
	got := PartitionCounts(9000, 5, 8)
	var sum int
	for m := 1; m < len(got); m++ {
		if got[m] < got[m-1] {
			t.Fatalf("counts not monotone: %v", got)
		}
	}
	for _, c := range got {
		sum += c
	}
	if sum != 9000 {
		t.Fatalf("counts sum to %d, want 9000: %v", sum, got)
	}
	if ratio := float64(got[4]) / float64(got[0]); ratio < 7.5 || ratio > 8.5 {
		t.Fatalf("max/min ratio = %.2f, want ~8: %v", ratio, got)
	}
	// Tiny totals: no machine starves when total >= machines.
	got = PartitionCounts(5, 5, 8)
	for _, c := range got {
		if c < 1 {
			t.Fatalf("starved machine: %v", got)
		}
	}
	// One machine takes everything.
	if got := PartitionCounts(7, 1, 3); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("single machine: %v", got)
	}
}

func TestMachineShare(t *testing.T) {
	imbal := ScenarioSpec("imbal-8x")
	if imbal == nil {
		t.Fatal("imbal-8x not registered")
	}
	var total int
	var counts []int
	const machines, base = 5, 1000
	for m := 0; m < machines; m++ {
		c := MachineShare(imbal, m, machines, base)
		counts = append(counts, c)
		total += c
	}
	if total != machines*base {
		t.Fatalf("shares sum to %d, want %d: %v", total, machines*base, counts)
	}
	if ratio := float64(counts[machines-1]) / float64(counts[0]); ratio < 7 || ratio > 9 {
		t.Fatalf("share ratio = %.2f, want ~8: %v", ratio, counts)
	}
	// nil spec and balanced scenarios are identity.
	if got := MachineShare(nil, 3, 5, base); got != base {
		t.Fatalf("nil spec share = %d", got)
	}
	if got := MachineShare(ScenarioSpec("skew-heavy"), 3, 5, base); got != base {
		t.Fatalf("balanced scenario share = %d", got)
	}
}

// TestMachineGMMSharedMixture checks the distributed-generation contract:
// every machine derives the same planted mixture from the shared root.
func TestMachineGMMSharedMixture(t *testing.T) {
	spec := ScenarioSpec("skew-heavy")
	p0 := MachineGMM(spec, randgen.New(99), 0, 50, 10, 10)
	p1 := MachineGMM(spec, randgen.New(99), 1, 50, 10, 10)
	if len(p0) != 50 || len(p1) != 50 {
		t.Fatalf("points: %d, %d", len(p0), len(p1))
	}
	if reflect.DeepEqual(p0, p1) {
		t.Error("machines 0 and 1 generated identical points (streams not split)")
	}
	// Same machine, fresh root: byte-identical.
	again := MachineGMM(spec, randgen.New(99), 0, 50, 10, 10)
	if !reflect.DeepEqual(p0, again) {
		t.Error("machine generation not reproducible")
	}
}

func TestMachineCorpusShapes(t *testing.T) {
	spec := ScenarioSpec("skew-heavy")
	docs := MachineCorpus(spec, randgen.New(7), 200, 1000, 100, 8)
	if len(docs) != 200 {
		t.Fatalf("docs = %d", len(docs))
	}
	for _, doc := range docs {
		if len(doc) < 2 {
			t.Fatalf("degenerate doc of length %d", len(doc))
		}
		for _, w := range doc {
			if w < 0 || w >= 1000 {
				t.Fatalf("word %d out of vocabulary", w)
			}
		}
	}
}
