// Package datagen is the declarative synthetic-dataset generator: a
// strict-JSON (plus the internal/yamlite YAML-subset) DatasetSpec
// declares, per model family, the distributional shape the paper's fixed
// generators never exposed — vocabulary Zipf exponent, doc-length law and
// topic-prior skew for the LDA/HMM corpora; cluster separation,
// covariance conditioning and mixture imbalance for GMM; feature
// correlation structure for Lasso; power-law degree skew for graph
// layouts; and a partition-imbalance control for how any of them land on
// machines. Generation is deterministic and shard-parallel: a spec is cut
// into a fixed number of shards, each generated from its own
// Split-derived RNG, so the same spec and seed yield a byte-identical
// corpus — certified by a canonical SHA-256 fingerprint — at any worker
// count.
//
// The benchmark side consumes specs through named scenarios
// (RunSpec.Dataset / task Config.Dataset), where the task keeps its paper
// dimensions and the scenario contributes only shape; the `mlbench gen`
// CLI and the datagen-smoke CI job consume full specs from files.
package datagen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlbench/internal/workload"
	"mlbench/internal/yamlite"
)

// DatasetSpec declares one synthetic dataset. Every section is optional;
// a section's zero knobs mean the historical paper shape.
type DatasetSpec struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed,omitempty"` // default 1
	// Shards is the fixed generation-shard count (default 16). It is part
	// of the dataset identity: shard i always gets the same RNG stream, so
	// the fingerprint is invariant under the worker count, which only
	// controls how many shards generate concurrently.
	Shards int `json:"shards,omitempty"`

	Corpus     *CorpusSpec     `json:"corpus,omitempty"`
	GMM        *GMMSpec        `json:"gmm,omitempty"`
	Regression *RegressionSpec `json:"regression,omitempty"`
	Graph      *GraphSpec      `json:"graph,omitempty"`
	Partition  *PartitionSpec  `json:"partition,omitempty"`
}

// CorpusSpec shapes the LDA/HMM text corpus.
type CorpusSpec struct {
	Docs   int `json:"docs,omitempty"`   // default 1000
	Vocab  int `json:"vocab,omitempty"`  // default 10,000 (the paper's dictionary)
	Topics int `json:"topics,omitempty"` // default 10
	// ZipfS is the word-frequency Zipf exponent (default 1.05, the
	// historical profile).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// TopicSkew is a Zipf exponent over the planted topic priors
	// (0 = uniform, the historical draw).
	TopicSkew float64 `json:"topic_skew,omitempty"`
	// Background is the shared-vocabulary word fraction (default 0.1).
	Background float64 `json:"background,omitempty"`
	// DocLen selects the document-length law.
	DocLen DocLenSpec `json:"doc_len,omitempty"`
}

// DocLenSpec is the document-length distribution: "uniform" (the
// historical ±50% around the mean), "fixed", "poisson", or "lognormal"
// (Sigma is the log-scale shape, default 0.5).
type DocLenSpec struct {
	Dist  string  `json:"dist,omitempty"` // default "uniform"
	Mean  float64 `json:"mean,omitempty"` // default 210 (the paper's ~210 words)
	Sigma float64 `json:"sigma,omitempty"`
}

// GMMSpec shapes the clustering point cloud.
type GMMSpec struct {
	Points   int `json:"points,omitempty"`   // default 10,000
	Dim      int `json:"dim,omitempty"`      // default 10
	Clusters int `json:"clusters,omitempty"` // default 10
	// Separation is the distance scale between planted means (default 8).
	Separation float64 `json:"separation,omitempty"`
	// CovCondition is the per-cluster covariance condition number
	// (largest/smallest axis variance; default 1 = spherical).
	CovCondition float64 `json:"cov_condition,omitempty"`
	// Imbalance is a Zipf exponent over mixture weights (0 = uniform).
	Imbalance float64 `json:"imbalance,omitempty"`
}

// RegressionSpec shapes the Lasso design matrix.
type RegressionSpec struct {
	Points   int `json:"points,omitempty"`   // default 10,000
	Dim      int `json:"dim,omitempty"`      // default 1000 (the paper's p)
	Sparsity int `json:"sparsity,omitempty"` // non-zero true coefficients; default dim/20+1
	// Noise is the residual standard deviation (default 1).
	Noise float64 `json:"noise,omitempty"`
	// Correlation is the AR(1) rho between adjacent regressors, in
	// [0, 1) (0 = the independent historical design).
	Correlation float64 `json:"correlation,omitempty"`
}

// GraphSpec shapes a synthetic graph layout (degree skew is what blows up
// GAS ghost replication).
type GraphSpec struct {
	Vertices  int     `json:"vertices,omitempty"`   // default 10,000
	AvgDegree float64 `json:"avg_degree,omitempty"` // default 16
	// Exponent is the power-law degree exponent gamma > 1 (0 = regular
	// AvgDegree-degree graph). Degrees are Pareto(MinDegree, gamma-1),
	// capped at Vertices-1.
	Exponent  float64 `json:"exponent,omitempty"`
	MinDegree int     `json:"min_degree,omitempty"` // default 1 (power-law only)
}

// PartitionSpec controls how generated items land on machines: the
// max/min per-machine load ratio ramps linearly across machines, so
// Imbalance 1 is the balanced historical layout and Imbalance 8 makes the
// last machine carry 8x the first's share (the adversarial straggler
// regime).
type PartitionSpec struct {
	Machines  int     `json:"machines,omitempty"` // default 8 (standalone generation only)
	Imbalance float64 `json:"imbalance,omitempty"`
}

// ParseSpec decodes a strict-JSON DatasetSpec: unknown fields are errors.
func ParseSpec(data []byte) (DatasetSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s DatasetSpec
	if err := dec.Decode(&s); err != nil {
		return DatasetSpec{}, fmt.Errorf("datagen: parsing DatasetSpec: %w", err)
	}
	var extra any
	if dec.Decode(&extra) == nil {
		return DatasetSpec{}, fmt.Errorf("datagen: parsing DatasetSpec: trailing data after the JSON object")
	}
	return s, nil
}

// LoadSpec reads a DatasetSpec from a .yaml/.yml or .json file, parses it
// strictly, normalizes defaults, and validates it.
func LoadSpec(path string) (DatasetSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return DatasetSpec{}, fmt.Errorf("datagen: %w", err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".yaml", ".yml":
		data, err = yamlite.ToJSON(data)
		if err != nil {
			return DatasetSpec{}, fmt.Errorf("datagen: %s: %w", path, err)
		}
	case ".json":
	default:
		return DatasetSpec{}, fmt.Errorf("datagen: %s: unsupported spec extension %q (want .yaml, .yml, or .json)", path, ext)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return DatasetSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return DatasetSpec{}, fmt.Errorf("datagen: %s: %w", path, err)
	}
	return s, nil
}

// Normalize fills defaults without mutating the receiver.
func (s DatasetSpec) Normalize() DatasetSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards == 0 {
		s.Shards = 16
	}
	if c := s.Corpus; c != nil {
		cc := *c
		if cc.Docs == 0 {
			cc.Docs = 1000
		}
		if cc.Vocab == 0 {
			cc.Vocab = 10_000
		}
		if cc.Topics == 0 {
			cc.Topics = 10
		}
		if cc.ZipfS == 0 {
			cc.ZipfS = 1.05
		}
		if cc.Background == 0 {
			cc.Background = 0.1
		}
		if cc.DocLen.Dist == "" {
			cc.DocLen.Dist = workload.LenUniform
		}
		if cc.DocLen.Mean == 0 {
			cc.DocLen.Mean = 210
		}
		if cc.DocLen.Sigma == 0 {
			cc.DocLen.Sigma = 0.5
		}
		s.Corpus = &cc
	}
	if g := s.GMM; g != nil {
		gg := *g
		if gg.Points == 0 {
			gg.Points = 10_000
		}
		if gg.Dim == 0 {
			gg.Dim = 10
		}
		if gg.Clusters == 0 {
			gg.Clusters = 10
		}
		if gg.Separation == 0 {
			gg.Separation = 8
		}
		if gg.CovCondition == 0 {
			gg.CovCondition = 1
		}
		s.GMM = &gg
	}
	if r := s.Regression; r != nil {
		rr := *r
		if rr.Points == 0 {
			rr.Points = 10_000
		}
		if rr.Dim == 0 {
			rr.Dim = 1000
		}
		if rr.Sparsity == 0 {
			rr.Sparsity = rr.Dim/20 + 1
		}
		if rr.Noise == 0 {
			rr.Noise = 1
		}
		s.Regression = &rr
	}
	if g := s.Graph; g != nil {
		gg := *g
		if gg.Vertices == 0 {
			gg.Vertices = 10_000
		}
		if gg.AvgDegree == 0 {
			gg.AvgDegree = 16
		}
		if gg.Exponent != 0 && gg.MinDegree == 0 {
			gg.MinDegree = 1
		}
		s.Graph = &gg
	}
	if p := s.Partition; p != nil {
		pp := *p
		if pp.Machines == 0 {
			pp.Machines = 8
		}
		if pp.Imbalance == 0 {
			pp.Imbalance = 1
		}
		s.Partition = &pp
	}
	return s
}

// Validate checks a normalized spec; errors name the offending field and
// the accepted range.
func (s DatasetSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	if s.Shards < 1 || s.Shards > 4096 {
		return fmt.Errorf("spec %s: shards = %d, want 1..4096", s.Name, s.Shards)
	}
	if s.Corpus == nil && s.GMM == nil && s.Regression == nil && s.Graph == nil && s.Partition == nil {
		// A partition-only spec is valid: it reshapes how the historical
		// generators' data lands on machines (the imbal-* scenarios).
		return fmt.Errorf("spec %s: declares no sections (want at least one of corpus, gmm, regression, graph, partition)", s.Name)
	}
	if c := s.Corpus; c != nil {
		if c.Docs < 1 || c.Vocab < 2 || c.Topics < 1 {
			return fmt.Errorf("spec %s: corpus docs/vocab/topics = %d/%d/%d, want >= 1/2/1", s.Name, c.Docs, c.Vocab, c.Topics)
		}
		if c.ZipfS <= 0 || c.TopicSkew < 0 || c.Background < 0 || c.Background >= 1 {
			return fmt.Errorf("spec %s: corpus zipf_s = %v (want > 0), topic_skew = %v (want >= 0), background = %v (want [0, 1))",
				s.Name, c.ZipfS, c.TopicSkew, c.Background)
		}
		switch c.DocLen.Dist {
		case workload.LenUniform, workload.LenFixed, workload.LenPoisson, workload.LenLognormal:
		default:
			return fmt.Errorf("spec %s: corpus doc_len.dist = %q, want one of uniform, fixed, poisson, lognormal",
				s.Name, c.DocLen.Dist)
		}
		if c.DocLen.Mean < 2 || c.DocLen.Sigma <= 0 {
			return fmt.Errorf("spec %s: corpus doc_len mean = %v (want >= 2), sigma = %v (want > 0)",
				s.Name, c.DocLen.Mean, c.DocLen.Sigma)
		}
	}
	if g := s.GMM; g != nil {
		if g.Points < 1 || g.Dim < 1 || g.Clusters < 1 {
			return fmt.Errorf("spec %s: gmm points/dim/clusters = %d/%d/%d, want >= 1", s.Name, g.Points, g.Dim, g.Clusters)
		}
		if g.Separation <= 0 || g.CovCondition < 1 || g.Imbalance < 0 {
			return fmt.Errorf("spec %s: gmm separation = %v (want > 0), cov_condition = %v (want >= 1), imbalance = %v (want >= 0)",
				s.Name, g.Separation, g.CovCondition, g.Imbalance)
		}
	}
	if r := s.Regression; r != nil {
		if r.Points < 1 || r.Dim < 1 || r.Sparsity < 1 || r.Sparsity > r.Dim {
			return fmt.Errorf("spec %s: regression points/dim/sparsity = %d/%d/%d, want points, dim >= 1 and 1 <= sparsity <= dim",
				s.Name, r.Points, r.Dim, r.Sparsity)
		}
		if r.Noise <= 0 || r.Correlation < 0 || r.Correlation >= 1 {
			return fmt.Errorf("spec %s: regression noise = %v (want > 0), correlation = %v (want [0, 1))",
				s.Name, r.Noise, r.Correlation)
		}
	}
	if g := s.Graph; g != nil {
		if g.Vertices < 2 || g.AvgDegree < 1 {
			return fmt.Errorf("spec %s: graph vertices = %d (want >= 2), avg_degree = %v (want >= 1)", s.Name, g.Vertices, g.AvgDegree)
		}
		if g.Exponent != 0 && (g.Exponent <= 1 || g.MinDegree < 1) {
			return fmt.Errorf("spec %s: graph exponent = %v (want > 1, or 0 for a regular graph), min_degree = %d (want >= 1)",
				s.Name, g.Exponent, g.MinDegree)
		}
	}
	if p := s.Partition; p != nil {
		if p.Machines < 1 || p.Imbalance < 1 {
			return fmt.Errorf("spec %s: partition machines = %d (want >= 1), imbalance = %v (want >= 1)", s.Name, p.Machines, p.Imbalance)
		}
	}
	return nil
}
