package datagen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlbench/internal/workload"
)

func TestLoadSpecSmokeYAML(t *testing.T) {
	s, err := LoadSpec(filepath.Join("..", "..", "datasets", "smoke.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "datagen-smoke" || s.Seed != 42 || s.Shards != 16 {
		t.Fatalf("header: %+v", s)
	}
	if s.Corpus == nil || s.Corpus.Docs != 400 || s.Corpus.ZipfS != 1.4 ||
		s.Corpus.DocLen.Dist != workload.LenLognormal || s.Corpus.DocLen.Mean != 120 {
		t.Fatalf("corpus: %+v", s.Corpus)
	}
	if s.GMM == nil || s.GMM.CovCondition != 8 || s.GMM.Imbalance != 1.2 {
		t.Fatalf("gmm: %+v", s.GMM)
	}
	if s.Regression == nil || s.Regression.Correlation != 0.6 || s.Regression.Sparsity != 4 {
		t.Fatalf("regression: %+v", s.Regression)
	}
	if s.Graph == nil || s.Graph.Exponent != 2.3 || s.Graph.MinDegree != 2 {
		t.Fatalf("graph: %+v", s.Graph)
	}
	if s.Partition == nil || s.Partition.Machines != 8 || s.Partition.Imbalance != 4 {
		t.Fatalf("partition: %+v", s.Partition)
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := DatasetSpec{Name: "d", Corpus: &CorpusSpec{}}.Normalize()
	if s.Seed != 1 || s.Shards != 16 {
		t.Fatalf("header defaults: %+v", s)
	}
	c := s.Corpus
	if c.Docs != 1000 || c.Vocab != 10_000 || c.Topics != 10 || c.ZipfS != 1.05 ||
		c.Background != 0.1 || c.DocLen.Dist != workload.LenUniform || c.DocLen.Mean != 210 {
		t.Fatalf("corpus defaults: %+v", c)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("normalized spec invalid: %v", err)
	}
}

func TestSpecValidateActionable(t *testing.T) {
	base := func() DatasetSpec {
		return DatasetSpec{Name: "d", Corpus: &CorpusSpec{}}.Normalize()
	}
	cases := []struct {
		name string
		mut  func(*DatasetSpec)
		want string
	}{
		{"no name", func(s *DatasetSpec) { s.Name = "" }, "name is required"},
		{"no sections", func(s *DatasetSpec) { s.Corpus = nil }, "no sections"},
		{"bad shards", func(s *DatasetSpec) { s.Shards = 9999 }, "shards"},
		{"bad doc_len dist", func(s *DatasetSpec) { s.Corpus.DocLen.Dist = "cauchy" }, "doc_len.dist"},
		{"bad background", func(s *DatasetSpec) { s.Corpus.Background = 1.5 }, "background"},
		{"bad zipf", func(s *DatasetSpec) { s.Corpus.ZipfS = -1 }, "zipf_s"},
		{"bad gmm cond", func(s *DatasetSpec) {
			s.GMM = &GMMSpec{Points: 1, Dim: 1, Clusters: 1, Separation: 8, CovCondition: 0.5}
		}, "cov_condition"},
		{"bad correlation", func(s *DatasetSpec) {
			s.Regression = &RegressionSpec{Points: 1, Dim: 4, Sparsity: 1, Noise: 1, Correlation: 1}
		}, "correlation"},
		{"bad graph exponent", func(s *DatasetSpec) {
			s.Graph = &GraphSpec{Vertices: 10, AvgDegree: 2, Exponent: 0.5, MinDegree: 1}
		}, "exponent"},
		{"bad partition", func(s *DatasetSpec) {
			s.Partition = &PartitionSpec{Machines: 4, Imbalance: 0.5}
		}, "imbalance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name": "x", "vocabulary": 5}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"name": "x"} {"name": "y"}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadSpec(write("x.toml", "")); err == nil ||
		!strings.Contains(err.Error(), "unsupported spec extension") {
		t.Fatalf("extension error: %v", err)
	}
	if _, err := LoadSpec(write("x.yaml", "name: t\nvocabulary: 5")); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadSpec(write("y.yaml", "name: t")); err == nil ||
		!strings.Contains(err.Error(), "no sections") {
		t.Fatalf("sectionless spec: %v", err)
	}
	if _, err := LoadSpec(write("z.yaml", "a:\n\tb: 1")); err == nil ||
		!strings.Contains(err.Error(), "tabs are not allowed") {
		t.Fatalf("yamlite error not surfaced: %v", err)
	}
}

func TestScenarios(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 4 {
		t.Fatalf("scenarios: %v", names)
	}
	for _, name := range names {
		s := ScenarioSpec(name)
		if s == nil {
			t.Fatalf("ScenarioSpec(%q) = nil", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", name, err)
		}
		if err := ParseScenario(name); err != nil {
			t.Errorf("ParseScenario(%s): %v", name, err)
		}
	}
	if ScenarioSpec("") != nil {
		t.Error("empty scenario should resolve to nil (the historical shape)")
	}
	if err := ParseScenario(""); err != nil {
		t.Errorf("empty scenario: %v", err)
	}
	err := ParseScenario("skew-hevy")
	if err == nil {
		t.Fatal("typo accepted")
	}
	if !strings.Contains(err.Error(), "skew-heavy") || !strings.Contains(err.Error(), "imbal-8x") {
		t.Errorf("error %q does not list the valid names", err)
	}
	// The skew pair reshapes distributions on balanced partitions; the
	// imbal pair does the opposite.
	for _, name := range []string{"skew-light", "skew-heavy"} {
		if s := ScenarioSpec(name); s.Partition != nil || s.Corpus == nil {
			t.Errorf("%s: want corpus shape and no partition section: %+v", name, s)
		}
	}
	for _, name := range []string{"imbal-2x", "imbal-8x"} {
		if s := ScenarioSpec(name); s.Partition == nil || s.Corpus != nil {
			t.Errorf("%s: want a partition section only: %+v", name, s)
		}
	}
}
