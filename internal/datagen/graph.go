package datagen

import (
	"math"

	"mlbench/internal/randgen"
)

// Graph is a generated directed multigraph in adjacency-list form
// (self-loops and parallel edges are allowed — what matters for the
// engine layouts is the degree distribution, not simple-graph
// invariants). Vertex v's out-edges are Adj[v].
type Graph struct {
	Vertices int       `json:"vertices"`
	Adj      [][]int32 `json:"adj"`
}

// paretoSample draws from the continuous Pareto(xm, alpha) law,
// CDF F(x) = 1 - (xm/x)^alpha for x >= xm — the closed form the
// goodness-of-fit battery checks degree draws against.
func paretoSample(rng *randgen.RNG, xm, alpha float64) float64 {
	return xm * math.Pow(1-rng.Float64(), -1/alpha)
}

// sampleDegree draws one vertex out-degree. Exponent 0 is the regular
// graph (constant AvgDegree); otherwise degrees are the integer part of
// Pareto(MinDegree, Exponent-1) draws — the standard discrete power law
// with tail exponent `Exponent` — capped at Vertices-1. In power-law mode
// AvgDegree is ignored: the tail sets the mean.
func sampleDegree(rng *randgen.RNG, g GraphSpec) int {
	if g.Exponent == 0 {
		return int(math.Round(g.AvgDegree))
	}
	deg := int(paretoSample(rng, float64(g.MinDegree), g.Exponent-1))
	if max := g.Vertices - 1; deg > max {
		deg = max
	}
	if deg < 1 {
		deg = 1
	}
	return deg
}

// genGraphShard generates the adjacency lists of one shard's n vertices:
// a degree draw followed by uniform endpoint draws over the whole vertex
// set.
func genGraphShard(rng *randgen.RNG, g GraphSpec, n int) [][]int32 {
	adj := make([][]int32, n)
	for v := range adj {
		deg := sampleDegree(rng, g)
		targets := make([]int32, deg)
		for e := range targets {
			targets[e] = int32(rng.Intn(g.Vertices))
		}
		adj[v] = targets
	}
	return adj
}
