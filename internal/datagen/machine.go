package datagen

import (
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

// This file is the bridge the task packages (internal/tasks/*) call from
// their per-machine generators: the task keeps its paper dimensions
// (vocabulary, topics, points per machine, ...) and the scenario spec
// contributes only distributional shape and partition imbalance. A nil
// spec — or a spec without the relevant section — means the historical
// generator path, which the task keeps inline so its byte stream is
// untouched.

// MachineShare returns one machine's item count under the spec's
// partition-imbalance control, given the balanced per-machine count. A
// nil spec or a balanced partition returns base unchanged.
func MachineShare(spec *DatasetSpec, machine, machines, base int) int {
	if spec == nil || spec.Partition == nil || spec.Partition.Imbalance == 1 || machines <= 1 {
		return base
	}
	return PartitionCounts(base*machines, machines, spec.Partition.Imbalance)[machine]
}

// MachineCorpus generates one machine's documents with the spec's corpus
// shape and the task's dimensions. The caller guarantees spec.Corpus is
// non-nil (it falls back to workload.GenCorpus otherwise).
func MachineCorpus(spec *DatasetSpec, rng *randgen.RNG, docs, vocab, avgLen, topics int) [][]int {
	next := OpenMachineCorpus(spec, rng, vocab, avgLen, topics)
	out := make([][]int, docs)
	for d := range out {
		out[d] = next()
	}
	return out
}

// OpenMachineCorpus is the streaming form of MachineCorpus: it returns
// a sequential document generator with the same draw pattern, for
// sim.Source-backed consumers.
func OpenMachineCorpus(spec *DatasetSpec, rng *randgen.RNG, vocab, avgLen, topics int) func() []int {
	c := spec.Corpus
	return workload.OpenCorpusSkewed(rng, workload.SkewedCorpusConfig{
		Vocab: vocab, AvgLen: avgLen, Topics: topics,
		ZipfS: c.ZipfS, TopicSkew: c.TopicSkew, Background: c.Background,
		LenDist: c.DocLen.Dist, LenSigma: c.DocLen.Sigma,
	})
}

// MachineGMM generates one machine's points from the shared planted
// mixture: like the historical path, the mixture is drawn from the shared
// root RNG so every machine samples the same planted structure, and the
// machine's stream is Split off the root. The caller guarantees spec.GMM
// is non-nil.
func MachineGMM(spec *DatasetSpec, root *randgen.RNG, machine, n, k, d int) []linalg.Vec {
	next := OpenMachineGMM(spec, root, machine, k, d)
	out := make([]linalg.Vec, n)
	for i := range out {
		out[i] = next()
	}
	return out
}

// OpenMachineGMM is the streaming form of MachineGMM: building the
// generator draws the shared planted mixture from the root RNG exactly
// as MachineGMM does, then streams the machine's split substream.
func OpenMachineGMM(spec *DatasetSpec, root *randgen.RNG, machine, k, d int) func() linalg.Vec {
	g := spec.GMM
	mix := workload.NewPlantedMixture(root, workload.SkewedGMMConfig{
		D: d, K: k,
		Separation: g.Separation, CovCondition: g.CovCondition, Imbalance: g.Imbalance,
	})
	return workload.OpenGMMSkewedAt(root.Split(uint64(machine)), mix)
}

// MachineRegression generates one machine's observations from the shared
// planted coefficients with the spec's correlation structure. The caller
// guarantees spec.Regression is non-nil.
func MachineRegression(spec *DatasetSpec, rng *randgen.RNG, beta linalg.Vec, n int) *workload.RegressionData {
	r := spec.Regression
	return workload.GenRegressionCorrelated(rng, beta, n, r.Noise, r.Correlation)
}
