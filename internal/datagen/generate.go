package datagen

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

// Per-section RNG stream salts: each section derives its own root from
// spec.Seed so adding or removing a section never perturbs the others.
const (
	saltCorpus     = 0xC0F9_05DA_7A6E_0001
	saltGMM        = 0xC0F9_05DA_7A6E_0002
	saltRegression = 0xC0F9_05DA_7A6E_0003
	saltGraph      = 0xC0F9_05DA_7A6E_0004
)

// Dataset is one generated corpus with its canonical fingerprint.
type Dataset struct {
	Spec DatasetSpec `json:"spec"`

	Docs       [][]int                  `json:"docs,omitempty"`
	GMM        *workload.GMMData        `json:"gmm,omitempty"`
	Regression *workload.RegressionData `json:"regression,omitempty"`
	Graph      *Graph                   `json:"graph,omitempty"`
	// PartitionCounts is the per-machine share of the primary section's
	// items (corpus documents, else graph vertices, else GMM points, else
	// regression observations) under the partition spec.
	PartitionCounts []int `json:"partition_counts,omitempty"`

	// Fingerprint is the SHA-256 of the canonical encoding of every
	// generated section, in shard order — the dataset identity the unit
	// tests and the datagen-smoke CI job compare across worker counts.
	Fingerprint string `json:"fingerprint"`
}

// Generate materializes the spec with the given number of concurrent
// workers. Work is cut into spec.Shards fixed shards, each generated from
// its own Split-derived RNG stream; workers only decide how many shards
// run at once, so the result — and its fingerprint — is byte-identical at
// any worker count.
func Generate(spec DatasetSpec, workers int) (*Dataset, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	if workers < 1 {
		workers = 1
	}
	d := &Dataset{Spec: spec}

	// Shard plans: every job is (deterministic input RNG) -> (slot in a
	// pre-sized slice), so execution order cannot matter. Shard RNGs are
	// derived serially here — Split reads the parent's current state.
	// Finishers concatenate the shard slots in order after the barrier.
	var jobs, finishers []func()

	if c := spec.Corpus; c != nil {
		counts := shardCounts(c.Docs, spec.Shards)
		root := randgen.New(spec.Seed ^ saltCorpus)
		shardDocs := make([][][]int, len(counts))
		for i, n := range counts {
			i, n, rng := i, n, root.Split(uint64(i))
			jobs = append(jobs, func() {
				shardDocs[i] = workload.GenCorpusSkewed(rng, workload.SkewedCorpusConfig{
					Docs: n, Vocab: c.Vocab, AvgLen: int(math.Round(c.DocLen.Mean)), Topics: c.Topics,
					ZipfS: c.ZipfS, TopicSkew: c.TopicSkew, Background: c.Background,
					LenDist: c.DocLen.Dist, LenSigma: c.DocLen.Sigma,
				})
			})
		}
		finishers = append(finishers, func() {
			for _, s := range shardDocs {
				d.Docs = append(d.Docs, s...)
			}
		})
	}

	if g := spec.GMM; g != nil {
		counts := shardCounts(g.Points, spec.Shards)
		root := randgen.New(spec.Seed ^ saltGMM)
		mix := workload.NewPlantedMixture(root, workload.SkewedGMMConfig{
			D: g.Dim, K: g.Clusters,
			Separation: g.Separation, CovCondition: g.CovCondition, Imbalance: g.Imbalance,
		})
		shardData := make([]*workload.GMMData, len(counts))
		for i, n := range counts {
			i, n, rng := i, n, root.Split(uint64(i))
			jobs = append(jobs, func() {
				shardData[i] = workload.GenGMMSkewedAt(rng, mix, n)
			})
		}
		finishers = append(finishers, func() {
			d.GMM = &workload.GMMData{Mu: mix.Mu}
			for _, s := range shardData {
				d.GMM.Points = append(d.GMM.Points, s.Points...)
				d.GMM.Labels = append(d.GMM.Labels, s.Labels...)
			}
		})
	}

	if r := spec.Regression; r != nil {
		counts := shardCounts(r.Points, spec.Shards)
		root := randgen.New(spec.Seed ^ saltRegression)
		beta := workload.SparseBeta(root, r.Dim, r.Sparsity)
		shardData := make([]*workload.RegressionData, len(counts))
		for i, n := range counts {
			i, n, rng := i, n, root.Split(uint64(i))
			jobs = append(jobs, func() {
				shardData[i] = workload.GenRegressionCorrelated(rng, beta, n, r.Noise, r.Correlation)
			})
		}
		finishers = append(finishers, func() {
			d.Regression = &workload.RegressionData{TrueBeta: beta}
			for _, s := range shardData {
				d.Regression.X = append(d.Regression.X, s.X...)
				d.Regression.Y = append(d.Regression.Y, s.Y...)
			}
		})
	}

	if g := spec.Graph; g != nil {
		counts := shardCounts(g.Vertices, spec.Shards)
		root := randgen.New(spec.Seed ^ saltGraph)
		shardAdj := make([][][]int32, len(counts))
		for i, n := range counts {
			i, n, rng := i, n, root.Split(uint64(i))
			jobs = append(jobs, func() {
				shardAdj[i] = genGraphShard(rng, *g, n)
			})
		}
		finishers = append(finishers, func() {
			d.Graph = &Graph{Vertices: g.Vertices}
			for _, s := range shardAdj {
				d.Graph.Adj = append(d.Graph.Adj, s...)
			}
		})
	}

	runJobs(jobs, workers)
	for _, fin := range finishers {
		fin()
	}
	d.finish()
	return d, nil
}

// finish computes the partition counts and fingerprint once all sections
// are assembled.
func (d *Dataset) finish() {
	if p := d.Spec.Partition; p != nil {
		total := 0
		switch {
		case d.Docs != nil:
			total = len(d.Docs)
		case d.Graph != nil:
			total = d.Graph.Vertices
		case d.GMM != nil:
			total = len(d.GMM.Points)
		case d.Regression != nil:
			total = len(d.Regression.X)
		}
		d.PartitionCounts = PartitionCounts(total, p.Machines, p.Imbalance)
	}
	d.Fingerprint = d.computeFingerprint()
}

// runJobs executes the jobs on `workers` goroutines. Each job writes only
// its own pre-allocated slot, so no synchronization beyond the WaitGroup
// is needed.
func runJobs(jobs []func(), workers int) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			j()
		}
		return
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				j()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// shardCounts cuts total items into `shards` near-equal parts (the first
// total%shards shards get one extra item).
func shardCounts(total, shards int) []int {
	counts := make([]int, shards)
	base, extra := total/shards, total%shards
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	return counts
}

// PartitionCounts apportions total items over machines with a linear
// load ramp whose max/min ratio is `imbalance`, using largest-remainder
// rounding so the counts sum exactly to total. When total >= machines,
// every machine gets at least one item (engines choke on empty
// partitions).
func PartitionCounts(total, machines int, imbalance float64) []int {
	counts := make([]int, machines)
	if machines == 1 || total == 0 {
		if machines == 1 {
			counts[0] = total
		}
		return counts
	}
	weights := make([]float64, machines)
	var sum float64
	for m := range weights {
		weights[m] = 1 + (imbalance-1)*float64(m)/float64(machines-1)
		sum += weights[m]
	}
	fracs := make([]float64, machines)
	assigned := 0
	for m := range counts {
		q := float64(total) * weights[m] / sum
		counts[m] = int(q)
		fracs[m] = q - float64(counts[m])
		assigned += counts[m]
	}
	for assigned < total {
		best := 0
		for m := 1; m < machines; m++ {
			if fracs[m] > fracs[best] {
				best = m
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	if total >= machines {
		for m := range counts {
			if counts[m] == 0 {
				big := 0
				for j := 1; j < machines; j++ {
					if counts[j] > counts[big] {
						big = j
					}
				}
				counts[m], counts[big] = 1, counts[big]-1
			}
		}
	}
	return counts
}

// fpWriter streams the canonical dataset encoding into a hash: section
// labels, then fixed-width little-endian values in generation order.
type fpWriter struct {
	w *bufio.Writer
}

func (f fpWriter) label(s string) {
	f.u64(uint64(len(s)))
	f.w.WriteString(s)
}
func (f fpWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.w.Write(b[:])
}
func (f fpWriter) i(v int)       { f.u64(uint64(int64(v))) }
func (f fpWriter) f64(v float64) { f.u64(math.Float64bits(v)) }
func (f fpWriter) vec(v []float64) {
	f.i(len(v))
	for _, x := range v {
		f.f64(x)
	}
}

// computeFingerprint hashes the canonical encoding of every section.
func (d *Dataset) computeFingerprint() string {
	h := sha256.New()
	f := fpWriter{w: bufio.NewWriterSize(h, 1<<16)}
	writeFingerprint(f, d)
	f.w.Flush()
	return hex.EncodeToString(h.Sum(nil))
}

func writeFingerprint(f fpWriter, d *Dataset) {
	f.label("mlbench-dataset-v1")
	f.label(d.Spec.Name)
	f.u64(d.Spec.Seed)
	if d.Docs != nil {
		f.label("corpus")
		f.i(len(d.Docs))
		for _, doc := range d.Docs {
			f.i(len(doc))
			for _, w := range doc {
				f.i(w)
			}
		}
	}
	if g := d.GMM; g != nil {
		f.label("gmm")
		f.i(len(g.Mu))
		for _, mu := range g.Mu {
			f.vec(mu)
		}
		f.i(len(g.Points))
		for i, x := range g.Points {
			f.vec(x)
			f.i(g.Labels[i])
		}
	}
	if r := d.Regression; r != nil {
		f.label("regression")
		f.vec(r.TrueBeta)
		f.i(len(r.X))
		for i, x := range r.X {
			f.vec(x)
			f.f64(r.Y[i])
		}
	}
	if g := d.Graph; g != nil {
		f.label("graph")
		f.i(g.Vertices)
		f.i(len(g.Adj))
		for _, targets := range g.Adj {
			f.i(len(targets))
			for _, t := range targets {
				f.u64(uint64(t))
			}
		}
	}
	if d.PartitionCounts != nil {
		f.label("partition")
		f.i(len(d.PartitionCounts))
		for _, c := range d.PartitionCounts {
			f.i(c)
		}
	}
}

// TokenCount is the corpus token total (for gen's summary output).
func (d *Dataset) TokenCount() int {
	var n int
	for _, doc := range d.Docs {
		n += len(doc)
	}
	return n
}

// EdgeCount is the graph edge total (for gen's summary output).
func (d *Dataset) EdgeCount() int {
	if d.Graph == nil {
		return 0
	}
	var n int
	for _, t := range d.Graph.Adj {
		n += len(t)
	}
	return n
}

// WriteJSON dumps the full dataset as JSON (the gen -out artifact).
func (d *Dataset) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(d)
}
