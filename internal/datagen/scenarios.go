package datagen

import (
	"fmt"
	"sort"
	"strings"
)

// Scenario is a named, built-in DatasetSpec carrying distributional shape
// only: when a benchmark run references one (RunSpec.Dataset, task
// Config.Dataset), the task keeps its paper dimensions (vocabulary,
// topics, points per machine, ...) and the scenario reshapes how the data
// is distributed. The empty name is the historical paper shape.
type Scenario struct {
	Name        string
	Description string
	Spec        DatasetSpec
}

// scenarios is the built-in registry. The skew-* pair stresses
// distributional shape on balanced partitions; the imbal-* pair keeps the
// paper's distributions and skews only the per-machine load.
var scenarios = []Scenario{
	{
		Name:        "skew-light",
		Description: "mild heavy-tail: Zipf 1.3 words, lognormal lengths, gentle topic/mixture skew",
		Spec: DatasetSpec{
			Name:       "skew-light",
			Corpus:     &CorpusSpec{ZipfS: 1.3, TopicSkew: 0.8, DocLen: DocLenSpec{Dist: "lognormal", Sigma: 0.6}},
			GMM:        &GMMSpec{CovCondition: 4, Imbalance: 0.8},
			Regression: &RegressionSpec{Correlation: 0.5},
			Graph:      &GraphSpec{Exponent: 2.5},
		},
	},
	{
		Name:        "skew-heavy",
		Description: "heavy tail: Zipf 1.7 words, wide lognormal lengths, strong topic/mixture skew",
		Spec: DatasetSpec{
			Name:       "skew-heavy",
			Corpus:     &CorpusSpec{ZipfS: 1.7, TopicSkew: 1.5, DocLen: DocLenSpec{Dist: "lognormal", Sigma: 1.0}},
			GMM:        &GMMSpec{Separation: 4, CovCondition: 16, Imbalance: 1.5},
			Regression: &RegressionSpec{Correlation: 0.9},
			Graph:      &GraphSpec{Exponent: 2.1},
		},
	},
	{
		Name:        "imbal-2x",
		Description: "paper distributions, last machine loaded 2x the first",
		Spec: DatasetSpec{
			Name:      "imbal-2x",
			Partition: &PartitionSpec{Imbalance: 2},
		},
	},
	{
		Name:        "imbal-8x",
		Description: "paper distributions, last machine loaded 8x the first",
		Spec: DatasetSpec{
			Name:      "imbal-8x",
			Partition: &PartitionSpec{Imbalance: 8},
		},
	},
}

// Scenarios lists the built-in scenarios sorted by name.
func Scenarios() []Scenario {
	out := append([]Scenario(nil), scenarios...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames lists the valid non-empty Dataset values.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return names
}

// ScenarioSpec resolves a scenario name to its normalized spec, or nil
// for the empty name (the historical generators) and for unknown names —
// callers that need an error use ParseScenario first.
func ScenarioSpec(name string) *DatasetSpec {
	for i := range scenarios {
		if scenarios[i].Name == name {
			s := scenarios[i].Spec.Normalize()
			return &s
		}
	}
	return nil
}

// ParseScenario validates a Dataset value: the empty string (historical
// shape) and the built-in scenario names are accepted; anything else gets
// an actionable error listing the valid names.
func ParseScenario(name string) error {
	if name == "" || ScenarioSpec(name) != nil {
		return nil
	}
	return fmt.Errorf("unknown dataset scenario %q (valid: %s, or empty for the paper shape)",
		name, strings.Join(ScenarioNames(), ", "))
}
