package datagen

import (
	"math"
	"testing"

	"mlbench/internal/randgen"
	"mlbench/internal/workload"
)

// Goodness-of-fit battery for the new generators, against closed-form
// CDFs, reusing the internal/randgen GoF statistics. Seeds are fixed and
// thresholds sit at the alpha ~ 0.001 critical values, so a failure means
// a generator bug, not sampling noise.

func stdNormCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// TestZipfWordDrawGoF checks the corpus word machinery — the alias table
// over the ZipfWeights rank profile — against the closed-form Zipf pmf
// p_r = r^-s / H_{V,s} with a chi-squared test over every rank.
func TestZipfWordDrawGoF(t *testing.T) {
	const v, s, n = 200, 1.4, 50_000
	weights := workload.ZipfWeights(v, s)
	var h float64
	for _, w := range weights {
		h += w
	}
	table := randgen.NewAlias(weights)
	rng := randgen.New(21)
	obs := make([]float64, v)
	for i := 0; i < n; i++ {
		obs[table.Draw(rng)]++
	}
	exp := make([]float64, v)
	for r := range exp {
		exp[r] = n * weights[r] / h
		if exp[r] < 5 {
			t.Fatalf("rank %d expectation %.2f < 5: resize the test", r, exp[r])
		}
	}
	chi2 := randgen.ChiSquaredStat(obs, exp)
	if crit := randgen.ChiSquaredCritical(v - 1); chi2 > crit {
		t.Errorf("Zipf word draws: chi2 = %.1f > %.1f (df = %d)", chi2, crit, v-1)
	}
}

// TestLognormalDocLenGoF checks SampleDocLen's lognormal law against its
// closed-form CDF Phi((ln x - mu)/sigma) with mu = ln(mean) - sigma^2/2.
// Lengths are truncated to ints; at mean 200 the discretization error is
// two orders of magnitude under the KS critical value.
func TestLognormalDocLenGoF(t *testing.T) {
	const mean, sigma, n = 200.0, 0.8, 4000
	rng := randgen.New(22)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(workload.SampleDocLen(rng, workload.LenLognormal, mean, sigma))
	}
	mu := math.Log(mean) - sigma*sigma/2
	d := randgen.KSStat(xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return stdNormCDF((math.Log(x) - mu) / sigma)
	})
	if crit := randgen.KSCritical(n); d > crit {
		t.Errorf("lognormal doc lengths: KS = %.5f > %.5f", d, crit)
	}
	// The location convention: empirical mean within 10% of the target.
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if m := sum / n; m < 0.9*mean || m > 1.1*mean {
		t.Errorf("lognormal mean = %.1f, want ~%v", m, mean)
	}
}

// TestPoissonDocLenGoF checks the Poisson length law by moments (its CDF
// has no convenient closed form at lambda 120): mean and variance both
// equal lambda.
func TestPoissonDocLenGoF(t *testing.T) {
	const mean, n = 120.0, 8000
	rng := randgen.New(23)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(workload.SampleDocLen(rng, workload.LenPoisson, mean, 0.5))
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	// Std error of the mean is sqrt(120/8000) ~ 0.12; 4 sigma ~ 0.5.
	if math.Abs(m-mean) > 0.5 {
		t.Errorf("Poisson mean = %.2f, want %v +- 0.5", m, mean)
	}
	if v < 0.9*mean || v > 1.1*mean {
		t.Errorf("Poisson variance = %.1f, want ~%v", v, mean)
	}
}

// TestParetoDegreeGoF checks the power-law degree sampler against the
// closed-form Pareto CDF F(x) = 1 - (xm/x)^alpha, on the continuous draws
// before integer truncation.
func TestParetoDegreeGoF(t *testing.T) {
	const xm, alpha, n = 2.0, 1.3, 4000
	rng := randgen.New(24)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = paretoSample(rng, xm, alpha)
		if xs[i] < xm {
			t.Fatalf("Pareto draw %v below the minimum %v", xs[i], xm)
		}
	}
	d := randgen.KSStat(xs, func(x float64) float64 {
		if x <= xm {
			return 0
		}
		return 1 - math.Pow(xm/x, alpha)
	})
	if crit := randgen.KSCritical(n); d > crit {
		t.Errorf("power-law degrees: KS = %.5f > %.5f", d, crit)
	}
}

// TestDegreeSkewShape is the integration-level check: a power-law graph
// has a much heavier degree tail than a regular one with the same spec
// size, and regular mode ignores the exponent machinery entirely.
func TestDegreeSkewShape(t *testing.T) {
	spec := DatasetSpec{
		Name:  "deg",
		Graph: &GraphSpec{Vertices: 2000, AvgDegree: 8, Exponent: 2.1, MinDegree: 1},
	}
	d, err := Generate(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for _, targets := range d.Graph.Adj {
		if len(targets) > maxDeg {
			maxDeg = len(targets)
		}
	}
	if maxDeg < 50 {
		t.Errorf("power-law max degree = %d, want a heavy tail (>= 50)", maxDeg)
	}
	regular := DatasetSpec{Name: "reg", Graph: &GraphSpec{Vertices: 100, AvgDegree: 8}}
	r, err := Generate(regular, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, targets := range r.Graph.Adj {
		if len(targets) != 8 {
			t.Fatalf("regular graph degree = %d, want 8", len(targets))
		}
	}
}

// TestTopicSkewConcentration checks the corpus topic-prior knob end to
// end: under topic_skew the first topic's prior mass follows the Zipf
// profile, so documents concentrate onto it.
func TestTopicSkewConcentration(t *testing.T) {
	const topics = 8
	spec := ScenarioSpec("skew-heavy")
	// Count docs whose plurality words come from the dominant topic by
	// proxy: generate two corpora and compare unique-word concentration.
	// Directly: the topic draw is internal, so measure via doc counts per
	// alias draw using the same weights.
	weights := workload.ZipfWeights(topics, spec.Corpus.TopicSkew)
	var h float64
	for _, w := range weights {
		h += w
	}
	if p0 := weights[0] / h; p0 < 0.4 {
		t.Errorf("skew-heavy first-topic prior = %.2f, want heavy (>= 0.4)", p0)
	}
	uniform := workload.ZipfWeights(topics, 0)
	if uniform[0] != 1 || uniform[topics-1] != 1 {
		t.Errorf("zero skew should be uniform: %v", uniform)
	}
}
