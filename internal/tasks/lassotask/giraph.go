package lassotask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/linalg"
	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Giraph vertex layout: dimensional vertices at [0, P), the model vertex
// at modelVID, data vertices (points or super vertices) above bspDataBase.
const (
	modelVID    bsp.VertexID = 1 << 40
	bspDataBase bsp.VertexID = 1 << 41
)

// bspPointVtx is a per-point data vertex (the plain formulation).
type bspPointVtx struct {
	x linalg.Vec
	y float64
}

// bspBlockVtx is a data super vertex.
type bspBlockVtx struct {
	d *workload.RegressionData
}

// bspDimVtx collects one row of the Gram matrix.
type bspDimVtx struct {
	j   int
	row linalg.Vec
}

// bspModelVtx owns the sampler state and the assembled Gram matrix.
type bspModelVtx struct {
	state *lasso.State
	g     gramPartial
}

// gramRowMsg is one row contribution to the Gram matrix.
type gramRowMsg struct {
	j   int
	row linalg.Vec
}

// gramScaledRowMsg is a per-point row contribution x[j] * x, sharing the
// point's storage (row j of x x^T) — the plain formulation ships one of
// these per (point, dimension) without materializing the outer product.
type gramScaledRowMsg struct {
	j    int
	coef float64
	x    linalg.Vec
}

// miscMsg carries X^T y / response-moment contributions to the model
// vertex.
type miscMsg struct {
	xty    linalg.Vec
	colSum linalg.Vec
	ySum   float64
	n      float64
}

// RunGiraph implements the paper's Section 6.4 Giraph Bayesian Lasso.
// The plain formulation has every data vertex send its x x^T rows to the
// dimensional vertices — a per-vertex message volume that Giraph's
// buffering cannot survive at any tested size ("Giraph was unable to run
// without ... the super vertex construction"). With cfg.SuperVertex the
// Gram rows are pre-combined per block and the code runs in about a
// minute per iteration.
func RunGiraph(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	scale := cl.Scale()

	// No message combiner: the Gram-phase messages are rows of distinct
	// matrix positions that a Giraph combiner cannot merge, so the full
	// per-point volume is buffered — exactly why the plain formulation
	// "was unable to run" in the paper.
	g := bsp.NewGraph(cl)

	rng := randgen.New(cfg.Seed ^ 0x61a7)
	model := &bspModelVtx{state: lasso.Init(cfg.P), g: localGramZero(cfg.P)}
	if cfg.SuperVertex {
		svPerMachine := cl.Config().Cores
		for mc := 0; mc < machines; mc++ {
			d := genMachineData(cl, cfg, mc)
			for s := 0; s < svPerMachine; s++ {
				lo, hi := s*len(d.X)/svPerMachine, (s+1)*len(d.X)/svPerMachine
				if lo == hi {
					continue
				}
				sub := &workload.RegressionData{X: d.X[lo:hi], Y: d.Y[lo:hi]}
				id := bspDataBase + bsp.VertexID(mc*svPerMachine+s)
				bytes := int64(float64((hi-lo)*(8*cfg.P+8)) * scale)
				g.AddVertex(id, &bspBlockVtx{d: sub}, bytes, false, mc)
			}
		}
	} else {
		next := int64(bspDataBase)
		for mc := 0; mc < machines; mc++ {
			d := genMachineData(cl, cfg, mc)
			for i := range d.X {
				g.AddVertex(bsp.VertexID(next), &bspPointVtx{x: d.X[i], y: d.Y[i]}, int64(8*cfg.P)+24, true, mc)
				next++
			}
		}
	}
	for j := 0; j < cfg.P; j++ {
		g.AddVertex(bsp.VertexID(j), &bspDimVtx{j: j}, int64(8*cfg.P)+16, false, j%machines)
	}
	g.AddVertex(modelVID, model, int64(8*cfg.P*cfg.P), false, 0)
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lasso giraph: load: %w", err)
	}

	rowBytes := int64(8*cfg.P) + 16
	h := lasso.Hyper{Lambda: cfg.Lambda, P: cfg.P}

	// Initialization superstep 1: data vertices emit Gram rows to the
	// dimensional vertices and moment contributions to the model vertex.
	err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
		m := ctx.Meter()
		emit := func(part gramPartial) {
			for j := 0; j < cfg.P; j++ {
				ctx.Send(bsp.VertexID(j), &gramRowMsg{j: j, row: part.xtx.Row(j).Clone()}, rowBytes)
			}
			ctx.Send(modelVID, &miscMsg{xty: part.xty, colSum: part.colSum, ySum: part.ySum, n: part.n}, rowBytes*2)
		}
		switch d := v.Data.(type) {
		case *bspPointVtx:
			m.ChargeLinalg(cfg.P, float64(2*cfg.P), cfg.P)
			for j := 0; j < cfg.P; j++ {
				ctx.Send(bsp.VertexID(j), &gramScaledRowMsg{j: j, coef: d.x[j], x: d.x}, rowBytes)
			}
			single := &workload.RegressionData{X: []linalg.Vec{d.x}, Y: linalg.Vec{d.y}}
			g := localGram(single, cfg.P)
			ctx.Send(modelVID, &miscMsg{xty: g.xty, colSum: g.colSum, ySum: g.ySum, n: g.n}, rowBytes*2)
		case *bspBlockVtx:
			m.ChargeBulk(float64(len(d.d.X)) * gramFlops(cfg.P))
			emit(localGram(d.d, cfg.P))
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("lasso giraph: gram emit: %w", err)
	}
	// Superstep 2: dimensional vertices assemble their rows and forward
	// them to the model vertex.
	err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
		switch d := v.Data.(type) {
		case *bspDimVtx:
			d.row = linalg.NewVec(cfg.P)
			for _, msg := range msgs {
				switch rm := msg.Data.(type) {
				case *gramRowMsg:
					rm.row.AddTo(d.row)
				case *gramScaledRowMsg:
					for i, xv := range rm.x {
						d.row[i] += rm.coef * xv
					}
				}
			}
			ctx.Send(modelVID, &gramRowMsg{j: d.j, row: d.row}, rowBytes)
		case *bspModelVtx:
			for _, msg := range msgs {
				if mm, ok := msg.Data.(*miscMsg); ok {
					mm.xty.AddTo(d.g.xty)
					mm.colSum.AddTo(d.g.colSum)
					d.g.ySum += mm.ySum
					d.g.n += mm.n
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("lasso giraph: gram rows: %w", err)
	}
	// Superstep 3: the model vertex assembles the Gram matrix.
	err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
		if d, ok := v.Data.(*bspModelVtx); ok {
			ctx.Meter().ChargeBulkAbs(float64(cfg.P * cfg.P))
			for _, msg := range msgs {
				if rm, ok := msg.Data.(*gramRowMsg); ok {
					copy(d.g.xtx.Row(rm.j), rm.row)
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("lasso giraph: gram assemble: %w", err)
	}
	xtx, xty, yBar, n := model.g.finish(scale)
	res.InitSec = sw.Lap()

	// Gibbs iterations: three supersteps each — the model vertex draws
	// tau and beta and shares beta; data vertices compute residuals into
	// an aggregator; the model vertex draws sigma^2.
	var sseAgg float64
	for iter := 0; iter < cfg.Iterations; iter++ {
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if d, ok := v.Data.(*bspModelVtx); ok {
				m := ctx.Meter()
				m.ChargeLinalgAbs(cfg.P, 8, 1)
				m.ChargeBulkSerialAbs(betaDrawFlops(cfg.P))
				lasso.SampleInvTau2(rng, h, d.state)
				if err := lasso.SampleBeta(rng, d.state, xtx, xty); err != nil {
					return err
				}
				ctx.SetShared("beta", d.state.Beta, int64(8*cfg.P))
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lasso giraph iter %d: draws: %w", iter, err)
		}
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			m := ctx.Meter()
			beta, _ := ctx.Shared("beta").(linalg.Vec)
			switch d := v.Data.(type) {
			case *bspPointVtx:
				m.ChargeLinalg(1, float64(2*cfg.P), cfg.P)
				r := (d.y - yBar) - d.x.Dot(beta)
				ctx.Aggregate("sse", r*r)
			case *bspBlockVtx:
				m.ChargeBulk(float64(len(d.d.X)) * 2 * float64(cfg.P))
				ctx.Aggregate("sse", sseOf(d.d, beta, yBar)*scale)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lasso giraph iter %d: residuals: %w", iter, err)
		}
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if d, ok := v.Data.(*bspModelVtx); ok {
				sseAgg = ctx.Agg("sse")
				lasso.SampleSigma2(rng, d.state, n, sseAgg)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lasso giraph iter %d: sigma: %w", iter, err)
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(cfg, model.state.Beta))
	}
	recordQuality(cfg, model.state.Beta, res)
	return res, nil
}
