package lassotask

import (
	"fmt"

	"mlbench/internal/dataflow"
	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// obs is one observation in the Spark data RDD.
type obs struct {
	id int
	x  []float64
	y  float64
}

// RunSpark implements the paper's Section 6.1 Spark Bayesian Lasso: a
// cached data RDD; centering, Gram matrix (XX) and XY jobs at
// initialization (the flatMap + reduceByKey of keyed partial products —
// the hour-plus Python initialization of Figure 2); and one distributed
// residual job plus driver-side conjugate draws per iteration.
func RunSpark(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	profile := sim.ProfilePython
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()

	parts := machines * cl.Config().Cores
	machineData := make([]*workload.RegressionData, machines)
	for mc := 0; mc < machines; mc++ {
		machineData[mc] = genMachineData(cl, cfg, mc)
	}
	obsBytes := int64(8*cfg.P) + 144
	data := dataflow.Generate(ctx, parts, func(obs) int64 { return obsBytes },
		func(p int, r *randgen.RNG) []obs {
			mc := p % machines
			d := machineData[mc]
			slot := p / machines
			cores := cl.Config().Cores
			lo, hi := slot*len(d.X)/cores, (slot+1)*len(d.X)/cores
			out := make([]obs, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, obs{id: i, x: d.X[i], y: d.Y[i]})
			}
			return out
		}).SetName("data").Cache()

	// Initialization: y average (two jobs), then the Gram matrix and XY
	// via flatMap of keyed row-products + reduceByKey. The per-point
	// Python cost is P keyed emissions plus P vector operations; the real
	// arithmetic is done densely per partition.
	type rowPair = dataflow.Pair[int, []float64]
	rowSizer := func(rowPair) int64 { return int64(8*cfg.P) + 32 }
	gramRDD := dataflow.MapPartitions(data, rowSizer, func(m *sim.Meter, part []obs) []rowPair {
		// Charge the paper implementation's per-point costs: P keyed
		// emissions (computePairSum) and P vector ops.
		m.ChargeTuplesAbs(float64(len(part)) * float64(cfg.P) * m.Scale())
		m.ChargeLinalg(len(part)*cfg.P, float64(2*cfg.P), cfg.P)
		d := &workload.RegressionData{}
		for _, o := range part {
			d.X = append(d.X, o.x)
			d.Y = append(d.Y, o.y)
		}
		g := localGram(d, cfg.P)
		out := make([]rowPair, 0, cfg.P+3)
		for j := 0; j < cfg.P; j++ {
			out = append(out, rowPair{K: j, V: g.xtx.Row(j)})
		}
		out = append(out, rowPair{K: -1, V: g.xty})
		out = append(out, rowPair{K: -2, V: g.colSum})
		out = append(out, rowPair{K: -3, V: []float64{g.ySum, g.n}})
		return out
	})
	combined := dataflow.ReduceByKey(gramRDD, func(m *sim.Meter, a, b []float64) []float64 {
		m.ChargeLinalgAbs(1, float64(2*len(a)), cfg.P)
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}).AsModel().SetName("gram")
	rows, err := dataflow.CollectPairs(combined)
	if err != nil {
		return res, fmt.Errorf("lasso spark: gram: %w", err)
	}
	g := localGramZero(cfg.P)
	for _, r := range rows {
		switch {
		case r.K >= 0:
			copy(g.xtx.Row(r.K), r.V)
		case r.K == -1:
			copy(g.xty, r.V)
		case r.K == -2:
			copy(g.colSum, r.V)
		default:
			g.ySum, g.n = r.V[0], r.V[1]
		}
	}
	xtx, xty, yBar, n := g.finish(cl.Scale())
	res.InitSec = sw.Lap()

	// Gibbs iterations: one distributed residual job, driver-side draws.
	rng := randgen.New(cfg.Seed ^ 0x57a2)
	h := lasso.Hyper{Lambda: cfg.Lambda, P: cfg.P}
	state := lasso.Init(cfg.P)
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Draw the auxiliaries and the new beta on the driver (the paper:
		// "most of the code of the main loop ... is run locally").
		err = cl.RunDriver("lasso-tau-beta", func(m *sim.Meter) error {
			m.SetProfile(profile)
			m.ChargeLinalgAbs(cfg.P, 8, 1)        // inverse-Gaussian draws
			m.ChargeBulkAbs(betaDrawFlops(cfg.P)) // NumPy Cholesky + solve
			lasso.SampleInvTau2(rng, h, state)
			return lasso.SampleBeta(rng, state, xtx, xty)
		})
		if err != nil {
			return res, fmt.Errorf("lasso spark iter %d: draws: %w", iter, err)
		}
		// One MapReduce job computes sum (y - beta.x)^2 with the new beta.
		if err := ctx.Broadcast(int64(8*cfg.P), "beta"); err != nil {
			return res, err
		}
		sse, err := dataflow.Aggregate(data,
			func() float64 { return 0 },
			func(m *sim.Meter, acc float64, o obs) float64 {
				m.ChargeLinalg(1, float64(2*cfg.P), cfg.P)
				r := (o.y - yBar) - dot(o.x, state.Beta)
				return acc + r*r
			},
			func(m *sim.Meter, a, b float64) float64 { return a + b },
		)
		if err != nil {
			return res, fmt.Errorf("lasso spark iter %d: %w", iter, err)
		}
		sse *= cl.Scale()
		err = cl.RunDriver("lasso-sigma", func(m *sim.Meter) error {
			m.SetProfile(profile)
			lasso.SampleSigma2(rng, state, n, sse)
			return nil
		})
		if err != nil {
			return res, err
		}
		ctx.ReleaseBroadcast(int64(8 * cfg.P))
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(cfg, state.Beta))
	}
	recordQuality(cfg, state.Beta, res)
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// localGramZero returns an empty accumulator.
func localGramZero(p int) gramPartial {
	d := &workload.RegressionData{}
	return localGram(d, p)
}
