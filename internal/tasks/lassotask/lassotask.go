// Package lassotask implements the paper's Section 6 benchmark task —
// the Bayesian Lasso Gibbs sampler — on all five platform engines. The
// interesting structure is in the initialization: the Gram matrix X^T X
// must be computed over the whole data set, which takes hours on SimSQL
// (an aggregate-GROUP BY with one group per matrix entry) and on Spark
// (Python-side emission of keyed partial products), versus under a
// minute on GraphLab and Giraph (local C++/Java matrix math plus one
// tree aggregation).
package lassotask

import (
	"mlbench/internal/datagen"
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Config parameterizes one Bayesian Lasso run at paper scale.
type Config struct {
	P                int     // regressors (paper: 1000)
	PointsPerMachine int     // paper: 100,000
	Iterations       int     //
	Lambda           float64 // Lasso regularization
	SuperVertex      bool    // Giraph: plain (fails) vs super-vertex
	Seed             uint64
	// Dataset names a datagen scenario reshaping the design matrix
	// (AR(1) regressor correlation, partition imbalance); empty is the
	// historical paper-shape generator, byte-identical to before the knob
	// existed. Validated upstream (RunSpec.Validate /
	// datagen.ParseScenario).
	Dataset string
}

func (c Config) withDefaults() Config {
	if c.P == 0 {
		c.P = 1000
	}
	if c.PointsPerMachine == 0 {
		c.PointsPerMachine = 100_000
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// trueBeta returns the planted coefficient vector shared by all machines.
func trueBeta(cfg Config) linalg.Vec {
	rng := randgen.New(cfg.Seed ^ 0xbe7a)
	return workload.SparseBeta(rng, cfg.P, cfg.P/20+1)
}

// genMachineData deterministically generates one machine's observations.
// A Dataset scenario reshapes the design (and this machine's share of
// it); the empty scenario is the historical generator, byte-identical.
func genMachineData(cl *sim.Cluster, cfg Config, machine int) *workload.RegressionData {
	ds := datagen.ScenarioSpec(cfg.Dataset)
	n := datagen.MachineShare(ds, machine, cl.NumMachines(), task.RealCount(cl, cfg.PointsPerMachine))
	rng := randgen.New(cfg.Seed ^ cl.Config().Seed).Split(uint64(machine))
	if ds != nil && ds.Regression != nil {
		return datagen.MachineRegression(ds, rng, trueBeta(cfg), n)
	}
	return workload.GenRegressionWithBeta(rng, trueBeta(cfg), n, 1)
}

// gramPartial is one machine's dense contribution to the initialization
// statistics.
type gramPartial struct {
	xtx    *linalg.Mat
	xty    linalg.Vec
	colSum linalg.Vec
	ySum   float64
	n      float64
}

// localGram computes a machine's contributions to X^T X, X^T y, the
// column sums of X and the response moments (real math; callers charge
// the virtual cost).
func localGram(d *workload.RegressionData, p int) gramPartial {
	g := gramPartial{xtx: linalg.NewMat(p, p), xty: linalg.NewVec(p), colSum: linalg.NewVec(p)}
	for i, x := range d.X {
		g.xtx.AddOuter(1, x, x)
		for j := range x {
			g.xty[j] += x[j] * d.Y[i]
			g.colSum[j] += x[j]
		}
		g.ySum += d.Y[i]
	}
	g.n = float64(len(d.X))
	return g
}

func (g *gramPartial) merge(o gramPartial) {
	g.xtx.AddInPlace(o.xtx)
	o.xty.AddTo(g.xty)
	o.colSum.AddTo(g.colSum)
	g.ySum += o.ySum
	g.n += o.n
}

// finish scales the partials to paper scale and centers X^T y:
// X^T (y - ybar) = X^T y - ybar * colsums(X).
func (g *gramPartial) finish(scale float64) (xtx *linalg.Mat, xty linalg.Vec, yBar float64, n float64) {
	yBar = g.ySum / g.n
	xty = g.xty.Clone()
	for j := range xty {
		xty[j] -= yBar * g.colSum[j]
	}
	g.xtx.ScaleInPlace(scale)
	xty.ScaleInPlace(scale)
	return g.xtx, xty, yBar, g.n * scale
}

// sseOf computes the residual sum of squares against the centered
// response.
func sseOf(d *workload.RegressionData, beta linalg.Vec, yBar float64) float64 {
	var s float64
	for i, x := range d.X {
		r := (d.Y[i] - yBar) - x.Dot(beta)
		s += r * r
	}
	return s
}

// gramFlops is the per-point flop count of the Gram accumulation.
func gramFlops(p int) float64 { return float64(p) * float64(p) }

// betaDrawFlops is the flop count of the posterior beta draw (Cholesky,
// inverse and sampling at dimension P).
func betaDrawFlops(p int) float64 { return 4 * float64(p) * float64(p) * float64(p) }

// chainPoint is the per-iteration quality statistic shared by all four
// Lasso implementations: the recovery error of the current coefficient
// draw against the planted truth. With matched data seeds every platform
// regresses the same data, so the chains are directly comparable
// (diagnostic, uncharged).
func chainPoint(cfg Config, beta linalg.Vec) float64 {
	diff := beta.Sub(trueBeta(cfg))
	return diff.Norm2() / float64(len(beta))
}

// recordQuality stores the recovery error of the learned coefficients
// against the planted truth (diagnostic, uncharged).
func recordQuality(cfg Config, beta linalg.Vec, res *task.Result) {
	res.SetMetric("beta_err", chainPoint(cfg, beta))
}
