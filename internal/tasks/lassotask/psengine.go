package lassotask

import (
	"fmt"

	"mlbench/internal/linalg"
	"mlbench/internal/models/lasso"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// RunPS implements the Bayesian Lasso on the parameter-server engine.
// The Gram initialization is a single reduce: workers push their dense
// partials and the barrier's machine-order merge accumulates every point
// into one Gram accumulator — the same per-point, machine-major
// floating-point order as the Giraph dimensional-vertex assembly, so the
// initialization statistics are bit-identical. Each Gibbs cycle then
// draws tau/beta on the driver (Setup), computes residual sums against a
// possibly stale beta on the workers, folds the scalar SSE in machine
// order, and draws sigma^2 (Apply). At staleness 0 the chain equals the
// Giraph chain exactly.
func RunPS(cl *sim.Cluster, cfg Config, psCfg psengine.Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	scale := cl.Scale()
	eng := psengine.New(cl, psCfg)

	machineData := make([]*workload.RegressionData, machines)
	for mc := 0; mc < machines; mc++ {
		machineData[mc] = genMachineData(cl, cfg, mc)
	}
	err := eng.Load("lasso-ps-load", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeTuples(len(machineData[w].X))
		return m.AllocData(int64(len(machineData[w].X))*int64(8*cfg.P+8), "ps lasso data")
	})
	if err != nil {
		return res, fmt.Errorf("lasso ps: load: %w", err)
	}

	// Gram initialization: one reduce. The merge visits machines in order
	// and accumulates their points one by one into a single partial.
	g := localGramZero(cfg.P)
	gramBytes := float64(8 * cfg.P * (cfg.P + 2))
	err = eng.Reduce("lasso-ps-gram",
		func(w int, m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeBulk(float64(len(machineData[w].X)) * gramFlops(cfg.P))
			m.SendModel(0, gramBytes)
			return nil
		},
		func(w int, m *sim.Meter) error {
			d := machineData[w]
			for i, x := range d.X {
				g.xtx.AddOuter(1, x, x)
				for j := range x {
					g.xty[j] += x[j] * d.Y[i]
					g.colSum[j] += x[j]
				}
				g.ySum += d.Y[i]
				g.n++
			}
			return nil
		})
	if err != nil {
		return res, fmt.Errorf("lasso ps: gram: %w", err)
	}
	var xtx *linalg.Mat
	var xty linalg.Vec
	var yBar, n float64
	err = cl.RunDriver("lasso-ps-gram-finish", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeBulkAbs(float64(cfg.P * cfg.P))
		if err := m.AllocModel(int64(8*cfg.P*cfg.P), "ps lasso gram"); err != nil {
			return err
		}
		xtx, xty, yBar, n = g.finish(scale)
		return nil
	})
	if err != nil {
		return res, err
	}
	if err := eng.AllocModel(int64(8 * cfg.P)); err != nil {
		return res, fmt.Errorf("lasso ps: model alloc: %w", err)
	}
	res.InitSec = sw.Lap()

	rng := randgen.New(cfg.Seed ^ 0x61a7)
	state := lasso.Init(cfg.P)
	h := lasso.Hyper{Lambda: cfg.Lambda, P: cfg.P}

	// betaHist[d] is the coefficient vector after d driver draws (index 0
	// is the zero initialization, never read: the lag clamp guarantees
	// every worker sees at least the first draw). A worker at version v
	// reads betaHist[v+1] — the draw made in cycle v's Setup.
	betaHist := []linalg.Vec{state.Beta.Clone()}

	sseLocal := make([]float64, machines)
	for iter := 0; iter < cfg.Iterations; iter++ {
		var sse float64
		err := eng.RunCycle(psengine.Cycle{
			Name:      "lasso-ps-cycle",
			PullBytes: float64(8 * cfg.P),
			PushBytes: 8,
			Setup: func(m *sim.Meter) error {
				m.ChargeLinalgAbs(cfg.P, 8, 1)
				m.ChargeBulkSerialAbs(betaDrawFlops(cfg.P))
				lasso.SampleInvTau2(rng, h, state)
				if err := lasso.SampleBeta(rng, state, xtx, xty); err != nil {
					return err
				}
				betaHist = append(betaHist, state.Beta.Clone())
				return nil
			},
			Compute: func(w, version int, m *sim.Meter) error {
				beta := betaHist[version+1]
				d := machineData[w]
				var acc float64
				for i, x := range d.X {
					m.ChargeLinalg(1, float64(2*cfg.P), cfg.P)
					r := (d.Y[i] - yBar) - x.Dot(beta)
					acc += r * r * scale
				}
				sseLocal[w] = acc
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				sse += sseLocal[w]
				return nil
			},
			Apply: func(m *sim.Meter) error {
				lasso.SampleSigma2(rng, state, n, sse)
				res.Record(chainPoint(cfg, state.Beta))
				return nil
			},
		})
		if err != nil {
			return res, fmt.Errorf("lasso ps iter %d: %w", iter, err)
		}
		for d := 0; d < len(betaHist)-(eng.Staleness()+1); d++ {
			betaHist[d] = nil
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(cfg, state.Beta, res)
	return res, nil
}
