package lassotask

import (
	"fmt"

	"math"

	"mlbench/internal/gas"
	"mlbench/internal/linalg"
	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Vertex layout: model vertices (one per regressor) at [0, P), the center
// vertex at centerID, data super vertices above svBase.
const (
	centerID gas.VertexID = 1 << 40
	svBase   gas.VertexID = 1 << 41
)

type lassoCenter struct {
	state *lasso.State
	sse   float64
}

type lassoModelVtx struct {
	j   int
	val float64      // current 1/tau_j^2
	rng *randgen.RNG // per-vertex stream: applies run on the vertex's machine
}

type lassoSV struct {
	d   *workload.RegressionData
	sse float64 // residual partial computed in the last apply
}

// lassoEdges: the center sits in the middle; model vertices and data
// super vertices connect only to it.
type lassoEdges struct {
	spokes []gas.VertexID // model vertices + data SVs
}

func (e *lassoEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	if v == centerID {
		return e.spokes
	}
	return []gas.VertexID{centerID}
}

// lassoGather accumulates what the center collects (the auxiliary vector
// and the residual sum) — or, for spokes gathering from the center, a
// snapshot of the posterior state. Snapshotting in the gather phase is
// what keeps parallel applies race-free and deterministic: the phase
// barrier guarantees every spoke sees the previous round's (beta,
// sigma^2), never a half-written concurrent update.
type lassoGather struct {
	isModel bool
	invTau2 linalg.Vec // sparse by index; nil for data contributions
	sse     float64
	beta    linalg.Vec // spoke view: beta snapshot from the center
	sigma2  float64    // spoke view: sigma^2 snapshot
}

type lassoProg struct {
	cfg   Config
	h     lasso.Hyper
	rng   *randgen.RNG
	yBar  float64
	n     float64
	xtx   *linalg.Mat
	xty   linalg.Vec
	scale float64
}

func (p *lassoProg) ViewBytes(v *gas.Vertex) int64 {
	switch v.Data.(type) {
	case *lassoCenter:
		return int64(8 * (p.cfg.P + 2))
	case *lassoModelVtx:
		return 16
	default:
		return 16
	}
}

func (p *lassoProg) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	switch nd := nbr.Data.(type) {
	case *lassoCenter:
		// Model vertices and data SVs gather the (beta, sigma^2) view.
		return lassoGather{isModel: true, beta: nd.state.Beta.Clone(), sigma2: nd.state.Sigma2}
	case *lassoModelVtx:
		return lassoGather{invTau2: oneHot(p.cfg.P, nd.j, nd.val)}
	case *lassoSV:
		m.ChargeLinalgAbs(1, 2, 1)
		return lassoGather{sse: nd.sse}
	}
	return lassoGather{}
}

func oneHot(p, j int, v float64) linalg.Vec {
	out := linalg.NewVec(p)
	out[j] = v
	return out
}

func (p *lassoProg) Sum(m *sim.Meter, a, b any) any {
	av, bv := a.(lassoGather), b.(lassoGather)
	if av.isModel {
		return av
	}
	if bv.invTau2 != nil {
		if av.invTau2 == nil {
			av.invTau2 = linalg.NewVec(p.cfg.P)
		}
		bv.invTau2.AddTo(av.invTau2)
	}
	av.sse += bv.sse
	return av
}

func (p *lassoProg) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	cfg := p.cfg
	switch d := v.Data.(type) {
	case *lassoCenter:
		if acc == nil {
			return
		}
		gv := acc.(lassoGather)
		if gv.invTau2 != nil {
			copy(d.state.InvTau2, gv.invTau2)
		}
		d.sse = gv.sse * p.scale
		m.ChargeBulkSerialAbs(betaDrawFlops(cfg.P))
		if err := lasso.SampleBeta(p.rng, d.state, p.xtx, p.xty); err == nil {
			lasso.SampleSigma2(p.rng, d.state, p.n, d.sse)
		}
	case *lassoModelVtx:
		// Resample 1/tau_j^2 from the gathered (beta_j, sigma^2).
		gv, ok := acc.(lassoGather)
		if !ok || gv.beta == nil {
			return
		}
		m.ChargeLinalgAbs(1, 8, 1)
		b2 := gv.beta[d.j] * gv.beta[d.j]
		if b2 < 1e-300 {
			b2 = 1e-300
		}
		l2 := p.h.Lambda * p.h.Lambda
		mu := math.Sqrt(l2 * gv.sigma2 / b2)
		if mu > 1e12 {
			mu = 1e12
		}
		d.val = d.rng.InvGaussian(mu, l2)
	case *lassoSV:
		gv, ok := acc.(lassoGather)
		if !ok || gv.beta == nil {
			return
		}
		m.ChargeBulk(float64(len(d.d.X)) * 2 * float64(cfg.P))
		d.sse = sseOf(d.d, gv.beta, p.yBar)
	}
}

// RunGraphLab implements the paper's Section 6.3 GraphLab Bayesian Lasso
// (super-vertex based, as the paper's was). Initialization uses
// map_reduce_vertices to compute the Gram matrix and center the response
// — local C++ matrix math plus a tree reduce, which is why GraphLab
// initializes in about half a minute while SimSQL and Spark take hours.
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines", g.EffectiveMachines(), cl.NumMachines())
	}
	rng := randgen.New(cfg.Seed ^ 0x91a7)
	prog := &lassoProg{cfg: cfg, h: lasso.Hyper{Lambda: cfg.Lambda, P: cfg.P}, rng: rng, scale: cl.Scale()}

	center := &lassoCenter{state: lasso.Init(cfg.P)}
	var spokes []gas.VertexID
	svPerMachine := cl.Config().Cores
	for mc := 0; mc < g.EffectiveMachines(); mc++ {
		d := genMachineData(cl, cfg, mc)
		for s := 0; s < svPerMachine; s++ {
			lo, hi := s*len(d.X)/svPerMachine, (s+1)*len(d.X)/svPerMachine
			if lo == hi {
				continue
			}
			sub := &workload.RegressionData{X: d.X[lo:hi], Y: d.Y[lo:hi]}
			id := svBase + gas.VertexID(mc*svPerMachine+s)
			bytes := int64(float64((hi-lo)*(8*cfg.P+8)) * cl.Scale())
			g.AddVertex(id, &lassoSV{d: sub}, bytes, false, mc)
			spokes = append(spokes, id)
		}
	}
	for j := 0; j < cfg.P; j++ {
		id := gas.VertexID(j)
		// Model vertices live on different machines and resample tau in
		// parallel applies, so each gets its own split RNG stream.
		g.AddVertex(id, &lassoModelVtx{j: j, rng: rng.Split(uint64(j) + 1)}, 16, false, j%g.EffectiveMachines())
		spokes = append(spokes, id)
	}
	g.AddVertex(centerID, center, int64(8*(cfg.P+2)), false, 0)
	g.SetEdges(&lassoEdges{spokes: spokes})
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lasso graphlab: load: %w", err)
	}

	// Initialization: two map_reduce_vertices passes — Gram matrix /
	// centered response, then X^T y (real dense math; one partial matrix
	// per machine travels up the tree).
	acc := localGramZero(cfg.P)
	if _, err := g.MapReduceVertices(int64(8*cfg.P*cfg.P), func(m *sim.Meter, v *gas.Vertex) any {
		if sv, ok := v.Data.(*lassoSV); ok {
			m.ChargeBulk(float64(len(sv.d.X)) * gramFlops(cfg.P))
			part := localGram(sv.d, cfg.P)
			return &part
		}
		return nil
	}, func(m *sim.Meter, a, b any) any {
		ap, aok := a.(*gramPartial)
		bp, bok := b.(*gramPartial)
		switch {
		case aok && bok:
			m.ChargeBulkAbs(float64(cfg.P * cfg.P))
			ap.merge(*bp)
			return ap
		case aok:
			return ap
		default:
			return bp
		}
	}); err != nil {
		return res, err
	}
	// Accumulate for the task (the reduce above returned the merged
	// partial; recompute deterministically for the driver-held state).
	for mc := 0; mc < g.EffectiveMachines(); mc++ {
		part := localGram(genMachineData(cl, cfg, mc), cfg.P)
		acc.merge(part)
	}
	// Second pass: X^T y (already inside the partials; charge the pass).
	if _, err := g.MapReduceVertices(int64(8*cfg.P), func(m *sim.Meter, v *gas.Vertex) any {
		if sv, ok := v.Data.(*lassoSV); ok {
			m.ChargeBulk(float64(len(sv.d.X)) * 2 * float64(cfg.P))
		}
		return nil
	}, func(m *sim.Meter, a, b any) any { return nil }); err != nil {
		return res, err
	}
	prog.xtx, prog.xty, prog.yBar, prog.n = acc.finish(cl.Scale())
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := g.RunRound(prog, nil); err != nil {
			return res, fmt.Errorf("lasso graphlab iter %d: %w", iter, err)
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(cfg, center.state.Beta))
	}
	recordQuality(cfg, center.state.Beta, res)
	return res, nil
}
