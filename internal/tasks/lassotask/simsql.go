package lassotask

import (
	"fmt"
	"math"

	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// invGaussVG draws 1/tau_j^2 per regressor group, as the paper's
// CREATE TABLE tau[i] does.
type invGaussVG struct {
	h     lasso.Hyper
	state *lasso.State
}

func (v *invGaussVG) Name() string { return "InvGaussian" }
func (v *invGaussVG) OutSchema() relational.Schema {
	return relational.Schema{{Name: "rigid", Kind: relational.KindInt}, {Name: "tauValue", Kind: relational.KindFloat}}
}
func (v *invGaussVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	out := make([]relational.Tuple, 0, len(rows))
	for _, t := range rows {
		j := t.Int(0)
		m.ChargeOps(1, 8, 1)
		b2 := v.state.Beta[j] * v.state.Beta[j]
		if b2 < 1e-300 {
			b2 = 1e-300
		}
		l2 := v.h.Lambda * v.h.Lambda
		mu := math.Sqrt(l2 * v.state.Sigma2 / b2)
		if mu > 1e12 {
			mu = 1e12
		}
		out = append(out, relational.T(float64(j), m.RNG().InvGaussian(mu, l2)))
	}
	return out
}

// RunSimSQL implements the paper's Section 6.2 SimSQL Bayesian Lasso:
// three materialized views at initialization — the Gram matrix (an
// aggregate-GROUP BY with one group per matrix entry, the famously slow
// part), the centered response, and X^T y — then per-iteration random
// tables tau[i], beta[i] and sigma[i]. Every x_i is stored as a thousand
// (point, dim, value) tuples, so the per-iteration residual computation
// is also tuple-at-a-time.
func RunSimSQL(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	cost := cl.Config().Cost

	// The data relation in per-dimension form: (data_id, dim_id, val),
	// plus the response (data_id, y). Dense task-local copies back the
	// Gram computation's real arithmetic.
	machineData := make([]*workload.RegressionData, machines)
	dimRows := relational.NewTable("data", relational.Schema{
		{Name: "data_id", Kind: relational.KindInt},
		{Name: "dim_id", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
	}, machines)
	dimRows.Scaled = true
	respT := relational.NewTable("resp", relational.Schema{
		{Name: "data_id", Kind: relational.KindInt},
		{Name: "y", Kind: relational.KindFloat},
	}, machines)
	respT.Scaled = true
	nextID := 0
	for mc := 0; mc < machines; mc++ {
		d := genMachineData(cl, cfg, mc)
		machineData[mc] = d
		for i := range d.X {
			for j, v := range d.X[i] {
				dimRows.Parts[mc] = append(dimRows.Parts[mc], relational.T(float64(nextID), float64(j), v))
			}
			respT.Parts[mc] = append(respT.Parts[mc], relational.T(float64(nextID), d.Y[i]))
			nextID++
		}
	}

	// Materialized view 1: the Gram matrix. One MR job whose mapper
	// expands every point into P^2 partial products folded by the
	// combiner (one group per Gram entry). The real arithmetic runs
	// densely; the virtual cost is charged for the full paper-scale
	// expansion.
	g := localGramZero(cfg.P)
	gramParts := make([]gramPartial, machines)
	cl.Advance(cost.MRJobLaunch)
	err := cl.RunPhaseFM("gram-groupby", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		d := machineData[machine]
		// Input scan of the per-dim relation plus the combiner loop over
		// N x P^2 generated rows.
		m.ChargeTuples(len(d.X) * cfg.P)
		m.ChargeSec(float64(len(d.X)) * float64(cfg.P) * float64(cfg.P) * cl.Scale() * cost.SQLCombineSec)
		gramParts[machine] = localGram(d, cfg.P)
		// One combined partial per Gram entry ships to its reducer.
		m.SendModel((machine+1)%machines, float64(cfg.P*cfg.P*24))
		return nil
	}, func(machine int, m *sim.Meter) error {
		// Fold into the shared accumulator at the barrier, in machine
		// order, so the float summation order is worker-count-independent.
		g.merge(gramParts[machine])
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("lasso simsql: gram: %w", err)
	}
	// Views 2 and 3: centered response and X^T y (two cheaper jobs over
	// the per-dim relation).
	_, err = eng.Run("xty", relational.AsModelP(relational.GroupAggP(
		relational.HashJoinP(relational.ScanT(dimRows), relational.ScanT(respT), []int{0}, []int{0}),
		[]int{1},
		[]relational.AggSpec{{Kind: relational.AggSum, Name: "xty", Expr: func(t relational.Tuple) float64 {
			return t.Float(2) * t.Float(4)
		}}})))
	if err != nil {
		return res, fmt.Errorf("lasso simsql: xty: %w", err)
	}
	xtx, xty, yBar, n := g.finish(cl.Scale())
	res.InitSec = sw.Lap()

	// Regressor-id table parameterizing the tau VG.
	ridT := relational.NewTable("rids", relational.Ints("rigid"), machines)
	for j := 0; j < cfg.P; j++ {
		ridT.Parts[j%machines] = append(ridT.Parts[j%machines], relational.T(float64(j)))
	}

	rng := randgen.New(cfg.Seed ^ 0x575b)
	h := lasso.Hyper{Lambda: cfg.Lambda, P: cfg.P}
	state := lasso.Init(cfg.P)
	for iter := 0; iter < cfg.Iterations; iter++ {
		// tau[i]: one VG invocation per regressor.
		tauT, err := eng.Run("tau", relational.VGApplyP(&invGaussVG{h: h, state: state}, 0, relational.ScanT(ridT), true))
		if err != nil {
			return res, fmt.Errorf("lasso simsql iter %d: tau: %w", iter, err)
		}
		for _, t := range tauT.Rows() {
			state.InvTau2[t.Int(0)] = t.Float(1)
		}
		// beta[i]: the A^{-1} X^T y computation runs as set-oriented
		// aggregates over the million-tuple Gram relation (two jobs),
		// then the multivariate normal draw in a VG.
		cl.Advance(2 * cost.MRJobLaunch)
		err = cl.RunDriver("lasso-simsql-beta", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileSQLEngine)
			// A = XtX + D_tau^{-1} materialized tuple-at-a-time.
			m.ChargeTuplesAbs(float64(cfg.P * cfg.P))
			m.SetProfile(sim.ProfileCPP)
			m.ChargeBulkAbs(betaDrawFlops(cfg.P))
			return lasso.SampleBeta(rng, state, xtx, xty)
		})
		if err != nil {
			return res, fmt.Errorf("lasso simsql iter %d: beta: %w", iter, err)
		}
		// Residuals with the new beta: join the per-dim relation with
		// beta, aggregate per point, join with the response, aggregate
		// the squares — the set-oriented arithmetic the paper blames for
		// SimSQL's per-iteration times.
		betaT := relational.NewTable("beta", relational.Schema{
			{Name: "dim_id", Kind: relational.KindInt}, {Name: "b", Kind: relational.KindFloat},
		}, machines)
		for j := 0; j < cfg.P; j++ {
			betaT.Parts[j%machines] = append(betaT.Parts[j%machines], relational.T(float64(j), state.Beta[j]))
		}
		preds := relational.GroupAggP(
			relational.HashJoinP(relational.ScanT(dimRows), relational.ScanT(betaT), []int{1}, []int{0}),
			[]int{0},
			[]relational.AggSpec{{Kind: relational.AggSum, Name: "yhat", Expr: func(t relational.Tuple) float64 {
				return t.Float(2) * t.Float(4)
			}}})
		sseT, err := eng.Run("sse", relational.AsModelP(relational.GroupAggP(
			relational.ProjectP(
				relational.HashJoinP(preds, relational.ScanT(respT), []int{0}, []int{0}),
				relational.Floats("one", "sq"),
				func(t relational.Tuple) relational.Tuple {
					r := (t.Float(3) - yBar) - t.Float(1)
					return relational.T(0, r*r)
				}),
			[]int{0},
			[]relational.AggSpec{{Kind: relational.AggSum, Col: 1, Name: "sse"}})))
		if err != nil {
			return res, fmt.Errorf("lasso simsql iter %d: sse: %w", iter, err)
		}
		sse := 0.0
		if rows := sseT.Rows(); len(rows) > 0 {
			sse = rows[0].Float(1) * cl.Scale()
		}
		// sigma[i].
		err = cl.RunDriver("lasso-simsql-sigma", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			lasso.SampleSigma2(rng, state, n, sse)
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lasso simsql iter %d: sigma: %w", iter, err)
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(cfg, state.Beta))
	}
	recordQuality(cfg, state.Beta, res)
	return res, nil
}
