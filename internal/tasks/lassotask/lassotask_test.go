package lassotask

import (
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 100
	return sim.New(cfg)
}

// smallConfig keeps P modest so the P^3 draws stay fast in tests.
func smallConfig() Config {
	return Config{P: 30, PointsPerMachine: 50_000, Iterations: 8, Lambda: 1, Seed: 7}
}

func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations = %d, want %d", len(res.IterSecs), iters)
	}
	if res.InitSec <= 0 || res.AvgIterSec() <= 0 {
		t.Errorf("timings not positive: %+v", res)
	}
	// Per-coefficient recovery error should be small: planted magnitudes
	// are >= 2, so 0.2 per coefficient means solid recovery.
	if e := res.Metrics["beta_err"]; e > 0.2 {
		t.Errorf("beta recovery error = %v, model did not learn", e)
	}
}

func TestRunSparkLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig())
	checkResult(t, res, err, 8)
}

func TestRunSimSQLLearns(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig())
	checkResult(t, res, err, 8)
}

func TestRunGraphLabLearns(t *testing.T) {
	res, err := RunGraphLab(smallCluster(2), smallConfig())
	checkResult(t, res, err, 8)
}

func TestRunGiraphSuperVertexLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	res, err := RunGiraph(smallCluster(2), cfg)
	checkResult(t, res, err, 8)
}

func TestGiraphPlainFails(t *testing.T) {
	// Figure 2: plain (per-point) Giraph fails at every cluster size.
	c := sim.DefaultConfig(5)
	c.Scale = 10000
	cfg := Config{P: 1000, PointsPerMachine: 100_000, Iterations: 1, Seed: 7}
	if _, err := RunGiraph(sim.New(c), cfg); !sim.IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestGiraphSuperVertexRunsAtScale(t *testing.T) {
	// Figure 2: the super-vertex Giraph Lasso runs even at 100 machines.
	c := sim.DefaultConfig(100)
	c.Scale = 100000
	cfg := Config{P: 1000, PointsPerMachine: 100_000, Iterations: 1, Seed: 7, SuperVertex: true}
	if _, err := RunGiraph(sim.New(c), cfg); err != nil {
		t.Fatalf("super-vertex run failed: %v", err)
	}
}

func TestInitTimesOrdering(t *testing.T) {
	// Figure 2's initialization story: SimSQL and Spark take orders of
	// magnitude longer than GraphLab and Giraph (Gram matrix via
	// tuple/Python machinery vs local matrix math).
	cfg := Config{P: 200, PointsPerMachine: 100_000, Iterations: 1, Seed: 7}
	spark, err := RunSpark(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	simsql, err := RunSimSQL(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunGraphLab(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svCfg := cfg
	svCfg.SuperVertex = true
	gir, err := RunGiraph(smallCluster(2), svCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(gl.InitSec < spark.InitSec && gl.InitSec < simsql.InitSec) {
		t.Errorf("GraphLab init (%v) should be far below Spark (%v) and SimSQL (%v)",
			gl.InitSec, spark.InitSec, simsql.InitSec)
	}
	if !(gir.InitSec < spark.InitSec && gir.InitSec < simsql.InitSec) {
		t.Errorf("Giraph init (%v) should be far below Spark (%v) and SimSQL (%v)",
			gir.InitSec, spark.InitSec, simsql.InitSec)
	}
	// Per-iteration: SimSQL is the slowest platform by a wide margin.
	if !(simsql.AvgIterSec() > spark.AvgIterSec() && simsql.AvgIterSec() > gl.AvgIterSec() && simsql.AvgIterSec() > gir.AvgIterSec()) {
		t.Errorf("SimSQL per-iteration (%v) should exceed Spark (%v), GraphLab (%v) and Giraph (%v)",
			simsql.AvgIterSec(), spark.AvgIterSec(), gl.AvgIterSec(), gir.AvgIterSec())
	}
}
