package mrftask

import (
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 100
	return sim.New(cfg)
}

func smallConfig() Config {
	return Config{RowsPerMachine: 3200, Cols: 64, Labels: 4, Beta: 1.5, NoiseP: 0.3, Iterations: 8, Seed: 3}
}

func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations = %d, want %d", len(res.IterSecs), iters)
	}
	acc, base := res.Metrics["accuracy"], res.Metrics["obs_accuracy"]
	if acc < base+0.05 || acc < 0.9 {
		t.Errorf("labeling accuracy %v (baseline %v): sampler did not denoise", acc, base)
	}
}

func TestGraphLabPerPixelRuns(t *testing.T) {
	// The paper's conjecture: a sparse graph-natural workload runs fine
	// per-vertex on GraphLab — no super vertices needed.
	res, err := RunGraphLab(smallCluster(2), smallConfig())
	checkResult(t, res, err, 8)
}

func TestGiraphPerPixelRuns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig())
	checkResult(t, res, err, 8)
}

func TestGraphLabPerPixelRunsAtPaperScale(t *testing.T) {
	// Per-pixel GraphLab survives even a 68GB-budget configuration with
	// 10M pixels per machine — in stark contrast to the per-point GMM.
	c := sim.DefaultConfig(5)
	c.Scale = 100_000
	cfg := Config{RowsPerMachine: 10_000, Cols: 1000, Labels: 5, Iterations: 1, Seed: 3}
	if _, err := RunGraphLab(sim.New(c), cfg); err != nil {
		t.Fatalf("per-pixel GraphLab should run on the sparse graph: %v", err)
	}
}
