// Package mrftask implements the EXTENSION workload the paper's closing
// discussion conjectures about: labeling the nodes of a Markov random
// field with known parameters, a problem that "maps naturally to a
// graph". The dependency graph is a sparse 4-neighbor grid, so — unlike
// the five benchmark models — per-vertex graph processing carries tiny
// views and needs no model broadcast, and GraphLab's per-point
// formulation runs comfortably instead of failing.
package mrftask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/gas"
	"mlbench/internal/models/mrf"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Config parameterizes one MRF labeling run at paper scale. The grid is
// split into row bands, one per machine.
type Config struct {
	RowsPerMachine int // paper-scale grid rows per machine
	Cols           int
	Labels         int
	Beta           float64
	NoiseP         float64
	Iterations     int // full sweeps (two checkerboard half-sweeps each)
	Seed           uint64
}

func (c Config) withDefaults() Config {
	if c.RowsPerMachine == 0 {
		c.RowsPerMachine = 10_000
	}
	if c.Cols == 0 {
		c.Cols = 1000
	}
	if c.Labels == 0 {
		c.Labels = 5
	}
	if c.Beta == 0 {
		c.Beta = 1.5
	}
	if c.NoiseP == 0 {
		c.NoiseP = 0.3
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.Seed == 0 {
		c.Seed = 61
	}
	return c
}

// genGrid builds the whole (scale-reduced) grid: rows-per-machine is
// divided by the cluster scale, and every machine gets a contiguous band.
func genGrid(cl *sim.Cluster, cfg Config) *mrf.Grid {
	realRows := task.RealCount(cl, cfg.RowsPerMachine) * cl.NumMachines()
	rng := randgen.New(cfg.Seed ^ cl.Config().Seed)
	return mrf.Generate(rng, mrf.Config{
		Rows: realRows, Cols: cfg.Cols, Labels: cfg.Labels, Beta: cfg.Beta, NoiseP: cfg.NoiseP,
	})
}

// machineOf maps a grid row to its machine band.
func machineOf(row, totalRows, machines int) int {
	m := row * machines / totalRows
	if m >= machines {
		m = machines - 1
	}
	return m
}

// recordQuality stores labeling accuracy against the baseline.
func recordQuality(g *mrf.Grid, res *task.Result) {
	res.SetMetric("accuracy", g.Accuracy())
	res.SetMetric("obs_accuracy", g.ObsAccuracy())
}

// pixelBytes is the simulated per-pixel vertex footprint.
const pixelBytes = 24

// --- GraphLab ---

// glPixel is one pixel vertex.
type glPixel struct {
	grid   *mrf.Grid
	idx    int
	parity int
}

// glGridEdges enumerates the 4-neighborhood implicitly.
type glGridEdges struct{ grid *mrf.Grid }

func (e *glGridEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	i := int(v)
	r, c := i/e.grid.Cfg.Cols, i%e.grid.Cfg.Cols
	ns := e.grid.Neighbors(r, c, nil)
	out := make([]gas.VertexID, len(ns))
	for j, n := range ns {
		out[j] = gas.VertexID(n)
	}
	return out
}

// glMRFProg gathers neighbor labels and resamples parity-matching pixels.
type glMRFProg struct {
	cfg    Config
	grid   *mrf.Grid
	parity int
}

func (p *glMRFProg) ViewBytes(v *gas.Vertex) int64 { return 8 }
func (p *glMRFProg) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	px := nbr.Data.(*glPixel)
	return []int{p.grid.Labels[px.idx]}
}
func (p *glMRFProg) Sum(m *sim.Meter, a, b any) any {
	return append(a.([]int), b.([]int)...)
}
func (p *glMRFProg) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	px := v.Data.(*glPixel)
	if px.parity != p.parity || acc == nil {
		return
	}
	m.ChargeLinalg(1, mrf.LabelFlops(p.cfg.Labels), 1)
	p.grid.Labels[px.idx] = p.grid.SampleLabel(m.RNG(), px.idx, acc.([]int))
}

// RunGraphLab labels the MRF with a per-pixel GraphLab program. The
// sparse neighborhood keeps every gather at a few bytes, so the
// formulation that fails on all five benchmark models runs here —
// the paper's conjecture, made concrete.
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	grid := genGrid(cl, cfg)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines", g.EffectiveMachines(), cl.NumMachines())
	}
	totalRows := grid.Cfg.Rows
	for r := 0; r < totalRows; r++ {
		mc := machineOf(r, totalRows, g.EffectiveMachines())
		for c := 0; c < grid.Cfg.Cols; c++ {
			i := grid.Idx(r, c)
			g.AddVertex(gas.VertexID(i), &glPixel{grid: grid, idx: i, parity: (r + c) % 2},
				pixelBytes, true, mc)
		}
	}
	g.SetEdges(&glGridEdges{grid: grid})
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("mrf graphlab: load: %w", err)
	}
	res.InitSec = sw.Lap()

	prog := &glMRFProg{cfg: cfg, grid: grid}
	for iter := 0; iter < cfg.Iterations; iter++ {
		for parity := 0; parity < 2; parity++ {
			prog.parity = parity
			if err := g.RunRound(prog, nil); err != nil {
				return res, fmt.Errorf("mrf graphlab iter %d: %w", iter, err)
			}
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(grid, res)
	return res, nil
}

// --- Giraph ---

// bspPixel is one pixel vertex.
type bspPixel struct {
	idx    int
	parity int
}

// RunGiraph labels the MRF with a per-pixel Giraph program: each
// superstep, pixels send their labels to their 4 neighbors and the
// parity-matching half resamples.
func RunGiraph(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	grid := genGrid(cl, cfg)
	machines := cl.NumMachines()

	g := bsp.NewGraph(cl)
	totalRows := grid.Cfg.Rows
	for r := 0; r < totalRows; r++ {
		mc := machineOf(r, totalRows, machines)
		for c := 0; c < grid.Cfg.Cols; c++ {
			i := grid.Idx(r, c)
			g.AddVertex(bsp.VertexID(i), &bspPixel{idx: i, parity: (r + c) % 2}, pixelBytes, true, mc)
		}
	}
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("mrf giraph: load: %w", err)
	}
	res.InitSec = sw.Lap()

	send := func(ctx *bsp.Context, px *bspPixel) {
		r, c := px.idx/grid.Cfg.Cols, px.idx%grid.Cfg.Cols
		for _, n := range grid.Neighbors(r, c, nil) {
			ctx.Send(bsp.VertexID(n), grid.Labels[px.idx], 8)
		}
	}
	// Superstep 0: everyone announces its label.
	if err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
		send(ctx, v.Data.(*bspPixel))
		return nil
	}); err != nil {
		return res, fmt.Errorf("mrf giraph: init: %w", err)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		for parity := 0; parity < 2; parity++ {
			p := parity
			err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
				px := v.Data.(*bspPixel)
				if px.parity == p && len(msgs) > 0 {
					m := ctx.Meter()
					m.ChargeLinalg(1, mrf.LabelFlops(cfg.Labels), 1)
					nls := make([]int, 0, 4)
					for _, msg := range msgs {
						nls = append(nls, msg.Data.(int))
					}
					grid.Labels[px.idx] = grid.SampleLabel(m.RNG(), px.idx, nls)
				}
				send(ctx, px)
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("mrf giraph iter %d: %w", iter, err)
			}
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(grid, res)
	return res, nil
}
