package imputetask

import (
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 1000
	return sim.New(cfg)
}

func smallConfig() Config {
	// D = 6 so that with ~50% censoring a typical point still observes
	// three coordinates — enough to identify its cluster.
	return Config{K: 3, D: 6, PointsPerMachine: 400_000, Iterations: 12, Seed: 77, SVPerMachine: 8}
}

func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations = %d, want %d", len(res.IterSecs), iters)
	}
	if res.InitSec <= 0 || res.AvgIterSec() <= 0 {
		t.Errorf("timings not positive")
	}
	rmse, ok := res.Metrics["impute_rmse"]
	base := res.Metrics["baseline_rmse"]
	if !ok {
		t.Fatal("no impute_rmse metric")
	}
	// With separated unit-covariance clusters, cluster-conditional
	// imputation must clearly beat mean imputation.
	if rmse >= base*0.6 {
		t.Errorf("impute rmse %v not clearly below baseline %v", rmse, base)
	}
}

func TestRunSparkImputes(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig())
	checkResult(t, res, err, 12)
}

func TestRunSimSQLImputes(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig())
	checkResult(t, res, err, 12)
}

func TestRunGraphLabImputes(t *testing.T) {
	res, err := RunGraphLab(smallCluster(2), smallConfig())
	checkResult(t, res, err, 12)
}

func TestRunGiraphImputes(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig())
	checkResult(t, res, err, 12)
}

func TestGiraphFailsAtHundredMachines(t *testing.T) {
	// Figure 5: Giraph runs at 5 and 20 machines but fails at 100.
	run := func(machines int) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 100_000
		cfg := Config{K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: 1, Seed: 77}
		_, err := RunGiraph(sim.New(c), cfg)
		return err
	}
	if err := run(5); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(100); !sim.IsOOM(err) {
		t.Errorf("100 machines should OOM, got %v", err)
	}
}

func TestGraphLabRunsAtScale(t *testing.T) {
	// Figure 5: GraphLab's super-vertex imputation runs even on the
	// largest cluster (clamped to 96 machines).
	c := sim.DefaultConfig(100)
	c.Scale = 200_000
	cfg := Config{K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: 1, Seed: 77, SVPerMachine: 80}
	res, err := RunGraphLab(sim.New(c), cfg)
	if err != nil {
		t.Fatalf("GraphLab at 100 machines should run: %v", err)
	}
	if len(res.Notes) == 0 {
		t.Error("expected the 96-machine boot-clamp note")
	}
}

func TestSparkSlowerThanItsGMM(t *testing.T) {
	// Figure 5 vs Figure 1(a): the cache-defeating data rewrite makes
	// Spark's imputation notably slower per iteration than other
	// platforms' — here we check Spark is the slowest of the four on
	// identical data, the qualitative inversion the paper highlights.
	cfg := Config{K: 5, D: 5, PointsPerMachine: 1_000_000, Iterations: 2, Seed: 77, SVPerMachine: 8}
	spark, err := RunSpark(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunGraphLab(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gir, err := RunGiraph(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(spark.AvgIterSec() > gl.AvgIterSec() && spark.AvgIterSec() > gir.AvgIterSec()) {
		t.Errorf("Spark (%v) should be slower than GraphLab (%v) and Giraph (%v)",
			spark.AvgIterSec(), gl.AvgIterSec(), gir.AvgIterSec())
	}
}
