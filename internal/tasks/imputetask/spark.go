package imputetask

import (
	"fmt"

	"mlbench/internal/dataflow"
	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// stat mirrors the GMM task's per-cluster map output.
type stat struct {
	n   float64
	sum linalg.Vec
	sq  *linalg.Mat
}

// RunSpark implements the Figure 5 Spark imputation. Unlike the GMM, the
// data RDD cannot stay cached across iterations — the imputation step
// rewrites the censored coordinates — so every iteration materializes
// (and caches) a fresh data RDD while the previous one is still
// resident, and the statistics job reads the new copy. That lost
// cache() advantage is the paper's explanation for Spark's very
// significant running-time increase over its GMM.
func RunSpark(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	profile := sim.ProfilePython
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()

	machinePts := make([][]*point, machines)
	for mc := 0; mc < machines; mc++ {
		machinePts[mc] = genMachinePoints(cl, cfg, mc)
	}
	ptBytes := int64(8*2*cfg.D) + 144 // values + mask + boxing
	sizer := func(*point) int64 { return ptBytes }

	parts := machines * cl.Config().Cores
	data := dataflow.Generate(ctx, parts, sizer, func(p int, r *randgen.RNG) []*point {
		mc := p % machines
		all := machinePts[mc]
		slot, cores := p/machines, cl.Config().Cores
		lo, hi := slot*len(all)/cores, (slot+1)*len(all)/cores
		return all[lo:hi]
	}).SetName("data").Cache()

	// Hyperparameters over the observed values (one aggregation job).
	type moments struct{ pts []*point }
	hAgg, err := dataflow.Aggregate(data,
		func() moments { return moments{} },
		func(m *sim.Meter, acc moments, p *point) moments {
			m.ChargeLinalg(1, float64(2*cfg.D), cfg.D)
			acc.pts = append(acc.pts, p)
			return acc
		},
		func(m *sim.Meter, a, b moments) moments {
			a.pts = append(a.pts, b.pts...)
			return a
		})
	if err != nil {
		return res, fmt.Errorf("impute spark: hyper: %w", err)
	}
	h := hyperFrom(hAgg.pts, cfg)

	rng := randgen.New(cfg.Seed ^ 0x17a1)
	var params *gmm.Params
	err = cl.RunDriver("impute-init", func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		params, e = gmm.Init(rng, h)
		return e
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	sBytes := statBytes(cfg.D) + 32
	statSizer := func(dataflow.Pair[int, stat]) int64 { return sBytes }
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Broadcast(params.Bytes(), "impute model"); err != nil {
			return res, err
		}
		// Job 1: the imputation pass rewrites the data — a fresh cached
		// RDD, with the old one resident until it materializes.
		next := dataflow.Map(data, sizer, func(m *sim.Meter, p *point) *point {
			m.ChargeLinalg(cfg.K+2, pointWorkFlops(cfg.K, cfg.D)/float64(cfg.K+2), cfg.D)
			_ = imputePoint(m.RNG(), params, p)
			return p
		}).SetName("data").Cache()
		if _, err := dataflow.Count(next); err != nil {
			return res, fmt.Errorf("impute spark iter %d: impute: %w", iter, err)
		}
		data.Unpersist()
		data = next
		// Job 2: statistics over the imputed data.
		mapped := dataflow.Map(data, statSizer, func(m *sim.Meter, p *point) dataflow.Pair[int, stat] {
			m.ChargeLinalg(1, float64(cfg.D*cfg.D), cfg.D)
			sq := linalg.NewMat(cfg.D, cfg.D)
			sq.AddOuter(1, p.x, p.x)
			return dataflow.Pair[int, stat]{K: p.c, V: stat{n: 1, sum: p.x.Clone(), sq: sq}}
		})
		agg := dataflow.ReduceByKey(mapped, func(m *sim.Meter, a, b stat) stat {
			m.ChargeLinalg(1, float64(cfg.D*cfg.D+cfg.D), cfg.D)
			a.n += b.n
			b.sum.AddTo(a.sum)
			a.sq.AddInPlace(b.sq)
			return a
		}).AsModel()
		pairs, err := dataflow.CollectPairs(agg)
		if err != nil {
			return res, fmt.Errorf("impute spark iter %d: stats: %w", iter, err)
		}
		cl.Advance(2 * cl.Config().Cost.SparkJobLaunch)
		err = cl.RunDriver("impute-update", func(m *sim.Meter) error {
			m.SetProfile(profile)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			stats := gmm.NewStats(cfg.K, cfg.D)
			for _, p := range pairs {
				stats.N[p.K] += p.V.n
				p.V.sum.AddTo(stats.Sum[p.K])
				stats.SumSq[p.K].AddInPlace(p.V.sq)
			}
			scaleStats(stats, cl.Scale())
			return gmm.UpdateParams(rng, h, params, stats)
		})
		if err != nil {
			return res, err
		}
		ctx.ReleaseBroadcast(params.Bytes())
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	recordQuality(machinePts[0], res)
	return res, nil
}
