package imputetask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/gas"
	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Vertex id layout shared by both graph engines: cluster vertices at
// [0, K), the mixture vertex at impMixID, data at impDataBase.
const (
	impMixID    = int64(1) << 40
	impDataBase = int64(1) << 41
)

// --- GraphLab (super-vertex, as Figure 5's GraphLab row) ---

// impSVVtx is a super-vertex block of points with pre-aggregated stats.
type impSVVtx struct {
	pts   []*point
	stats *gmm.Stats
}

type impClusVtx struct{ k int }
type impMixVtx struct{}

type impEdges struct {
	dataIDs   []gas.VertexID
	modelSide []gas.VertexID
}

func (e *impEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	if int64(v) >= impDataBase {
		return e.modelSide
	}
	return e.dataIDs
}

type impState struct {
	cfg    Config
	h      gmm.Hyper
	params *gmm.Params
	stats  *gmm.Stats
	scale  float64
}

type impGather struct {
	isModel bool
	stats   *gmm.Stats
	owned   bool
}

type impProg struct{ st *impState }

func (p *impProg) ViewBytes(v *gas.Vertex) int64 {
	switch v.Data.(type) {
	case *impSVVtx:
		return int64(p.st.cfg.K) * statBytes(p.st.cfg.D)
	case *impClusVtx:
		return modelMsgBytes(p.st.cfg.D)
	default:
		return int64(8 * p.st.cfg.K)
	}
}

func (p *impProg) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	if _, ok := v.Data.(*impSVVtx); ok {
		return impGather{isModel: true}
	}
	if sv, ok := nbr.Data.(*impSVVtx); ok {
		m.ChargeLinalgAbs(1, float64(p.st.cfg.K*p.st.cfg.D), p.st.cfg.D)
		return impGather{stats: sv.stats}
	}
	return impGather{isModel: true}
}

func (p *impProg) Sum(m *sim.Meter, a, b any) any {
	av, bv := a.(impGather), b.(impGather)
	if av.isModel {
		return av
	}
	m.ChargeLinalgAbs(1, float64(p.st.cfg.K*p.st.cfg.D*p.st.cfg.D), p.st.cfg.D)
	if !av.owned {
		merged := gmm.NewStats(p.st.cfg.K, p.st.cfg.D)
		if av.stats != nil {
			merged.Merge(av.stats)
		}
		av.stats, av.owned = merged, true
	}
	if bv.stats != nil {
		av.stats.Merge(bv.stats)
	}
	return av
}

func (p *impProg) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	cfg := p.st.cfg
	switch d := v.Data.(type) {
	case *impSVVtx:
		m.ChargeLinalg((cfg.K+2)*len(d.pts), pointWorkFlops(cfg.K, cfg.D)/float64(cfg.K+2), cfg.D)
		d.stats = gmm.NewStats(cfg.K, cfg.D)
		for _, pt := range d.pts {
			_ = imputePoint(m.RNG(), p.st.params, pt)
			d.stats.Add(pt.c, pt.x, 1)
		}
	case *impClusVtx:
		if acc == nil {
			return
		}
		gv := acc.(impGather)
		if gv.isModel || gv.stats == nil {
			return
		}
		if d.k == 0 {
			p.st.stats = gv.stats
		}
	}
}

// RunGraphLab implements the Figure 5 GraphLab imputation (super-vertex,
// like its GMM). The per-cluster statistic views are small, so unlike
// the HMM and LDA this code runs even on the biggest cluster —
// GraphLab's best row in the study.
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines", g.EffectiveMachines(), cl.NumMachines())
	}
	rng := randgen.New(cfg.Seed ^ 0x17a3)
	st := &impState{cfg: cfg, scale: cl.Scale()}

	var dataIDs []gas.VertexID
	var allPts []*point
	var machine0 []*point
	for mc := 0; mc < g.EffectiveMachines(); mc++ {
		pts := genMachinePoints(cl, cfg, mc)
		allPts = append(allPts, pts...)
		if mc == 0 {
			machine0 = pts
		}
		nsv := cfg.SVPerMachine
		for s := 0; s < nsv; s++ {
			lo, hi := s*len(pts)/nsv, (s+1)*len(pts)/nsv
			sv := &impSVVtx{pts: pts[lo:hi]}
			sv.stats = gmm.NewStats(cfg.K, cfg.D)
			for _, pt := range sv.pts {
				sv.stats.Add(pt.c, pt.x, 1)
			}
			id := gas.VertexID(impDataBase + int64(mc*cfg.SVPerMachine+s))
			bytes := int64(float64((hi-lo)*2*8*cfg.D) * cl.Scale())
			g.AddVertex(id, sv, bytes, false, mc)
			dataIDs = append(dataIDs, id)
		}
	}
	modelSide := make([]gas.VertexID, 0, cfg.K+1)
	for k := 0; k < cfg.K; k++ {
		g.AddVertex(gas.VertexID(k), &impClusVtx{k: k}, modelMsgBytes(cfg.D), false, k%g.EffectiveMachines())
		modelSide = append(modelSide, gas.VertexID(k))
	}
	g.AddVertex(gas.VertexID(impMixID), &impMixVtx{}, int64(8*cfg.K), false, 0)
	modelSide = append(modelSide, gas.VertexID(impMixID))
	g.SetEdges(&impEdges{dataIDs: dataIDs, modelSide: modelSide})
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("impute graphlab: load: %w", err)
	}

	st.h = hyperFrom(allPts, cfg)
	if err := cl.RunDriver("impute-gl-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		st.params, e = gmm.Init(rng, st.h)
		return e
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	prog := &impProg{st: st}
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.stats = nil
		if err := g.RunRound(prog, nil); err != nil {
			return res, fmt.Errorf("impute graphlab iter %d: %w", iter, err)
		}
		if st.stats == nil {
			return res, fmt.Errorf("impute graphlab iter %d: no statistics", iter)
		}
		stats := st.stats
		scaleStats(stats, cl.Scale())
		if err := cl.RunDriver("impute-gl-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, st.h, st.params, stats)
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(machine0, res)
	return res, nil
}

// --- Giraph (per-point, as Figure 5's Giraph row) ---

// impPtVtx is a per-point Giraph vertex.
type impPtVtx struct{ p *point }

type impBspClusVtx struct{ k int }
type impBspMixVtx struct{}

// impStatMsg carries a (n, sum, sq) contribution to one cluster.
type impStatMsg struct {
	n   float64
	sum linalg.Vec
	sq  *linalg.Mat
}

// RunGiraph implements the Figure 5 Giraph imputation: the per-point GMM
// structure of Section 5.4 with the extra imputation step. Like its GMM,
// it runs at 5 and 20 machines but the per-vertex model delivery's
// in-flight traffic kills it at 100.
func RunGiraph(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()

	g := bsp.NewGraph(cl)
	g.SetCombiner(func(a, b bsp.Msg) bsp.Msg {
		am, aok := a.Data.(*impStatMsg)
		bm, bok := b.Data.(*impStatMsg)
		if aok && bok {
			am.n += bm.n
			bm.sum.AddTo(am.sum)
			am.sq.AddInPlace(bm.sq)
			return bsp.Msg{Data: am, Bytes: a.Bytes}
		}
		return bsp.Msg{Data: []bsp.Msg{a, b}, Bytes: a.Bytes + b.Bytes}
	})

	rng := randgen.New(cfg.Seed ^ 0x17a4)
	var dataIDs []bsp.VertexID
	var allPts []*point
	var machine0 []*point
	next := impDataBase
	for mc := 0; mc < machines; mc++ {
		pts := genMachinePoints(cl, cfg, mc)
		allPts = append(allPts, pts...)
		if mc == 0 {
			machine0 = pts
		}
		for _, pt := range pts {
			g.AddVertex(bsp.VertexID(next), &impPtVtx{p: pt}, int64(2*8*cfg.D)+48, true, mc)
			dataIDs = append(dataIDs, bsp.VertexID(next))
			next++
		}
	}
	for k := 0; k < cfg.K; k++ {
		g.AddVertex(bsp.VertexID(k), &impBspClusVtx{k: k}, modelMsgBytes(cfg.D), false, k%machines)
	}
	g.AddVertex(bsp.VertexID(impMixID), &impBspMixVtx{}, int64(8*cfg.K), false, 0)
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("impute giraph: load: %w", err)
	}

	h := hyperFrom(allPts, cfg)
	var params *gmm.Params
	if err := cl.RunDriver("impute-giraph-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileJava)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		params, e = gmm.Init(rng, h)
		return e
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	mBytes := modelMsgBytes(cfg.D)
	sBytes := statBytes(cfg.D)
	gathered := gmm.NewStats(cfg.K, cfg.D)
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered = gmm.NewStats(cfg.K, cfg.D)
		// Superstep A: per-vertex model delivery from the cluster
		// vertices to every data vertex (the failure vector at scale).
		err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if cv, ok := v.Data.(*impBspClusVtx); ok {
				for _, dst := range dataIDs {
					ctx.Send(dst, cv.k, mBytes)
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("impute giraph iter %d: model: %w", iter, err)
		}
		// Superstep B: impute, resample membership, send statistics.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			m := ctx.Meter()
			if d, ok := v.Data.(*impPtVtx); ok {
				m.ChargeLinalg(cfg.K+2, pointWorkFlops(cfg.K, cfg.D)/float64(cfg.K+2), cfg.D)
				_ = imputePoint(m.RNG(), params, d.p)
				sq := linalg.NewMat(cfg.D, cfg.D)
				sq.AddOuter(1, d.p.x, d.p.x)
				ctx.Send(bsp.VertexID(d.p.c), &impStatMsg{n: 1, sum: d.p.x.Clone(), sq: sq}, sBytes)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("impute giraph iter %d: impute: %w", iter, err)
		}
		// Superstep C: cluster vertices merge the combined statistics.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if cv, ok := v.Data.(*impBspClusVtx); ok {
				for _, msg := range msgs {
					if sm, ok := msg.Data.(*impStatMsg); ok {
						gathered.N[cv.k] += sm.n
						sm.sum.AddTo(gathered.Sum[cv.k])
						gathered.SumSq[cv.k].AddInPlace(sm.sq)
					}
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("impute giraph iter %d: gather: %w", iter, err)
		}
		scaleStats(gathered, cl.Scale())
		if err := cl.RunDriver("impute-giraph-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileJava)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, h, params, gathered)
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(machine0, res)
	return res, nil
}
