package imputetask

import (
	"fmt"

	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// imputeVG redraws one point's censored coordinates and its membership,
// emitting the updated per-dimension rows.
type imputeVG struct {
	cfg    Config
	params *gmm.Params
	points []*point // indexed by data_id
}

func (v *imputeVG) Name() string { return "gaussian_impute" }
func (v *imputeVG) OutSchema() relational.Schema {
	return relational.Schema{
		{Name: "data_id", Kind: relational.KindInt},
		{Name: "dim_id", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
		{Name: "clus_id", Kind: relational.KindInt},
	}
}
func (v *imputeVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	id := rows[0].Int(0)
	p := v.points[id]
	m.ChargeOps(v.cfg.K+2, pointWorkFlops(v.cfg.K, v.cfg.D)/float64(v.cfg.K+2), v.cfg.D)
	_ = imputePoint(m.RNG(), v.params, p)
	out := make([]relational.Tuple, v.cfg.D)
	for d := 0; d < v.cfg.D; d++ {
		out[d] = relational.T(float64(id), float64(d), p.x[d], float64(p.c))
	}
	return out
}

// RunSimSQL implements the Figure 5 SimSQL imputation: the Section 5.2
// GMM pipeline plus one extra VG job per iteration that rewrites the
// data relation with imputed values. SimSQL streams the rewritten table
// through disk like everything else, so its times barely move relative
// to its GMM — and it is again the platform that scales to 100 machines
// with the least complaint.
func RunSimSQL(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	cost := cl.Config().Cost

	// Data relation (data_id, dim_id, val) plus task-local points.
	dataT := relational.NewTable("data", relational.Schema{
		{Name: "data_id", Kind: relational.KindInt},
		{Name: "dim_id", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
	}, machines)
	dataT.Scaled = true
	var allPoints []*point
	nextID := 0
	for mc := 0; mc < machines; mc++ {
		pts := genMachinePoints(cl, cfg, mc)
		allPoints = append(allPoints, pts...)
		for _, p := range pts {
			for d, val := range p.x {
				dataT.Parts[mc] = append(dataT.Parts[mc], relational.T(float64(nextID), float64(d), val))
			}
			nextID++
		}
	}
	machine0Count := 0
	if machines > 0 {
		machine0Count = len(dataT.Parts[0]) / cfg.D
	}

	h := hyperFrom(allPoints, cfg)
	rng := randgen.New(cfg.Seed ^ 0x17a2)
	var params *gmm.Params
	// Hyperparameter aggregation plus the three init random tables.
	cl.Advance(4 * cost.MRJobLaunch)
	if err := cl.RunPhaseF("impute-hyper", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		m.ChargeTuples(len(dataT.Parts[machine]))
		return nil
	}); err != nil {
		return res, err
	}
	if err := cl.RunDriver("impute-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		params, e = gmm.Init(rng, h)
		return e
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := replicateModel(cl, params.Bytes()); err != nil {
			return res, err
		}
		// Extra step: the imputation VG rewrites the data relation.
		vg := &imputeVG{cfg: cfg, params: params, points: allPoints}
		newData, err := eng.Run("data", relational.VGApplyP(vg, 0, relational.ScanT(dataT), false))
		if err != nil {
			return res, fmt.Errorf("impute simsql iter %d: impute: %w", iter, err)
		}
		// GMM statistics: counts per cluster, first moments, and the
		// costly second-moment GROUP BY — all over the rewritten rows
		// (which carry clus_id in column 3).
		stats := gmm.NewStats(cfg.K, cfg.D)
		cntT, err := eng.Run("counts", relational.AsModelP(relational.GroupAggP(
			relational.SelectP(relational.ScanT(newData), func(t relational.Tuple) bool { return t.Int(1) == 0 }),
			[]int{3}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
		if err != nil {
			return res, err
		}
		for _, t := range cntT.Rows() {
			stats.N[t.Int(0)] = t.Float(1)
		}
		sumT, err := eng.Run("sums", relational.AsModelP(relational.GroupAggP(
			relational.ScanT(newData), []int{3, 1},
			[]relational.AggSpec{{Kind: relational.AggSum, Col: 2, Name: "s"}})))
		if err != nil {
			return res, err
		}
		for _, t := range sumT.Rows() {
			stats.Sum[t.Int(0)][t.Int(1)] = t.Float(2)
		}
		pairsPlan := relational.HashJoinP(relational.ScanT(newData), relational.ScanT(newData), []int{0}, []int{0})
		sqT, err := eng.Run("sumsq", relational.AsModelP(relational.GroupAggP(pairsPlan,
			[]int{3, 1, 5},
			[]relational.AggSpec{{Kind: relational.AggSum, Name: "v", Expr: func(t relational.Tuple) float64 {
				return t.Float(2) * t.Float(6)
			}}})))
		if err != nil {
			return res, err
		}
		for _, t := range sqT.Rows() {
			stats.SumSq[t.Int(0)].Set(int(t.Int(1)), int(t.Int(2)), t.Float(3))
		}
		scaleStats(stats, cl.Scale())
		cl.Advance(3 * cost.MRJobLaunch)
		if err := cl.RunDriver("impute-model-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, h, params, stats)
		}); err != nil {
			return res, err
		}
		dataT = newData
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(allPoints[:machine0Count], res)
	return res, nil
}

// replicateModel charges shipping the model to every machine.
func replicateModel(cl *sim.Cluster, bytes int64) error {
	n := cl.NumMachines()
	return cl.RunPhaseF("model-replicate", func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes))
		}
		return nil
	})
}
