// Package imputetask implements the paper's Section 9 benchmark task —
// Gaussian missing-value imputation — on all four platform engines. The
// model is the GMM of Section 5 with one extra Gibbs step that redraws
// each point's censored coordinates from its cluster's conditional
// normal. The benchmark-relevant twist is that the data set itself
// changes every iteration, which costs Spark its cache() advantage
// (Figure 5's 3x slowdown over the GMM) while barely moving the other
// platforms.
package imputetask

import (
	"math"

	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/models/impute"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Config parameterizes one imputation run at paper scale (the paper uses
// the ten-dimensional GMM data with ~50% of values censored).
type Config struct {
	K                int
	D                int
	PointsPerMachine int
	Iterations       int
	SVPerMachine     int
	Seed             uint64
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 10
	}
	if c.D == 0 {
		c.D = 10
	}
	if c.PointsPerMachine == 0 {
		c.PointsPerMachine = 10_000_000
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.SVPerMachine == 0 {
		c.SVPerMachine = 80
	}
	if c.Seed == 0 {
		c.Seed = 53
	}
	return c
}

// point is one observation: current values (censored slots hold imputed
// draws), the censoring mask, the true values (for the quality
// diagnostic) and the current cluster assignment.
type point struct {
	x       linalg.Vec
	missing []bool
	truth   linalg.Vec
	c       int
}

// genMachinePoints deterministically generates one machine's censored
// points.
func genMachinePoints(cl *sim.Cluster, cfg Config, machine int) []*point {
	n := task.RealCount(cl, cfg.PointsPerMachine)
	root := randgen.New(cfg.Seed ^ cl.Config().Seed)
	mu := workload.PlantedMeans(root, cfg.K, cfg.D, 8) // shared planted mixture
	rng := root.Split(uint64(machine))
	data := workload.GenGMMAt(rng, mu, n)
	censored, missing := workload.Censor(rng, data.Points)
	out := make([]*point, n)
	for i := range out {
		out[i] = &point{x: censored[i], missing: missing[i], truth: data.Points[i], c: rng.Intn(cfg.K)}
	}
	return out
}

// hyperFrom computes the empirical hyperparameters over observed values.
func hyperFrom(pts []*point, cfg Config) gmm.Hyper {
	mean := linalg.NewVec(cfg.D)
	variance := linalg.NewVec(cfg.D)
	count := linalg.NewVec(cfg.D)
	for _, p := range pts {
		for d, v := range p.x {
			if !p.missing[d] {
				mean[d] += v
				variance[d] += v * v
				count[d]++
			}
		}
	}
	for d := range mean {
		if count[d] == 0 {
			count[d] = 1
		}
		mean[d] /= count[d]
		variance[d] = variance[d]/count[d] - mean[d]*mean[d]
		if variance[d] <= 0 {
			variance[d] = 1
		}
	}
	return gmm.HyperFromMoments(cfg.K, mean, variance)
}

// imputePoint performs the blocked Gibbs update of one point: the
// cluster assignment is drawn from the observed coordinates' marginal
// (so imputed values cannot reinforce a wrong cluster), then the
// censored coordinates are redrawn from the conditional normal.
func imputePoint(rng *randgen.RNG, params *gmm.Params, p *point) error {
	c, err := impute.SampleMembershipObserved(rng, params.Pi, params.Mu, params.Sigma, p.x, p.missing)
	if err != nil {
		return err
	}
	p.c = c
	return impute.SampleMissing(rng, p.x, p.missing, params.Mu[p.c], params.Sigma[p.c])
}

// pointWorkFlops is the per-point cost of one full iteration step:
// conditional-normal imputation plus membership sampling plus the
// scatter contribution.
func pointWorkFlops(k, d int) float64 {
	return impute.Flops(d) + gmm.MembershipFlops(k, d) + float64(d*d)
}

// scaleStats multiplies statistics to paper scale.
func scaleStats(s *gmm.Stats, scale float64) {
	for k := 0; k < s.K; k++ {
		s.N[k] *= scale
		s.Sum[k].ScaleInPlace(scale)
		s.SumSq[k].ScaleInPlace(scale)
	}
}

// recordQuality stores the RMSE of imputed values against the hidden
// truth on machine-0 points, and the mean-imputation baseline RMSE for
// reference. Only partially observed points are scored: with the paper's
// Beta(1, 1) censoring a quarter of the points lose every coordinate,
// and no method can locate those beyond the mixture marginal.
func recordQuality(pts []*point, res *task.Result) {
	var se, base float64
	var n float64
	for _, p := range pts {
		anyObserved := false
		for _, miss := range p.missing {
			if !miss {
				anyObserved = true
				break
			}
		}
		if !anyObserved {
			continue
		}
		for d := range p.x {
			if p.missing[d] {
				diff := p.x[d] - p.truth[d]
				se += diff * diff
				base += p.truth[d] * p.truth[d] // mean-imputation predicts ~0
				n++
			}
		}
	}
	if n > 0 {
		res.SetMetric("impute_rmse", math.Sqrt(se/n))
		res.SetMetric("baseline_rmse", math.Sqrt(base/n))
	}
}

// statBytes and modelMsgBytes mirror the GMM task's payload sizes.
func statBytes(d int) int64     { return int64(8 * (1 + d + d*d)) }
func modelMsgBytes(d int) int64 { return int64(8 * (1 + d + d*d)) }
