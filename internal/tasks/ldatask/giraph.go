package ldatask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Giraph vertex layout: topic vertices at [0, T), data vertices above
// ldaDataBase.
const ldaDataBase bsp.VertexID = 1 << 41

// ldaDocVtx is one document; ldaBlockVtx is a super vertex of documents.
type ldaDocVtx struct{ doc *lda.Doc }
type ldaBlockVtx struct{ docs []*lda.Doc }

// ldaTopicVtx is one topic holding a slice of phi.
type ldaTopicVtx struct{ t int }

// ldaCountsMsg carries g(t, w) contributions. Unlike the HMM code, the
// paper's Giraph LDA cannot usefully combine these: at 100 topics the
// count dictionaries are ~80MB boxed objects, and combining them churns
// the JVM heap — so they ship raw, which both makes Giraph's LDA about
// ten times slower than its HMM and sinks it at 100 machines. The
// payload here is the sparse document references; the simulated byte
// size reflects the boxed dictionary the real system would ship.
type ldaCountsMsg struct {
	docs   []*lda.Doc
	weight float64
}

// RunGiraph implements the paper's Giraph LDA (Figures 4(a) and 4(b)).
func RunGiraph(cl *sim.Cluster, cfg Config, variant Variant) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	if variant == VariantWord {
		return res, fmt.Errorf("ldatask: the paper did not attempt a word-based Giraph LDA (the HMM result made it moot)")
	}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()

	g := bsp.NewGraph(cl) // no combiner; see ldaCountsMsg
	rng := randgen.New(cfg.Seed ^ 0x1da3)
	model := lda.Init(rng, h)
	refreshProposals(cfg, nil, model)

	machineDocs := make([][]*lda.Doc, machines)
	next := int64(ldaDataBase)
	for mc := 0; mc < machines; mc++ {
		words := genMachineDocs(cl, cfg, mc)
		docs := make([]*lda.Doc, len(words))
		for i, w := range words {
			docs[i] = lda.InitDoc(rng, w, h)
		}
		machineDocs[mc] = docs
		switch variant {
		case VariantDoc:
			for _, d := range docs {
				g.AddVertex(bsp.VertexID(next), &ldaDocVtx{doc: d},
					int64(16*len(d.Words))+int64(8*cfg.T)+64, true, mc)
				next++
			}
		default: // VariantSV
			nsv := cfg.SVPerMachine // blocks may be empty at high scale-down; messages stay dense
			for s := 0; s < nsv; s++ {
				lo, hi := s*len(docs)/nsv, (s+1)*len(docs)/nsv
				blk := &ldaBlockVtx{docs: docs[lo:hi]}
				var words int
				for _, d := range blk.docs {
					words += len(d.Words)
				}
				bytes := int64(float64(16*words+8*cfg.T*len(blk.docs)) * cl.Scale())
				g.AddVertex(bsp.VertexID(next), blk, bytes, false, mc)
				next++
			}
		}
	}
	for t := 0; t < cfg.T; t++ {
		g.AddVertex(bsp.VertexID(t), &ldaTopicVtx{t: t}, int64(8*cfg.V), false, t%machines)
	}
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lda giraph %s: load: %w", variant, err)
	}
	res.InitSec = sw.Lap()

	// The per-machine count payload is sparse-token-bounded.
	perDocTokens := cfg.AvgDocLen
	perBlockTokens := cfg.DocsPerMachine / cfg.SVPerMachine * cfg.AvgDocLen
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Superstep A: topic vertex 0 publishes phi on the shared channel.
		err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if tv, ok := v.Data.(*ldaTopicVtx); ok && tv.t == 0 {
				ctx.SetShared("phi", model, modelBytes(cfg.T, cfg.V))
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda giraph %s iter %d: model: %w", variant, iter, err)
		}
		// Superstep B: data vertices resample z/theta and ship their raw
		// count dictionaries to topic vertex 0.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			m := ctx.Meter()
			switch d := v.Data.(type) {
			case *ldaDocVtx:
				m.ChargeTuples(2 * len(d.doc.Words))
				m.ChargeBulk(float64(len(d.doc.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
				model.ResampleZTier(m.RNG(), d.doc, cfg.Sampler)
				d.doc.ResampleTheta(m.RNG(), h)
				ctx.Send(0, &ldaCountsMsg{docs: []*lda.Doc{d.doc}, weight: cl.Scale()},
					boxedCountBytes(sim.ProfileJava, cfg.T, cfg.V, perDocTokens))
			case *ldaBlockVtx:
				for _, doc := range d.docs {
					// Every word's z is resampled; each pays a boxed
					// touch plus the T-weight scan.
					m.ChargeTuples(len(doc.Words))
					m.ChargeBulk(float64(len(doc.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
					model.ResampleZTier(m.RNG(), doc, cfg.Sampler)
					doc.ResampleTheta(m.RNG(), h)
				}
				ctx.Send(0, &ldaCountsMsg{docs: d.docs, weight: cl.Scale()},
					boxedCountBytes(sim.ProfileJava, cfg.T, cfg.V, perBlockTokens))
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda giraph %s iter %d: resample: %w", variant, iter, err)
		}
		// Superstep C: merge and redraw phi.
		var gathered *lda.WordCounts
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if tv, ok := v.Data.(*ldaTopicVtx); ok && tv.t == 0 {
				m := ctx.Meter()
				gathered = lda.NewWordCounts(cfg.T, cfg.V)
				for _, msg := range msgs {
					if cm, ok := msg.Data.(*ldaCountsMsg); ok {
						m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
						for _, doc := range cm.docs {
							gathered.Accumulate(doc, cm.weight)
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda giraph %s iter %d: gather: %w", variant, iter, err)
		}
		if gathered == nil {
			return res, fmt.Errorf("lda giraph %s iter %d: no counts gathered", variant, iter)
		}
		if err := cl.RunDriver("lda-giraph-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileJava)
			m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
			model.UpdatePhi(rng, h, gathered)
			refreshProposals(cfg, m, model)
			return nil
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(cfg, model, machineDocs[0], res)
	return res, nil
}
