package ldatask

import (
	"fmt"

	"mlbench/internal/dataflow"
	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// sparkLDADoc is one document in the RDD: words, topic assignments z and
// the document's theta.
type sparkLDADoc struct {
	id  int
	doc *lda.Doc
}

// ldaDocBytes is the in-memory size of a document record under the given
// runtime: boxed word and z lists plus the theta vector.
func ldaDocBytes(p sim.Profile, words, topics int) int64 {
	perInt := int64(8)
	switch p.Name {
	case "python":
		perInt = 28
	case "java":
		perInt = 16
	}
	return int64(2*words)*perInt + int64(8*topics) + 120
}

// RunSpark implements the document-based and super-vertex Spark LDA of
// Figures 4 and 6. profile selects Python or Java. Each iteration caches
// a new state RDD (z and theta evolve), aggregates the g(t, w) counts
// with a reduceByKey whose per-partition partials are boxed dictionaries,
// and redraws phi on the driver. The single-reducer aggregation of
// #partitions boxed count dictionaries plus two resident copies of the
// cached state RDD is what pushes Spark over the edge at 100 machines
// (for Java, already flaky at 20 — the paper saw it die after 18
// iterations).
func RunSpark(cl *sim.Cluster, cfg Config, variant Variant, profile sim.Profile) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	if variant == VariantWord {
		return res, fmt.Errorf("ldatask: the paper did not obtain a word-based Spark LDA (the HMM self-join failure made it moot)")
	}
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()

	machineDocs := make([][]*lda.Doc, machines)
	rngInit := randgen.New(cfg.Seed ^ 0x1da0)
	for mc := 0; mc < machines; mc++ {
		for _, words := range genMachineDocs(cl, cfg, mc) {
			machineDocs[mc] = append(machineDocs[mc], lda.InitDoc(rngInit, words, h))
		}
	}
	sizer := func(d sparkLDADoc) int64 { return ldaDocBytes(profile, len(d.doc.Words), cfg.T) }

	parts := machines * cl.Config().Cores
	base := dataflow.Generate(ctx, parts, sizer, func(p int, r *randgen.RNG) []sparkLDADoc {
		mc := p % machines
		all := machineDocs[mc]
		slot, cores := p/machines, cl.Config().Cores
		lo, hi := slot*len(all)/cores, (slot+1)*len(all)/cores
		out := make([]sparkLDADoc, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, sparkLDADoc{id: mc*len(all) + i, doc: all[i]})
		}
		return out
	}).SetName("docs")
	state := dataflow.Map(base, sizer, func(m *sim.Meter, d sparkLDADoc) sparkLDADoc {
		m.ChargeTuples(len(d.doc.Words))
		return d
	}).SetName("state").Cache()

	rng := randgen.New(cfg.Seed ^ 0x1da1)
	var model *lda.Model
	err := cl.RunDriver("lda-init-model", func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		refreshProposals(cfg, m, model)
		return nil
	})
	if err != nil {
		return res, err
	}
	if _, err := dataflow.Count(state); err != nil {
		return res, fmt.Errorf("lda spark: init: %w", err)
	}
	res.InitSec = sw.Lap()

	avgTokens := cfg.DocsPerMachine / parts * cfg.AvgDocLen * machines
	countSizer := func(dataflow.Pair[int, *lda.WordCounts]) int64 {
		return boxedCountBytes(profile, cfg.T, cfg.V, avgTokens)
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Broadcast(modelBytes(cfg.T, cfg.V), "phi"); err != nil {
			return res, err
		}
		// Resample z and theta for every document into a fresh cached RDD
		// (the old one stays resident until the new one materializes).
		next := dataflow.Map(state, sizer, func(m *sim.Meter, d sparkLDADoc) sparkLDADoc {
			// The interpreter touches every word whether or not documents
			// are blocked — the reason the paper's super-vertex Spark
			// codes barely improve on the document-based ones. Python
			// additionally pays a PyGSL sampling call per word; Java
			// samples inline at bulk flop rates (Figure 6's advantage).
			m.ChargeTuples(len(d.doc.Words))
			if profile.Name == "python" {
				m.ChargeLinalg(len(d.doc.Words), lda.ZFlopsTier(cfg.Sampler, cfg.T), 1)
			} else {
				m.ChargeBulk(float64(len(d.doc.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
			}
			model.ResampleZTier(m.RNG(), d.doc, cfg.Sampler)
			d.doc.ResampleTheta(m.RNG(), h)
			return d
		}).SetName("state").Cache()
		if _, err := dataflow.Count(next); err != nil {
			return res, fmt.Errorf("lda spark iter %d: resample: %w", iter, err)
		}
		state.Unpersist()
		state = next
		// Aggregate g(t, w): per-partition boxed dictionaries shuffled to
		// a single reducer, then collected to the driver.
		counts := dataflow.MapPartitions(state, countSizer,
			func(m *sim.Meter, part []sparkLDADoc) []dataflow.Pair[int, *lda.WordCounts] {
				acc := lda.NewWordCounts(cfg.T, cfg.V)
				for _, d := range part {
					if variant == VariantSV {
						m.ChargeBulk(float64(len(d.doc.Words)))
					} else {
						m.ChargeTuples(len(d.doc.Words))
					}
					acc.Accumulate(d.doc, 1)
				}
				return []dataflow.Pair[int, *lda.WordCounts]{{K: 0, V: acc}}
			})
		merged := dataflow.ReduceByKey(counts, func(m *sim.Meter, a, b *lda.WordCounts) *lda.WordCounts {
			m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
			a.Merge(b)
			return a
		}).AsModel()
		pairs, err := dataflow.CollectPairs(merged)
		if err != nil {
			return res, fmt.Errorf("lda spark iter %d: counts: %w", iter, err)
		}
		err = cl.RunDriver("lda-phi-update", func(m *sim.Meter) error {
			m.SetProfile(profile)
			m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
			total := lda.NewWordCounts(cfg.T, cfg.V)
			for _, p := range pairs {
				total.Merge(p.V)
			}
			scaleWordCounts(total, cl.Scale())
			model.UpdatePhi(rng, h, total)
			refreshProposals(cfg, m, model)
			return nil
		})
		if err != nil {
			return res, err
		}
		ctx.ReleaseBroadcast(modelBytes(cfg.T, cfg.V))
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	recordQuality(cfg, model, machineDocs[0], res)
	return res, nil
}
