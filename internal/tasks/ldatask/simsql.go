package ldatask

import (
	"fmt"

	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// zSchema is the per-word assignment relation: (docID, pos, word, z).
func zSchema() relational.Schema {
	return relational.Ints("docID", "pos", "word", "z")
}

// docZVG resamples one document's z vector and theta in C++, emitting one
// tuple per word (plus the theta rows the word/doc formulations must
// materialize as a random table).
type docZVG struct {
	cfg   Config
	model *lda.Model
	h     lda.Hyper
	docs  map[int64]*lda.Doc
}

func (v *docZVG) Name() string { return "doc_z_resample" }
func (v *docZVG) OutSchema() relational.Schema {
	return zSchema()
}
func (v *docZVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	d := v.docs[rows[0].Int(0)]
	m.ChargeOps(len(d.Words), lda.ZFlopsTier(v.cfg.Sampler, v.cfg.T), 1)
	v.model.ResampleZTier(m.RNG(), d, v.cfg.Sampler)
	d.ResampleTheta(m.RNG(), v.h)
	out := make([]relational.Tuple, len(d.Words))
	docID := rows[0].Float(0)
	for pos, w := range d.Words {
		out[pos] = relational.T(docID, float64(pos), float64(w), float64(d.Z[pos]))
	}
	return out
}

// RunSimSQL implements the paper's Section 8 SimSQL LDA. The word-based
// formulation — which only SimSQL could run at all — materializes the z
// relation per word AND the theta relation per (document, topic) every
// iteration, giving the 16.5-hour iterations of Figure 4(a). The
// document-based variant moves the sampling into a per-document VG but
// still outputs per-word tuples. The super-vertex variant pre-aggregates
// g(t, w) inside the VG (the tactic that made SimSQL's GMM fastest), and
// is the only 100-machine LDA in the study.
func RunSimSQL(cl *sim.Cluster, cfg Config, variant Variant) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	cost := cl.Config().Cost

	rng := randgen.New(cfg.Seed ^ 0x1da2)
	model := lda.Init(rng, h)
	refreshProposals(cfg, nil, model)

	// Task-local document state plus the per-word z relation.
	docsByID := map[int64]*lda.Doc{}
	machineDocCount := make([]int, machines)
	zT := relational.NewTable("z", zSchema(), machines)
	zT.Scaled = true
	docID := int64(0)
	for mc := 0; mc < machines; mc++ {
		docs := genMachineDocs(cl, cfg, mc)
		machineDocCount[mc] = len(docs)
		for _, words := range docs {
			d := lda.InitDoc(rng, words, h)
			docsByID[docID] = d
			for pos, w := range words {
				zT.Parts[mc] = append(zT.Parts[mc], relational.T(float64(docID), float64(pos), float64(w), float64(d.Z[pos])))
			}
			docID++
		}
	}
	// Initialization: materialize the z (and, for the word variant, the
	// theta) random tables through the engine — the word-based init took
	// over 11 hours in the paper.
	cl.Advance(2 * cost.MRJobLaunch)
	if err := cl.RunPhaseF("lda-load", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		passes := 2
		if variant == VariantWord {
			passes = 4
		}
		m.ChargeTuples(passes * len(zT.Parts[machine]))
		if variant != VariantSV {
			// theta[0]: T rows per document.
			m.ChargeTuples(passes / 2 * machineDocCount[machine] * cfg.T)
		}
		return nil
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := replicateModel(cl, modelBytes(cfg.T, cfg.V)); err != nil {
			return res, err
		}
		counts := lda.NewWordCounts(cfg.T, cfg.V)
		switch variant {
		case VariantWord, VariantDoc:
			if variant == VariantWord {
				// The word-based plan joins z with the theta relation
				// (docID, topic, value — T rows per document) and with
				// the phi relation (topic, word, value) before
				// parameterizing the per-word Categorical VG. Both joins
				// stream the full word relation plus the fat theta table.
				cl.Advance(2 * cost.MRJobLaunch)
				if err := cl.RunPhaseF("lda-theta-phi-joins", func(machine int, m *sim.Meter) error {
					m.SetProfile(sim.ProfileSQLEngine)
					zRows := len(zT.Parts[machine])
					thetaRows := machineDocCount[machine] * cfg.T
					// theta join: read + ship + probe + output; phi join:
					// read + probe + output.
					m.ChargeTuples(4*zRows + 3*thetaRows)
					m.ChargeTuples(3 * zRows)
					m.ChargeTuplesAbs(float64(cfg.T * cfg.V)) // phi replication
					return nil
				}); err != nil {
					return res, err
				}
			}
			vg := &docZVG{cfg: cfg, model: model, h: h, docs: docsByID}
			newZ, err := eng.Run("z", relational.VGApplyP(vg, 0, relational.ScanT(zT), false))
			if err != nil {
				return res, fmt.Errorf("lda simsql %s iter %d: %w", variant, iter, err)
			}
			zT = newZ
			// theta[i]: a GROUP BY over z per (doc, topic) plus a
			// Dirichlet VG emitting T rows per document.
			if _, err := eng.Run("ftab", relational.GroupAggP(relational.ScanT(zT),
				[]int{0, 3}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})); err != nil {
				return res, err
			}
			cl.Advance(cost.MRJobLaunch)
			if err := cl.RunPhaseF("lda-theta-update", func(machine int, m *sim.Meter) error {
				m.SetProfile(sim.ProfileSQLEngine)
				// Dirichlet VG output plus the versioning sort passes.
				m.ChargeTuples(3 * machineDocCount[machine] * cfg.T)
				return nil
			}); err != nil {
				return res, err
			}
			// phi counts: GROUP BY over the per-word z rows.
			gT, err := eng.Run("g", relational.AsModelP(relational.GroupAggP(relational.ScanT(zT),
				[]int{3, 2}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
			if err != nil {
				return res, err
			}
			for _, r := range gT.Rows() {
				counts.G[r.Int(0)][r.Int(1)] += r.Float(2)
			}
		default: // VariantSV: one VG invocation per machine, but the z
			// values are still emitted as per-word tuples and aggregated
			// with GROUP BY — the paper's SV SimSQL LDA keeps per-word
			// output (pre-aggregating would have required "encoding all
			// of the output values plus all of the aggregates as a
			// single output table").
			cl.Advance(cost.MRJobLaunch)
			zOut := relational.NewTable("z", zSchema(), machines)
			zOut.Scaled = true
			err := cl.RunPhaseF("lda-sv-vg", func(machine int, m *sim.Meter) error {
				m.SetProfile(sim.ProfileCPP)
				base := int64(0)
				for mc := 0; mc < machine; mc++ {
					base += int64(machineDocCount[mc])
				}
				var rows []relational.Tuple
				for i := 0; i < machineDocCount[machine]; i++ {
					d := docsByID[base+int64(i)]
					m.ChargeBulk(float64(len(d.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
					model.ResampleZTier(m.RNG(), d, cfg.Sampler)
					d.ResampleTheta(m.RNG(), h)
					id := float64(base + int64(i))
					for pos, w := range d.Words {
						rows = append(rows, relational.T(id, float64(pos), float64(w), float64(d.Z[pos])))
					}
				}
				// Per-word output plus the random-table versioning sort.
				m.SetProfile(sim.ProfileSQLEngine)
				m.ChargeTuples(3 * len(rows))
				zOut.Parts[machine] = rows
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("lda simsql sv iter %d: %w", iter, err)
			}
			gT, err := eng.Run("g", relational.AsModelP(relational.GroupAggP(relational.ScanT(zOut),
				[]int{3, 2}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
			if err != nil {
				return res, err
			}
			for _, r := range gT.Rows() {
				counts.G[r.Int(0)][r.Int(1)] += r.Float(2)
			}
		}
		scaleWordCounts(counts, cl.Scale())
		// phi[i]: one more random-table job.
		cl.Advance(cost.MRJobLaunch)
		if err := cl.RunDriver("lda-phi-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
			model.UpdatePhi(rng, h, counts)
			refreshProposals(cfg, m, model)
			return nil
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	var docs0 []*lda.Doc
	for i := 0; i < machineDocCount[0]; i++ {
		docs0 = append(docs0, docsByID[int64(i)])
	}
	recordQuality(cfg, model, docs0, res)
	return res, nil
}

// replicateModel charges shipping phi to every machine.
func replicateModel(cl *sim.Cluster, bytes int64) error {
	n := cl.NumMachines()
	return cl.RunPhaseF("model-replicate", func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes))
		}
		return nil
	})
}
