package ldatask

import (
	"fmt"

	"mlbench/internal/gas"
	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// GraphLab vertex layout: the model vertex at 0, data super vertices
// above glDataBase.
const glDataBase gas.VertexID = 1 << 41

// glSVVtx is a super vertex of documents; its exported view is its full
// g(t, w) count set.
type glSVVtx struct {
	docs []*lda.Doc
}

// glModelVtx holds phi.
type glModelVtx struct{}

// glEdges: a star with the model vertex at the center.
type glEdges struct {
	svIDs []gas.VertexID
}

func (e *glEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	if v == 0 {
		return e.svIDs
	}
	return []gas.VertexID{0}
}

// glState carries the chain state across rounds.
type glState struct {
	cfg    Config
	h      lda.Hyper
	model  *lda.Model
	counts *lda.WordCounts
	scale  float64
}

type glGather struct {
	isModel bool
	docs    []*lda.Doc
	counts  *lda.WordCounts
}

type glProg struct{ st *glState }

func (p *glProg) ViewBytes(v *gas.Vertex) int64 {
	if _, ok := v.Data.(*glSVVtx); ok {
		// The full exported count set — GraphLab vertices "export a
		// single view of their internals", so the model vertex pulls the
		// whole thing from every super vertex.
		return countsViewBytes(p.st.cfg.T, p.st.cfg.V)
	}
	return modelBytes(p.st.cfg.T, p.st.cfg.V)
}

func (p *glProg) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	if _, ok := v.Data.(*glSVVtx); ok {
		return glGather{isModel: true}
	}
	sv := nbr.Data.(*glSVVtx)
	m.ChargeLinalgAbs(1, float64(p.st.cfg.T*p.st.cfg.V), 1)
	return glGather{docs: sv.docs}
}

func (p *glProg) Sum(m *sim.Meter, a, b any) any {
	av, bv := a.(glGather), b.(glGather)
	if av.isModel {
		return av
	}
	m.ChargeLinalgAbs(1, float64(p.st.cfg.T*p.st.cfg.V), 1)
	if av.counts == nil {
		av.counts = lda.NewWordCounts(p.st.cfg.T, p.st.cfg.V)
		for _, d := range av.docs {
			av.counts.Accumulate(d, p.st.scale)
		}
		av.docs = nil
	}
	for _, d := range bv.docs {
		av.counts.Accumulate(d, p.st.scale)
	}
	if bv.counts != nil {
		av.counts.Merge(bv.counts)
	}
	return av
}

func (p *glProg) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	cfg := p.st.cfg
	switch d := v.Data.(type) {
	case *glSVVtx:
		for _, doc := range d.docs {
			m.ChargeBulk(float64(len(doc.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
			p.st.model.ResampleZTier(m.RNG(), doc, cfg.Sampler)
			doc.ResampleTheta(m.RNG(), p.st.h)
		}
	case *glModelVtx:
		if acc == nil {
			return
		}
		gv := acc.(glGather)
		if gv.isModel {
			return
		}
		if gv.counts == nil {
			gv.counts = lda.NewWordCounts(cfg.T, cfg.V)
			for _, doc := range gv.docs {
				gv.counts.Accumulate(doc, p.st.scale)
			}
		}
		p.st.counts = gv.counts
	}
}

// RunGraphLab implements the super-vertex GraphLab LDA of Figure 4(b):
// it runs at 5 machines (39:27 per iteration) but the simultaneous
// materialization of every super vertex's dense topic-word count view at
// the model vertex — five times the HMM's model size, multiplied by the
// asynchronous engine's in-flight depth — fails at 20 machines and up.
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = VariantSV
	res := &task.Result{}
	sw := task.NewStopwatch(cl)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines", g.EffectiveMachines(), cl.NumMachines())
	}
	rng := randgen.New(cfg.Seed ^ 0x1da4)
	h := cfg.hyper()
	st := &glState{cfg: cfg, h: h, scale: cl.Scale()}
	st.model = lda.Init(rng, h)
	refreshProposals(cfg, nil, st.model)

	var svIDs []gas.VertexID
	machineDocs := make([][]*lda.Doc, g.EffectiveMachines())
	for mc := 0; mc < g.EffectiveMachines(); mc++ {
		words := genMachineDocs(cl, cfg, mc)
		docs := make([]*lda.Doc, len(words))
		for i, w := range words {
			docs[i] = lda.InitDoc(rng, w, h)
		}
		machineDocs[mc] = docs
		nsv := cfg.SVPerMachine
		for s := 0; s < nsv; s++ {
			lo, hi := s*len(docs)/nsv, (s+1)*len(docs)/nsv
			sv := &glSVVtx{docs: docs[lo:hi]}
			var wordCount int
			for _, d := range sv.docs {
				wordCount += len(d.Words)
			}
			id := glDataBase + gas.VertexID(mc*cfg.SVPerMachine+s)
			bytes := int64(float64(16*wordCount) * cl.Scale())
			g.AddVertex(id, sv, bytes, false, mc)
			svIDs = append(svIDs, id)
		}
	}
	g.AddVertex(0, &glModelVtx{}, modelBytes(cfg.T, cfg.V), false, 0)
	g.SetEdges(&glEdges{svIDs: svIDs})
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lda graphlab: load: %w", err)
	}
	res.InitSec = sw.Lap()

	prog := &glProg{st: st}
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.counts = nil
		if err := g.RunRound(prog, nil); err != nil {
			return res, fmt.Errorf("lda graphlab iter %d: %w", iter, err)
		}
		if st.counts == nil {
			return res, fmt.Errorf("lda graphlab iter %d: no counts gathered", iter)
		}
		if err := cl.RunDriver("lda-gl-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
			st.model.UpdatePhi(rng, h, st.counts)
			refreshProposals(cfg, m, st.model)
			return nil
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(cfg, st.model, machineDocs[0], res)
	return res, nil
}
