package ldatask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/dataflow"
	"mlbench/internal/gas"
	"mlbench/internal/models/lda"
	"mlbench/internal/ordmap"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"

	"mlbench/internal/datagen"
)

// This file implements the STREAMED scale formulation of LDA used by the
// fig-scale sweep (100 -> 1,000 -> 10,000 machines). The paper's Figure 4
// formulations keep per-document chain state (z, theta) resident, which
// couples a machine's memory to its partition size. The scale formulation
// is amnesiac instead: every iteration re-draws each document's z and
// theta from scratch under the current phi (an init plus one Gibbs
// rejuvenation sweep), so no per-document state survives between
// iterations and the corpus streams chunk by chunk through a
// sim.Source — resident memory per machine is bounded by the chunk
// size, not the partition. Only phi and the topic-word counts (model-
// sized) live across a pass. The pass is dense-scan by construction; the
// sampler tier knob shapes the generated corpus, not this hot path.

// machineDocSource returns machine's corpus as a streamed source
// replaying genMachineDocs's exact draw pattern chunk by chunk.
func machineDocSource(cl *sim.Cluster, cfg Config, machine int) *sim.Source[[]int] {
	ds := datagen.ScenarioSpec(cfg.Dataset)
	n := datagen.MachineShare(ds, machine, cl.NumMachines(), task.RealCount(cl, cfg.DocsPerMachine))
	topics := cfg.T / 10
	if topics < 2 {
		topics = 2
	}
	return sim.NewSource(n, cl.ChunkElems(), func() func() []int {
		rng := randgen.New(cfg.Seed ^ cl.Config().Seed).Split(uint64(machine))
		if ds != nil && ds.Corpus != nil {
			return datagen.OpenMachineCorpus(ds, rng, cfg.V, cfg.AvgDocLen, topics)
		}
		return workload.OpenCorpus(rng, workload.CorpusConfig{
			Docs: n, Vocab: cfg.V, AvgLen: cfg.AvgDocLen, Topics: topics,
			Sampler: cfg.Sampler,
		})
	})
}

// docSources builds the per-machine corpus sources.
func docSources(cl *sim.Cluster, cfg Config, machines int) []*sim.Source[[]int] {
	srcs := make([]*sim.Source[[]int], machines)
	for mc := 0; mc < machines; mc++ {
		srcs[mc] = machineDocSource(cl, cfg, mc)
	}
	return srcs
}

// rejuvenate runs the amnesiac per-document pass: uniform z and prior
// theta, a z sweep under phi, a theta redraw, and a final z sweep. The
// returned ephemeral Doc carries the assignments to accumulate.
func rejuvenate(rng *randgen.RNG, h lda.Hyper, model *lda.Model, words []int) *lda.Doc {
	d := lda.InitDoc(rng, words, h)
	model.ResampleZ(rng, d)
	d.ResampleTheta(rng, h)
	model.ResampleZ(rng, d)
	return d
}

// chargeScaleDoc accounts one rejuvenation pass over a document: two
// dense z sweeps plus two Dirichlet draws.
func chargeScaleDoc(m *sim.Meter, cfg Config, words int) {
	m.ChargeTuples(words)
	m.ChargeBulk(2*float64(words)*lda.ZFlops(cfg.T) + 4*float64(cfg.T))
}

// scaleCounts is a sparse, insertion-ordered topic-word count
// accumulator: a streamed pass touches only the (topic, word) cells its
// real tokens sampled, so host memory tracks token count rather than
// T x V — the dense payload is still what the simulation charges on the
// wire (countsViewBytes), since at paper scale the counts are dense.
type scaleCounts struct {
	v int
	m *ordmap.Map[int, float64]
}

func newScaleCounts(v int) *scaleCounts {
	return &scaleCounts{v: v, m: ordmap.New[int, float64]()}
}

// add absorbs one rejuvenated document's assignments.
func (c *scaleCounts) add(d *lda.Doc) {
	for i, w := range d.Words {
		c.m.Merge(d.Z[i]*c.v+w, 1, func(old, new float64) float64 { return old + new })
	}
}

// merge folds o into c in o's insertion order.
func (c *scaleCounts) merge(o *scaleCounts) {
	o.m.Each(func(k int, v float64) {
		c.m.Merge(k, v, func(old, new float64) float64 { return old + new })
	})
}

// fill writes the sparse counts into a dense WordCounts.
func (c *scaleCounts) fill(dense *lda.WordCounts) {
	c.m.Each(func(k int, v float64) {
		dense.G[k/c.v][k%c.v] += v
	})
}

// scalePass streams one machine's documents through the rejuvenation
// sweep, accumulating sparse topic-word counts on the machine's meter
// RNG.
func scalePass(m *sim.Meter, cfg Config, h lda.Hyper, model *lda.Model, src *sim.Source[[]int]) *scaleCounts {
	counts := newScaleCounts(cfg.V)
	src.Each(func(words []int) {
		chargeScaleDoc(m, cfg, len(words))
		counts.add(rejuvenate(m.RNG(), h, model, words))
	})
	return counts
}

// scaleUpdate redraws phi from the gathered real counts on the driver.
func scaleUpdate(cl *sim.Cluster, cfg Config, h lda.Hyper, profile sim.Profile, rng *randgen.RNG, model *lda.Model, gathered *lda.WordCounts, phase string) error {
	return cl.RunDriver(phase, func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		scaleWordCounts(gathered, cl.Scale())
		model.UpdatePhi(rng, h, gathered)
		return nil
	})
}

// scaleChain is the cross-engine convergence diagnostic: the per-word
// log-likelihood of machine 0's documents after one rejuvenation pass
// under a private RNG (deterministic, uncharged, and independent of the
// machines' sampling streams).
func scaleChain(cl *sim.Cluster, cfg Config, h lda.Hyper, model *lda.Model) float64 {
	rng := randgen.New(cfg.Seed ^ 0xd1a6)
	var ll float64
	words := 0
	machineDocSource(cl, cfg, 0).Each(func(w []int) {
		d := rejuvenate(rng, h, model, w)
		ll += model.LogLikelihood(d)
		words += len(w)
	})
	if words == 0 {
		return 0
	}
	return ll / float64(words)
}

// scaleStreamBytes is the simulated resident stream window per machine:
// a double buffer of chunk-sized document batches at the default chunk
// size. It is deliberately independent of the host's -chunk knob so the
// virtual-memory accounting (and OOM behaviour) cannot depend on a
// host-side setting.
func scaleStreamBytes(cfg Config) int64 {
	return 2 * int64(sim.DefaultChunkElems) * int64(8*cfg.AvgDocLen)
}

// RunScaleSpark runs the streamed scale formulation on the dataflow
// engine: a document RDD generated lazily per partition, one aggregate
// per iteration folding sparse counts, and a driver-side phi redraw.
func RunScaleSpark(cl *sim.Cluster, cfg Config, profile sim.Profile) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	srcs := docSources(cl, cfg, machines)

	data := dataflow.Generate(ctx, machines, func(d []int) int64 { return int64(8*len(d)) + 16 },
		func(p int, r *randgen.RNG) [][]int {
			return srcs[p].Materialize()
		}).SetName("docs").Cache()

	rng := randgen.New(cfg.Seed ^ 0x5ca1e)
	var model *lda.Model
	err := cl.RunDriver("lda-scale-init", func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Broadcast(model.Bytes(), "lda model"); err != nil {
			return res, fmt.Errorf("lda scale spark: broadcast: %w", err)
		}
		counts, err := dataflow.Aggregate(data,
			func() *scaleCounts { return newScaleCounts(cfg.V) },
			func(m *sim.Meter, acc *scaleCounts, words []int) *scaleCounts {
				chargeScaleDoc(m, cfg, len(words))
				acc.add(rejuvenate(m.RNG(), h, model, words))
				return acc
			},
			func(m *sim.Meter, a, b *scaleCounts) *scaleCounts {
				m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
				a.merge(b)
				return a
			},
		)
		if err != nil {
			return res, fmt.Errorf("lda scale spark iter %d: %w", iter, err)
		}
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		counts.fill(gathered)
		if err := scaleUpdate(cl, cfg, h, profile, rng, model, gathered, "lda-scale-update"); err != nil {
			return res, err
		}
		ctx.ReleaseBroadcast(model.Bytes())
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(scaleChain(cl, cfg, h, model))
	}
	res.SetMetric("loglike", scaleChain(cl, cfg, h, model))
	return res, nil
}

// Scale Giraph vertex ids: topic vertices at [0, T), one streaming
// super-vertex per machine at T and up.

// scaleSVVtx streams one machine's corpus; nothing is resident.
type scaleSVVtx struct {
	src *sim.Source[[]int]
}

// scaleTopicVtx owns one topic's gathered counts.
type scaleTopicVtx struct{ t int }

// scaleCountMsg carries one topic's sparse word counts.
type scaleCountMsg struct {
	wc *ordmap.Map[int, float64]
}

// RunScaleGiraph runs the streamed scale formulation on the BSP engine:
// the model rides the aggregator channel, each machine super-vertex
// streams its corpus and sends per-topic combined count messages, and
// the topic vertices gather them for the driver's phi redraw.
func RunScaleGiraph(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()

	g := bsp.NewGraph(cl)
	g.SetCombiner(func(a, b bsp.Msg) bsp.Msg {
		am := a.Data.(*scaleCountMsg)
		bm := b.Data.(*scaleCountMsg)
		bm.wc.Each(func(w int, v float64) {
			am.wc.Merge(w, v, func(old, new float64) float64 { return old + new })
		})
		return bsp.Msg{Data: am, Bytes: a.Bytes}
	})

	srcs := docSources(cl, cfg, machines)
	for mc, src := range srcs {
		bytes := int64(float64(src.Len()*8*cfg.AvgDocLen) * cl.Scale())
		g.AddVertex(bsp.VertexID(int64(cfg.T)+int64(mc)), &scaleSVVtx{src: src}, bytes, false, mc)
	}
	for t := 0; t < cfg.T; t++ {
		g.AddVertex(bsp.VertexID(t), &scaleTopicVtx{t: t}, int64(8*cfg.V), false, t%machines)
	}
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lda scale giraph: load: %w", err)
	}

	rng := randgen.New(cfg.Seed ^ 0x5ca1e)
	var model *lda.Model
	err := cl.RunDriver("lda-scale-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileJava)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	tBytes := int64(48 * cfg.V) // one topic's dense count view
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		// Superstep A: model distribution over the shared channel.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if tv, ok := v.Data.(*scaleTopicVtx); ok && tv.t == 0 {
				ctx.SetShared("model", model, model.Bytes())
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda scale giraph iter %d: model superstep: %w", iter, err)
		}
		// Superstep B: stream, rejuvenate, send per-topic combined counts.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			sv, ok := v.Data.(*scaleSVVtx)
			if !ok {
				return nil
			}
			m := ctx.Meter()
			byTopic := ordmap.New[int, *ordmap.Map[int, float64]]()
			sv.src.Each(func(words []int) {
				chargeScaleDoc(m, cfg, len(words))
				d := rejuvenate(m.RNG(), h, model, words)
				for i, w := range d.Words {
					wc := byTopic.GetOrInsert(d.Z[i], func() *ordmap.Map[int, float64] {
						return ordmap.New[int, float64]()
					})
					wc.Merge(w, 1, func(old, new float64) float64 { return old + new })
				}
			})
			byTopic.Each(func(t int, wc *ordmap.Map[int, float64]) {
				ctx.Send(bsp.VertexID(t), &scaleCountMsg{wc: wc}, tBytes)
			})
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda scale giraph iter %d: sample superstep: %w", iter, err)
		}
		// Superstep C: topic vertices gather their combined counts.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			tv, ok := v.Data.(*scaleTopicVtx)
			if !ok {
				return nil
			}
			for _, msg := range msgs {
				msg.Data.(*scaleCountMsg).wc.Each(func(w int, val float64) {
					gathered.G[tv.t][w] += val
				})
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("lda scale giraph iter %d: gather superstep: %w", iter, err)
		}
		if err := scaleUpdate(cl, cfg, h, sim.ProfileJava, rng, model, gathered, "lda-scale-update"); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(scaleChain(cl, cfg, h, model))
	}
	res.SetMetric("loglike", scaleChain(cl, cfg, h, model))
	return res, nil
}

// RunScaleGraphLab runs the streamed scale formulation on the GAS
// engine: one streaming vertex per (effective) machine, a
// map_reduce_vertices pass gathering sparse counts, and a driver phi
// redraw. The engine's boot clamp applies as everywhere else — GraphLab
// cannot boot beyond its cluster ceiling, so the sweep's larger columns
// run clamped.
func RunScaleGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	h := cfg.hyper()

	g := gas.NewGraph(cl, nil)
	machines := g.EffectiveMachines()
	srcs := docSources(cl, cfg, machines)
	for mc, src := range srcs {
		bytes := int64(float64(src.Len()*8*cfg.AvgDocLen) * cl.Scale())
		g.AddVertex(gas.VertexID(mc), &scaleSVVtx{src: src}, bytes, false, mc)
	}
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("lda scale graphlab: load: %w", err)
	}

	rng := randgen.New(cfg.Seed ^ 0x5ca1e)
	var model *lda.Model
	err := cl.RunDriver("lda-scale-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Model sync: every machine refreshes its phi view.
		err = g.TransformVertices(func(m *sim.Meter, v *gas.Vertex) {
			m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
		})
		if err != nil {
			return res, fmt.Errorf("lda scale graphlab iter %d: model sync: %w", iter, err)
		}
		out, err := g.MapReduceVertices(countsViewBytes(cfg.T, cfg.V),
			func(m *sim.Meter, v *gas.Vertex) any {
				return scalePass(m, cfg, h, model, v.Data.(*scaleSVVtx).src)
			},
			func(m *sim.Meter, a, b any) any {
				ac := a.(*scaleCounts)
				ac.merge(b.(*scaleCounts))
				return ac
			})
		if err != nil {
			return res, fmt.Errorf("lda scale graphlab iter %d: map-reduce: %w", iter, err)
		}
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		out.(*scaleCounts).fill(gathered)
		if err := scaleUpdate(cl, cfg, h, sim.ProfileCPP, rng, model, gathered, "lda-scale-update"); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(scaleChain(cl, cfg, h, model))
	}
	res.SetMetric("loglike", scaleChain(cl, cfg, h, model))
	return res, nil
}

// scaleCountsVG is the SimSQL scale VG: one invocation per machine
// group, streaming the machine's corpus through the rejuvenation sweep
// in C++ and emitting its nonzero (topic, word, count) cells as tuples.
type scaleCountsVG struct {
	cfg   Config
	h     lda.Hyper
	model *lda.Model
	srcs  []*sim.Source[[]int]
}

func (v *scaleCountsVG) Name() string { return "sv_lda_scale_counts" }
func (v *scaleCountsVG) OutSchema() relational.Schema {
	return relational.Schema{
		{Name: "topic", Kind: relational.KindInt},
		{Name: "word", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
	}
}
func (v *scaleCountsVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	counts := newScaleCounts(v.cfg.V)
	for _, row := range rows {
		src := v.srcs[row.Int(0)]
		m.ChargeOpsData(src.Len()*v.cfg.AvgDocLen, 2*lda.ZFlops(v.cfg.T), 1)
		src.Each(func(words []int) {
			counts.add(rejuvenate(m.RNG(), v.h, v.model, words))
		})
	}
	out := make([]relational.Tuple, 0, counts.m.Len())
	counts.m.Each(func(k int, val float64) {
		out = append(out, relational.T(float64(k/v.cfg.V), float64(k%v.cfg.V), val))
	})
	return out
}

// RunScaleSimSQL runs the streamed scale formulation on the relational
// engine: a generator-backed machine-group table drives the scale VG,
// whose nonzero count cells are summed with GROUP BY; the driver
// redraws phi. No chain state is ever materialized as tuples — the
// per-iteration tables are count-sized, which is what lets the SimSQL
// row sweep to 10,000 machines.
func RunScaleSimSQL(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	srcs := docSources(cl, cfg, machines)

	svT := relational.NewTable("docs_sv", relational.Ints("sv_id"), machines)
	for mc := 0; mc < machines; mc++ {
		svT.Parts[mc] = []relational.Tuple{relational.T(float64(mc))}
	}

	rng := randgen.New(cfg.Seed ^ 0x5ca1e)
	var model *lda.Model
	// Model init is one more MR job materializing the phi random table.
	cl.Advance(cl.Config().Cost.MRJobLaunch)
	err := cl.RunDriver("lda-scale-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := scaleReplicateModel(cl, model.Bytes()); err != nil {
			return res, err
		}
		vg := &scaleCountsVG{cfg: cfg, h: h, model: model, srcs: srcs}
		countsT, err := eng.Run("scale_counts", relational.AsModelP(relational.GroupAggP(
			relational.VGApplyP(vg, 0, relational.ScanT(svT), true),
			[]int{0, 1},
			[]relational.AggSpec{{Kind: relational.AggSum, Col: 2, Name: "val"}})))
		if err != nil {
			return res, fmt.Errorf("lda scale simsql iter %d: %w", iter, err)
		}
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		for _, t := range countsT.Rows() {
			gathered.G[t.Int(0)][t.Int(1)] = t.Float(2)
		}
		cl.Advance(cl.Config().Cost.MRJobLaunch)
		if err := scaleUpdate(cl, cfg, h, sim.ProfileCPP, rng, model, gathered, "lda-scale-update"); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(scaleChain(cl, cfg, h, model))
	}
	res.SetMetric("loglike", scaleChain(cl, cfg, h, model))
	return res, nil
}

// scaleReplicateModel charges shipping phi to every machine for VG
// parameterization.
func scaleReplicateModel(cl *sim.Cluster, bytes int64) error {
	n := cl.NumMachines()
	return cl.RunPhaseF("model-replicate", func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes))
		}
		return nil
	})
}

// RunScalePS runs the streamed scale formulation on the parameter-server
// engine: workers stream their corpus against a (possibly stale) phi
// snapshot and push count deltas; the servers fold them and the driver
// redraws phi. The resident footprint per worker is the stream window
// plus the model cache — the formulation the 10,000-machine column of
// fig-scale exists to exercise.
func RunScalePS(cl *sim.Cluster, cfg Config, psCfg psengine.Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	eng := psengine.New(cl, psCfg)

	srcs := docSources(cl, cfg, machines)
	err := eng.Load("lda-scale-load", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		words := 0
		srcs[w].Each(func(ws []int) { words += len(ws) })
		m.ChargeTuples(words)
		// The stream window is resident state of fixed size — the machine
		// reads its partition through it — so it is charged unscaled
		// (AllocData would multiply by S, turning the window back into a
		// materialized partition).
		return m.AllocModel(scaleStreamBytes(cfg), "ps lda stream window")
	})
	if err != nil {
		return res, fmt.Errorf("lda scale ps: load: %w", err)
	}

	rng := randgen.New(cfg.Seed ^ 0x5ca1e)
	var model *lda.Model
	err = cl.RunDriver("lda-scale-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
		model = lda.Init(rng, h)
		return nil
	})
	if err != nil {
		return res, err
	}
	if err := eng.AllocModel(model.Bytes()); err != nil {
		return res, fmt.Errorf("lda scale ps: model alloc: %w", err)
	}
	res.InitSec = sw.Lap()

	snaps := []*lda.Model{cloneLDAModel(model)}
	wire := float64(modelBytes(cfg.T, cfg.V))
	locals := make([]*scaleCounts, machines)
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		err := eng.RunCycle(psengine.Cycle{
			Name:      "lda-scale-cycle",
			PullBytes: wire,
			PushBytes: float64(countsViewBytes(cfg.T, cfg.V)),
			Compute: func(w, version int, m *sim.Meter) error {
				locals[w] = scalePass(m, cfg, h, snaps[version], srcs[w])
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
				locals[w].fill(gathered)
				locals[w] = nil
				return nil
			},
			Apply: func(m *sim.Meter) error {
				m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
				scaleWordCounts(gathered, cl.Scale())
				model.UpdatePhi(rng, h, gathered)
				snaps = append(snaps, cloneLDAModel(model))
				return nil
			},
		})
		if err != nil {
			return res, fmt.Errorf("lda scale ps iter %d: %w", iter, err)
		}
		for v := 0; v < len(snaps)-(eng.Staleness()+1); v++ {
			snaps[v] = nil
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(scaleChain(cl, cfg, h, model))
	}
	res.SetMetric("loglike", scaleChain(cl, cfg, h, model))
	return res, nil
}
