// Package ldatask implements the paper's Section 8 benchmark task — the
// NON-collapsed latent Dirichlet allocation Gibbs sampler — on all five
// platform engines, in the word-based, document-based and super-vertex
// granularities of Figure 4, plus the Spark-Java variant of Figure 6 and
// the parameter-server port of fig-ps.
//
// The simulation closely resembles the HMM one, but the model that must
// be learned (100 topics x 10,000 words) is about five times larger,
// "which appears to make the task a bit more difficult, especially for
// Giraph": SimSQL ends up the only platform able to run LDA on 100
// machines and 250 million documents.
package ldatask

import (
	"mlbench/internal/datagen"
	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Variant selects the granularity, as in the HMM task.
type Variant int

const (
	// VariantWord pushes every (word, z) through the platform.
	VariantWord Variant = iota
	// VariantDoc resamples a whole document per user-code invocation.
	VariantDoc
	// VariantSV blocks many documents into one platform element.
	VariantSV
)

// String names the variant as the paper's tables do.
func (v Variant) String() string {
	switch v {
	case VariantWord:
		return "word-based"
	case VariantDoc:
		return "document-based"
	default:
		return "super-vertex"
	}
}

// Config parameterizes one LDA run at paper scale.
type Config struct {
	T              int // topics (paper: 100)
	V              int // dictionary size (paper: 10,000)
	DocsPerMachine int // paper: 2.5M
	AvgDocLen      int // paper: ~210
	Iterations     int
	Variant        Variant
	SVPerMachine   int
	Seed           uint64
	// Sampler selects the token hot-path tier (dense scan, per-token
	// alias, or cached Metropolis-Hastings); the default dense tier is
	// byte-identical to the historical sampler.
	Sampler randgen.SamplerTier
	// Dataset names a datagen scenario reshaping the corpus (word/topic
	// skew, doc-length law, partition imbalance); empty is the historical
	// paper-shape generator, byte-identical to before the knob existed.
	// Validated upstream (RunSpec.Validate / datagen.ParseScenario).
	Dataset string
}

func (c Config) withDefaults() Config {
	if c.T == 0 {
		c.T = 100
	}
	if c.V == 0 {
		c.V = 10_000
	}
	if c.DocsPerMachine == 0 {
		c.DocsPerMachine = 2_500_000
	}
	if c.AvgDocLen == 0 {
		c.AvgDocLen = 210
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.SVPerMachine == 0 {
		c.SVPerMachine = 50
	}
	if c.Seed == 0 {
		c.Seed = 41
	}
	return c
}

// hyper returns the model hyperparameters.
func (c Config) hyper() lda.Hyper { return lda.Hyper{T: c.T, V: c.V, Alpha: 0.5, Beta: 0.1} }

// genMachineDocs deterministically generates one machine's documents with
// planted topic structure. A Dataset scenario reshapes the corpus (and
// this machine's share of it) while keeping the task's dimensions; the
// empty scenario is the historical generator, byte-identical.
func genMachineDocs(cl *sim.Cluster, cfg Config, machine int) [][]int {
	ds := datagen.ScenarioSpec(cfg.Dataset)
	n := datagen.MachineShare(ds, machine, cl.NumMachines(), task.RealCount(cl, cfg.DocsPerMachine))
	rng := randgen.New(cfg.Seed ^ cl.Config().Seed).Split(uint64(machine))
	topics := cfg.T / 10
	if topics < 2 {
		topics = 2
	}
	if ds != nil && ds.Corpus != nil {
		return datagen.MachineCorpus(ds, rng, n, cfg.V, cfg.AvgDocLen, topics)
	}
	return workload.GenCorpus(rng, workload.CorpusConfig{
		Docs: n, Vocab: cfg.V, AvgLen: cfg.AvgDocLen, Topics: topics,
		Sampler: cfg.Sampler,
	})
}

// refreshProposals rebuilds model's mhalias proposal cache (a no-op for
// the other tiers). Every call site is a serial point — engine setup,
// driver update sections, parameter-server snapshot clones — because the
// cache is shared read-only by the concurrent resampling. A nil meter
// skips cost accounting (pre-clock setup).
func refreshProposals(cfg Config, m *sim.Meter, model *lda.Model) {
	if cfg.Sampler != randgen.TierMHAlias {
		return
	}
	if m != nil {
		m.ChargeBulkAbs(lda.ProposalFlops(cfg.T, cfg.V))
	}
	model.RefreshProposals(cfg.hyper())
}

// modelBytes is the wire size of the topic-word matrix phi.
func modelBytes(t, v int) int64 { return int64(8 * t * v) }

// countsViewBytes is the simulated size of one exported g(t, w) count set
// (48 bytes per hash-map entry, as in the HMM task).
func countsViewBytes(t, v int) int64 { return int64(48 * t * v) }

// boxedCountBytes is the per-partition aggregation payload in the given
// language runtime: counts cross the framework as boxed dictionary
// entries, not packed arrays. tokens bounds the sparse entry count.
func boxedCountBytes(p sim.Profile, t, v, tokens int) int64 {
	entries := t * v
	if tokens < entries {
		entries = tokens
	}
	per := int64(24)
	switch p.Name {
	case "python":
		per = 112
	case "java":
		per = 80
	}
	return int64(entries) * per
}

// scaleWordCounts multiplies counts to paper scale.
func scaleWordCounts(c *lda.WordCounts, scale float64) {
	for t := 0; t < c.T; t++ {
		c.G[t].ScaleInPlace(scale)
	}
}

// recordQuality stores the final per-word log-likelihood over machine 0's
// documents (diagnostic only).
func recordQuality(cfg Config, m *lda.Model, docs []*lda.Doc, res *task.Result) {
	var ll float64
	words := 0
	for _, d := range docs {
		ll += m.LogLikelihood(d)
		words += len(d.Words)
	}
	if words > 0 {
		res.SetMetric("loglike", ll/float64(words))
	}
}
