package ldatask

import (
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 1000
	return sim.New(cfg)
}

func smallConfig() Config {
	return Config{T: 4, V: 120, DocsPerMachine: 60_000, AvgDocLen: 40, Iterations: 6, Seed: 19, SVPerMachine: 4}
}

func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations = %d, want %d", len(res.IterSecs), iters)
	}
	if res.InitSec <= 0 || res.AvgIterSec() <= 0 {
		t.Errorf("timings not positive: %+v", res.IterSecs)
	}
	ll, ok := res.Metrics["loglike"]
	if !ok {
		t.Fatal("no loglike metric")
	}
	// Uniform word likelihood is log(1/120) = -4.8; the skewed corpus
	// should be modeled much better.
	if ll < -4.8 {
		t.Errorf("per-word loglike = %v; model did not learn", ll)
	}
}

func TestSparkPythonDocLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), VariantDoc, sim.ProfilePython)
	checkResult(t, res, err, 6)
}

func TestSparkJavaSVLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), VariantSV, sim.ProfileJava)
	checkResult(t, res, err, 6)
}

func TestSparkWordRefused(t *testing.T) {
	if _, err := RunSpark(smallCluster(1), smallConfig(), VariantWord, sim.ProfilePython); err == nil {
		t.Fatal("word-based Spark LDA should not be available")
	}
}

func TestSimSQLAllVariantsLearn(t *testing.T) {
	for _, v := range []Variant{VariantWord, VariantDoc, VariantSV} {
		res, err := RunSimSQL(smallCluster(2), smallConfig(), v)
		checkResult(t, res, err, 6)
	}
}

func TestSimSQLGranularityOrdering(t *testing.T) {
	// Figure 4: word-based is by far the slowest, super-vertex the
	// fastest.
	cfg := Config{T: 10, V: 1000, DocsPerMachine: 250_000, AvgDocLen: 100, Iterations: 1, Seed: 19}
	word, err := RunSimSQL(smallCluster(2), cfg, VariantWord)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := RunSimSQL(smallCluster(2), cfg, VariantDoc)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := RunSimSQL(smallCluster(2), cfg, VariantSV)
	if err != nil {
		t.Fatal(err)
	}
	if !(word.AvgIterSec() > doc.AvgIterSec() && doc.AvgIterSec() > sv.AvgIterSec()) {
		t.Errorf("ordering wrong: word=%v doc=%v sv=%v", word.AvgIterSec(), doc.AvgIterSec(), sv.AvgIterSec())
	}
}

func TestGiraphDocLearns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig(), VariantDoc)
	checkResult(t, res, err, 6)
}

func TestGiraphSVLearns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig(), VariantSV)
	checkResult(t, res, err, 6)
}

func TestGiraphSVFailsAtHundredMachines(t *testing.T) {
	// Figure 4(b): Giraph's super-vertex LDA runs at 5 and 20 machines
	// but fails at 100.
	run := func(machines int) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 250_000
		cfg := Config{T: 100, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 19, SVPerMachine: 50}
		_, err := RunGiraph(sim.New(c), cfg, VariantSV)
		return err
	}
	if err := run(5); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(20); err != nil {
		t.Errorf("20 machines should run: %v", err)
	}
	if err := run(100); !sim.IsOOM(err) {
		t.Errorf("100 machines should OOM, got %v", err)
	}
}

func TestGraphLabSVLearns(t *testing.T) {
	res, err := RunGraphLab(smallCluster(2), smallConfig())
	checkResult(t, res, err, 6)
}

func TestGraphLabSVFailsAtTwentyMachines(t *testing.T) {
	// Figure 4(b): GraphLab runs at 5 machines, fails at 20 and beyond.
	run := func(machines int) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 250_000
		cfg := Config{T: 100, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 19, SVPerMachine: 50}
		_, err := RunGraphLab(sim.New(c), cfg)
		return err
	}
	if err := run(5); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(20); !sim.IsOOM(err) {
		t.Errorf("20 machines should OOM, got %v", err)
	}
}

func TestSparkFailsAtHundredMachines(t *testing.T) {
	// Figures 4(b) and 6: Spark LDA (Python and Java) dies at 100
	// machines; the single-reducer aggregation of boxed per-partition
	// count dictionaries plus two resident copies of the cached state RDD
	// exhaust an executor.
	run := func(machines int, profile sim.Profile) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 250_000
		cfg := Config{T: 100, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 19}
		_, err := RunSpark(sim.New(c), cfg, VariantSV, profile)
		return err
	}
	if err := run(5, sim.ProfilePython); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(100, sim.ProfilePython); !sim.IsOOM(err) {
		t.Errorf("100 machines (Python) should OOM, got %v", err)
	}
	if err := run(100, sim.ProfileJava); !sim.IsOOM(err) {
		t.Errorf("100 machines (Java) should OOM, got %v", err)
	}
}

func TestSparkJavaFasterThanPython(t *testing.T) {
	// Figure 6: the Java LDA is considerably faster per iteration.
	cfg := Config{T: 10, V: 1000, DocsPerMachine: 250_000, AvgDocLen: 100, Iterations: 2, Seed: 19}
	py, err := RunSpark(smallCluster(2), cfg, VariantSV, sim.ProfilePython)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := RunSpark(smallCluster(2), cfg, VariantSV, sim.ProfileJava)
	if err != nil {
		t.Fatal(err)
	}
	if jv.AvgIterSec() >= py.AvgIterSec() {
		t.Errorf("Java (%v) should beat Python (%v)", jv.AvgIterSec(), py.AvgIterSec())
	}
}
