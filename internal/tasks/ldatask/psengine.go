package ldatask

import (
	"fmt"

	"mlbench/internal/linalg"
	"mlbench/internal/models/lda"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// cloneLDAModel snapshots phi for a stale worker cache.
func cloneLDAModel(m *lda.Model) *lda.Model {
	c := &lda.Model{T: m.T, V: m.V, Phi: make([]linalg.Vec, m.T)}
	for t := 0; t < m.T; t++ {
		c.Phi[t] = m.Phi[t].Clone()
	}
	return c
}

// RunPS implements the non-collapsed LDA Gibbs sampler on the
// parameter-server engine: the 100 x 10,000 phi matrix is exactly the
// model LightLDA-style systems shard — workers resample z/theta against
// a cached (possibly stale) phi, push dense topic-word count deltas, the
// servers fold them per parameter range, and the driver redraws phi.
// This is the workload where the parameter server's cheap asynchronous
// cycles pay off most: the per-cycle model traffic that sinks Giraph at
// scale is amortized over the staleness window.
func RunPS(cl *sim.Cluster, cfg Config, psCfg psengine.Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	eng := psengine.New(cl, psCfg)

	rng := randgen.New(cfg.Seed ^ 0x1da3)
	model := lda.Init(rng, h)

	machineDocs := make([][]*lda.Doc, machines)
	for mc := 0; mc < machines; mc++ {
		words := genMachineDocs(cl, cfg, mc)
		docs := make([]*lda.Doc, len(words))
		for i, w := range words {
			docs[i] = lda.InitDoc(rng, w, h)
		}
		machineDocs[mc] = docs
	}
	err := eng.Load("lda-ps-load", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		var words int
		for _, d := range machineDocs[w] {
			words += len(d.Words)
		}
		m.ChargeTuples(words)
		return m.AllocData(int64(16*words)+int64((8*cfg.T+64)*len(machineDocs[w])), "ps lda docs")
	})
	if err != nil {
		return res, fmt.Errorf("lda ps: load: %w", err)
	}
	if err := eng.AllocModel(modelBytes(cfg.T, cfg.V)); err != nil {
		return res, fmt.Errorf("lda ps: model alloc: %w", err)
	}
	res.InitSec = sw.Lap()

	// Each snapshot carries its own proposal cache: workers on stale
	// versions keep MH-proposing from the tables that match their phi
	// snapshot (the accept ratio corrects against that same snapshot).
	snap0 := cloneLDAModel(model)
	refreshProposals(cfg, nil, snap0)
	snaps := []*lda.Model{snap0}
	wire := float64(modelBytes(cfg.T, cfg.V))
	locals := make([]*lda.WordCounts, machines)
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered := lda.NewWordCounts(cfg.T, cfg.V)
		err := eng.RunCycle(psengine.Cycle{
			Name:      "lda-ps-cycle",
			PullBytes: wire,
			PushBytes: wire,
			Compute: func(w, version int, m *sim.Meter) error {
				phi := snaps[version]
				local := lda.NewWordCounts(cfg.T, cfg.V)
				for _, doc := range machineDocs[w] {
					m.ChargeTuples(len(doc.Words))
					m.ChargeBulk(float64(len(doc.Words)) * lda.ZFlopsTier(cfg.Sampler, cfg.T))
					phi.ResampleZTier(m.RNG(), doc, cfg.Sampler)
					doc.ResampleTheta(m.RNG(), h)
					local.Accumulate(doc, cl.Scale())
				}
				locals[w] = local
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				m.ChargeLinalgAbs(1, float64(cfg.T*cfg.V), 1)
				for t := 0; t < cfg.T; t++ {
					psengine.FoldDense(gathered.G[t], locals[w].G[t])
				}
				return nil
			},
			Apply: func(m *sim.Meter) error {
				m.ChargeLinalgAbs(cfg.T, float64(cfg.V), 1)
				model.UpdatePhi(rng, h, gathered)
				snap := cloneLDAModel(model)
				refreshProposals(cfg, m, snap)
				snaps = append(snaps, snap)
				return nil
			},
		})
		if err != nil {
			return res, fmt.Errorf("lda ps iter %d: %w", iter, err)
		}
		for v := 0; v < len(snaps)-(eng.Staleness()+1); v++ {
			snaps[v] = nil
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(cfg, model, machineDocs[0], res)
	return res, nil
}
