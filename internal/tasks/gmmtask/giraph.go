package gmmtask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Giraph vertex ids reuse the layout of the GraphLab graph: clusters at
// [0, K), the cluster-membership (mixture) vertex at mixID, data at
// dataBase and up.

// bspDataVtx is a per-point Giraph vertex.
type bspDataVtx struct {
	x linalg.Vec
	c int
}

// bspSVVtx is a super-vertex block [lo, hi) of one machine's point
// stream, regenerated on each walk rather than held resident.
type bspSVVtx struct {
	src    *sim.Source[linalg.Vec]
	lo, hi int
}

// each streams the block's points through fn in stream order.
func (v *bspSVVtx) each(fn func(linalg.Vec)) { v.src.EachRange(v.lo, v.hi, fn) }

// bspClusVtx is one mixture component.
type bspClusVtx struct{ k int }

// bspMixVtx is the cluster-membership vertex that owns pi.
type bspMixVtx struct{}

// bspModelMsg carries one cluster's parameters.
type bspModelMsg struct {
	k  int
	mu linalg.Vec
}

// bspStatMsg carries the (n, sum, sq) contribution to one cluster, the
// payload the paper's combiner aggregates.
type bspStatMsg struct {
	n   float64
	sum linalg.Vec
	sq  *linalg.Mat
}

// RunGiraph implements the paper's Section 5.4 Giraph GMM: no explicit
// edges (a naming scheme addresses the cluster vertices), per-iteration
// supersteps of model distribution, membership sampling with combined
// statistics messages, and model update. In the per-point formulation the
// cluster vertices deliver the model triple to every data vertex
// individually — fine at 5 and 20 machines, fatal at 100 machines and at
// 100 dimensions (Figure 1(a)), because the in-flight fraction of the
// superstep's traffic grows with the cluster. The super-vertex
// formulation (Figure 1(c)) batches points and uses the aggregator-based
// shared channel for the model, so it runs everywhere (though Java's
// high-dimensional linear algebra keeps the 100-d variant very slow).
func RunGiraph(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()

	g := bsp.NewGraph(cl)
	combiner := func(a, b bsp.Msg) bsp.Msg {
		am, aok := a.Data.(*bspStatMsg)
		bm, bok := b.Data.(*bspStatMsg)
		if !aok || !bok {
			// Model messages to distinct data vertices never share a
			// destination, so only stat messages combine.
			return bsp.Msg{Data: []bsp.Msg{a, b}, Bytes: a.Bytes + b.Bytes}
		}
		am.n += bm.n
		bm.sum.AddTo(am.sum)
		am.sq.AddInPlace(bm.sq)
		return bsp.Msg{Data: am, Bytes: a.Bytes}
	}
	if !cfg.DisableCombiner {
		g.SetCombiner(combiner)
	}

	var dataIDs []bsp.VertexID
	srcs := machineSources(cl, cfg, machines)
	if cfg.SuperVertex {
		for mc, src := range srcs {
			n := src.Len()
			nsv := cfg.SVPerMachine
			if nsv > n {
				nsv = n
			}
			for s := 0; s < nsv; s++ {
				lo, hi := s*n/nsv, (s+1)*n/nsv
				id := bsp.VertexID(int64(dataBase) + int64(mc*cfg.SVPerMachine+s))
				bytes := int64(float64((hi-lo)*8*cfg.D) * cl.Scale())
				g.AddVertex(id, &bspSVVtx{src: src, lo: lo, hi: hi}, bytes, false, mc)
				dataIDs = append(dataIDs, id)
			}
		}
	} else {
		// Per-point vertices pin their point by design (the formulation
		// the paper shows failing); generation streams.
		next := int64(dataBase)
		for mc, src := range srcs {
			m := mc
			src.Each(func(x linalg.Vec) {
				g.AddVertex(bsp.VertexID(next), &bspDataVtx{x: x, c: -1}, int64(8*cfg.D)+16, true, m)
				dataIDs = append(dataIDs, bsp.VertexID(next))
				next++
			})
		}
	}
	for k := 0; k < cfg.K; k++ {
		g.AddVertex(bsp.VertexID(k), &bspClusVtx{k: k}, modelMsgBytes(cfg.D), false, k%machines)
	}
	g.AddVertex(bsp.VertexID(int64(mixID)), &bspMixVtx{}, int64(8*cfg.K), false, 0)

	if err := g.Load(); err != nil {
		return res, fmt.Errorf("gmm giraph: load: %w", err)
	}

	// Initialization: hyperparameters (aggregator pass), model init on
	// the master, and random initial memberships.
	mean, variance := momentsOfSources(srcs, cfg.D)
	h := gmm.HyperFromMoments(cfg.K, mean, variance)
	rng := randgen.New(cfg.Seed ^ 0x61a4)
	var params *gmm.Params
	err := cl.RunDriver("gmm-giraph-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileJava)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		params, e = gmm.Init(rng, h)
		return e
	})
	if err != nil {
		return res, err
	}
	// One superstep assigns initial memberships (and charges the per-point
	// pass the paper's 18-second init reflects).
	err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
		if d, ok := v.Data.(*bspDataVtx); ok {
			d.c = ctx.Meter().RNG().Intn(cfg.K)
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("gmm giraph: init step: %w", err)
	}
	res.InitSec = sw.Lap()

	statsBy := func() *gmm.Stats { return gmm.NewStats(cfg.K, cfg.D) }
	gathered := statsBy()

	mBytes := modelMsgBytes(cfg.D)
	sBytes := statBytes(cfg.D)

	diagSrc := srcs[0]
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered = statsBy()
		// Superstep A: model distribution. Per-point: each cluster vertex
		// sends its triple to every data vertex. Super-vertex: the model
		// rides the shared (aggregator) channel.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			switch d := v.Data.(type) {
			case *bspClusVtx:
				if cfg.SuperVertex {
					if d.k == 0 {
						ctx.SetShared("model", params, params.Bytes())
					}
				} else {
					for _, dst := range dataIDs {
						ctx.Send(dst, &bspModelMsg{k: d.k, mu: params.Mu[d.k]}, mBytes)
					}
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("gmm giraph iter %d: model superstep: %w", iter, err)
		}
		// Superstep B: data vertices sample memberships and send combined
		// statistics to the cluster vertices; counts go to the
		// cluster-membership vertex via an aggregator.
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			m := ctx.Meter()
			samplePt := func(x linalg.Vec) int {
				// K Mallet density calls plus the scatter outer product.
				m.ChargeLinalg(cfg.K+1, (gmm.MembershipFlops(cfg.K, cfg.D)+float64(cfg.D*cfg.D))/float64(cfg.K+1), cfg.D)
				return params.SampleMembership(m.RNG(), x)
			}
			emit := func(k int, x linalg.Vec) {
				sq := linalg.NewMat(cfg.D, cfg.D)
				sq.AddOuter(1, x, x)
				ctx.Send(bsp.VertexID(k), &bspStatMsg{n: 1, sum: x.Clone(), sq: sq}, sBytes)
			}
			switch d := v.Data.(type) {
			case *bspDataVtx:
				d.c = samplePt(d.x)
				emit(d.c, d.x)
			case *bspSVVtx:
				// Batch: sample all points, pre-aggregate, send K messages.
				local := statsBy()
				d.each(func(x linalg.Vec) {
					local.Add(samplePt(x), x, 1)
				})
				for k := 0; k < cfg.K; k++ {
					if local.N[k] == 0 {
						continue
					}
					ctx.Send(bsp.VertexID(k), &bspStatMsg{n: local.N[k] * cl.Scale(), sum: local.Sum[k].Scale(cl.Scale()), sq: local.SumSq[k].Clone().ScaleInPlace(cl.Scale())}, sBytes)
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("gmm giraph iter %d: sample superstep: %w", iter, err)
		}
		// Superstep C: cluster vertices merge their combined statistics;
		// vertex state is updated on the master afterwards (the paper's
		// model draw is model-sized work).
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if cv, ok := v.Data.(*bspClusVtx); ok {
				for _, msg := range msgs {
					sm := msg.Data.(*bspStatMsg)
					gathered.N[cv.k] += sm.n
					sm.sum.AddTo(gathered.Sum[cv.k])
					gathered.SumSq[cv.k].AddInPlace(sm.sq)
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("gmm giraph iter %d: gather superstep: %w", iter, err)
		}
		if !cfg.SuperVertex {
			scaleStats(gathered, cl.Scale())
		}
		err = cl.RunDriver("gmm-giraph-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileJava)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, h, params, gathered)
		})
		if err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(diagSrc, params))
	}
	recordQuality(cl, cfg, params, res)
	return res, nil
}
