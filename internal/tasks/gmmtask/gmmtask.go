// Package gmmtask implements the paper's Section 5 benchmark task — the
// Gaussian mixture model Gibbs sampler — on all five platform engines,
// in both the "initial" per-point formulations and the super-vertex
// formulations of Figure 1, plus the parameter-server port of fig-ps.
package gmmtask

import (
	"mlbench/internal/datagen"
	"mlbench/internal/linalg"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Config parameterizes one GMM benchmark run. Counts are at paper scale;
// the cluster's Scale factor determines how many real points exist.
type Config struct {
	K                int // mixture components (paper: 10)
	D                int // dimensions (paper: 10 or 100)
	PointsPerMachine int // paper: 10M (10-d) or 1M (100-d)
	Iterations       int
	SuperVertex      bool
	SVPerMachine     int // super vertices per machine (default 80)
	Seed             uint64
	// DisableCombiner turns off Giraph's message combiner (the Section
	// 5.4 ablation: "Giraph's combiner functionality is used to reduce
	// communication and increase load balancing during aggregation").
	DisableCombiner bool
	// Dataset names a datagen scenario reshaping the point cloud
	// (covariance conditioning, mixture imbalance, partition imbalance);
	// empty is the historical paper-shape generator, byte-identical to
	// before the knob existed. Validated upstream (RunSpec.Validate /
	// datagen.ParseScenario).
	Dataset string
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 10
	}
	if c.D == 0 {
		c.D = 10
	}
	if c.PointsPerMachine == 0 {
		c.PointsPerMachine = 10_000_000
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.SVPerMachine == 0 {
		c.SVPerMachine = 80
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// machineSource streams one machine's real points as a regenerable
// partition. All platforms share the same data for a given cluster seed,
// so learned models are comparable across engines. A Dataset scenario
// reshapes the mixture (and this machine's share of it); the empty
// scenario replays the historical generator's draw pattern exactly, so
// the element stream is byte-identical to the slices the ports used to
// materialize.
func machineSource(cl *sim.Cluster, cfg Config, machine int) *sim.Source[linalg.Vec] {
	ds := datagen.ScenarioSpec(cfg.Dataset)
	n := datagen.MachineShare(ds, machine, cl.NumMachines(), task.RealCount(cl, cfg.PointsPerMachine))
	return sim.NewSource(n, cl.ChunkElems(), func() func() linalg.Vec {
		root := randgen.New(cfg.Seed ^ cl.Config().Seed)
		if ds != nil && ds.GMM != nil {
			return datagen.OpenMachineGMM(ds, root, machine, cfg.K, cfg.D)
		}
		mu := workload.PlantedMeans(root, cfg.K, cfg.D, 8) // shared planted mixture
		return workload.OpenGMMAt(root.Split(uint64(machine)), mu)
	})
}

// machineSources opens every machine's point stream.
func machineSources(cl *sim.Cluster, cfg Config, machines int) []*sim.Source[linalg.Vec] {
	srcs := make([]*sim.Source[linalg.Vec], machines)
	for mc := range srcs {
		srcs[mc] = machineSource(cl, cfg, mc)
	}
	return srcs
}

// momentsOfSources computes the mean and per-dimension variance of the
// concatenated machine streams in two passes, accumulating one point at
// a time in machine order — the same floating-point order as the
// historical single-slice momentsOf over all machines' points.
func momentsOfSources(srcs []*sim.Source[linalg.Vec], d int) (linalg.Vec, linalg.Vec) {
	mean := linalg.NewVec(d)
	variance := linalg.NewVec(d)
	n := 0
	for _, src := range srcs {
		n += src.Len()
		src.Each(func(x linalg.Vec) { x.AddTo(mean) })
	}
	mean.ScaleInPlace(1 / float64(n))
	for _, src := range srcs {
		src.Each(func(x linalg.Vec) {
			for i := range x {
				df := x[i] - mean[i]
				variance[i] += df * df
			}
		})
	}
	variance.ScaleInPlace(1 / float64(n))
	return mean, variance
}

// pointBytes is the simulated in-memory size of one data point under a
// language runtime: payload plus per-object representation overhead
// (Python tuples of floats are far heavier than C++ structs).
func pointBytes(p sim.Profile, d int) int64 {
	switch p.Name {
	case "python":
		return int64(8*d) + 112
	case "java":
		return int64(8*d) + 48
	default:
		return int64(8*d) + 16
	}
}

// statBytes is the wire size of one per-cluster sufficient-statistics
// record (count, sum vector, raw second moment).
func statBytes(d int) int64 { return int64(8 * (1 + d + d*d)) }

// modelMsgBytes is the wire size of one cluster's parameters
// (mu, Sigma, pi) — the paper's broadcast triple.
func modelMsgBytes(d int) int64 { return int64(8 * (1 + d + d*d)) }
