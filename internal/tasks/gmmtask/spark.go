package gmmtask

import (
	"fmt"

	"mlbench/internal/dataflow"
	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// stat is the per-cluster map output of the paper's sample_mem step:
// (1, x, x x^T), aggregated by reduceByKey.
type stat struct {
	n   float64
	sum linalg.Vec
	sq  *linalg.Mat
}

func addStat(a, b stat) stat {
	a.n += b.n
	b.sum.AddTo(a.sum)
	a.sq.AddInPlace(b.sq)
	return a
}

// RunSpark implements the paper's Section 5.1 Spark GMM: a cached data
// RDD, empirical hyperparameters, and a per-iteration pipeline of
// map+reduceByKey (membership sampling and statistics aggregation),
// a model-update job and a counts job. profile selects Spark-Python or
// Spark-Java (Figure 1(b)). With cfg.SuperVertex, statistics are
// pre-aggregated per partition via mapPartitions (Figure 1(c)) — which,
// as the paper observes, barely helps since the interpreter still touches
// every point.
func RunSpark(cl *sim.Cluster, cfg Config, profile sim.Profile) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)

	machines := cl.NumMachines()
	parts := machines * cl.Config().Cores
	srcs := machineSources(cl, cfg, machines)
	// Partition p holds block p/machines of machine p%machines's stream
	// (partition p lives on machine p%machines — dataflow.machineFor),
	// split evenly over the machine's core-partitions. Generation is
	// lazy: nothing is resident until an action computes a partition.
	local := parts / machines
	ptBytes := pointBytes(profile, cfg.D)
	data := dataflow.Generate(ctx, parts, func(linalg.Vec) int64 { return ptBytes },
		func(p int, r *randgen.RNG) []linalg.Vec {
			src := srcs[p%machines]
			i := p / machines
			lo := i * src.Len() / local
			hi := (i + 1) * src.Len() / local
			return src.MaterializeRange(lo, hi)
		}).SetName("data").Cache()

	// Hyperparameters: count, mean, and diagonal variance of the data.
	type moments struct {
		n    float64
		sum  linalg.Vec
		sumq linalg.Vec
	}
	mom, err := dataflow.Aggregate(data,
		func() moments { return moments{sum: linalg.NewVec(cfg.D), sumq: linalg.NewVec(cfg.D)} },
		func(m *sim.Meter, acc moments, x linalg.Vec) moments {
			m.ChargeLinalg(2, float64(2*cfg.D), cfg.D)
			acc.n++
			for i, v := range x {
				acc.sum[i] += v
				acc.sumq[i] += v * v
			}
			return acc
		},
		func(m *sim.Meter, a, b moments) moments {
			a.n += b.n
			b.sum.AddTo(a.sum)
			b.sumq.AddTo(a.sumq)
			return a
		},
	)
	if err != nil {
		return res, fmt.Errorf("gmm spark: hyperparameters: %w", err)
	}
	mean := mom.sum.Scale(1 / mom.n)
	variance := make(linalg.Vec, cfg.D)
	for i := range variance {
		variance[i] = mom.sumq[i]/mom.n - mean[i]*mean[i]
	}
	h := gmm.HyperFromMoments(cfg.K, mean, variance)

	driverRNG := randgen.New(cfg.Seed ^ 0x5a11)
	var params *gmm.Params
	err = cl.RunDriver("gmm-init", func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var err error
		params, err = gmm.Init(driverRNG, h)
		return err
	})
	if err != nil {
		return res, fmt.Errorf("gmm spark: init: %w", err)
	}
	res.InitSec = sw.Lap()

	sBytes := statBytes(cfg.D) + 32
	sizer := func(dataflow.Pair[int, stat]) int64 { return sBytes }
	samplePoint := func(m *sim.Meter, x linalg.Vec) dataflow.Pair[int, stat] {
		// One library call per mixture component (the density
		// evaluations), plus the outer product.
		m.ChargeLinalg(cfg.K, gmm.MembershipFlops(cfg.K, cfg.D)/float64(cfg.K), cfg.D)
		m.ChargeLinalg(1, float64(cfg.D*cfg.D), cfg.D)
		k := params.SampleMembership(m.RNG(), x)
		sq := linalg.NewMat(cfg.D, cfg.D)
		sq.AddOuter(1, x, x)
		return dataflow.Pair[int, stat]{K: k, V: stat{n: 1, sum: x.Clone(), sq: sq}}
	}
	combine := func(m *sim.Meter, a, b stat) stat {
		m.ChargeLinalg(1, float64(cfg.D*cfg.D+cfg.D), cfg.D)
		return addStat(a, b)
	}

	diagSrc := srcs[0]
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Task closures serialize the model to every executor.
		if err := ctx.Broadcast(params.Bytes(), "gmm model"); err != nil {
			return res, fmt.Errorf("gmm spark: broadcast: %w", err)
		}

		var mapped *dataflow.RDD[dataflow.Pair[int, stat]]
		if cfg.SuperVertex {
			// "Super vertex" Spark: pre-aggregate per partition in user
			// code; the interpreter still loops over every point.
			mapped = dataflow.MapPartitions(data, sizer, func(m *sim.Meter, part []linalg.Vec) []dataflow.Pair[int, stat] {
				local := make([]*stat, cfg.K)
				for _, x := range part {
					kv := samplePoint(m, x)
					if local[kv.K] == nil {
						s := kv.V
						local[kv.K] = &s
					} else {
						*local[kv.K] = addStat(*local[kv.K], kv.V)
					}
				}
				var out []dataflow.Pair[int, stat]
				for k, s := range local {
					if s != nil {
						out = append(out, dataflow.Pair[int, stat]{K: k, V: *s})
					}
				}
				return out
			})
		} else {
			mapped = dataflow.Map(data, sizer, samplePoint)
		}
		agg := dataflow.ReduceByKey(mapped, combine).AsModel().SetName("c_agg")
		pairs, err := dataflow.CollectPairs(agg)
		if err != nil {
			return res, fmt.Errorf("gmm spark: aggregate: %w", err)
		}
		// Model update jobs (the paper's map-only job plus the counts
		// job) run over the tiny aggregated RDD; we fold them into one
		// driver-side update plus their job-launch overheads.
		cl.Advance(2 * cl.Config().Cost.SparkJobLaunch)
		err = cl.RunDriver("gmm-update", func(m *sim.Meter) error {
			m.SetProfile(profile)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			stats := gmm.NewStats(cfg.K, cfg.D)
			for _, p := range pairs {
				stats.N[p.K] += p.V.n
				p.V.sum.AddTo(stats.Sum[p.K])
				stats.SumSq[p.K].AddInPlace(p.V.sq)
			}
			scaleStats(stats, cl.Scale())
			return gmm.UpdateParams(driverRNG, h, params, stats)
		})
		if err != nil {
			return res, fmt.Errorf("gmm spark: update: %w", err)
		}
		ctx.ReleaseBroadcast(params.Bytes())
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(diagSrc, params))
	}
	recordQuality(cl, cfg, params, res)
	return res, nil
}

// scaleStats converts real-data statistics to paper scale so posterior
// concentration matches the paper's data volumes.
func scaleStats(s *gmm.Stats, scale float64) {
	for k := 0; k < s.K; k++ {
		s.N[k] *= scale
		s.Sum[k].ScaleInPlace(scale)
		s.SumSq[k].ScaleInPlace(scale)
	}
}

// chainPoint is the per-iteration quality statistic shared by all five
// GMM implementations: the model's average log-likelihood over machine
// 0's real data, streamed point by point. With matched data seeds every
// platform scores the same points, so the resulting chains are directly
// comparable (not charged). The running sum adds one point at a time —
// the same accumulation order as a single LogLikelihood call over the
// materialized slice, so the chain is byte-identical to the pre-streamed
// implementation.
func chainPoint(src *sim.Source[linalg.Vec], params *gmm.Params) float64 {
	var total float64
	one := make([]linalg.Vec, 1)
	src.Each(func(x linalg.Vec) {
		one[0] = x
		total += params.LogLikelihood(one)
	})
	return total / float64(src.Len())
}

// recordQuality stores the final model log-likelihood over machine 0's
// real data (a cross-platform comparable diagnostic; not charged).
func recordQuality(cl *sim.Cluster, cfg Config, params *gmm.Params, res *task.Result) {
	res.SetMetric("loglike", chainPoint(machineSource(cl, cfg, 0), params))
}
