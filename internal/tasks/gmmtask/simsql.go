package gmmtask

import (
	"fmt"

	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// memberVG is the paper's multinomial_membership VG function: invoked
// once per data point (the parameter group is the point's dimension
// tuples), it samples the point's cluster under the captured model.
type memberVG struct {
	d      int
	params *gmm.Params
}

func (v *memberVG) Name() string { return "multinomial_membership" }
func (v *memberVG) OutSchema() relational.Schema {
	return relational.Ints("data_id", "clus_id")
}
func (v *memberVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	x := make(linalg.Vec, v.d)
	for _, t := range rows {
		x[t.Int(1)] = t.Float(2)
	}
	m.ChargeOps(v.params.K, gmm.MembershipFlops(v.params.K, v.d)/float64(v.params.K), v.d)
	k := v.params.SampleMembership(m.RNG(), x)
	return []relational.Tuple{relational.T(rows[0].Float(0), float64(k))}
}

// svStatsVG is the super-vertex VG: one invocation per machine-sized
// group of points, sampling memberships and pre-aggregating the
// sufficient statistics in C++ before emitting them as tuples — the
// tactic that made SimSQL the fastest 100-dimensional GMM in Figure 1(c).
type svStatsVG struct {
	d, k   int
	params *gmm.Params
	srcs   []*sim.Source[linalg.Vec] // indexed by super-vertex id
}

func (v *svStatsVG) Name() string { return "sv_gmm_stats" }
func (v *svStatsVG) OutSchema() relational.Schema {
	return relational.Schema{
		{Name: "clus_id", Kind: relational.KindInt},
		{Name: "dim1", Kind: relational.KindInt},
		{Name: "dim2", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
	}
}
func (v *svStatsVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	stats := gmm.NewStats(v.k, v.d)
	for _, row := range rows {
		src := v.srcs[row.Int(0)]
		m.ChargeOpsData(src.Len()*v.k, (gmm.MembershipFlops(v.k, v.d)+float64(v.d*v.d))/float64(v.k), v.d)
		src.Each(func(x linalg.Vec) {
			stats.Add(v.params.SampleMembership(m.RNG(), x), x, 1)
		})
	}
	// Emit the pre-aggregated statistics: counts at (d1=-1,d2=-1), sums
	// at (d1, -1), second moments at (d1, d2).
	var out []relational.Tuple
	for k := 0; k < v.k; k++ {
		out = append(out, relational.T(float64(k), -1, -1, stats.N[k]))
		for i := 0; i < v.d; i++ {
			out = append(out, relational.T(float64(k), float64(i), -1, stats.Sum[k][i]))
			for j := 0; j < v.d; j++ {
				out = append(out, relational.T(float64(k), float64(i), float64(j), stats.SumSq[k].At(i, j)))
			}
		}
	}
	return out
}

// RunSimSQL implements the paper's Section 5.2 SimSQL GMM. The data
// relation is stored tuple-per-dimension; each iteration runs the
// membership VG over every point, then computes the sufficient
// statistics with joins and GROUP BY aggregation — the second-moment
// aggregation materializes one tuple per (point, dim1, dim2), which is
// the "costly GROUP BY" that made SimSQL twice as slow as Spark at 100
// dimensions. With cfg.SuperVertex the statistics are pre-aggregated in
// a C++ VG (one group per machine) instead.
func RunSimSQL(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()

	// The data relation (data_id, dim_id, val) is generator-backed: one
	// partition per machine, streamed tuple-per-dimension from the
	// machine's point source whenever a scan walks it, never resident.
	dataT := relational.NewTable("data", relational.Schema{
		{Name: "data_id", Kind: relational.KindInt},
		{Name: "dim_id", Kind: relational.KindInt},
		{Name: "val", Kind: relational.KindFloat},
	}, machines)
	dataT.Scaled = true
	srcs := machineSources(cl, cfg, machines)
	idBase := make([]int, machines)
	dataT.GenRows = make([]int, machines)
	nextID := 0
	for mc, src := range srcs {
		idBase[mc] = nextID
		nextID += src.Len()
		dataT.GenRows[mc] = src.Len() * cfg.D
	}
	dataT.Gen = func(part int, yield func(relational.Tuple)) {
		id := idBase[part]
		srcs[part].Each(func(x linalg.Vec) {
			for d, v := range x {
				yield(relational.T(float64(id), float64(d), v))
			}
			id++
		})
	}

	// Initialization: empirical hyperparameters via two aggregation
	// queries (mean and variance per dimension), then the initial model.
	meanT, err := eng.Run("mean_prior", relational.AsModelP(relational.GroupAggP(
		relational.ScanT(dataT), []int{1},
		[]relational.AggSpec{{Kind: relational.AggAvg, Col: 2, Name: "avg"}})))
	if err != nil {
		return res, fmt.Errorf("gmm simsql: mean: %w", err)
	}
	varT, err := eng.Run("var_prior", relational.AsModelP(relational.GroupAggP(
		relational.ProjectP(relational.ScanT(dataT),
			relational.Schema{{Name: "dim_id", Kind: relational.KindInt}, {Name: "sq", Kind: relational.KindFloat}},
			func(t relational.Tuple) relational.Tuple {
				return relational.T(t.Float(1), t.Float(2)*t.Float(2))
			}),
		[]int{0},
		[]relational.AggSpec{{Kind: relational.AggAvg, Col: 1, Name: "avg_sq"}})))
	if err != nil {
		return res, fmt.Errorf("gmm simsql: variance: %w", err)
	}
	mean := make(linalg.Vec, cfg.D)
	for _, t := range meanT.Rows() {
		mean[t.Int(0)] = t.Float(1)
	}
	variance := make(linalg.Vec, cfg.D)
	for _, t := range varT.Rows() {
		variance[t.Int(0)] = t.Float(1) - mean[t.Int(0)]*mean[t.Int(0)]
	}
	h := gmm.HyperFromMoments(cfg.K, mean, variance)

	rng := randgen.New(cfg.Seed ^ 0x591)
	var params *gmm.Params
	// The three model-initialization random tables are three more MR jobs.
	cl.Advance(3 * cl.Config().Cost.MRJobLaunch)
	err = cl.RunDriver("gmm-init-tables", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var err error
		params, err = gmm.Init(rng, h)
		return err
	})
	if err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	// Super-vertex parameter table: one row per machine-group.
	svT := relational.NewTable("data_sv", relational.Ints("sv_id"), machines)
	for mc := 0; mc < machines; mc++ {
		svT.Parts[mc] = []relational.Tuple{relational.T(float64(mc))}
	}

	diagSrc := srcs[0]
	for iter := 0; iter < cfg.Iterations; iter++ {
		// The model tables are replicated to every machine for VG
		// parameterization.
		if err := replicateModel(cl, params.Bytes()); err != nil {
			return res, err
		}
		stats := gmm.NewStats(cfg.K, cfg.D)
		if cfg.SuperVertex {
			vg := &svStatsVG{d: cfg.D, k: cfg.K, params: params, srcs: srcs}
			statsT, err := eng.Run("sv_stats", relational.AsModelP(relational.GroupAggP(
				relational.VGApplyP(vg, 0, relational.ScanT(svT), true),
				[]int{0, 1, 2},
				[]relational.AggSpec{{Kind: relational.AggSum, Col: 3, Name: "val"}})))
			if err != nil {
				return res, fmt.Errorf("gmm simsql sv iter %d: %w", iter, err)
			}
			fillStats(stats, statsT.Rows())
		} else {
			memT, err := eng.Run("membership", relational.VGApplyP(
				&memberVG{d: cfg.D, params: params}, 0, relational.ScanT(dataT), false))
			if err != nil {
				return res, fmt.Errorf("gmm simsql iter %d: membership: %w", iter, err)
			}
			// counts per cluster.
			cntT, err := eng.Run("counts", relational.AsModelP(relational.GroupAggP(
				relational.ScanT(memT), []int{1},
				[]relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
			if err != nil {
				return res, err
			}
			// first moments: join membership with data; the projection is
			// fused into the aggregate expression (SimSQL pipelines pure
			// scalar expressions into the aggregation job).
			joined := relational.HashJoinP(relational.ScanT(memT), relational.ScanT(dataT), []int{0}, []int{0})
			sumT, err := eng.Run("sums", relational.AsModelP(relational.GroupAggP(
				joined,
				[]int{1, 3},
				[]relational.AggSpec{{Kind: relational.AggSum, Name: "sum", Expr: func(t relational.Tuple) float64 {
					return t.Float(4)
				}}})))
			if err != nil {
				return res, err
			}
			// Second moments: the costly self-join producing one tuple
			// per (point, dim1, dim2), aggregated with GROUP BY.
			// Layout: mem(data_id, clus) + data(d_id, dim1, v1) + data(d_id, dim2, v2).
			pairsPlan := relational.HashJoinP(joined, relational.ScanT(dataT), []int{0}, []int{0})
			sqT, err := eng.Run("sumsq", relational.AsModelP(relational.GroupAggP(
				pairsPlan,
				[]int{1, 3, 6},
				[]relational.AggSpec{{Kind: relational.AggSum, Name: "val", Expr: func(t relational.Tuple) float64 {
					return t.Float(4) * t.Float(7)
				}}})))
			if err != nil {
				return res, err
			}
			for _, t := range cntT.Rows() {
				stats.N[t.Int(0)] = t.Float(1)
			}
			for _, t := range sumT.Rows() {
				stats.Sum[t.Int(0)][t.Int(1)] = t.Float(2)
			}
			for _, t := range sqT.Rows() {
				stats.SumSq[t.Int(0)].Set(int(t.Int(1)), int(t.Int(2)), t.Float(3))
			}
		}
		scaleStats(stats, cl.Scale())
		// The three recursive model tables (means, covariances,
		// probabilities) are three more MR jobs whose VG work is small.
		cl.Advance(3 * cl.Config().Cost.MRJobLaunch)
		err = cl.RunDriver("gmm-model-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, h, params, stats)
		})
		if err != nil {
			return res, fmt.Errorf("gmm simsql iter %d: update: %w", iter, err)
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(diagSrc, params))
	}
	recordQuality(cl, cfg, params, res)
	return res, nil
}

// fillStats unpacks the super-vertex VG's tagged stat rows.
func fillStats(stats *gmm.Stats, rows []relational.Tuple) {
	for _, t := range rows {
		k := t.Int(0)
		d1, d2 := t.Int(1), t.Int(2)
		switch {
		case d1 < 0:
			stats.N[k] = t.Float(3)
		case d2 < 0:
			stats.Sum[k][d1] = t.Float(3)
		default:
			stats.SumSq[k].Set(int(d1), int(d2), t.Float(3))
		}
	}
}

// replicateModel charges shipping the current model tables to every
// machine (SimSQL replicates small relations for VG parameterization).
func replicateModel(cl *sim.Cluster, bytes int64) error {
	n := cl.NumMachines()
	return cl.RunPhaseF("model-replicate", func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes))
		}
		return nil
	})
}
