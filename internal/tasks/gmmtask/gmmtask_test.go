package gmmtask

import (
	"math"
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// smallCluster returns a 2-machine cluster scaled so each machine holds a
// few hundred real points.
func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 1000
	return sim.New(cfg)
}

func smallConfig() Config {
	return Config{K: 3, D: 2, PointsPerMachine: 400_000, Iterations: 4, Seed: 99}
}

// checkResult verifies a run produced sane timings and a model that fits
// the data far better than chance (planted separated clusters give a
// per-point log-likelihood well above a mismatched model's).
func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations recorded = %d, want %d", len(res.IterSecs), iters)
	}
	if res.InitSec <= 0 || res.AvgIterSec() <= 0 {
		t.Errorf("timings not positive: init=%v iter=%v", res.InitSec, res.AvgIterSec())
	}
	ll, ok := res.Metrics["loglike"]
	if !ok {
		t.Fatal("no loglike metric recorded")
	}
	// Separated 2-d clusters: a learned model should beat -12 per point
	// comfortably (a random far-off model is below -100).
	if ll < -12 {
		t.Errorf("per-point loglike = %v; model did not learn", ll)
	}
}

func TestRunSparkPythonLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), sim.ProfilePython)
	checkResult(t, res, err, 4)
}

func TestRunSparkJavaLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), sim.ProfileJava)
	checkResult(t, res, err, 4)
}

func TestRunSparkSuperVertex(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	res, err := RunSpark(smallCluster(2), cfg, sim.ProfilePython)
	checkResult(t, res, err, 4)
}

func TestSparkJavaFasterAtLowDim(t *testing.T) {
	// Figure 1(b): at 10 dimensions Spark-Java takes about half the
	// Python time.
	cfg := Config{K: 10, D: 10, PointsPerMachine: 2_000_000, Iterations: 2, Seed: 5}
	py, err := RunSpark(smallCluster(2), cfg, sim.ProfilePython)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := RunSpark(smallCluster(2), cfg, sim.ProfileJava)
	if err != nil {
		t.Fatal(err)
	}
	if jv.AvgIterSec() >= py.AvgIterSec() {
		t.Errorf("Java (%v) should beat Python (%v) at 10 dims", jv.AvgIterSec(), py.AvgIterSec())
	}
}

func TestSparkJavaSlowerAtHighDim(t *testing.T) {
	// Figure 1(b): at 100 dimensions Java (Mallet) is several times
	// slower than Python (NumPy).
	cl1 := smallCluster(2)
	cl2 := smallCluster(2)
	cfg := Config{K: 5, D: 100, PointsPerMachine: 200_000, Iterations: 1, Seed: 5}
	py, err := RunSpark(cl1, cfg, sim.ProfilePython)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := RunSpark(cl2, cfg, sim.ProfileJava)
	if err != nil {
		t.Fatal(err)
	}
	if jv.AvgIterSec() <= 2*py.AvgIterSec() {
		t.Errorf("Java (%v) should be much slower than Python (%v) at 100 dims", jv.AvgIterSec(), py.AvgIterSec())
	}
}

func TestRunSimSQLLearns(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig())
	checkResult(t, res, err, 4)
}

func TestRunSimSQLSuperVertex(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	res, err := RunSimSQL(smallCluster(2), cfg)
	checkResult(t, res, err, 4)
}

func TestSimSQLSuperVertexMuchFaster(t *testing.T) {
	// Figure 1(c): the SimSQL super-vertex code is several times faster
	// than the tuple-per-dimension formulation.
	cfg := Config{K: 5, D: 10, PointsPerMachine: 1_000_000, Iterations: 2, Seed: 5}
	plain, err := RunSimSQL(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SuperVertex = true
	sv, err := RunSimSQL(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sv.AvgIterSec() >= plain.AvgIterSec()/2 {
		t.Errorf("super vertex (%v) should be far faster than plain (%v)", sv.AvgIterSec(), plain.AvgIterSec())
	}
}

func TestGraphLabPerPointFailsOOM(t *testing.T) {
	// Figure 1(a): GraphLab's per-point GMM fails at every tested size.
	cfg := Config{K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: 1, Seed: 5}
	cl := sim.New(func() sim.Config {
		c := sim.DefaultConfig(2)
		c.Scale = 10000
		return c
	}())
	_, err := RunGraphLab(cl, cfg)
	if !sim.IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestGraphLabSuperVertexLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	cfg.SVPerMachine = 8
	res, err := RunGraphLab(smallCluster(2), cfg)
	checkResult(t, res, err, 4)
}

func TestGraphLabBootClampNote(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	cfg.SVPerMachine = 2
	cfg.Iterations = 1
	cl := func() *sim.Cluster {
		c := sim.DefaultConfig(100)
		c.Scale = 200000
		return sim.New(c)
	}()
	res, err := RunGraphLab(cl, cfg)
	if err != nil {
		t.Fatalf("super-vertex at 100 machines should run: %v", err)
	}
	if len(res.Notes) == 0 {
		t.Error("expected a boot-clamp note at 100 machines")
	}
}

func TestRunGiraphLearns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig())
	checkResult(t, res, err, 4)
}

func TestRunGiraphSuperVertexLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.SuperVertex = true
	cfg.SVPerMachine = 8
	res, err := RunGiraph(smallCluster(2), cfg)
	checkResult(t, res, err, 4)
}

func TestGiraphPerPointFailsAtManyMachines(t *testing.T) {
	// Figure 1(a): Giraph's per-point 10-d GMM runs at 5 and 20 machines
	// but fails at 100.
	run := func(machines int) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 100000
		cfg := Config{K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: 1, Seed: 5}
		_, err := RunGiraph(sim.New(c), cfg)
		return err
	}
	if err := run(5); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(100); !sim.IsOOM(err) {
		t.Errorf("100 machines should OOM, got %v", err)
	}
}

func TestGiraphPerPointFailsAtHighDim(t *testing.T) {
	// Figure 1(a): Giraph fails on the 100-dimensional problem even at 5
	// machines.
	c := sim.DefaultConfig(5)
	c.Scale = 10000
	cfg := Config{K: 10, D: 100, PointsPerMachine: 1_000_000, Iterations: 1, Seed: 5}
	if _, err := RunGiraph(sim.New(c), cfg); !sim.IsOOM(err) {
		t.Errorf("100-d per-point Giraph should OOM, got %v", err)
	}
}

func TestPlatformsAgreeOnQuality(t *testing.T) {
	// All platforms run the same chain on the same data; their final
	// per-point log-likelihoods should be close.
	cfg := smallConfig()
	cfg.Iterations = 6
	var lls []float64
	if res, err := RunSpark(smallCluster(2), cfg, sim.ProfilePython); err == nil {
		lls = append(lls, res.Metrics["loglike"])
	} else {
		t.Fatal(err)
	}
	if res, err := RunSimSQL(smallCluster(2), cfg); err == nil {
		lls = append(lls, res.Metrics["loglike"])
	} else {
		t.Fatal(err)
	}
	svCfg := cfg
	svCfg.SuperVertex = true
	svCfg.SVPerMachine = 8
	if res, err := RunGraphLab(smallCluster(2), svCfg); err == nil {
		lls = append(lls, res.Metrics["loglike"])
	} else {
		t.Fatal(err)
	}
	if res, err := RunGiraph(smallCluster(2), cfg); err == nil {
		lls = append(lls, res.Metrics["loglike"])
	} else {
		t.Fatal(err)
	}
	for i := 1; i < len(lls); i++ {
		if math.Abs(lls[i]-lls[0]) > 3 {
			t.Errorf("platform %d loglike %v far from %v", i, lls[i], lls[0])
		}
	}
}

func TestPointBytesOrdering(t *testing.T) {
	if !(pointBytes(sim.ProfileCPP, 10) < pointBytes(sim.ProfileJava, 10) &&
		pointBytes(sim.ProfileJava, 10) < pointBytes(sim.ProfilePython, 10)) {
		t.Error("object overhead ordering wrong")
	}
}

func TestDeterministicVirtualTimes(t *testing.T) {
	// The whole simulation must be reproducible: same seed, same virtual
	// clock to the bit.
	run := func() (float64, float64, float64) {
		res, err := RunSpark(smallCluster(2), smallConfig(), sim.ProfilePython)
		if err != nil {
			t.Fatal(err)
		}
		return res.InitSec, res.AvgIterSec(), res.Metrics["loglike"]
	}
	i1, t1, l1 := run()
	i2, t2, l2 := run()
	if i1 != i2 || t1 != t2 || l1 != l2 {
		t.Errorf("nondeterministic run: (%v,%v,%v) vs (%v,%v,%v)", i1, t1, l1, i2, t2, l2)
	}
}

func TestCombinerAblation(t *testing.T) {
	// Disabling the combiner must make the Giraph GMM slower (more
	// buffered and shipped statistics traffic).
	cfg := Config{K: 5, D: 10, PointsPerMachine: 1_000_000, Iterations: 1, Seed: 5}
	with, err := RunGiraph(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableCombiner = true
	without, err := RunGiraph(smallCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if without.AvgIterSec() <= with.AvgIterSec() {
		t.Errorf("no-combiner (%v) should be slower than combiner (%v)",
			without.AvgIterSec(), with.AvgIterSec())
	}
}
