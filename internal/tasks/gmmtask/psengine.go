package gmmtask

import (
	"fmt"

	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// cloneParams snapshots the model for a stale worker cache. The clone
// re-runs Prepare, and Cholesky is deterministic, so sampling against a
// snapshot is bit-identical to sampling against the live model at the
// same version — which is what makes the s=0 chains equal Giraph's.
func cloneParams(p *gmm.Params) (*gmm.Params, error) {
	c := &gmm.Params{K: p.K, D: p.D, Pi: p.Pi.Clone()}
	c.Mu = make([]linalg.Vec, p.K)
	c.Sigma = make([]*linalg.Mat, p.K)
	for k := 0; k < p.K; k++ {
		c.Mu[k] = p.Mu[k].Clone()
		c.Sigma[k] = p.Sigma[k].Clone()
	}
	return c, c.Prepare()
}

// RunPS implements the GMM Gibbs sampler on the parameter-server engine:
// workers sample memberships against their (possibly stale) cached model
// and push per-cluster sufficient statistics; the servers fold them and
// the driver redraws the model. Machine RNG consumption (one uniform
// draw per point at init, one membership draw per point per cycle) and
// the fold's floating-point order mirror the Giraph implementation
// exactly, so at staleness 0 the two engines produce identical chains.
func RunPS(cl *sim.Cluster, cfg Config, psCfg psengine.Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	eng := psengine.New(cl, psCfg)

	srcs := machineSources(cl, cfg, machines)
	err := eng.Load("gmm-ps-load", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeTuples(srcs[w].Len())
		return m.AllocData(int64(srcs[w].Len())*pointBytes(sim.ProfileCPP, cfg.D), "ps gmm data")
	})
	if err != nil {
		return res, fmt.Errorf("gmm ps: load: %w", err)
	}

	mean, variance := momentsOfSources(srcs, cfg.D)
	h := gmm.HyperFromMoments(cfg.K, mean, variance)
	rng := randgen.New(cfg.Seed ^ 0x61a4)
	var params *gmm.Params
	err = cl.RunDriver("gmm-ps-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		params, e = gmm.Init(rng, h)
		return e
	})
	if err != nil {
		return res, err
	}
	if err := eng.AllocModel(params.Bytes()); err != nil {
		return res, fmt.Errorf("gmm ps: model alloc: %w", err)
	}
	// Initial memberships: one uniform draw per point, in point order, on
	// the machine RNG stream — the same consumption as the Giraph init
	// superstep. The values are never read (the first cycle resamples from
	// the model), but drawing them keeps the streams aligned.
	err = eng.Load("gmm-ps-init-members", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeTuples(srcs[w].Len())
		for i := 0; i < srcs[w].Len(); i++ {
			_ = m.RNG().Intn(cfg.K)
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("gmm ps: init members: %w", err)
	}
	res.InitSec = sw.Lap()

	// snaps[v] is the model after v applied cycles; workers at version v
	// read snaps[v]. Entries older than the staleness window are dropped.
	snap0, err := cloneParams(params)
	if err != nil {
		return res, err
	}
	snaps := []*gmm.Params{snap0}

	pullB := float64(params.Bytes())
	pushB := float64(cfg.K) * float64(statBytes(cfg.D))
	diagSrc := srcs[0]
	locals := make([]*gmm.Stats, machines)
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered := gmm.NewStats(cfg.K, cfg.D)
		err := eng.RunCycle(psengine.Cycle{
			Name:      "gmm-ps-cycle",
			PullBytes: pullB,
			PushBytes: pushB,
			Compute: func(w, version int, m *sim.Meter) error {
				p := snaps[version]
				local := gmm.NewStats(cfg.K, cfg.D)
				srcs[w].Each(func(x linalg.Vec) {
					m.ChargeLinalg(cfg.K+1, (gmm.MembershipFlops(cfg.K, cfg.D)+float64(cfg.D*cfg.D))/float64(cfg.K+1), cfg.D)
					local.Add(p.SampleMembership(m.RNG(), x), x, 1)
				})
				locals[w] = local
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				gathered.Merge(locals[w])
				return nil
			},
			Apply: func(m *sim.Meter) error {
				m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
				scaleStats(gathered, cl.Scale())
				if err := gmm.UpdateParams(rng, h, params, gathered); err != nil {
					return err
				}
				s, err := cloneParams(params)
				if err != nil {
					return err
				}
				snaps = append(snaps, s)
				return nil
			},
		})
		if err != nil {
			return res, fmt.Errorf("gmm ps iter %d: %w", iter, err)
		}
		for v := 0; v < len(snaps)-(eng.Staleness()+1); v++ {
			snaps[v] = nil
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(diagSrc, params))
	}
	recordQuality(cl, cfg, params, res)
	return res, nil
}
