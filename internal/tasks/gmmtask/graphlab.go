package gmmtask

import (
	"fmt"

	"mlbench/internal/gas"
	"mlbench/internal/linalg"
	"mlbench/internal/models/gmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Vertex id layout for the GMM graphs: cluster vertices at [0, K),
// the mixture-proportion vertex at mixID, data vertices above dataBase.
const (
	mixID    gas.VertexID = 1 << 40
	dataBase gas.VertexID = 1 << 41
)

// dataVtx is one data point's state: the point and its membership; its
// exported view is the (c, x, scatter) triple of Section 5.3.
type dataVtx struct {
	x linalg.Vec
	c int
}

// svVtx is a super vertex: a block [lo, hi) of one machine's point
// stream with pre-aggregated statistics as its exported view. The block
// is regenerated from the source each time it is walked, so no
// paper-scale points stay resident between phases.
type svVtx struct {
	src    *sim.Source[linalg.Vec]
	lo, hi int
	stats  *gmm.Stats
}

// n returns the block's point count.
func (v *svVtx) n() int { return v.hi - v.lo }

// each streams the block's points through fn in stream order.
func (v *svVtx) each(fn func(linalg.Vec)) { v.src.EachRange(v.lo, v.hi, fn) }

// clusVtx is one mixture component; mixVtx holds the proportions.
type clusVtx struct{ k int }
type mixVtx struct{}

// gmmEdges is the Section 5.3 topology — data vertices and cluster
// vertices form a complete bipartite graph, and the mixture vertex
// connects to every data vertex — expressed implicitly for O(1) neighbor
// lookups.
type gmmEdges struct {
	dataIDs   []gas.VertexID
	modelSide []gas.VertexID // clusters + mixture vertex
}

func (e *gmmEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	if v >= dataBase {
		return e.modelSide
	}
	return e.dataIDs
}

// glState carries the model across rounds.
type glState struct {
	cfg    Config
	h      gmm.Hyper
	params *gmm.Params
	stats  *gmm.Stats // gathered this round (set by cluster vertex 0)
}

// gatherVal is a lazily accumulated gather contribution: a single data
// point, a super vertex's statistics (by reference), or an accumulator.
type gatherVal struct {
	isModel bool
	c       int
	x       linalg.Vec
	sv      *gmm.Stats
	acc     *gmm.Stats
}

// glProgram is the gather-apply-scatter program of Section 5.3.
type glProgram struct{ st *glState }

func (p *glProgram) ViewBytes(v *gas.Vertex) int64 {
	switch d := v.Data.(type) {
	case *dataVtx:
		return statBytes(p.st.cfg.D)
	case *svVtx:
		_ = d
		return int64(p.st.cfg.K) * statBytes(p.st.cfg.D)
	case *clusVtx:
		return modelMsgBytes(p.st.cfg.D)
	default:
		return int64(8 * p.st.cfg.K)
	}
}

func (p *glProgram) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	if _, ok := v.Data.(*dataVtx); ok {
		return gatherVal{isModel: true}
	}
	if _, ok := v.Data.(*svVtx); ok {
		return gatherVal{isModel: true}
	}
	switch nd := nbr.Data.(type) {
	case *dataVtx:
		m.ChargeLinalg(1, float64(p.st.cfg.D), p.st.cfg.D)
		return gatherVal{c: nd.c, x: nd.x}
	case *svVtx:
		m.ChargeLinalgAbs(1, float64(p.st.cfg.K*p.st.cfg.D), p.st.cfg.D)
		return gatherVal{sv: nd.stats}
	default:
		return gatherVal{isModel: true}
	}
}

// absorb folds a single contribution into the accumulator.
func (g *gatherVal) absorb(cfg Config, o gatherVal) {
	if g.acc == nil {
		g.acc = gmm.NewStats(cfg.K, cfg.D)
		if g.x != nil {
			g.acc.Add(g.c, g.x, 1)
			g.x = nil
		}
		if g.sv != nil {
			g.acc.Merge(g.sv)
			g.sv = nil
		}
	}
	if o.acc != nil {
		g.acc.Merge(o.acc)
	}
	if o.x != nil {
		g.acc.Add(o.c, o.x, 1)
	}
	if o.sv != nil {
		g.acc.Merge(o.sv)
	}
}

func (p *glProgram) Sum(m *sim.Meter, a, b any) any {
	av, bv := a.(gatherVal), b.(gatherVal)
	if av.isModel {
		return av
	}
	// Accumulator merging happens at the model-side vertices and is not
	// data-proportional.
	m.ChargeLinalgAbs(1, float64(p.st.cfg.D*p.st.cfg.D), p.st.cfg.D)
	av.absorb(p.st.cfg, bv)
	return av
}

func (p *glProgram) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	cfg := p.st.cfg
	switch d := v.Data.(type) {
	case *dataVtx:
		m.ChargeLinalg(1, gmm.MembershipFlops(cfg.K, cfg.D)+float64(cfg.D*cfg.D), cfg.D)
		d.c = p.st.params.SampleMembership(m.RNG(), d.x)
	case *svVtx:
		m.ChargeLinalg(d.n()*(cfg.K+1), (gmm.MembershipFlops(cfg.K, cfg.D)+float64(cfg.D*cfg.D))/float64(cfg.K+1), cfg.D)
		d.stats = gmm.NewStats(cfg.K, cfg.D)
		d.each(func(x linalg.Vec) {
			d.stats.Add(p.st.params.SampleMembership(m.RNG(), x), x, 1)
		})
	case *clusVtx:
		if acc == nil {
			return
		}
		gv := acc.(gatherVal)
		if gv.isModel {
			return
		}
		// Each cluster vertex gathers the full statistics; vertex 0
		// records them for the model draw at the end of the round.
		if d.k == 0 {
			var single gatherVal
			single.absorb(cfg, gv)
			p.st.stats = single.acc
		}
	}
}

// RunGraphLab implements the paper's Section 5.3 GraphLab GMM. Without
// cfg.SuperVertex it builds the complete bipartite per-point graph, whose
// gather phase materializes one model copy per data point and exhausts
// memory at every tested size ("Fail" throughout Figure 1(a)). With
// cfg.SuperVertex, points are grouped into cfg.SVPerMachine vertices per
// machine, matching the fast codes of Figures 1(b) and 1(c).
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines (paper footnote: would not boot past 96)",
			g.EffectiveMachines(), cl.NumMachines())
	}

	rng := randgen.New(cfg.Seed ^ 0x91a5)
	st := &glState{cfg: cfg}
	scale := cl.Scale()

	var dataIDs []gas.VertexID
	srcs := machineSources(cl, cfg, g.EffectiveMachines())
	if cfg.SuperVertex {
		for mc, src := range srcs {
			n := src.Len()
			nsv := cfg.SVPerMachine
			if nsv > n {
				nsv = n
			}
			for s := 0; s < nsv; s++ {
				lo, hi := s*n/nsv, (s+1)*n/nsv
				id := dataBase + gas.VertexID(mc*cfg.SVPerMachine+s)
				// A super vertex is model-cardinality but stands for its
				// block's paper-scale payload.
				bytes := int64(float64((hi-lo)*8*cfg.D) * scale)
				g.AddVertex(id, &svVtx{src: src, lo: lo, hi: hi}, bytes, false, mc)
				dataIDs = append(dataIDs, id)
			}
		}
	} else {
		// The per-point formulation pins one vertex per point by design —
		// that is the layout the paper shows exhausting memory — but the
		// generation itself streams.
		next := dataBase
		for mc, src := range srcs {
			m := mc
			src.Each(func(x linalg.Vec) {
				g.AddVertex(next, &dataVtx{x: x}, int64(8*cfg.D)+16, true, m)
				dataIDs = append(dataIDs, next)
				next++
			})
		}
	}
	modelSide := make([]gas.VertexID, 0, cfg.K+1)
	for k := 0; k < cfg.K; k++ {
		id := gas.VertexID(k)
		g.AddVertex(id, &clusVtx{k: k}, modelMsgBytes(cfg.D), false, k%g.EffectiveMachines())
		modelSide = append(modelSide, id)
	}
	g.AddVertex(mixID, &mixVtx{}, int64(8*cfg.K), false, 0)
	modelSide = append(modelSide, mixID)
	g.SetEdges(&gmmEdges{dataIDs: dataIDs, modelSide: modelSide})

	if err := g.Load(); err != nil {
		return res, fmt.Errorf("gmm graphlab: load: %w", err)
	}

	// Initialization: empirical hyperparameters via map_reduce_vertices,
	// model init, then an initial membership transform.
	mean, variance := momentsOfSources(srcs, cfg.D)
	st.h = gmm.HyperFromMoments(cfg.K, mean, variance)
	if _, err := g.MapReduceVertices(int64(16*cfg.D), func(m *sim.Meter, v *gas.Vertex) any {
		if sv, ok := v.Data.(*svVtx); ok {
			m.ChargeLinalg(sv.n(), float64(2*cfg.D), cfg.D)
		} else {
			m.ChargeLinalg(1, float64(2*cfg.D), cfg.D)
		}
		return nil
	}, func(m *sim.Meter, a, b any) any { return nil }); err != nil {
		return res, err
	}
	err := cl.RunDriver("gmm-gl-init", func(m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		m.ChargeLinalgAbs(cfg.K, gmm.UpdateFlops(1, cfg.D), cfg.D)
		var e error
		st.params, e = gmm.Init(rng, st.h)
		return e
	})
	if err != nil {
		return res, err
	}
	if err := g.TransformVertices(func(m *sim.Meter, v *gas.Vertex) {
		switch d := v.Data.(type) {
		case *dataVtx:
			d.c = m.RNG().Intn(cfg.K)
		case *svVtx:
			d.stats = gmm.NewStats(cfg.K, cfg.D)
			d.each(func(x linalg.Vec) {
				d.stats.Add(m.RNG().Intn(cfg.K), x, 1)
			})
		}
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	prog := &glProgram{st: st}
	diagSrc := srcs[0]
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.stats = nil
		if err := g.RunRound(prog, nil); err != nil {
			return res, fmt.Errorf("gmm graphlab iter %d: %w", iter, err)
		}
		if st.stats == nil {
			return res, fmt.Errorf("gmm graphlab iter %d: no statistics gathered", iter)
		}
		stats := st.stats
		scaleStats(stats, scale)
		if err := cl.RunDriver("gmm-gl-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(1, gmm.UpdateFlops(cfg.K, cfg.D), cfg.D)
			return gmm.UpdateParams(rng, st.h, st.params, stats)
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
		res.Record(chainPoint(diagSrc, st.params))
	}
	recordQuality(cl, cfg, st.params, res)
	return res, nil
}
