package hmmtask

import (
	"fmt"

	"mlbench/internal/linalg"
	"mlbench/internal/models/hmm"
	"mlbench/internal/psengine"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// cloneHMMModel snapshots the model for a stale worker cache.
func cloneHMMModel(m *hmm.Model) *hmm.Model {
	c := &hmm.Model{K: m.K, V: m.V, Delta0: m.Delta0.Clone(),
		Delta: make([]linalg.Vec, m.K), Psi: make([]linalg.Vec, m.K)}
	for s := 0; s < m.K; s++ {
		c.Delta[s] = m.Delta[s].Clone()
		c.Psi[s] = m.Psi[s].Clone()
	}
	return c
}

// RunPS implements the HMM Gibbs sampler on the parameter-server engine:
// workers resample their documents' hidden state chains against a cached
// (possibly stale) model, push dense count deltas (start, transition,
// emission), the servers fold them, and the driver redraws the model.
func RunPS(cl *sim.Cluster, cfg Config, psCfg psengine.Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	eng := psengine.New(cl, psCfg)

	rng := randgen.New(cfg.Seed ^ 0x64a1)
	model := hmm.Init(rng, h)

	machineDocs := make([][][]int, machines)
	machineStates := make([][][]int, machines)
	for mc := 0; mc < machines; mc++ {
		docs := genMachineDocs(cl, cfg, mc)
		states := make([][]int, len(docs))
		for i, d := range docs {
			states[i] = hmm.InitStates(rng, d, cfg.K)
		}
		machineDocs[mc] = docs
		machineStates[mc] = states
	}
	err := eng.Load("hmm-ps-load", func(w int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		words := wordsIn(machineDocs[w])
		m.ChargeTuples(words)
		return m.AllocData(int64(16*words), "ps hmm docs+states")
	})
	if err != nil {
		return res, fmt.Errorf("hmm ps: load: %w", err)
	}
	if err := eng.AllocModel(modelBytes(cfg.K, cfg.V)); err != nil {
		return res, fmt.Errorf("hmm ps: model alloc: %w", err)
	}
	res.InitSec = sw.Lap()

	// Each snapshot carries its own proposal cache: workers on stale
	// versions MH-propose from the tables that match their model snapshot.
	snap0 := cloneHMMModel(model)
	refreshProposals(cfg, nil, snap0)
	snaps := []*hmm.Model{snap0}
	scratches := make([]hmm.Scratch, machines)
	wire := float64(modelBytes(cfg.K, cfg.V))
	locals := make([]*hmm.Counts, machines)
	for iter := 0; iter < cfg.Iterations; iter++ {
		gathered := hmm.NewCounts(cfg.K, cfg.V)
		iterCopy := iter
		err := eng.RunCycle(psengine.Cycle{
			Name:      "hmm-ps-cycle",
			PullBytes: wire,
			PushBytes: wire,
			Compute: func(w, version int, m *sim.Meter) error {
				mod := snaps[version]
				local := hmm.NewCounts(cfg.K, cfg.V)
				for i, doc := range machineDocs[w] {
					m.ChargeTuples(len(doc) / 2)
					m.ChargeBulk(float64(len(doc)) * hmm.StateFlopsTier(cfg.Sampler, cfg.K) / 2)
					mod.ResampleStatesTier(m.RNG(), doc, machineStates[w][i], iterCopy, cfg.Sampler, &scratches[w])
					local.Accumulate(doc, machineStates[w][i], cl.Scale())
				}
				locals[w] = local
				return nil
			},
			Fold: func(w int, m *sim.Meter) error {
				m.ChargeLinalgAbs(1, float64(cfg.K*(cfg.V+cfg.K)+cfg.K), 1)
				l := locals[w]
				psengine.FoldDense(gathered.Start, l.Start)
				for s := 0; s < cfg.K; s++ {
					psengine.FoldDense(gathered.Trans[s], l.Trans[s])
					psengine.FoldDense(gathered.Emit[s], l.Emit[s])
				}
				return nil
			},
			Apply: func(m *sim.Meter) error {
				m.ChargeLinalgAbs(cfg.K, float64(cfg.V+cfg.K), 1)
				model.UpdateModel(rng, h, gathered)
				snap := cloneHMMModel(model)
				refreshProposals(cfg, m, snap)
				snaps = append(snaps, snap)
				return nil
			},
		})
		if err != nil {
			return res, fmt.Errorf("hmm ps iter %d: %w", iter, err)
		}
		for v := 0; v < len(snaps)-(eng.Staleness()+1); v++ {
			snaps[v] = nil
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}
	recordQuality(cl, cfg, model, machineStates[0], machineDocs[0], res)
	return res, nil
}
