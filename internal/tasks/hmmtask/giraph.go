package hmmtask

import (
	"fmt"

	"mlbench/internal/bsp"
	"mlbench/internal/models/hmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// Giraph vertex layout: state vertices at [0, K), data vertices (words,
// documents or blocks) above hmmDataBase.
const hmmDataBase bsp.VertexID = 1 << 41

// hmmWordVtx is one word with its hidden state (word-based).
type hmmWordVtx struct {
	word, state int
}

// hmmDocVtx is one document (document-based). The vertex owns its
// resampling scratch: the Model is shared across host goroutines during
// supersteps, so buffers must live with the single-owner vertex.
type hmmDocVtx struct {
	words  []int
	states []int
	sc     hmm.Scratch
}

// hmmBlockVtx is a super vertex: a block of documents.
type hmmBlockVtx struct {
	docs   [][]int
	states [][]int
	sc     hmm.Scratch
}

// hmmStateVtx is one hidden state holding Psi_s and delta_s.
type hmmStateVtx struct{ s int }

// countsMsg carries one sender's merged f/g/h contributions.
type countsMsg struct{ c *hmm.Counts }

// RunGiraph implements the paper's Section 7.4 Giraph HMM. The word-based
// formulation stores one vertex per word — 525M Java vertex objects per
// machine at paper scale, which exceeds the heap before the first
// superstep (the Figure 3(a) "Fail"). The document and super-vertex
// formulations keep the chain per document/block, ship combined count
// statistics to the state vertices, and receive the model through the
// aggregator-based shared channel; the super-vertex version is the
// fastest HMM in the study (2:27 per iteration at 5 machines) because
// the per-word values "are stored internally, within the super vertex"
// and never touch the framework.
func RunGiraph(cl *sim.Cluster, cfg Config, variant Variant) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()

	g := bsp.NewGraph(cl)
	g.SetCombiner(func(a, b bsp.Msg) bsp.Msg {
		am, aok := a.Data.(*countsMsg)
		bm, bok := b.Data.(*countsMsg)
		if aok && bok {
			am.c.Merge(bm.c)
			return bsp.Msg{Data: am, Bytes: a.Bytes}
		}
		return bsp.Msg{Data: []bsp.Msg{a, b}, Bytes: a.Bytes + b.Bytes}
	})

	rng := randgen.New(cfg.Seed ^ 0x64a1)
	model := hmm.Init(rng, h)
	refreshProposals(cfg, nil, model)

	machineDocs := make([][][]int, machines)
	next := int64(hmmDataBase)
	for mc := 0; mc < machines; mc++ {
		docs := genMachineDocs(cl, cfg, mc)
		machineDocs[mc] = docs
		switch variant {
		case VariantWord:
			for _, doc := range docs {
				for _, w := range doc {
					// One boxed Java object per word: vertex wrapper, id,
					// boxed word and state, partition bookkeeping.
					g.AddVertex(bsp.VertexID(next), &hmmWordVtx{word: w, state: rng.Intn(cfg.K)}, 200, true, mc)
					next++
				}
			}
		case VariantDoc:
			for _, doc := range docs {
				g.AddVertex(bsp.VertexID(next), &hmmDocVtx{words: doc, states: hmm.InitStates(rng, doc, cfg.K)},
					int64(2*8*len(doc))+64, true, mc)
				next++
			}
		default: // VariantSV
			nsv := cfg.SVPerMachine // blocks may be empty at high scale-down; views/messages stay dense
			for s := 0; s < nsv; s++ {
				lo, hi := s*len(docs)/nsv, (s+1)*len(docs)/nsv
				blk := &hmmBlockVtx{docs: docs[lo:hi]}
				var words int
				for _, d := range blk.docs {
					blk.states = append(blk.states, hmm.InitStates(rng, d, cfg.K))
					words += len(d)
				}
				bytes := int64(float64(2*8*words) * cl.Scale())
				g.AddVertex(bsp.VertexID(next), blk, bytes, false, mc)
				next++
			}
		}
	}
	for s := 0; s < cfg.K; s++ {
		g.AddVertex(bsp.VertexID(s), &hmmStateVtx{s: s}, modelBytes(cfg.K, cfg.V)/int64(cfg.K), false, s%machines)
	}
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("hmm giraph %s: load: %w", variant, err)
	}
	res.InitSec = sw.Lap()

	cBytes := modelBytes(cfg.K, cfg.V)
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Superstep A: state vertex 0 publishes the model on the shared
		// channel (the aggregator-based broadcast).
		err := g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if sv, ok := v.Data.(*hmmStateVtx); ok && sv.s == 0 {
				ctx.SetShared("model", model, cBytes)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("hmm giraph %s iter %d: model: %w", variant, iter, err)
		}
		// Superstep B: data vertices resample their states and send
		// combined count contributions to state vertex 0.
		iterCopy := iter
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			m := ctx.Meter()
			emit := func(c *hmm.Counts) {
				ctx.Send(0, &countsMsg{c: c}, cBytes)
			}
			switch d := v.Data.(type) {
			case *hmmWordVtx:
				// Word vertices would exchange neighbor states here; the
				// load already failed at paper scale, so this path only
				// runs in small-scale tests.
				m.ChargeLinalg(1, hmm.StateFlops(cfg.K), 1)
			case *hmmDocVtx:
				// Two boxed touches per word (read neighbors, write state)
				// plus the sampling flops in a tight loop.
				m.ChargeTuples(2 * len(d.words))
				m.ChargeBulk(float64(len(d.words)) * hmm.StateFlopsTier(cfg.Sampler, cfg.K) / 2)
				model.ResampleStatesTier(m.RNG(), d.words, d.states, iterCopy, cfg.Sampler, &d.sc)
				c := hmm.NewCounts(cfg.K, cfg.V)
				c.Accumulate(d.words, d.states, cl.Scale())
				emit(c)
			case *hmmBlockVtx:
				c := hmm.NewCounts(cfg.K, cfg.V)
				for i, doc := range d.docs {
					// Half the positions are resampled per sweep; each
					// pays a boxed state/count touch plus the flops.
					m.ChargeTuples(len(doc) / 2)
					m.ChargeBulk(float64(len(doc)) * hmm.StateFlopsTier(cfg.Sampler, cfg.K) / 2)
					model.ResampleStatesTier(m.RNG(), doc, d.states[i], iterCopy, cfg.Sampler, &d.sc)
					c.Accumulate(doc, d.states[i], cl.Scale())
				}
				emit(c)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("hmm giraph %s iter %d: resample: %w", variant, iter, err)
		}
		// Superstep C: state vertex 0 merges the combined counts and the
		// model is redrawn.
		var gathered *hmm.Counts
		err = g.RunSuperstep(func(ctx *bsp.Context, v *bsp.Vertex, msgs []bsp.Msg) error {
			if sv, ok := v.Data.(*hmmStateVtx); ok && sv.s == 0 {
				gathered = hmm.NewCounts(cfg.K, cfg.V)
				for _, msg := range msgs {
					if cm, ok := msg.Data.(*countsMsg); ok {
						gathered.Merge(cm.c)
					}
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("hmm giraph %s iter %d: gather: %w", variant, iter, err)
		}
		if gathered == nil {
			return res, fmt.Errorf("hmm giraph %s iter %d: no counts gathered", variant, iter)
		}
		if err := cl.RunDriver("hmm-giraph-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileJava)
			m.ChargeLinalgAbs(cfg.K, float64(cfg.V+cfg.K), 1)
			model.UpdateModel(rng, h, gathered)
			refreshProposals(cfg, m, model)
			return nil
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	recordQualityFromGraph(cl, cfg, model, g, res)
	return res, nil
}

// recordQualityFromGraph extracts machine 0's final states from the graph.
func recordQualityFromGraph(cl *sim.Cluster, cfg Config, model *hmm.Model, g *bsp.Graph, res *task.Result) {
	var docs [][]int
	var states [][]int
	for id := int64(hmmDataBase); ; id++ {
		v := g.Vertex(bsp.VertexID(id))
		if v == nil || v.Machine() != 0 {
			break
		}
		switch d := v.Data.(type) {
		case *hmmDocVtx:
			docs = append(docs, d.words)
			states = append(states, d.states)
		case *hmmBlockVtx:
			docs = append(docs, d.docs...)
			states = append(states, d.states...)
		case *hmmWordVtx:
			// Word-based quality is not tracked (the configuration only
			// exists to demonstrate the failure).
			return
		}
	}
	recordQuality(cl, cfg, model, states, docs, res)
}
