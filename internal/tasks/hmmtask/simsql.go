package hmmtask

import (
	"fmt"

	"mlbench/internal/models/hmm"
	"mlbench/internal/randgen"
	"mlbench/internal/relational"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// statesSchema is the per-word state relation: (docID, pos, word, state,
// prevState). prevState is materialized so the f/g/h aggregations are
// plain GROUP BYs.
func statesSchema() relational.Schema {
	return relational.Ints("docID", "pos", "word", "state", "prevState")
}

// docStateVG resamples the (parity-matching) states of one document in
// C++ and emits one tuple per word — "all of those generated values must
// be output by the VG function as tuples", which is what keeps SimSQL
// hours-per-iteration even though the sampling is cheap.
type docStateVG struct {
	cfg   Config
	model *hmm.Model
	iter  int
	sc    hmm.Scratch
}

func (v *docStateVG) Name() string { return "doc_state_resample" }
func (v *docStateVG) OutSchema() relational.Schema {
	return statesSchema()
}
func (v *docStateVG) Apply(m relational.VGMeter, rows []relational.Tuple) []relational.Tuple {
	words := make([]int, len(rows))
	states := make([]int, len(rows))
	for _, t := range rows {
		pos := int(t.Int(1))
		words[pos] = int(t.Int(2))
		states[pos] = int(t.Int(3))
	}
	m.ChargeOps(len(rows)/2, hmm.StateFlopsTier(v.cfg.Sampler, v.cfg.K), 1)
	v.model.ResampleStatesTier(m.RNG(), words, states, v.iter, v.cfg.Sampler, &v.sc)
	out := make([]relational.Tuple, len(rows))
	docID := rows[0].Float(0)
	for pos := range words {
		prev := -1.0
		if pos > 0 {
			prev = float64(states[pos-1])
		}
		out[pos] = relational.T(docID, float64(pos), float64(words[pos]), float64(states[pos]), prev)
	}
	return out
}

// RunSimSQL implements the paper's Section 7.2 SimSQL HMM in all three
// granularities. SimSQL is the only platform that runs the word-based
// simulation (Figure 3(a)) — at more than eight hours per iteration —
// because its disk-streaming relational engine never exhausts memory.
// The word-based plan executes the adjacency self-join (an equi-join
// thanks to the stored nextPos column, or the optimizer's cross-product
// fallback when cfg.UseArithJoinQuirk is set) plus the transition- and
// emission-table joins before parameterizing the Categorical VG; the
// document variant replaces the joins with a per-document C++ VG; the
// super-vertex variant groups each machine's documents into one VG call
// but still emits and aggregates per-word tuples.
func RunSimSQL(cl *sim.Cluster, cfg Config, variant Variant) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	eng := relational.NewEngine(cl)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()
	cost := cl.Config().Cost

	rng := randgen.New(cfg.Seed ^ 0x4a4b)
	model := hmm.Init(rng, h)
	refreshProposals(cfg, nil, model)

	// Build the per-word state relation and the task-local corpus.
	machineDocs := make([][][]int, machines)
	localStates := make([][][]int, machines)
	states := relational.NewTable("states", statesSchema(), machines)
	states.Scaled = true
	docID := 0
	docsOnMachine0 := 0
	for mc := 0; mc < machines; mc++ {
		docs := genMachineDocs(cl, cfg, mc)
		machineDocs[mc] = docs
		if mc == 0 {
			docsOnMachine0 = len(docs)
		}
		localStates[mc] = make([][]int, len(docs))
		for di, doc := range docs {
			st := hmm.InitStates(rng, doc, cfg.K)
			localStates[mc][di] = st
			for pos, w := range doc {
				prev := -1.0
				if pos > 0 {
					prev = float64(st[pos-1])
				}
				states.Parts[mc] = append(states.Parts[mc], relational.T(
					float64(docID), float64(pos), float64(w), float64(st[pos]), prev))
			}
			docID++
		}
	}
	// Loading plus initial-state assignment: one pass over the word
	// relation and the model-initialization jobs (the paper's word-based
	// init took almost 11 hours; most of it is writing the huge states
	// table through the engine).
	cl.Advance(2 * cost.MRJobLaunch)
	if err := cl.RunPhaseF("hmm-load", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		passes := 2 // write + read back
		if variant == VariantWord {
			passes = 6 // the paper's word-based initialization materializes the join layout
		}
		m.ChargeTuples(passes * len(states.Parts[machine]))
		chargeTableDisk(m, cl, states, machine, passes)
		return nil
	}); err != nil {
		return res, err
	}
	res.InitSec = sw.Lap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := replicateModel(cl, modelBytes(cfg.K, cfg.V)); err != nil {
			return res, err
		}
		var newStates *relational.Table
		var err error
		switch variant {
		case VariantWord:
			newStates, err = simsqlWordIteration(eng, cl, cfg, model, states, iter)
		case VariantDoc:
			vg := &docStateVG{cfg: cfg, model: model, iter: iter}
			newStates, err = eng.Run("states", relational.VGApplyP(vg, 0, relational.ScanT(states), false))
		default: // VariantSV
			newStates, err = simsqlSVIteration(cl, cfg, model, machineDocs, localStates, iter)
		}
		if err != nil {
			return res, fmt.Errorf("hmm simsql %s iter %d: %w", variant, iter, err)
		}
		counts, err := simsqlCounts(eng, cfg, newStates)
		if err != nil {
			return res, fmt.Errorf("hmm simsql %s iter %d: counts: %w", variant, iter, err)
		}
		scaleCounts(counts, cl.Scale())
		// Model update: three more random-table jobs (delta0, delta, Psi).
		cl.Advance(3 * cost.MRJobLaunch)
		if err := cl.RunDriver("hmm-model-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(cfg.K, float64(cfg.V+cfg.K), 1)
			model.UpdateModel(rng, h, counts)
			refreshProposals(cfg, m, model)
			return nil
		}); err != nil {
			return res, err
		}
		if variant != VariantSV {
			states = newStates
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	// Extract machine 0's final states for the quality diagnostic.
	finalStates := localStates[0]
	if variant != VariantSV {
		finalStates = statesFromTable(states, machineDocs[0], docsOnMachine0)
	}
	recordQuality(cl, cfg, model, finalStates, machineDocs[0], res)
	return res, nil
}

// statesFromTable rebuilds machine 0's state assignments from the
// relation (rows may have migrated machines through shuffles).
func statesFromTable(t *relational.Table, docs [][]int, nDocs int) [][]int {
	out := make([][]int, nDocs)
	for i, d := range docs {
		out[i] = make([]int, len(d))
	}
	for _, part := range t.Parts {
		for _, r := range part {
			d := int(r.Int(0))
			if d < nDocs {
				out[d][r.Int(1)] = int(r.Int(3))
			}
		}
	}
	return out
}

// simsqlWordIteration runs one word-based sweep: adjacency self-join,
// model-table joins, then the per-document Categorical VG (functionally
// the same updates; each VG evaluation is charged per word position).
func simsqlWordIteration(eng *relational.Engine, cl *sim.Cluster, cfg Config, model *hmm.Model, states *relational.Table, iter int) (*relational.Table, error) {
	// Add the explicit nextPos column (the Section 7.2 workaround).
	withNext := relational.ProjectP(relational.ScanT(states),
		statesSchema().Concat(relational.Ints("nextPos")),
		func(t relational.Tuple) relational.Tuple {
			out := t.Clone()
			return append(out, t.Float(1)+1)
		})
	var adjacent relational.Plan
	if cfg.UseArithJoinQuirk {
		// The optimizer's cross-product fallback on t1.pos = t2.pos + 1.
		adjacent = relational.ArithJoinP(relational.ScanT(states), relational.ScanT(states),
			func(l, r relational.Tuple) bool {
				return l.Int(0) == r.Int(0) && l.Int(1) == r.Int(1)-1
			})
	} else {
		adjacent = relational.HashJoinP(withNext, withNext, []int{0, 5}, []int{0, 1})
	}
	if _, err := eng.Run("adjacent", adjacent); err != nil {
		return nil, err
	}
	// The transition- and emission-probability joins: two more passes
	// over the word rows against the model tables.
	cl.Advance(2 * cl.Config().Cost.MRJobLaunch)
	if err := cl.RunPhaseF("hmm-model-joins", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		m.ChargeTuples(2 * len(states.Parts[machine]))
		chargeTableDisk(m, cl, states, machine, 2)
		return nil
	}); err != nil {
		return nil, err
	}
	vg := &docStateVG{cfg: cfg, model: model, iter: iter}
	return eng.Run("states", relational.VGApplyP(vg, 0, relational.ScanT(states), false))
}

// chargeTableDisk charges n streaming passes of a table partition over
// disk.
func chargeTableDisk(m *sim.Meter, cl *sim.Cluster, t *relational.Table, machine, passes int) {
	bytes := float64(len(t.Parts[machine])) * float64(8*len(t.Schema)+16) * float64(passes)
	if t.Scaled {
		bytes *= cl.Scale()
	}
	m.ChargeSec(bytes / cl.Config().Cost.DiskBytesPerSec)
}

// simsqlSVIteration resamples every document inside a per-machine C++ VG
// but still emits one tuple per word, as the paper describes for the
// super-vertex SimSQL code.
func simsqlSVIteration(cl *sim.Cluster, cfg Config, model *hmm.Model, machineDocs [][][]int, localStates [][][]int, iter int) (*relational.Table, error) {
	cl.Advance(cl.Config().Cost.MRJobLaunch)
	out := relational.NewTable("states", statesSchema(), cl.NumMachines())
	out.Scaled = true
	err := cl.RunPhaseF("hmm-sv-vg", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileCPP)
		docs := machineDocs[machine]
		sts := localStates[machine]
		var sc hmm.Scratch
		var rows []relational.Tuple
		for di, doc := range docs {
			m.ChargeBulk(float64(len(doc)) * hmm.StateFlopsTier(cfg.Sampler, cfg.K) / 2)
			model.ResampleStatesTier(m.RNG(), doc, sts[di], iter, cfg.Sampler, &sc)
			for pos, wd := range doc {
				prev := -1.0
				if pos > 0 {
					prev = float64(sts[di][pos-1])
				}
				rows = append(rows, relational.T(float64(di), float64(pos), float64(wd), float64(sts[di][pos]), prev))
			}
		}
		// Emitting the per-word tuples goes through the SQL engine and
		// the random-table versioning sort.
		m.SetProfile(sim.ProfileSQLEngine)
		m.ChargeTuples(3 * len(rows))
		out.Parts[machine] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// simsqlCounts aggregates f(w,s), g(s) and h(s,s') with three GROUP BY
// jobs over the per-word state rows.
func simsqlCounts(eng *relational.Engine, cfg Config, t *relational.Table) (*hmm.Counts, error) {
	counts := hmm.NewCounts(cfg.K, cfg.V)
	fT, err := eng.Run("f", relational.AsModelP(relational.GroupAggP(relational.ScanT(t),
		[]int{2, 3}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
	if err != nil {
		return nil, err
	}
	for _, r := range fT.Rows() {
		counts.Emit[r.Int(1)][r.Int(0)] += r.Float(2)
	}
	gT, err := eng.Run("g", relational.AsModelP(relational.GroupAggP(
		relational.SelectP(relational.ScanT(t), func(r relational.Tuple) bool { return r.Int(1) == 0 }),
		[]int{3}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
	if err != nil {
		return nil, err
	}
	for _, r := range gT.Rows() {
		counts.Start[r.Int(0)] += r.Float(1)
	}
	hT, err := eng.Run("h", relational.AsModelP(relational.GroupAggP(
		relational.SelectP(relational.ScanT(t), func(r relational.Tuple) bool { return r.Int(4) >= 0 }),
		[]int{4, 3}, []relational.AggSpec{{Kind: relational.AggCount, Name: "n"}})))
	if err != nil {
		return nil, err
	}
	for _, r := range hT.Rows() {
		counts.Trans[r.Int(0)][r.Int(1)] += r.Float(2)
	}
	return counts, nil
}

// replicateModel charges shipping the model tables to every machine.
func replicateModel(cl *sim.Cluster, bytes int64) error {
	n := cl.NumMachines()
	return cl.RunPhaseF("model-replicate", func(machine int, m *sim.Meter) error {
		if n > 1 {
			m.SendModel((machine+1)%n, float64(bytes))
		}
		return nil
	})
}
